//! # dft-fe-mlxc
//!
//! Umbrella crate for the Rust reproduction of the SC'23 Gordon Bell winner
//! *"Large-Scale Materials Modeling at Quantum Accuracy"* (DFT-FE-MLXC).
//!
//! Re-exports the workspace crates so examples and downstream users can
//! depend on a single crate:
//!
//! * [`linalg`] — dense / batched / mixed-precision linear algebra
//! * [`fem`] — adaptive higher-order spectral finite elements
//! * [`hpc`] — simulated exascale runtime + machine performance models
//! * [`qmb`] — model quantum many-body (full CI) solver
//! * [`mlxc`] — machine-learned exchange-correlation functional
//! * [`core`] — the Kohn-Sham DFT solver (ChFES, SCF)
//! * [`invdft`] — inverse DFT (exact XC potentials from densities)
//! * [`materials`] — quasicrystal & defect structure generators

pub use dft_core as core;
pub use dft_fem as fem;
pub use dft_hpc as hpc;
pub use dft_invdft as invdft;
pub use dft_linalg as linalg;
pub use dft_materials as materials;
pub use dft_mlxc as mlxc;
pub use dft_qmb as qmb;
