#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# Everything runs offline — external crates are vendored under vendor/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run"
cargo bench --offline --workspace --no-run

echo "==> dft-lint (project invariants: L001-L008, incl. the L006-L008 collective-protocol prover)"
cargo run -q --offline --release -p dft-lint -- --workspace --deny-all --summary
mkdir -p target
cargo run -q --offline --release -p dft-lint -- --workspace --json > target/dft-lint.json
echo "    JSON artifact: target/dft-lint.json"

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> distributed suite (oracle + SCF parity at 1/2/4 ranks)"
cargo test -q --offline -p dft-parallel

echo "==> fault-injection suite (kills, timeouts, checkpoint/restart recovery)"
cargo test -q --offline --release -p dft-parallel --test fault_tolerance

echo "==> process-grid suite (2x2 and 2x2x2 layouts, overlap, FP32 subspace, reshard restart)"
cargo test -q --offline --release -p dft-parallel --test grid

echo "==> serve suite (multi-tenant scheduler: bursts, admission control, preemption, rank kill)"
cargo test -q --offline --release -p dft-serve

echo "==> relax/MD suite (distributed force parity/determinism, FIRE trajectory parity, warm starts)"
cargo test -q --offline --release -p dft-parallel --test forces

echo "==> comm sanitizer (debug profile): message-leak + tag-band runtime checks"
cargo test -q --offline -p dft-hpc --features sanitize comm::
cargo test -q --offline -p dft-parallel --features sanitize --test fault_tolerance

echo "==> schedule-exploration gate (8 seeded delivery schedules, bit-identity; skip with DFT_SCHED_EXPLORE=off)"
if [ "${DFT_SCHED_EXPLORE:-on}" = "off" ]; then
  echo "    skipped (DFT_SCHED_EXPLORE=off)"
else
  cargo test -q --offline --release -p dft-hpc explore::
  cargo test -q --offline --release -p dft-parallel --test schedule
  cargo test -q --offline -p dft-parallel --features sanitize --test schedule
fi

echo "==> forced-fallback suite (DFT_SIMD=scalar: scalar tile must bit-match its oracle)"
DFT_SIMD=scalar cargo test -q --offline --release -p dft-linalg --test simd_parity
DFT_SIMD=scalar cargo test -q --offline --release -p dft-fem

echo "==> kernel perf-regression gate (skip with DFT_BENCH_GATE=off on loaded machines)"
if [ "${DFT_BENCH_GATE:-on}" = "off" ]; then
  echo "    skipped (DFT_BENCH_GATE=off)"
else
  cargo run -q --offline --release -p dft-bench --bin bench_kernels
  cargo run -q --offline --release -p dft-bench --bin bench_gate -- \
    BENCH_kernels.baseline.json BENCH_kernels.json --tol 0.15
fi

echo "==> BENCH_scaling.json schema check"
cargo run -q --offline --release -p dft-bench --bin bench_scaling -- --check BENCH_scaling.json

echo "==> BENCH_recovery.json schema check"
cargo run -q --offline --release -p dft-bench --bin bench_recovery -- --check BENCH_recovery.json

echo "==> BENCH_serve.json schema check"
cargo run -q --offline --release -p dft-bench --bin bench_serve -- --check BENCH_serve.json

echo "==> BENCH_md.json schema check"
cargo run -q --offline --release -p dft-bench --bin bench_md -- --check BENCH_md.json

echo "==> CI green"
