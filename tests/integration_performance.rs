//! Integration tests of the performance reproduction: the headline shapes
//! of the paper's tables and figures must hold for the calibrated models.

use dft_bench::{
    disloc_mg_y, twin_disloc_mg_y_a, twin_disloc_mg_y_b, twin_disloc_mg_y_c, ybcd_quasicrystal,
};
use dft_fe_mlxc::hpc::machine::{ClusterSpec, MachineModel};
use dft_fe_mlxc::hpc::schedule::{scf_step, SolverOptions};

fn paper_opts() -> SolverOptions {
    SolverOptions {
        gpu_aware: false,
        ..SolverOptions::default()
    }
}

#[test]
fn table3_headline_numbers_within_tolerance() {
    let cases = [
        (twin_disloc_mg_y_a(), 2400usize, 223.0, 226.3),
        (twin_disloc_mg_y_b(), 6000, 499.4, 508.9),
        (twin_disloc_mg_y_c(), 8000, 513.7, 659.7),
    ];
    for (sys, nodes, t_paper, pflops_paper) in cases {
        let r = scf_step(
            &sys,
            &paper_opts(),
            &ClusterSpec::new(MachineModel::frontier(), nodes),
        );
        let dt = (r.total_seconds - t_paper).abs() / t_paper;
        let dp = (r.sustained_pflops() - pflops_paper).abs() / pflops_paper;
        assert!(
            dt < 0.15,
            "{}: walltime {} vs paper {t_paper}",
            r.system,
            r.total_seconds
        );
        assert!(
            dp < 0.20,
            "{}: {} PFLOPS vs paper {pflops_paper}",
            r.system,
            r.sustained_pflops()
        );
    }
}

#[test]
fn table3_per_step_shape() {
    let r = scf_step(
        &twin_disloc_mg_y_a(),
        &paper_opts(),
        &ClusterSpec::new(MachineModel::frontier(), 2400),
    );
    // CF is the most expensive step
    let cf = r.step("CF").seconds;
    for name in ["CholGS-S", "CholGS-O", "RR-P", "RR-SR", "DC"] {
        assert!(
            r.step(name).seconds < cf,
            "{name} should be cheaper than CF"
        );
    }
    // mixed-precision signature: CholGS-O and RR-SR exceed the FP64 peak
    for name in ["CholGS-O", "RR-SR"] {
        let eff = r.step(name).pflops() / r.peak_pflops;
        assert!(
            eff > 0.85,
            "{name} at {:.0}% of peak (paper: >100%)",
            100.0 * eff
        );
    }
    // RR-SR counts exactly 2x CholGS-O (alpha = 2 vs 1)
    let ratio = r.step("RR-SR").pflop.unwrap() / r.step("CholGS-O").pflop.unwrap();
    assert!((ratio - 2.0).abs() < 1e-9);
}

#[test]
fn fig4_machine_ordering_at_bf_500() {
    // CF efficiency ordering Perlmutter > Summit > Crusher (Fig. 4)
    let sys = disloc_mg_y();
    let eff = |m: MachineModel| {
        let r = scf_step(&sys, &SolverOptions::default(), &ClusterSpec::new(m, 160));
        r.step("CF").pflops() / r.peak_pflops
    };
    let su = eff(MachineModel::summit());
    let cr = eff(MachineModel::crusher());
    let pm = eff(MachineModel::perlmutter());
    assert!(
        pm > su && su > cr,
        "Perlmutter {pm:.2} > Summit {su:.2} > Crusher {cr:.2}"
    );
}

#[test]
fn fig5_mixed_precision_and_async_improve_summit() {
    let sys = ybcd_quasicrystal();
    let c = ClusterSpec::new(MachineModel::summit(), 1920);
    let base = scf_step(&sys, &SolverOptions::baseline(), &c).total_seconds;
    let both = scf_step(&sys, &SolverOptions::default(), &c).total_seconds;
    let gain = base / both;
    assert!(gain > 1.3 && gain < 2.5, "improvement {gain} (paper ~1.8x)");
}

#[test]
fn fig8_strong_scaling_efficiency_falls_with_granularity() {
    let sys = ybcd_quasicrystal();
    let opts = SolverOptions::default();
    let t = |nodes: usize| {
        scf_step(
            &sys,
            &opts,
            &ClusterSpec::new(MachineModel::perlmutter(), nodes),
        )
        .total_seconds
    };
    let (t140, t560, t1120) = (t(140), t(560), t(1120));
    let eff560 = t140 * 140.0 / (t560 * 560.0);
    let eff1120 = t140 * 140.0 / (t1120 * 1120.0);
    assert!(
        eff560 > eff1120,
        "efficiency must fall: {eff560} vs {eff1120}"
    );
    assert!(
        eff560 > 0.6 && eff560 < 0.95,
        "eff@560 {eff560} (paper ~0.8)"
    );
    assert!(
        eff1120 > 0.4 && eff1120 < 0.75,
        "eff@1120 {eff1120} (paper ~0.6)"
    );
    // 5x-class speedup from 140 to 1120 nodes
    let speedup = t140 / t1120;
    assert!(
        speedup > 3.5 && speedup < 6.5,
        "speedup {speedup} (paper ~5x)"
    );
}

#[test]
fn qmb_wall_vs_dft_scaling() {
    // Fig. 1's two cost walls, from the real FCI machinery and the model
    use dft_fe_mlxc::qmb::scaling::projected_fci_dimension;
    // FCI dimension growth is super-exponential vs DFT's polynomial cost
    let d8 = projected_fci_dimension(8);
    let d16 = projected_fci_dimension(16);
    assert!(d16 / d8 > 1e3);
    use dft_fe_mlxc::hpc::schedule::DftSystemSpec;
    let cluster = ClusterSpec::new(MachineModel::frontier(), 100);
    let t = |n_el: f64| {
        let sys = DftSystemSpec::new("x", n_el / 20.0, n_el, n_el * 1800.0, 1, false, 8);
        scf_step(&sys, &SolverOptions::default(), &cluster).total_seconds
    };
    let ratio = t(8.0e4) / t(4.0e4);
    assert!(
        ratio > 3.0 && ratio < 9.0,
        "DFT ~O(N^3): 2x electrons -> {ratio}x time"
    );
}
