//! Cross-crate integration tests: structures from `dft-materials` driven
//! through the real `dft-core` solver, and the invDFT -> MLXC pipeline.

use dft_fe_mlxc::core::scf::{scf, KPoint, ScfConfig};
use dft_fe_mlxc::core::system::{Atom, AtomKind, AtomicSystem};
use dft_fe_mlxc::core::xc::{Lda, MlxcFunctional, SyntheticTruth};
use dft_fe_mlxc::fem::mesh::{Axis, BoundaryCondition, Mesh3d};
use dft_fe_mlxc::fem::space::FeSpace;
use dft_fe_mlxc::materials::quasicrystal::{nanoparticle, QcParams};

fn atom_cfg(n_el: f64) -> ScfConfig {
    ScfConfig {
        n_states: (n_el / 2.0).ceil() as usize + 3,
        kt: 0.02,
        tol: 5e-5,
        max_iter: 35,
        cheb_degree: 30,
        first_iter_cf_passes: 5,
        ..ScfConfig::default()
    }
}

#[test]
fn quasicrystal_cluster_ground_state_converges() {
    // carve a tiny aperiodic cluster and solve its electronic structure
    let params = QcParams {
        lattice_constant: 4.4,
        window: 1.5,
        yb_window_fraction: 0.45,
        n_range: 2,
    };
    let np = nanoparticle(&params, 5.0, 6.0);
    assert!(np.n_atoms() >= 3, "cluster of {} atoms", np.n_atoms());
    let atoms: Vec<Atom> = np
        .positions
        .iter()
        .map(|&pos| Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
            pos,
        })
        .collect();
    let system = AtomicSystem::new(atoms);
    let n_el = system.n_electrons();
    let centres: [Vec<f64>; 3] = [
        np.positions.iter().map(|p| p[0]).collect(),
        np.positions.iter().map(|p| p[1]).collect(),
        np.positions.iter().map(|p| p[2]).collect(),
    ];
    let mk = |d: usize| {
        Axis::graded(
            0.0,
            np.cell[d],
            0.9,
            3.0,
            &centres[d],
            2.0,
            BoundaryCondition::Dirichlet,
        )
    };
    let space = FeSpace::new(Mesh3d::new([mk(0), mk(1), mk(2)], 3));
    let r = scf(&space, &system, &Lda, &atom_cfg(n_el), &[KPoint::gamma()]);
    assert!(r.converged, "QC cluster SCF: {:?}", r.residual_history);
    assert!((r.density.integrate(&space) - n_el).abs() < 1e-5);
    assert!(r.energy.free_energy < 0.0);
}

#[test]
fn full_pipeline_mlxc_beats_lda_against_hidden_truth() {
    use dft_bench::pipeline::{train_mlxc_from_invdft, MiniSystem, PipelineConfig};
    let cfg = PipelineConfig {
        invdft_iters: 45,
        epochs: 250,
        ..PipelineConfig::default()
    };
    let train_set = MiniSystem::training_set();
    let (model, loss, diags) = train_mlxc_from_invdft(&train_set[..2], &cfg);
    // training made progress
    assert!(
        loss.last().unwrap() < &(0.5 * loss[0]),
        "loss {:?} -> {:?}",
        loss[0],
        loss.last()
    );
    for d in &diags {
        assert!(
            d.invdft_last < 0.5 * d.invdft_first,
            "invDFT stalled on {}: {} -> {}",
            d.name,
            d.invdft_first,
            d.invdft_last
        );
    }
    // held-out comparison
    let ms = &MiniSystem::test_set()[0];
    let space = ms.space();
    let sys = ms.atomic_system();
    let cfg_scf = ms.scf_config();
    let truth = scf(&space, &sys, &SyntheticTruth, &cfg_scf, &[KPoint::gamma()]);
    let lda = scf(&space, &sys, &Lda, &cfg_scf, &[KPoint::gamma()]);
    let mlxc_f = MlxcFunctional::new(model);
    let ml = scf(&space, &sys, &mlxc_f, &cfg_scf, &[KPoint::gamma()]);
    assert!(truth.converged && lda.converged && ml.converged);
    let e_lda = (lda.energy.free_energy - truth.energy.free_energy).abs();
    let e_ml = (ml.energy.free_energy - truth.energy.free_energy).abs();
    assert!(
        e_ml < e_lda,
        "MLXC ({:.2} mHa) must beat LDA ({:.2} mHa) against the hidden truth",
        1000.0 * e_ml,
        1000.0 * e_lda
    );
}

#[test]
fn periodic_mg_cell_with_kpoints_converges() {
    use dft_fe_mlxc::materials::mg::hcp_supercell;
    let s = hcp_supercell(1, 1, 1, [true, true, true]);
    let atoms: Vec<Atom> = s
        .positions
        .iter()
        .map(|&pos| Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.9 },
            pos,
        })
        .collect();
    let system = AtomicSystem::new(atoms);
    let mk = |d: usize, n: usize| Axis::uniform(n, 0.0, s.cell[d], BoundaryCondition::Periodic);
    let space = FeSpace::new(Mesh3d::new([mk(0, 2), mk(1, 3), mk(2, 3)], 3));
    let n_el = system.n_electrons();
    let kpts = [
        KPoint {
            frac: [0.0, 0.0, 0.0],
            weight: 0.5,
        },
        KPoint {
            frac: [0.25, 0.0, 0.0],
            weight: 0.5,
        },
    ];
    let r = scf(&space, &system, &Lda, &atom_cfg(n_el), &kpts);
    assert!(r.converged, "Mg cell: {:?}", r.residual_history);
    assert!((r.density.integrate(&space) - n_el).abs() < 1e-5);
    // metallic smearing: entropy term non-trivial or zero, but energy real
    assert!(r.energy.free_energy.is_finite());
}
