//! End-to-end serving tests: bursts with cache hits, admission control,
//! preemption/resume, and rank-loss recovery — all on miniature systems.

use dft_core::system::{Atom, AtomKind};
use dft_hpc::comm::FaultPlan;
use dft_materials::{requests, Structure};
use dft_serve::{
    AdmissionError, DftServer, JobKind, JobRequest, JobSpec, JobStatus, Priority, ServerConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn pseudo(z: f64, r_c: f64, pos: [f64; 3]) -> Atom {
    Atom {
        kind: AtomKind::Pseudo { z, r_c },
        pos,
    }
}

fn fresh_root(label: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "dft-serve-{label}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

/// A converging single-atom spec; `variant` moves the atom so distinct
/// variants are physically distinct problems.
fn mini_spec(variant: usize) -> JobSpec {
    let off = variant as f64 * 0.35;
    JobSpec::miniature(vec![pseudo(2.0, 0.8, [2.0 + off, 3.0, 3.0])], 6.0)
}

/// A stretched diatomic whose relaxation provides a reliably long-running
/// job: each round is a full SCF plus snapshot traffic, so hundreds of
/// rounds occupy a rank slot for a long, controllable stretch.
fn diatomic_spec() -> JobSpec {
    JobSpec::miniature(
        vec![
            pseudo(1.0, 0.7, [2.2, 3.0, 3.0]),
            pseudo(1.0, 0.7, [3.8, 3.0, 3.0]),
        ],
        6.0,
    )
}

fn long_request(tenant: &str, priority: Priority, steps: usize) -> JobRequest {
    JobRequest::new(tenant, priority, JobKind::Relax { steps }, diatomic_spec())
}

#[test]
fn burst_completes_with_cache_hits_and_matching_energies() {
    let mut cfg = ServerConfig::new(fresh_root("burst"));
    cfg.pool_ranks = 4;
    let server = DftServer::start(cfg).expect("start");

    // phase 1: four distinct problems, cold
    let tenants = ["alice", "bob", "carol"];
    let cold: Vec<_> = (0..4)
        .map(|v| {
            let req = JobRequest::new(tenants[v % 3], Priority::Normal, JobKind::Scf, mini_spec(v));
            server.submit(req).expect("admit cold")
        })
        .collect();
    let cold: Vec<_> = cold.iter().map(|t| t.wait().expect("outcome")).collect();
    for out in &cold {
        assert_eq!(out.status, JobStatus::Completed, "cold job failed");
        assert!(out.converged, "cold job did not converge");
        assert!(!out.cache_hit);
        assert!(out.scf_iterations >= 4, "cold run suspiciously short");
    }

    // phase 2: resubmit every problem twice — all must warm-start
    let warm: Vec<_> = (0..8)
        .map(|i| {
            let v = i % 4;
            let req = JobRequest::new(tenants[i % 3], Priority::Normal, JobKind::Scf, mini_spec(v));
            (v, server.submit(req).expect("admit warm"))
        })
        .collect();
    for (v, ticket) in &warm {
        let out = ticket.wait().expect("outcome");
        assert_eq!(out.status, JobStatus::Completed);
        assert!(out.converged);
        assert!(
            out.cache_hit,
            "resubmission of variant {v} missed the cache"
        );
        let cold_iters = cold[*v].scf_iterations;
        assert!(
            out.scf_iterations * 4 <= cold_iters,
            "warm start took {} iterations vs {} cold (variant {v})",
            out.scf_iterations,
            cold_iters
        );
        let de = (out.free_energy - cold[*v].free_energy).abs();
        assert!(
            de <= 1e-10,
            "warm/cold energy mismatch {de:.3e} Ha on variant {v}"
        );
    }

    let stats = server.drain();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.failed, 0);
    assert!(stats.cache_hits >= 8);
    // one mesh shared by every job: the FeSpace tables were built once
    assert_eq!(stats.spaces_built, 1);
}

#[test]
fn admission_bounds_reject_with_retry_hints() {
    let mut cfg = ServerConfig::new(fresh_root("admission"));
    cfg.pool_ranks = 1;
    cfg.max_queued = 2;
    cfg.max_queued_per_tenant = 1;
    let server = DftServer::start(cfg).expect("start");

    // an invalid spec bounces before touching the queue
    let mut empty = mini_spec(0);
    empty.atoms.clear();
    match server.submit(JobRequest::new("x", Priority::Normal, JobKind::Scf, empty)) {
        Err(AdmissionError::InvalidSpec(_)) => {}
        other => panic!("expected InvalidSpec, got {other:?}", other = other.err()),
    }

    // occupy the single slot, then fill the queue
    let hog = server
        .submit(long_request("hog", Priority::Normal, 200))
        .expect("admit hog");
    std::thread::sleep(Duration::from_millis(100)); // let it dispatch
    let a1 = server
        .submit(JobRequest::new(
            "a",
            Priority::Normal,
            JobKind::Scf,
            mini_spec(1),
        ))
        .expect("admit a1");
    // tenant quota: "a" already has one queued job
    match server.submit(JobRequest::new(
        "a",
        Priority::Normal,
        JobKind::Scf,
        mini_spec(2),
    )) {
        Err(AdmissionError::TenantQuota {
            tenant,
            retry_after,
            ..
        }) => {
            assert_eq!(tenant, "a");
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected TenantQuota, got {other:?}", other = other.err()),
    }
    let b1 = server
        .submit(JobRequest::new(
            "b",
            Priority::Normal,
            JobKind::Scf,
            mini_spec(3),
        ))
        .expect("admit b1");
    // global depth bound: two jobs queued behind the hog
    match server.submit(JobRequest::new(
        "c",
        Priority::Normal,
        JobKind::Scf,
        mini_spec(0),
    )) {
        Err(AdmissionError::QueueFull {
            queued,
            limit,
            retry_after,
        }) => {
            assert_eq!((queued, limit), (2, 2));
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected QueueFull, got {other:?}", other = other.err()),
    }

    // every admitted job still delivers exactly one outcome
    for t in [&hog, &a1, &b1] {
        assert!(t.wait().is_some(), "admitted job lost");
    }
    let stats = server.drain();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected, 3);
}

#[test]
fn preemption_checkpoints_victim_and_resumes_it() {
    let mut cfg = ServerConfig::new(fresh_root("preempt"));
    cfg.pool_ranks = 1;
    cfg.checkpoint_every = 1;
    // unreachable force tolerance: the victim relaxation runs all of its
    // steps, keeping the pool saturated until preemption fires
    cfg.relax_force_tol = 0.0;
    let server = DftServer::start(cfg).expect("start");

    let victim = server
        .submit(long_request("bg", Priority::Low, 300))
        .expect("admit victim");
    std::thread::sleep(Duration::from_millis(100)); // victim occupies the pool

    let urgent = server
        .submit(JobRequest::new(
            "vip",
            Priority::High,
            JobKind::Scf,
            mini_spec(1),
        ))
        .expect("admit urgent");

    let urgent_out = urgent.wait().expect("urgent outcome");
    assert_eq!(urgent_out.status, JobStatus::Completed);
    assert!(urgent_out.converged);

    let victim_out = victim.wait().expect("victim outcome");
    assert_eq!(victim_out.status, JobStatus::Completed);
    assert!(
        victim_out.preemptions >= 1,
        "victim was never preempted (pool should have been saturated)"
    );
    // the victim resumed from its checkpoints and still did real work
    assert!(victim_out.scf_iterations > 0);

    let stats = server.drain();
    assert!(stats.preemptions >= 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 0);
}

#[test]
fn rank_kill_recovers_shrinks_pool_and_preserves_energy() {
    let mut cfg = ServerConfig::new(fresh_root("kill"));
    cfg.pool_ranks = 2;
    cfg.checkpoint_every = 1;
    // survivors detect the dead rank by receive deadline; miniature jobs
    // have microsecond skew, so a short deadline keeps detection fast
    cfg.timeout = Duration::from_millis(1500);
    let server = DftServer::start(cfg).expect("start");

    // reference: the same problem, fault-free
    let mut spec = mini_spec(2);
    spec.ranks = 2;
    let reference = server
        .submit(JobRequest::new(
            "ref",
            Priority::Normal,
            JobKind::Scf,
            spec.clone(),
        ))
        .expect("admit reference")
        .wait()
        .expect("reference outcome");
    assert!(reference.converged);

    // physically different problem (no cache interaction), rank 1 dies at
    // SCF iteration 3
    let mut killed_spec = mini_spec(3);
    killed_spec.ranks = 2;
    let killed = server
        .submit(
            JobRequest::new(
                "victim",
                Priority::Normal,
                JobKind::Scf,
                killed_spec.clone(),
            )
            .with_faults(FaultPlan::kill_at_epoch(1, 3)),
        )
        .expect("admit killed")
        .wait()
        .expect("killed outcome");
    assert_eq!(killed.status, JobStatus::Completed);
    assert!(killed.converged, "recovery did not reconverge");
    assert!(killed.recoveries >= 1, "no relaunch recorded");
    assert_eq!(killed.ranks_lost, 1);
    assert_eq!(killed.ranks_granted, 1, "survivor count wrong");

    // fault-free single-rank solve of the same problem for energy parity
    let mut solo_spec = killed_spec;
    solo_spec.ranks = 1;
    let solo = server
        .submit(JobRequest::new(
            "check",
            Priority::Normal,
            JobKind::Scf,
            solo_spec,
        ))
        .expect("admit solo")
        .wait()
        .expect("solo outcome");
    // the solo job warm-starts off the recovered job's published state and
    // must land on the same energy
    let de = (solo.free_energy - killed.free_energy).abs();
    assert!(de <= 1e-10, "post-recovery energy off by {de:.3e} Ha");

    let stats = server.drain();
    assert_eq!(stats.ranks_burned, 1, "dead rank not burned from the pool");
    assert!(stats.recoveries >= 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn screening_burst_from_structure_family() {
    let mut cfg = ServerConfig::new(fresh_root("screen"));
    cfg.pool_ranks = 2;
    let server = DftServer::start(cfg).expect("start");

    // an equation-of-state family from the materials-side generators
    let base = Structure {
        positions: vec![[3.0, 3.0, 3.0]],
        species: vec!["He"],
        cell: [6.0, 6.0, 6.0],
        periodic: [true; 3],
    };
    let family = requests::strain_scan(&base, &[-0.02, 0.0, 0.02]);
    let specs: Vec<JobSpec> = family
        .iter()
        .map(|s| JobSpec::from_structure(s, 2, 2, |_| (2.0, 0.8)))
        .collect();

    let outs: Vec<_> = specs
        .iter()
        .map(|spec| {
            server
                .submit(JobRequest::new(
                    "eos",
                    Priority::Normal,
                    JobKind::Screen,
                    spec.clone(),
                ))
                .expect("admit screen job")
        })
        .collect::<Vec<_>>()
        .iter()
        .map(|t| t.wait().expect("screen outcome"))
        .collect();
    for out in &outs {
        assert_eq!(out.status, JobStatus::Completed);
        assert!(out.converged);
    }
    // distinct strains are physically distinct problems
    assert!((outs[0].free_energy - outs[2].free_energy).abs() > 1e-6);

    // resubmitting one family member hits the cache (deterministic specs)
    let again = server
        .submit(JobRequest::new(
            "eos",
            Priority::Normal,
            JobKind::Screen,
            specs[1].clone(),
        ))
        .expect("admit resubmission")
        .wait()
        .expect("resubmission outcome");
    assert!(again.cache_hit, "identical family member missed the cache");

    let stats = server.drain();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.failed, 0);
    // three distinct strained meshes, the middle one shared by the resubmission
    assert_eq!(stats.spaces_built, 3);
}

#[test]
fn relaxation_moves_atoms_downhill() {
    let mut cfg = ServerConfig::new(fresh_root("relax"));
    cfg.pool_ranks = 2;
    // unreachable force tolerance: both FIRE steps always execute, so the
    // atoms are guaranteed to move off their starting positions
    cfg.relax_force_tol = 0.0;
    let server = DftServer::start(cfg).expect("start");

    // a stretched diatomic: nonzero forces along the bond
    let atoms = vec![
        pseudo(1.0, 0.7, [2.2, 3.0, 3.0]),
        pseudo(1.0, 0.7, [3.8, 3.0, 3.0]),
    ];
    let start = [atoms[0].pos, atoms[1].pos];
    let spec = JobSpec::miniature(atoms, 6.0);
    let out = server
        .submit(JobRequest::new(
            "mat",
            Priority::Normal,
            JobKind::Relax { steps: 2 },
            spec,
        ))
        .expect("admit relax")
        .wait()
        .expect("relax outcome");
    assert_eq!(out.status, JobStatus::Completed);
    assert!(out.converged);
    let moved = (0..2).any(|i| (0..3).any(|ax| (out.positions[i][ax] - start[i][ax]).abs() > 1e-6));
    assert!(moved, "relaxation left every atom exactly in place");

    let stats = server.drain();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}
