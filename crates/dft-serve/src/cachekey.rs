//! Canonical cache keys for converged-state reuse.
//!
//! Two submissions describe "the same calculation" when their atoms, mesh,
//! functional and electronic-structure knobs agree physically — even if the
//! atoms are listed in a different order or positions in a periodic
//! direction are shifted by whole lattice lengths. The key is therefore a
//! hash of a *canonical form*: every continuous quantity is quantized to a
//! fixed integer grid first (no floating-point equality anywhere), atoms
//! are sorted by their quantized tuple (fixed-order hashing), and periodic
//! coordinates enter as fractional positions modulo one lattice length.
//!
//! Resource hints (`ranks`, `grid_hint`) and convergence knobs (`tol`,
//! `max_iter`) are deliberately *excluded*: they change how the answer is
//! computed, not what it is, and a warm start is only an optimization hint.

use crate::job::{JobSpec, MeshSpec};
use dft_core::system::AtomKind;

/// FNV-1a 64-bit — deterministic, dependency-free, stable across runs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Charge-model quantization: 1e-9 on charges and smearing lengths.
fn quant_charge(x: f64) -> i64 {
    (x * 1e9).round() as i64
}

/// Non-periodic coordinates: absolute, quantized at 1e-8 Bohr.
fn quant_abs(x: f64) -> i64 {
    (x * 1e8).round() as i64
}

/// Periodic coordinates: fractional position on a 2^32 grid, modulo the
/// lattice length — `p` and `p + L` land on the same integer, as do `p`
/// within rounding of `L` and `0`.
fn quant_frac(p: f64, l: f64) -> i64 {
    let frac = (p / l).rem_euclid(1.0);
    let q = (frac * 4_294_967_296.0).round() as u64;
    (q % (1u64 << 32)) as i64
}

/// Canonical per-atom tuple: charge-model tag, quantized charge and
/// smearing, per-axis quantized position (fractional on periodic axes).
fn atom_tuple(kind: &AtomKind, pos: [f64; 3], mesh: &MeshSpec) -> (u8, i64, i64, [i64; 3]) {
    let (tag, z, r_c) = match *kind {
        AtomKind::Pseudo { z, r_c } => (1u8, z, r_c),
        AtomKind::AllElectron { z, r_c } => (2u8, z, r_c),
    };
    let mut q = [0i64; 3];
    for ax in 0..3 {
        q[ax] = if mesh.periodic[ax] {
            quant_frac(pos[ax], mesh.lengths[ax])
        } else {
            quant_abs(pos[ax])
        };
    }
    (tag, quant_charge(z), quant_charge(r_c), q)
}

/// Key identifying the discretization alone — used to share one `FeSpace`
/// (with its precomputed gather/scatter tables) among all jobs on the same
/// mesh, whatever their atoms.
pub fn mesh_key(mesh: &MeshSpec) -> u64 {
    let mut h = Fnv::new();
    h.write(b"mesh-v1");
    for ax in 0..3 {
        h.write_u64(mesh.cells[ax] as u64);
        h.write_i64(quant_charge(mesh.lengths[ax]));
        h.write(&[u8::from(mesh.periodic[ax])]);
    }
    h.write_u64(mesh.degree as u64);
    h.0
}

/// The converged-state cache key: canonical hash of (structure, mesh,
/// functional, electronic knobs).
pub fn cache_key(spec: &JobSpec) -> u64 {
    let mut h = Fnv::new();
    h.write(b"job-v1");
    h.write_u64(mesh_key(&spec.mesh));
    h.write(spec.functional.tag().as_bytes());
    h.write_u64(spec.n_states as u64);
    // smearing temperature quantized at 1e-12 Ha
    h.write_i64((spec.kt * 1e12).round() as i64);
    for k in &spec.kpts {
        for ax in 0..3 {
            h.write_i64((k.frac[ax] * 4_294_967_296.0).round() as i64);
        }
        h.write_i64((k.weight * 1e12).round() as i64);
    }

    // atoms in canonical (sorted) order, so submission order is irrelevant
    let mut atoms: Vec<(u8, i64, i64, [i64; 3])> = spec
        .atoms
        .iter()
        .map(|a| atom_tuple(&a.kind, a.pos, &spec.mesh))
        .collect();
    atoms.sort_unstable();
    for (tag, z, r_c, q) in atoms {
        h.write(&[tag]);
        h.write_i64(z);
        h.write_i64(r_c);
        for v in q {
            h.write_i64(v);
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use dft_core::system::Atom;

    fn pseudo(z: f64, r_c: f64, pos: [f64; 3]) -> Atom {
        Atom {
            kind: AtomKind::Pseudo { z, r_c },
            pos,
        }
    }

    fn demo_spec() -> JobSpec {
        JobSpec::miniature(
            vec![
                pseudo(2.0, 0.8, [1.0, 2.0, 3.0]),
                pseudo(1.0, 0.6, [4.0, 4.5, 0.5]),
                pseudo(2.0, 0.8, [5.5, 1.5, 2.5]),
            ],
            6.0,
        )
    }

    /// Listing the same atoms in any order yields the same key.
    #[test]
    fn permuted_atoms_hash_equal() {
        let a = demo_spec();
        let mut b = a.clone();
        b.atoms.rotate_left(1);
        let mut c = a.clone();
        c.atoms.swap(0, 2);
        assert_eq!(cache_key(&a), cache_key(&b));
        assert_eq!(cache_key(&a), cache_key(&c));
    }

    /// Shifting a position by whole lattice lengths along periodic axes is
    /// the same crystal; on the cell boundary, `0` and `L` coincide.
    #[test]
    fn lattice_equivalent_positions_hash_equal() {
        let a = demo_spec();
        let l = a.mesh.lengths[0];
        let mut b = a.clone();
        b.atoms[0].pos[0] += l;
        b.atoms[1].pos[1] -= 2.0 * l;
        b.atoms[2].pos[2] += 3.0 * l;
        assert_eq!(cache_key(&a), cache_key(&b));

        let mut edge0 = demo_spec();
        edge0.atoms[0].pos = [0.0, 1.0, 1.0];
        let mut edge_l = demo_spec();
        edge_l.atoms[0].pos = [l, 1.0, 1.0];
        assert_eq!(cache_key(&edge0), cache_key(&edge_l));
    }

    /// A physically perturbed structure gets a different key.
    #[test]
    fn perturbed_structures_hash_differently() {
        let a = demo_spec();
        let mut moved = a.clone();
        moved.atoms[1].pos[2] += 0.05;
        assert_ne!(cache_key(&a), cache_key(&moved));

        let mut heavier = a.clone();
        heavier.atoms[0].kind = AtomKind::Pseudo { z: 3.0, r_c: 0.8 };
        assert_ne!(cache_key(&a), cache_key(&heavier));

        let mut more_states = a.clone();
        more_states.n_states += 1;
        assert_ne!(cache_key(&a), cache_key(&more_states));

        let mut hotter = a.clone();
        hotter.kt *= 2.0;
        assert_ne!(cache_key(&a), cache_key(&hotter));

        let mut gga = a.clone();
        gga.functional = crate::job::Functional::Pbe;
        assert_ne!(cache_key(&a), cache_key(&gga));
    }

    /// Convergence/resource knobs do not enter the key (a warm start is a
    /// hint, not part of the problem identity).
    #[test]
    fn resource_knobs_do_not_change_the_key() {
        let a = demo_spec();
        let mut b = a.clone();
        b.tol *= 0.1;
        b.max_iter += 100;
        b.ranks = 4;
        b.cheb_degree += 10;
        b.first_iter_cf_passes += 1;
        assert_eq!(cache_key(&a), cache_key(&b));
    }

    /// Different meshes never collide with each other's FeSpace entry.
    #[test]
    fn mesh_key_separates_discretizations() {
        let a = MeshSpec::cube(2, 6.0, 2);
        let mut b = a;
        b.degree = 3;
        let mut c = a;
        c.lengths[1] = 7.0;
        let mut d = a;
        d.periodic[2] = false;
        assert_ne!(mesh_key(&a), mesh_key(&b));
        assert_ne!(mesh_key(&a), mesh_key(&c));
        assert_ne!(mesh_key(&a), mesh_key(&d));
    }
}
