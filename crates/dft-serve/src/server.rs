//! The server front door: admission control on the caller's thread, a
//! scheduler thread behind a channel, and per-job outcome tickets.

use crate::cachekey::cache_key;
use crate::job::{AdmissionError, JobOutcome, JobRequest};
use crate::scheduler::{Admission, Event, QueuedJob, Scheduler, ServerConfig, ServerStats};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One accepted job's receipt: the server-assigned id plus the channel its
/// single [`JobOutcome`] arrives on.
pub struct JobTicket {
    /// Server-assigned job id.
    pub job_id: u64,
    rx: Receiver<JobOutcome>,
}

impl JobTicket {
    /// Block until the job finishes. `None` only if the server died
    /// without delivering (it never does under normal operation).
    pub fn wait(&self) -> Option<JobOutcome> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn poll(&self) -> Option<JobOutcome> {
        self.rx.try_recv().ok()
    }
}

/// The multi-tenant DFT job server. `start` spins up the scheduler thread;
/// `submit` admits (or bounces) requests from any thread; `drain` stops
/// admissions, finishes every queued and running job, and returns the
/// final counters.
pub struct DftServer {
    cfg: ServerConfig,
    events_tx: Sender<Event>,
    admission: Arc<Mutex<Admission>>,
    next_id: AtomicU64,
    scheduler: Option<JoinHandle<ServerStats>>,
}

/// Backoff hint scaled to the backlog per pool slot: a nearly empty queue
/// suggests an immediate retry, a deep one a proportionally longer wait.
fn retry_after(queued: usize, pool_ranks: usize) -> Duration {
    Duration::from_millis(10 + 15 * (queued / pool_ranks.max(1)) as u64)
}

impl DftServer {
    /// Start the scheduler thread. Creates `cfg.checkpoint_root`.
    pub fn start(cfg: ServerConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&cfg.checkpoint_root)?;
        let admission = Arc::new(Mutex::new(Admission::default()));
        let (events_tx, events_rx) = mpsc::channel();
        let scheduler = Scheduler::new(cfg.clone(), Arc::clone(&admission), events_tx.clone());
        let handle = std::thread::Builder::new()
            .name("dft-serve-sched".into())
            .spawn(move || scheduler.run(events_rx))?;
        Ok(Self {
            cfg,
            events_tx,
            admission,
            next_id: AtomicU64::new(1),
            scheduler: Some(handle),
        })
    }

    /// Admit a request, or reject it with a structured reason. Accepted
    /// jobs are guaranteed exactly one outcome on the returned ticket —
    /// through preemptions, rank loss, and resumes.
    pub fn submit(&self, req: JobRequest) -> Result<JobTicket, AdmissionError> {
        if let Err(why) = req.spec.validate() {
            self.bump_rejected();
            return Err(AdmissionError::InvalidSpec(why));
        }
        {
            let mut adm = self
                .admission
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if adm.draining {
                adm.rejected += 1;
                return Err(AdmissionError::ShuttingDown);
            }
            if adm.queued >= self.cfg.max_queued {
                adm.rejected += 1;
                return Err(AdmissionError::QueueFull {
                    queued: adm.queued,
                    limit: self.cfg.max_queued,
                    retry_after: retry_after(adm.queued, self.cfg.pool_ranks),
                });
            }
            let tenant_queued = adm.per_tenant.get(&req.tenant).copied().unwrap_or(0);
            if tenant_queued >= self.cfg.max_queued_per_tenant {
                adm.rejected += 1;
                return Err(AdmissionError::TenantQuota {
                    tenant: req.tenant.clone(),
                    queued: tenant_queued,
                    limit: self.cfg.max_queued_per_tenant,
                    retry_after: retry_after(adm.queued, self.cfg.pool_ranks),
                });
            }
            adm.queued += 1;
            *adm.per_tenant.entry(req.tenant.clone()).or_insert(0) += 1;
        }

        let job_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let key = cache_key(&req.spec);
        let (outcome_tx, rx) = mpsc::channel();
        let job = Box::new(QueuedJob {
            id: job_id,
            key,
            req,
            outcome_tx,
            submitted: Instant::now(),
            first_dispatch: None,
            resume: false,
            warm_from: None,
            counted: true,
            cache_hit: false,
            preemptions: 0,
            recoveries: 0,
            ranks_lost: 0,
            scf_iterations: 0,
        });
        if self.events_tx.send(Event::Submit(job)).is_err() {
            // scheduler gone: roll the admission slot back
            let mut adm = self
                .admission
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            adm.queued = adm.queued.saturating_sub(1);
            return Err(AdmissionError::ShuttingDown);
        }
        Ok(JobTicket { job_id, rx })
    }

    /// Jobs currently waiting for dispatch (running jobs not included).
    pub fn queued(&self) -> usize {
        self.admission
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queued
    }

    /// Stop admitting, finish every queued and running job, and return
    /// the final counters.
    pub fn drain(mut self) -> ServerStats {
        let _ = self.events_tx.send(Event::Drain);
        match self.scheduler.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => ServerStats::default(),
        }
    }

    fn bump_rejected(&self) {
        self.admission
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .rejected += 1;
    }
}
