//! # dft-serve
//!
//! A multi-tenant, asynchronous DFT job server over the distributed solver
//! of [`dft_parallel`] — the serving layer a shared "materials-screening
//! service" runs: many small-to-medium Kohn-Sham jobs from many tenants,
//! multiplexed onto one bounded pool of ranks.
//!
//! * [`job`] — the typed API: [`JobRequest`]s (SCF / relaxation /
//!   screening, structure + mesh + functional + grid hints) in,
//!   [`JobOutcome`]s out, [`AdmissionError`]s at the door (bounded queue
//!   depth and per-tenant quotas, with `retry_after` backoff hints);
//! * [`scheduler`] — the gang scheduler: priority classes drain first,
//!   tenants round-robin within a class, gangs get `min(requested, free)`
//!   ranks, and a saturated pool preempts its cheapest victim through a
//!   cluster-consensus [`PreemptToken`](dft_parallel::PreemptToken) —
//!   the victim snapshots and is requeued to resume from its own
//!   checkpoints on whatever rank count is free later (checkpoints
//!   reshard across rank counts and grid shapes);
//! * [`cache`] — the converged-state cache: finished jobs export their
//!   converged density, mixer history, filter windows and wavefunctions
//!   keyed by a canonical problem hash ([`cachekey`]), so resubmissions
//!   of the same physics warm-start and converge in a few iterations;
//!   plus the shared-`FeSpace` cache that amortizes gather/scatter table
//!   setup across jobs on the same mesh;
//! * [`pool`] — rank-slot accounting, including *burning* ranks lost to
//!   faults: recovery returns the survivors to the pool and the capacity
//!   honestly shrinks;
//! * [`server`] — the front door: [`DftServer::start`] /
//!   [`DftServer::submit`] / [`DftServer::drain`] and per-job
//!   [`JobTicket`]s.

#![deny(unsafe_code)]

pub mod cache;
pub mod cachekey;
pub mod job;
pub mod pool;
pub mod scheduler;
pub mod server;

pub use cache::{ConvergedCache, SpaceCache};
pub use cachekey::{cache_key, mesh_key};
pub use job::{
    AdmissionError, Functional, JobKind, JobOutcome, JobRequest, JobSpec, JobStatus, MeshSpec,
    Priority,
};
pub use pool::RankPool;
pub use scheduler::{ServerConfig, ServerStats};
pub use server::{DftServer, JobTicket};
