//! The bounded worker pool the gang scheduler carves rank groups from.
//!
//! Slots are logical ranks (each backed by an OS thread while a job runs).
//! The pool only does conservative accounting — allocation policy lives in
//! the scheduler. Capacity is not constant: a rank killed by fault
//! injection is an execution resource that no longer exists, so recovery
//! returns the *surviving* ranks and [`RankPool::burn`]s the dead ones,
//! permanently shrinking the pool instead of silently resurrecting lost
//! hardware.

/// Slot accounting for the gang scheduler. Owned by the scheduler thread.
#[derive(Clone, Copy, Debug)]
pub struct RankPool {
    total: usize,
    free: usize,
    burned: usize,
}

impl RankPool {
    /// A pool of `total` idle rank slots.
    pub fn new(total: usize) -> Self {
        Self {
            total,
            free: total,
            burned: 0,
        }
    }

    /// Current capacity (initial size minus burned ranks).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Idle slots.
    pub fn free(&self) -> usize {
        self.free
    }

    /// Slots currently held by running gangs.
    pub fn in_use(&self) -> usize {
        self.total - self.free
    }

    /// Ranks permanently lost to faults since start.
    pub fn burned(&self) -> usize {
        self.burned
    }

    /// Grant a gang of up to `want` ranks (at least one), or `None` when
    /// the pool is exhausted.
    pub fn alloc(&mut self, want: usize) -> Option<usize> {
        if self.free == 0 || want == 0 {
            return None;
        }
        let granted = want.min(self.free);
        self.free -= granted;
        Some(granted)
    }

    /// Return `n` surviving ranks to the pool.
    pub fn release(&mut self, n: usize) {
        self.free = (self.free + n).min(self.total);
    }

    /// Record `n` ranks as permanently dead: they were in use, and they
    /// neither return to `free` nor count toward capacity anymore.
    pub fn burn(&mut self, n: usize) {
        let n = n.min(self.total);
        self.total -= n;
        self.free = self.free.min(self.total);
        self.burned += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_burn_accounting() {
        let mut pool = RankPool::new(8);
        assert_eq!(pool.alloc(3), Some(3));
        assert_eq!(pool.alloc(100), Some(5)); // clamped to what's free
        assert_eq!(pool.alloc(1), None); // exhausted
        assert_eq!(pool.in_use(), 8);

        // a gang of 3 comes back with one rank dead
        pool.release(2);
        pool.burn(1);
        assert_eq!(pool.total(), 7);
        assert_eq!(pool.free(), 2);
        assert_eq!(pool.burned(), 1);

        pool.release(5);
        assert_eq!(pool.free(), 7);
        assert_eq!(pool.in_use(), 0);
    }
}
