//! The typed job API: what tenants submit and what they get back.
//!
//! A [`JobRequest`] names a tenant, a [`Priority`], a [`JobKind`] and a
//! [`JobSpec`] — the physical problem (atoms, mesh, functional, k-points)
//! plus resource hints (desired gang size, optional process-grid shape).
//! Admission control answers synchronously with an [`AdmissionError`] when
//! the server is over capacity; accepted jobs eventually deliver exactly one
//! [`JobOutcome`] on the ticket channel.

use dft_core::scf::KPoint;
use dft_core::system::{Atom, AtomKind};
use dft_core::xc::{Lda, Pbe, XcFunctional, XcPoint};
use dft_fem::mesh::{Axis, BoundaryCondition, Mesh3d};
use dft_hpc::comm::FaultPlan;
use dft_materials::Structure;
use dft_parallel::GridShape;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Scheduling priority. Ordering is semantic: `Low < Normal < High`, and
/// the gang scheduler may preempt a running lower-priority job (through its
/// checkpoint) to make room for a starved `High` one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Background work: screened first for preemption.
    Low,
    /// The default service class.
    Normal,
    /// Latency-sensitive: may trigger preemption when the pool is full.
    High,
}

/// What kind of calculation the job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// A single self-consistent ground-state solve.
    Scf,
    /// FIRE structural relaxation driven by `dft_parallel::dist_relax`:
    /// up to `steps` geometry steps with distributed Hellmann-Feynman
    /// forces, each SCF warm-started from the previous step's converged
    /// state (wavefunction extrapolation). Stops early once the maximum
    /// force drops below the server's `relax_force_tol`.
    Relax {
        /// Maximum FIRE geometry steps to perform.
        steps: usize,
    },
    /// A cheap screening solve: the SCF runs with a 10x relaxed density
    /// tolerance, for high-throughput candidate filtering.
    Screen,
}

/// Exchange-correlation functional selector — a closed enum so job specs
/// stay plain data (hashable, cloneable) while still dispatching to the
/// real [`XcFunctional`] implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Functional {
    /// Local-density approximation.
    Lda,
    /// PBE generalized-gradient approximation.
    Pbe,
}

impl Functional {
    /// Stable tag used in cache keys and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Functional::Lda => "lda",
            Functional::Pbe => "pbe",
        }
    }
}

impl XcFunctional for Functional {
    fn name(&self) -> &'static str {
        self.tag()
    }
    fn needs_gradient(&self) -> bool {
        match self {
            Functional::Lda => Lda.needs_gradient(),
            Functional::Pbe => Pbe.needs_gradient(),
        }
    }
    fn eval_point(&self, rho: f64, grad_norm: f64) -> XcPoint {
        match self {
            Functional::Lda => Lda.eval_point(rho, grad_norm),
            Functional::Pbe => Pbe.eval_point(rho, grad_norm),
        }
    }
}

/// A declarative orthorhombic mesh: enough to rebuild the [`Mesh3d`] (and
/// the derived `FeSpace` gather/scatter tables) on the server side, and to
/// enter the canonical cache key without floating-point comparisons.
#[derive(Clone, Copy, Debug)]
pub struct MeshSpec {
    /// Cells along each axis.
    pub cells: [usize; 3],
    /// Cell lengths along each axis (Bohr).
    pub lengths: [f64; 3],
    /// Polynomial degree of the FE basis.
    pub degree: usize,
    /// Periodicity per axis (`false` = Dirichlet).
    pub periodic: [bool; 3],
}

impl MeshSpec {
    /// A fully periodic cube: `n^3` cells of total edge `l`.
    pub fn cube(n: usize, l: f64, degree: usize) -> Self {
        Self {
            cells: [n; 3],
            lengths: [l; 3],
            degree,
            periodic: [true; 3],
        }
    }

    /// Materialize the mesh.
    pub fn build(&self) -> Mesh3d {
        let axis = |i: usize| {
            let bc = if self.periodic[i] {
                BoundaryCondition::Periodic
            } else {
                BoundaryCondition::Dirichlet
            };
            Axis::uniform(self.cells[i], 0.0, self.lengths[i], bc)
        };
        Mesh3d::new([axis(0), axis(1), axis(2)], self.degree)
    }
}

/// The physical problem plus resource hints.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Atoms (charge model + Cartesian positions, Bohr).
    pub atoms: Vec<Atom>,
    /// Finite-element discretization.
    pub mesh: MeshSpec,
    /// Exchange-correlation functional.
    pub functional: Functional,
    /// Kohn-Sham states per k-point.
    pub n_states: usize,
    /// Fermi-Dirac smearing temperature (Ha).
    pub kt: f64,
    /// Density-residual convergence tolerance.
    pub tol: f64,
    /// Maximum SCF iterations per solve.
    pub max_iter: usize,
    /// Chebyshev filter degree per ChFES cycle. Size this to the problem:
    /// an aggressive filter on a tiny spectrum collapses the block.
    pub cheb_degree: usize,
    /// Extra filter passes in the first SCF iteration.
    pub first_iter_cf_passes: usize,
    /// Brillouin-zone samples (weights summing to 1).
    pub kpts: Vec<KPoint>,
    /// Desired gang size (ranks). The scheduler grants at most this many
    /// and at least one, depending on pool pressure; checkpoints reshard,
    /// so resumes may run at yet another count.
    pub ranks: usize,
    /// Preferred process-grid shape. Applied only when it tiles the
    /// granted rank count exactly; otherwise the scheduler falls back to
    /// the 1D slab layout.
    pub grid_hint: Option<GridShape>,
}

impl JobSpec {
    /// A miniature spec sized for serving tests and benchmarks: `atoms` in
    /// a small periodic cube, LDA, Γ-point only.
    pub fn miniature(atoms: Vec<Atom>, l: f64) -> Self {
        Self {
            atoms,
            mesh: MeshSpec::cube(2, l, 2),
            functional: Functional::Lda,
            n_states: 2,
            kt: 0.02,
            tol: 1e-8,
            max_iter: 80,
            cheb_degree: 20,
            first_iter_cf_passes: 2,
            kpts: vec![KPoint::gamma()],
            ranks: 1,
            grid_hint: None,
        }
    }

    /// Build a spec from a materials-side [`Structure`] (e.g. one member
    /// of a `dft_materials::requests` burst family). The mesh spans the
    /// structure's cell with `cells_per_axis` cells of degree `degree`,
    /// inheriting its periodicity; `pseudo_of` maps each species label to
    /// its pseudopotential `(valence charge, smearing radius)`. Electronic
    /// knobs start at the miniature defaults — adjust on the returned spec.
    pub fn from_structure(
        s: &Structure,
        cells_per_axis: usize,
        degree: usize,
        pseudo_of: impl Fn(&str) -> (f64, f64),
    ) -> Self {
        let atoms = s
            .positions
            .iter()
            .zip(s.species.iter())
            .map(|(&pos, sp)| {
                let (z, r_c) = pseudo_of(sp);
                Atom {
                    kind: AtomKind::Pseudo { z, r_c },
                    pos,
                }
            })
            .collect();
        let mut spec = Self::miniature(atoms, 1.0);
        spec.mesh = MeshSpec {
            cells: [cells_per_axis; 3],
            lengths: s.cell,
            degree,
            periodic: s.periodic,
        };
        spec
    }

    /// Structural sanity checks run at admission time.
    pub fn validate(&self) -> Result<(), String> {
        if self.atoms.is_empty() {
            return Err("spec has no atoms".into());
        }
        if self.n_states == 0 {
            return Err("spec requests zero states".into());
        }
        if self.kpts.is_empty() {
            return Err("spec has no k-points".into());
        }
        if self.ranks == 0 {
            return Err("spec requests a zero-rank gang".into());
        }
        if self.mesh.cells.contains(&0) || self.mesh.degree == 0 {
            return Err("mesh has an empty axis or zero degree".into());
        }
        // `!(x > 0.0)` (not `x <= 0.0`) so NaN inputs are rejected too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.tol > 0.0) || !(self.kt > 0.0) || self.max_iter == 0 {
            return Err("non-positive tolerance, temperature, or iteration budget".into());
        }
        if self.cheb_degree == 0 {
            return Err("zero Chebyshev filter degree".into());
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if self.mesh.lengths.iter().any(|&l| !(l > 0.0)) {
            return Err("mesh has a non-positive cell length".into());
        }
        Ok(())
    }
}

/// A complete submission.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Tenant identity for fair queueing and quotas.
    pub tenant: String,
    /// Service class.
    pub priority: Priority,
    /// Calculation kind.
    pub kind: JobKind,
    /// The problem.
    pub spec: JobSpec,
    /// Deterministic fault-injection plan applied to this job's cluster
    /// launch (testing/benchmark hook; empty plan = fault-free).
    pub faults: Arc<FaultPlan>,
}

impl JobRequest {
    /// A fault-free request.
    pub fn new(tenant: &str, priority: Priority, kind: JobKind, spec: JobSpec) -> Self {
        Self {
            tenant: tenant.to_string(),
            priority,
            kind,
            spec,
            faults: Arc::new(FaultPlan::default()),
        }
    }

    /// Attach a fault plan (testing hook).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Arc::new(faults);
        self
    }
}

/// Why a submission was rejected at the door. `QueueFull` and
/// `TenantQuota` carry a `retry_after` hint derived from the current
/// backlog so clients can back off proportionally instead of hammering.
#[derive(Clone, Debug)]
pub enum AdmissionError {
    /// The global queue is at its depth bound.
    QueueFull {
        /// Jobs currently queued.
        queued: usize,
        /// The configured bound.
        limit: usize,
        /// Suggested resubmission delay.
        retry_after: Duration,
    },
    /// This tenant alone is at its queued-job quota.
    TenantQuota {
        /// The offending tenant.
        tenant: String,
        /// Jobs this tenant has queued.
        queued: usize,
        /// The per-tenant bound.
        limit: usize,
        /// Suggested resubmission delay.
        retry_after: Duration,
    },
    /// The server is draining and no longer admits work.
    ShuttingDown,
    /// The spec failed structural validation.
    InvalidSpec(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                queued,
                limit,
                retry_after,
            } => write!(
                f,
                "queue full ({queued}/{limit} jobs); retry after {retry_after:?}"
            ),
            AdmissionError::TenantQuota {
                tenant,
                queued,
                limit,
                retry_after,
            } => write!(
                f,
                "tenant {tenant} at quota ({queued}/{limit} queued); retry after {retry_after:?}"
            ),
            AdmissionError::ShuttingDown => write!(f, "server is shutting down"),
            AdmissionError::InvalidSpec(why) => write!(f, "invalid job spec: {why}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Terminal job state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The calculation finished (see [`JobOutcome::converged`]).
    Completed,
    /// The calculation failed irrecoverably.
    Failed(String),
}

/// What a finished job reports back on its ticket channel.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Server-assigned job id.
    pub job_id: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Helmholtz free energy of the final SCF (Ha).
    pub free_energy: f64,
    /// Whether the final SCF met its density tolerance.
    pub converged: bool,
    /// SCF iterations actually performed across all solve rounds,
    /// excluding the resumed prefix (a cache hit makes this small).
    pub scf_iterations: usize,
    /// Whether the job warm-started from the converged-state cache.
    pub cache_hit: bool,
    /// Times this job was preempted and later resumed.
    pub preemptions: usize,
    /// Cluster relaunches forced by rank loss.
    pub recoveries: usize,
    /// Ranks of the final (successful) launch.
    pub ranks_granted: usize,
    /// Ranks permanently lost to injected faults while this job ran.
    pub ranks_lost: usize,
    /// Final atom positions (moved only by `Relax` jobs).
    pub positions: Vec<[f64; 3]>,
    /// Admission-to-first-dispatch wait (milliseconds).
    pub wait_ms: f64,
    /// Admission-to-completion latency (milliseconds).
    pub latency_ms: f64,
}
