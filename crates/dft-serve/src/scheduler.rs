//! The gang scheduler: one event-loop thread carving rank groups out of a
//! bounded [`RankPool`], with per-tenant fair queueing, checkpoint-based
//! preemption, warm starts from the converged-state cache, and rank-loss
//! recovery that returns shrunken capacity to the pool.
//!
//! Every running job is a worker thread that launches a miniature cluster
//! (`run_cluster_with` via `scf_with_recovery`) on its granted ranks. The
//! scheduler itself never blocks on a job: workers report back through the
//! same event channel submissions arrive on, so dispatch, preemption and
//! completion all serialize through one loop with no shared mutable state
//! beyond the admission counters.
//!
//! Scheduling policy, in order:
//! 1. higher [`Priority`] classes drain first;
//! 2. within a class, tenants take turns round-robin (a tenant with a
//!    thousand queued jobs cannot starve a tenant with one);
//! 3. a gang gets `min(requested, free)` ranks but never zero — the pool
//!    prefers running something small over waiting for a big hole;
//! 4. when the pool is saturated and a strictly higher-priority job is
//!    waiting, the scheduler raises the [`PreemptToken`] of the
//!    lowest-priority, most-recently-started running job; the job
//!    snapshots cluster-wide and unwinds, its ranks are re-granted, and
//!    the victim is requeued at the *front* of its tenant queue to resume
//!    from its own checkpoints — on whatever rank count is free then
//!    (checkpoints reshard across rank counts and grid shapes).

use crate::cache::{ConvergedCache, SpaceCache};
use crate::job::{JobKind, JobOutcome, JobRequest, JobStatus, Priority};
use crate::pool::RankPool;
use dft_core::relax::RelaxConfig;
use dft_core::scf::ScfConfig;
use dft_core::system::AtomicSystem;
use dft_fem::space::FeSpace;
use dft_hpc::comm::{ClusterOptions, FaultPlan};
use dft_parallel::checkpoint::job_dir;
use dft_parallel::scf::performed_iterations;
use dft_parallel::{
    relax_with_recovery, scf_with_recovery, DistRelaxConfig, DistScfConfig, GridShape,
    PreemptToken, RelaxError, ScfError,
};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server-wide knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Rank slots in the worker pool.
    pub pool_ranks: usize,
    /// Global queued-job bound (admission control).
    pub max_queued: usize,
    /// Per-tenant queued-job bound (admission control).
    pub max_queued_per_tenant: usize,
    /// Root directory for job-scoped checkpoint subdirectories.
    pub checkpoint_root: PathBuf,
    /// Snapshot cadence (SCF iterations) for running jobs; snapshots are
    /// what preemption and rank-loss recovery resume from.
    pub checkpoint_every: usize,
    /// Blocking-receive deadline inside each job's cluster.
    pub timeout: Duration,
    /// Rank-loss relaunch budget per solve.
    pub max_restarts: usize,
    /// Force tolerance (Ha/Bohr) at which a `Relax` job's FIRE trajectory
    /// stops early; `0.0` disables early stopping (every requested step
    /// runs). Defaults to the serial driver's tolerance.
    pub relax_force_tol: f64,
}

impl ServerConfig {
    /// Sensible defaults around the given checkpoint root.
    pub fn new(checkpoint_root: impl Into<PathBuf>) -> Self {
        Self {
            pool_ranks: 4,
            max_queued: 1024,
            max_queued_per_tenant: 512,
            checkpoint_root: checkpoint_root.into(),
            checkpoint_every: 2,
            timeout: Duration::from_secs(30),
            max_restarts: 2,
            relax_force_tol: RelaxConfig::default().force_tol,
        }
    }
}

/// Counters handed back by [`drain`](crate::server::DftServer::drain).
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Jobs that delivered a `Completed` outcome.
    pub completed: u64,
    /// Jobs that delivered a `Failed` outcome.
    pub failed: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Preemption events (raise -> snapshot -> requeue).
    pub preemptions: u64,
    /// Cluster relaunches forced by rank loss.
    pub recoveries: u64,
    /// Ranks permanently lost to faults.
    pub ranks_burned: usize,
    /// Converged-state cache hits / misses.
    pub cache_hits: u64,
    /// Converged-state cache misses.
    pub cache_misses: u64,
    /// Distinct `FeSpace` discretizations materialized.
    pub spaces_built: usize,
    /// High-water mark of the scheduler queue.
    pub max_queue_depth: usize,
}

/// Live admission counters shared between submitters and the scheduler.
#[derive(Debug, Default)]
pub(crate) struct Admission {
    /// Jobs admitted but not yet dispatched.
    pub queued: usize,
    /// Per-tenant share of `queued`.
    pub per_tenant: BTreeMap<String, usize>,
    /// Set once drain begins: no further admissions.
    pub draining: bool,
    /// Submissions bounced (for final stats).
    pub rejected: u64,
}

/// A job somewhere between admission and its outcome.
pub(crate) struct QueuedJob {
    pub id: u64,
    pub req: JobRequest,
    /// Canonical problem identity (computed once at admission).
    pub key: u64,
    /// Deliver-once outcome channel.
    pub outcome_tx: Sender<JobOutcome>,
    pub submitted: Instant,
    pub first_dispatch: Option<Instant>,
    /// Resume from own checkpoints (set after preemption).
    pub resume: bool,
    /// Converged-cache warm-start hint (set at first dispatch).
    pub warm_from: Option<PathBuf>,
    /// Whether this job still occupies an admission slot.
    pub counted: bool,
    pub cache_hit: bool,
    pub preemptions: usize,
    pub recoveries: usize,
    pub ranks_lost: usize,
    pub scf_iterations: usize,
}

/// What a worker thread reports back.
pub(crate) struct WorkerReport {
    /// Ranks granted at launch.
    pub granted: usize,
    /// Ranks still alive at the end (`granted` minus injected kills).
    pub survivors: usize,
    /// Cluster relaunches performed by recovery.
    pub recoveries: usize,
    /// SCF iterations performed (resumed prefixes excluded).
    pub performed: usize,
    pub disposition: Disposition,
}

pub(crate) enum Disposition {
    Finished {
        free_energy: f64,
        converged: bool,
        /// Directory holding the exported converged state, when the job
        /// kind is cacheable and the run converged.
        published: Option<PathBuf>,
    },
    /// Cooperatively preempted: snapshot written, job should requeue.
    Preempted,
    Failed(String),
}

pub(crate) enum Event {
    Submit(Box<QueuedJob>),
    Done {
        job: Box<QueuedJob>,
        report: WorkerReport,
    },
    /// Stop admitting, finish everything queued and running, then exit.
    Drain,
}

/// One priority class: per-tenant FIFO lanes plus a round-robin rotation.
#[derive(Default)]
struct PriorityLane {
    tenants: BTreeMap<String, VecDeque<Box<QueuedJob>>>,
    rotation: VecDeque<String>,
}

impl PriorityLane {
    fn push_back(&mut self, job: Box<QueuedJob>) {
        let tenant = job.req.tenant.clone();
        let lane = self.tenants.entry(tenant.clone()).or_default();
        if lane.is_empty() && !self.rotation.contains(&tenant) {
            self.rotation.push_back(tenant);
        }
        lane.push_back(job);
    }

    /// Requeue a preempted job at the front of its tenant lane *and* move
    /// its tenant to the head of the rotation, so a resume never waits
    /// behind fresh work of equal priority.
    fn push_front(&mut self, job: Box<QueuedJob>) {
        let tenant = job.req.tenant.clone();
        let lane = self.tenants.entry(tenant.clone()).or_default();
        self.rotation.retain(|t| *t != tenant);
        self.rotation.push_front(tenant);
        lane.push_front(job);
    }

    fn pop(&mut self) -> Option<Box<QueuedJob>> {
        while let Some(tenant) = self.rotation.pop_front() {
            if let Some(lane) = self.tenants.get_mut(&tenant) {
                if let Some(job) = lane.pop_front() {
                    if !lane.is_empty() {
                        self.rotation.push_back(tenant);
                    }
                    return Some(job);
                }
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.tenants.values().map(VecDeque::len).sum()
    }
}

struct Running {
    priority: Priority,
    token: PreemptToken,
    preempt_requested: bool,
    /// Launch sequence number (later = less progress lost on preemption).
    seq: u64,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The scheduler state machine. Runs on its own thread; owns everything
/// except the admission counters.
pub(crate) struct Scheduler {
    cfg: ServerConfig,
    pool: RankPool,
    lanes: BTreeMap<Priority, PriorityLane>,
    running: BTreeMap<u64, Running>,
    cache: ConvergedCache,
    spaces: SpaceCache,
    admission: Arc<Mutex<Admission>>,
    events_tx: Sender<Event>,
    stats: ServerStats,
    draining: bool,
    launch_seq: u64,
}

fn lock_admission(adm: &Mutex<Admission>) -> std::sync::MutexGuard<'_, Admission> {
    adm.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Scheduler {
    pub(crate) fn new(
        cfg: ServerConfig,
        admission: Arc<Mutex<Admission>>,
        events_tx: Sender<Event>,
    ) -> Self {
        let pool = RankPool::new(cfg.pool_ranks);
        Self {
            cfg,
            pool,
            lanes: BTreeMap::new(),
            running: BTreeMap::new(),
            cache: ConvergedCache::new(),
            spaces: SpaceCache::new(),
            admission,
            events_tx,
            stats: ServerStats::default(),
            draining: false,
            launch_seq: 0,
        }
    }

    /// The event loop: runs until drained.
    pub(crate) fn run(mut self, events_rx: Receiver<Event>) -> ServerStats {
        loop {
            let ev = match events_rx.recv() {
                Ok(ev) => ev,
                // every sender gone without a Drain: nothing can arrive
                // anymore, so finish what is queued and stop
                Err(_) => {
                    self.draining = true;
                    if self.running.is_empty() && self.queued() == 0 {
                        break;
                    }
                    continue;
                }
            };
            match ev {
                Event::Submit(job) => {
                    self.lanes
                        .entry(job.req.priority)
                        .or_default()
                        .push_back(job);
                    let depth = self.queued();
                    self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth);
                }
                Event::Done { job, report } => self.on_done(job, report),
                Event::Drain => {
                    self.draining = true;
                    lock_admission(&self.admission).draining = true;
                }
            }
            self.dispatch();
            self.maybe_preempt();
            if self.draining && self.running.is_empty() && self.queued() == 0 {
                break;
            }
        }
        self.stats.rejected = lock_admission(&self.admission).rejected;
        self.stats.ranks_burned = self.pool.burned();
        let (hits, misses) = self.cache.stats();
        self.stats.cache_hits = hits;
        self.stats.cache_misses = misses;
        self.stats.spaces_built = self.spaces.len();
        self.stats.clone()
    }

    fn queued(&self) -> usize {
        self.lanes.values().map(PriorityLane::len).sum()
    }

    fn highest_queued(&self) -> Option<Priority> {
        self.lanes
            .iter()
            .rev()
            .find(|(_, lane)| lane.len() > 0)
            .map(|(p, _)| *p)
    }

    /// Launch queued jobs while slots remain, highest priority first.
    fn dispatch(&mut self) {
        while self.pool.free() > 0 {
            let Some(priority) = self.highest_queued() else {
                return;
            };
            let Some(job) = self.lanes.entry(priority).or_default().pop() else {
                return;
            };
            let want = job.req.spec.ranks;
            let Some(granted) = self.pool.alloc(want) else {
                self.lanes.entry(priority).or_default().push_front(job);
                return;
            };
            self.launch(job, granted);
        }
    }

    fn launch(&mut self, mut job: Box<QueuedJob>, granted: usize) {
        if job.counted {
            // the admission slot is held only while queued
            let mut adm = lock_admission(&self.admission);
            adm.queued = adm.queued.saturating_sub(1);
            if let Some(n) = adm.per_tenant.get_mut(&job.req.tenant) {
                *n = n.saturating_sub(1);
            }
            job.counted = false;
        }
        if job.first_dispatch.is_none() {
            job.first_dispatch = Some(Instant::now());
            // consult the converged-state cache exactly once per job
            job.warm_from = self.cache.lookup(job.key);
        }
        let space = self.spaces.get(&job.req.spec.mesh);
        let token = PreemptToken::new();
        let seq = self.launch_seq;
        self.launch_seq += 1;
        let id = job.id;
        let priority = job.req.priority;
        let knobs = WorkerKnobs {
            job_root: job_dir(&self.cfg.checkpoint_root, id),
            checkpoint_every: self.cfg.checkpoint_every,
            timeout: self.cfg.timeout,
            max_restarts: self.cfg.max_restarts,
            relax_force_tol: self.cfg.relax_force_tol,
        };
        let tx = self.events_tx.clone();
        let worker_token = token.clone();
        let handle = std::thread::spawn(move || {
            let mut job = job;
            let report = run_worker(&mut job, granted, &space, worker_token, &knobs);
            let _ = tx.send(Event::Done { job, report });
        });
        self.running.insert(
            id,
            Running {
                priority,
                token,
                preempt_requested: false,
                seq,
                handle: Some(handle),
            },
        );
    }

    /// When the pool is saturated and a strictly higher-priority job
    /// waits, ask the cheapest victim to checkpoint and yield.
    fn maybe_preempt(&mut self) {
        if self.pool.free() > 0 {
            return;
        }
        let Some(want) = self.highest_queued() else {
            return;
        };
        // a preemption already in flight will free ranks shortly
        if self.running.values().any(|r| r.preempt_requested) {
            return;
        }
        let victim = self
            .running
            .iter_mut()
            .filter(|(_, r)| r.priority < want)
            .min_by_key(|(_, r)| (r.priority, u64::MAX - r.seq));
        if let Some((_, run)) = victim {
            run.preempt_requested = true;
            run.token.request();
        }
    }

    fn on_done(&mut self, mut job: Box<QueuedJob>, report: WorkerReport) {
        if let Some(mut run) = self.running.remove(&job.id) {
            if let Some(handle) = run.handle.take() {
                // the worker sent Done as its last action; reap it
                let _ = handle.join();
            }
        }
        let lost = report.granted.saturating_sub(report.survivors);
        self.pool.release(report.survivors);
        self.pool.burn(lost);
        job.ranks_lost += lost;
        job.recoveries += report.recoveries;
        job.scf_iterations += report.performed;
        self.stats.recoveries += report.recoveries as u64;

        match report.disposition {
            Disposition::Finished {
                free_energy,
                converged,
                published,
            } => {
                if let Some(dir) = published {
                    self.cache.publish(job.key, dir);
                }
                self.stats.completed += 1;
                self.deliver(
                    &job,
                    JobStatus::Completed,
                    free_energy,
                    converged,
                    report.survivors,
                );
            }
            Disposition::Preempted => {
                job.resume = true;
                job.preemptions += 1;
                // injected faults fire on first launch only; a resumed
                // gang must not be re-killed by the same plan
                job.req.faults = Arc::new(FaultPlan::default());
                self.stats.preemptions += 1;
                self.lanes
                    .entry(job.req.priority)
                    .or_default()
                    .push_front(job);
            }
            Disposition::Failed(why) => {
                self.stats.failed += 1;
                self.deliver(
                    &job,
                    JobStatus::Failed(why),
                    f64::NAN,
                    false,
                    report.survivors,
                );
            }
        }
    }

    fn deliver(
        &mut self,
        job: &QueuedJob,
        status: JobStatus,
        free_energy: f64,
        converged: bool,
        ranks_granted: usize,
    ) {
        let now = Instant::now();
        let wait_ms = job
            .first_dispatch
            .map(|t| t.duration_since(job.submitted).as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        let outcome = JobOutcome {
            job_id: job.id,
            tenant: job.req.tenant.clone(),
            status,
            free_energy,
            converged,
            scf_iterations: job.scf_iterations,
            cache_hit: job.cache_hit,
            preemptions: job.preemptions,
            recoveries: job.recoveries,
            ranks_granted,
            ranks_lost: job.ranks_lost,
            positions: job.req.spec.atoms.iter().map(|a| a.pos).collect(),
            wait_ms,
            latency_ms: now.duration_since(job.submitted).as_secs_f64() * 1e3,
        };
        // a dropped ticket just means the tenant stopped listening
        let _ = job.outcome_tx.send(outcome);
    }
}

/// Everything a worker thread needs besides the job itself.
#[derive(Clone)]
struct WorkerKnobs {
    job_root: PathBuf,
    checkpoint_every: usize,
    timeout: Duration,
    max_restarts: usize,
    relax_force_tol: f64,
}

/// Pick the process-grid shape for a gang: the tenant's hint when it tiles
/// the granted rank count (and divides the k-point set), else a 1D slab.
fn pick_grid(hint: Option<GridShape>, granted: usize, nk: usize) -> GridShape {
    match hint {
        Some(g)
            if g.n_dom * g.n_band * g.n_kgrp == granted
                && g.n_kgrp <= nk
                && nk.is_multiple_of(g.n_kgrp.max(1)) =>
        {
            g
        }
        _ => GridShape::slab(granted),
    }
}

/// The serial SCF knobs for a job (Screen relaxes the tolerance tenfold).
fn base_scf_config(job: &QueuedJob) -> ScfConfig {
    let spec = &job.req.spec;
    ScfConfig {
        n_states: spec.n_states,
        kt: spec.kt,
        tol: if matches!(job.req.kind, JobKind::Screen) {
            spec.tol * 10.0
        } else {
            spec.tol
        },
        max_iter: spec.max_iter,
        cheb_degree: spec.cheb_degree,
        first_iter_cf_passes: spec.first_iter_cf_passes,
        ..ScfConfig::default()
    }
}

/// Describe a caught solver panic payload.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "solver panicked".to_string())
}

/// The worker thread body: run the job's solve on its granted ranks,
/// mutating `job` with accumulated accounting, and report how it ended.
/// Never panics; every failure becomes a [`Disposition`].
fn run_worker(
    job: &mut QueuedJob,
    granted: usize,
    space: &Arc<FeSpace>,
    token: PreemptToken,
    knobs: &WorkerKnobs,
) -> WorkerReport {
    if let JobKind::Relax { steps } = job.req.kind {
        return run_relax_worker(job, granted, space, token, knobs, steps);
    }
    // Scf / Screen: one electronic solve, publishable into the
    // converged-state cache
    let conv_dir = knobs.job_root.join("converged");
    let system = AtomicSystem::new(job.req.spec.atoms.clone());
    let spec = &job.req.spec;
    let mut cfg = DistScfConfig::new(base_scf_config(job))
        .with_checkpoints(&knobs.job_root, knobs.checkpoint_every)
        .with_grid(pick_grid(spec.grid_hint, granted, spec.kpts.len()))
        .with_preempt(token.clone())
        .with_final_state(&conv_dir);
    // warm-start source: the converged-state cache entry; resumes
    // additionally see their own (newer) checkpoints, which win
    if let Some(dir) = &job.warm_from {
        cfg = cfg.with_restart_from(dir);
    }
    if job.resume {
        cfg = cfg.with_restart();
    }

    let opts = ClusterOptions {
        timeout: knobs.timeout,
        faults: Arc::clone(&job.req.faults),
        schedule: None,
    };

    // a panicking solver rank (numerical breakdown inside dft-core)
    // must fail the job, never strand it: the scheduler still needs
    // the Done event to release this gang's ranks
    let solve = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scf_with_recovery(
            granted,
            &opts,
            space,
            &system,
            &spec.functional,
            &cfg,
            &spec.kpts,
            knobs.max_restarts,
        )
    }));
    let solve = match solve {
        Ok(r) => r,
        Err(payload) => {
            return WorkerReport {
                granted,
                survivors: granted,
                recoveries: 0,
                performed: 0,
                disposition: Disposition::Failed(format!(
                    "solver panicked: {}",
                    panic_reason(payload)
                )),
            };
        }
    };
    match solve {
        Ok(report) => {
            let recoveries = report.attempts - 1;
            let Some(first) = report.results.first() else {
                return WorkerReport {
                    granted,
                    survivors: report.final_nranks,
                    recoveries,
                    performed: 0,
                    disposition: Disposition::Failed("empty cluster result".into()),
                };
            };
            let performed = performed_iterations(first.iterations, first.resumed_from);
            if !job.resume && job.warm_from.is_some() {
                job.cache_hit = first.resumed_from.is_some();
            }
            let converged = first.converged;
            job.resume = false;
            WorkerReport {
                granted,
                survivors: report.final_nranks,
                recoveries,
                performed,
                disposition: Disposition::Finished {
                    free_energy: first.energy.free_energy,
                    converged,
                    published: converged.then(|| conv_dir.clone()),
                },
            }
        }
        Err(ScfError::Preempted { .. }) => WorkerReport {
            granted,
            survivors: granted,
            recoveries: 0,
            performed: 0,
            disposition: Disposition::Preempted,
        },
        Err(e) => WorkerReport {
            granted,
            survivors: granted,
            recoveries: 0,
            performed: 0,
            disposition: Disposition::Failed(e.to_string()),
        },
    }
}

/// The Relax worker: one [`relax_with_recovery`] call drives the whole
/// FIRE trajectory — distributed forces, warm-started per-step SCFs, and
/// a persisted integrator state that preemption and rank-loss relaunches
/// resume from. Replaces the old per-round steepest-descent loop (which
/// recomputed forces serially on the scheduler thread between rounds).
fn run_relax_worker(
    job: &mut QueuedJob,
    granted: usize,
    space: &Arc<FeSpace>,
    token: PreemptToken,
    knobs: &WorkerKnobs,
    steps: usize,
) -> WorkerReport {
    let system = AtomicSystem::new(job.req.spec.atoms.clone());
    let spec = &job.req.spec;
    let mut cfg = DistScfConfig::new(base_scf_config(job))
        .with_checkpoints(&knobs.job_root, knobs.checkpoint_every)
        .with_grid(pick_grid(spec.grid_hint, granted, spec.kpts.len()))
        .with_preempt(token.clone());
    // a cache entry for this geometry family warm-starts the first step;
    // later steps chain through the trajectory's own `relax-warm` slot
    if let Some(dir) = &job.warm_from {
        cfg = cfg.with_restart_from(dir);
    }
    if job.resume {
        cfg = cfg.with_restart();
    }
    let relax_cfg = DistRelaxConfig {
        fire: RelaxConfig {
            max_steps: steps.max(1),
            force_tol: knobs.relax_force_tol,
            ..RelaxConfig::default()
        },
        warm_start: true,
    };

    let opts = ClusterOptions {
        timeout: knobs.timeout,
        faults: Arc::clone(&job.req.faults),
        schedule: None,
    };

    let solve = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        relax_with_recovery(
            granted,
            &opts,
            space,
            &system,
            &spec.functional,
            &cfg,
            &relax_cfg,
            &spec.kpts,
            knobs.max_restarts,
        )
    }));
    let solve = match solve {
        Ok(r) => r,
        Err(payload) => {
            return WorkerReport {
                granted,
                survivors: granted,
                recoveries: 0,
                performed: 0,
                disposition: Disposition::Failed(format!(
                    "solver panicked: {}",
                    panic_reason(payload)
                )),
            };
        }
    };
    match solve {
        Ok(report) => {
            let recoveries = report.attempts - 1;
            let Some(first) = report.results.first() else {
                return WorkerReport {
                    granted,
                    survivors: report.final_nranks,
                    recoveries,
                    performed: 0,
                    disposition: Disposition::Failed("empty cluster result".into()),
                };
            };
            // net new SCF iterations this dispatch: records loaded from a
            // resumed trajectory's state were paid for by earlier
            // dispatches
            let fresh = first.resumed_step.unwrap_or(0).min(first.trajectory.len());
            let performed: usize = first.trajectory[fresh..]
                .iter()
                .map(|t| t.scf_iterations)
                .sum();
            if !job.resume && job.warm_from.is_some() {
                job.cache_hit = first.trajectory.first().is_some_and(|t| t.warm_started);
            }
            // the relaxed geometry is the job's deliverable
            for (atom, relaxed) in job.req.spec.atoms.iter_mut().zip(&first.system.atoms) {
                atom.pos = relaxed.pos;
            }
            job.resume = false;
            WorkerReport {
                granted,
                survivors: report.final_nranks,
                recoveries,
                performed,
                disposition: Disposition::Finished {
                    // electronic convergence of the final geometry (the
                    // FIRE force verdict lives in the trajectory records)
                    free_energy: first.scf.energy.free_energy,
                    converged: first.scf.converged,
                    published: None,
                },
            }
        }
        Err(RelaxError::Scf(ScfError::Preempted { .. })) => WorkerReport {
            granted,
            survivors: granted,
            recoveries: 0,
            performed: 0,
            disposition: Disposition::Preempted,
        },
        Err(RelaxError::Force(e)) => WorkerReport {
            granted,
            survivors: granted,
            recoveries: 0,
            performed: 0,
            disposition: Disposition::Failed(format!("force evaluation failed: {e}")),
        },
        Err(e) => WorkerReport {
            granted,
            survivors: granted,
            recoveries: 0,
            performed: 0,
            disposition: Disposition::Failed(e.to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use dft_parallel::scf::performed_iterations;

    /// The warm-resume-converges-immediately edge: a run resumed from a
    /// snapshot labeled N that performs no further loop iterations
    /// reports `iterations = 0`, and the accounting must floor at zero
    /// instead of wrapping the unsigned subtraction.
    #[test]
    fn performed_iterations_saturates_on_immediate_convergence() {
        assert_eq!(performed_iterations(0, Some(3)), 0);
        assert_eq!(performed_iterations(1, Some(1)), 0);
        assert_eq!(performed_iterations(5, Some(1)), 4);
        assert_eq!(performed_iterations(7, None), 7);
    }
}
