//! The converged-state cache and the shared-discretization cache.
//!
//! When a job converges, the SCF driver exports a complete warm-start
//! snapshot of the *converged* state (final density, mixer history, filter
//! windows, wavefunctions — labeled iteration 1 so a resume skips the
//! expensive first-iteration multi-pass filtering) into the job's own
//! directory. The scheduler then publishes `canonical key -> snapshot
//! path` here; a later submission with the same key warm-starts through
//! `DistScfConfig::restart_from` and converges in a few iterations.
//!
//! The entry points directly at the *donor job's* directory — snapshots
//! are never copied into a shared directory, so the two-writers-prune-
//! each-other hazard of [`dft_parallel::checkpoint::finalize`] cannot
//! arise (readers only read; each directory has exactly one writer).
//!
//! Separately, [`SpaceCache`] shares one [`FeSpace`] — with its
//! precomputed cell-to-node gather/scatter tables — among all jobs on the
//! same mesh, whatever their atoms. Building those tables dwarfs a
//! miniature SCF, so serving many small jobs from a handful of meshes
//! amortizes the setup to nearly zero.

use crate::cachekey::mesh_key;
use crate::job::MeshSpec;
use dft_fem::space::FeSpace;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// `canonical cache key -> directory holding the donor job's converged
/// snapshot`. Owned by the scheduler thread; deliberately unsynchronized.
#[derive(Debug, Default)]
pub struct ConvergedCache {
    entries: BTreeMap<u64, PathBuf>,
    hits: u64,
    misses: u64,
}

impl ConvergedCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a warm-start directory, counting the hit or miss.
    pub fn lookup(&mut self, key: u64) -> Option<PathBuf> {
        match self.entries.get(&key) {
            Some(dir) => {
                self.hits += 1;
                Some(dir.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Publish a converged snapshot for `key`. Last writer wins: any
    /// complete snapshot of the same canonical problem is equally valid as
    /// a warm-start hint.
    pub fn publish(&mut self, key: u64, dir: PathBuf) {
        self.entries.insert(key, dir);
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters since start.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// One `FeSpace` per distinct mesh, shared across jobs and worker threads.
#[derive(Default)]
pub struct SpaceCache {
    spaces: BTreeMap<u64, Arc<FeSpace>>,
}

impl SpaceCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared `FeSpace` for `mesh`, building (and memoizing) it on
    /// first use.
    pub fn get(&mut self, mesh: &MeshSpec) -> Arc<FeSpace> {
        let key = mesh_key(mesh);
        Arc::clone(
            self.spaces
                .entry(key)
                .or_insert_with(|| Arc::new(FeSpace::new(mesh.build()))),
        )
    }

    /// Distinct meshes materialized so far.
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    /// Whether no mesh has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }
}
