//! # dft-mlxc
//!
//! The **MLXC** module of the paper (Sec. 5.2): a physics-informed deep
//! neural network exchange-correlation (XC) functional trained on
//! `{rho_QMB, v_xc^exact}` pairs produced by inverse DFT.
//!
//! The energy density ansatz is the paper's Eq. (3):
//!
//! ```text
//! e_xc[rho](r) = rho^{4/3}(r) * phi(xi(r)) * F_DNN(rho, xi, s)
//! ```
//!
//! with relative spin density `xi`, spin-scaling prefactor
//! `phi = ((1+xi)^{4/3} + (1-xi)^{4/3}) / 2`, and reduced gradient
//! `s = (3 pi^2)^{1/3} |grad rho| / (2 rho^{4/3})`. The `rho^{4/3}` and
//! `phi` prefactors enforce the known coordinate- and spin-scaling
//! relations; `(rho, xi, s)` inputs make the form translationally and
//! rotationally equivariant.
//!
//! The network is the paper's: 5 layers x 80 neurons, ELU activations.
//! `v_xc = de/drho - div(de/d grad rho)` is needed both at inference
//! (inside the SCF) and inside the training loss (MSE on the
//! density-weighted potential), which requires differentiating *through*
//! the network's input gradient — implemented here as exact, hand-written
//! double backpropagation ([`nn::Mlp::grad_params`]), validated against
//! finite differences.

#![deny(unsafe_code)]
// indexed loops deliberately mirror the paper's subscript notation
#![allow(clippy::needless_range_loop)]

pub mod adam;
pub mod functional;
pub mod nn;
pub mod train;

pub use adam::Adam;
pub use functional::{MlxcModel, PointAdjoint, PointEval};
pub use nn::Mlp;
pub use train::{train, Dataset, DivergenceOp, SystemSample, TrainConfig, TrainReport};
