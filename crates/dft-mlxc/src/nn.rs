//! A scalar-output MLP with exact input gradients and double
//! backpropagation.
//!
//! The training loss of the paper penalizes the density-weighted XC
//! *potential*, which involves the network's input gradient
//! `g = dF/d(inputs)`; gradients of the loss with respect to the weights
//! therefore require differentiating through the gradient computation
//! ("double backprop"). This module implements it by hand:
//!
//! * forward:         `z_l = W_l h_{l-1} + b_l`, `h_l = sigma(z_l)`
//!   (last layer linear), output `y = h_L` (scalar);
//! * input gradient:  reverse sweep `v_{l-1} = W_l^T (v_l . sigma'(z_l))`
//!   gives `g = v_0`;
//! * param gradients of `Phi = ybar*y + <gbar, g>`: a forward `q` sweep
//!   (`q_l = (W_l q_{l-1}) . sigma'(z_l)`, `q_0 = gbar`) represents
//!   `<gbar, g>`, followed by one unified backward sweep accumulating both
//!   contributions, including the `sigma''` term.
//!
//! All of it is validated against finite differences in the tests.

use dft_linalg::gemm::gemm_slices;
use dft_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// ELU activation and its first two derivatives.
#[inline]
fn elu(z: f64) -> f64 {
    if z > 0.0 {
        z
    } else {
        z.exp() - 1.0
    }
}
#[inline]
fn elu1(z: f64) -> f64 {
    if z > 0.0 {
        1.0
    } else {
        z.exp()
    }
}
#[inline]
fn elu2(z: f64) -> f64 {
    if z > 0.0 {
        0.0
    } else {
        z.exp()
    }
}

/// One dense layer (row-major weights: `w[o * n_in + i]`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    /// Output dimension.
    pub n_out: usize,
    /// Input dimension.
    pub n_in: usize,
    /// Weights, row-major `n_out x n_in`.
    pub w: Vec<f64>,
    /// Biases, length `n_out`.
    pub b: Vec<f64>,
}

impl Dense {
    fn matvec(&self, x: &[f64], out: &mut [f64]) {
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x.iter()) {
                acc += wi * xi;
            }
            out[o] = acc;
        }
    }
    fn matvec_nobias(&self, x: &[f64], out: &mut [f64]) {
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = 0.0;
            for (wi, xi) in row.iter().zip(x.iter()) {
                acc += wi * xi;
            }
            out[o] = acc;
        }
    }
    fn matvec_t(&self, y: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let yo = y[o];
            for (oi, wi) in out.iter_mut().zip(row.iter()) {
                *oi += wi * yo;
            }
        }
    }
}

/// Gradients with the same shapes as the parameters.
#[derive(Clone, Debug)]
pub struct ParamGrads {
    /// Per-layer weight gradients.
    pub w: Vec<Vec<f64>>,
    /// Per-layer bias gradients.
    pub b: Vec<Vec<f64>>,
}

impl ParamGrads {
    /// Zero gradients shaped after `mlp`.
    pub fn zeros(mlp: &Mlp) -> Self {
        Self {
            w: mlp.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            b: mlp.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }
    /// `self += other`.
    pub fn add_assign(&mut self, other: &ParamGrads) {
        for (a, b) in self.w.iter_mut().zip(other.w.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        }
        for (a, b) in self.b.iter_mut().zip(other.b.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        }
    }
    /// Scale all entries.
    pub fn scale(&mut self, s: f64) {
        for a in self.w.iter_mut().chain(self.b.iter_mut()) {
            for x in a.iter_mut() {
                *x *= s;
            }
        }
    }
}

/// Scalar-output multilayer perceptron with ELU hidden activations and a
/// linear output layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers, input to output; the last layer has `n_out == 1`.
    pub layers: Vec<Dense>,
}

/// Forward-pass intermediates needed by the gradient routines.
pub struct ForwardCache {
    /// Pre-activations per layer.
    pub z: Vec<Vec<f64>>,
    /// Post-activations per layer (h[0] is the input).
    pub h: Vec<Vec<f64>>,
}

impl Mlp {
    /// Construct with He-style random initialization. `sizes` includes the
    /// input dimension and the final scalar output, e.g. the paper's
    /// architecture for 3 descriptors is `[3, 80, 80, 80, 80, 80, 1]`.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2 && *sizes.last().unwrap() == 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|wnd| {
                let (n_in, n_out) = (wnd[0], wnd[1]);
                let scale = (2.0 / n_in as f64).sqrt();
                Dense {
                    n_out,
                    n_in,
                    w: (0..n_out * n_in)
                        .map(|_| scale * (rng.gen::<f64>() * 2.0 - 1.0))
                        .collect(),
                    b: vec![0.0; n_out],
                }
            })
            .collect();
        Self { layers }
    }

    /// The paper's architecture: 5 hidden layers of 80 neurons.
    pub fn paper_architecture(n_inputs: usize, seed: u64) -> Self {
        Self::new(&[n_inputs, 80, 80, 80, 80, 80, 1], seed)
    }

    /// Input dimension.
    pub fn n_inputs(&self) -> usize {
        self.layers[0].n_in
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    fn forward_cache(&self, x: &[f64]) -> ForwardCache {
        let nl = self.layers.len();
        let mut z = Vec::with_capacity(nl);
        let mut h = Vec::with_capacity(nl + 1);
        h.push(x.to_vec());
        for (l, layer) in self.layers.iter().enumerate() {
            let mut zl = vec![0.0; layer.n_out];
            layer.matvec(&h[l], &mut zl);
            let hl = if l + 1 == nl {
                zl.clone() // linear output layer
            } else {
                zl.iter().map(|&v| elu(v)).collect()
            };
            z.push(zl);
            h.push(hl);
        }
        ForwardCache { z, h }
    }

    /// Scalar output `y = F(x)`.
    pub fn forward(&self, x: &[f64]) -> f64 {
        self.forward_cache(x).h.last().unwrap()[0]
    }

    /// `(y, g)` with `g = dF/dx`.
    pub fn forward_with_input_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let cache = self.forward_cache(x);
        let nl = self.layers.len();
        let y = cache.h[nl][0];
        // reverse sweep: v_{l-1} = W_l^T (v_l . sigma'(z_l))
        let mut v = vec![1.0]; // v_L, scalar (linear output)
        for l in (0..nl).rev() {
            let layer = &self.layers[l];
            let vs: Vec<f64> = if l + 1 == nl {
                v.clone()
            } else {
                v.iter()
                    .zip(cache.z[l].iter())
                    .map(|(&vi, &zi)| vi * elu1(zi))
                    .collect()
            };
            let mut prev = vec![0.0; layer.n_in];
            layer.matvec_t(&vs, &mut prev);
            v = prev;
        }
        (y, v)
    }

    /// Exact parameter gradients of `Phi = ybar * y + <gbar, g>`, where
    /// `y = F(x)` and `g = dF/dx` — double backpropagation.
    pub fn grad_params(&self, x: &[f64], ybar: f64, gbar: &[f64]) -> ParamGrads {
        let nl = self.layers.len();
        let cache = self.forward_cache(x);

        // Reverse sweep storing v_l and the masked v (vs_l = v_l . s_l)
        // so we can rebuild the q-sweep adjoints. s_l = sigma'(z_l)
        // (identity for the output layer).
        let mut v_list = vec![Vec::new(); nl + 1]; // v_l for l = 0..=nl
        v_list[nl] = vec![1.0];
        for l in (0..nl).rev() {
            let layer = &self.layers[l];
            let vs: Vec<f64> = if l + 1 == nl {
                v_list[nl].clone()
            } else {
                v_list[l + 1]
                    .iter()
                    .zip(cache.z[l].iter())
                    .map(|(&vi, &zi)| vi * elu1(zi))
                    .collect()
            };
            let mut prev = vec![0.0; layer.n_in];
            layer.matvec_t(&vs, &mut prev);
            v_list[l] = prev;
        }

        // Forward q-sweep representing <gbar, g>:
        // q_0 = gbar; a_l = W_l q_{l-1}; q_l = a_l . s_l.
        let mut q_list = Vec::with_capacity(nl + 1);
        q_list.push(gbar.to_vec());
        let mut a_list = Vec::with_capacity(nl);
        for (l, layer) in self.layers.iter().enumerate() {
            let mut a = vec![0.0; layer.n_out];
            layer.matvec_nobias(&q_list[l], &mut a);
            let q = if l + 1 == nl {
                a.clone()
            } else {
                a.iter()
                    .zip(cache.z[l].iter())
                    .map(|(&ai, &zi)| ai * elu1(zi))
                    .collect()
            };
            a_list.push(a);
            q_list.push(q);
        }

        // Unified backward sweep. Adjoint state:
        //   hbar_l  — adjoint of h_l (post-activation)
        //   qbar_l  — adjoint of q_l
        let mut grads = ParamGrads::zeros(self);
        let mut hbar = vec![ybar]; // y = h_L (scalar)
        let mut qbar = vec![1.0]; // Phi_g = q_L (scalar)
        for l in (0..nl).rev() {
            let layer = &self.layers[l];
            let is_out = l + 1 == nl;
            let n_out = layer.n_out;
            // s_l, sigma''(z_l)
            let zl = &cache.z[l];
            // sbar_l = qbar_l . a_l  (only where activation nonlinear)
            // zbar_l = hbar_l . s_l + sbar_l . sigma''(z_l)
            let mut zbar = vec![0.0; n_out];
            let mut abar = vec![0.0; n_out];
            for o in 0..n_out {
                let s = if is_out { 1.0 } else { elu1(zl[o]) };
                let s2 = if is_out { 0.0 } else { elu2(zl[o]) };
                let sbar = qbar[o] * a_list[l][o] * if is_out { 0.0 } else { 1.0 };
                zbar[o] = hbar[o] * s + sbar * s2;
                abar[o] = qbar[o] * s;
            }
            // parameter grads: W_l gets zbar h_{l-1}^T + abar q_{l-1}^T
            for o in 0..n_out {
                let row = &mut grads.w[l][o * layer.n_in..(o + 1) * layer.n_in];
                for i in 0..layer.n_in {
                    row[i] += zbar[o] * cache.h[l][i] + abar[o] * q_list[l][i];
                }
                grads.b[l][o] += zbar[o];
            }
            // propagate
            let mut hprev = vec![0.0; layer.n_in];
            layer.matvec_t(&zbar, &mut hprev);
            let mut qprev = vec![0.0; layer.n_in];
            layer.matvec_t(&abar, &mut qprev);
            hbar = hprev;
            qbar = qprev;
        }
        grads
    }

    /// Serialize to JSON (for persisting trained MLXC models).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serializable")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Batched MLP inference: evaluate the network on many input points at
/// once, turning the per-point `W h` matvecs into one GEMM per layer over
/// the whole batch — which rides the packed SIMD microkernel engine of
/// `dft_linalg` instead of the scalar row loops in [`Dense::matvec`].
///
/// `Dense` stores `W` row-major (`n_out x n_in`), which is exactly the
/// column-major `n_in x n_out` matrix `W^T`; each layer is therefore
/// `Z = op(W^T)^T H = gemm(W^T, ConjTrans, H)` with zero repacking cost.
/// Activation buffers ping-pong and are recycled across calls.
pub struct BatchedMlp {
    /// Per-layer `(W^T as a column-major n_in x n_out matrix, bias)`.
    layers: Vec<(Matrix<f64>, Vec<f64>)>,
    h0: Vec<f64>,
    h1: Vec<f64>,
}

impl BatchedMlp {
    /// Capture the weights of `mlp` for batched evaluation.
    pub fn new(mlp: &Mlp) -> Self {
        let layers = mlp
            .layers
            .iter()
            .map(|l| (Matrix::from_vec(l.n_in, l.n_out, l.w.clone()), l.b.clone()))
            .collect();
        Self {
            layers,
            h0: Vec::new(),
            h1: Vec::new(),
        }
    }

    /// Evaluate the network on `xs` (column-major `n_inputs x npoints`, one
    /// point per column), writing the scalar outputs into `out` (resized to
    /// `npoints`). Allocation-free in steady state.
    // dftlint:hot
    pub fn forward_batch_into(&mut self, xs: &Matrix<f64>, out: &mut Vec<f64>) {
        let np = xs.ncols();
        let nl = self.layers.len();
        assert_eq!(
            xs.nrows(),
            self.layers[0].0.nrows(),
            "BatchedMlp: input dimension mismatch"
        );
        let BatchedMlp { layers, h0, h1 } = self;
        if h0.len() < xs.as_slice().len() {
            h0.resize(xs.as_slice().len(), 0.0);
        }
        h0[..xs.as_slice().len()].copy_from_slice(xs.as_slice());
        let mut cur: &mut Vec<f64> = h0;
        let mut nxt: &mut Vec<f64> = h1;
        let mut n_in = xs.nrows();
        for (l, (wt, b)) in layers.iter().enumerate() {
            let n_out = wt.ncols();
            if nxt.len() < n_out * np {
                nxt.resize(n_out * np, 0.0);
            }
            gemm_slices(
                n_out,
                np,
                n_in,
                1.0,
                wt.as_slice(),
                wt.nrows(),
                true,
                &cur[..n_in * np],
                n_in,
                false,
                0.0,
                &mut nxt[..n_out * np],
            );
            let last = l + 1 == nl;
            for col in nxt[..n_out * np].chunks_exact_mut(n_out) {
                for (v, &bo) in col.iter_mut().zip(b.iter()) {
                    let z = *v + bo;
                    *v = if last { z } else { elu(z) };
                }
            }
            std::mem::swap(&mut cur, &mut nxt);
            n_in = n_out;
        }
        out.resize(np, 0.0);
        out.copy_from_slice(&cur[..np]);
    }

    /// Convenience wrapper returning a fresh output vector.
    pub fn forward_batch(&mut self, xs: &Matrix<f64>) -> Vec<f64> {
        let mut out = Vec::new();
        self.forward_batch_into(xs, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(seed: u64) -> Mlp {
        Mlp::new(&[3, 7, 5, 1], seed)
    }

    #[test]
    fn forward_is_deterministic_and_seed_dependent() {
        let a = tiny_net(1);
        let b = tiny_net(1);
        let c = tiny_net(2);
        let x = [0.3, -0.8, 1.2];
        assert_eq!(a.forward(&x), b.forward(&x));
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let net = tiny_net(7);
        let x = [0.25, -0.6, 0.9];
        let (_, g) = net.forward_with_input_grad(&x);
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            let mut xm = x;
            xp[i] += eps;
            xm[i] -= eps;
            let fd = (net.forward(&xp) - net.forward(&xm)) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-7, "i={i}: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn param_gradients_of_y_match_finite_differences() {
        let mut net = tiny_net(3);
        let x = [0.5, 0.1, -0.4];
        let grads = net.grad_params(&x, 1.0, &[0.0, 0.0, 0.0]);
        let eps = 1e-6;
        for l in 0..net.layers.len() {
            for k in [0usize, net.layers[l].w.len() / 2, net.layers[l].w.len() - 1] {
                let orig = net.layers[l].w[k];
                net.layers[l].w[k] = orig + eps;
                let yp = net.forward(&x);
                net.layers[l].w[k] = orig - eps;
                let ym = net.forward(&x);
                net.layers[l].w[k] = orig;
                let fd = (yp - ym) / (2.0 * eps);
                assert!(
                    (grads.w[l][k] - fd).abs() < 1e-6,
                    "layer {l} w[{k}]: {} vs {fd}",
                    grads.w[l][k]
                );
            }
            let orig = net.layers[l].b[0];
            net.layers[l].b[0] = orig + eps;
            let yp = net.forward(&x);
            net.layers[l].b[0] = orig - eps;
            let ym = net.forward(&x);
            net.layers[l].b[0] = orig;
            let fd = (yp - ym) / (2.0 * eps);
            assert!((grads.b[l][0] - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn double_backprop_matches_finite_differences() {
        // Phi = <gbar, g>: check dPhi/dW against FD of the input gradient.
        let mut net = tiny_net(11);
        // keep away from the ELU kink for clean finite differences
        let x = [0.37, -0.21, 0.55];
        let gbar = [0.7, -1.3, 0.4];
        let grads = net.grad_params(&x, 0.0, &gbar);
        let phi = |net: &Mlp| {
            let (_, g) = net.forward_with_input_grad(&x);
            g.iter().zip(gbar.iter()).map(|(a, b)| a * b).sum::<f64>()
        };
        let eps = 1e-6;
        for l in 0..net.layers.len() {
            let nw = net.layers[l].w.len();
            for k in [0usize, nw / 3, nw / 2, nw - 1] {
                let orig = net.layers[l].w[k];
                net.layers[l].w[k] = orig + eps;
                let pp = phi(&net);
                net.layers[l].w[k] = orig - eps;
                let pm = phi(&net);
                net.layers[l].w[k] = orig;
                let fd = (pp - pm) / (2.0 * eps);
                assert!(
                    (grads.w[l][k] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                    "layer {l} w[{k}]: {} vs {fd}",
                    grads.w[l][k]
                );
            }
            let orig = net.layers[l].b[0];
            net.layers[l].b[0] = orig + eps;
            let pp = phi(&net);
            net.layers[l].b[0] = orig - eps;
            let pm = phi(&net);
            net.layers[l].b[0] = orig;
            let fd = (pp - pm) / (2.0 * eps);
            assert!(
                (grads.b[l][0] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "layer {l} b[0]: {} vs {fd}",
                grads.b[l][0]
            );
        }
    }

    #[test]
    fn combined_objective_gradients() {
        // Phi = 2*y + <gbar, g> all at once
        let mut net = tiny_net(5);
        let x = [0.1, 0.9, -0.33];
        let gbar = [-0.5, 0.25, 1.1];
        let grads = net.grad_params(&x, 2.0, &gbar);
        let phi = |net: &Mlp| {
            let (y, g) = net.forward_with_input_grad(&x);
            2.0 * y + g.iter().zip(gbar.iter()).map(|(a, b)| a * b).sum::<f64>()
        };
        let eps = 1e-6;
        let l = 1;
        for k in [0usize, 5, 17] {
            let orig = net.layers[l].w[k];
            net.layers[l].w[k] = orig + eps;
            let pp = phi(&net);
            net.layers[l].w[k] = orig - eps;
            let pm = phi(&net);
            net.layers[l].w[k] = orig;
            let fd = (pp - pm) / (2.0 * eps);
            assert!((grads.w[l][k] - fd).abs() < 1e-5 * (1.0 + fd.abs()));
        }
    }

    #[test]
    fn batched_forward_matches_per_point_forward() {
        let net = Mlp::paper_architecture(3, 13);
        let np = 37; // deliberately not a multiple of any tile width
        let xs = Matrix::from_fn(3, np, |i, j| ((i * 11 + j * 7) as f64 * 0.13).sin());
        let mut batched = BatchedMlp::new(&net);
        let got = batched.forward_batch(&xs);
        assert_eq!(got.len(), np);
        for j in 0..np {
            let want = net.forward(xs.col(j));
            assert!(
                (got[j] - want).abs() < 1e-12 * (1.0 + want.abs()),
                "point {j}: {} vs {want}",
                got[j]
            );
        }
        // recycled buffers: a second (smaller) batch must still be right
        let xs2 = Matrix::from_fn(3, 5, |i, j| ((i + j * 3) as f64 * 0.31).cos());
        let got2 = batched.forward_batch(&xs2);
        for j in 0..5 {
            let want = net.forward(xs2.col(j));
            assert!((got2[j] - want).abs() < 1e-12 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn paper_architecture_shape() {
        let net = Mlp::paper_architecture(3, 0);
        assert_eq!(net.n_layers(), 6);
        assert_eq!(net.n_inputs(), 3);
        // params: 3*80+80 + 4*(80*80+80) + 80+1
        assert_eq!(net.n_params(), 3 * 80 + 80 + 4 * (80 * 80 + 80) + 80 + 1);
    }

    #[test]
    fn json_round_trip() {
        let net = tiny_net(42);
        let s = net.to_json();
        let back = Mlp::from_json(&s).unwrap();
        let x = [0.2, 0.4, 0.6];
        assert_eq!(net.forward(&x), back.forward(&x));
    }
}
