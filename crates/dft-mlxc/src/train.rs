//! Training of the MLXC functional from `{rho, v_xc^exact}` pairs.
//!
//! The paper's composite loss (Sec. 5.2): mean-squared errors in the XC
//! energy `E_xc` and the density-weighted XC potential `rho * v_xc`, with
//! `v_xc^ML` obtained by backpropagation. Since
//! `v_xc = de/drho - div(de/d|grad rho| * grad rho/|grad rho|)`, the loss
//! gradient must traverse a (linear, mesh-dependent) divergence operator:
//! callers supply it through [`DivergenceOp`], including its adjoint, and
//! the chain rule closes through
//! [`crate::functional::MlxcModel::accumulate_point_grads`].

use crate::adam::Adam;
use crate::functional::{MlxcModel, PointAdjoint};
use crate::nn::ParamGrads;

/// A linear divergence operator on nodal vector fields, with its adjoint.
///
/// The FE implementation lives in dft-core (it owns the mesh); tests here
/// use a 1D periodic finite-difference operator.
pub trait DivergenceOp {
    /// `div(v)` for a nodal vector field given by components.
    fn divergence(&self, vx: &[f64], vy: &[f64], vz: &[f64]) -> Vec<f64>;
    /// Adjoint fields `A_d` with `<lambda, div(v)> = sum_d <A_d, v_d>`.
    fn adjoint(&self, lambda: &[f64]) -> [Vec<f64>; 3];
}

/// One training system (one molecule/atom from invDFT).
pub struct SystemSample {
    /// Name (for logs).
    pub name: String,
    /// Electron density at nodes.
    pub rho: Vec<f64>,
    /// Relative spin density at nodes.
    pub xi: Vec<f64>,
    /// Density gradient components at nodes.
    pub grad: [Vec<f64>; 3],
    /// Integration weights (diagonal mass).
    pub weights: Vec<f64>,
    /// Target exact XC potential at nodes (from invDFT).
    pub vxc_target: Vec<f64>,
    /// Target XC energy of the system.
    pub exc_target: f64,
    /// Divergence operator of this system's mesh.
    pub div_op: Box<dyn DivergenceOp>,
}

impl SystemSample {
    /// Gradient magnitude at each node.
    pub fn grad_norm(&self) -> Vec<f64> {
        (0..self.rho.len())
            .map(|i| {
                (self.grad[0][i].powi(2) + self.grad[1][i].powi(2) + self.grad[2][i].powi(2)).sqrt()
            })
            .collect()
    }
}

/// The training set.
pub type Dataset = Vec<SystemSample>;

/// Training hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Weight of the XC-energy MSE term.
    pub w_energy: f64,
    /// Weight of the density-weighted-potential MSE term.
    pub w_potential: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            lr: 2e-3,
            w_energy: 1.0,
            w_potential: 1.0,
        }
    }
}

/// Training outcome.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Loss after each epoch.
    pub loss_history: Vec<f64>,
    /// Final composite loss.
    pub final_loss: f64,
}

/// Evaluate the full MLXC potential `v_xc` on one system (local part minus
/// the divergence of the gradient correction).
pub fn evaluate_vxc(model: &MlxcModel, sys: &SystemSample) -> Vec<f64> {
    let n = sys.rho.len();
    let gn = sys.grad_norm();
    let mut a = vec![0.0; n];
    let mut vx = vec![0.0; n];
    let mut vy = vec![0.0; n];
    let mut vz = vec![0.0; n];
    for i in 0..n {
        let p = model.eval_point(sys.rho[i], sys.xi[i], gn[i]);
        a[i] = p.de_drho;
        if gn[i] > 1e-12 {
            let c = p.de_dgrad / gn[i];
            vx[i] = c * sys.grad[0][i];
            vy[i] = c * sys.grad[1][i];
            vz[i] = c * sys.grad[2][i];
        }
    }
    let div = sys.div_op.divergence(&vx, &vy, &vz);
    (0..n).map(|i| a[i] - div[i]).collect()
}

/// Composite loss and its parameter gradient over the whole dataset.
pub fn loss_and_grads(model: &MlxcModel, data: &Dataset, cfg: &TrainConfig) -> (f64, ParamGrads) {
    let mut grads = ParamGrads::zeros(&model.net);
    let mut loss = 0.0;
    for sys in data {
        let n = sys.rho.len();
        let gn = sys.grad_norm();
        // forward: pointwise evals
        let evals: Vec<_> = (0..n)
            .map(|i| model.eval_point(sys.rho[i], sys.xi[i], gn[i]))
            .collect();
        let exc: f64 = (0..n).map(|i| sys.weights[i] * evals[i].e).sum();
        let mut vx = vec![0.0; n];
        let mut vy = vec![0.0; n];
        let mut vz = vec![0.0; n];
        let mut unit = vec![[0.0f64; 3]; n];
        for i in 0..n {
            if gn[i] > 1e-12 {
                let u = [
                    sys.grad[0][i] / gn[i],
                    sys.grad[1][i] / gn[i],
                    sys.grad[2][i] / gn[i],
                ];
                unit[i] = u;
                vx[i] = evals[i].de_dgrad * u[0];
                vy[i] = evals[i].de_dgrad * u[1];
                vz[i] = evals[i].de_dgrad * u[2];
            }
        }
        let div = sys.div_op.divergence(&vx, &vy, &vz);
        let v: Vec<f64> = (0..n).map(|i| evals[i].de_drho - div[i]).collect();

        // loss terms (normalized per system)
        let wsum: f64 = sys.weights.iter().sum();
        let de = exc - sys.exc_target;
        loss += cfg.w_energy * de * de;
        let mut lv = 0.0;
        let mut lambda = vec![0.0; n]; // dL/dv_i
        for i in 0..n {
            let r2 = sys.rho[i] * sys.rho[i];
            let dv = v[i] - sys.vxc_target[i];
            lv += sys.weights[i] * r2 * dv * dv;
            lambda[i] = 2.0 * cfg.w_potential * sys.weights[i] * r2 * dv / wsum;
        }
        loss += cfg.w_potential * lv / wsum;

        // adjoints: v = a - div(V);  dL/da = lambda ; dL/dV_d = -A_d
        let adj_fields = sys.div_op.adjoint(&lambda);
        for i in 0..n {
            let adj_e = 2.0 * cfg.w_energy * de * sys.weights[i];
            let adj_a = lambda[i];
            // c_i = de_dgrad; V_d = c_i * u_d => dL/dc = -sum_d A_d u_d
            let adj_c = -(adj_fields[0][i] * unit[i][0]
                + adj_fields[1][i] * unit[i][1]
                + adj_fields[2][i] * unit[i][2]);
            model.accumulate_point_grads(
                sys.rho[i],
                sys.xi[i],
                gn[i],
                PointAdjoint {
                    e: adj_e,
                    de_drho: adj_a,
                    de_dgrad: adj_c,
                },
                &mut grads,
            );
        }
    }
    (loss, grads)
}

/// Full-batch Adam training loop.
pub fn train(model: &mut MlxcModel, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    let mut opt = Adam::new(&model.net, cfg.lr);
    let mut history = Vec::with_capacity(cfg.epochs);
    for _epoch in 0..cfg.epochs {
        let (loss, grads) = loss_and_grads(model, data, cfg);
        opt.step(&mut model.net, &grads);
        history.push(loss);
    }
    let final_loss = history.last().copied().unwrap_or(f64::NAN);
    TrainReport {
        loss_history: history,
        final_loss,
    }
}

/// 1D periodic central-difference divergence (x only) — used by tests and
/// by the model-problem pipelines.
pub struct PeriodicFd1d {
    /// Grid spacing.
    pub h: f64,
}

impl DivergenceOp for PeriodicFd1d {
    fn divergence(&self, vx: &[f64], _vy: &[f64], _vz: &[f64]) -> Vec<f64> {
        let n = vx.len();
        (0..n)
            .map(|i| (vx[(i + 1) % n] - vx[(i + n - 1) % n]) / (2.0 * self.h))
            .collect()
    }
    fn adjoint(&self, lambda: &[f64]) -> [Vec<f64>; 3] {
        // adjoint of central difference on a periodic grid = negative of it
        let n = lambda.len();
        let ax: Vec<f64> = (0..n)
            .map(|i| -(lambda[(i + 1) % n] - lambda[(i + n - 1) % n]) / (2.0 * self.h))
            .collect();
        [ax, vec![0.0; n], vec![0.0; n]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_system(model_teacher: &MlxcModel) -> SystemSample {
        // 1D periodic density profile; targets generated by a hidden
        // "teacher" functional (the synthetic-QMB pattern of DESIGN.md S2).
        let n = 48;
        let h = 0.25;
        let rho: Vec<f64> = (0..n)
            .map(|i| {
                0.4 + 0.3
                    * (2.0 * std::f64::consts::PI * i as f64 / n as f64)
                        .sin()
                        .powi(2)
            })
            .collect();
        let gradx: Vec<f64> = (0..n)
            .map(|i| (rho[(i + 1) % n] - rho[(i + n - 1) % n]) / (2.0 * h))
            .collect();
        let weights = vec![h; n];
        let xi = vec![0.0; n];
        let sys_partial = SystemSample {
            name: "toy".into(),
            rho: rho.clone(),
            xi,
            grad: [gradx, vec![0.0; n], vec![0.0; n]],
            weights,
            vxc_target: vec![0.0; n],
            exc_target: 0.0,
            div_op: Box::new(PeriodicFd1d { h }),
        };
        let v = evaluate_vxc(model_teacher, &sys_partial);
        let gn = sys_partial.grad_norm();
        let e = model_teacher.energy(&sys_partial.rho, &sys_partial.xi, &gn, &sys_partial.weights);
        SystemSample {
            vxc_target: v,
            exc_target: e,
            ..sys_partial
        }
    }

    #[test]
    fn fd1d_adjoint_identity() {
        let op = PeriodicFd1d { h: 0.5 };
        let n = 16;
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let l: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let div = op.divergence(&v, &v, &v);
        let lhs: f64 = l.iter().zip(div.iter()).map(|(a, b)| a * b).sum();
        let adj = op.adjoint(&l);
        let rhs: f64 = adj[0].iter().zip(v.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12, "{lhs} vs {rhs}");
    }

    #[test]
    fn loss_gradient_matches_finite_difference() {
        let teacher = MlxcModel::new(100);
        let mut student = MlxcModel::from_net(crate::nn::Mlp::new(&[3, 6, 6, 1], 7));
        let data = vec![toy_system(&teacher)];
        let cfg = TrainConfig {
            epochs: 1,
            lr: 1e-3,
            w_energy: 0.7,
            w_potential: 1.3,
        };
        let (_, grads) = loss_and_grads(&student, &data, &cfg);
        let eps = 1e-6;
        for (l, k) in [(0usize, 2usize), (1, 10), (2, 3)] {
            let orig = student.net.layers[l].w[k];
            student.net.layers[l].w[k] = orig + eps;
            let (lp, _) = loss_and_grads(&student, &data, &cfg);
            student.net.layers[l].w[k] = orig - eps;
            let (lm, _) = loss_and_grads(&student, &data, &cfg);
            student.net.layers[l].w[k] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (grads.w[l][k] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "l={l} k={k}: {} vs {fd}",
                grads.w[l][k]
            );
        }
    }

    #[test]
    fn training_recovers_teacher_potential() {
        // student learns the hidden teacher's (E, v) targets — the core of
        // the MLXC pipeline
        let teacher = MlxcModel::new(55);
        let mut student = MlxcModel::from_net(crate::nn::Mlp::new(&[3, 10, 10, 1], 8));
        let data = vec![toy_system(&teacher)];
        let cfg = TrainConfig {
            epochs: 300,
            lr: 5e-3,
            w_energy: 1.0,
            w_potential: 1.0,
        };
        let (l0, _) = loss_and_grads(&student, &data, &cfg);
        let report = train(&mut student, &data, &cfg);
        assert!(
            report.final_loss < 0.05 * l0,
            "loss {l0} -> {}",
            report.final_loss
        );
        // loss history is broadly decreasing
        let early: f64 = report.loss_history[..10].iter().sum();
        let late: f64 = report.loss_history[report.loss_history.len() - 10..]
            .iter()
            .sum();
        assert!(late < early);
    }

    #[test]
    fn trained_energy_approaches_target() {
        let teacher = MlxcModel::new(71);
        let mut student = MlxcModel::from_net(crate::nn::Mlp::new(&[3, 12, 1], 17));
        let data = vec![toy_system(&teacher)];
        let cfg = TrainConfig {
            epochs: 400,
            lr: 5e-3,
            w_energy: 5.0,
            w_potential: 0.2,
        };
        train(&mut student, &data, &cfg);
        let sys = &data[0];
        let gn = sys.grad_norm();
        let e = student.energy(&sys.rho, &sys.xi, &gn, &sys.weights);
        assert!(
            (e - sys.exc_target).abs() < 0.05 * sys.exc_target.abs().max(0.1),
            "E {e} vs target {}",
            sys.exc_target
        );
    }
}
