//! Adam optimizer over the MLP parameter set.

use crate::nn::{Mlp, ParamGrads};

/// Adam state (first/second moments mirror the parameter shapes).
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: ParamGrads,
    v: ParamGrads,
}

impl Adam {
    /// Standard Adam with the given learning rate.
    pub fn new(mlp: &Mlp, lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: ParamGrads::zeros(mlp),
            v: ParamGrads::zeros(mlp),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Set the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// One parameter update from accumulated gradients.
    pub fn step(&mut self, mlp: &mut Mlp, grads: &ParamGrads) {
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.beta2.powi(self.t as i32);
        for l in 0..mlp.layers.len() {
            for k in 0..mlp.layers[l].w.len() {
                let g = grads.w[l][k];
                self.m.w[l][k] = self.beta1 * self.m.w[l][k] + (1.0 - self.beta1) * g;
                self.v.w[l][k] = self.beta2 * self.v.w[l][k] + (1.0 - self.beta2) * g * g;
                let mhat = self.m.w[l][k] / b1c;
                let vhat = self.v.w[l][k] / b2c;
                mlp.layers[l].w[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            for k in 0..mlp.layers[l].b.len() {
                let g = grads.b[l][k];
                self.m.b[l][k] = self.beta1 * self.m.b[l][k] + (1.0 - self.beta1) * g;
                self.v.b[l][k] = self.beta2 * self.v.b[l][k] + (1.0 - self.beta2) * g * g;
                let mhat = self.m.b[l][k] / b1c;
                let vhat = self.v.b[l][k] / b2c;
                mlp.layers[l].b[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_regression_target() {
        // fit y = 2 x0 - x1 on a tiny net
        let mut net = Mlp::new(&[2, 8, 1], 3);
        let mut opt = Adam::new(&net, 1e-2);
        let data: Vec<([f64; 2], f64)> = (0..64)
            .map(|i| {
                let x0 = (i as f64 * 0.1).sin();
                let x1 = (i as f64 * 0.07).cos();
                ([x0, x1], 2.0 * x0 - x1)
            })
            .collect();
        let loss = |net: &Mlp| -> f64 {
            data.iter()
                .map(|(x, t)| (net.forward(x) - t).powi(2))
                .sum::<f64>()
                / data.len() as f64
        };
        let l0 = loss(&net);
        for _ in 0..400 {
            let mut grads = crate::nn::ParamGrads::zeros(&net);
            for (x, t) in &data {
                let y = net.forward(x);
                let g = net.grad_params(x, 2.0 * (y - t) / data.len() as f64, &[0.0, 0.0]);
                grads.add_assign(&g);
            }
            opt.step(&mut net, &grads);
        }
        let l1 = loss(&net);
        assert!(l1 < l0 * 0.05, "loss {l0} -> {l1}");
    }
}
