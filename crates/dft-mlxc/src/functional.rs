//! The MLXC functional form (paper Eq. 3) wrapped around the MLP.
//!
//! `e_xc[rho](r) = rho^{4/3} phi(xi) F_DNN(t(rho, xi, s))` with descriptor
//! conditioning transforms `t = [ln(1 + rho), xi, s/(1 + s)]` (bounded,
//! monotone — purely numerical conditioning; the physics enters through the
//! prefactors, which enforce the coordinate- and spin-scaling relations).
//!
//! The functional derivative splits into a local part and a
//! gradient-correction part:
//!
//! ```text
//! v_xc = de/drho - div( de/d|grad rho| * grad rho / |grad rho| )
//! ```
//!
//! [`MlxcModel::eval_point`] returns `e`, `de/drho` and `de/d|grad rho|`
//! per point; the FE divergence assembly lives with the caller (dft-core),
//! which owns the mesh. For training, [`MlxcModel::accumulate_point_grads`]
//! backpropagates adjoints of all three outputs into the network
//! parameters (double backprop through the input gradient).

use crate::nn::{BatchedMlp, Mlp, ParamGrads};
use dft_linalg::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Reduced-gradient prefactor `(3 pi^2)^{1/3} / 2`.
pub const KS: f64 = 1.546_833_863_140_067_8;

/// Floor on the density to keep descriptors finite in vacuum regions.
pub const RHO_FLOOR: f64 = 1e-10;

/// Pointwise evaluation of the functional.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointEval {
    /// XC energy density (per volume), `e_xc(r)`.
    pub e: f64,
    /// Local part of the potential: `de/drho` at fixed `|grad rho|`.
    pub de_drho: f64,
    /// Gradient-correction coefficient: `de/d|grad rho|`.
    pub de_dgrad: f64,
}

/// Adjoints of [`PointEval`] for training.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointAdjoint {
    /// dL/de.
    pub e: f64,
    /// dL/d(de_drho).
    pub de_drho: f64,
    /// dL/d(de_dgrad).
    pub de_dgrad: f64,
}

/// The machine-learned XC functional.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MlxcModel {
    /// The underlying network, inputs `[ln(1+rho), xi, s/(1+s)]`.
    pub net: Mlp,
}

impl MlxcModel {
    /// Fresh (untrained) model with the paper's architecture.
    pub fn new(seed: u64) -> Self {
        Self {
            net: Mlp::paper_architecture(3, seed),
        }
    }

    /// Wrap an existing network (3 inputs required).
    pub fn from_net(net: Mlp) -> Self {
        assert_eq!(net.n_inputs(), 3);
        Self { net }
    }

    /// Spin-scaling prefactor `phi(xi)`.
    pub fn phi(xi: f64) -> f64 {
        0.5 * ((1.0 + xi).powf(4.0 / 3.0) + (1.0 - xi).powf(4.0 / 3.0))
    }

    /// Reduced density gradient `s`.
    pub fn reduced_gradient(rho: f64, grad_norm: f64) -> f64 {
        KS * grad_norm / rho.max(RHO_FLOOR).powf(4.0 / 3.0)
    }

    /// Descriptor transform `t(rho, xi, s)` and the derivatives
    /// `dt1/drho`, `dt3/ds` needed for chain rules.
    fn descriptors(rho: f64, xi: f64, s: f64) -> ([f64; 3], f64, f64) {
        let t = [(1.0 + rho).ln(), xi, s / (1.0 + s)];
        let dt1 = 1.0 / (1.0 + rho);
        let dt3 = 1.0 / ((1.0 + s) * (1.0 + s));
        (t, dt1, dt3)
    }

    /// Evaluate `e`, `de/drho`, `de/d|grad rho|` at one point.
    pub fn eval_point(&self, rho: f64, xi: f64, grad_norm: f64) -> PointEval {
        let rho_c = rho.max(RHO_FLOOR);
        let s = Self::reduced_gradient(rho_c, grad_norm);
        let phi = Self::phi(xi.clamp(-1.0, 1.0));
        let (t, dt1, dt3) = Self::descriptors(rho_c, xi, s);
        let (f, g) = self.net.forward_with_input_grad(&t);
        let r43 = rho_c.powf(4.0 / 3.0);
        let r13 = rho_c.powf(1.0 / 3.0);

        let e = r43 * phi * f;
        // dF/drho at fixed |grad rho| = F_t1 dt1 + F_t3 dt3 * ds/drho,
        // ds/drho = -4/3 s / rho
        let df_drho = g[0] * dt1 + g[2] * dt3 * (-4.0 / 3.0 * s / rho_c);
        let de_drho = (4.0 / 3.0) * r13 * phi * f + r43 * phi * df_drho;
        // de/d|grad rho| = rho^{4/3} phi F_t3 dt3 * ds/d|grad| ;
        // ds/d|grad| = KS / rho^{4/3}
        let de_dgrad = phi * g[2] * dt3 * KS;
        PointEval {
            e,
            de_drho,
            de_dgrad,
        }
    }

    /// XC energy of a sampled density: `sum_i w_i e_i`.
    ///
    /// Only the network *value* enters the energy, so the whole sample is
    /// evaluated in one [`BatchedMlp`] pass — one GEMM per layer over all
    /// points — instead of a per-point forward with its input-gradient
    /// sweep.
    pub fn energy(&self, rho: &[f64], xi: &[f64], grad_norm: &[f64], weights: &[f64]) -> f64 {
        let n = rho.len();
        assert!(xi.len() == n && grad_norm.len() == n && weights.len() == n);
        if n == 0 {
            return 0.0;
        }
        let mut xs = Matrix::zeros(3, n);
        for i in 0..n {
            let rho_c = rho[i].max(RHO_FLOOR);
            let s = Self::reduced_gradient(rho_c, grad_norm[i]);
            let (t, _, _) = Self::descriptors(rho_c, xi[i], s);
            xs.col_mut(i).copy_from_slice(&t);
        }
        let f = BatchedMlp::new(&self.net).forward_batch(&xs);
        (0..n)
            .map(|i| {
                let rho_c = rho[i].max(RHO_FLOOR);
                let phi = Self::phi(xi[i].clamp(-1.0, 1.0));
                weights[i] * rho_c.powf(4.0 / 3.0) * phi * f[i]
            })
            .sum()
    }

    /// Accumulate parameter gradients for one point given output adjoints.
    ///
    /// This is exact double backprop: `e` and `de_drho`/`de_dgrad` involve
    /// both the network value `F` and its input gradient `dF/dt`, so the
    /// parameter gradient combines a `ybar` and a `gbar` contribution plus
    /// a finite-difference-free second-order term approximated by the
    /// symmetric split below.
    pub fn accumulate_point_grads(
        &self,
        rho: f64,
        xi: f64,
        grad_norm: f64,
        adj: PointAdjoint,
        grads: &mut ParamGrads,
    ) {
        let rho_c = rho.max(RHO_FLOOR);
        let s = Self::reduced_gradient(rho_c, grad_norm);
        let phi = Self::phi(xi.clamp(-1.0, 1.0));
        let (t, dt1, dt3) = Self::descriptors(rho_c, xi, s);
        let r43 = rho_c.powf(4.0 / 3.0);
        let r13 = rho_c.powf(1.0 / 3.0);

        // Collect the total adjoint on F (ybar) and on dF/dt (gbar):
        // e       = r43 phi F                      -> ybar += adj.e * r43 phi
        // de_drho = 4/3 r13 phi F
        //         + r43 phi (F_t1 dt1 - F_t3 dt3 4s/(3 rho))
        //                                          -> ybar += adj.de_drho * 4/3 r13 phi
        //                                          -> gbar[0] += adj.de_drho * r43 phi dt1
        //                                          -> gbar[2] += adj.de_drho * r43 phi dt3 * (-4s/(3rho))
        // de_dgrad = phi F_t3 dt3 KS              -> gbar[2] += adj.de_dgrad * phi dt3 KS
        let ybar = adj.e * r43 * phi + adj.de_drho * (4.0 / 3.0) * r13 * phi;
        let mut gbar = [0.0; 3];
        gbar[0] = adj.de_drho * r43 * phi * dt1;
        gbar[2] = adj.de_drho * r43 * phi * dt3 * (-4.0 / 3.0 * s / rho_c)
            + adj.de_dgrad * phi * dt3 * KS;

        let g = self.net.grad_params(&t, ybar, &gbar);
        grads.add_assign(&g);
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serializable")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_is_one_for_unpolarized_and_scales_for_polarized() {
        assert!((MlxcModel::phi(0.0) - 1.0).abs() < 1e-14);
        assert!((MlxcModel::phi(1.0) - 0.5 * 2f64.powf(4.0 / 3.0)).abs() < 1e-14);
        assert_eq!(MlxcModel::phi(0.5), MlxcModel::phi(-0.5)); // even in xi
    }

    #[test]
    fn reduced_gradient_matches_definition() {
        let rho = 0.8;
        let g = 0.5;
        let s = MlxcModel::reduced_gradient(rho, g);
        let expect =
            (3.0 * std::f64::consts::PI.powi(2)).powf(1.0 / 3.0) * g / (2.0 * rho.powf(4.0 / 3.0));
        assert!((s - expect).abs() < 1e-12);
    }

    #[test]
    fn de_drho_matches_finite_difference() {
        let m = MlxcModel::new(9);
        let (xi, gn) = (0.0, 0.3);
        let rho = 0.6;
        let p = m.eval_point(rho, xi, gn);
        let eps = 1e-6;
        let ep = m.eval_point(rho + eps, xi, gn).e;
        let em = m.eval_point(rho - eps, xi, gn).e;
        let fd = (ep - em) / (2.0 * eps);
        assert!(
            (p.de_drho - fd).abs() < 1e-6 * (1.0 + fd.abs()),
            "{} vs {fd}",
            p.de_drho
        );
    }

    #[test]
    fn de_dgrad_matches_finite_difference() {
        let m = MlxcModel::new(4);
        let (rho, xi) = (0.9, 0.0);
        let gn = 0.7;
        let p = m.eval_point(rho, xi, gn);
        let eps = 1e-6;
        let ep = m.eval_point(rho, xi, gn + eps).e;
        let em = m.eval_point(rho, xi, gn - eps).e;
        let fd = (ep - em) / (2.0 * eps);
        assert!(
            (p.de_dgrad - fd).abs() < 1e-6 * (1.0 + fd.abs()),
            "{} vs {fd}",
            p.de_dgrad
        );
    }

    #[test]
    fn energy_scales_with_weights() {
        let m = MlxcModel::new(2);
        let rho = [0.5, 0.7];
        let xi = [0.0, 0.0];
        let gn = [0.1, 0.2];
        let e1 = m.energy(&rho, &xi, &gn, &[1.0, 1.0]);
        let e2 = m.energy(&rho, &xi, &gn, &[2.0, 2.0]);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn batched_energy_matches_per_point_sum() {
        let m = MlxcModel::new(17);
        let n = 29;
        let rho: Vec<f64> = (0..n).map(|i| 0.05 + 0.03 * i as f64).collect();
        let xi: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.4).sin() * 0.8).collect();
        let gn: Vec<f64> = (0..n).map(|i| 0.1 + 0.02 * i as f64).collect();
        let w: Vec<f64> = (0..n).map(|i| 0.5 + 0.01 * i as f64).collect();
        let batched = m.energy(&rho, &xi, &gn, &w);
        let per_point: f64 = (0..n)
            .map(|i| w[i] * m.eval_point(rho[i], xi[i], gn[i]).e)
            .sum();
        assert!(
            (batched - per_point).abs() < 1e-10 * (1.0 + per_point.abs()),
            "{batched} vs {per_point}"
        );
        assert!((m.energy(&[], &[], &[], &[]) - 0.0).abs() < 1e-300);
    }

    #[test]
    fn vacuum_density_is_finite() {
        let m = MlxcModel::new(0);
        let p = m.eval_point(0.0, 0.0, 0.0);
        assert!(p.e.is_finite() && p.de_drho.is_finite() && p.de_dgrad.is_finite());
    }

    #[test]
    fn point_grads_match_finite_difference_on_de_drho() {
        // adjoint only on de_drho exercises the double-backprop path
        let mut m = MlxcModel::new(21);
        let (rho, xi, gn) = (0.45, 0.0, 0.25);
        let adj = PointAdjoint {
            e: 0.0,
            de_drho: 1.0,
            de_dgrad: 0.0,
        };
        let mut grads = ParamGrads::zeros(&m.net);
        m.accumulate_point_grads(rho, xi, gn, adj, &mut grads);
        let eps = 1e-6;
        for (l, k) in [(0usize, 0usize), (2, 33), (5, 7)] {
            let orig = m.net.layers[l].w[k];
            m.net.layers[l].w[k] = orig + eps;
            let vp = m.eval_point(rho, xi, gn).de_drho;
            m.net.layers[l].w[k] = orig - eps;
            let vm = m.eval_point(rho, xi, gn).de_drho;
            m.net.layers[l].w[k] = orig;
            let fd = (vp - vm) / (2.0 * eps);
            assert!(
                (grads.w[l][k] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "l={l} k={k}: {} vs {fd}",
                grads.w[l][k]
            );
        }
    }

    #[test]
    fn model_json_round_trip() {
        let m = MlxcModel::new(33);
        let j = m.to_json();
        let back = MlxcModel::from_json(&j).unwrap();
        let p1 = m.eval_point(0.3, 0.0, 0.1);
        let p2 = back.eval_point(0.3, 0.0, 0.1);
        assert_eq!(p1.e, p2.e);
    }
}
