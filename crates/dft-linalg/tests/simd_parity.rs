//! SIMD/scalar parity suite for the microkernel engine.
//!
//! Two layers of guarantee, both run twice by CI (once with the detected
//! tier, once under `DFT_SIMD=scalar` to pin the portable fallback):
//!
//! 1. **Reference parity** — the blocked engine matches the seed
//!    column-axpy [`gemm_reference`] to accumulation-error tolerance for
//!    all four `Op` combinations, for `f64`/`f32`/`C64`, on edge shapes
//!    where `m`, `n`, `k` are not multiples of `MR`/`NR`/`KC`/`NC`.
//! 2. **Bit-for-bit oracle** — the engine reproduces, exactly, a scalar
//!    model of its own contraction: ascending-`k` accumulation per `KC`
//!    slab, one `mul_add` per term on the SIMD tiers (one unfused
//!    multiply-add on the scalar tier and for complex scalars), `alpha`
//!    folded into the B term, `beta` applied up front. Any reassociation,
//!    reordering, or double-rounding regression in the kernels breaks
//!    these tests at the first element.

use dft_linalg::gemm::{gemm, gemm_reference, Op};
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Scalar, C64};
use dft_linalg::simd::{self, SimdTier};

const OPS: [(Op, Op); 4] = [
    (Op::None, Op::None),
    (Op::ConjTrans, Op::None),
    (Op::None, Op::ConjTrans),
    (Op::ConjTrans, Op::ConjTrans),
];

/// Shapes chosen to hit register-tile edges (not multiples of any
/// MR in {8, 16, 32} or NR in {4, 6, 8}) and cache-block edges
/// (crossing the default `MC = 128`, `KC = 256`, `NC = 512`).
const SHAPES: [(usize, usize, usize); 8] = [
    (1, 1, 1),
    (3, 2, 4),
    (16, 8, 8),
    (17, 9, 7),
    (33, 23, 19),
    (61, 37, 259), // k crosses KC
    (130, 70, 50), // m crosses MC
    (70, 515, 30), // n crosses NC
];

fn dims(op: Op, rows: usize, cols: usize) -> (usize, usize) {
    match op {
        Op::None => (rows, cols),
        Op::ConjTrans => (cols, rows),
    }
}

#[test]
fn gemm_matches_reference_f64_all_ops_edge_shapes() {
    for &(m, n, k) in &SHAPES {
        for &(opa, opb) in &OPS {
            let (ar, ac) = dims(opa, m, k);
            let (br, bc) = dims(opb, k, n);
            let a = Matrix::from_fn(ar, ac, |i, j| ((i * 31 + j * 17) as f64 * 0.618).sin());
            let b = Matrix::from_fn(br, bc, |i, j| ((i * 13 + j * 41) as f64 * 0.377).cos());
            let mut c = Matrix::from_fn(m, n, |i, j| ((i + 3 * j) as f64 * 0.21).sin());
            let mut cr = c.clone();
            gemm(0.75, &a, opa, &b, opb, -0.5, &mut c);
            gemm_reference(0.75, &a, opa, &b, opb, -0.5, &mut cr);
            let tol = 1e-13 * (k as f64).max(1.0);
            assert!(
                c.max_abs_diff(&cr) < tol,
                "f64 {m}x{n}x{k} {opa:?}/{opb:?}: diff {}",
                c.max_abs_diff(&cr)
            );
        }
    }
}

#[test]
fn gemm_matches_reference_f32_all_ops_edge_shapes() {
    for &(m, n, k) in &SHAPES {
        for &(opa, opb) in &OPS {
            let (ar, ac) = dims(opa, m, k);
            let (br, bc) = dims(opb, k, n);
            let a = Matrix::from_fn(ar, ac, |i, j| ((i * 31 + j * 17) as f32 * 0.618).sin());
            let b = Matrix::from_fn(br, bc, |i, j| ((i * 13 + j * 41) as f32 * 0.377).cos());
            let mut c = Matrix::from_fn(m, n, |i, j| ((i + 3 * j) as f32 * 0.21).sin());
            let mut cr = c.clone();
            gemm(0.75f32, &a, opa, &b, opb, -0.5, &mut c);
            gemm_reference(0.75f32, &a, opa, &b, opb, -0.5, &mut cr);
            let tol = 1e-5 * (k as f64).max(1.0);
            assert!(
                c.max_abs_diff(&cr) < tol,
                "f32 {m}x{n}x{k} {opa:?}/{opb:?}: diff {}",
                c.max_abs_diff(&cr)
            );
        }
    }
}

#[test]
fn gemm_matches_reference_c64_all_ops_edge_shapes() {
    for &(m, n, k) in &SHAPES[..6] {
        for &(opa, opb) in &OPS {
            let (ar, ac) = dims(opa, m, k);
            let (br, bc) = dims(opb, k, n);
            let a = Matrix::from_fn(ar, ac, |i, j| {
                C64::new((i as f64 * 0.7).sin(), (j as f64 * 0.3).cos())
            });
            let b = Matrix::from_fn(br, bc, |i, j| {
                C64::new((j as f64 * 0.9).cos(), (i as f64 * 0.5).sin() - 0.2)
            });
            let alpha = C64::new(0.75, -0.25);
            let beta = C64::new(-0.5, 0.1);
            let mut c = Matrix::from_fn(m, n, |i, j| {
                C64::new((i + 2 * j) as f64 * 0.11, (i * j) as f64 * 0.05)
            });
            let mut cr = c.clone();
            gemm(alpha, &a, opa, &b, opb, beta, &mut c);
            gemm_reference(alpha, &a, opa, &b, opb, beta, &mut cr);
            let tol = 1e-12 * (k as f64).max(1.0);
            assert!(
                c.max_abs_diff(&cr) < tol,
                "c64 {m}x{n}x{k} {opa:?}/{opb:?}: diff {}",
                c.max_abs_diff(&cr)
            );
        }
    }
}

/// Scalar model of the engine's exact contraction for real scalars:
/// beta pass first, then per `KC` slab an ascending-`k` accumulator added
/// to `C` once. `fused` selects `mul_add` (SIMD tiers) vs a separate
/// multiply and add (portable tile).
macro_rules! real_oracle {
    ($name:ident, $t:ty) => {
        #[allow(clippy::too_many_arguments)]
        fn $name(
            alpha: $t,
            a: &Matrix<$t>,
            opa: Op,
            b: &Matrix<$t>,
            opb: Op,
            beta: $t,
            c: &mut Matrix<$t>,
            kc_blk: usize,
            fused: bool,
        ) {
            let (m, n) = c.shape();
            let k = match opa {
                Op::None => a.ncols(),
                Op::ConjTrans => a.nrows(),
            };
            let aop = |i: usize, l: usize| match opa {
                Op::None => a[(i, l)],
                Op::ConjTrans => a[(l, i)],
            };
            let bop = |l: usize, j: usize| match opb {
                Op::None => b[(l, j)],
                Op::ConjTrans => b[(j, l)],
            };
            for j in 0..n {
                for i in 0..m {
                    if beta == 0.0 {
                        c[(i, j)] = 0.0;
                    } else if beta != 1.0 {
                        c[(i, j)] *= beta;
                    }
                }
            }
            let mut pc = 0;
            while pc < k {
                let kc = kc_blk.min(k - pc);
                for j in 0..n {
                    for i in 0..m {
                        let mut acc: $t = 0.0;
                        for l in pc..pc + kc {
                            let w = alpha * bop(l, j);
                            if fused {
                                acc = aop(i, l).mul_add(w, acc);
                            } else {
                                acc += w * aop(i, l);
                            }
                        }
                        c[(i, j)] += acc;
                    }
                }
                pc += kc;
            }
        }
    };
}

real_oracle!(oracle_f64, f64);
real_oracle!(oracle_f32, f32);

#[test]
fn gemm_f64_is_bit_identical_to_mul_add_oracle() {
    let fused = simd::active_tier() != SimdTier::Scalar;
    let kc_blk = dft_linalg::autotune::blocking().1;
    for &(m, n, k) in &SHAPES {
        for &(opa, opb) in &OPS {
            let (ar, ac) = dims(opa, m, k);
            let (br, bc) = dims(opb, k, n);
            let a = Matrix::from_fn(ar, ac, |i, j| ((i * 31 + j * 17) as f64 * 0.618).sin());
            let b = Matrix::from_fn(br, bc, |i, j| ((i * 13 + j * 41) as f64 * 0.377).cos());
            for beta in [0.0f64, 1.0] {
                let mut c = Matrix::from_fn(m, n, |i, j| ((i + 3 * j) as f64 * 0.21).sin());
                let mut co = c.clone();
                gemm(0.75, &a, opa, &b, opb, beta, &mut c);
                oracle_f64(0.75, &a, opa, &b, opb, beta, &mut co, kc_blk, fused);
                for j in 0..n {
                    for i in 0..m {
                        assert_eq!(
                            c[(i, j)].to_bits(),
                            co[(i, j)].to_bits(),
                            "f64 {m}x{n}x{k} {opa:?}/{opb:?} beta={beta} at ({i},{j}): \
                             {} vs oracle {}",
                            c[(i, j)],
                            co[(i, j)]
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn gemm_f32_is_bit_identical_to_mul_add_oracle() {
    let fused = simd::active_tier() != SimdTier::Scalar;
    let kc_blk = dft_linalg::autotune::blocking().1;
    for &(m, n, k) in &SHAPES {
        for &(opa, opb) in &OPS {
            let (ar, ac) = dims(opa, m, k);
            let (br, bc) = dims(opb, k, n);
            let a = Matrix::from_fn(ar, ac, |i, j| ((i * 31 + j * 17) as f32 * 0.618).sin());
            let b = Matrix::from_fn(br, bc, |i, j| ((i * 13 + j * 41) as f32 * 0.377).cos());
            for beta in [0.0f32, 1.0] {
                let mut c = Matrix::from_fn(m, n, |i, j| ((i + 3 * j) as f32 * 0.21).sin());
                let mut co = c.clone();
                gemm(0.75f32, &a, opa, &b, opb, beta, &mut c);
                oracle_f32(0.75f32, &a, opa, &b, opb, beta, &mut co, kc_blk, fused);
                for j in 0..n {
                    for i in 0..m {
                        assert_eq!(
                            c[(i, j)].to_bits(),
                            co[(i, j)].to_bits(),
                            "f32 {m}x{n}x{k} {opa:?}/{opb:?} beta={beta} at ({i},{j})"
                        );
                    }
                }
            }
        }
    }
}

/// Complex scalars always run the portable 4x4 tile, so the oracle is the
/// unfused multiply-add with `alpha` folded into the B term — on every tier.
#[test]
fn gemm_c64_is_bit_identical_to_generic_tile_oracle() {
    let kc_blk = dft_linalg::autotune::blocking().1;
    for &(m, n, k) in &SHAPES[..6] {
        for &(opa, opb) in &OPS {
            let (ar, ac) = dims(opa, m, k);
            let (br, bc) = dims(opb, k, n);
            let a = Matrix::from_fn(ar, ac, |i, j| {
                C64::new((i as f64 * 0.7).sin(), (j as f64 * 0.3).cos())
            });
            let b = Matrix::from_fn(br, bc, |i, j| {
                C64::new((j as f64 * 0.9).cos(), (i as f64 * 0.5).sin() - 0.2)
            });
            let alpha = C64::new(0.75, -0.25);
            let aop = |i: usize, l: usize| match opa {
                Op::None => a[(i, l)],
                Op::ConjTrans => a[(l, i)].conj(),
            };
            let bop = |l: usize, j: usize| match opb {
                Op::None => b[(l, j)],
                Op::ConjTrans => b[(j, l)].conj(),
            };
            let mut c = Matrix::zeros(m, n);
            gemm(alpha, &a, opa, &b, opb, C64::ZERO, &mut c);
            for j in 0..n {
                for i in 0..m {
                    let mut expect = C64::ZERO;
                    let mut pc = 0;
                    while pc < k {
                        let kc = kc_blk.min(k - pc);
                        let mut acc = C64::ZERO;
                        for l in pc..pc + kc {
                            acc += (alpha * bop(l, j)) * aop(i, l);
                        }
                        expect += acc;
                        pc += kc;
                    }
                    let got = c[(i, j)];
                    assert!(
                        got.re.to_bits() == expect.re.to_bits()
                            && got.im.to_bits() == expect.im.to_bits(),
                        "c64 {m}x{n}x{k} {opa:?}/{opb:?} at ({i},{j}): {got:?} vs {expect:?}"
                    );
                }
            }
        }
    }
}

/// The forced-fallback CI job (`DFT_SIMD=scalar`) must actually run the
/// portable tile; conversely the tier can never exceed the hardware.
#[test]
fn forced_fallback_env_is_honored() {
    let tier = simd::active_tier();
    assert!(tier <= simd::hw_cap());
    if matches!(
        std::env::var("DFT_SIMD").ok().as_deref(),
        Some("scalar") | Some("off")
    ) {
        assert_eq!(tier, SimdTier::Scalar);
    }
}
