//! Property-based tests for the dense linear algebra invariants.

use dft_linalg::gemm::{gemm, matmul};
use dft_linalg::iterative::{DenseOperator, IdentityPrec};
use dft_linalg::{
    batched_gemm, cg, cholesky, dot, eigh, lowdin_orthonormalize, minres, nrm2, tri_inv_lower,
    BatchLayout, Matrix, Op, C64,
};
use proptest::prelude::*;

fn mat_strategy(m: usize, n: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-2.0..2.0f64, m * n).prop_map(move |v| Matrix::from_vec(m, n, v))
}

fn cmat_strategy(m: usize, n: usize) -> impl Strategy<Value = Matrix<C64>> {
    proptest::collection::vec((-2.0..2.0f64, -2.0..2.0f64), m * n).prop_map(move |v| {
        Matrix::from_vec(m, n, v.into_iter().map(|(r, i)| C64::new(r, i)).collect())
    })
}

fn hpd(m: &Matrix<C64>) -> Matrix<C64> {
    let n = m.nrows();
    let mut a = matmul(m, Op::ConjTrans, m, Op::None);
    for i in 0..n {
        a[(i, i)] += C64::new(n as f64, 0.0);
    }
    a.symmetrize_hermitian();
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_is_linear_in_first_argument(a in mat_strategy(6, 4), b in mat_strategy(6, 4), x in mat_strategy(4, 3)) {
        // (A + B) X == A X + B X
        let mut apb = a.clone();
        apb.axpy_inplace(1.0, &b);
        let lhs = matmul(&apb, Op::None, &x, Op::None);
        let mut rhs = matmul(&a, Op::None, &x, Op::None);
        rhs.axpy_inplace(1.0, &matmul(&b, Op::None, &x, Op::None));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn gemm_adjoint_transpose_identity(a in cmat_strategy(5, 3), b in cmat_strategy(5, 4)) {
        // (A^H B)^H == B^H A
        let ahb = matmul(&a, Op::ConjTrans, &b, Op::None);
        let bha = matmul(&b, Op::ConjTrans, &a, Op::None);
        prop_assert!(ahb.adjoint().max_abs_diff(&bha) < 1e-10);
    }

    #[test]
    fn dot_cauchy_schwarz(x in proptest::collection::vec(-3.0..3.0f64, 12), y in proptest::collection::vec(-3.0..3.0f64, 12)) {
        let d = dot(&x, &y).abs();
        prop_assert!(d <= nrm2(&x) * nrm2(&y) + 1e-9);
    }

    #[test]
    fn cholesky_reconstructs(b in cmat_strategy(6, 6)) {
        let a = hpd(&b);
        let l = cholesky(&a).unwrap();
        let rec = matmul(&l, Op::None, &l, Op::ConjTrans);
        prop_assert!(rec.max_abs_diff(&a) < 1e-8);
        let li = tri_inv_lower(&l);
        let eye = matmul(&li, Op::None, &l, Op::None);
        prop_assert!(eye.max_abs_diff(&Matrix::identity(6)) < 1e-8);
    }

    #[test]
    fn eigh_trace_and_orthogonality(b in cmat_strategy(5, 5)) {
        let a = hpd(&b);
        let e = eigh(&a).unwrap();
        // trace preserved
        let tr: f64 = (0..5).map(|i| a[(i, i)].re).sum();
        let s: f64 = e.eigenvalues.iter().sum();
        prop_assert!((tr - s).abs() < 1e-8 * tr.abs().max(1.0));
        // orthonormal eigenvectors
        let g = matmul(&e.eigenvectors, Op::ConjTrans, &e.eigenvectors, Op::None);
        prop_assert!(g.max_abs_diff(&Matrix::identity(5)) < 1e-9);
        // HPD => positive eigenvalues
        prop_assert!(e.eigenvalues.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn lowdin_idempotent_on_its_output(m in mat_strategy(12, 4)) {
        // Skip near-singular frames.
        let s = matmul(&m, Op::ConjTrans, &m, Op::None);
        let e = eigh(&s).unwrap();
        prop_assume!(e.eigenvalues[0] > 1e-6);
        let mut psi = m.clone();
        lowdin_orthonormalize(&mut psi).unwrap();
        let before = psi.clone();
        lowdin_orthonormalize(&mut psi).unwrap();
        prop_assert!(psi.max_abs_diff(&before) < 1e-8);
    }

    #[test]
    fn cg_solution_satisfies_system(b in mat_strategy(8, 8), rhs in proptest::collection::vec(-1.0..1.0f64, 8)) {
        let n = 8;
        let mut a = matmul(&b, Op::ConjTrans, &b, Op::None);
        for i in 0..n { a[(i, i)] += n as f64; }
        let op = DenseOperator::new(a.clone());
        let mut x = vec![0.0; n];
        let st = cg(&op, &IdentityPrec, &rhs, &mut x, 1e-12, 500);
        prop_assert!(st.converged);
        let ax = matmul(&a, Op::None, &Matrix::from_vec(n, 1, x), Op::None);
        let mut r = Matrix::from_vec(n, 1, rhs);
        r.axpy_inplace(-1.0, &ax);
        prop_assert!(r.norm_fro() < 1e-8);
    }

    #[test]
    fn minres_matches_cg_on_spd(b in mat_strategy(7, 7), rhs in proptest::collection::vec(-1.0..1.0f64, 7)) {
        let n = 7;
        let mut a = matmul(&b, Op::ConjTrans, &b, Op::None);
        for i in 0..n { a[(i, i)] += n as f64; }
        let op = DenseOperator::new(a.clone());
        let mut x_cg = vec![0.0; n];
        cg(&op, &IdentityPrec, &rhs, &mut x_cg, 1e-13, 1000);
        let mut x_mr = vec![0.0; n];
        let st = minres(&op, &IdentityPrec, 0.0, &rhs, &mut x_mr, 1e-13, 1000);
        prop_assert!(st.converged);
        for i in 0..n {
            prop_assert!((x_cg[i] - x_mr[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn batched_gemm_matches_loop_of_gemm(
        a in proptest::collection::vec(-1.0..1.0f64, 4 * 3 * 5),
        bb in proptest::collection::vec(-1.0..1.0f64, 3 * 2 * 5),
    ) {
        let layout = BatchLayout::packed(4, 2, 3, 5);
        let mut c = vec![0.0f64; 4 * 2 * 5];
        batched_gemm(layout, 1.0, &a, &bb, 0.0, &mut c);
        for i in 0..5 {
            let ai = Matrix::from_vec(4, 3, a[i * 12..(i + 1) * 12].to_vec());
            let bi = Matrix::from_vec(3, 2, bb[i * 6..(i + 1) * 6].to_vec());
            let mut ci = Matrix::zeros(4, 2);
            gemm(1.0, &ai, Op::None, &bi, Op::None, 0.0, &mut ci);
            let got = Matrix::from_vec(4, 2, c[i * 8..(i + 1) * 8].to_vec());
            prop_assert!(got.max_abs_diff(&ci) < 1e-12);
        }
    }
}
