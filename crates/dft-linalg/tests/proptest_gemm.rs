//! Property-based correctness of the blocked packed-panel GEMM engine:
//! `gemm` and `batched_gemm` against an independent naive triple-loop
//! oracle, over all four `Op` combinations, degenerate shapes, non-packed
//! batch strides, and the sparse-ish inputs on which the seed's two entry
//! points used to disagree about exact-zero weight skipping.

use dft_linalg::batched::{batched_gemm, BatchLayout};
use dft_linalg::gemm::{gemm, Op};
use dft_linalg::{Matrix, Scalar, C64};
use proptest::prelude::*;

/// Independent oracle: `C = alpha * op(A) * op(B) + beta * C` by the
/// definition, one dot product per output element.
fn naive_gemm<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    op_a: Op,
    b: &Matrix<T>,
    op_b: Op,
    beta: T,
    c: &mut Matrix<T>,
) {
    let m = c.nrows();
    let n = c.ncols();
    let k = match op_a {
        Op::None => a.ncols(),
        Op::ConjTrans => a.nrows(),
    };
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::ZERO;
            for l in 0..k {
                let av = match op_a {
                    Op::None => a[(i, l)],
                    Op::ConjTrans => a[(l, i)].conj(),
                };
                let bv = match op_b {
                    Op::None => b[(l, j)],
                    Op::ConjTrans => b[(j, l)].conj(),
                };
                acc += av * bv;
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

fn mat(m: usize, n: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-2.0..2.0f64, m * n).prop_map(move |v| Matrix::from_vec(m, n, v))
}

/// Sparse-ish matrix: each entry is exactly zero with probability ~1/2.
fn sparse_mat(m: usize, n: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec((0usize..2, -2.0..2.0f64), m * n).prop_map(move |v| {
        Matrix::from_vec(
            m,
            n,
            v.into_iter()
                .map(|(z, x)| if z == 0 { 0.0 } else { x })
                .collect(),
        )
    })
}

/// `0.0`, `1.0`, or a free value — the interesting beta/alpha cases.
fn coeff() -> impl Strategy<Value = f64> {
    (0usize..3, -2.0..2.0f64).prop_map(|(s, v)| match s {
        0 => 0.0,
        1 => 1.0,
        _ => v,
    })
}

fn cmat(m: usize, n: usize) -> impl Strategy<Value = Matrix<C64>> {
    proptest::collection::vec((-2.0..2.0f64, -2.0..2.0f64), m * n).prop_map(move |v| {
        Matrix::from_vec(m, n, v.into_iter().map(|(r, i)| C64::new(r, i)).collect())
    })
}

const OP_COMBOS: [(Op, Op); 4] = [
    (Op::None, Op::None),
    (Op::None, Op::ConjTrans),
    (Op::ConjTrans, Op::None),
    (Op::ConjTrans, Op::ConjTrans),
];

fn op_strategy() -> impl Strategy<Value = (Op, Op)> {
    (0usize..4).prop_map(|i| OP_COMBOS[i])
}

fn shaped<T: Scalar>(op: Op, rows: usize, cols: usize, src: &Matrix<T>) -> Matrix<T> {
    // `src` is generated at the max dimension; carve the needed shape.
    let (r, c) = match op {
        Op::None => (rows, cols),
        Op::ConjTrans => (cols, rows),
    };
    Matrix::from_fn(r, c, |i, j| src[(i, j)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_gemm_matches_naive_all_ops_f64(
        (op_a, op_b) in op_strategy(),
        m in 1usize..24, n in 1usize..24, k in 1usize..24,
        src_a in mat(24, 24), src_b in mat(24, 24), c0 in mat(24, 24),
        alpha in -2.0..2.0f64, beta in coeff(),
    ) {
        let a = shaped(op_a, m, k, &src_a);
        let b = shaped(op_b, k, n, &src_b);
        let mut c = Matrix::from_fn(m, n, |i, j| c0[(i, j)]);
        let mut expect = c.clone();
        gemm(alpha, &a, op_a, &b, op_b, beta, &mut c);
        naive_gemm(alpha, &a, op_a, &b, op_b, beta, &mut expect);
        prop_assert!(c.max_abs_diff(&expect) < 1e-12, "diff {}", c.max_abs_diff(&expect));
    }

    #[test]
    fn blocked_gemm_matches_naive_all_ops_c64(
        (op_a, op_b) in op_strategy(),
        m in 1usize..12, n in 1usize..12, k in 1usize..12,
        src_a in cmat(12, 12), src_b in cmat(12, 12), c0 in cmat(12, 12),
        (ar, ai) in (-2.0..2.0f64, -2.0..2.0f64),
    ) {
        let alpha = C64::new(ar, ai);
        let a = shaped(op_a, m, k, &src_a);
        let b = shaped(op_b, k, n, &src_b);
        let mut c = Matrix::from_fn(m, n, |i, j| c0[(i, j)]);
        let mut expect = c.clone();
        gemm(alpha, &a, op_a, &b, op_b, C64::ONE, &mut c);
        naive_gemm(alpha, &a, op_a, &b, op_b, C64::ONE, &mut expect);
        prop_assert!(c.max_abs_diff(&expect) < 1e-12, "diff {}", c.max_abs_diff(&expect));
    }

    #[test]
    fn degenerate_shapes_match_naive(
        (op_a, op_b) in op_strategy(),
        src_a in mat(8, 8), src_b in mat(8, 8), c0 in mat(8, 8),
        shape_idx in 0usize..5,
        beta in (0usize..2).prop_map(|s| s as f64),
    ) {
        // m = 0; k = 0 (C = beta * C only); n = 1 (single-column corner
        // tile); scalar; fully empty.
        let (m, n, k) =
            [(0usize, 3usize, 4usize), (3, 4, 0), (5, 1, 7), (1, 1, 1), (0, 0, 0)][shape_idx];
        let a = shaped(op_a, m, k, &src_a);
        let b = shaped(op_b, k, n, &src_b);
        let mut c = Matrix::from_fn(m, n, |i, j| c0[(i, j)]);
        let mut expect = c.clone();
        gemm(2.0, &a, op_a, &b, op_b, beta, &mut c);
        naive_gemm(2.0, &a, op_a, &b, op_b, beta, &mut expect);
        prop_assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn batched_gemm_matches_naive_nonpacked_strides(
        m in 1usize..10, n in 1usize..10, k in 1usize..10, batch in 1usize..5,
        pad_a in 0usize..7, pad_b in 0usize..7, pad_c in 0usize..7,
        seed_a in mat(10, 10), seed_b in mat(10, 10),
        alpha in -2.0..2.0f64, beta in (0usize..2).prop_map(|s| s as f64),
    ) {
        let layout = BatchLayout {
            m, n, k, batch,
            stride_a: m * k + pad_a,
            stride_b: k * n + pad_b,
            stride_c: m * n + pad_c,
        };
        // Fill buffers including the padding gaps; gaps must come back intact.
        let fill = |len: usize, s: f64| -> Vec<f64> {
            (0..len).map(|i| ((i as f64) * s).sin()).collect()
        };
        let a = fill(layout.stride_a * batch, 0.7 + seed_a[(0, 0)].abs());
        let b = fill(layout.stride_b * batch, 0.3 + seed_b[(0, 0)].abs());
        let mut c = fill(layout.stride_c * batch, 1.1);
        let c_orig = c.clone();
        batched_gemm(layout, alpha, &a, &b, beta, &mut c);
        for i in 0..batch {
            let am = Matrix::from_vec(m, k, a[i * layout.stride_a..][..m * k].to_vec());
            let bm = Matrix::from_vec(k, n, b[i * layout.stride_b..][..k * n].to_vec());
            let mut expect =
                Matrix::from_vec(m, n, c_orig[i * layout.stride_c..][..m * n].to_vec());
            naive_gemm(alpha, &am, Op::None, &bm, Op::None, beta, &mut expect);
            let got = &c[i * layout.stride_c..][..m * n];
            for (g, e) in got.iter().zip(expect.as_slice()) {
                prop_assert!((g - e).abs() < 1e-12, "member {i}: {g} vs {e}");
            }
            // padding gap after member i untouched
            for off in m * n..layout.stride_c {
                if i * layout.stride_c + off < c.len() {
                    prop_assert_eq!(c[i * layout.stride_c + off], c_orig[i * layout.stride_c + off]);
                }
            }
        }
    }

    /// The seed `gemm` short-circuited exact-zero `alpha * b` weights while
    /// `batched_gemm` did not — the packed engine must give both entry
    /// points identical semantics on inputs riddled with exact zeros.
    #[test]
    fn gemm_and_batched_agree_on_sparse_inputs(
        m in 1usize..12, n in 1usize..12, k in 1usize..12,
        a in sparse_mat(12, 12), b in sparse_mat(12, 12),
        alpha in coeff(),
    ) {
        let am = Matrix::from_fn(m, k, |i, j| a[(i, j)]);
        let bm = Matrix::from_fn(k, n, |i, j| b[(i, j)]);
        let mut c_gemm = Matrix::zeros(m, n);
        gemm(alpha, &am, Op::None, &bm, Op::None, 0.0, &mut c_gemm);
        let layout = BatchLayout::packed(m, n, k, 1);
        let mut c_batched = vec![0.0; m * n];
        batched_gemm(layout, alpha, am.as_slice(), bm.as_slice(), 0.0, &mut c_batched);
        for (g, e) in c_gemm.as_slice().iter().zip(&c_batched) {
            prop_assert_eq!(g, e);
        }
    }
}

#[test]
fn empty_batch_is_a_no_op() {
    let layout = BatchLayout::packed(3, 3, 3, 0);
    let a: Vec<f64> = vec![];
    let b: Vec<f64> = vec![];
    let mut c: Vec<f64> = vec![];
    batched_gemm(layout, 1.0, &a, &b, 0.0, &mut c);
}
