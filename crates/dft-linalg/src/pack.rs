//! Cache-blocked, register-tiled GEMM engine with packed operand panels.
//!
//! This is the repo's analogue of the BLIS/GotoBLAS microkernel design that
//! vendor BLAS libraries (and the cuBLAS kernels behind the paper's
//! Sec. 5.4.1 strided-batched cell GEMMs) use to reach near-peak dense
//! throughput:
//!
//! * the `k` dimension is split into `KC`-deep slabs, the `m` dimension into
//!   `MC`-tall slabs and the `n` dimension into `NC`-wide slabs so every
//!   packed operand panel fits a cache level (`A` panel in L2, `B` panel in
//!   L3/L2, the `MR x NR` register tile in registers);
//! * operands are **packed** into contiguous, zero-padded panels once per
//!   block — the microkernel then streams unit-stride through both panels
//!   regardless of the caller's storage order or `Op::ConjTrans`, and the
//!   `alpha` scale is folded into the `B` panel for free;
//! * the innermost microkernel updates an `MR x NR` accumulator tile held in
//!   registers (fixed-size arrays so the compiler can keep them in vector
//!   registers and unroll), which is where all the FLOPs happen.
//!
//! Packing buffers are recycled across calls through a thread-local pool
//! keyed by scalar type, so steady-state GEMMs — the ChFES hot loop — do not
//! allocate.
//!
//! Small problems (in particular the `(p+1)^3`-sized FE cell-level products
//! of the batched path) take a dedicated single-block fast path that skips
//! the blocking loop entirely: one `B` pack, one `A` pack, one macro-kernel
//! sweep.

use crate::scalar::Scalar;
use crate::simd::{self, SimdTier};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Default rows of `A` packed per cache block (`A` panel is `MC x KC`).
/// The live value is [`crate::autotune::blocking`], which starts at these
/// defaults and is overridden by the per-machine tuning profile.
pub const MC: usize = 128;
/// Default depth of the shared inner dimension per cache block.
pub const KC: usize = 256;
/// Default columns of `B` packed per cache block (`B` panel is `KC x NC`).
pub const NC: usize = 512;

/// Reused packing buffers for one thread: the `MC x KC` A-panel and the
/// `KC x NC` B-panel, grown on demand and recycled across GEMM calls.
pub struct PackBuf<T> {
    a: Vec<T>,
    b: Vec<T>,
}

impl<T> PackBuf<T> {
    /// Empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self {
            a: Vec::new(),
            b: Vec::new(),
        }
    }
}

impl<T> Default for PackBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread pool of packing buffers, keyed by scalar type.
    static PACK_POOL: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
    /// Per-thread pool of generic scratch vector pairs (FE cell gather /
    /// apply scratch), keyed by scalar type.
    static SCRATCH_POOL: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Run `f` with this thread's recycled [`PackBuf`] for scalar type `T`.
///
/// The buffer is checked out of a thread-local pool for the duration of the
/// call, so nested use with the *same* scalar type would see a fresh buffer
/// (correct, just not recycled); the GEMM drivers never nest.
pub fn with_pack_buf<T: Scalar, R>(f: impl FnOnce(&mut PackBuf<T>) -> R) -> R {
    PACK_POOL.with(|pool| {
        let mut boxed = pool
            .borrow_mut()
            .remove(&TypeId::of::<T>())
            .unwrap_or_else(|| Box::new(PackBuf::<T>::new()));
        let out = f(boxed.downcast_mut::<PackBuf<T>>().expect("pack pool type"));
        pool.borrow_mut().insert(TypeId::of::<T>(), boxed);
        out
    })
}

/// Run `f` with this thread's recycled pair of scratch vectors for scalar
/// type `T` (used by the FE cell kernels for local gather / apply buffers).
pub fn with_scratch<T: Scalar, R>(f: impl FnOnce(&mut Vec<T>, &mut Vec<T>) -> R) -> R {
    SCRATCH_POOL.with(|pool| {
        let mut boxed = pool
            .borrow_mut()
            .remove(&TypeId::of::<T>())
            .unwrap_or_else(|| Box::new((Vec::<T>::new(), Vec::<T>::new())));
        let out = {
            let (x, y) = boxed
                .downcast_mut::<(Vec<T>, Vec<T>)>()
                .expect("scratch pool type");
            f(x, y)
        };
        pool.borrow_mut().insert(TypeId::of::<T>(), boxed);
        out
    })
}

thread_local! {
    /// Per-thread pool of scratch vector triples (mixed-precision GEMM
    /// demote/promote buffers), keyed by scalar type.
    static SCRATCH3_POOL: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Run `f` with this thread's recycled triple of scratch vectors for scalar
/// type `T` (the mixed-precision GEMM's demoted `A`/`B` and low-precision
/// `C` accumulator live here so the hot path never allocates).
pub fn with_scratch3<T: Scalar, R>(
    f: impl FnOnce(&mut Vec<T>, &mut Vec<T>, &mut Vec<T>) -> R,
) -> R {
    SCRATCH3_POOL.with(|pool| {
        let mut boxed = pool
            .borrow_mut()
            .remove(&TypeId::of::<T>())
            .unwrap_or_else(|| Box::new((Vec::<T>::new(), Vec::<T>::new(), Vec::<T>::new())));
        let out = {
            let (x, y, z) = boxed
                .downcast_mut::<(Vec<T>, Vec<T>, Vec<T>)>()
                .expect("scratch3 pool type");
            f(x, y, z)
        };
        pool.borrow_mut().insert(TypeId::of::<T>(), boxed);
        out
    })
}

/// Pack the `mc x kc` block of `op(A)` starting at `(ic, pc)` into
/// row-panels of height `MR` (layout: panel-major, then `kc` steps of `MR`
/// contiguous rows). Partial edge panels are zero-padded to `MR`.
// dftlint:hot
#[allow(clippy::too_many_arguments)]
fn pack_a<T: Scalar, const MR: usize>(
    buf: &mut Vec<T>,
    a: &[T],
    lda: usize,
    trans: bool,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    let need = panels * MR * kc;
    if buf.len() < need {
        buf.resize(need, T::ZERO);
    }
    let mut w = 0;
    for pi in 0..panels {
        let i0 = ic + pi * MR;
        let mr = MR.min(ic + mc - i0);
        if !trans {
            // op(A)(i, l) = a[l*lda + i]: copy column fragments.
            for l in 0..kc {
                let src = &a[(pc + l) * lda + i0..(pc + l) * lda + i0 + mr];
                buf[w..w + mr].copy_from_slice(src);
                for v in &mut buf[w + mr..w + MR] {
                    *v = T::ZERO;
                }
                w += MR;
            }
        } else {
            // op(A)(i, l) = conj(a[i*lda + l]): read rows of the stored
            // matrix contiguously, write strided into the panel.
            for r in 0..mr {
                let row = &a[(i0 + r) * lda + pc..(i0 + r) * lda + pc + kc];
                for l in 0..kc {
                    buf[w + l * MR + r] = row[l].conj();
                }
            }
            for l in 0..kc {
                for r in mr..MR {
                    buf[w + l * MR + r] = T::ZERO;
                }
            }
            w += MR * kc;
        }
    }
}

/// Pack the `kc x nc` block of `alpha * op(B)` starting at `(pc, jc)` into
/// column-panels of width `NR` (layout: panel-major, then `kc` steps of `NR`
/// contiguous columns). `alpha` is folded in here so the microkernel is a
/// pure multiply-accumulate.
// dftlint:hot
#[allow(clippy::too_many_arguments)]
fn pack_b<T: Scalar, const NR: usize>(
    buf: &mut Vec<T>,
    b: &[T],
    ldb: usize,
    trans: bool,
    alpha: T,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    let need = panels * NR * kc;
    if buf.len() < need {
        buf.resize(need, T::ZERO);
    }
    let mut w = 0;
    for pj in 0..panels {
        let j0 = jc + pj * NR;
        let nr = NR.min(jc + nc - j0);
        if !trans {
            // op(B)(l, j) = b[j*ldb + l]: columns of the stored matrix.
            for q in 0..nr {
                let col = &b[(j0 + q) * ldb + pc..(j0 + q) * ldb + pc + kc];
                for l in 0..kc {
                    buf[w + l * NR + q] = alpha * col[l];
                }
            }
        } else {
            // op(B)(l, j) = conj(b[j*ldb + l] transposed) = conj(b[l*ldb+j]).
            for l in 0..kc {
                let row = &b[(pc + l) * ldb + j0..(pc + l) * ldb + j0 + nr];
                for q in 0..nr {
                    buf[w + l * NR + q] = alpha * row[q].conj();
                }
            }
        }
        for l in 0..kc {
            for q in nr..NR {
                buf[w + l * NR + q] = T::ZERO;
            }
        }
        w += NR * kc;
    }
}

/// The register-tile microkernel: `C[0..mr, 0..nr] += Apanel * Bpanel` over
/// a depth-`kc` packed panel pair. A matching SIMD kernel from
/// [`crate::simd`] runs when the active tier provides one for this
/// `(T, MR, NR)`; otherwise the portable generic tile below runs — its
/// `MR x NR` accumulator lives in fixed-size arrays so the compiler keeps
/// it in vector registers. Edge tiles simply write back the valid `mr x nr`
/// corner (panels are zero-padded, so the extra lanes accumulate exact
/// zeros).
// dftlint:hot
#[inline]
#[allow(clippy::too_many_arguments)]
fn microkernel<T: Scalar, const MR: usize, const NR: usize>(
    tier: SimdTier,
    ap: &[T],
    bp: &[T],
    c: &mut [T],
    ldc: usize,
    kc: usize,
    mr: usize,
    nr: usize,
) {
    if simd::microkernel_simd::<T, MR, NR>(tier, ap, bp, c, ldc, kc, mr, nr) {
        return;
    }
    let mut acc = [[T::ZERO; MR]; NR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let av: &[T; MR] = av.try_into().expect("A panel width");
        let bv: &[T; NR] = bv.try_into().expect("B panel width");
        for q in 0..NR {
            let w = bv[q];
            for r in 0..MR {
                acc[q][r] += w * av[r];
            }
        }
    }
    if mr == MR && nr == NR {
        for q in 0..NR {
            let col = &mut c[q * ldc..q * ldc + MR];
            for r in 0..MR {
                col[r] += acc[q][r];
            }
        }
    } else {
        for q in 0..nr {
            let col = &mut c[q * ldc..q * ldc + mr];
            for r in 0..mr {
                col[r] += acc[q][r];
            }
        }
    }
}

/// Sweep the `MR x NR` microkernel over one packed `mc x kc` A-panel times
/// `kc x nc` B-panel pair, accumulating into `C` at offset `(ic, jc)`.
// dftlint:hot
#[allow(clippy::too_many_arguments)]
fn macro_kernel<T: Scalar, const MR: usize, const NR: usize>(
    tier: SimdTier,
    mc: usize,
    nc: usize,
    kc: usize,
    ap: &[T],
    bp: &[T],
    c: &mut [T],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    let mpan = mc.div_ceil(MR);
    let npan = nc.div_ceil(NR);
    for pj in 0..npan {
        let j0 = pj * NR;
        let nr = NR.min(nc - j0);
        let bpan = &bp[pj * NR * kc..(pj + 1) * NR * kc];
        for pi in 0..mpan {
            let i0 = pi * MR;
            let mr = MR.min(mc - i0);
            let apan = &ap[pi * MR * kc..(pi + 1) * MR * kc];
            let coff = (jc + j0) * ldc + ic + i0;
            microkernel::<T, MR, NR>(tier, apan, bpan, &mut c[coff..], ldc, kc, mr, nr);
        }
    }
}

/// Blocked GEMM on raw column-major slices: `C += alpha * op(A) * op(B)`
/// where `op` is identity or conjugate-transpose per operand. `C` is `m x n`
/// with leading dimension `ldc`; the caller has already applied `beta`.
///
/// Accumulation over `l` within one `KC` slab is strictly ascending (matching
/// the seed axpy kernel's order bit-for-bit when `k <= KC`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_block<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    a_trans: bool,
    b: &[T],
    ldb: usize,
    b_trans: bool,
    c: &mut [T],
    ldc: usize,
    buf: &mut PackBuf<T>,
) {
    if m == 0 || n == 0 || k == 0 || alpha == T::ZERO {
        return;
    }
    // Register tile selection depends only on the scalar type and the SIMD
    // tier (never on the caller), so every GEMM entry point produces
    // identical results for identical inputs:
    // * complex scalars stay on the generic 4x4 tile (complex MACs expand
    //   4x in scalar ops, so a small tile keeps register pressure down);
    // * f64/f32 pick the tile whose SIMD microkernel the tier provides
    //   (AVX-512 16x8 / 32x8, AVX2 8x6 / 16x6);
    // * the scalar tier keeps the generic 16x4 tile.
    let tier = simd::active_tier();
    if T::IS_COMPLEX {
        gemm_block_tiled::<T, 4, 4>(
            tier, m, n, k, alpha, a, lda, a_trans, b, ldb, b_trans, c, ldc, buf,
        )
    } else if TypeId::of::<T>() == TypeId::of::<f64>() {
        match tier {
            SimdTier::Avx512 => gemm_block_tiled::<T, 16, 8>(
                tier, m, n, k, alpha, a, lda, a_trans, b, ldb, b_trans, c, ldc, buf,
            ),
            SimdTier::Avx2 => gemm_block_tiled::<T, 8, 6>(
                tier, m, n, k, alpha, a, lda, a_trans, b, ldb, b_trans, c, ldc, buf,
            ),
            SimdTier::Scalar => gemm_block_tiled::<T, 16, 4>(
                tier, m, n, k, alpha, a, lda, a_trans, b, ldb, b_trans, c, ldc, buf,
            ),
        }
    } else if TypeId::of::<T>() == TypeId::of::<f32>() {
        match tier {
            SimdTier::Avx512 => gemm_block_tiled::<T, 32, 8>(
                tier, m, n, k, alpha, a, lda, a_trans, b, ldb, b_trans, c, ldc, buf,
            ),
            SimdTier::Avx2 => gemm_block_tiled::<T, 16, 6>(
                tier, m, n, k, alpha, a, lda, a_trans, b, ldb, b_trans, c, ldc, buf,
            ),
            SimdTier::Scalar => gemm_block_tiled::<T, 16, 4>(
                tier, m, n, k, alpha, a, lda, a_trans, b, ldb, b_trans, c, ldc, buf,
            ),
        }
    } else {
        gemm_block_tiled::<T, 16, 4>(
            tier, m, n, k, alpha, a, lda, a_trans, b, ldb, b_trans, c, ldc, buf,
        )
    }
}

// dftlint:hot
#[allow(clippy::too_many_arguments)]
fn gemm_block_tiled<T: Scalar, const MR: usize, const NR: usize>(
    tier: SimdTier,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    a_trans: bool,
    b: &[T],
    ldb: usize,
    b_trans: bool,
    c: &mut [T],
    ldc: usize,
    buf: &mut PackBuf<T>,
) {
    let PackBuf { a: pa, b: pb } = buf;
    let (mc_blk, kc_blk, nc_blk) = crate::autotune::blocking();
    if m <= mc_blk && k <= kc_blk && n <= nc_blk {
        // Fast path for small problems — one packed panel pair, no blocking
        // loop. This is the FE cell-level shape (m = k = (p+1)^3, n = block).
        pack_b::<T, NR>(pb, b, ldb, b_trans, alpha, 0, k, 0, n);
        pack_a::<T, MR>(pa, a, lda, a_trans, 0, m, 0, k);
        macro_kernel::<T, MR, NR>(tier, m, n, k, pa, pb, c, ldc, 0, 0);
        return;
    }
    let mut jc = 0;
    while jc < n {
        let nc = nc_blk.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = kc_blk.min(k - pc);
            pack_b::<T, NR>(pb, b, ldb, b_trans, alpha, pc, kc, jc, nc);
            let mut ic = 0;
            while ic < m {
                let mc = mc_blk.min(m - ic);
                pack_a::<T, MR>(pa, a, lda, a_trans, ic, mc, pc, kc);
                macro_kernel::<T, MR, NR>(tier, mc, nc, kc, pa, pb, c, ldc, ic, jc);
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_buf_pool_recycles_capacity() {
        with_pack_buf::<f64, _>(|buf| {
            buf.a.resize(1000, 0.0);
        });
        let cap = with_pack_buf::<f64, _>(|buf| buf.a.capacity());
        assert!(cap >= 1000, "buffer should be recycled, got cap {cap}");
        // A different scalar type gets its own buffer.
        let cap32 = with_pack_buf::<f32, _>(|buf| buf.a.capacity());
        assert!(cap32 < 1000);
    }

    #[test]
    fn scratch_pool_gives_two_independent_vecs() {
        with_scratch::<f64, _>(|x, y| {
            x.resize(8, 1.0);
            y.resize(4, 2.0);
        });
        with_scratch::<f64, _>(|x, y| {
            assert!(x.capacity() >= 8);
            assert!(y.capacity() >= 4);
        });
    }
}
