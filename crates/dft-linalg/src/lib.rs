//! # dft-linalg
//!
//! Dense, batched and mixed-precision linear algebra implemented from scratch
//! for the DFT-FE-MLXC reproduction. Every kernel used by the paper's
//! Chebyshev Filtered Eigensolver (Algorithm 1) and the inverse-DFT adjoint
//! solver lives here:
//!
//! * [`Matrix`] — column-major dense matrix over a generic [`Scalar`]
//!   (`f64`, `f32`, or complex [`C64`]/[`C32`] for Bloch / k-point paths);
//! * [`gemm`] — general matrix-matrix multiply with conjugate-transpose ops,
//!   rayon-parallel, plus mixed FP32/FP64 variants used by the paper's
//!   mixed-precision CholGS / Rayleigh-Ritz steps (Sec. 5.4.2);
//! * [`batched`] — the `xGEMMStridedBatched` analogue used for FE cell-level
//!   dense linear algebra (Sec. 5.4.1);
//! * [`chol`] — Cholesky factorization / triangular inversion for the
//!   CholGS-CI step;
//! * [`eig`] — Hermitian/symmetric eigensolvers for the RR-D step
//!   (Householder tridiagonalization + implicit-shift QL for the real path,
//!   cyclic Jacobi for the complex Hermitian path);
//! * [`iterative`] — CG (Hartree/Poisson solves), MINRES and the
//!   preconditioned **block**-MINRES of the paper's adjoint solve (Sec. 5.3.1);
//! * [`lowdin`] — Löwdin (symmetric) orthonormalization.

#![deny(unsafe_code)]
// simd.rs opts back in locally for std::arch intrinsics
// indexed loops deliberately mirror the paper's subscript notation
#![allow(clippy::needless_range_loop)]

pub mod autotune;
pub mod batched;
pub mod blas1;
pub mod chol;
pub mod eig;
pub mod gemm;
pub mod iterative;
pub mod lowdin;
pub mod matrix;
pub mod pack;
pub mod scalar;
pub mod simd;

pub use batched::{batched_gemm, batched_gemm_reference, BatchLayout};
pub use blas1::{axpy, dot, nrm2, scal};
pub use chol::{cholesky, cholesky_inverse, tri_inv_lower};
pub use eig::{eigh, Eigh};
pub use gemm::{gemm, gemm_mixed, gemm_reference, Op};
pub use iterative::{block_minres, cg, minres, IterStats, LinearOperator, Preconditioner};
pub use lowdin::lowdin_orthonormalize;
pub use matrix::Matrix;
pub use pack::{with_pack_buf, with_scratch, with_scratch3, PackBuf};
pub use scalar::{Real, Scalar, C32, C64};
pub use simd::SimdTier;
