//! Löwdin (symmetric) orthonormalization.
//!
//! Given a set of column vectors `Psi` with overlap `S = Psi† Psi`, the
//! Löwdin transform `Psi S^{-1/2}` yields the orthonormal set closest to the
//! original in the least-squares sense. The paper's FE basis is "Löwdin
//! orthonormalized" — with GLL spectral elements the overlap is diagonal and
//! `S^{-1/2}` is a cheap diagonal scaling, but the general dense path is
//! needed for tests and for non-collocated bases.

use crate::chol::LinalgError;
use crate::eig::eigh;
use crate::gemm::{matmul, Op};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Return `S^{-1/2}` for a Hermitian positive definite `S`.
pub fn inv_sqrt<T: Scalar>(s: &Matrix<T>) -> Result<Matrix<T>, LinalgError> {
    let e = eigh(s)?;
    let n = s.nrows();
    if let Some(&min) = e
        .eigenvalues
        .iter()
        .min_by(|a, b| a.partial_cmp(b).unwrap())
    {
        if min <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite(0));
        }
    }
    // S^{-1/2} = V diag(1/sqrt(lambda)) V†
    let mut vd = e.eigenvectors.clone();
    for j in 0..n {
        let w = 1.0 / e.eigenvalues[j].sqrt();
        for x in vd.col_mut(j) {
            *x = x.scale(<T::Re as crate::scalar::Real>::from_f64(w));
        }
    }
    Ok(matmul(&vd, Op::None, &e.eigenvectors, Op::ConjTrans))
}

/// Löwdin-orthonormalize the columns of `psi` in place:
/// `psi <- psi (psi† psi)^{-1/2}`.
pub fn lowdin_orthonormalize<T: Scalar>(psi: &mut Matrix<T>) -> Result<(), LinalgError> {
    let s = matmul(psi, Op::ConjTrans, psi, Op::None);
    let si = inv_sqrt(&s)?;
    let out = matmul(psi, Op::None, &si, Op::None);
    *psi = out;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C64;

    #[test]
    fn lowdin_produces_orthonormal_columns() {
        let mut psi = Matrix::from_fn(40, 7, |i, j| {
            ((i * 7 + j * 13) as f64 * 0.21 + (i * j) as f64 * 0.59).sin() + 0.2
        });
        lowdin_orthonormalize(&mut psi).unwrap();
        let g = matmul(&psi, Op::ConjTrans, &psi, Op::None);
        assert!(g.max_abs_diff(&Matrix::identity(7)) < 1e-10);
    }

    #[test]
    fn lowdin_complex() {
        let mut psi = Matrix::from_fn(25, 4, |i, j| {
            C64::new(
                ((i + 3 * j) as f64 * 0.31).sin(),
                ((2 * i + j) as f64 * 0.17).cos(),
            )
        });
        lowdin_orthonormalize(&mut psi).unwrap();
        let g = matmul(&psi, Op::ConjTrans, &psi, Op::None);
        assert!(g.max_abs_diff(&Matrix::identity(4)) < 1e-10);
    }

    #[test]
    fn inv_sqrt_squares_to_inverse() {
        let b = Matrix::from_fn(6, 6, |i, j| ((i * 2 + j * 5) as f64 * 0.43).sin());
        let mut s = matmul(&b, Op::ConjTrans, &b, Op::None);
        for i in 0..6 {
            s[(i, i)] += 3.0;
        }
        let si = inv_sqrt(&s).unwrap();
        let prod = matmul(
            &matmul(&si, Op::None, &s, Op::None),
            Op::None,
            &si,
            Op::None,
        );
        assert!(prod.max_abs_diff(&Matrix::identity(6)) < 1e-10);
    }

    #[test]
    fn lowdin_preserves_orthonormal_input() {
        let mut psi = Matrix::<f64>::zeros(10, 3);
        psi[(0, 0)] = 1.0;
        psi[(4, 1)] = 1.0;
        psi[(9, 2)] = 1.0;
        let orig = psi.clone();
        lowdin_orthonormalize(&mut psi).unwrap();
        assert!(psi.max_abs_diff(&orig) < 1e-12);
    }
}
