//! Column-major dense matrix.
//!
//! Wavefunction blocks in the ChFES are tall-skinny `M x B_f` matrices whose
//! columns are individual Kohn-Sham states; column-major storage keeps each
//! state contiguous, mirroring the layout DFT-FE uses on GPUs.

use crate::scalar::{Real, Scalar};
use std::ops::{Index, IndexMut};

/// Column-major dense matrix over a [`Scalar`].
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    data: Vec<T>,
    nrows: usize,
    ncols: usize,
}

impl<T: Scalar> Matrix<T> {
    /// Zero matrix of shape `nrows x ncols`.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            data: vec![T::ZERO; nrows * ncols],
            nrows,
            ncols,
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Self { data, nrows, ncols }
    }

    /// Wrap an existing column-major buffer (`data.len() == nrows*ncols`).
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "buffer/shape mismatch");
        Self { data, nrows, ncols }
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(d: &[T]) -> Self {
        let mut m = Self::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Flat column-major data.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat column-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the flat column-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Two distinct mutable columns at once.
    pub fn cols_mut2(&mut self, j0: usize, j1: usize) -> (&mut [T], &mut [T]) {
        assert_ne!(j0, j1);
        let n = self.nrows;
        if j0 < j1 {
            let (a, b) = self.data.split_at_mut(j1 * n);
            (&mut a[j0 * n..j0 * n + n], &mut b[..n])
        } else {
            let (a, b) = self.data.split_at_mut(j0 * n);
            (&mut b[..n], &mut a[j1 * n..j1 * n + n])
        }
    }

    /// Copy of the contiguous column range `[j0, j1)` as a new matrix.
    pub fn cols_range(&self, j0: usize, j1: usize) -> Matrix<T> {
        assert!(j0 <= j1 && j1 <= self.ncols);
        Matrix::from_vec(
            self.nrows,
            j1 - j0,
            self.data[j0 * self.nrows..j1 * self.nrows].to_vec(),
        )
    }

    /// Overwrite all of `self` with the column range `[j0, j0 + ncols)` of
    /// `src` — the allocation-free inverse of [`Self::set_cols`] for a
    /// reused block buffer.
    pub fn copy_cols_from(&mut self, src: &Matrix<T>, j0: usize) {
        assert_eq!(self.nrows, src.nrows);
        assert!(j0 + self.ncols <= src.ncols);
        let n = self.nrows;
        self.data
            .copy_from_slice(&src.data[j0 * n..(j0 + self.ncols) * n]);
    }

    /// Overwrite the contiguous column range starting at `j0` with `block`.
    pub fn set_cols(&mut self, j0: usize, block: &Matrix<T>) {
        assert_eq!(self.nrows, block.nrows);
        assert!(j0 + block.ncols <= self.ncols);
        let n = self.nrows;
        self.data[j0 * n..(j0 + block.ncols) * n].copy_from_slice(&block.data);
    }

    /// Fill every entry with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// (Conjugate-free) transpose.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Conjugate (Hermitian) transpose.
    pub fn adjoint(&self) -> Matrix<T> {
        Matrix::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)].conj())
    }

    /// In-place scaling by a scalar.
    pub fn scale_inplace(&mut self, a: T) {
        for v in &mut self.data {
            *v *= a;
        }
    }

    /// `self += a * other` entrywise.
    pub fn axpy_inplace(&mut self, a: T, other: &Matrix<T>) {
        assert_eq!(self.shape(), other.shape());
        for (x, &y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += a * y;
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.abs_sq().to_f64())
            .sum::<f64>()
            .sqrt()
    }

    /// Largest entrywise modulus of `self - other`.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// Largest entrywise modulus.
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// Hermitian symmetrization `(A + A†)/2` (useful to clean up roundoff
    /// before Cholesky / eigensolves).
    pub fn symmetrize_hermitian(&mut self) {
        assert_eq!(self.nrows, self.ncols);
        let half = T::from_f64(0.5);
        for j in 0..self.ncols {
            for i in 0..=j {
                let s = (self[(i, j)] + self[(j, i)].conj()) * half;
                self[(i, j)] = s;
                self[(j, i)] = s.conj();
            }
        }
    }

    /// Demote every entry to the low-precision counterpart type.
    pub fn to_low(&self) -> Matrix<T::Low> {
        Matrix {
            data: self.data.iter().map(|v| v.to_low()).collect(),
            nrows: self.nrows,
            ncols: self.ncols,
        }
    }

    /// Promote a low-precision matrix into this scalar type.
    pub fn from_low(m: &Matrix<T::Low>) -> Matrix<T> {
        Matrix {
            data: m.data.iter().map(|&v| T::from_low(v)).collect(),
            nrows: m.nrows,
            ncols: m.ncols,
        }
    }

    /// Map entrywise into a new matrix (possibly of a different scalar type).
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> Matrix<U> {
        Matrix {
            data: self.data.iter().map(|&v| f(v)).collect(),
            nrows: self.nrows,
            ncols: self.ncols,
        }
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[j * self.nrows + i]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[j * self.nrows + i]
    }
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(8) {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.ncols > 8 { "..." } else { "" })?;
        }
        if self.nrows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Convenience: real part / promotion helpers used around mixed-precision
/// boundaries.
impl Matrix<f64> {
    /// Exact element-wise conversion into a complex matrix.
    pub fn to_complex(&self) -> Matrix<crate::scalar::C64> {
        self.map(crate::scalar::C64::from_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C64;

    #[test]
    fn index_round_trip_column_major() {
        let mut m = Matrix::<f64>::zeros(3, 2);
        m[(2, 1)] = 7.0;
        // column-major: column 1, row 2 lands at offset 1 * nrows + 2 = 5
        assert_eq!(m.as_slice()[5], 7.0);
        assert_eq!(m.col(1)[2], 7.0);
    }

    #[test]
    fn transpose_and_adjoint() {
        let m = Matrix::from_fn(2, 3, |i, j| C64::new(i as f64, j as f64));
        let t = m.transpose();
        let a = m.adjoint();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], C64::new(1.0, 2.0));
        assert_eq!(a[(2, 1)], C64::new(1.0, -2.0));
    }

    #[test]
    fn cols_mut2_both_orders() {
        let mut m = Matrix::from_fn(4, 3, |i, j| (i + 10 * j) as f64);
        {
            let (a, b) = m.cols_mut2(0, 2);
            a[0] = -1.0;
            b[3] = -2.0;
        }
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(3, 2)], -2.0);
        let (b, a) = m.cols_mut2(2, 0);
        assert_eq!(a[0], -1.0);
        assert_eq!(b[3], -2.0);
    }

    #[test]
    fn set_cols_and_cols_range() {
        let mut m = Matrix::<f64>::zeros(3, 4);
        let blk = Matrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        m.set_cols(1, &blk);
        let back = m.cols_range(1, 3);
        assert_eq!(back.max_abs_diff(&blk), 0.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn symmetrize_hermitian_makes_adjoint_equal() {
        let mut m = Matrix::from_fn(4, 4, |i, j| C64::new((i * j) as f64, i as f64 - j as f64));
        m.symmetrize_hermitian();
        assert!(m.max_abs_diff(&m.adjoint()) < 1e-15);
    }

    #[test]
    fn norm_fro_matches_manual() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        // entries 0,1,1,2 -> sum of squares 6
        assert!((m.norm_fro() - 6.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn low_precision_round_trip_small_values() {
        let m = Matrix::from_fn(3, 3, |i, j| (i as f64 + 2.0 * j as f64) * 0.25);
        let r = Matrix::<f64>::from_low(&m.to_low());
        assert!(m.max_abs_diff(&r) < 1e-7);
    }
}
