//! Hermitian / symmetric dense eigensolver — the RR-D step of Algorithm 1.
//!
//! A cyclic Jacobi method over the generic [`Scalar`] trait: the complex
//! Hermitian rotation reduces to the classical real Jacobi rotation when the
//! scalar is real, so one implementation serves both the Γ-point (`f64`) and
//! k-point ([`crate::scalar::C64`]) paths. Jacobi is `O(n^3)` per sweep with
//! excellent accuracy (it computes small eigenvalues to high relative
//! precision), entirely adequate for the projected `N x N` problems the
//! Rayleigh-Ritz step produces at miniature scale.

use crate::chol::LinalgError;
use crate::matrix::Matrix;
use crate::scalar::{Real, Scalar};

/// Eigendecomposition of a Hermitian matrix: `A V = V diag(lambda)` with
/// orthonormal columns in `V` and ascending real eigenvalues.
#[derive(Clone, Debug)]
pub struct Eigh<T: Scalar> {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as matrix columns, matching `eigenvalues` order.
    pub eigenvectors: Matrix<T>,
}

/// Compute all eigenpairs of a Hermitian (symmetric) matrix.
///
/// Only requires `A` to be Hermitian up to roundoff; the strictly lower
/// triangle and the real parts of the diagonal are trusted.
pub fn eigh<T: Scalar>(a: &Matrix<T>) -> Result<Eigh<T>, LinalgError> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "eigh: square matrix required");
    if n == 0 {
        return Ok(Eigh {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        });
    }
    let mut m = a.clone();
    m.symmetrize_hermitian();
    let mut v = Matrix::<T>::identity(n);

    let max_sweeps = 60;
    // Tolerance scaled to the matrix magnitude.
    let scale = m.norm_fro().max(1e-300);
    let tol = 1e-30_f64 * scale * scale; // on squared off-diagonal mass

    for sweep in 0..max_sweeps {
        // Off-diagonal squared Frobenius mass.
        let mut off = 0.0_f64;
        for j in 0..n {
            for i in 0..j {
                off += m[(i, j)].abs_sq().to_f64();
            }
        }
        if off <= tol {
            return Ok(sort_eig(m, v));
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                let w = apq.abs().to_f64();
                // dftlint:allow(L004, reason="exact-zero rotation skip in Jacobi sweep: a zero off-diagonal needs no rotation")
                if w == 0.0 {
                    continue;
                }
                let app = m[(p, p)].re().to_f64();
                let aqq = m[(q, q)].re().to_f64();
                // Rotation angle: with t = tan(theta) the zeroing condition
                // for this rotation convention is t^2 - 2*theta*t - 1 = 0;
                // take the smaller-magnitude root for stability.
                let theta = (aqq - app) / (2.0 * w);
                let t = if theta >= 0.0 {
                    -1.0 / (theta + (theta * theta + 1.0).sqrt())
                } else {
                    1.0 / (-theta + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Phase of a_pq: a_pq = w * e^{i alpha}
                let phase = apq.scale(T::Re::from_f64(1.0 / w)); // e^{i alpha}
                let cs = T::from_f64(c);
                let s_ph = phase.scale(T::Re::from_f64(s)); // s * e^{i alpha}
                let s_ph_c = s_ph.conj(); // s * e^{-i alpha}

                // Right-multiply columns p,q of M and V by
                //   R = [[c, -s e^{i a}], [s e^{-i a}, c]].
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = mkp * cs + mkq * s_ph_c;
                    m[(k, q)] = mkq * cs - mkp * s_ph;
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * cs + vkq * s_ph_c;
                    v[(k, q)] = vkq * cs - vkp * s_ph;
                }
                // Left-multiply rows p,q of M by R^dagger.
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = mpk * cs + mqk * s_ph;
                    m[(q, k)] = mqk * cs - mpk * s_ph_c;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence(max_sweeps))
}

fn sort_eig<T: Scalar>(m: Matrix<T>, v: Matrix<T>) -> Eigh<T> {
    let n = m.nrows();
    let mut idx: Vec<usize> = (0..n).collect();
    let evals: Vec<f64> = (0..n).map(|i| m[(i, i)].re().to_f64()).collect();
    idx.sort_by(|&a, &b| evals[a].partial_cmp(&evals[b]).unwrap());
    let eigenvalues: Vec<f64> = idx.iter().map(|&i| evals[i]).collect();
    let eigenvectors = Matrix::from_fn(n, n, |i, j| v[(i, idx[j])]);
    Eigh {
        eigenvalues,
        eigenvectors,
    }
}

/// FLOP estimate for diagonalizing an order-`n` Hermitian matrix
/// (conventional `~9 n^3` real-arithmetic count used by the paper's RR-D
/// accounting of "minor" steps).
pub fn eigh_flops<T: Scalar>(n: usize) -> u64 {
    let n = n as u64;
    9 * n * n * n * if T::IS_COMPLEX { 4 } else { 1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Op};
    use crate::scalar::C64;

    #[test]
    fn diag_matrix_is_fixed_point() {
        let a = Matrix::from_diag(&[3.0_f64, -1.0, 2.0]);
        let e = eigh(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_2x2_symmetric() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3
        let mut a = Matrix::<f64>::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 2.0;
        let e = eigh(&a).unwrap();
        assert!((e.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_real() {
        let n = 14;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f64 * 0.51).sin());
        let mut a = matmul(&b, Op::ConjTrans, &b, Op::None);
        a.symmetrize_hermitian();
        let e = eigh(&a).unwrap();
        // A V = V D
        let av = matmul(&a, Op::None, &e.eigenvectors, Op::None);
        let vd = {
            let mut vd = e.eigenvectors.clone();
            for j in 0..n {
                let lam = e.eigenvalues[j];
                for x in vd.col_mut(j) {
                    *x *= lam;
                }
            }
            vd
        };
        assert!(av.max_abs_diff(&vd) < 1e-9);
        // V orthonormal
        let g = matmul(&e.eigenvectors, Op::ConjTrans, &e.eigenvectors, Op::None);
        assert!(g.max_abs_diff(&Matrix::identity(n)) < 1e-11);
    }

    #[test]
    fn reconstruction_complex_hermitian() {
        let n = 10;
        let b = Matrix::from_fn(n, n, |i, j| {
            C64::new(
                ((i * 3 + j) as f64 * 0.7).sin(),
                ((i + 5 * j) as f64 * 0.3).cos(),
            )
        });
        let mut a = matmul(&b, Op::ConjTrans, &b, Op::None);
        a.symmetrize_hermitian();
        let e = eigh(&a).unwrap();
        let av = matmul(&a, Op::None, &e.eigenvectors, Op::None);
        let mut vd = e.eigenvectors.clone();
        for j in 0..n {
            let lam = C64::from_f64(e.eigenvalues[j]);
            for x in vd.col_mut(j) {
                *x *= lam;
            }
        }
        assert!(av.max_abs_diff(&vd) < 1e-9);
        let g = matmul(&e.eigenvectors, Op::ConjTrans, &e.eigenvectors, Op::None);
        assert!(g.max_abs_diff(&Matrix::identity(n)) < 1e-11);
        // eigenvalues ascending
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn hermitian_eigenvalues_are_real_for_pauli_y() {
        // sigma_y = [[0, -i], [i, 0]] has eigenvalues +-1
        let mut a = Matrix::<C64>::zeros(2, 2);
        a[(0, 1)] = C64::new(0.0, -1.0);
        a[(1, 0)] = C64::new(0.0, 1.0);
        let e = eigh(&a).unwrap();
        assert!((e.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::<f64>::zeros(0, 0);
        let e = eigh(&a).unwrap();
        assert!(e.eigenvalues.is_empty());
    }
}
