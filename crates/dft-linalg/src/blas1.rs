//! Level-1 kernels on slices (vectors).
//!
//! These back the Chebyshev filter's vector updates and the iterative
//! solvers' recurrences. Inner products conjugate the first argument, as in
//! BLAS `zdotc`.

use crate::scalar::{Real, Scalar};

/// `y += a * x`.
#[inline]
pub fn axpy<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `y = a * x + b * y` (scaled update used by the Chebyshev recurrence).
#[inline]
pub fn axpby<T: Scalar>(a: T, x: &[T], b: T, y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = a * xi + b * *yi;
    }
}

/// `x *= a`.
#[inline]
pub fn scal<T: Scalar>(a: T, x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Conjugated inner product `<x, y> = sum_i conj(x_i) y_i`.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::ZERO;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        acc += xi.conj() * yi;
    }
    acc
}

/// Euclidean norm `||x||_2`.
#[inline]
pub fn nrm2<T: Scalar>(x: &[T]) -> T::Re {
    let mut acc = T::Re::ZERO;
    for &xi in x {
        acc += xi.abs_sq();
    }
    acc.sqrt()
}

/// Entrywise copy (shape-checked in debug builds).
#[inline]
pub fn copy<T: Scalar>(x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    y.copy_from_slice(x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C64;

    #[test]
    fn axpy_real() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_matches_manual() {
        let x = vec![1.0, -1.0];
        let mut y = vec![3.0, 5.0];
        axpby(2.0, &x, -1.0, &mut y);
        assert_eq!(y, vec![-1.0, -7.0]);
    }

    #[test]
    fn dot_conjugates_first_argument() {
        let x = vec![C64::new(0.0, 1.0)];
        let y = vec![C64::new(0.0, 1.0)];
        // conj(i)*i = 1
        assert_eq!(dot(&x, &y), C64::new(1.0, 0.0));
    }

    #[test]
    fn nrm2_complex() {
        let x = vec![C64::new(3.0, 0.0), C64::new(0.0, 4.0)];
        assert!((nrm2(&x) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn self_dot_is_norm_squared() {
        let x = vec![C64::new(1.0, 2.0), C64::new(-3.0, 0.5)];
        let d = dot(&x, &x);
        assert!(d.im.abs() < 1e-15);
        assert!((d.re - nrm2(&x).powi(2)).abs() < 1e-12);
    }
}
