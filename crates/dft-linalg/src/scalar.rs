//! Scalar abstraction over real (`f64`, `f32`) and complex ([`C64`], [`C32`])
//! field types.
//!
//! The DFT solver runs over `f64` wavefunctions at the Γ-point and over
//! complex [`C64`] Bloch wavefunctions when Brillouin-zone `k`-point sampling
//! is on (the paper's Mg-Y systems use 2-4 k-points, which is why their FLOP
//! accounting carries a factor 4 — see Sec. 6.3). The paper's mixed-precision
//! strategies (Sec. 5.4.2) demote data to FP32 on communication boundaries
//! and in the off-diagonal blocks of overlap/projected matrices; the
//! [`Scalar::Low`] associated type models that demotion.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Real floating-point numbers (`f32`, `f64`) with the operations the
/// kernels need. Deliberately minimal — not a general numerics trait.
pub trait Real:
    Copy
    + Clone
    + Send
    + Sync
    + 'static
    + Debug
    + Display
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon.
    const EPS: Self;
    /// Convert from `f64` (possibly lossy).
    fn from_f64(x: f64) -> Self;
    /// Convert to `f64` (exact for `f32`/`f64`).
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Larger of two values.
    fn max(self, other: Self) -> Self;
    /// `sqrt(self^2 + other^2)` without overflow.
    fn hypot(self, other: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPS: Self = <$t>::EPSILON;
            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                if self > other {
                    self
                } else {
                    other
                }
            }
            #[inline]
            fn hypot(self, other: Self) -> Self {
                self.hypot(other)
            }
        }
    };
}
impl_real!(f32);
impl_real!(f64);

/// Field scalar used by the dense and iterative kernels: `f64`, `f32`,
/// [`C64`] or [`C32`].
pub trait Scalar:
    Copy
    + Clone
    + Send
    + Sync
    + 'static
    + Debug
    + Display
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
{
    /// The underlying real type (`f32` or `f64`).
    type Re: Real;
    /// The low-precision counterpart used in mixed-precision code paths
    /// (`f32` for `f64`, [`C32`] for [`C64`]; identity for the low types).
    type Low: Scalar<Re = f32>;

    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// `true` for complex scalars.
    const IS_COMPLEX: bool;
    /// FLOPs in one multiply of this scalar type (1 real, 6 complex) —
    /// used by the FLOP accounting of the performance harness.
    const MUL_FLOPS: u64;
    /// FLOPs in one add of this scalar type (1 real, 2 complex).
    const ADD_FLOPS: u64;

    /// Embed a real value.
    fn from_re(x: Self::Re) -> Self;
    /// Embed an `f64` (possibly lossy).
    fn from_f64(x: f64) -> Self;
    /// Real part.
    fn re(self) -> Self::Re;
    /// Imaginary part (zero for real scalars).
    fn im(self) -> Self::Re;
    /// Complex conjugate (identity for real scalars).
    fn conj(self) -> Self;
    /// Modulus `|x|`.
    fn abs(self) -> Self::Re;
    /// Squared modulus `|x|^2`.
    fn abs_sq(self) -> Self::Re;
    /// Scale by a real factor.
    fn scale(self, a: Self::Re) -> Self;
    /// Demote to the low-precision counterpart.
    fn to_low(self) -> Self::Low;
    /// Promote from the low-precision counterpart.
    fn from_low(x: Self::Low) -> Self;
    /// `self * b + c`.
    #[inline]
    fn mul_add(self, b: Self, c: Self) -> Self {
        self * b + c
    }

    /// Lane-blocked update `acc[t] += x[t] * k` over equal-length slices —
    /// the column-blocked inner product of the FE stiffness apply. The
    /// default is the generic unfused loop; `f64`/`f32` override it with
    /// the fused contraction from [`crate::simd`] (one rounding per lane,
    /// vectorized to packed FMA).
    #[inline]
    fn lane_fma(acc: &mut [Self], x: &[Self], k: Self::Re) {
        for (a, &xv) in acc.iter_mut().zip(x.iter()) {
            *a += xv.scale(k);
        }
    }
}

impl Scalar for f64 {
    type Re = f64;
    type Low = f32;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const IS_COMPLEX: bool = false;
    const MUL_FLOPS: u64 = 1;
    const ADD_FLOPS: u64 = 1;
    #[inline]
    fn from_re(x: f64) -> Self {
        x
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn re(self) -> f64 {
        self
    }
    #[inline]
    fn im(self) -> f64 {
        0.0
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn abs(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn abs_sq(self) -> f64 {
        self * self
    }
    #[inline]
    fn scale(self, a: f64) -> Self {
        self * a
    }
    #[inline]
    fn to_low(self) -> f32 {
        self as f32
    }
    #[inline]
    fn from_low(x: f32) -> Self {
        x as f64
    }
    #[inline]
    fn lane_fma(acc: &mut [Self], x: &[Self], k: f64) {
        crate::simd::fma_lane_f64(acc, x, k);
    }
}

impl Scalar for f32 {
    type Re = f32;
    type Low = f32;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const IS_COMPLEX: bool = false;
    const MUL_FLOPS: u64 = 1;
    const ADD_FLOPS: u64 = 1;
    #[inline]
    fn from_re(x: f32) -> Self {
        x
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn re(self) -> f32 {
        self
    }
    #[inline]
    fn im(self) -> f32 {
        0.0
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn abs(self) -> f32 {
        self.abs()
    }
    #[inline]
    fn abs_sq(self) -> f32 {
        self * self
    }
    #[inline]
    fn scale(self, a: f32) -> Self {
        self * a
    }
    #[inline]
    fn to_low(self) -> f32 {
        self
    }
    #[inline]
    fn from_low(x: f32) -> Self {
        x
    }
    #[inline]
    fn lane_fma(acc: &mut [Self], x: &[Self], k: f32) {
        crate::simd::fma_lane_f32(acc, x, k);
    }
}

macro_rules! complex_type {
    ($name:ident, $re:ty, $doc:literal) => {
        #[doc = $doc]
        #[derive(Copy, Clone, PartialEq, Default)]
        pub struct $name {
            /// Real part.
            pub re: $re,
            /// Imaginary part.
            pub im: $re,
        }

        impl $name {
            /// Construct from real and imaginary parts.
            #[inline]
            pub const fn new(re: $re, im: $re) -> Self {
                Self { re, im }
            }
            /// The imaginary unit.
            pub const I: Self = Self { re: 0.0, im: 1.0 };
            /// `e^{i theta}`.
            #[inline]
            pub fn cis(theta: $re) -> Self {
                Self::new(theta.cos(), theta.sin())
            }
        }

        impl Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{:+}i", self.re, self.im)
            }
        }
        impl Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{:+}i", self.re, self.im)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, o: Self) -> Self {
                Self::new(self.re + o.re, self.im + o.im)
            }
        }
        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, o: Self) -> Self {
                Self::new(self.re - o.re, self.im - o.im)
            }
        }
        impl Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, o: Self) -> Self {
                Self::new(
                    self.re * o.re - self.im * o.im,
                    self.re * o.im + self.im * o.re,
                )
            }
        }
        impl Div for $name {
            type Output = Self;
            #[inline]
            fn div(self, o: Self) -> Self {
                let d = o.re * o.re + o.im * o.im;
                Self::new(
                    (self.re * o.re + self.im * o.im) / d,
                    (self.im * o.re - self.re * o.im) / d,
                )
            }
        }
        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self::new(-self.re, -self.im)
            }
        }
        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, o: Self) {
                *self = *self + o;
            }
        }
        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, o: Self) {
                *self = *self - o;
            }
        }
        impl MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, o: Self) {
                *self = *self * o;
            }
        }
        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::new(0.0, 0.0), |a, b| a + b)
            }
        }
    };
}

complex_type!(C64, f64, "Double-precision complex number (`re + i*im`).");
complex_type!(C32, f32, "Single-precision complex number (`re + i*im`).");

impl Scalar for C64 {
    type Re = f64;
    type Low = C32;
    const ZERO: Self = Self { re: 0.0, im: 0.0 };
    const ONE: Self = Self { re: 1.0, im: 0.0 };
    const IS_COMPLEX: bool = true;
    const MUL_FLOPS: u64 = 6;
    const ADD_FLOPS: u64 = 2;
    #[inline]
    fn from_re(x: f64) -> Self {
        Self::new(x, 0.0)
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Self::new(x, 0.0)
    }
    #[inline]
    fn re(self) -> f64 {
        self.re
    }
    #[inline]
    fn im(self) -> f64 {
        self.im
    }
    #[inline]
    fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }
    #[inline]
    fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
    #[inline]
    fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
    #[inline]
    fn scale(self, a: f64) -> Self {
        Self::new(self.re * a, self.im * a)
    }
    #[inline]
    fn to_low(self) -> C32 {
        C32::new(self.re as f32, self.im as f32)
    }
    #[inline]
    fn from_low(x: C32) -> Self {
        Self::new(x.re as f64, x.im as f64)
    }
}

impl Scalar for C32 {
    type Re = f32;
    type Low = C32;
    const ZERO: Self = Self { re: 0.0, im: 0.0 };
    const ONE: Self = Self { re: 1.0, im: 0.0 };
    const IS_COMPLEX: bool = true;
    const MUL_FLOPS: u64 = 6;
    const ADD_FLOPS: u64 = 2;
    #[inline]
    fn from_re(x: f32) -> Self {
        Self::new(x, 0.0)
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Self::new(x as f32, 0.0)
    }
    #[inline]
    fn re(self) -> f32 {
        self.re
    }
    #[inline]
    fn im(self) -> f32 {
        self.im
    }
    #[inline]
    fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }
    #[inline]
    fn abs(self) -> f32 {
        self.re.hypot(self.im)
    }
    #[inline]
    fn abs_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }
    #[inline]
    fn scale(self, a: f32) -> Self {
        Self::new(self.re * a, self.im * a)
    }
    #[inline]
    fn to_low(self) -> C32 {
        self
    }
    #[inline]
    fn from_low(x: C32) -> Self {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_arithmetic_field_axioms() {
        let a = C64::new(1.5, -2.0);
        let b = C64::new(-0.25, 3.0);
        assert_eq!(a + b, C64::new(1.25, 1.0));
        assert_eq!(a * C64::ONE, a);
        let q = (a / b) * b;
        assert!((q - a).abs() < 1e-14);
    }

    #[test]
    fn conj_and_abs_sq_agree() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-14 && p.im.abs() < 1e-14);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = C64::cis(0.41 * k as f64);
            assert!((z.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn precision_round_trip() {
        let a = C64::new(1.0, -0.5);
        assert_eq!(C64::from_low(a.to_low()), a);
        let x = 2.5_f64;
        assert_eq!(f64::from_low(x.to_low()), 2.5);
    }

    #[test]
    fn flop_weights() {
        assert_eq!(f64::MUL_FLOPS, 1);
        assert_eq!(C64::MUL_FLOPS, 6);
        assert_eq!(C64::ADD_FLOPS, 2);
    }
}
