//! Matrix-free iterative solvers.
//!
//! * [`cg`] — preconditioned conjugate gradients, used for the FE Poisson
//!   (Hartree / nuclear electrostatics) solves;
//! * [`minres`] / [`block_minres`] — the preconditioned MINRES of the
//!   paper's inverse-DFT adjoint solve (Sec. 5.3.1). The *block* variant
//!   runs one Lanczos/QR recurrence per column in lockstep while applying
//!   the operator to the whole block at once, which is exactly how the
//!   paper converts the adjoint solve into high-arithmetic-intensity FE
//!   cell-level dense linear algebra. Each column may carry its own
//!   spectral shift `sigma_i` (the adjoint systems are `(H - eps_i) p_i =
//!   g_i` with per-state eigenvalues).

use crate::blas1;
use crate::matrix::Matrix;
use crate::scalar::{Real, Scalar};

/// A linear operator applied to blocks of column vectors.
///
/// Implementations are matrix-free: the FE Hamiltonian applies itself via
/// cell-level batched GEMM + assembly without ever forming the sparse matrix.
pub trait LinearOperator<T: Scalar>: Sync {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// `y = A x` where `x`, `y` are `dim() x B` blocks.
    fn apply(&self, x: &Matrix<T>, y: &mut Matrix<T>);
}

/// A preconditioner `z = M r` (M approximates `A^{-1}` and must be
/// symmetric positive definite for MINRES/CG).
pub trait Preconditioner<T: Scalar>: Sync {
    /// `z = M r` for blocks of column vectors.
    fn apply(&self, r: &Matrix<T>, z: &mut Matrix<T>);
}

/// The identity preconditioner.
pub struct IdentityPrec;

impl<T: Scalar> Preconditioner<T> for IdentityPrec {
    fn apply(&self, r: &Matrix<T>, z: &mut Matrix<T>) {
        z.as_mut_slice().copy_from_slice(r.as_slice());
    }
}

/// Diagonal (Jacobi) preconditioner with a real positive diagonal.
///
/// The paper preconditions the adjoint MINRES with the inverse diagonal of
/// the discrete FE Laplacian — "an inexpensive yet effective preconditioner"
/// yielding ~5x fewer iterations.
pub struct DiagonalPrec {
    inv_diag: Vec<f64>,
}

impl DiagonalPrec {
    /// Build from the diagonal entries (must be positive); stores inverses.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        assert!(
            diag.iter().all(|&d| d > 0.0),
            "diagonal preconditioner requires positive diagonal"
        );
        Self {
            inv_diag: diag.iter().map(|&d| 1.0 / d).collect(),
        }
    }

    /// Number of rows this preconditioner acts on.
    pub fn dim(&self) -> usize {
        self.inv_diag.len()
    }
}

impl<T: Scalar> Preconditioner<T> for DiagonalPrec {
    fn apply(&self, r: &Matrix<T>, z: &mut Matrix<T>) {
        assert_eq!(r.nrows(), self.inv_diag.len());
        for j in 0..r.ncols() {
            let rj = r.col(j);
            let zj = z.col_mut(j);
            for (i, (zv, &rv)) in zj.iter_mut().zip(rj.iter()).enumerate() {
                *zv = rv.scale(T::Re::from_f64(self.inv_diag[i]));
            }
        }
    }
}

/// Solver outcome statistics.
#[derive(Clone, Debug)]
pub struct IterStats {
    /// Iterations performed (max over columns for block solves).
    pub iterations: usize,
    /// Per-column iteration counts at convergence.
    pub iterations_per_column: Vec<usize>,
    /// Final relative residual estimate per column.
    pub final_residuals: Vec<f64>,
    /// Whether every column reached the tolerance.
    pub converged: bool,
}

/// Preconditioned conjugate gradients for Hermitian positive definite `A`.
///
/// Solves `A x = b` starting from the provided `x`; returns iteration stats.
/// `tol` is relative to `||b||`.
pub fn cg<T: Scalar>(
    op: &dyn LinearOperator<T>,
    prec: &dyn Preconditioner<T>,
    b: &[T],
    x: &mut [T],
    tol: f64,
    max_iter: usize,
) -> IterStats {
    let n = op.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = blas1::nrm2(b).to_f64().max(1e-300);

    let xm = Matrix::from_vec(n, 1, x.to_vec());
    let mut ax = Matrix::zeros(n, 1);
    op.apply(&xm, &mut ax);
    let mut r = Matrix::from_vec(n, 1, b.to_vec());
    r.axpy_inplace(-T::ONE, &ax);

    let mut z = Matrix::zeros(n, 1);
    prec.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = blas1::dot(r.col(0), z.col(0)).re().to_f64();
    let mut q = Matrix::zeros(n, 1);
    let mut xv = xm.into_vec();

    let mut resid = blas1::nrm2(r.col(0)).to_f64() / bnorm;
    let mut iters = 0;
    for _ in 0..max_iter {
        if resid <= tol {
            break;
        }
        iters += 1;
        op.apply(&p, &mut q);
        let pq = blas1::dot(p.col(0), q.col(0)).re().to_f64();
        if pq.abs() < 1e-300 {
            break;
        }
        let alpha = rz / pq;
        blas1::axpy(T::from_f64(alpha), p.col(0), &mut xv);
        blas1::axpy(T::from_f64(-alpha), q.col(0), r.col_mut(0));
        resid = blas1::nrm2(r.col(0)).to_f64() / bnorm;
        if resid <= tol {
            break;
        }
        prec.apply(&r, &mut z);
        let rz_new = blas1::dot(r.col(0), z.col(0)).re().to_f64();
        let beta = rz_new / rz;
        rz = rz_new;
        // p = z + beta p
        for i in 0..n {
            p.col_mut(0)[i] = z.col(0)[i] + p.col(0)[i].scale(T::Re::from_f64(beta));
        }
    }
    x.copy_from_slice(&xv);
    IterStats {
        iterations: iters,
        iterations_per_column: vec![iters],
        final_residuals: vec![resid],
        converged: resid <= tol,
    }
}

/// Preconditioned MINRES for a single Hermitian (possibly indefinite)
/// system `(A - sigma I) x = b`.
pub fn minres<T: Scalar>(
    op: &dyn LinearOperator<T>,
    prec: &dyn Preconditioner<T>,
    sigma: f64,
    b: &[T],
    x: &mut [T],
    tol: f64,
    max_iter: usize,
) -> IterStats {
    let n = op.dim();
    let bm = Matrix::from_vec(n, 1, b.to_vec());
    let mut xm = Matrix::from_vec(n, 1, x.to_vec());
    let stats = block_minres(op, prec, &[sigma], &bm, &mut xm, tol, max_iter);
    x.copy_from_slice(xm.col(0));
    stats
}

/// Lockstep preconditioned block-MINRES: solves `(A - sigma_j I) x_j = b_j`
/// for every column `j` simultaneously.
///
/// The operator is applied to the whole block once per iteration (the
/// paper's arithmetic-intensity trick); each column carries its own
/// Paige-Saunders recurrence and its own shift. Converged columns are
/// frozen. Initial guess is taken from `x`.
pub fn block_minres<T: Scalar>(
    op: &dyn LinearOperator<T>,
    prec: &dyn Preconditioner<T>,
    sigmas: &[f64],
    b: &Matrix<T>,
    x: &mut Matrix<T>,
    tol: f64,
    max_iter: usize,
) -> IterStats {
    let n = op.dim();
    let nb = b.ncols();
    assert_eq!(b.nrows(), n);
    assert_eq!(x.shape(), (n, nb));
    assert_eq!(sigmas.len(), nb);

    // Residual r1 = b - (A - sigma) x
    let mut r1 = Matrix::<T>::zeros(n, nb);
    op.apply(x, &mut r1);
    for j in 0..nb {
        let sj = T::Re::from_f64(sigmas[j]);
        let xj: Vec<T> = x.col(j).to_vec();
        let rj = r1.col_mut(j);
        for i in 0..n {
            rj[i] = b.col(j)[i] - (rj[i] - xj[i].scale(sj));
        }
    }

    let bnorms: Vec<f64> = (0..nb)
        .map(|j| blas1::nrm2(b.col(j)).to_f64().max(1e-300))
        .collect();

    let mut y = Matrix::<T>::zeros(n, nb);
    prec.apply(&r1, &mut y);

    let mut beta1 = vec![0.0_f64; nb];
    for j in 0..nb {
        let d = blas1::dot(r1.col(j), y.col(j)).re().to_f64();
        assert!(d >= -1e-12, "preconditioner not positive definite");
        beta1[j] = d.max(0.0).sqrt();
    }

    // Per-column recurrence state.
    let mut oldb = vec![0.0_f64; nb];
    let mut beta = beta1.clone();
    let mut dbar = vec![0.0_f64; nb];
    let mut epsln = vec![0.0_f64; nb];
    let mut phibar = beta1.clone();
    let mut cs = vec![-1.0_f64; nb];
    let mut sn = vec![0.0_f64; nb];
    let mut active: Vec<bool> = beta1.iter().map(|&bt| bt > 1e-300).collect();
    let mut resid: Vec<f64> = (0..nb).map(|j| phibar[j] / bnorms[j]).collect();
    let mut iters_col = vec![0usize; nb];
    for j in 0..nb {
        if resid[j] <= tol {
            active[j] = false;
        }
    }

    let mut r2 = r1.clone();
    let mut v = Matrix::<T>::zeros(n, nb);
    let mut av = Matrix::<T>::zeros(n, nb);
    let mut w = Matrix::<T>::zeros(n, nb);
    let mut w1 = Matrix::<T>::zeros(n, nb);
    let mut w2 = Matrix::<T>::zeros(n, nb);

    let mut total_iters = 0usize;
    for _itn in 1..=max_iter {
        if !active.iter().any(|&a| a) {
            break;
        }
        total_iters += 1;

        // v = y / beta (zero for inactive columns so the block apply is
        // harmless there)
        for j in 0..nb {
            let vj = v.col_mut(j);
            if active[j] && beta[j] > 0.0 {
                let s = T::Re::from_f64(1.0 / beta[j]);
                for (vv, &yv) in vj.iter_mut().zip(y.col(j).iter()) {
                    *vv = yv.scale(s);
                }
            } else {
                vj.fill(T::ZERO);
            }
        }

        // Block operator application: av = A v, then per-column shift.
        op.apply(&v, &mut av);
        for j in 0..nb {
            if !active[j] {
                continue;
            }
            let sj = T::Re::from_f64(sigmas[j]);
            let vj: Vec<T> = v.col(j).to_vec();
            let avj = av.col_mut(j);
            for i in 0..n {
                avj[i] -= vj[i].scale(sj);
            }
        }

        for j in 0..nb {
            if !active[j] {
                continue;
            }
            iters_col[j] += 1;

            // y_j = av_j - (beta/oldb) r1_j   (skip first iteration)
            let yj: Vec<T> = {
                let mut t: Vec<T> = av.col(j).to_vec();
                if iters_col[j] >= 2 && oldb[j] > 0.0 {
                    let c = T::Re::from_f64(beta[j] / oldb[j]);
                    for (tv, &rv) in t.iter_mut().zip(r1.col(j).iter()) {
                        *tv -= rv.scale(c);
                    }
                }
                t
            };
            let alfa = blas1::dot(v.col(j), &yj).re().to_f64();
            // y_j -= (alfa/beta) r2_j
            let mut yj = yj;
            {
                let c = T::Re::from_f64(alfa / beta[j]);
                for (tv, &rv) in yj.iter_mut().zip(r2.col(j).iter()) {
                    *tv -= rv.scale(c);
                }
            }
            // shift Lanczos history
            r1.col_mut(j).copy_from_slice(r2.col(j));
            r2.col_mut(j).copy_from_slice(&yj);

            // y = M r2 (column-wise preconditioner application below)
            // -- done after the loop for the whole block; stash alfa etc.
            // For simplicity we apply the preconditioner per column here.
            let r2j = Matrix::from_vec(n, 1, yj.clone());
            let mut zj = Matrix::zeros(n, 1);
            prec.apply(&r2j, &mut zj);
            y.col_mut(j).copy_from_slice(zj.col(0));

            oldb[j] = beta[j];
            let bnew = blas1::dot(r2.col(j), y.col(j)).re().to_f64().max(0.0);
            beta[j] = bnew.sqrt();

            // QR via Givens rotations.
            let oldeps = epsln[j];
            let delta = cs[j] * dbar[j] + sn[j] * alfa;
            let gbar = sn[j] * dbar[j] - cs[j] * alfa;
            epsln[j] = sn[j] * beta[j];
            dbar[j] = -cs[j] * beta[j];
            let gamma = gbar.hypot(beta[j]).max(1e-300);
            cs[j] = gbar / gamma;
            sn[j] = beta[j] / gamma;
            let phi = cs[j] * phibar[j];
            phibar[j] *= sn[j];

            // Shift the direction history first (w1 <- w2 <- w), then
            // w = (v - oldeps*w1 - delta*w2)/gamma ; x += phi*w.
            let inv_gamma = 1.0 / gamma;
            for i in 0..n {
                let w1v = w2.col(j)[i];
                let w2v = w.col(j)[i];
                let wnew = (v.col(j)[i]
                    - w1v.scale(T::Re::from_f64(oldeps))
                    - w2v.scale(T::Re::from_f64(delta)))
                .scale(T::Re::from_f64(inv_gamma));
                w1.col_mut(j)[i] = w1v;
                w2.col_mut(j)[i] = w2v;
                w.col_mut(j)[i] = wnew;
                x.col_mut(j)[i] += wnew.scale(T::Re::from_f64(phi));
            }

            resid[j] = phibar[j] / bnorms[j];
            if resid[j] <= tol || beta[j] <= 1e-300 {
                active[j] = false;
            }
        }
    }

    IterStats {
        iterations: total_iters,
        iterations_per_column: iters_col,
        final_residuals: resid,
        converged: active.iter().all(|&a| !a),
    }
}

/// Dense matrix wrapped as a [`LinearOperator`] (testing / small systems).
pub struct DenseOperator<T> {
    a: Matrix<T>,
}

impl<T: Scalar> DenseOperator<T> {
    /// Wrap a square dense matrix.
    pub fn new(a: Matrix<T>) -> Self {
        assert_eq!(a.nrows(), a.ncols());
        Self { a }
    }
}

impl<T: Scalar> LinearOperator<T> for DenseOperator<T> {
    fn dim(&self) -> usize {
        self.a.nrows()
    }
    fn apply(&self, x: &Matrix<T>, y: &mut Matrix<T>) {
        crate::gemm::gemm(
            T::ONE,
            &self.a,
            crate::gemm::Op::None,
            x,
            crate::gemm::Op::None,
            T::ZERO,
            y,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Op};
    use crate::scalar::C64;

    fn spd(n: usize) -> Matrix<f64> {
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 11) as f64 * 0.53).sin());
        let mut a = matmul(&b, Op::ConjTrans, &b, Op::None);
        for i in 0..n {
            a[(i, i)] += n as f64 * 0.5;
        }
        a
    }

    #[test]
    fn cg_solves_spd_system() {
        let n = 25;
        let a = spd(n);
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let xm = Matrix::from_vec(n, 1, xs.clone());
        let b = matmul(&a, Op::None, &xm, Op::None);
        let op = DenseOperator::new(a);
        let mut x = vec![0.0; n];
        let st = cg(&op, &IdentityPrec, b.col(0), &mut x, 1e-12, 500);
        assert!(st.converged, "residual {:?}", st.final_residuals);
        for i in 0..n {
            assert!((x[i] - xs[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_with_jacobi_preconditioner_converges_faster() {
        let n = 40;
        // strongly diagonally-graded SPD matrix -> Jacobi helps
        let mut a = spd(n);
        for i in 0..n {
            a[(i, i)] += (i as f64 + 1.0) * 10.0;
        }
        let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b = matmul(&a, Op::None, &Matrix::from_vec(n, 1, xs.clone()), Op::None);
        let op = DenseOperator::new(a);
        let mut x0 = vec![0.0; n];
        let plain = cg(&op, &IdentityPrec, b.col(0), &mut x0, 1e-10, 2000);
        let mut x1 = vec![0.0; n];
        let prec = DiagonalPrec::from_diagonal(&diag);
        let jac = cg(&op, &prec, b.col(0), &mut x1, 1e-10, 2000);
        assert!(plain.converged && jac.converged);
        assert!(
            jac.iterations < plain.iterations,
            "jacobi {} vs plain {}",
            jac.iterations,
            plain.iterations
        );
    }

    #[test]
    fn minres_solves_indefinite_shifted_system() {
        let n = 20;
        let a = spd(n);
        // shift into indefiniteness: A - sigma I with sigma between eigenvalues
        let sigma = 5.0;
        let xs: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let xm = Matrix::from_vec(n, 1, xs.clone());
        let mut b = matmul(&a, Op::None, &xm, Op::None);
        for i in 0..n {
            b.col_mut(0)[i] -= sigma * xs[i];
        }
        let op = DenseOperator::new(a);
        let mut x = vec![0.0; n];
        let st = minres(&op, &IdentityPrec, sigma, b.col(0), &mut x, 1e-12, 2000);
        assert!(st.converged);
        for i in 0..n {
            assert!((x[i] - xs[i]).abs() < 1e-7, "i={i}: {} vs {}", x[i], xs[i]);
        }
    }

    #[test]
    fn block_minres_multiple_shifts() {
        let n = 18;
        let nb = 4;
        let a = spd(n);
        let shifts = [0.0, 1.5, 3.0, 7.2];
        let xs = Matrix::from_fn(n, nb, |i, j| ((i + j * 5) as f64 * 0.37).sin());
        let mut b = matmul(&a, Op::None, &xs, Op::None);
        for j in 0..nb {
            for i in 0..n {
                let corr = shifts[j] * xs[(i, j)];
                b[(i, j)] -= corr;
            }
        }
        let op = DenseOperator::new(a);
        let mut x = Matrix::zeros(n, nb);
        let st = block_minres(&op, &IdentityPrec, &shifts, &b, &mut x, 1e-12, 3000);
        assert!(st.converged, "residuals {:?}", st.final_residuals);
        assert!(x.max_abs_diff(&xs) < 1e-6);
    }

    #[test]
    fn block_minres_complex_hermitian() {
        let n = 12;
        let bm = Matrix::from_fn(n, n, |i, j| {
            C64::new(
                ((i + 2 * j) as f64 * 0.3).sin(),
                ((i * j) as f64 * 0.1).cos(),
            )
        });
        let mut a = matmul(&bm, Op::ConjTrans, &bm, Op::None);
        a.symmetrize_hermitian();
        for i in 0..n {
            a[(i, i)] += C64::from_f64(3.0);
        }
        let shifts = [0.7, 2.0];
        let xs = Matrix::from_fn(n, 2, |i, j| C64::new(i as f64 * 0.1, j as f64 - 0.5));
        let mut b = matmul(&a, Op::None, &xs, Op::None);
        for j in 0..2 {
            for i in 0..n {
                let corr = xs[(i, j)].scale(shifts[j]);
                b[(i, j)] -= corr;
            }
        }
        let op = DenseOperator::new(a);
        let mut x = Matrix::zeros(n, 2);
        let st = block_minres(&op, &IdentityPrec, &shifts, &b, &mut x, 1e-12, 3000);
        assert!(st.converged);
        assert!(x.max_abs_diff(&xs) < 1e-6);
    }

    #[test]
    fn diagonal_preconditioner_cuts_minres_iterations() {
        // Laplacian-like graded diagonal dominance: the paper reports ~5x
        // fewer MINRES iterations with the inverse-diagonal preconditioner.
        let n = 60;
        let mut a = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0 * (1.0 + 50.0 * (i as f64 / n as f64).powi(2));
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin()).collect();
        let op = DenseOperator::new(a);
        let mut x0 = vec![0.0; n];
        let plain = minres(&op, &IdentityPrec, 0.0, &b, &mut x0, 1e-10, 5000);
        let mut x1 = vec![0.0; n];
        let prec = DiagonalPrec::from_diagonal(&diag);
        let precd = minres(&op, &prec, 0.0, &b, &mut x1, 1e-10, 5000);
        assert!(plain.converged && precd.converged);
        assert!(
            (precd.iterations as f64) < 0.7 * plain.iterations as f64,
            "preconditioned {} vs plain {}",
            precd.iterations,
            plain.iterations
        );
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let n = 8;
        let op = DenseOperator::new(spd(n));
        let b = vec![0.0_f64; n];
        let mut x = vec![0.0; n];
        let st = minres(&op, &IdentityPrec, 0.0, &b, &mut x, 1e-10, 100);
        assert!(st.converged);
        assert_eq!(st.iterations, 0);
    }
}
