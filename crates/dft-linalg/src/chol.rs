//! Cholesky factorization and triangular inversion — the CholGS-CI step of
//! Algorithm 1.
//!
//! The Chebyshev-filtered subspace is orthonormalized by factoring the
//! overlap `S = L L†` and applying `Psi L^{-†}`; both pieces live here.

use crate::matrix::Matrix;
use crate::scalar::{Real, Scalar};

/// Errors from the dense factorizations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is not (numerically) Hermitian positive definite; carries
    /// the pivot index that failed.
    NotPositiveDefinite(usize),
    /// Eigensolver failed to converge within the iteration budget.
    NoConvergence(usize),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite(i) => {
                write!(f, "matrix not positive definite at pivot {i}")
            }
            LinalgError::NoConvergence(i) => write!(f, "no convergence after {i} iterations"),
        }
    }
}
impl std::error::Error for LinalgError {}

/// Lower-triangular Cholesky factor `L` with `A = L L†`.
///
/// `A` must be Hermitian positive definite; only its lower triangle is read.
pub fn cholesky<T: Scalar>(a: &Matrix<T>) -> Result<Matrix<T>, LinalgError> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "cholesky: square matrix required");
    let mut l = Matrix::<T>::zeros(n, n);
    for j in 0..n {
        // diagonal entry
        let mut d = a[(j, j)].re();
        for k in 0..j {
            d -= l[(j, k)].abs_sq();
        }
        // NaN must also fail, hence the explicit partial ordering
        if d.to_f64().partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(LinalgError::NotPositiveDefinite(j));
        }
        let dj = d.sqrt();
        l[(j, j)] = T::from_re(dj);
        let inv_dj = T::Re::ONE / dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)].conj();
            }
            l[(i, j)] = s.scale(inv_dj);
        }
    }
    Ok(l)
}

/// Invert a lower-triangular matrix in place semantics (returns `L^{-1}`).
pub fn tri_inv_lower<T: Scalar>(l: &Matrix<T>) -> Matrix<T> {
    let n = l.nrows();
    assert_eq!(n, l.ncols());
    let mut inv = Matrix::<T>::zeros(n, n);
    for j in 0..n {
        inv[(j, j)] = T::ONE / l[(j, j)];
        for i in (j + 1)..n {
            let mut s = T::ZERO;
            for k in j..i {
                s += l[(i, k)] * inv[(k, j)];
            }
            inv[(i, j)] = -(s / l[(i, i)]);
        }
    }
    inv
}

/// CholGS-CI: given a Hermitian positive definite overlap `S`, return
/// `L^{-1}` where `S = L L†`. The orthonormalization step is then the GEMM
/// `Psi_o = Psi_f * L^{-†}` (CholGS-O).
pub fn cholesky_inverse<T: Scalar>(s: &Matrix<T>) -> Result<Matrix<T>, LinalgError> {
    Ok(tri_inv_lower(&cholesky(s)?))
}

/// FLOP estimate for an order-`n` Cholesky factorization (n^3/3 MACs).
pub fn cholesky_flops<T: Scalar>(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3 * (T::MUL_FLOPS + T::ADD_FLOPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Op};
    use crate::scalar::C64;

    fn spd_matrix(n: usize) -> Matrix<f64> {
        // A = B^T B + n*I is SPD
        let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) as f64 * 0.37).sin());
        let mut a = matmul(&b, Op::ConjTrans, &b, Op::None);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn hpd_matrix(n: usize) -> Matrix<C64> {
        let b = Matrix::from_fn(n, n, |i, j| {
            C64::new(
                ((i * 5 + j * 3) as f64 * 0.41).sin(),
                ((i + 2 * j) as f64 * 0.23).cos(),
            )
        });
        let mut a = matmul(&b, Op::ConjTrans, &b, Op::None);
        for i in 0..n {
            a[(i, i)] += C64::from_f64(2.0 * n as f64);
        }
        a.symmetrize_hermitian();
        a
    }

    #[test]
    fn cholesky_reconstructs_spd() {
        let a = spd_matrix(12);
        let l = cholesky(&a).unwrap();
        let rec = matmul(&l, Op::None, &l, Op::ConjTrans);
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn cholesky_reconstructs_hpd_complex() {
        let a = hpd_matrix(10);
        let l = cholesky(&a).unwrap();
        let rec = matmul(&l, Op::None, &l, Op::ConjTrans);
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn tri_inv_gives_identity() {
        let a = spd_matrix(9);
        let l = cholesky(&a).unwrap();
        let li = tri_inv_lower(&l);
        let eye = matmul(&l, Op::None, &li, Op::None);
        assert!(eye.max_abs_diff(&Matrix::identity(9)) < 1e-11);
    }

    #[test]
    fn cholesky_inverse_orthonormalizes() {
        // Psi_o = Psi L^{-dagger} must satisfy Psi_o^dagger Psi_o = I.
        // The i*j cross term keeps the columns genuinely independent.
        let psi = Matrix::from_fn(30, 6, |i, j| {
            ((i * 3 + j * 11) as f64 * 0.29 + (i * j) as f64 * 0.47).sin() + 0.1
        });
        let s = matmul(&psi, Op::ConjTrans, &psi, Op::None);
        let linv = cholesky_inverse(&s).unwrap();
        let psi_o = matmul(&psi, Op::None, &linv, Op::ConjTrans);
        let g = matmul(&psi_o, Op::ConjTrans, &psi_o, Op::None);
        assert!(g.max_abs_diff(&Matrix::identity(6)) < 1e-10);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut a = Matrix::<f64>::identity(4);
        a[(2, 2)] = -1.0;
        assert_eq!(cholesky(&a), Err(LinalgError::NotPositiveDefinite(2)));
    }
}
