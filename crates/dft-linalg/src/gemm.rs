//! General matrix-matrix multiplication, including the mixed-precision
//! variants of the paper's Sec. 5.4.2.
//!
//! [`gemm`] drives the cache-blocked, register-tiled microkernel engine of
//! [`crate::pack`] (packed operand panels, `MC/KC/NC` blocking, `MR x NR`
//! register tile) for all four `Op` combinations. The seed column-axpy/dot
//! kernel is retained as [`gemm_reference`] — it is the correctness oracle
//! for the property tests and the "before" baseline of the kernel
//! benchmarks.

use crate::matrix::Matrix;
use crate::pack::{gemm_block, with_pack_buf, with_scratch3};
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Transposition op applied to a GEMM operand.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    None,
    /// Use the conjugate (Hermitian) transpose; plain transpose for real
    /// scalars.
    ConjTrans,
}

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes are checked; `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
/// Runs on the packed-panel microkernel engine, parallel over `NC`-wide
/// column slabs of `C`.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    opa: Op,
    b: &Matrix<T>,
    opb: Op,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, n) = c.shape();
    let (am, ak) = match opa {
        Op::None => a.shape(),
        Op::ConjTrans => (a.ncols(), a.nrows()),
    };
    let (bk, bn) = match opb {
        Op::None => b.shape(),
        Op::ConjTrans => (b.ncols(), b.nrows()),
    };
    assert_eq!(am, m, "gemm: row mismatch");
    assert_eq!(bn, n, "gemm: col mismatch");
    assert_eq!(ak, bk, "gemm: inner-dimension mismatch");
    let k = ak;

    gemm_slices(
        m,
        n,
        k,
        alpha,
        a.as_slice(),
        a.nrows(),
        opa == Op::ConjTrans,
        b.as_slice(),
        b.nrows(),
        opb == Op::ConjTrans,
        beta,
        c.as_mut_slice(),
    );
}

/// Slice-level GEMM driver: `C = alpha * op(A) * op(B) + beta * C` on raw
/// column-major storage, with `C` packed (`ldc == m`). This is [`gemm`]
/// minus the shape bookkeeping; the mixed-precision path calls it directly
/// on scratch buffers so it never has to build low-precision `Matrix`
/// temporaries.
// dftlint:hot
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    a_trans: bool,
    b: &[T],
    ldb: usize,
    b_trans: bool,
    beta: T,
    c: &mut [T],
) {
    debug_assert_eq!(c.len(), m * n, "gemm_slices: C must be packed m x n");
    // beta pass over all of C first, so the blocked accumulation below is a
    // pure `C += ...` regardless of how k is sliced into KC slabs.
    if beta == T::ZERO {
        c.fill(T::ZERO);
    } else if beta != T::ONE {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
    if m == 0 || n == 0 || k == 0 || alpha == T::ZERO {
        return;
    }

    let nc_slab = crate::autotune::blocking().2;
    c.par_chunks_mut(m * nc_slab)
        .enumerate()
        .for_each(|(slab, cblk)| {
            let jc = slab * nc_slab;
            let ncb = cblk.len() / m;
            // Shift B so column jc of op(B) becomes column 0 of the slab.
            let boff = if b_trans { jc } else { jc * ldb };
            with_pack_buf(|buf| {
                gemm_block(
                    m,
                    ncb,
                    k,
                    alpha,
                    a,
                    lda,
                    a_trans,
                    &b[boff..],
                    ldb,
                    b_trans,
                    cblk,
                    m,
                    buf,
                );
            });
        });
}

/// The seed unblocked column-axpy/dot GEMM, kept verbatim as the
/// correctness reference for the blocked engine and as the "before"
/// baseline of the kernel benchmarks. Semantics are identical to [`gemm`].
pub fn gemm_reference<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    opa: Op,
    b: &Matrix<T>,
    opb: Op,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, n) = c.shape();
    let (am, ak) = match opa {
        Op::None => a.shape(),
        Op::ConjTrans => (a.ncols(), a.nrows()),
    };
    let (bk, bn) = match opb {
        Op::None => b.shape(),
        Op::ConjTrans => (b.ncols(), b.nrows()),
    };
    assert_eq!(am, m, "gemm: row mismatch");
    assert_eq!(bn, n, "gemm: col mismatch");
    assert_eq!(ak, bk, "gemm: inner-dimension mismatch");
    let k = ak;

    let nrows_a = a.nrows();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let nrows_b = b.nrows();

    // Each chunk of len m in C's buffer is one column of C (column-major).
    c.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(j, cj)| {
            // Scale the output column by beta.
            if beta == T::ZERO {
                cj.fill(T::ZERO);
            } else if beta != T::ONE {
                for v in cj.iter_mut() {
                    *v *= beta;
                }
            }
            match (opa, opb) {
                (Op::None, Op::None) => {
                    // c_j += alpha * A * b_j  (axpy over columns of A)
                    let bj = &b_data[j * nrows_b..j * nrows_b + k];
                    for l in 0..k {
                        let w = alpha * bj[l];
                        if w == T::ZERO {
                            continue;
                        }
                        let acol = &a_data[l * nrows_a..l * nrows_a + m];
                        for (cv, &av) in cj.iter_mut().zip(acol.iter()) {
                            *cv += w * av;
                        }
                    }
                }
                (Op::ConjTrans, Op::None) => {
                    // c[i,j] += alpha * <a_col_i, b_j>
                    let bj = &b_data[j * nrows_b..j * nrows_b + k];
                    for i in 0..m {
                        let acol = &a_data[i * nrows_a..i * nrows_a + k];
                        let mut acc = T::ZERO;
                        for (&av, &bv) in acol.iter().zip(bj.iter()) {
                            acc += av.conj() * bv;
                        }
                        cj[i] += alpha * acc;
                    }
                }
                (Op::None, Op::ConjTrans) => {
                    // c_j += alpha * A * conj(b[j, :])^T ; b is n x k stored
                    // column-major, so b[j, l] = b_data[l*nrows_b + j].
                    for l in 0..k {
                        let w = alpha * b_data[l * nrows_b + j].conj();
                        if w == T::ZERO {
                            continue;
                        }
                        let acol = &a_data[l * nrows_a..l * nrows_a + m];
                        for (cv, &av) in cj.iter_mut().zip(acol.iter()) {
                            *cv += w * av;
                        }
                    }
                }
                (Op::ConjTrans, Op::ConjTrans) => {
                    for i in 0..m {
                        let acol = &a_data[i * nrows_a..i * nrows_a + k];
                        let mut acc = T::ZERO;
                        for l in 0..k {
                            acc += acol[l].conj() * b_data[l * nrows_b + j].conj();
                        }
                        cj[i] += alpha * acc;
                    }
                }
            }
        });
}

/// Convenience: `C = op(A) * op(B)` freshly allocated.
pub fn matmul<T: Scalar>(a: &Matrix<T>, opa: Op, b: &Matrix<T>, opb: Op) -> Matrix<T> {
    let m = match opa {
        Op::None => a.nrows(),
        Op::ConjTrans => a.ncols(),
    };
    let n = match opb {
        Op::None => b.ncols(),
        Op::ConjTrans => b.nrows(),
    };
    let mut c = Matrix::zeros(m, n);
    gemm(T::ONE, a, opa, b, opb, T::ZERO, &mut c);
    c
}

/// Mixed-precision GEMM: demote both operands to [`Scalar::Low`] (FP32
/// family), multiply there, and accumulate into the FP64-family output.
///
/// This is the paper's Sec. 5.4.2 trick for the `O(MN^2)` CholGS-S / RR-P /
/// RR-SR steps: off-diagonal blocks carry data that is converging to zero
/// (or rotations close to identity), so FP32 precision suffices while
/// halving bandwidth and (on real GPUs) doubling throughput.
///
/// Demotion, the low-precision product and the promotion all run through
/// this thread's recycled [`with_scratch3`] buffers, so the steady-state
/// mixed-precision CF loop performs zero heap allocations here (the seed
/// version built two full temporary matrices per call).
// dftlint:hot
pub fn gemm_mixed<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    opa: Op,
    b: &Matrix<T>,
    opb: Op,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, n) = c.shape();
    let (am, ak) = match opa {
        Op::None => a.shape(),
        Op::ConjTrans => (a.ncols(), a.nrows()),
    };
    let (bk, bn) = match opb {
        Op::None => b.shape(),
        Op::ConjTrans => (b.ncols(), b.nrows()),
    };
    assert_eq!(am, m, "gemm: row mismatch");
    assert_eq!(bn, n, "gemm: col mismatch");
    assert_eq!(ak, bk, "gemm: inner-dimension mismatch");
    let k = ak;

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    with_scratch3::<T::Low, _>(|al, bl, cl| {
        if al.len() < a_data.len() {
            al.resize(a_data.len(), <T::Low as Scalar>::ZERO);
        }
        if bl.len() < b_data.len() {
            bl.resize(b_data.len(), <T::Low as Scalar>::ZERO);
        }
        if cl.len() < m * n {
            cl.resize(m * n, <T::Low as Scalar>::ZERO);
        }
        for (d, &s) in al.iter_mut().zip(a_data.iter()) {
            *d = s.to_low();
        }
        for (d, &s) in bl.iter_mut().zip(b_data.iter()) {
            *d = s.to_low();
        }
        gemm_slices(
            m,
            n,
            k,
            <T::Low as Scalar>::ONE,
            &al[..a_data.len()],
            a.nrows(),
            opa == Op::ConjTrans,
            &bl[..b_data.len()],
            b.nrows(),
            opb == Op::ConjTrans,
            <T::Low as Scalar>::ZERO,
            &mut cl[..m * n],
        );
        // Promote and combine in one pass: c = beta * c + alpha * promote(cl).
        let cs = c.as_mut_slice();
        if beta == T::ZERO {
            for (cv, &lv) in cs.iter_mut().zip(cl.iter()) {
                *cv = alpha * T::from_low(lv);
            }
        } else {
            for (cv, &lv) in cs.iter_mut().zip(cl.iter()) {
                *cv = beta * *cv + alpha * T::from_low(lv);
            }
        }
    });
}

/// FLOP count of a `(m x k) * (k x n)` GEMM for scalar type `T`
/// (2mnk real FLOPs, 8mnk for complex — the paper's Sec. 6.3 uses the
/// factor-4-over-real convention `alpha * 4 * N * M * N`, i.e. counting a
/// complex MAC as 4x a real one).
pub fn gemm_flops<T: Scalar>(m: usize, n: usize, k: usize) -> u64 {
    let macs = (m as u64) * (n as u64) * (k as u64);
    macs * (T::MUL_FLOPS + T::ADD_FLOPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C64;

    fn naive<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
        let mut c = Matrix::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut acc = T::ZERO;
                for l in 0..a.ncols() {
                    acc += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn test_mat(m: usize, n: usize, seed: f64) -> Matrix<f64> {
        Matrix::from_fn(m, n, |i, j| ((i * 31 + j * 17) as f64 * 0.618 + seed).sin())
    }

    #[test]
    fn gemm_none_none_matches_naive() {
        let a = test_mat(7, 5, 0.1);
        let b = test_mat(5, 9, 0.7);
        let c = matmul(&a, Op::None, &b, Op::None);
        assert!(c.max_abs_diff(&naive(&a, &b)) < 1e-13);
    }

    #[test]
    fn gemm_conjtrans_none_matches_naive() {
        let a = test_mat(5, 7, 0.3);
        let b = test_mat(5, 4, 0.9);
        let c = matmul(&a, Op::ConjTrans, &b, Op::None);
        assert!(c.max_abs_diff(&naive(&a.transpose(), &b)) < 1e-13);
    }

    #[test]
    fn gemm_none_conjtrans_matches_naive() {
        let a = test_mat(6, 3, 0.2);
        let b = test_mat(8, 3, 0.4);
        let c = matmul(&a, Op::None, &b, Op::ConjTrans);
        assert!(c.max_abs_diff(&naive(&a, &b.transpose())) < 1e-13);
    }

    #[test]
    fn gemm_conjtrans_conjtrans_matches_naive() {
        let a = test_mat(4, 6, 0.5);
        let b = test_mat(3, 4, 0.8);
        let c = matmul(&a, Op::ConjTrans, &b, Op::ConjTrans);
        assert!(c.max_abs_diff(&naive(&a.transpose(), &b.transpose())) < 1e-13);
    }

    #[test]
    fn gemm_complex_adjoint() {
        let a = Matrix::from_fn(4, 3, |i, j| C64::new(i as f64 * 0.3, j as f64 * 0.7 - 1.0));
        let b = Matrix::from_fn(4, 2, |i, j| C64::new(j as f64 - i as f64, 0.5 * i as f64));
        let c = matmul(&a, Op::ConjTrans, &b, Op::None);
        let expected = naive(&a.adjoint(), &b);
        assert!(c.max_abs_diff(&expected) < 1e-13);
    }

    #[test]
    fn gemm_alpha_beta_accumulate() {
        let a = test_mat(3, 3, 0.0);
        let b = test_mat(3, 3, 1.0);
        let mut c = test_mat(3, 3, 2.0);
        let c0 = c.clone();
        gemm(2.0, &a, Op::None, &b, Op::None, -1.0, &mut c);
        let mut expected = naive(&a, &b);
        expected.scale_inplace(2.0);
        expected.axpy_inplace(-1.0, &c0);
        assert!(c.max_abs_diff(&expected) < 1e-13);
    }

    #[test]
    fn gemm_mixed_close_to_fp64() {
        let a = test_mat(20, 12, 0.15);
        let b = test_mat(12, 8, 0.35);
        let exact = matmul(&a, Op::None, &b, Op::None);
        let mut c = Matrix::zeros(20, 8);
        gemm_mixed(1.0, &a, Op::None, &b, Op::None, 0.0, &mut c);
        // FP32 accumulation error bounded by ~k * eps_f32 * |entries|
        assert!(c.max_abs_diff(&exact) < 1e-4);
        assert!(c.max_abs_diff(&exact) > 0.0); // genuinely low-precision
    }

    #[test]
    fn gemm_flop_count_real_vs_complex() {
        assert_eq!(gemm_flops::<f64>(10, 10, 10), 2000);
        assert_eq!(gemm_flops::<C64>(10, 10, 10), 8000);
    }
}
