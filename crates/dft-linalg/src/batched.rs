//! Strided-batched GEMM — the CPU analogue of `xGEMMStridedBatched`.
//!
//! The paper's key kernel (Sec. 5.4.1) recasts the global sparse
//! matrix-times-wavefunction-block product `Y = H X` as a batch of *dense*
//! FE cell-level products `Y_c = H_c X_c` followed by an FE assembly. The
//! batch members all share one shape (`m x k` times `k x n`) and are laid
//! out at fixed strides, exactly like the cuBLAS/rocBLAS strided-batched
//! call. Here the batch is parallelised with rayon (standing in for the
//! GPU's fine-grained parallelism).

use crate::pack::{gemm_block, with_pack_buf};
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Shape and stride description for a strided-batched GEMM.
#[derive(Copy, Clone, Debug)]
pub struct BatchLayout {
    /// Rows of each `A_i` and `C_i`.
    pub m: usize,
    /// Columns of each `B_i` and `C_i`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Number of batch members (FE cells).
    pub batch: usize,
    /// Element stride between consecutive `A_i` (>= m*k).
    pub stride_a: usize,
    /// Element stride between consecutive `B_i` (>= k*n).
    pub stride_b: usize,
    /// Element stride between consecutive `C_i` (>= m*n).
    pub stride_c: usize,
}

impl BatchLayout {
    /// Tightly packed layout for `batch` members of shape `m,n,k`.
    pub fn packed(m: usize, n: usize, k: usize, batch: usize) -> Self {
        Self {
            m,
            n,
            k,
            batch,
            stride_a: m * k,
            stride_b: k * n,
            stride_c: m * n,
        }
    }

    /// Total real FLOPs of the batched product for scalar type `T`.
    pub fn flops<T: Scalar>(&self) -> u64 {
        crate::gemm::gemm_flops::<T>(self.m, self.n, self.k) * self.batch as u64
    }
}

/// `C_i = alpha * A_i * B_i + beta * C_i` for every batch member `i`.
///
/// All matrices are column-major within their stride windows. Parallel over
/// the batch dimension. Each member runs on the same packed-panel
/// microkernel as [`crate::gemm::gemm`] — the FE cell shape
/// (`m = k = (p+1)^3`) takes its dedicated single-block fast path, and the
/// two entry points share one semantics (the seed `gemm` skipped
/// exact-zero `alpha * b` weights while `batched_gemm` did not; the packed
/// engine treats zeros uniformly in both).
pub fn batched_gemm<T: Scalar>(
    layout: BatchLayout,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) {
    let BatchLayout {
        m,
        n,
        k,
        batch,
        stride_a,
        stride_b,
        stride_c,
    } = layout;
    assert!(a.len() >= batch.saturating_sub(1) * stride_a + m * k || batch == 0);
    assert!(b.len() >= batch.saturating_sub(1) * stride_b + k * n || batch == 0);
    assert!(c.len() >= batch * stride_c || batch == 0);
    if batch == 0 {
        return;
    }

    c.par_chunks_mut(stride_c)
        .take(batch)
        .enumerate()
        .for_each(|(i, ci)| {
            let ai = &a[i * stride_a..i * stride_a + m * k];
            let bi = &b[i * stride_b..i * stride_b + k * n];
            let cm = &mut ci[..m * n];
            if beta == T::ZERO {
                cm.fill(T::ZERO);
            } else if beta != T::ONE {
                for v in cm.iter_mut() {
                    *v *= beta;
                }
            }
            with_pack_buf(|buf| {
                gemm_block(m, n, k, alpha, ai, m, false, bi, k, false, cm, m, buf);
            });
        });
}

/// The seed per-member axpy batched GEMM, kept as the correctness reference
/// and benchmark baseline (see [`crate::gemm::gemm_reference`]).
pub fn batched_gemm_reference<T: Scalar>(
    layout: BatchLayout,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) {
    let BatchLayout {
        m,
        n,
        k,
        batch,
        stride_a,
        stride_b,
        stride_c,
    } = layout;
    assert!(a.len() >= batch.saturating_sub(1) * stride_a + m * k || batch == 0);
    assert!(b.len() >= batch.saturating_sub(1) * stride_b + k * n || batch == 0);
    assert!(c.len() >= batch * stride_c || batch == 0);

    c.par_chunks_mut(stride_c)
        .take(batch)
        .enumerate()
        .for_each(|(i, ci)| {
            let ai = &a[i * stride_a..i * stride_a + m * k];
            let bi = &b[i * stride_b..i * stride_b + k * n];
            for j in 0..n {
                let cj = &mut ci[j * m..(j + 1) * m];
                if beta == T::ZERO {
                    cj.fill(T::ZERO);
                } else if beta != T::ONE {
                    for v in cj.iter_mut() {
                        *v *= beta;
                    }
                }
                let bj = &bi[j * k..(j + 1) * k];
                for l in 0..k {
                    let w = alpha * bj[l];
                    let acol = &ai[l * m..(l + 1) * m];
                    for (cv, &av) in cj.iter_mut().zip(acol.iter()) {
                        *cv += w * av;
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::scalar::C64;

    #[test]
    fn batched_matches_per_cell_gemm() {
        let (m, n, k, batch) = (9, 4, 9, 7);
        let layout = BatchLayout::packed(m, n, k, batch);
        let a: Vec<f64> = (0..m * k * batch)
            .map(|i| ((i * 7) as f64 * 0.1).sin())
            .collect();
        let b: Vec<f64> = (0..k * n * batch)
            .map(|i| ((i * 3) as f64 * 0.2).cos())
            .collect();
        let mut c = vec![0.0_f64; m * n * batch];
        batched_gemm(layout, 1.0, &a, &b, 0.0, &mut c);

        for i in 0..batch {
            let ai = Matrix::from_vec(m, k, a[i * m * k..(i + 1) * m * k].to_vec());
            let bi = Matrix::from_vec(k, n, b[i * k * n..(i + 1) * k * n].to_vec());
            let ci = crate::gemm::matmul(&ai, crate::gemm::Op::None, &bi, crate::gemm::Op::None);
            let got = Matrix::from_vec(m, n, c[i * m * n..(i + 1) * m * n].to_vec());
            assert!(got.max_abs_diff(&ci) < 1e-12, "batch member {i}");
        }
    }

    #[test]
    fn batched_beta_accumulates() {
        let layout = BatchLayout::packed(2, 2, 2, 3);
        let a = vec![1.0_f64; 2 * 2 * 3];
        let b = vec![1.0_f64; 2 * 2 * 3];
        let mut c = vec![10.0_f64; 2 * 2 * 3];
        batched_gemm(layout, 1.0, &a, &b, 1.0, &mut c);
        // each entry: 10 + sum over k of 1*1 = 12
        assert!(c.iter().all(|&v| (v - 12.0).abs() < 1e-14));
    }

    #[test]
    fn batched_complex() {
        let layout = BatchLayout::packed(3, 2, 3, 2);
        let a: Vec<C64> = (0..3 * 3 * 2)
            .map(|i| C64::new(i as f64 * 0.1, -(i as f64) * 0.05))
            .collect();
        let b: Vec<C64> = (0..3 * 2 * 2)
            .map(|i| C64::new(1.0 - i as f64 * 0.2, i as f64 * 0.3))
            .collect();
        let mut c = vec![C64::ZERO; 3 * 2 * 2];
        batched_gemm(layout, C64::ONE, &a, &b, C64::ZERO, &mut c);
        // spot-check member 1, entry (0,0)
        let mut acc = C64::ZERO;
        for l in 0..3 {
            acc += a[9 + l * 3] * b[6 + l];
        }
        assert!((c[6] - acc).abs() < 1e-13);
    }

    #[test]
    fn flop_accounting() {
        let layout = BatchLayout::packed(9, 10, 9, 100);
        assert_eq!(layout.flops::<f64>(), 2 * 9 * 10 * 9 * 100);
        assert_eq!(layout.flops::<C64>(), 8 * 9 * 10 * 9 * 100);
    }
}
