//! Strided-batched GEMM — the CPU analogue of `xGEMMStridedBatched`.
//!
//! The paper's key kernel (Sec. 5.4.1) recasts the global sparse
//! matrix-times-wavefunction-block product `Y = H X` as a batch of *dense*
//! FE cell-level products `Y_c = H_c X_c` followed by an FE assembly. The
//! batch members all share one shape (`m x k` times `k x n`) and are laid
//! out at fixed strides, exactly like the cuBLAS/rocBLAS strided-batched
//! call. Here the batch is parallelised with rayon (standing in for the
//! GPU's fine-grained parallelism).

use crate::pack::{gemm_block, with_pack_buf};
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Shape and stride description for a strided-batched GEMM.
#[derive(Copy, Clone, Debug)]
pub struct BatchLayout {
    /// Rows of each `A_i` and `C_i`.
    pub m: usize,
    /// Columns of each `B_i` and `C_i`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Number of batch members (FE cells).
    pub batch: usize,
    /// Element stride between consecutive `A_i` (>= m*k).
    pub stride_a: usize,
    /// Element stride between consecutive `B_i` (>= k*n).
    pub stride_b: usize,
    /// Element stride between consecutive `C_i` (>= m*n).
    pub stride_c: usize,
}

impl BatchLayout {
    /// Tightly packed layout for `batch` members of shape `m,n,k`.
    pub fn packed(m: usize, n: usize, k: usize, batch: usize) -> Self {
        Self {
            m,
            n,
            k,
            batch,
            stride_a: m * k,
            stride_b: k * n,
            stride_c: m * n,
        }
    }

    /// Total real FLOPs of the batched product for scalar type `T`.
    pub fn flops<T: Scalar>(&self) -> u64 {
        crate::gemm::gemm_flops::<T>(self.m, self.n, self.k) * self.batch as u64
    }
}

/// Validate a batched layout and its buffers up front, with actionable
/// messages. Both [`batched_gemm`] and [`batched_gemm_reference`] call this
/// before touching any data, so degenerate layouts (e.g. `stride_c <
/// m * n`, which used to surface as a bare `chunks_mut(0)` panic deep in
/// the slab loop) fail identically and intelligibly from either entry
/// point.
fn validate_layout<T>(layout: &BatchLayout, a: &[T], b: &[T], c: &[T]) {
    let BatchLayout {
        m,
        n,
        k,
        batch,
        stride_a,
        stride_b,
        stride_c,
    } = *layout;
    if batch == 0 {
        return;
    }
    assert!(
        stride_a >= m * k,
        "batched_gemm: stride_a ({stride_a}) must be >= m*k ({})",
        m * k
    );
    assert!(
        stride_b >= k * n,
        "batched_gemm: stride_b ({stride_b}) must be >= k*n ({})",
        k * n
    );
    assert!(
        stride_c >= m * n,
        "batched_gemm: stride_c ({stride_c}) must be >= m*n ({})",
        m * n
    );
    assert!(
        a.len() >= (batch - 1) * stride_a + m * k,
        "batched_gemm: A buffer too short ({} < {}) for batch {batch}",
        a.len(),
        (batch - 1) * stride_a + m * k
    );
    assert!(
        b.len() >= (batch - 1) * stride_b + k * n,
        "batched_gemm: B buffer too short ({} < {}) for batch {batch}",
        b.len(),
        (batch - 1) * stride_b + k * n
    );
    assert!(
        c.len() >= (batch - 1) * stride_c + m * n,
        "batched_gemm: C buffer too short ({} < {}) for batch {batch}",
        c.len(),
        (batch - 1) * stride_c + m * n
    );
}

/// `C_i = alpha * A_i * B_i + beta * C_i` for every batch member `i`.
///
/// All matrices are column-major within their stride windows. Parallel over
/// the batch dimension. Each member runs on the same packed-panel
/// microkernel as [`crate::gemm::gemm`] — the FE cell shape
/// (`m = k = (p+1)^3`) takes its dedicated single-block fast path, and the
/// two entry points share one semantics (the seed `gemm` skipped
/// exact-zero `alpha * b` weights while `batched_gemm` did not; the packed
/// engine treats zeros uniformly in both).
pub fn batched_gemm<T: Scalar>(
    layout: BatchLayout,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) {
    let BatchLayout {
        m,
        n,
        k,
        batch,
        stride_a,
        stride_b,
        stride_c,
    } = layout;
    validate_layout(&layout, a, b, c);
    if batch == 0 || m * n == 0 {
        return;
    }

    c.par_chunks_mut(stride_c)
        .take(batch)
        .enumerate()
        .for_each(|(i, ci)| {
            let ai = &a[i * stride_a..i * stride_a + m * k];
            let bi = &b[i * stride_b..i * stride_b + k * n];
            let cm = &mut ci[..m * n];
            if beta == T::ZERO {
                cm.fill(T::ZERO);
            } else if beta != T::ONE {
                for v in cm.iter_mut() {
                    *v *= beta;
                }
            }
            with_pack_buf(|buf| {
                gemm_block(m, n, k, alpha, ai, m, false, bi, k, false, cm, m, buf);
            });
        });
}

/// The seed per-member axpy batched GEMM, kept as the correctness reference
/// and benchmark baseline (see [`crate::gemm::gemm_reference`]).
pub fn batched_gemm_reference<T: Scalar>(
    layout: BatchLayout,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) {
    let BatchLayout {
        m,
        n,
        k,
        batch,
        stride_a,
        stride_b,
        stride_c,
    } = layout;
    validate_layout(&layout, a, b, c);
    if batch == 0 || m * n == 0 {
        return;
    }

    c.par_chunks_mut(stride_c)
        .take(batch)
        .enumerate()
        .for_each(|(i, ci)| {
            let ai = &a[i * stride_a..i * stride_a + m * k];
            let bi = &b[i * stride_b..i * stride_b + k * n];
            for j in 0..n {
                let cj = &mut ci[j * m..(j + 1) * m];
                if beta == T::ZERO {
                    cj.fill(T::ZERO);
                } else if beta != T::ONE {
                    for v in cj.iter_mut() {
                        *v *= beta;
                    }
                }
                let bj = &bi[j * k..(j + 1) * k];
                for l in 0..k {
                    let w = alpha * bj[l];
                    let acol = &ai[l * m..(l + 1) * m];
                    for (cv, &av) in cj.iter_mut().zip(acol.iter()) {
                        *cv += w * av;
                    }
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::scalar::C64;

    #[test]
    fn batched_matches_per_cell_gemm() {
        let (m, n, k, batch) = (9, 4, 9, 7);
        let layout = BatchLayout::packed(m, n, k, batch);
        let a: Vec<f64> = (0..m * k * batch)
            .map(|i| ((i * 7) as f64 * 0.1).sin())
            .collect();
        let b: Vec<f64> = (0..k * n * batch)
            .map(|i| ((i * 3) as f64 * 0.2).cos())
            .collect();
        let mut c = vec![0.0_f64; m * n * batch];
        batched_gemm(layout, 1.0, &a, &b, 0.0, &mut c);

        for i in 0..batch {
            let ai = Matrix::from_vec(m, k, a[i * m * k..(i + 1) * m * k].to_vec());
            let bi = Matrix::from_vec(k, n, b[i * k * n..(i + 1) * k * n].to_vec());
            let ci = crate::gemm::matmul(&ai, crate::gemm::Op::None, &bi, crate::gemm::Op::None);
            let got = Matrix::from_vec(m, n, c[i * m * n..(i + 1) * m * n].to_vec());
            assert!(got.max_abs_diff(&ci) < 1e-12, "batch member {i}");
        }
    }

    #[test]
    fn batched_beta_accumulates() {
        let layout = BatchLayout::packed(2, 2, 2, 3);
        let a = vec![1.0_f64; 2 * 2 * 3];
        let b = vec![1.0_f64; 2 * 2 * 3];
        let mut c = vec![10.0_f64; 2 * 2 * 3];
        batched_gemm(layout, 1.0, &a, &b, 1.0, &mut c);
        // each entry: 10 + sum over k of 1*1 = 12
        assert!(c.iter().all(|&v| (v - 12.0).abs() < 1e-14));
    }

    #[test]
    fn batched_complex() {
        let layout = BatchLayout::packed(3, 2, 3, 2);
        let a: Vec<C64> = (0..3 * 3 * 2)
            .map(|i| C64::new(i as f64 * 0.1, -(i as f64) * 0.05))
            .collect();
        let b: Vec<C64> = (0..3 * 2 * 2)
            .map(|i| C64::new(1.0 - i as f64 * 0.2, i as f64 * 0.3))
            .collect();
        let mut c = vec![C64::ZERO; 3 * 2 * 2];
        batched_gemm(layout, C64::ONE, &a, &b, C64::ZERO, &mut c);
        // spot-check member 1, entry (0,0)
        let mut acc = C64::ZERO;
        for l in 0..3 {
            acc += a[9 + l * 3] * b[6 + l];
        }
        assert!((c[6] - acc).abs() < 1e-13);
    }

    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> Option<String> {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let got = std::panic::catch_unwind(f).err().map(|e| {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        });
        std::panic::set_hook(hook);
        got
    }

    #[test]
    fn degenerate_layouts_fail_identically_with_clear_messages() {
        // stride_c too small for the member shape: used to die inside the
        // slab loop with a bare `chunks cannot have a size of zero`.
        let bad_c = BatchLayout {
            stride_c: 3,
            ..BatchLayout::packed(2, 2, 2, 2)
        };
        let (a, b) = (vec![0.0_f64; 8], vec![0.0_f64; 8]);
        let msg = panic_message(|| {
            let mut c = vec![0.0_f64; 8];
            batched_gemm(bad_c, 1.0, &a, &b, 0.0, &mut c);
        })
        .expect("must panic");
        assert!(msg.contains("stride_c (3) must be >= m*n (4)"), "{msg}");
        let msg_ref = panic_message(|| {
            let mut c = vec![0.0_f64; 8];
            batched_gemm_reference(bad_c, 1.0, &a, &b, 0.0, &mut c);
        })
        .expect("must panic");
        assert_eq!(msg, msg_ref, "both paths must agree on error behavior");

        // Short operand buffer.
        let layout = BatchLayout::packed(2, 2, 2, 3);
        let msg = panic_message(|| {
            let mut c = vec![0.0_f64; 12];
            batched_gemm(layout, 1.0, &[0.0_f64; 8], &[0.0_f64; 12], 0.0, &mut c);
        })
        .expect("must panic");
        assert!(msg.contains("A buffer too short (8 < 12)"), "{msg}");
        let msg_ref = panic_message(|| {
            let mut c = vec![0.0_f64; 12];
            batched_gemm_reference(layout, 1.0, &[0.0_f64; 8], &[0.0_f64; 12], 0.0, &mut c);
        })
        .expect("must panic");
        assert_eq!(msg, msg_ref);
    }

    #[test]
    fn empty_batch_and_empty_members_are_no_ops() {
        // batch == 0: nothing validated, nothing touched (both paths).
        let layout = BatchLayout::packed(4, 4, 4, 0);
        let mut c: Vec<f64> = vec![7.0; 4];
        batched_gemm(layout, 1.0, &[], &[], 0.0, &mut c);
        batched_gemm_reference(layout, 1.0, &[], &[], 0.0, &mut c);
        assert!(c.iter().all(|&v| v.to_bits() == 7.0f64.to_bits()));
        // m*n == 0 with zero strides: formerly a chunks_mut(0) panic.
        let empty = BatchLayout::packed(0, 0, 3, 2);
        batched_gemm(empty, 1.0, &[], &[], 0.0, &mut c);
        batched_gemm_reference(empty, 1.0, &[], &[], 0.0, &mut c);
        assert!(c.iter().all(|&v| v.to_bits() == 7.0f64.to_bits()));
    }

    #[test]
    fn flop_accounting() {
        let layout = BatchLayout::packed(9, 10, 9, 100);
        assert_eq!(layout.flops::<f64>(), 2 * 9 * 10 * 9 * 100);
        assert_eq!(layout.flops::<C64>(), 8 * 9 * 10 * 9 * 100);
    }
}
