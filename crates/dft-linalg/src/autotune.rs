//! Per-machine autotuning of the GEMM cache blocking and the ChFES
//! Chebyshev-filter block size `B_f`.
//!
//! The paper's Fig. 4 sweeps the wavefunction block size `B_f` on each
//! machine (Summit / Crusher / Perlmutter) because the optimum is a hardware
//! property, not an algorithmic one. The same holds for the `MC/KC/NC`
//! cache-blocking parameters of the packed GEMM engine in [`crate::pack`].
//! This module measures both on first run and persists the winner to a small
//! JSON profile:
//!
//! * location: `$DFT_TUNE_FILE` if set, else `target/dft_tune.json`
//!   (relative to the working directory of the run);
//! * format: `{"version":1,"tier":"avx512","mc":128,"kc":256,"nc":512,
//!   "bf":64,"gemm_mflops":55000}`;
//! * retune: delete the file (or point `DFT_TUNE_FILE` elsewhere) and rerun
//!   `cargo run --release -p dft-bench --bin bench_kernels`.
//!
//! The tuned blocking is process-global: [`blocking`] is read by the GEMM
//! drivers on every call (falling back to the compiled-in defaults until a
//! profile is applied), and SCF drivers call [`load_from_disk`] at entry so
//! production runs pick up the profile without ever paying for a sweep.
//! Blocking only changes how the iteration space is partitioned — kernel
//! semantics and tolerances are unaffected.

use crate::batched::{batched_gemm, BatchLayout};
use crate::gemm::{gemm, gemm_flops, Op};
use crate::matrix::Matrix;
use crate::pack;
use crate::simd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Tuning-file format version.
pub const TUNE_VERSION: u64 = 1;

// 0 = "use the compiled-in default from `pack`".
static MC_T: AtomicUsize = AtomicUsize::new(0);
static KC_T: AtomicUsize = AtomicUsize::new(0);
static NC_T: AtomicUsize = AtomicUsize::new(0);
static BF_T: AtomicUsize = AtomicUsize::new(0);

/// The `(MC, KC, NC)` cache blocking currently in effect.
#[inline]
pub fn blocking() -> (usize, usize, usize) {
    let mc = MC_T.load(Ordering::Relaxed);
    let kc = KC_T.load(Ordering::Relaxed);
    let nc = NC_T.load(Ordering::Relaxed);
    (
        if mc == 0 { pack::MC } else { mc },
        if kc == 0 { pack::KC } else { kc },
        if nc == 0 { pack::NC } else { nc },
    )
}

/// Install a cache blocking (0 restores a default dimension).
pub fn set_blocking(mc: usize, kc: usize, nc: usize) {
    MC_T.store(mc, Ordering::Relaxed);
    KC_T.store(kc, Ordering::Relaxed);
    NC_T.store(nc, Ordering::Relaxed);
}

/// Restore the compiled-in blocking defaults and forget the tuned `B_f`.
pub fn reset() {
    set_blocking(0, 0, 0);
    BF_T.store(0, Ordering::Relaxed);
}

/// The tuned Chebyshev-filter block size, or `fallback` when no profile has
/// been applied.
#[inline]
pub fn tuned_block_size(fallback: usize) -> usize {
    match BF_T.load(Ordering::Relaxed) {
        0 => fallback,
        bf => bf,
    }
}

/// A persisted tuning profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuneProfile {
    /// SIMD tier the sweep ran on ("scalar"/"avx2"/"avx512").
    pub tier: String,
    /// Winning A-panel height.
    pub mc: usize,
    /// Winning inner-dimension slab depth.
    pub kc: usize,
    /// Winning B-panel width.
    pub nc: usize,
    /// Winning Chebyshev-filter block size `B_f`.
    pub bf: usize,
    /// f64 GEMM throughput measured with the winning blocking, in integer
    /// MFLOP/s (integer so the profile round-trips exactly through JSON).
    pub gemm_mflops: u64,
}

impl TuneProfile {
    /// Apply this profile to the process-global tuning state.
    pub fn apply(&self) {
        set_blocking(self.mc, self.kc, self.nc);
        BF_T.store(self.bf, Ordering::Relaxed);
    }

    /// Serialize to the tuning-file JSON format.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"version\":{},\"tier\":\"{}\",\"mc\":{},\"kc\":{},\"nc\":{},\"bf\":{},\"gemm_mflops\":{}}}\n",
            TUNE_VERSION, self.tier, self.mc, self.kc, self.nc, self.bf, self.gemm_mflops
        )
    }

    /// Parse the tuning-file JSON format (rejects other versions).
    pub fn from_json(s: &str) -> Option<Self> {
        if json_u64(s, "version")? != TUNE_VERSION {
            return None;
        }
        Some(Self {
            tier: json_str(s, "tier")?,
            mc: json_u64(s, "mc")? as usize,
            kc: json_u64(s, "kc")? as usize,
            nc: json_u64(s, "nc")? as usize,
            bf: json_u64(s, "bf")? as usize,
            gemm_mflops: json_u64(s, "gemm_mflops")?,
        })
    }
}

fn json_u64(s: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = s.find(&pat)? + pat.len();
    let rest = s[at..].trim_start();
    let end = rest
        .find(|ch: char| !ch.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_str(s: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = s.find(&pat)? + pat.len();
    let rest = &s[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Path of the tuning file: `$DFT_TUNE_FILE` or `target/dft_tune.json`.
pub fn tune_file_path() -> std::path::PathBuf {
    std::env::var_os("DFT_TUNE_FILE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/dft_tune.json"))
}

/// Load the tuning file and apply it, if present and valid for this
/// machine's active SIMD tier. Cheap no-op otherwise — SCF drivers call
/// this unconditionally at entry.
pub fn load_from_disk() -> Option<TuneProfile> {
    let text = std::fs::read_to_string(tune_file_path()).ok()?;
    let profile = TuneProfile::from_json(&text)?;
    if profile.tier != simd::active_tier().name() {
        return None; // profile from another tier (e.g. forced-fallback run)
    }
    profile.apply();
    Some(profile)
}

/// One measured point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Candidate `MC` (0 for `B_f`-sweep points).
    pub mc: usize,
    /// Candidate `KC`.
    pub kc: usize,
    /// Candidate `NC`.
    pub nc: usize,
    /// Candidate `B_f` (0 for blocking-sweep points).
    pub bf: usize,
    /// Measured throughput, GFLOP/s.
    pub gflops: f64,
}

/// Everything the autotune sweep measured (for EXPERIMENTS reporting).
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// The winning profile (already applied and saved).
    pub profile: TuneProfile,
    /// All `(MC, KC, NC)` candidates with measured f64 GEMM GFLOP/s.
    pub blocking_sweep: Vec<SweepPoint>,
    /// All `B_f` candidates with measured batched-cell-GEMM GFLOP/s.
    pub bf_sweep: Vec<SweepPoint>,
}

fn time_gflops(flops: u64, reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up packing buffers and caches
         // Minimum over reps: interference only ever slows a rep down, so the
         // fastest rep ranks blocking candidates most reliably on noisy boxes.
    let mut dt = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        dt = dt.min(t0.elapsed().as_secs_f64());
    }
    if dt > 0.0 && dt.is_finite() {
        flops as f64 / dt / 1e9
    } else {
        0.0
    }
}

/// Measure f64 GEMM throughput at one `(mc, kc, nc)` candidate.
fn bench_blocking(a: &Matrix<f64>, b: &Matrix<f64>, c: &mut Matrix<f64>, reps: usize) -> f64 {
    let n = a.nrows();
    time_gflops(gemm_flops::<f64>(n, n, n), reps, || {
        gemm(1.0, a, Op::None, b, Op::None, 0.0, c);
    })
}

/// Sweep `MC/KC/NC` and `B_f` on this machine, apply the winner, persist it
/// to [`tune_file_path`], and return the full report. Takes a few seconds.
pub fn run_sweep() -> TuneReport {
    let tier = simd::active_tier();

    // --- MC/KC/NC sweep on a ChFES-sized f64 GEMM -----------------------
    let n = 384;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) as f64 * 0.01).sin());
    let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) as f64 * 0.02).cos());
    let mut c = Matrix::zeros(n, n);

    let mut blocking_sweep = Vec::new();
    let (mut best_mc, mut best_kc, mut best_nc) = (pack::MC, pack::KC, pack::NC);
    let mut best_gf = 0.0f64;
    for &mc in &[64usize, 128, 256] {
        for &kc in &[128usize, 256, 512] {
            for &nc in &[256usize, 512, 1024] {
                set_blocking(mc, kc, nc);
                let gf = bench_blocking(&a, &b, &mut c, 3);
                blocking_sweep.push(SweepPoint {
                    mc,
                    kc,
                    nc,
                    bf: 0,
                    gflops: gf,
                });
                if gf > best_gf {
                    best_gf = gf;
                    (best_mc, best_kc, best_nc) = (mc, kc, nc);
                }
            }
        }
    }
    set_blocking(best_mc, best_kc, best_nc);

    // --- B_f sweep on the FE cell-batched GEMM (paper Fig. 4) -----------
    // p = 5 cells: m = k = (p+1)^3 = 216 nodes, one H_c per cell (packed
    // per-member A strides, as in the real cell-batched apply); total
    // columns held constant across candidates so every point does the same
    // work.
    let m = 216;
    let total_cols: usize = 1024;
    let cell: Vec<f64> = (0..m * m).map(|i| ((i * 3) as f64 * 0.004).sin()).collect();
    let mut bf_sweep = Vec::new();
    let mut best_bf = 64usize;
    let mut best_bf_gf = 0.0f64;
    for &bf in &[8usize, 16, 32, 48, 64, 96, 128] {
        let batch = total_cols.div_ceil(bf);
        let layout = BatchLayout::packed(m, bf, m, batch);
        let mut av = vec![0.0f64; m * m * batch];
        for ch in av.chunks_exact_mut(m * m) {
            ch.copy_from_slice(&cell);
        }
        let bv: Vec<f64> = (0..m * bf * batch)
            .map(|i| ((i * 7) as f64 * 0.003).cos())
            .collect();
        let mut cv = vec![0.0f64; m * bf * batch];
        let gf = time_gflops(layout.flops::<f64>(), 3, || {
            batched_gemm(layout, 1.0, &av, &bv, 0.0, &mut cv);
        });
        bf_sweep.push(SweepPoint {
            mc: 0,
            kc: 0,
            nc: 0,
            bf,
            gflops: gf,
        });
        if gf > best_bf_gf {
            best_bf_gf = gf;
            best_bf = bf;
        }
    }
    BF_T.store(best_bf, Ordering::Relaxed);

    let profile = TuneProfile {
        tier: tier.name().to_string(),
        mc: best_mc,
        kc: best_kc,
        nc: best_nc,
        bf: best_bf,
        gemm_mflops: (best_gf * 1e3) as u64,
    };
    let path = tune_file_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(&path, profile.to_json());
    TuneReport {
        profile,
        blocking_sweep,
        bf_sweep,
    }
}

/// Load the persisted profile, or run the sweep once and persist it. The
/// bench bins call this at startup so every machine runs tuned.
pub fn ensure_tuned() -> TuneProfile {
    if let Some(p) = load_from_disk() {
        return p;
    }
    run_sweep().profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_defaults_until_tuned() {
        reset();
        assert_eq!(blocking(), (pack::MC, pack::KC, pack::NC));
        set_blocking(64, 128, 256);
        assert_eq!(blocking(), (64, 128, 256));
        assert_eq!(tuned_block_size(48), 48);
        BF_T.store(32, Ordering::Relaxed);
        assert_eq!(tuned_block_size(48), 32);
        reset();
        assert_eq!(blocking(), (pack::MC, pack::KC, pack::NC));
        assert_eq!(tuned_block_size(48), 48);
    }

    #[test]
    fn profile_json_round_trip() {
        let p = TuneProfile {
            tier: "avx512".to_string(),
            mc: 256,
            kc: 512,
            nc: 1024,
            bf: 48,
            gemm_mflops: 55_123,
        };
        assert_eq!(TuneProfile::from_json(&p.to_json()).as_ref(), Some(&p));
        // version mismatch and malformed input are rejected
        assert!(TuneProfile::from_json(&p.to_json().replace(":1,", ":2,")).is_none());
        assert!(TuneProfile::from_json("{}").is_none());
    }

    #[test]
    fn gemm_is_correct_under_any_swept_blocking() {
        let n = 70;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j) as f64 * 0.1).sin());
        let b = Matrix::from_fn(n, n, |i, j| ((i + 5 * j) as f64 * 0.2).cos());
        let mut want = Matrix::zeros(n, n);
        crate::gemm::gemm_reference(1.0, &a, Op::None, &b, Op::None, 0.0, &mut want);
        for &(mc, kc, nc) in &[(64, 128, 256), (256, 512, 1024), (64, 512, 256)] {
            set_blocking(mc, kc, nc);
            let mut got = Matrix::zeros(n, n);
            gemm(1.0, &a, Op::None, &b, Op::None, 0.0, &mut got);
            assert!(got.max_abs_diff(&want) < 1e-12, "blocking ({mc},{kc},{nc})");
        }
        reset();
    }
}
