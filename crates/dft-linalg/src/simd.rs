//! Explicitly vectorized microkernels behind runtime CPU-feature dispatch.
//!
//! The generic register tile in [`crate::pack`] leaves the FMA units idle:
//! rustc will not contract `acc += w * a` into fused multiply-adds (Rust
//! guarantees unfused IEEE semantics), so even with `target-cpu=native` the
//! blocked engine plateaus at the mul+add roofline. This module provides the
//! hand-vectorized `MR x NR` microkernels the BLIS/GotoBLAS design expects:
//!
//! * **AVX-512F** f64 `16x8` / f32 `32x8` tiles (16 vector accumulators);
//! * **AVX2+FMA** f64 `8x6` / f32 `16x6` tiles (12 vector accumulators);
//! * the portable scalar tile in `pack.rs` as the fallback for complex
//!   scalars, edge ISAs and the forced-fallback test mode.
//!
//! The active tier is detected once at runtime (`is_x86_feature_detected!`)
//! and can be forced down with `DFT_SIMD=scalar|avx2|avx512` — CI runs the
//! whole kernel suite under `DFT_SIMD=scalar` so the portable path cannot
//! rot.
//!
//! Numerics: each SIMD kernel accumulates one fused multiply-add per
//! `(r, q)` element per `k` step, ascending in `k` — i.e. exactly
//! `acc = f64::mul_add(a, b, acc)` lane-wise. The parity tests in `pack.rs`
//! pin the kernels bit-for-bit against that scalar `mul_add` oracle.
#![allow(unsafe_code)] // std::arch intrinsics; every unsafe fn documents its contract

use crate::scalar::Scalar;
use std::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set tier the microkernel dispatch runs on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable generic register tile (also the complex-scalar path).
    Scalar = 0,
    /// 256-bit AVX2 + FMA kernels.
    Avx2 = 1,
    /// 512-bit AVX-512F kernels.
    Avx512 = 2,
}

impl SimdTier {
    /// Stable lower-case name (used in the tuning profile and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }
}

const TIER_UNSET: u8 = 0xff;
static TIER: AtomicU8 = AtomicU8::new(TIER_UNSET);

/// The microkernel tier in effect: hardware capability clamped by the
/// `DFT_SIMD` environment variable (`scalar`/`off`, `avx2`, `avx512`).
/// Detected once; subsequent calls are a relaxed atomic load.
pub fn active_tier() -> SimdTier {
    match TIER.load(Ordering::Relaxed) {
        0 => SimdTier::Scalar,
        1 => SimdTier::Avx2,
        2 => SimdTier::Avx512,
        _ => {
            let t = detect();
            TIER.store(t as u8, Ordering::Relaxed);
            t
        }
    }
}

fn detect() -> SimdTier {
    let cap = hw_cap();
    match std::env::var("DFT_SIMD").ok().as_deref() {
        Some("scalar") | Some("off") => SimdTier::Scalar,
        Some("avx2") => cap.min(SimdTier::Avx2),
        Some("avx512") => cap.min(SimdTier::Avx512),
        _ => cap,
    }
}

/// Widest tier this CPU supports.
#[cfg(target_arch = "x86_64")]
pub fn hw_cap() -> SimdTier {
    if std::arch::is_x86_feature_detected!("avx512f") {
        SimdTier::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2")
        && std::arch::is_x86_feature_detected!("fma")
    {
        SimdTier::Avx2
    } else {
        SimdTier::Scalar
    }
}

/// Widest tier this CPU supports (non-x86: scalar only).
#[cfg(not(target_arch = "x86_64"))]
pub fn hw_cap() -> SimdTier {
    SimdTier::Scalar
}

/// Reinterpret a slice between two identical `'static` types (checked by
/// `TypeId`); `None` when the types differ.
fn cast<T: 'static, U: 'static>(s: &[T]) -> Option<&[U]> {
    if TypeId::of::<T>() == TypeId::of::<U>() {
        // SAFETY: T and U are the very same type, so layout and validity
        // invariants are trivially preserved.
        Some(unsafe { std::slice::from_raw_parts(s.as_ptr() as *const U, s.len()) })
    } else {
        None
    }
}

fn cast_mut<T: 'static, U: 'static>(s: &mut [T]) -> Option<&mut [U]> {
    if TypeId::of::<T>() == TypeId::of::<U>() {
        // SAFETY: as in `cast` — identical types.
        Some(unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut U, s.len()) })
    } else {
        None
    }
}

/// Run the SIMD microkernel matching `(T, MR, NR, tier)` on one packed
/// panel pair, accumulating into the `mr x nr` corner of `c` (leading
/// dimension `ldc`). Returns `false` when no vector kernel applies — the
/// caller then runs the portable scalar tile. Panel layout is exactly
/// `pack_a`/`pack_b`'s: `kc` steps of `MR` (resp. `NR`) contiguous,
/// zero-padded scalars.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn microkernel_simd<T: Scalar, const MR: usize, const NR: usize>(
    tier: SimdTier,
    ap: &[T],
    bp: &[T],
    c: &mut [T],
    ldc: usize,
    kc: usize,
    mr: usize,
    nr: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(ap.len() >= MR * kc && bp.len() >= NR * kc);
        debug_assert!(c.len() >= (nr.max(1) - 1) * ldc + mr);
        match tier {
            SimdTier::Avx512 if MR == 16 && NR == 8 => {
                if let (Some(a), Some(b), Some(cc)) = (
                    cast::<T, f64>(ap),
                    cast::<T, f64>(bp),
                    cast_mut::<T, f64>(c),
                ) {
                    // SAFETY: tier == Avx512 certifies avx512f at runtime;
                    // slice bounds checked above.
                    unsafe { x86::f64_avx512_16x8(kc, a, b, cc, ldc, mr, nr) };
                    return true;
                }
            }
            SimdTier::Avx512 if MR == 32 && NR == 8 => {
                if let (Some(a), Some(b), Some(cc)) = (
                    cast::<T, f32>(ap),
                    cast::<T, f32>(bp),
                    cast_mut::<T, f32>(c),
                ) {
                    // SAFETY: as above.
                    unsafe { x86::f32_avx512_32x8(kc, a, b, cc, ldc, mr, nr) };
                    return true;
                }
            }
            SimdTier::Avx2 if MR == 8 && NR == 6 => {
                if let (Some(a), Some(b), Some(cc)) = (
                    cast::<T, f64>(ap),
                    cast::<T, f64>(bp),
                    cast_mut::<T, f64>(c),
                ) {
                    // SAFETY: tier == Avx2 certifies avx2+fma at runtime.
                    unsafe { x86::f64_avx2_8x6(kc, a, b, cc, ldc, mr, nr) };
                    return true;
                }
            }
            SimdTier::Avx2 if MR == 16 && NR == 6 => {
                if let (Some(a), Some(b), Some(cc)) = (
                    cast::<T, f32>(ap),
                    cast::<T, f32>(bp),
                    cast_mut::<T, f32>(c),
                ) {
                    // SAFETY: as above.
                    unsafe { x86::f32_avx2_16x6(kc, a, b, cc, ldc, mr, nr) };
                    return true;
                }
            }
            _ => {}
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (tier, ap, bp, c, ldc, kc, mr, nr);
    }
    false
}

/// Fused-contraction lane update `acc[t] = k * x[t] + acc[t]` over equal
/// lanes — the column-blocked inner product of the sum-factorized FE
/// stiffness apply. Written as explicit `mul_add` so LLVM emits packed
/// `vfmadd` under `target-cpu=native`; semantics are one rounding per lane.
// dftlint:hot
#[inline]
pub fn fma_lane_f64(acc: &mut [f64], x: &[f64], k: f64) {
    for (a, &xv) in acc.iter_mut().zip(x.iter()) {
        *a = k.mul_add(xv, *a);
    }
}

/// `f32` twin of [`fma_lane_f64`].
// dftlint:hot
#[inline]
pub fn fma_lane_f32(acc: &mut [f32], x: &[f32], k: f32) {
    for (a, &xv) in acc.iter_mut().zip(x.iter()) {
        *a = k.mul_add(xv, *a);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// AVX-512F f64 microkernel on a `16 x 8` register tile: 16 zmm
    /// accumulators, one broadcast FMA per `(column, half-tile)` per `k`
    /// step, ascending `k` (one fused rounding per element per step).
    ///
    /// # Safety
    /// Caller must have verified `avx512f` at runtime and that
    /// `ap.len() >= 16*kc`, `bp.len() >= 8*kc`,
    /// `c.len() >= (nr-1)*ldc + mr` with `mr <= 16`, `nr <= 8`.
    // dftlint:hot
    #[target_feature(enable = "avx512f")]
    pub unsafe fn f64_avx512_16x8(
        kc: usize,
        ap: &[f64],
        bp: &[f64],
        c: &mut [f64],
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        let a = ap.as_ptr();
        let b = bp.as_ptr();
        let cp = c.as_mut_ptr();
        let mut acc = [[_mm512_setzero_pd(); 2]; 8];
        // Unrolled by 4 with an 8-step prefetch lead: ~20% measured over the
        // rolled loop on this Xeon (loop overhead amortized, panel lines in
        // L1 before use). Each accumulator still receives exactly one FMA
        // per k step, ascending in k, so the result is bit-identical to the
        // rolled form (prefetch is a non-faulting hint — running past the
        // panel end is fine).
        let mut l = 0;
        while l + 4 <= kc {
            _mm_prefetch::<_MM_HINT_T0>(a.add((l + 8) * 16) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(a.add((l + 8) * 16 + 8) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(b.add((l + 8) * 8) as *const i8);
            for s in l..l + 4 {
                let a0 = _mm512_loadu_pd(a.add(s * 16));
                let a1 = _mm512_loadu_pd(a.add(s * 16 + 8));
                for q in 0..8 {
                    let w = _mm512_set1_pd(*b.add(s * 8 + q));
                    acc[q][0] = _mm512_fmadd_pd(a0, w, acc[q][0]);
                    acc[q][1] = _mm512_fmadd_pd(a1, w, acc[q][1]);
                }
            }
            l += 4;
        }
        while l < kc {
            let a0 = _mm512_loadu_pd(a.add(l * 16));
            let a1 = _mm512_loadu_pd(a.add(l * 16 + 8));
            for q in 0..8 {
                let w = _mm512_set1_pd(*b.add(l * 8 + q));
                acc[q][0] = _mm512_fmadd_pd(a0, w, acc[q][0]);
                acc[q][1] = _mm512_fmadd_pd(a1, w, acc[q][1]);
            }
            l += 1;
        }
        if mr == 16 && nr == 8 {
            for q in 0..8 {
                let cc = cp.add(q * ldc);
                _mm512_storeu_pd(cc, _mm512_add_pd(_mm512_loadu_pd(cc), acc[q][0]));
                _mm512_storeu_pd(
                    cc.add(8),
                    _mm512_add_pd(_mm512_loadu_pd(cc.add(8)), acc[q][1]),
                );
            }
        } else {
            let mut tile = [0.0f64; 16 * 8];
            for q in 0..8 {
                _mm512_storeu_pd(tile.as_mut_ptr().add(q * 16), acc[q][0]);
                _mm512_storeu_pd(tile.as_mut_ptr().add(q * 16 + 8), acc[q][1]);
            }
            for q in 0..nr {
                for r in 0..mr {
                    *cp.add(q * ldc + r) += tile[q * 16 + r];
                }
            }
        }
    }

    /// AVX-512F f32 microkernel on a `32 x 8` register tile.
    ///
    /// # Safety
    /// As [`f64_avx512_16x8`], with `mr <= 32` and f32 panels.
    // dftlint:hot
    #[target_feature(enable = "avx512f")]
    pub unsafe fn f32_avx512_32x8(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: &mut [f32],
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        let a = ap.as_ptr();
        let b = bp.as_ptr();
        let cp = c.as_mut_ptr();
        let mut acc = [[_mm512_setzero_ps(); 2]; 8];
        // Same unroll-by-4 + prefetch-ahead structure as the f64 kernel;
        // identical bit-exactness argument.
        let mut l = 0;
        while l + 4 <= kc {
            _mm_prefetch::<_MM_HINT_T0>(a.add((l + 8) * 32) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(a.add((l + 8) * 32 + 16) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(b.add((l + 8) * 8) as *const i8);
            for s in l..l + 4 {
                let a0 = _mm512_loadu_ps(a.add(s * 32));
                let a1 = _mm512_loadu_ps(a.add(s * 32 + 16));
                for q in 0..8 {
                    let w = _mm512_set1_ps(*b.add(s * 8 + q));
                    acc[q][0] = _mm512_fmadd_ps(a0, w, acc[q][0]);
                    acc[q][1] = _mm512_fmadd_ps(a1, w, acc[q][1]);
                }
            }
            l += 4;
        }
        while l < kc {
            let a0 = _mm512_loadu_ps(a.add(l * 32));
            let a1 = _mm512_loadu_ps(a.add(l * 32 + 16));
            for q in 0..8 {
                let w = _mm512_set1_ps(*b.add(l * 8 + q));
                acc[q][0] = _mm512_fmadd_ps(a0, w, acc[q][0]);
                acc[q][1] = _mm512_fmadd_ps(a1, w, acc[q][1]);
            }
            l += 1;
        }
        if mr == 32 && nr == 8 {
            for q in 0..8 {
                let cc = cp.add(q * ldc);
                _mm512_storeu_ps(cc, _mm512_add_ps(_mm512_loadu_ps(cc), acc[q][0]));
                _mm512_storeu_ps(
                    cc.add(16),
                    _mm512_add_ps(_mm512_loadu_ps(cc.add(16)), acc[q][1]),
                );
            }
        } else {
            let mut tile = [0.0f32; 32 * 8];
            for q in 0..8 {
                _mm512_storeu_ps(tile.as_mut_ptr().add(q * 32), acc[q][0]);
                _mm512_storeu_ps(tile.as_mut_ptr().add(q * 32 + 16), acc[q][1]);
            }
            for q in 0..nr {
                for r in 0..mr {
                    *cp.add(q * ldc + r) += tile[q * 32 + r];
                }
            }
        }
    }

    /// AVX2+FMA f64 microkernel on an `8 x 6` register tile: 12 ymm
    /// accumulators (of 16 architectural ymm registers).
    ///
    /// # Safety
    /// Caller must have verified `avx2` and `fma` at runtime and the bounds
    /// of [`f64_avx512_16x8`] with `mr <= 8`, `nr <= 6`.
    // dftlint:hot
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn f64_avx2_8x6(
        kc: usize,
        ap: &[f64],
        bp: &[f64],
        c: &mut [f64],
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        let a = ap.as_ptr();
        let b = bp.as_ptr();
        let cp = c.as_mut_ptr();
        let mut acc = [[_mm256_setzero_pd(); 2]; 6];
        for l in 0..kc {
            let a0 = _mm256_loadu_pd(a.add(l * 8));
            let a1 = _mm256_loadu_pd(a.add(l * 8 + 4));
            for q in 0..6 {
                let w = _mm256_set1_pd(*b.add(l * 6 + q));
                acc[q][0] = _mm256_fmadd_pd(a0, w, acc[q][0]);
                acc[q][1] = _mm256_fmadd_pd(a1, w, acc[q][1]);
            }
        }
        if mr == 8 && nr == 6 {
            for q in 0..6 {
                let cc = cp.add(q * ldc);
                _mm256_storeu_pd(cc, _mm256_add_pd(_mm256_loadu_pd(cc), acc[q][0]));
                _mm256_storeu_pd(
                    cc.add(4),
                    _mm256_add_pd(_mm256_loadu_pd(cc.add(4)), acc[q][1]),
                );
            }
        } else {
            let mut tile = [0.0f64; 8 * 6];
            for q in 0..6 {
                _mm256_storeu_pd(tile.as_mut_ptr().add(q * 8), acc[q][0]);
                _mm256_storeu_pd(tile.as_mut_ptr().add(q * 8 + 4), acc[q][1]);
            }
            for q in 0..nr {
                for r in 0..mr {
                    *cp.add(q * ldc + r) += tile[q * 8 + r];
                }
            }
        }
    }

    /// AVX2+FMA f32 microkernel on a `16 x 6` register tile.
    ///
    /// # Safety
    /// As [`f64_avx2_8x6`], with `mr <= 16` and f32 panels.
    // dftlint:hot
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn f32_avx2_16x6(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: &mut [f32],
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        let a = ap.as_ptr();
        let b = bp.as_ptr();
        let cp = c.as_mut_ptr();
        let mut acc = [[_mm256_setzero_ps(); 2]; 6];
        for l in 0..kc {
            let a0 = _mm256_loadu_ps(a.add(l * 16));
            let a1 = _mm256_loadu_ps(a.add(l * 16 + 8));
            for q in 0..6 {
                let w = _mm256_set1_ps(*b.add(l * 6 + q));
                acc[q][0] = _mm256_fmadd_ps(a0, w, acc[q][0]);
                acc[q][1] = _mm256_fmadd_ps(a1, w, acc[q][1]);
            }
        }
        if mr == 16 && nr == 6 {
            for q in 0..6 {
                let cc = cp.add(q * ldc);
                _mm256_storeu_ps(cc, _mm256_add_ps(_mm256_loadu_ps(cc), acc[q][0]));
                _mm256_storeu_ps(
                    cc.add(8),
                    _mm256_add_ps(_mm256_loadu_ps(cc.add(8)), acc[q][1]),
                );
            }
        } else {
            let mut tile = [0.0f32; 16 * 6];
            for q in 0..6 {
                _mm256_storeu_ps(tile.as_mut_ptr().add(q * 16), acc[q][0]);
                _mm256_storeu_ps(tile.as_mut_ptr().add(q * 16 + 8), acc[q][1]);
            }
            for q in 0..nr {
                for r in 0..mr {
                    *cp.add(q * ldc + r) += tile[q * 16 + r];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_name_round_trip() {
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Avx2.name(), "avx2");
        assert_eq!(SimdTier::Avx512.name(), "avx512");
    }

    #[test]
    fn active_tier_is_cached_and_within_capability() {
        let t = active_tier();
        assert!(t <= hw_cap());
        assert_eq!(t, active_tier());
    }

    #[test]
    fn cast_rejects_type_mismatch() {
        let v = [1.0f64, 2.0];
        assert!(cast::<f64, f32>(&v).is_none());
        assert_eq!(cast::<f64, f64>(&v).unwrap(), &v);
    }

    #[test]
    fn fma_lanes_match_scalar_mul_add() {
        let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut acc: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).cos()).collect();
        let expect: Vec<f64> = acc
            .iter()
            .zip(&x)
            .map(|(&a, &xv)| 1.37_f64.mul_add(xv, a))
            .collect();
        fma_lane_f64(&mut acc, &x, 1.37);
        for (g, e) in acc.iter().zip(&expect) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }
}
