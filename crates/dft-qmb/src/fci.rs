//! Full configuration interaction in a spin-orbital determinant basis.
//!
//! Determinants are `(alpha_string, beta_string)` bit masks over the
//! spatial orbitals. The sigma builder applies the Slater-Condon rules;
//! the ground state comes from a Davidson iteration with the determinant
//! diagonal as preconditioner. Exactly the "Level 4 & beyond" machinery
//! whose combinatorial cost wall the paper's Fig. 1 depicts.

use crate::integrals::OrbitalIntegrals;
use rayon::prelude::*;

/// One FCI problem: integrals plus electron counts.
pub struct FciProblem<'a> {
    /// Orbital integrals.
    pub ints: &'a OrbitalIntegrals,
    /// Spin-up electrons.
    pub n_alpha: usize,
    /// Spin-down electrons.
    pub n_beta: usize,
    dets: Vec<(u32, u32)>,
}

/// FCI ground-state result.
#[derive(Clone, Debug)]
pub struct FciResult {
    /// Ground-state energy (electronic; no nuclear repulsion here).
    pub energy: f64,
    /// CI vector over determinants.
    pub coefficients: Vec<f64>,
    /// Davidson iterations used.
    pub iterations: usize,
    /// Dimension of the determinant space.
    pub dimension: usize,
}

/// Enumerate all `n_set`-bit strings over `n_orb` orbitals.
pub fn bit_strings(n_orb: usize, n_set: usize) -> Vec<u32> {
    assert!(n_orb <= 28);
    let mut out = Vec::new();
    let mut s: u32 = if n_set == 0 { 0 } else { (1u32 << n_set) - 1 };
    if n_set == 0 {
        return vec![0];
    }
    let limit = 1u32 << n_orb;
    while s < limit {
        out.push(s);
        // Gosper's hack: next higher integer with same popcount
        let c = s & s.wrapping_neg();
        let r = s + c;
        if c == 0 || r >= limit {
            break;
        }
        s = (((r ^ s) >> 2) / c) | r;
    }
    out
}

/// Number of determinants `C(n_orb, n_alpha) * C(n_orb, n_beta)`.
pub fn fci_dimension(n_orb: usize, n_alpha: usize, n_beta: usize) -> usize {
    fn choose(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r: u128 = 1;
        for i in 0..k {
            r = r * (n - i) as u128 / (i + 1) as u128;
        }
        r as usize
    }
    choose(n_orb, n_alpha) * choose(n_orb, n_beta)
}

fn occ_list(s: u32) -> Vec<usize> {
    (0..32).filter(|&i| s >> i & 1 == 1).collect()
}

/// Phase (-1)^k for moving orbital `p` past the occupied orbitals below it.
fn sign_excite(s: u32, p: usize, q: usize) -> f64 {
    // annihilate q, create p (q occupied, p empty)
    let (lo, hi) = if p < q { (p + 1, q) } else { (q + 1, p) };
    let mask: u32 = if hi > lo {
        ((1u32 << hi) - 1) ^ ((1u32 << lo) - 1)
    } else {
        0
    };
    if (s & mask).count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

impl<'a> FciProblem<'a> {
    /// Set up the determinant space.
    pub fn new(ints: &'a OrbitalIntegrals, n_alpha: usize, n_beta: usize) -> Self {
        let no = ints.n_orb;
        let astrs = bit_strings(no, n_alpha);
        let bstrs = bit_strings(no, n_beta);
        let mut dets = Vec::with_capacity(astrs.len() * bstrs.len());
        for &a in &astrs {
            for &b in &bstrs {
                dets.push((a, b));
            }
        }
        Self {
            ints,
            n_alpha,
            n_beta,
            dets,
        }
    }

    /// Determinant count.
    pub fn dimension(&self) -> usize {
        self.dets.len()
    }

    /// Diagonal matrix element `<D|H|D>`.
    fn diagonal_element(&self, a: u32, b: u32) -> f64 {
        let ints = self.ints;
        let ao = occ_list(a);
        let bo = occ_list(b);
        let mut e = 0.0;
        for &p in ao.iter().chain(bo.iter()) {
            e += ints.h(p, p);
        }
        // same-spin: Coulomb - exchange over pairs
        for list in [&ao, &bo] {
            for (i, &p) in list.iter().enumerate() {
                for &q in &list[i + 1..] {
                    e += ints.g(p, p, q, q) - ints.g(p, q, p, q);
                }
            }
        }
        // opposite-spin: Coulomb only
        for &p in &ao {
            for &q in &bo {
                e += ints.g(p, p, q, q);
            }
        }
        e
    }

    /// All diagonal elements.
    pub fn diagonal(&self) -> Vec<f64> {
        self.dets
            .par_iter()
            .map(|&(a, b)| self.diagonal_element(a, b))
            .collect()
    }

    /// Sigma vector `y = H x` by Slater-Condon rules.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dets.len());
        let ints = self.ints;
        let no = ints.n_orb;
        // index lookup
        use std::collections::HashMap;
        let index: HashMap<(u32, u32), usize> =
            self.dets.iter().enumerate().map(|(i, &d)| (d, i)).collect();

        self.dets
            .par_iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                let mut acc = self.diagonal_element(a, b) * x[i];
                let ao = occ_list(a);
                let bo = occ_list(b);

                // single excitations (alpha)
                for &q in &ao {
                    for p in 0..no {
                        if a >> p & 1 == 1 {
                            continue;
                        }
                        let a2 = a & !(1 << q) | (1 << p);
                        let j = index[&(a2, b)];
                        let sgn = sign_excite(a, p, q);
                        // <D|H|D_q^p> = h_pq + sum_occ [(pq|kk) - (pk|qk)]_same
                        //             + sum_beta (pq|kk)
                        let mut val = ints.h(p, q);
                        for &k in &ao {
                            if k == q {
                                continue;
                            }
                            val += ints.g(p, q, k, k) - ints.g(p, k, q, k);
                        }
                        for &k in &bo {
                            val += ints.g(p, q, k, k);
                        }
                        acc += sgn * val * x[j];
                    }
                }
                // single excitations (beta)
                for &q in &bo {
                    for p in 0..no {
                        if b >> p & 1 == 1 {
                            continue;
                        }
                        let b2 = b & !(1 << q) | (1 << p);
                        let j = index[&(a, b2)];
                        let sgn = sign_excite(b, p, q);
                        let mut val = ints.h(p, q);
                        for &k in &bo {
                            if k == q {
                                continue;
                            }
                            val += ints.g(p, q, k, k) - ints.g(p, k, q, k);
                        }
                        for &k in &ao {
                            val += ints.g(p, q, k, k);
                        }
                        acc += sgn * val * x[j];
                    }
                }
                // double excitations: same-spin alpha
                acc += self.same_spin_doubles(&ao, a, |a2| index[&(a2, b)], x);
                // same-spin beta
                acc += self.same_spin_doubles(&bo, b, |b2| index[&(a, b2)], x);
                // opposite-spin doubles
                for &qa in &ao {
                    for pa in 0..no {
                        if a >> pa & 1 == 1 {
                            continue;
                        }
                        let a2 = a & !(1 << qa) | (1 << pa);
                        let sa = sign_excite(a, pa, qa);
                        for &qb in &bo {
                            for pb in 0..no {
                                if b >> pb & 1 == 1 {
                                    continue;
                                }
                                let b2 = b & !(1 << qb) | (1 << pb);
                                let sb = sign_excite(b, pb, qb);
                                let j = index[&(a2, b2)];
                                acc += sa * sb * ints.g(pa, qa, pb, qb) * x[j];
                            }
                        }
                    }
                }
                acc
            })
            .collect()
    }

    fn same_spin_doubles(
        &self,
        occ: &[usize],
        s: u32,
        idx: impl Fn(u32) -> usize,
        x: &[f64],
    ) -> f64 {
        let ints = self.ints;
        let no = ints.n_orb;
        let mut acc = 0.0;
        for (iq, &q) in occ.iter().enumerate() {
            for &r in &occ[iq + 1..] {
                // annihilate q < r, create p < t (both empty)
                for p in 0..no {
                    if s >> p & 1 == 1 {
                        continue;
                    }
                    for t in (p + 1)..no {
                        if s >> t & 1 == 1 {
                            continue;
                        }
                        // two-step excitation with sign bookkeeping:
                        // first q -> p, then r -> t on the intermediate
                        let s1 = s & !(1 << q) | (1 << p);
                        let sgn1 = sign_excite(s, p, q);
                        let s2 = s1 & !(1 << r) | (1 << t);
                        let sgn2 = sign_excite(s1, t, r);
                        let j = idx(s2);
                        let val = ints.g(p, q, t, r) - ints.g(p, r, t, q);
                        acc += sgn1 * sgn2 * val * x[j];
                    }
                }
            }
        }
        acc
    }

    /// Davidson iteration for the lowest eigenpair.
    pub fn solve(&self, tol: f64, max_iter: usize) -> FciResult {
        let dim = self.dimension();
        let diag = self.diagonal();
        // start from the lowest-diagonal determinant
        let i0 = diag
            .iter()
            .enumerate()
            .min_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        let mut x = vec![0.0; dim];
        x[i0] = 1.0;

        let mut energy = diag[i0];
        let mut iterations = 0;
        // Jacobi-Davidson-flavoured preconditioned power refinement on the
        // residual, with Rayleigh quotients (robust, no subspace storage).
        for it in 0..max_iter {
            iterations = it + 1;
            let hx = self.apply(&x);
            let xx: f64 = x.iter().map(|v| v * v).sum();
            let e = x.iter().zip(&hx).map(|(a, b)| a * b).sum::<f64>() / xx;
            // residual r = Hx - e x
            let r: Vec<f64> = hx.iter().zip(&x).map(|(h, v)| h - e * v).collect();
            let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt() / xx.sqrt();
            energy = e;
            if rnorm < tol {
                break;
            }
            // preconditioned correction: dx = -r / (diag - e)
            for i in 0..dim {
                let d = diag[i] - e;
                let d = if d.abs() < 0.1 {
                    0.1 * d.signum().max(0.0) + 0.05
                } else {
                    d
                };
                x[i] -= r[i] / d;
            }
            // normalize
            let n = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            for v in x.iter_mut() {
                *v /= n;
            }
        }
        let n = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        for v in x.iter_mut() {
            *v /= n;
        }
        FciResult {
            energy,
            coefficients: x,
            iterations,
            dimension: dim,
        }
    }

    /// Spin-summed one-particle reduced density matrix `D_pq` in the
    /// orbital basis.
    pub fn one_rdm(&self, c: &[f64]) -> Vec<f64> {
        let no = self.ints.n_orb;
        use std::collections::HashMap;
        let index: HashMap<(u32, u32), usize> =
            self.dets.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let mut d = vec![0.0; no * no];
        for (i, &(a, b)) in self.dets.iter().enumerate() {
            let ci = c[i];
            // dftlint:allow(L004, reason="exact-zero amplitude skip: avoids accumulating terms that contribute nothing")
            if ci == 0.0 {
                continue;
            }
            // diagonal occupation
            for p in 0..no {
                if a >> p & 1 == 1 {
                    d[p * no + p] += ci * ci;
                }
                if b >> p & 1 == 1 {
                    d[p * no + p] += ci * ci;
                }
            }
            // single excitations
            for (s, same_spin_b) in [(a, false), (b, true)] {
                for q in 0..no {
                    if s >> q & 1 != 1 {
                        continue;
                    }
                    for p in 0..no {
                        if p == q || s >> p & 1 == 1 {
                            continue;
                        }
                        let s2 = s & !(1 << q) | (1 << p);
                        let key = if same_spin_b { (a, s2) } else { (s2, b) };
                        let j = index[&key];
                        let sgn = sign_excite(s, p, q);
                        d[p * no + q] += sgn * ci * c[j];
                    }
                }
            }
        }
        d
    }

    /// Real-space density on the grid from the CI vector.
    pub fn density(&self, c: &[f64]) -> Vec<f64> {
        let d = self.one_rdm(c);
        let no = self.ints.n_orb;
        let orbs = &self.ints.orbitals;
        let n = self.ints.grid.n;
        let mut rho = vec![0.0; n];
        for p in 0..no {
            for q in 0..no {
                let dpq = d[p * no + q];
                if dpq.abs() < 1e-14 {
                    continue;
                }
                for x in 0..n {
                    rho[x] += dpq * orbs[(x, p)] * orbs[(x, q)];
                }
            }
        }
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid1d::Grid1d;
    use crate::model::SoftCoulombSystem;

    #[test]
    fn bit_strings_enumeration() {
        let s = bit_strings(4, 2);
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|&x| x.count_ones() == 2));
        assert_eq!(fci_dimension(4, 2, 2), 36);
        assert_eq!(fci_dimension(10, 1, 1), 100);
    }

    #[test]
    fn one_electron_fci_equals_orbital_energy() {
        let sys = SoftCoulombSystem::h_atom();
        let ints = sys.integrals(8, 120, 20.0);
        let fci = FciProblem::new(&ints, 1, 0);
        let r = fci.solve(1e-10, 200);
        assert!(
            (r.energy - ints.h(0, 0)).abs() < 1e-9,
            "FCI {} vs orbital {}",
            r.energy,
            ints.h(0, 0)
        );
    }

    #[test]
    fn two_electron_correlation_is_negative() {
        let sys = SoftCoulombSystem::he_atom();
        let ints = sys.integrals(10, 140, 20.0);
        let fci = FciProblem::new(&ints, 1, 1);
        // mean-field reference: doubly occupied lowest orbital
        let e_ref = 2.0 * ints.h(0, 0) + ints.g(0, 0, 0, 0);
        let r = fci.solve(1e-9, 400);
        assert!(
            r.energy < e_ref,
            "FCI {} must beat HF-like {e_ref}",
            r.energy
        );
        assert!(
            e_ref - r.energy < 0.5,
            "correlation energy should be modest"
        );
    }

    #[test]
    fn fci_variational_in_orbital_count() {
        let sys = SoftCoulombSystem::he_atom();
        let e: Vec<f64> = [4usize, 8]
            .iter()
            .map(|&no| {
                let ints = sys.integrals(no, 120, 20.0);
                FciProblem::new(&ints, 1, 1).solve(1e-9, 400).energy
            })
            .collect();
        assert!(
            e[1] <= e[0] + 1e-9,
            "bigger basis must not raise energy: {e:?}"
        );
    }

    #[test]
    fn density_integrates_to_electron_count_and_is_symmetric() {
        let sys = SoftCoulombSystem::he_atom();
        let ints = sys.integrals(8, 121, 20.0);
        let fci = FciProblem::new(&ints, 1, 1);
        let r = fci.solve(1e-9, 300);
        let rho = fci.density(&r.coefficients);
        let g = Grid1d::symmetric(20.0, 121);
        let q = g.integrate(&rho);
        assert!((q - 2.0).abs() < 1e-6, "charge {q}");
        // symmetric atom at the origin -> symmetric density
        let n = rho.len();
        for i in 0..n / 2 {
            assert!((rho[i] - rho[n - 1 - i]).abs() < 1e-6);
        }
        assert!(rho.iter().all(|&v| v > -1e-12));
    }

    #[test]
    fn one_rdm_trace_and_occupations() {
        let sys = SoftCoulombSystem::he_atom();
        let ints = sys.integrals(6, 101, 18.0);
        let fci = FciProblem::new(&ints, 1, 1);
        let r = fci.solve(1e-9, 300);
        let d = fci.one_rdm(&r.coefficients);
        let no = ints.n_orb;
        let tr: f64 = (0..no).map(|p| d[p * no + p]).sum();
        assert!((tr - 2.0).abs() < 1e-8, "trace {tr}");
        // natural occupations in [0, 2]
        for p in 0..no {
            assert!(d[p * no + p] > -1e-10 && d[p * no + p] < 2.0 + 1e-10);
        }
        // dominant occupation on the lowest orbital
        assert!(d[0] > 1.8);
    }

    #[test]
    fn h2_molecule_binds() {
        let h2 = SoftCoulombSystem::h2(1.6);
        let ints = h2.integrals(10, 140, 24.0);
        let fci = FciProblem::new(&ints, 1, 1);
        let r = fci.solve(1e-9, 400);
        let e_mol = r.energy + h2.nuclear_repulsion();
        // two isolated 1D H atoms
        let ha = SoftCoulombSystem::h_atom();
        let ints_a = ha.integrals(8, 120, 20.0);
        let e_atom = ints_a.h(0, 0);
        assert!(
            e_mol < 2.0 * e_atom - 0.01,
            "molecule {e_mol} vs 2 atoms {}",
            2.0 * e_atom
        );
    }
}
