//! Uniform 1D real-space grid and the single-particle eigenbasis.

use dft_linalg::eig::eigh;
use dft_linalg::matrix::Matrix;

/// A uniform grid on `[x0, x0 + (n-1) h]`.
#[derive(Clone, Debug)]
pub struct Grid1d {
    /// Left end.
    pub x0: f64,
    /// Spacing.
    pub h: f64,
    /// Number of points.
    pub n: usize,
}

impl Grid1d {
    /// Symmetric grid `[-l/2, l/2]` with `n` points.
    pub fn symmetric(l: f64, n: usize) -> Self {
        assert!(n >= 3);
        Self {
            x0: -l / 2.0,
            h: l / (n - 1) as f64,
            n,
        }
    }

    /// Coordinate of point `i`.
    #[inline]
    pub fn x(&self, i: usize) -> f64 {
        self.x0 + i as f64 * self.h
    }

    /// All coordinates.
    pub fn coords(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.x(i)).collect()
    }

    /// Trapezoid-free integration (midpoint weights `h`; functions vanish
    /// at the ends for bound states).
    pub fn integrate(&self, f: &[f64]) -> f64 {
        f.iter().sum::<f64>() * self.h
    }

    /// Lowest `n_orb` eigenpairs of `-1/2 d^2/dx^2 + v(x)` with Dirichlet
    /// ends (dense diagonalization of the 3-point stencil). Orbitals are
    /// grid-orthonormalized: `h * sum phi_p phi_q = delta_pq`.
    pub fn orbitals(&self, v: &[f64], n_orb: usize) -> (Vec<f64>, Matrix<f64>) {
        assert_eq!(v.len(), self.n);
        assert!(n_orb <= self.n);
        let n = self.n;
        let mut hmat = Matrix::<f64>::zeros(n, n);
        let k = 0.5 / (self.h * self.h);
        for i in 0..n {
            hmat[(i, i)] = 2.0 * k + v[i];
            if i + 1 < n {
                hmat[(i, i + 1)] = -k;
                hmat[(i + 1, i)] = -k;
            }
        }
        let e = eigh(&hmat).expect("grid Hamiltonian eigensolve");
        let mut orbs = Matrix::<f64>::zeros(n, n_orb);
        for j in 0..n_orb {
            let col = e.eigenvectors.col(j);
            // normalize in the grid inner product
            let nrm = (col.iter().map(|&c| c * c).sum::<f64>() * self.h).sqrt();
            for i in 0..n {
                orbs[(i, j)] = col[i] / nrm;
            }
        }
        (e.eigenvalues[..n_orb].to_vec(), orbs)
    }
}

/// The soft-Coulomb interaction `1/sqrt(u^2 + 1)`.
#[inline]
pub fn soft_coulomb(u: f64) -> f64 {
    1.0 / (u * u + 1.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particle_in_a_box_levels() {
        // v = 0 on [-L/2, L/2] with Dirichlet ends: E_n = n^2 pi^2 / (2 L^2)
        let l = 10.0;
        let g = Grid1d::symmetric(l, 201);
        let v = vec![0.0; g.n];
        let (evals, _) = g.orbitals(&v, 3);
        // the 3-point stencil imposes psi = 0 one spacing OUTSIDE the grid,
        // so the effective box width is L + 2h
        let leff = l + 2.0 * g.h;
        for (i, &e) in evals.iter().enumerate() {
            let nq = (i + 1) as f64;
            let exact = nq * nq * std::f64::consts::PI.powi(2) / (2.0 * leff * leff);
            assert!(
                (e - exact).abs() < 2e-3 * exact.max(0.01),
                "level {i}: {e} vs {exact}"
            );
        }
    }

    #[test]
    fn harmonic_oscillator_levels_1d() {
        let g = Grid1d::symmetric(20.0, 301);
        let v: Vec<f64> = g.coords().iter().map(|&x| 0.5 * x * x).collect();
        let (evals, _) = g.orbitals(&v, 4);
        for (i, &e) in evals.iter().enumerate() {
            let exact = i as f64 + 0.5;
            assert!((e - exact).abs() < 5e-3, "level {i}: {e}");
        }
    }

    #[test]
    fn orbitals_are_grid_orthonormal() {
        let g = Grid1d::symmetric(16.0, 161);
        let v: Vec<f64> = g
            .coords()
            .iter()
            .map(|&x| -1.0 / (x * x + 1.0).sqrt())
            .collect();
        let (_, orbs) = g.orbitals(&v, 5);
        for p in 0..5 {
            for q in 0..5 {
                let s: f64 = (0..g.n).map(|i| orbs[(i, p)] * orbs[(i, q)]).sum::<f64>() * g.h;
                let expect = if p == q { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-9, "({p},{q}): {s}");
            }
        }
    }

    #[test]
    fn soft_coulomb_properties() {
        assert_eq!(soft_coulomb(0.0), 1.0);
        assert!(soft_coulomb(3.0) < soft_coulomb(1.0));
        assert!((soft_coulomb(10.0) - 0.1).abs() < 1e-3); // ~1/|u| far away
    }
}
