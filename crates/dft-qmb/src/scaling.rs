//! Cost-scaling probes for the Fig. 1 reproduction: the QMB wall.
//!
//! Full CI cost grows combinatorially with electron count; Kohn-Sham DFT
//! grows as `O(N^3)`. These helpers measure both the determinant-space
//! dimension and the wall time of the sigma build, giving the data behind
//! the accessible-system-size axis of Fig. 1.

use crate::fci::{fci_dimension, FciProblem};
use crate::model::SoftCoulombSystem;
use std::time::Instant;

/// One scaling data point.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// System name.
    pub name: String,
    /// Electron count.
    pub electrons: usize,
    /// FCI determinant dimension.
    pub dimension: usize,
    /// Seconds for one ground-state solve.
    pub solve_seconds: f64,
    /// Ground-state energy (electronic + nuclear).
    pub energy: f64,
}

/// Solve the ladder of model systems and record cost growth.
pub fn qmb_scaling_ladder(n_orb: usize, n_grid: usize, length: f64) -> Vec<ScalingPoint> {
    let systems = [
        SoftCoulombSystem::h_atom(),
        SoftCoulombSystem::he_atom(),
        SoftCoulombSystem::li_atom(),
        SoftCoulombSystem::be_atom(),
    ];
    systems
        .iter()
        .map(|sys| {
            let ints = sys.integrals(n_orb, n_grid, length);
            let fci = FciProblem::new(&ints, sys.n_alpha, sys.n_beta);
            let t0 = Instant::now();
            let r = fci.solve(1e-8, 300);
            let dt = t0.elapsed().as_secs_f64();
            ScalingPoint {
                name: sys.name.clone(),
                electrons: sys.n_electrons(),
                dimension: r.dimension,
                solve_seconds: dt,
                energy: r.energy + sys.nuclear_repulsion(),
            }
        })
        .collect()
}

/// Projected FCI dimension for a hypothetical N-electron system with a
/// proportional basis (2 orbitals per electron, capped at 28) — used to
/// extrapolate the Fig. 1 wall.
pub fn projected_fci_dimension(electrons: usize) -> f64 {
    let n_orb = (2 * electrons).min(28);
    let na = electrons / 2 + electrons % 2;
    let nb = electrons / 2;
    fci_dimension(n_orb, na, nb) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_grows_combinatorially() {
        let d2 = projected_fci_dimension(2);
        let d4 = projected_fci_dimension(4);
        let d8 = projected_fci_dimension(8);
        assert!(d4 > 4.0 * d2);
        assert!(d8 > 20.0 * d4, "d8 = {d8} vs d4 = {d4}");
    }

    #[test]
    fn ladder_energies_monotone_with_charge() {
        let pts = qmb_scaling_ladder(6, 101, 18.0);
        assert_eq!(pts.len(), 4);
        // heavier atoms bind more strongly
        for w in pts.windows(2) {
            assert!(w[1].energy < w[0].energy, "{w:?}");
            assert!(w[1].dimension >= w[0].dimension);
        }
    }
}
