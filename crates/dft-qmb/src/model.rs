//! The 1D soft-Coulomb benchmark systems — analogues of the paper's MLXC
//! training set (H2, LiH, Li, N, Ne) and test molecules.

use crate::grid1d::{soft_coulomb, Grid1d};
use crate::integrals::OrbitalIntegrals;

/// A 1D soft-Coulomb "molecule": nuclei `(Z, X)` plus electron counts.
#[derive(Clone, Debug)]
pub struct SoftCoulombSystem {
    /// Name.
    pub name: String,
    /// Nuclei: (charge, position).
    pub nuclei: Vec<(f64, f64)>,
    /// Spin-up electrons.
    pub n_alpha: usize,
    /// Spin-down electrons.
    pub n_beta: usize,
}

impl SoftCoulombSystem {
    /// Build a system.
    pub fn new(name: &str, nuclei: Vec<(f64, f64)>, n_alpha: usize, n_beta: usize) -> Self {
        Self {
            name: name.to_string(),
            nuclei,
            n_alpha,
            n_beta,
        }
    }

    /// 1D hydrogen atom (Z=1, 1 electron).
    pub fn h_atom() -> Self {
        Self::new("H", vec![(1.0, 0.0)], 1, 0)
    }
    /// 1D helium atom (Z=2, 2 electrons) — the "He/H2-class" training rung.
    pub fn he_atom() -> Self {
        Self::new("He", vec![(2.0, 0.0)], 1, 1)
    }
    /// 1D lithium atom (Z=3, 3 electrons).
    pub fn li_atom() -> Self {
        Self::new("Li", vec![(3.0, 0.0)], 2, 1)
    }
    /// 1D beryllium atom (Z=4, 4 electrons) — the "N/Ne-class" rung.
    pub fn be_atom() -> Self {
        Self::new("Be", vec![(4.0, 0.0)], 2, 2)
    }
    /// 1D H2 molecule at bond length `r`.
    pub fn h2(r: f64) -> Self {
        Self::new("H2", vec![(1.0, -r / 2.0), (1.0, r / 2.0)], 1, 1)
    }
    /// 1D LiH molecule at bond length `r`.
    pub fn lih(r: f64) -> Self {
        Self::new("LiH", vec![(3.0, -r / 2.0), (1.0, r / 2.0)], 2, 2)
    }

    /// Total electrons.
    pub fn n_electrons(&self) -> usize {
        self.n_alpha + self.n_beta
    }

    /// External potential on a grid.
    pub fn external_potential(&self, grid: &Grid1d) -> Vec<f64> {
        grid.coords()
            .iter()
            .map(|&x| {
                self.nuclei
                    .iter()
                    .map(|&(z, xa)| -z * soft_coulomb(x - xa))
                    .sum()
            })
            .collect()
    }

    /// Soft-Coulomb nuclear repulsion.
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for (i, &(zi, xi)) in self.nuclei.iter().enumerate() {
            for &(zj, xj) in &self.nuclei[i + 1..] {
                e += zi * zj * soft_coulomb(xi - xj);
            }
        }
        e
    }

    /// Single-particle eigenbasis + integrals (`n_orb` orbitals on an
    /// `n_grid`-point grid spanning `length`).
    pub fn integrals(&self, n_orb: usize, n_grid: usize, length: f64) -> OrbitalIntegrals {
        let grid = Grid1d::symmetric(length, n_grid);
        let v = self.external_potential(&grid);
        let (e, orbs) = grid.orbitals(&v, n_orb);
        OrbitalIntegrals::in_eigenbasis(grid, &e, orbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_potential_attractive_and_centered() {
        let sys = SoftCoulombSystem::he_atom();
        let g = Grid1d::symmetric(10.0, 101);
        let v = sys.external_potential(&g);
        let mid = 50;
        assert!((v[mid] + 2.0).abs() < 1e-12, "v(0) = -Z");
        assert!(v[0] > v[mid], "potential must decay away from the nucleus");
    }

    #[test]
    fn nuclear_repulsion_of_h2() {
        let h2 = SoftCoulombSystem::h2(2.0);
        assert!((h2.nuclear_repulsion() - soft_coulomb(2.0)).abs() < 1e-14);
        assert_eq!(SoftCoulombSystem::h_atom().nuclear_repulsion(), 0.0);
    }

    #[test]
    fn training_set_rungs_have_expected_electron_counts() {
        assert_eq!(SoftCoulombSystem::h_atom().n_electrons(), 1);
        assert_eq!(SoftCoulombSystem::he_atom().n_electrons(), 2);
        assert_eq!(SoftCoulombSystem::li_atom().n_electrons(), 3);
        assert_eq!(SoftCoulombSystem::be_atom().n_electrons(), 4);
        assert_eq!(SoftCoulombSystem::lih(3.0).n_electrons(), 4);
    }
}
