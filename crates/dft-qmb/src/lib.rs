//! # dft-qmb
//!
//! A genuine quantum many-body (QMB) solver for a model universe — the
//! Level-4+ rung of the paper's accuracy ladder (Fig. 1), built so its
//! *scaling wall* and its *reference densities* are real, not asserted.
//!
//! The paper's invDFT consumes CI/CC densities of H2, LiH, Li, N, Ne.
//! Full 3D Gaussian-basis CI is out of scope (DESIGN.md S2), so this crate
//! implements the standard model universe of ML-XC research: **1D
//! soft-Coulomb quantum chemistry**,
//!
//! ```text
//! H = sum_i [-1/2 d^2/dx_i^2 + v_ext(x_i)] + sum_{i<j} 1/sqrt((x_i-x_j)^2 + 1)
//! v_ext(x) = -sum_a Z_a / sqrt((x - X_a)^2 + 1)
//! ```
//!
//! solved by **full configuration interaction** (every Slater determinant
//! in an orbital basis, Davidson-diagonalized). The exponential growth of
//! the determinant space with electron count is the paper's Fig.-1
//! "Level 4 & beyond" wall, measured directly by [`scaling`].
//!
//! * [`grid1d`] — real-space grid, single-particle eigenbasis;
//! * [`integrals`] — one- and two-electron integrals in that basis;
//! * [`fci`] — determinant enumeration (bit strings), Slater-Condon sigma
//!   builder, Davidson solver, 1-RDM and real-space density;
//! * [`model`] — the benchmark systems (1D analogues of the paper's
//!   training set);
//! * [`scaling`] — cost/dimension probes for the Fig. 1 reproduction.

#![deny(unsafe_code)]
// indexed loops deliberately mirror the paper's subscript notation
#![allow(clippy::needless_range_loop)]

pub mod fci;
pub mod grid1d;
pub mod integrals;
pub mod model;
pub mod scaling;

pub use fci::{FciProblem, FciResult};
pub use grid1d::Grid1d;
pub use integrals::OrbitalIntegrals;
pub use model::SoftCoulombSystem;
