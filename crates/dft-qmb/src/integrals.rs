//! One- and two-electron integrals in the single-particle orbital basis.

use crate::grid1d::{soft_coulomb, Grid1d};
use dft_linalg::matrix::Matrix;
use rayon::prelude::*;

/// Integrals over `n_orb` orbitals: `h[pq]` (kinetic + external) and the
/// chemists'-notation two-electron integrals `(pq|rs)`.
#[derive(Clone, Debug)]
pub struct OrbitalIntegrals {
    /// Number of spatial orbitals.
    pub n_orb: usize,
    /// One-electron integrals, row-major `n_orb x n_orb`.
    pub h1: Vec<f64>,
    /// Two-electron integrals `(pq|rs)`, index `((p*n+q)*n+r)*n+s`.
    pub eri: Vec<f64>,
    /// Orbitals on the grid (for density reconstruction).
    pub orbitals: Matrix<f64>,
    /// The grid.
    pub grid: Grid1d,
}

impl OrbitalIntegrals {
    /// Build integrals from grid orbitals and the external potential.
    /// `orbital_energies` are the eigenvalues of the single-particle
    /// problem, so `h1` can be formed without re-applying the kinetic
    /// stencil: `h[pq] = eps_p delta_pq` in the eigenbasis of
    /// `-1/2 d2/dx2 + v_ext` — exact by construction.
    pub fn in_eigenbasis(grid: Grid1d, orbital_energies: &[f64], orbitals: Matrix<f64>) -> Self {
        let n_orb = orbital_energies.len();
        assert_eq!(orbitals.ncols(), n_orb);
        let mut h1 = vec![0.0; n_orb * n_orb];
        for p in 0..n_orb {
            h1[p * n_orb + p] = orbital_energies[p];
        }
        let eri = Self::eri_from_orbitals(&grid, &orbitals);
        Self {
            n_orb,
            h1,
            eri,
            orbitals,
            grid,
        }
    }

    fn eri_from_orbitals(grid: &Grid1d, orbs: &Matrix<f64>) -> Vec<f64> {
        let n = grid.n;
        let no = orbs.ncols();
        let h = grid.h;
        // V[pq](x') = h * sum_x phi_p(x) phi_q(x) w(x - x')
        // exploit symmetry p<=q
        let npairs = no * (no + 1) / 2;
        let pair_idx = |p: usize, q: usize| -> usize {
            let (a, b) = if p <= q { (p, q) } else { (q, p) };
            a * no - a * (a + 1) / 2 + b
        };
        let vpq: Vec<Vec<f64>> = (0..npairs)
            .into_par_iter()
            .map(|pi| {
                // invert pair index
                let mut p = 0;
                let mut acc = 0;
                while acc + (no - p) <= pi {
                    acc += no - p;
                    p += 1;
                }
                let q = p + (pi - acc);
                let mut v = vec![0.0; n];
                for xp in 0..n {
                    let mut s = 0.0;
                    for x in 0..n {
                        s += orbs[(x, p)] * orbs[(x, q)] * soft_coulomb(grid.x(x) - grid.x(xp));
                    }
                    v[xp] = s * h;
                }
                v
            })
            .collect();
        // (pq|rs) = h * sum_x' V[pq](x') phi_r(x') phi_s(x')
        let mut eri = vec![0.0; no * no * no * no];
        for p in 0..no {
            for q in 0..no {
                let vp = &vpq[pair_idx(p, q)];
                for r in 0..no {
                    for s in 0..=r {
                        let mut acc = 0.0;
                        for xp in 0..n {
                            acc += vp[xp] * orbs[(xp, r)] * orbs[(xp, s)];
                        }
                        acc *= h;
                        let idx = ((p * no + q) * no + r) * no + s;
                        eri[idx] = acc;
                        let idx2 = ((p * no + q) * no + s) * no + r;
                        eri[idx2] = acc;
                    }
                }
            }
        }
        eri
    }

    /// `(pq|rs)` accessor.
    #[inline]
    pub fn g(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        let n = self.n_orb;
        self.eri[((p * n + q) * n + r) * n + s]
    }

    /// `h[pq]` accessor.
    #[inline]
    pub fn h(&self, p: usize, q: usize) -> f64 {
        self.h1[p * self.n_orb + q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_integrals(n_orb: usize) -> OrbitalIntegrals {
        let grid = Grid1d::symmetric(16.0, 121);
        let v: Vec<f64> = grid
            .coords()
            .iter()
            .map(|&x| -2.0 / (x * x + 1.0).sqrt())
            .collect();
        let (e, orbs) = grid.orbitals(&v, n_orb);
        OrbitalIntegrals::in_eigenbasis(grid, &e, orbs)
    }

    #[test]
    fn eri_symmetries() {
        let ints = simple_integrals(4);
        for p in 0..4 {
            for q in 0..4 {
                for r in 0..4 {
                    for s in 0..4 {
                        let g = ints.g(p, q, r, s);
                        // (pq|rs) = (qp|rs) = (pq|sr) = (rs|pq)
                        assert!((g - ints.g(q, p, r, s)).abs() < 1e-10);
                        assert!((g - ints.g(p, q, s, r)).abs() < 1e-10);
                        assert!((g - ints.g(r, s, p, q)).abs() < 1e-10);
                    }
                }
            }
        }
    }

    #[test]
    fn diagonal_eri_positive_and_bounded() {
        let ints = simple_integrals(3);
        for p in 0..3 {
            for q in 0..3 {
                let g = ints.g(p, p, q, q);
                assert!(g > 0.0, "Coulomb integral must be positive");
                assert!(g <= 1.0 + 1e-9, "soft-Coulomb is bounded by 1");
            }
        }
    }

    #[test]
    fn h1_is_diagonal_with_orbital_energies() {
        let ints = simple_integrals(3);
        for p in 0..3 {
            for q in 0..3 {
                if p != q {
                    assert!(ints.h(p, q).abs() < 1e-12);
                }
            }
        }
        assert!(ints.h(0, 0) < ints.h(1, 1));
    }

    #[test]
    fn exchange_smaller_than_hartree() {
        let ints = simple_integrals(3);
        // (00|11) >= (01|01) (Cauchy-Schwarz-like for positive kernels)
        assert!(ints.g(0, 0, 1, 1) >= ints.g(0, 1, 0, 1) - 1e-12);
    }
}
