//! Property-based tests of the spectral-FE invariants.
#![allow(clippy::needless_range_loop)]

use dft_fem::field::NodalField;
use dft_fem::mesh::{Axis, BoundaryCondition, Mesh3d};
use dft_fem::space::FeSpace;
use dft_linalg::matrix::Matrix;
use proptest::prelude::*;

fn arb_degree() -> impl Strategy<Value = usize> {
    1usize..=4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mass_matrix_integrates_volume_any_degree(p in arb_degree(), n in 1usize..=3, l in 2.0..8.0f64) {
        let s = FeSpace::new(Mesh3d::cube(n, l, p));
        let ones = vec![1.0; s.nnodes()];
        let vol = l * l * l;
        prop_assert!((s.integrate(&ones) - vol).abs() < 1e-9 * vol);
    }

    #[test]
    fn stiffness_is_positive_semidefinite(p in arb_degree(), seed in 0u64..50) {
        let s = FeSpace::new(Mesh3d::cube(2, 4.0, p));
        let n = s.ndofs();
        let x = Matrix::from_fn(n, 1, |i, _| (((i as u64 * 2654435761 + seed) % 1000) as f64 / 500.0) - 1.0);
        let mut kx = Matrix::zeros(n, 1);
        s.apply_stiffness(&x, &mut kx, [1.0; 3]);
        let e: f64 = x.col(0).iter().zip(kx.col(0)).map(|(&a, &b)| a * b).sum();
        prop_assert!(e >= -1e-10, "energy {e}");
    }

    #[test]
    fn gradient_of_constant_vanishes(p in arb_degree(), c in -3.0..3.0f64) {
        let s = FeSpace::new(Mesh3d::cube(2, 5.0, p));
        let f = NodalField::from_fn(&s, |_| c);
        let g = f.gradient(&s);
        for d in 0..3 {
            for &v in &g[d].values {
                prop_assert!(v.abs() < 1e-10);
            }
        }
    }

    #[test]
    fn linear_fields_reproduced_exactly(a in -2.0..2.0f64, b in -2.0..2.0f64, c in -2.0..2.0f64) {
        // FE interpolation of degree >= 1 is exact on linears
        let s = FeSpace::new(Mesh3d::cube(2, 4.0, 2));
        let f = NodalField::from_fn(&s, |[x, y, z]| a * x + b * y + c * z + 1.0);
        for pt in [[0.37, 1.91, 3.3], [2.5, 0.01, 1.7]] {
            let exact = a * pt[0] + b * pt[1] + c * pt[2] + 1.0;
            prop_assert!((f.eval(&s, pt) - exact).abs() < 1e-10);
        }
        let g = f.gradient(&s);
        prop_assert!((g[0].values[0] - a).abs() < 1e-9);
        prop_assert!((g[1].values[0] - b).abs() < 1e-9);
        prop_assert!((g[2].values[0] - c).abs() < 1e-9);
    }

    #[test]
    fn graded_axis_always_covers_interval(
        hmin in 0.2..0.5f64,
        ratio in 1.5..4.0f64,
        center in 0.0..10.0f64,
    ) {
        let ax = Axis::graded(0.0, 10.0, hmin, hmin * ratio, &[center], 2.0, BoundaryCondition::Dirichlet);
        prop_assert!((ax.length() - 10.0).abs() < 1e-9);
        let b = ax.boundaries();
        for w in b.windows(2) {
            prop_assert!(w[1] > w[0], "monotone boundaries");
        }
        prop_assert!((b[0] - 0.0).abs() < 1e-12 && (b[b.len()-1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dofs_to_nodes_round_trip(p in arb_degree()) {
        let s = FeSpace::new(Mesh3d::cube(2, 3.0, p));
        let x: Vec<f64> = (0..s.ndofs()).map(|i| (i as f64 * 0.37).sin()).collect();
        let full = s.dofs_to_nodes(&x);
        let back = s.nodes_to_dofs(&full);
        prop_assert_eq!(back, x);
    }
}
