//! Golden-value regression of the table-driven `apply_stiffness` against
//! outputs recorded from the seed (pre-table) per-column implementation:
//! periodic real, periodic Bloch-phase complex, and Dirichlet cases. Any
//! change to the gather/scatter index tables, wrap-phase handling, or the
//! column-blocked sum-factorization kernel that alters results shows up
//! here before it can bias an SCF energy.

// golden literals are recorded at 18 significant digits as printed
#![allow(clippy::excessive_precision)]

use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Scalar, C64};

#[test]
fn periodic_real_matches_seed_golden_values() {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
    let n = space.ndofs();
    assert_eq!(n, 216);
    let x = Matrix::from_fn(n, 2, |i, j| ((i * 7 + j * 29) as f64 * 0.37).sin());
    let mut y = Matrix::zeros(n, 2);
    space.apply_stiffness(&x, &mut y, [1.0; 3]);
    let golden = [
        ((0, 0), -6.53027692997476539e-1),
        ((17, 0), 7.08228804278537183e-1),
        ((100, 1), -4.63453630657969118e0),
        ((215, 1), 6.61435780122271577e0),
    ];
    for ((i, j), v) in golden {
        assert!(
            (y[(i, j)] - v).abs() < 1e-12,
            "y[({i},{j})] = {:.17e}, golden {v:.17e}",
            y[(i, j)]
        );
    }
    // and the retained reference path agrees everywhere
    let mut yref = Matrix::zeros(n, 2);
    space.apply_stiffness_reference(&x, &mut yref, [1.0; 3]);
    assert!(y.max_abs_diff(&yref) < 1e-13);
}

#[test]
fn periodic_bloch_complex_matches_seed_golden_values() {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
    let n = space.ndofs();
    let phases = [C64::cis(0.7), C64::cis(-0.3), C64::ONE];
    let x = Matrix::from_fn(n, 2, |i, j| {
        C64::new(
            ((i * 5 + j * 3) as f64 * 0.3).sin(),
            ((i * 11 + j) as f64 * 0.2).cos(),
        )
    });
    let mut y = Matrix::zeros(n, 2);
    space.apply_stiffness(&x, &mut y, phases);
    let golden = [
        (
            (0, 0),
            C64::new(-6.85170646920910231e-1, 1.57481341457479296e0),
        ),
        (
            (17, 0),
            C64::new(4.88135274589582835e0, 4.58973905037361707e0),
        ),
        (
            (100, 1),
            C64::new(2.05769295259772722e0, 9.75657312787052078e0),
        ),
        (
            (215, 1),
            C64::new(-3.08765776079274623e0, -4.06798802531633541e0),
        ),
    ];
    for ((i, j), v) in golden {
        let d = y[(i, j)] - v;
        assert!(
            d.abs() < 1e-12,
            "y[({i},{j})] = {:?}, golden {v:?}",
            y[(i, j)]
        );
    }
    let mut yref = Matrix::zeros(n, 2);
    space.apply_stiffness_reference(&x, &mut yref, phases);
    assert!(y.max_abs_diff(&yref) < 1e-13);
}

#[test]
fn dirichlet_real_matches_seed_golden_values() {
    let space = FeSpace::new(Mesh3d::cube(2, 4.0, 3));
    let n = space.ndofs();
    assert_eq!(n, 125);
    let x = Matrix::from_fn(n, 1, |i, _| ((i * 13) as f64 * 0.19).cos());
    let mut y = Matrix::zeros(n, 1);
    space.apply_stiffness(&x, &mut y, [1.0; 3]);
    let golden = [
        ((0, 0), 7.86259375349799772e0),
        ((33, 0), 6.57241546896360340e0),
        ((124, 0), -3.36994066070979037e-1),
    ];
    for ((i, j), v) in golden {
        assert!(
            (y[(i, j)] - v).abs() < 1e-12,
            "y[({i},{j})] = {:.17e}, golden {v:.17e}",
            y[(i, j)]
        );
    }
}

/// The fused-row-scale entry point must equal scale-then-apply.
#[test]
fn scaled_apply_equals_scale_then_apply() {
    let space = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
    let n = space.ndofs();
    let scale: Vec<f64> = (0..n)
        .map(|i| 0.5 + ((i * 3) as f64 * 0.17).cos().abs())
        .collect();
    let phases = [C64::cis(0.4), C64::cis(-0.9), C64::ONE];
    let x = Matrix::from_fn(n, 3, |i, j| {
        C64::new(
            ((i * 5 + j) as f64 * 0.3).sin(),
            ((i + j * 7) as f64 * 0.2).cos(),
        )
    });
    let mut y_fused = Matrix::zeros(n, 3);
    space.apply_stiffness_scaled(&x, &mut y_fused, phases, &scale);
    let mut xs = x.clone();
    for j in 0..3 {
        for (v, &s) in xs.col_mut(j).iter_mut().zip(scale.iter()) {
            *v = v.scale(s);
        }
    }
    let mut y_two_step = Matrix::zeros(n, 3);
    space.apply_stiffness(&xs, &mut y_two_step, phases);
    assert!(y_fused.max_abs_diff(&y_two_step) < 1e-12);
}
