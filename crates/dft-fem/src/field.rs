//! Nodal scalar fields on an [`FeSpace`]: construction, integration,
//! gradients, point evaluation.
//!
//! Electron densities, potentials and XC energy densities are all nodal
//! fields; the PBE/MLXC descriptors additionally need `|grad rho|`, which is
//! computed by mass-weighted cell-gradient recovery.

use crate::space::FeSpace;

/// A real scalar field stored at every FE node (including Dirichlet
/// boundary nodes).
#[derive(Clone, Debug)]
pub struct NodalField {
    /// Value at each node.
    pub values: Vec<f64>,
}

impl NodalField {
    /// Zero field.
    pub fn zeros(space: &FeSpace) -> Self {
        Self {
            values: vec![0.0; space.nnodes()],
        }
    }

    /// Sample an analytic function at every node.
    pub fn from_fn(space: &FeSpace, f: impl Fn([f64; 3]) -> f64) -> Self {
        Self {
            values: (0..space.nnodes())
                .map(|n| f(space.node_coord(n)))
                .collect(),
        }
    }

    /// Wrap an existing nodal vector.
    pub fn from_values(space: &FeSpace, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), space.nnodes());
        Self { values }
    }

    /// `integral f dV`.
    pub fn integrate(&self, space: &FeSpace) -> f64 {
        space.integrate(&self.values)
    }

    /// `integral f g dV` (diagonal-mass inner product).
    pub fn inner(&self, space: &FeSpace, other: &NodalField) -> f64 {
        self.values
            .iter()
            .zip(other.values.iter())
            .zip(space.mass_diag().iter())
            .map(|((&a, &b), &m)| a * b * m)
            .sum()
    }

    /// L2 norm.
    pub fn norm_l2(&self, space: &FeSpace) -> f64 {
        self.inner(space, self).sqrt()
    }

    /// Pointwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> NodalField {
        NodalField {
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Nodal gradient by mass-weighted recovery of cell-level collocation
    /// derivatives. Returns `[d/dx, d/dy, d/dz]` nodal fields.
    pub fn gradient(&self, space: &FeSpace) -> [NodalField; 3] {
        let n1 = space.mesh.degree + 1;
        let nloc = n1 * n1 * n1;
        let b = &space.basis;
        let mut gx = vec![0.0; space.nnodes()];
        let mut gy = vec![0.0; space.nnodes()];
        let mut gz = vec![0.0; space.nnodes()];
        let mut loc = vec![0.0; nloc];
        let one = [1.0f64; 3];
        // temporary per-cell derivative values + per-node global indices
        let mut dfydx = vec![0.0; nloc];
        let mut dfdy = vec![0.0; nloc];
        let mut dfdz = vec![0.0; nloc];
        for cell in space.cells() {
            space.gather_cell_nodes(cell, &self.values, one, &mut loc);
            let (jx, jy, jz) = (2.0 / cell.h[0], 2.0 / cell.h[1], 2.0 / cell.h[2]);
            for c in 0..n1 {
                for bb in 0..n1 {
                    for a in 0..n1 {
                        let idx = a + n1 * (bb + n1 * c);
                        let mut dx = 0.0;
                        let mut dy = 0.0;
                        let mut dz = 0.0;
                        for j in 0..n1 {
                            dx += b.d(a, j) * loc[j + n1 * (bb + n1 * c)];
                            dy += b.d(bb, j) * loc[a + n1 * (j + n1 * c)];
                            dz += b.d(c, j) * loc[a + n1 * (bb + n1 * j)];
                        }
                        dfydx[idx] = dx * jx;
                        dfdy[idx] = dy * jy;
                        dfdz[idx] = dz * jz;
                    }
                }
            }
            // mass-weighted scatter
            let jac = cell.h[0] * cell.h[1] * cell.h[2] / 8.0;
            let mut idx = 0;
            for c in 0..n1 {
                for bb in 0..n1 {
                    for a in 0..n1 {
                        let w = b.weights[a] * b.weights[bb] * b.weights[c] * jac;
                        let node = space.cell_local_to_node(cell, a, bb, c);
                        gx[node] += w * dfydx[idx];
                        gy[node] += w * dfdy[idx];
                        gz[node] += w * dfdz[idx];
                        idx += 1;
                    }
                }
            }
        }
        let m = space.mass_diag();
        for i in 0..gx.len() {
            gx[i] /= m[i];
            gy[i] /= m[i];
            gz[i] /= m[i];
        }
        [
            NodalField { values: gx },
            NodalField { values: gy },
            NodalField { values: gz },
        ]
    }

    /// `|grad f|` as a nodal field.
    pub fn gradient_magnitude(&self, space: &FeSpace) -> NodalField {
        let [gx, gy, gz] = self.gradient(space);
        NodalField {
            values: (0..self.values.len())
                .map(|i| {
                    (gx.values[i] * gx.values[i]
                        + gy.values[i] * gy.values[i]
                        + gz.values[i] * gz.values[i])
                        .sqrt()
                })
                .collect(),
        }
    }

    /// Evaluate the FE interpolant at an arbitrary point inside the domain.
    pub fn eval(&self, space: &FeSpace, point: [f64; 3]) -> f64 {
        let (cell_idx, xi) = space.locate(point);
        let n1 = space.mesh.degree + 1;
        let lx = space.basis.eval_all(xi[0]);
        let ly = space.basis.eval_all(xi[1]);
        let lz = space.basis.eval_all(xi[2]);
        let cell = &space.cells()[cell_idx];
        let mut loc = vec![0.0; n1 * n1 * n1];
        space.gather_cell_nodes(cell, &self.values, [1.0; 3], &mut loc);
        let mut acc = 0.0;
        let mut idx = 0;
        for c in 0..n1 {
            for b in 0..n1 {
                for a in 0..n1 {
                    acc += loc[idx] * lx[a] * ly[b] * lz[c];
                    idx += 1;
                }
            }
        }
        acc
    }
}

impl FeSpace {
    /// Global node index of local node `(a, b, c)` in `cell` (wrapping
    /// periodically).
    pub fn cell_local_to_node(
        &self,
        cell: &crate::space::Cell,
        a: usize,
        b: usize,
        c: usize,
    ) -> usize {
        let p = self.mesh.degree;
        let na = self.n_axis();
        let w = |ci: usize, l: usize, n: usize, per: bool| -> usize {
            let g = ci * p + l;
            if per && g >= n {
                g - n
            } else {
                g
            }
        };
        let perx = self.mesh.axes[0].bc() == crate::mesh::BoundaryCondition::Periodic;
        let pery = self.mesh.axes[1].bc() == crate::mesh::BoundaryCondition::Periodic;
        let perz = self.mesh.axes[2].bc() == crate::mesh::BoundaryCondition::Periodic;
        let gx = w(cell.c[0], a, na[0], perx);
        let gy = w(cell.c[1], b, na[1], pery);
        let gz = w(cell.c[2], c, na[2], perz);
        gx + na[0] * (gy + na[1] * gz)
    }

    /// Locate the cell containing `point` and the reference coordinates
    /// `xi in [-1,1]^3` within it.
    pub fn locate(&self, point: [f64; 3]) -> (usize, [f64; 3]) {
        let mut cidx = [0usize; 3];
        let mut xi = [0.0f64; 3];
        for d in 0..3 {
            let bnd = self.mesh.axes[d].boundaries();
            let x = point[d]
                .max(bnd[0])
                .min(bnd[bnd.len() - 1] - 1e-14 * (1.0 + bnd[bnd.len() - 1].abs()));
            // binary search for the cell
            let mut lo = 0usize;
            let mut hi = bnd.len() - 2;
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if bnd[mid] <= x {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            cidx[d] = lo;
            xi[d] = 2.0 * (x - bnd[lo]) / (bnd[lo + 1] - bnd[lo]) - 1.0;
        }
        let nc = [
            self.mesh.axes[0].ncells(),
            self.mesh.axes[1].ncells(),
            self.mesh.axes[2].ncells(),
        ];
        (cidx[0] + nc[0] * (cidx[1] + nc[1] * cidx[2]), xi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh3d;

    fn space(p: usize) -> FeSpace {
        FeSpace::new(Mesh3d::cube(2, 4.0, p))
    }

    #[test]
    fn constant_field_integrates_to_volume() {
        let s = space(3);
        let f = NodalField::from_fn(&s, |_| 2.5);
        assert!((f.integrate(&s) - 2.5 * 64.0).abs() < 1e-10);
    }

    #[test]
    fn gradient_of_polynomial_is_exact() {
        let s = space(3);
        // f = x^2 y + z (degree <= p in each variable)
        let f = NodalField::from_fn(&s, |[x, y, z]| x * x * y + z);
        let [gx, gy, gz] = f.gradient(&s);
        for n in 0..s.nnodes() {
            let [x, y, _] = s.node_coord(n);
            assert!((gx.values[n] - 2.0 * x * y).abs() < 1e-9, "gx at node {n}");
            assert!((gy.values[n] - x * x).abs() < 1e-9, "gy at node {n}");
            assert!((gz.values[n] - 1.0).abs() < 1e-9, "gz at node {n}");
        }
    }

    #[test]
    fn gradient_magnitude_of_linear_field() {
        let s = space(2);
        let f = NodalField::from_fn(&s, |[x, y, z]| 3.0 * x + 4.0 * y + 0.0 * z);
        let g = f.gradient_magnitude(&s);
        for &v in &g.values {
            assert!((v - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn eval_reproduces_polynomial_between_nodes() {
        let s = space(4);
        let f = NodalField::from_fn(&s, |[x, y, z]| x * y * z + x * x);
        for pt in [[0.7, 1.3, 2.9], [3.99, 0.01, 1.5], [2.0, 2.0, 2.0]] {
            let exact = pt[0] * pt[1] * pt[2] + pt[0] * pt[0];
            assert!((f.eval(&s, pt) - exact).abs() < 1e-9, "at {pt:?}");
        }
    }

    #[test]
    fn locate_finds_correct_cell() {
        let s = space(2);
        let (c, xi) = s.locate([1.0, 3.0, 0.5]);
        // cells are [0,2] and [2,4] per axis; expect cell (0,1,0) = 0+2*(1+2*0)=2
        assert_eq!(c, 2);
        assert!((xi[0] - 0.0).abs() < 1e-12); // 1.0 is midpoint of [0,2]
        assert!((xi[1] - 0.0).abs() < 1e-12);
        assert!((xi[2] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn inner_product_symmetry_and_positivity() {
        let s = space(2);
        let f = NodalField::from_fn(&s, |[x, y, z]| (x - y).sin() + z);
        let g = NodalField::from_fn(&s, |[x, y, z]| x + y * z);
        assert!((f.inner(&s, &g) - g.inner(&s, &f)).abs() < 1e-12);
        assert!(f.inner(&s, &f) > 0.0);
        assert!((f.norm_l2(&s).powi(2) - f.inner(&s, &f)).abs() < 1e-10);
    }
}
