//! Gauss-Legendre and Gauss-Lobatto-Legendre quadrature on `[-1, 1]`.
//!
//! GLL collocation is the heart of the spectral-element method: placing the
//! Lagrange nodes *at* the quadrature points renders the FE mass matrix
//! diagonal, which is exactly the "Löwdin orthonormalized FE basis" device
//! the paper uses to turn the generalized KS eigenproblem into standard form.

/// Legendre polynomial `P_n(x)` and its derivative, by the three-term
/// recurrence. Returns `(P_n, P_n')`.
pub fn legendre(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let (mut p0, mut p1) = (1.0, x);
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    // P_n' from the standard identity (1-x^2) P_n' = n (P_{n-1} - x P_n)
    let dp = if (1.0 - x * x).abs() > 1e-14 {
        n as f64 * (p0 - x * p1) / (1.0 - x * x)
    } else {
        // At the endpoints: P_n'(+-1) = (+-1)^{n-1} n(n+1)/2
        let sign = if x > 0.0 {
            1.0
        } else {
            (-1.0f64).powi(n as i32 - 1)
        };
        sign * (n * (n + 1)) as f64 / 2.0
    };
    (p1, dp)
}

/// Gauss-Legendre quadrature: `n` nodes and weights, exact for polynomials
/// of degree `2n - 1`.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    for i in 0..n {
        // Chebyshev initial guess, refined by Newton on P_n.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        for _ in 0..100 {
            let (p, dp) = legendre(n, x);
            let dx = p / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let (_, dp) = legendre(n, x);
        nodes[n - 1 - i] = x;
        weights[n - 1 - i] = 2.0 / ((1.0 - x * x) * dp * dp);
    }
    nodes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // weights are symmetric; recompute in sorted order
    let weights = nodes
        .iter()
        .map(|&x| {
            let (_, dp) = legendre(n, x);
            2.0 / ((1.0 - x * x) * dp * dp)
        })
        .collect();
    (nodes, weights)
}

/// Gauss-Lobatto-Legendre quadrature with `n >= 2` nodes (endpoints
/// included), exact for polynomials of degree `2n - 3`.
///
/// For a degree-`p` spectral element use `n = p + 1` nodes.
pub fn gauss_lobatto_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 2, "GLL needs at least two nodes");
    let p = n - 1;
    let mut nodes = vec![0.0; n];
    nodes[0] = -1.0;
    nodes[n - 1] = 1.0;
    // Interior nodes: roots of P_p'(x). Newton with Chebyshev-Gauss-Lobatto
    // initial guesses.
    for i in 1..p {
        let mut x = -(std::f64::consts::PI * i as f64 / p as f64).cos();
        for _ in 0..100 {
            // f = P_p'(x); f' = P_p''(x) from the Legendre ODE:
            // (1-x^2) P'' - 2x P' + p(p+1) P = 0
            let (pp, dp) = legendre(p, x);
            let ddp = (2.0 * x * dp - (p * (p + 1)) as f64 * pp) / (1.0 - x * x);
            let dx = dp / ddp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = x;
    }
    nodes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let weights = nodes
        .iter()
        .map(|&x| {
            let (pp, _) = legendre(p, x);
            2.0 / ((p * (p + 1)) as f64 * pp * pp)
        })
        .collect();
    (nodes, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate(nodes: &[f64], weights: &[f64], f: impl Fn(f64) -> f64) -> f64 {
        nodes.iter().zip(weights).map(|(&x, &w)| w * f(x)).sum()
    }

    #[test]
    fn gll_3_nodes_known_values() {
        let (x, w) = gauss_lobatto_legendre(3);
        assert!((x[0] + 1.0).abs() < 1e-14 && x[1].abs() < 1e-14 && (x[2] - 1.0).abs() < 1e-14);
        assert!((w[0] - 1.0 / 3.0).abs() < 1e-14);
        assert!((w[1] - 4.0 / 3.0).abs() < 1e-14);
        assert!((w[2] - 1.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn gll_4_nodes_known_values() {
        let (x, w) = gauss_lobatto_legendre(4);
        let s5 = 1.0 / 5.0_f64.sqrt();
        assert!((x[1] + s5).abs() < 1e-13 && (x[2] - s5).abs() < 1e-13);
        assert!((w[0] - 1.0 / 6.0).abs() < 1e-13);
        assert!((w[1] - 5.0 / 6.0).abs() < 1e-13);
    }

    #[test]
    fn gl_2_nodes_known_values() {
        let (x, w) = gauss_legendre(2);
        let s3 = 1.0 / 3.0_f64.sqrt();
        assert!((x[0] + s3).abs() < 1e-14 && (x[1] - s3).abs() < 1e-14);
        assert!((w[0] - 1.0).abs() < 1e-14 && (w[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn weights_sum_to_interval_length() {
        for n in 2..=9 {
            let (_, w) = gauss_lobatto_legendre(n);
            assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-12, "GLL n={n}");
            let (_, wg) = gauss_legendre(n);
            assert!((wg.iter().sum::<f64>() - 2.0).abs() < 1e-12, "GL n={n}");
        }
    }

    #[test]
    fn gll_exactness_degree_2n_minus_3() {
        for n in 3..=9 {
            let (x, w) = gauss_lobatto_legendre(n);
            let deg = 2 * n - 3;
            // integrate x^deg and x^(deg-1); odd powers integrate to 0,
            // even powers to 2/(k+1)
            for k in [deg - 1, deg] {
                let exact = if k % 2 == 1 {
                    0.0
                } else {
                    2.0 / (k as f64 + 1.0)
                };
                let got = integrate(&x, &w, |t| t.powi(k as i32));
                assert!((got - exact).abs() < 1e-12, "n={n} k={k}: {got} vs {exact}");
            }
        }
    }

    #[test]
    fn gl_exactness_degree_2n_minus_1() {
        for n in 1..=10 {
            let (x, w) = gauss_legendre(n);
            let k = 2 * n - 1;
            let exact_even = 2.0 / (2.0 * n as f64 - 1.0); // for k-1 even power
            let got_odd = integrate(&x, &w, |t| t.powi(k as i32));
            assert!(got_odd.abs() < 1e-12, "n={n} odd power");
            let got_even = integrate(&x, &w, |t| t.powi(k as i32 - 1));
            assert!((got_even - exact_even).abs() < 1e-12, "n={n} even power");
        }
    }

    #[test]
    fn nodes_sorted_and_symmetric() {
        for n in 2..=10 {
            let (x, _) = gauss_lobatto_legendre(n);
            for win in x.windows(2) {
                assert!(win[0] < win[1]);
            }
            for i in 0..n {
                assert!((x[i] + x[n - 1 - i]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn legendre_known_values() {
        // P_2(x) = (3x^2 - 1)/2
        let (p, dp) = legendre(2, 0.5);
        assert!((p - (-0.125)).abs() < 1e-14);
        assert!((dp - 1.5).abs() < 1e-14);
        // endpoint derivative P_3'(1) = 3*4/2 = 6
        let (_, dp1) = legendre(3, 1.0);
        assert!((dp1 - 6.0).abs() < 1e-12);
    }
}
