//! # dft-fem
//!
//! Spatially adaptive, higher-order **spectral finite elements** — the
//! discretization substrate of DFT-FE-MLXC.
//!
//! The paper discretizes the Kohn-Sham problem in a Löwdin-orthonormalized
//! adaptive spectral FE basis of polynomial degree p = 6-8 (Sec. 5.4.1).
//! This crate reproduces that substrate:
//!
//! * [`gll`] — Gauss-Legendre and Gauss-Lobatto-Legendre (GLL) quadrature;
//! * [`basis`] — 1D Lagrange bases on GLL nodes with barycentric
//!   differentiation matrices;
//! * [`mesh`] — tensor-product hexahedral meshes with per-axis grading
//!   toward atomic positions (the stand-in for octree adaptivity, see
//!   DESIGN.md S4) and Dirichlet / periodic boundary conditions;
//! * [`space`] — the [`space::FeSpace`]: global DoF numbering, the diagonal
//!   GLL mass matrix (which *is* the Löwdin orthonormalization here),
//!   cell-level stiffness application via tensor sum-factorization, and the
//!   dense per-cell Hamiltonian path that mirrors the paper's
//!   `xGEMMStridedBatched` kernel;
//! * [`poisson`] — FE Poisson solves for the Hartree and nuclear
//!   electrostatic potentials (diagonally-preconditioned CG);
//! * [`field`] — nodal scalar fields: integration, gradients (recovery),
//!   interpolation/evaluation.
//!
//! Bloch phases for k-point sampling enter through the periodic
//! gather/scatter (see [`space::FeSpace::gather_block`]), which is how the
//! complex wavefunction path of the paper's Mg-Y systems is exercised.

#![deny(unsafe_code)]
// indexed loops deliberately mirror the paper's subscript notation
#![allow(clippy::needless_range_loop)]

pub mod basis;
pub mod field;
pub mod gll;
pub mod mesh;
pub mod partition;
pub mod poisson;
pub mod space;

pub use basis::Lagrange1d;
pub use field::NodalField;
pub use gll::{gauss_legendre, gauss_lobatto_legendre};
pub use mesh::{Axis, BoundaryCondition, Mesh3d};
pub use partition::{dof_owners, node_owners, partition_cells, CellRange};
pub use poisson::{solve_poisson, PoissonBc};
pub use space::{phase_products, CellDenseOperator, FeSpace, StiffnessOperator};
