//! The global FE space: DoF numbering, diagonal GLL mass (Löwdin
//! orthonormalization), and the cell-level operator kernels.
//!
//! Two application paths for the Laplacian are provided, mirroring the
//! paper's implementation choices:
//!
//! * [`FeSpace::apply_stiffness`] — tensor **sum-factorization** (memory-free,
//!   used for Poisson solves and as the default Hamiltonian kernel);
//! * [`CellDenseOperator`] — dense per-cell matrices applied with the
//!   strided-batched GEMM of [`dft_linalg::batched`], the faithful analogue
//!   of the paper's `xGEMMStridedBatched` FE-cell-level linear algebra
//!   (Sec. 5.4.1, `9^3 x 9^3` cell matrices at p = 8).
//!
//! Bloch phases: the periodic gather multiplies wrapped values by a per-axis
//! phase, and the scatter by its conjugate — this implements the k-point
//! Hamiltonian `H(k)` on complex scalars with zero extra machinery.

use crate::basis::Lagrange1d;
use crate::mesh::{BoundaryCondition, Mesh3d};
use dft_linalg::batched::{batched_gemm, BatchLayout};
use dft_linalg::iterative::LinearOperator;
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Real, Scalar};
use rayon::prelude::*;

/// A cell of the tensor mesh: integer coordinates and box dimensions.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Cell indices along x, y, z.
    pub c: [usize; 3],
    /// Box edge lengths.
    pub h: [f64; 3],
    /// Coordinates of the low corner.
    pub origin: [f64; 3],
}

/// Global continuous spectral FE space on a [`Mesh3d`].
pub struct FeSpace {
    /// The underlying mesh.
    pub mesh: Mesh3d,
    /// Shared 1D basis (nodes, weights, differentiation, stiffness).
    pub basis: Lagrange1d,
    axis_nodes: [Vec<f64>; 3],
    n_axis: [usize; 3],
    periodic: [bool; 3],
    nnodes: usize,
    ndofs: usize,
    dof_of_node: Vec<i64>,
    node_of_dof: Vec<u32>,
    mass_diag: Vec<f64>,
    inv_sqrt_mass_dof: Vec<f64>,
    cells: Vec<Cell>,
    /// Local nodes per cell, `(p+1)^3`.
    nloc: usize,
    /// Precomputed per-cell, per-local-node global node index
    /// (`cells.len() * nloc`, local layout `a + n1*(b + n1*c)`).
    cell_node: Vec<u32>,
    /// Precomputed per-cell, per-local-node DoF index, `-1` on eliminated
    /// Dirichlet boundary nodes.
    cell_dof: Vec<i32>,
    /// Precomputed per-cell, per-local-node periodic-wrap bitmask
    /// (bit 0 = x wrap, bit 1 = y, bit 2 = z) selecting the Bloch phase
    /// product to apply on gather/scatter.
    cell_wrap: Vec<u8>,
}

/// Columns processed together by the blocked stiffness kernel: 8 f64 lanes
/// is one AVX-512 register per accumulator.
const COL_BLOCK: usize = 8;

/// The 8 possible products of Bloch phases selected by a wrap bitmask
/// (identity for mask 0). `conj` gives the scatter-side conjugate table.
/// Public so distributed operators can run the same gather/scatter phase
/// arithmetic on their localized cell tables.
#[inline]
pub fn phase_products<T: Scalar>(phases: [T; 3], conj: bool) -> [T; 8] {
    let p = if conj {
        [phases[0].conj(), phases[1].conj(), phases[2].conj()]
    } else {
        phases
    };
    let mut tab = [T::ONE; 8];
    for (mask, t) in tab.iter_mut().enumerate() {
        let mut v = T::ONE;
        if mask & 1 != 0 {
            v *= p[0];
        }
        if mask & 2 != 0 {
            v *= p[1];
        }
        if mask & 4 != 0 {
            v *= p[2];
        }
        *t = v;
    }
    tab
}

impl FeSpace {
    /// Build the space: node numbering, Dirichlet DoF elimination, diagonal
    /// mass assembly.
    pub fn new(mesh: Mesh3d) -> Self {
        let p = mesh.degree;
        let basis = Lagrange1d::new(p);
        let mut axis_nodes: [Vec<f64>; 3] = [vec![], vec![], vec![]];
        let mut n_axis = [0usize; 3];
        let mut periodic = [false; 3];
        for d in 0..3 {
            let ax = &mesh.axes[d];
            periodic[d] = ax.bc() == BoundaryCondition::Periodic;
            let nc = ax.ncells();
            let mut nodes = Vec::with_capacity(nc * p + 1);
            for c in 0..nc {
                let (x0, x1) = (ax.boundaries()[c], ax.boundaries()[c + 1]);
                for a in 0..p {
                    nodes.push(x0 + 0.5 * (basis.nodes[a] + 1.0) * (x1 - x0));
                }
                if c == nc - 1 && !periodic[d] {
                    nodes.push(x1);
                }
            }
            n_axis[d] = nodes.len();
            axis_nodes[d] = nodes;
        }
        let nnodes = n_axis[0] * n_axis[1] * n_axis[2];

        // Dirichlet boundary nodes are eliminated from the DoF set.
        let is_boundary = |ix: usize, iy: usize, iz: usize| -> bool {
            (!periodic[0] && (ix == 0 || ix == n_axis[0] - 1))
                || (!periodic[1] && (iy == 0 || iy == n_axis[1] - 1))
                || (!periodic[2] && (iz == 0 || iz == n_axis[2] - 1))
        };
        let mut dof_of_node = vec![-1i64; nnodes];
        let mut node_of_dof = Vec::new();
        let mut idx = 0i64;
        for iz in 0..n_axis[2] {
            for iy in 0..n_axis[1] {
                for ix in 0..n_axis[0] {
                    let n = ix + n_axis[0] * (iy + n_axis[1] * iz);
                    if !is_boundary(ix, iy, iz) {
                        dof_of_node[n] = idx;
                        node_of_dof.push(n as u32);
                        idx += 1;
                    }
                }
            }
        }
        let ndofs = node_of_dof.len();

        // Cells.
        let mut cells = Vec::with_capacity(mesh.ncells());
        for cz in 0..mesh.axes[2].ncells() {
            for cy in 0..mesh.axes[1].ncells() {
                for cx in 0..mesh.axes[0].ncells() {
                    cells.push(Cell {
                        c: [cx, cy, cz],
                        h: [mesh.axes[0].h(cx), mesh.axes[1].h(cy), mesh.axes[2].h(cz)],
                        origin: [
                            mesh.axes[0].boundaries()[cx],
                            mesh.axes[1].boundaries()[cy],
                            mesh.axes[2].boundaries()[cz],
                        ],
                    });
                }
            }
        }

        // Precompute per-cell gather/scatter tables: global node, DoF index
        // (-1 on Dirichlet) and periodic-wrap bitmask per local node, so the
        // hot kernels never re-derive the `axis_node` arithmetic.
        let n1 = p + 1;
        let nloc = n1 * n1 * n1;
        let mut cell_node = Vec::with_capacity(cells.len() * nloc);
        let mut cell_dof = Vec::with_capacity(cells.len() * nloc);
        let mut cell_wrap = Vec::with_capacity(cells.len() * nloc);
        for cell in &cells {
            for c in 0..n1 {
                let (gz, wz) = Self::axis_node(cell.c[2], c, p, n_axis[2], periodic[2]);
                for b in 0..n1 {
                    let (gy, wy) = Self::axis_node(cell.c[1], b, p, n_axis[1], periodic[1]);
                    for a in 0..n1 {
                        let (gx, wx) = Self::axis_node(cell.c[0], a, p, n_axis[0], periodic[0]);
                        let node = gx + n_axis[0] * (gy + n_axis[1] * gz);
                        cell_node.push(node as u32);
                        cell_dof.push(dof_of_node[node] as i32);
                        cell_wrap.push(u8::from(wx) | (u8::from(wy) << 1) | (u8::from(wz) << 2));
                    }
                }
            }
        }

        // Diagonal GLL mass matrix over all nodes.
        let mut mass_diag = vec![0.0; nnodes];
        for cell in &cells {
            let jac = cell.h[0] * cell.h[1] * cell.h[2] / 8.0;
            for c in 0..n1 {
                for b in 0..n1 {
                    for a in 0..n1 {
                        let w = basis.weights[a] * basis.weights[b] * basis.weights[c] * jac;
                        let (gx, _) = Self::axis_node(cell.c[0], a, p, n_axis[0], periodic[0]);
                        let (gy, _) = Self::axis_node(cell.c[1], b, p, n_axis[1], periodic[1]);
                        let (gz, _) = Self::axis_node(cell.c[2], c, p, n_axis[2], periodic[2]);
                        mass_diag[gx + n_axis[0] * (gy + n_axis[1] * gz)] += w;
                    }
                }
            }
        }
        let inv_sqrt_mass_dof = node_of_dof
            .iter()
            .map(|&n| 1.0 / mass_diag[n as usize].sqrt())
            .collect();

        Self {
            mesh,
            basis,
            axis_nodes,
            n_axis,
            periodic,
            nnodes,
            ndofs,
            dof_of_node,
            node_of_dof,
            mass_diag,
            inv_sqrt_mass_dof,
            cells,
            nloc,
            cell_node,
            cell_dof,
            cell_wrap,
        }
    }

    /// Index of a cell in [`Self::cells`] (cells are stored x-fastest).
    #[inline]
    fn cell_index(&self, cell: &Cell) -> usize {
        let ncx = self.mesh.axes[0].ncells();
        let ncy = self.mesh.axes[1].ncells();
        cell.c[0] + ncx * (cell.c[1] + ncy * cell.c[2])
    }

    #[inline]
    fn axis_node(c: usize, a: usize, p: usize, n: usize, periodic: bool) -> (usize, bool) {
        let g = c * p + a;
        if periodic && g >= n {
            (g - n, true)
        } else {
            (g, false)
        }
    }

    /// Total unique FE nodes (including Dirichlet boundary nodes).
    #[inline]
    pub fn nnodes(&self) -> usize {
        self.nnodes
    }

    /// Degrees of freedom (nodes minus eliminated Dirichlet nodes).
    #[inline]
    pub fn ndofs(&self) -> usize {
        self.ndofs
    }

    /// Cells of the mesh.
    #[inline]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Local nodes per cell, `(p+1)^3`.
    #[inline]
    pub fn nloc(&self) -> usize {
        self.nloc
    }

    /// Per-local-node DoF indices of cell `ci` (`-1` on eliminated
    /// Dirichlet nodes), from the precomputed gather/scatter tables.
    #[inline]
    pub fn cell_dofs(&self, ci: usize) -> &[i32] {
        &self.cell_dof[ci * self.nloc..(ci + 1) * self.nloc]
    }

    /// Per-local-node periodic-wrap bitmasks of cell `ci` (bit 0 = x wrap,
    /// bit 1 = y, bit 2 = z) selecting the Bloch phase product.
    #[inline]
    pub fn cell_wraps(&self, ci: usize) -> &[u8] {
        &self.cell_wrap[ci * self.nloc..(ci + 1) * self.nloc]
    }

    /// Per-local-node global node indices of cell `ci`.
    #[inline]
    pub fn cell_nodes(&self, ci: usize) -> &[u32] {
        &self.cell_node[ci * self.nloc..(ci + 1) * self.nloc]
    }

    /// Unique node counts per axis.
    #[inline]
    pub fn n_axis(&self) -> [usize; 3] {
        self.n_axis
    }

    /// Diagonal of the global (consistent, GLL-collocated) mass matrix.
    #[inline]
    pub fn mass_diag(&self) -> &[f64] {
        &self.mass_diag
    }

    /// `M^{-1/2}` restricted to DoFs — the Löwdin orthonormalization scaling.
    #[inline]
    pub fn inv_sqrt_mass(&self) -> &[f64] {
        &self.inv_sqrt_mass_dof
    }

    /// Map node index -> DoF index (`None` on Dirichlet boundary).
    #[inline]
    pub fn dof_of_node(&self, node: usize) -> Option<usize> {
        let d = self.dof_of_node[node];
        (d >= 0).then_some(d as usize)
    }

    /// Map DoF index -> node index.
    #[inline]
    pub fn node_of_dof(&self, dof: usize) -> usize {
        self.node_of_dof[dof] as usize
    }

    /// Cartesian coordinates of a node.
    pub fn node_coord(&self, node: usize) -> [f64; 3] {
        let ix = node % self.n_axis[0];
        let iy = (node / self.n_axis[0]) % self.n_axis[1];
        let iz = node / (self.n_axis[0] * self.n_axis[1]);
        [
            self.axis_nodes[0][ix],
            self.axis_nodes[1][iy],
            self.axis_nodes[2][iz],
        ]
    }

    /// Integrate a nodal field over the domain: `sum_i M_ii f_i`.
    pub fn integrate(&self, f_nodes: &[f64]) -> f64 {
        assert_eq!(f_nodes.len(), self.nnodes);
        f_nodes
            .iter()
            .zip(self.mass_diag.iter())
            .map(|(&f, &m)| f * m)
            .sum()
    }

    /// Expand a DoF vector to a full nodal vector (Dirichlet nodes get 0).
    pub fn dofs_to_nodes<T: Scalar>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.ndofs);
        let mut out = vec![T::ZERO; self.nnodes];
        for (d, &n) in self.node_of_dof.iter().enumerate() {
            out[n as usize] = x[d];
        }
        out
    }

    /// Restrict a full nodal vector to DoFs.
    pub fn nodes_to_dofs<T: Scalar>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.nnodes);
        self.node_of_dof.iter().map(|&n| x[n as usize]).collect()
    }

    /// Gather the local values of one cell from a *full nodal* vector,
    /// applying Bloch `phases` on periodic wraps. Local index layout is
    /// `a + n1*(b + n1*c)`. Table-driven: one indexed load plus a masked
    /// phase multiply per local node.
    pub fn gather_cell_nodes<T: Scalar>(
        &self,
        cell: &Cell,
        x_nodes: &[T],
        phases: [T; 3],
        out: &mut [T],
    ) {
        let nloc = self.nloc;
        debug_assert_eq!(out.len(), nloc);
        let ci = self.cell_index(cell);
        let nodes = &self.cell_node[ci * nloc..(ci + 1) * nloc];
        let wraps = &self.cell_wrap[ci * nloc..(ci + 1) * nloc];
        let tab = phase_products(phases, false);
        for l in 0..nloc {
            let mut v = x_nodes[nodes[l] as usize];
            let w = wraps[l];
            if w != 0 {
                v *= tab[w as usize];
            }
            out[l] = v;
        }
    }

    /// Gather cell values from a *DoF* vector (Dirichlet nodes read as 0).
    pub fn gather_cell_dofs<T: Scalar>(
        &self,
        cell: &Cell,
        x_dofs: &[T],
        phases: [T; 3],
        out: &mut [T],
    ) {
        let nloc = self.nloc;
        let ci = self.cell_index(cell);
        let dofs = &self.cell_dof[ci * nloc..(ci + 1) * nloc];
        let wraps = &self.cell_wrap[ci * nloc..(ci + 1) * nloc];
        let tab = phase_products(phases, false);
        for l in 0..nloc {
            let d = dofs[l];
            let mut v = if d >= 0 { x_dofs[d as usize] } else { T::ZERO };
            let w = wraps[l];
            if w != 0 {
                v *= tab[w as usize];
            }
            out[l] = v;
        }
    }

    /// Scatter-add local cell values into a DoF vector, conjugating the
    /// Bloch phases (the adjoint of [`Self::gather_cell_dofs`]).
    pub fn scatter_add_cell_dofs<T: Scalar>(
        &self,
        cell: &Cell,
        local: &[T],
        phases: [T; 3],
        y_dofs: &mut [T],
    ) {
        let nloc = self.nloc;
        let ci = self.cell_index(cell);
        let dofs = &self.cell_dof[ci * nloc..(ci + 1) * nloc];
        let wraps = &self.cell_wrap[ci * nloc..(ci + 1) * nloc];
        let tab = phase_products(phases, true);
        for l in 0..nloc {
            let d = dofs[l];
            if d >= 0 {
                let mut v = local[l];
                let w = wraps[l];
                if w != 0 {
                    v *= tab[w as usize];
                }
                y_dofs[d as usize] += v;
            }
        }
    }

    /// Seed-era gather that re-derives the `axis_node` arithmetic per call —
    /// retained (with [`Self::scatter_add_cell_dofs_ref`]) as the
    /// correctness oracle for the precomputed tables and as the benchmark
    /// baseline of [`Self::apply_stiffness_reference`].
    fn gather_cell_dofs_ref<T: Scalar>(
        &self,
        cell: &Cell,
        x_dofs: &[T],
        phases: [T; 3],
        out: &mut [T],
    ) {
        let p = self.mesh.degree;
        let n1 = p + 1;
        let mut idx = 0;
        for c in 0..n1 {
            let (gz, wz) = Self::axis_node(cell.c[2], c, p, self.n_axis[2], self.periodic[2]);
            for b in 0..n1 {
                let (gy, wy) = Self::axis_node(cell.c[1], b, p, self.n_axis[1], self.periodic[1]);
                for a in 0..n1 {
                    let (gx, wx) =
                        Self::axis_node(cell.c[0], a, p, self.n_axis[0], self.periodic[0]);
                    let n = gx + self.n_axis[0] * (gy + self.n_axis[1] * gz);
                    let d = self.dof_of_node[n];
                    let mut v = if d >= 0 { x_dofs[d as usize] } else { T::ZERO };
                    if wx {
                        v *= phases[0];
                    }
                    if wy {
                        v *= phases[1];
                    }
                    if wz {
                        v *= phases[2];
                    }
                    out[idx] = v;
                    idx += 1;
                }
            }
        }
    }

    /// Seed-era scatter counterpart of [`Self::gather_cell_dofs_ref`].
    fn scatter_add_cell_dofs_ref<T: Scalar>(
        &self,
        cell: &Cell,
        local: &[T],
        phases: [T; 3],
        y_dofs: &mut [T],
    ) {
        let p = self.mesh.degree;
        let n1 = p + 1;
        let mut idx = 0;
        for c in 0..n1 {
            let (gz, wz) = Self::axis_node(cell.c[2], c, p, self.n_axis[2], self.periodic[2]);
            for b in 0..n1 {
                let (gy, wy) = Self::axis_node(cell.c[1], b, p, self.n_axis[1], self.periodic[1]);
                for a in 0..n1 {
                    let (gx, wx) =
                        Self::axis_node(cell.c[0], a, p, self.n_axis[0], self.periodic[0]);
                    let n = gx + self.n_axis[0] * (gy + self.n_axis[1] * gz);
                    let d = self.dof_of_node[n];
                    if d >= 0 {
                        let mut v = local[idx];
                        if wx {
                            v *= phases[0].conj();
                        }
                        if wy {
                            v *= phases[1].conj();
                        }
                        if wz {
                            v *= phases[2].conj();
                        }
                        y_dofs[d as usize] += v;
                    }
                    idx += 1;
                }
            }
        }
    }

    /// Sum-factorized application of the reference-cell stiffness to local
    /// values: `y_loc += K_c x_loc` for an axis-aligned box of size `h`.
    pub fn cell_stiffness_apply<T: Scalar>(&self, h: [f64; 3], x_loc: &[T], y_loc: &mut [T]) {
        let n1 = self.mesh.degree + 1;
        let b = &self.basis;
        let sx = h[1] * h[2] / (2.0 * h[0]);
        let sy = h[0] * h[2] / (2.0 * h[1]);
        let sz = h[0] * h[1] / (2.0 * h[2]);
        // x-direction: contiguous stride 1
        for c in 0..n1 {
            for bb in 0..n1 {
                let base = n1 * (bb + n1 * c);
                let scale = sx * b.weights[bb] * b.weights[c];
                for i in 0..n1 {
                    let mut acc = T::ZERO;
                    for j in 0..n1 {
                        acc += x_loc[base + j].scale(T::Re::from_f64(b.k(i, j)));
                    }
                    y_loc[base + i] += acc.scale(T::Re::from_f64(scale));
                }
            }
        }
        // y-direction: stride n1
        for c in 0..n1 {
            for a in 0..n1 {
                let base = a + n1 * n1 * c;
                let scale = sy * b.weights[a] * b.weights[c];
                for i in 0..n1 {
                    let mut acc = T::ZERO;
                    for j in 0..n1 {
                        acc += x_loc[base + j * n1].scale(T::Re::from_f64(b.k(i, j)));
                    }
                    y_loc[base + i * n1] += acc.scale(T::Re::from_f64(scale));
                }
            }
        }
        // z-direction: stride n1*n1
        let n2 = n1 * n1;
        for bb in 0..n1 {
            for a in 0..n1 {
                let base = a + n1 * bb;
                let scale = sz * b.weights[a] * b.weights[bb];
                for i in 0..n1 {
                    let mut acc = T::ZERO;
                    for j in 0..n1 {
                        acc += x_loc[base + j * n2].scale(T::Re::from_f64(b.k(i, j)));
                    }
                    y_loc[base + i * n2] += acc.scale(T::Re::from_f64(scale));
                }
            }
        }
    }

    /// Analytic FLOP count of one [`FeSpace::apply_stiffness`] call on
    /// `ncols` columns: per cell and column the sum-factorized kernel does
    /// three directional sweeps, each `n1^3` outputs of an `n1`-term
    /// multiply-add plus one scale-and-accumulate (gather/scatter phase
    /// multiplies are not counted).
    pub fn stiffness_apply_flops<T: Scalar>(&self, ncols: usize) -> u64 {
        let n1 = (self.mesh.degree + 1) as u64;
        let mac = T::MUL_FLOPS + T::ADD_FLOPS;
        let per_cell = 3 * n1 * n1 * n1 * (n1 + 1) * mac;
        per_cell * self.cells.len() as u64 * ncols as u64
    }

    /// `Y = K X` on DoF vectors (columns of `x`), with Bloch `phases` on
    /// periodic wraps. `K` is the assembled FE stiffness (grad-grad) matrix;
    /// the Laplacian operator in the Hamiltonian is `-1/2 K` in the
    /// mass-orthonormalized basis.
    ///
    /// Runs the table-driven blocked kernel: columns are processed
    /// [`COL_BLOCK`] at a time through an interleaved-lane local buffer so
    /// the sum-factorized sweeps vectorize across columns, and gather /
    /// scatter walk the precomputed DoF + wrap-mask tables.
    pub fn apply_stiffness<T: Scalar>(&self, x: &Matrix<T>, y: &mut Matrix<T>, phases: [T; 3]) {
        self.apply_stiffness_impl(x, y, phases, None);
    }

    /// `Y = K diag(s) X` for a real per-DoF scale `s`, fused into the cell
    /// gather. This is the Hamiltonian's Löwdin `M^{-1/2}` input scaling —
    /// fusing it removes a full copy of the wavefunction block per apply.
    pub fn apply_stiffness_scaled<T: Scalar>(
        &self,
        x: &Matrix<T>,
        y: &mut Matrix<T>,
        phases: [T; 3],
        row_scale: &[f64],
    ) {
        assert_eq!(row_scale.len(), self.ndofs);
        self.apply_stiffness_impl(x, y, phases, Some(row_scale));
    }

    fn apply_stiffness_impl<T: Scalar>(
        &self,
        x: &Matrix<T>,
        y: &mut Matrix<T>,
        phases: [T; 3],
        row_scale: Option<&[f64]>,
    ) {
        assert_eq!(x.nrows(), self.ndofs);
        assert_eq!(y.shape(), x.shape());
        let nd = self.ndofs;
        let nloc = self.nloc;
        let x_data = x.as_slice();
        let tab = phase_products(phases, false);
        let tabc = phase_products(phases, true);
        y.as_mut_slice()
            .par_chunks_mut(nd * COL_BLOCK)
            .enumerate()
            .for_each(|(jb, yblk)| {
                yblk.fill(T::ZERO);
                let j0 = jb * COL_BLOCK;
                let cb = yblk.len() / nd;
                let xblk = &x_data[j0 * nd..(j0 + cb) * nd];
                dft_linalg::pack::with_scratch::<T, _>(|loc, out| {
                    let need = nloc * COL_BLOCK;
                    if loc.len() < need {
                        loc.resize(need, T::ZERO);
                    }
                    if out.len() < need {
                        out.resize(need, T::ZERO);
                    }
                    let loc = &mut loc[..need];
                    let out = &mut out[..need];
                    for ci in 0..self.cells.len() {
                        self.gather_block(ci, xblk, nd, cb, &tab, row_scale, loc);
                        out.fill(T::ZERO);
                        self.cell_stiffness_apply_block(self.cells[ci].h, loc, out);
                        self.scatter_block(ci, out, &tabc, yblk, nd, cb);
                    }
                });
            });
    }

    /// Gather [`COL_BLOCK`] interleaved column lanes of one cell
    /// (`loc[l*COL_BLOCK + t]` is local node `l`, block column `t`),
    /// optionally fusing a per-DoF real scale; unused lanes are zeroed.
    #[allow(clippy::too_many_arguments)]
    fn gather_block<T: Scalar>(
        &self,
        ci: usize,
        xblk: &[T],
        nd: usize,
        cb: usize,
        tab: &[T; 8],
        row_scale: Option<&[f64]>,
        loc: &mut [T],
    ) {
        const CB: usize = COL_BLOCK;
        let nloc = self.nloc;
        let dofs = &self.cell_dof[ci * nloc..(ci + 1) * nloc];
        let wraps = &self.cell_wrap[ci * nloc..(ci + 1) * nloc];
        for l in 0..nloc {
            let dst = &mut loc[l * CB..(l + 1) * CB];
            let d = dofs[l];
            if d < 0 {
                dst.fill(T::ZERO);
                continue;
            }
            let du = d as usize;
            match row_scale {
                None => {
                    for t in 0..cb {
                        dst[t] = xblk[t * nd + du];
                    }
                }
                Some(s) => {
                    let sc = <T::Re as Real>::from_f64(s[du]);
                    for t in 0..cb {
                        dst[t] = xblk[t * nd + du].scale(sc);
                    }
                }
            }
            let w = wraps[l] as usize;
            if w != 0 {
                let ph = tab[w];
                for t in 0..cb {
                    dst[t] *= ph;
                }
            }
            for t in cb..CB {
                dst[t] = T::ZERO;
            }
        }
    }

    /// Scatter-add the interleaved column lanes back to the DoF block,
    /// conjugate phases on wraps (adjoint of [`Self::gather_block`]).
    fn scatter_block<T: Scalar>(
        &self,
        ci: usize,
        out: &[T],
        tabc: &[T; 8],
        yblk: &mut [T],
        nd: usize,
        cb: usize,
    ) {
        const CB: usize = COL_BLOCK;
        let nloc = self.nloc;
        let dofs = &self.cell_dof[ci * nloc..(ci + 1) * nloc];
        let wraps = &self.cell_wrap[ci * nloc..(ci + 1) * nloc];
        for l in 0..nloc {
            let d = dofs[l];
            if d < 0 {
                continue;
            }
            let du = d as usize;
            let src = &out[l * CB..(l + 1) * CB];
            let w = wraps[l] as usize;
            if w == 0 {
                for t in 0..cb {
                    yblk[t * nd + du] += src[t];
                }
            } else {
                let ph = tabc[w];
                for t in 0..cb {
                    yblk[t * nd + du] += src[t] * ph;
                }
            }
        }
    }

    /// Sum-factorized stiffness on [`COL_BLOCK`] interleaved column lanes:
    /// the same three directional sweeps as [`Self::cell_stiffness_apply`],
    /// with each accumulator widened to a fixed lane array and the
    /// column-blocked inner products running through `Scalar::lane_fma`
    /// (packed FMA for f64/f32 via the `dft_linalg::simd` engine). Per lane
    /// the contraction order is identical to the single-column kernel; the
    /// fused multiply-adds round once per term instead of twice.
    fn cell_stiffness_apply_block<T: Scalar>(&self, h: [f64; 3], x_loc: &[T], y_loc: &mut [T]) {
        const CB: usize = COL_BLOCK;
        let n1 = self.mesh.degree + 1;
        let b = &self.basis;
        let sx = h[1] * h[2] / (2.0 * h[0]);
        let sy = h[0] * h[2] / (2.0 * h[1]);
        let sz = h[0] * h[1] / (2.0 * h[2]);
        let lane = |buf: &[T], l: usize| -> [T; CB] {
            buf[l * CB..(l + 1) * CB].try_into().expect("lane width")
        };
        // x-direction: contiguous local stride 1
        for c in 0..n1 {
            for bb in 0..n1 {
                let base = n1 * (bb + n1 * c);
                let scale = T::Re::from_f64(sx * b.weights[bb] * b.weights[c]);
                for i in 0..n1 {
                    let mut acc = [T::ZERO; CB];
                    for j in 0..n1 {
                        let kij = T::Re::from_f64(b.k(i, j));
                        let xv = lane(x_loc, base + j);
                        T::lane_fma(&mut acc, &xv, kij);
                    }
                    let yv = &mut y_loc[(base + i) * CB..(base + i + 1) * CB];
                    T::lane_fma(yv, &acc, scale);
                }
            }
        }
        // y-direction: local stride n1
        for c in 0..n1 {
            for a in 0..n1 {
                let base = a + n1 * n1 * c;
                let scale = T::Re::from_f64(sy * b.weights[a] * b.weights[c]);
                for i in 0..n1 {
                    let mut acc = [T::ZERO; CB];
                    for j in 0..n1 {
                        let kij = T::Re::from_f64(b.k(i, j));
                        let xv = lane(x_loc, base + j * n1);
                        T::lane_fma(&mut acc, &xv, kij);
                    }
                    let yv = &mut y_loc[(base + i * n1) * CB..(base + i * n1) * CB + CB];
                    T::lane_fma(yv, &acc, scale);
                }
            }
        }
        // z-direction: local stride n1*n1
        let n2 = n1 * n1;
        for bb in 0..n1 {
            for a in 0..n1 {
                let base = a + n1 * bb;
                let scale = T::Re::from_f64(sz * b.weights[a] * b.weights[bb]);
                for i in 0..n1 {
                    let mut acc = [T::ZERO; CB];
                    for j in 0..n1 {
                        let kij = T::Re::from_f64(b.k(i, j));
                        let xv = lane(x_loc, base + j * n2);
                        T::lane_fma(&mut acc, &xv, kij);
                    }
                    let yv = &mut y_loc[(base + i * n2) * CB..(base + i * n2) * CB + CB];
                    T::lane_fma(yv, &acc, scale);
                }
            }
        }
    }

    /// The seed per-column stiffness apply (per-call `axis_node`
    /// re-derivation, per-column scratch allocation) — retained as the
    /// golden-value oracle for [`Self::apply_stiffness`] and as the "before"
    /// baseline of the kernel benchmarks.
    pub fn apply_stiffness_reference<T: Scalar>(
        &self,
        x: &Matrix<T>,
        y: &mut Matrix<T>,
        phases: [T; 3],
    ) {
        assert_eq!(x.nrows(), self.ndofs);
        assert_eq!(y.shape(), x.shape());
        let nloc = self.nloc;
        let nd = self.ndofs;
        let x_data = x.as_slice();
        y.as_mut_slice()
            .par_chunks_mut(nd)
            .enumerate()
            .for_each(|(j, ycol)| {
                ycol.fill(T::ZERO);
                let xcol = &x_data[j * nd..(j + 1) * nd];
                let mut loc = vec![T::ZERO; nloc];
                let mut out = vec![T::ZERO; nloc];
                for cell in &self.cells {
                    self.gather_cell_dofs_ref(cell, xcol, phases, &mut loc);
                    out.fill(T::ZERO);
                    self.cell_stiffness_apply(cell.h, &loc, &mut out);
                    self.scatter_add_cell_dofs_ref(cell, &out, phases, ycol);
                }
            });
    }

    /// `y = K x` over *full nodal* vectors, including contributions from
    /// boundary nodes (needed for inhomogeneous Dirichlet lifts in the
    /// Poisson solves). Output is accumulated over all nodes.
    pub fn apply_stiffness_nodes(&self, x_nodes: &[f64], y_nodes: &mut [f64]) {
        assert_eq!(x_nodes.len(), self.nnodes);
        assert_eq!(y_nodes.len(), self.nnodes);
        y_nodes.fill(0.0);
        let nloc = self.nloc;
        let mut loc = vec![0.0; nloc];
        let mut out = vec![0.0; nloc];
        for (ci, cell) in self.cells.iter().enumerate() {
            let nodes = &self.cell_node[ci * nloc..(ci + 1) * nloc];
            for l in 0..nloc {
                loc[l] = x_nodes[nodes[l] as usize];
            }
            out.fill(0.0);
            self.cell_stiffness_apply(cell.h, &loc, &mut out);
            for l in 0..nloc {
                y_nodes[nodes[l] as usize] += out[l];
            }
        }
    }

    /// Diagonal of the assembled stiffness matrix on DoFs (for Jacobi /
    /// inverse-diagonal-Laplacian preconditioning, Sec. 5.3.1 of the paper).
    pub fn stiffness_diagonal(&self) -> Vec<f64> {
        let n1 = self.mesh.degree + 1;
        let p = self.mesh.degree;
        let b = &self.basis;
        let mut diag_nodes = vec![0.0; self.nnodes];
        for cell in &self.cells {
            let h = cell.h;
            let sx = h[1] * h[2] / (2.0 * h[0]);
            let sy = h[0] * h[2] / (2.0 * h[1]);
            let sz = h[0] * h[1] / (2.0 * h[2]);
            for c in 0..n1 {
                let (gz, _) = Self::axis_node(cell.c[2], c, p, self.n_axis[2], self.periodic[2]);
                for bb in 0..n1 {
                    let (gy, _) =
                        Self::axis_node(cell.c[1], bb, p, self.n_axis[1], self.periodic[1]);
                    for a in 0..n1 {
                        let (gx, _) =
                            Self::axis_node(cell.c[0], a, p, self.n_axis[0], self.periodic[0]);
                        let n = gx + self.n_axis[0] * (gy + self.n_axis[1] * gz);
                        let d = sx * b.weights[bb] * b.weights[c] * b.k(a, a)
                            + sy * b.weights[a] * b.weights[c] * b.k(bb, bb)
                            + sz * b.weights[a] * b.weights[bb] * b.k(c, c);
                        diag_nodes[n] += d;
                    }
                }
            }
        }
        self.node_of_dof
            .iter()
            .map(|&n| diag_nodes[n as usize])
            .collect()
    }

    /// Dense cell stiffness matrix for a box of size `h`
    /// (`(p+1)^3 x (p+1)^3`, column-major) — the building block of the
    /// paper-faithful batched dense path.
    pub fn dense_cell_stiffness(&self, h: [f64; 3]) -> Matrix<f64> {
        let n1 = self.mesh.degree + 1;
        let nloc = n1 * n1 * n1;
        let b = &self.basis;
        let sx = h[1] * h[2] / (2.0 * h[0]);
        let sy = h[0] * h[2] / (2.0 * h[1]);
        let sz = h[0] * h[1] / (2.0 * h[2]);
        let mut k = Matrix::zeros(nloc, nloc);
        let li = |a: usize, bb: usize, c: usize| a + n1 * (bb + n1 * c);
        for c in 0..n1 {
            for bb in 0..n1 {
                for a in 0..n1 {
                    let i = li(a, bb, c);
                    for j in 0..n1 {
                        k[(i, li(j, bb, c))] += sx * b.weights[bb] * b.weights[c] * b.k(a, j);
                        k[(i, li(a, j, c))] += sy * b.weights[a] * b.weights[c] * b.k(bb, j);
                        k[(i, li(a, bb, j))] += sz * b.weights[a] * b.weights[bb] * b.k(c, j);
                    }
                }
            }
        }
        k
    }
}

/// The assembled stiffness as a [`LinearOperator`] on DoF vectors
/// (used by CG for the electrostatics solves).
pub struct StiffnessOperator<'a> {
    space: &'a FeSpace,
}

impl<'a> StiffnessOperator<'a> {
    /// Wrap a space.
    pub fn new(space: &'a FeSpace) -> Self {
        Self { space }
    }
}

impl<'a> LinearOperator<f64> for StiffnessOperator<'a> {
    fn dim(&self) -> usize {
        self.space.ndofs()
    }
    fn apply(&self, x: &Matrix<f64>, y: &mut Matrix<f64>) {
        self.space.apply_stiffness(x, y, [1.0; 3]);
    }
}

/// Paper-faithful dense cell-matrix operator: per-cell dense matrices
/// `H_c` applied with one strided-batched GEMM per block, then assembled.
///
/// The caller supplies `H_c` (e.g. `-1/2 K_c + diag(m_c v_c)` for the
/// Kohn-Sham Hamiltonian); this struct owns the packed batch buffer.
pub struct CellDenseOperator<T> {
    nloc: usize,
    /// Packed per-cell matrices, `nloc*nloc` each, cell-major.
    pub cell_matrices: Vec<T>,
}

impl<T: Scalar> CellDenseOperator<T> {
    /// Pack per-cell dense matrices (one `nloc x nloc` column-major block
    /// per cell, in cell order).
    pub fn new(nloc: usize, cell_matrices: Vec<T>) -> Self {
        assert_eq!(cell_matrices.len() % (nloc * nloc), 0);
        Self {
            nloc,
            cell_matrices,
        }
    }

    /// Build the pure-stiffness dense operator for `space` (every cell gets
    /// its own dense `K_c`) — primarily for validating against the
    /// sum-factorized path and for the kernel benchmarks.
    pub fn stiffness(space: &FeSpace) -> CellDenseOperator<f64> {
        let n1 = space.mesh.degree + 1;
        let nloc = n1 * n1 * n1;
        let mut cm = Vec::with_capacity(space.cells().len() * nloc * nloc);
        for cell in space.cells() {
            cm.extend_from_slice(space.dense_cell_stiffness(cell.h).as_slice());
        }
        CellDenseOperator {
            nloc,
            cell_matrices: cm,
        }
    }

    /// `Y = (assembled H) X` on DoF vectors using gather -> batched GEMM ->
    /// scatter. `phases` as in [`FeSpace::apply_stiffness`].
    pub fn apply_block(&self, space: &FeSpace, x: &Matrix<T>, y: &mut Matrix<T>, phases: [T; 3]) {
        let nloc = self.nloc;
        let ncells = space.cells().len();
        let ncols = x.ncols();
        assert_eq!(self.cell_matrices.len(), ncells * nloc * nloc);

        // Gather all cells for all columns: per cell, an nloc x ncols block.
        let mut xb = vec![T::ZERO; ncells * nloc * ncols];
        for (ci, cell) in space.cells().iter().enumerate() {
            for j in 0..ncols {
                let dst = &mut xb[ci * nloc * ncols + j * nloc..ci * nloc * ncols + (j + 1) * nloc];
                // gather column j of x
                space.gather_cell_dofs(cell, x.col(j), phases, dst);
            }
        }
        let mut yb = vec![T::ZERO; ncells * nloc * ncols];
        let layout = BatchLayout {
            m: nloc,
            n: ncols,
            k: nloc,
            batch: ncells,
            stride_a: nloc * nloc,
            stride_b: nloc * ncols,
            stride_c: nloc * ncols,
        };
        batched_gemm(layout, T::ONE, &self.cell_matrices, &xb, T::ZERO, &mut yb);

        // Assemble.
        for col in y.as_mut_slice().chunks_mut(space.ndofs()) {
            col.fill(T::ZERO);
        }
        for (ci, cell) in space.cells().iter().enumerate() {
            for j in 0..ncols {
                let src = &yb[ci * nloc * ncols + j * nloc..ci * nloc * ncols + (j + 1) * nloc];
                space.scatter_add_cell_dofs(cell, src, phases, y.col_mut(j));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Axis;
    use dft_linalg::scalar::C64;

    fn small_space(p: usize) -> FeSpace {
        FeSpace::new(Mesh3d::cube(2, 4.0, p))
    }

    #[test]
    fn node_and_dof_counts() {
        let s = small_space(2);
        // 2 cells * p=2 + 1 = 5 nodes/axis, 125 total; interior 3^3 = 27
        assert_eq!(s.nnodes(), 125);
        assert_eq!(s.ndofs(), 27);
        let sp = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 2));
        assert_eq!(sp.nnodes(), 64); // 4 nodes/axis
        assert_eq!(sp.ndofs(), 64);
    }

    #[test]
    fn mass_integrates_volume() {
        for p in [1, 2, 3, 5] {
            let s = small_space(p);
            let ones = vec![1.0; s.nnodes()];
            assert!(
                (s.integrate(&ones) - 64.0).abs() < 1e-10,
                "p={p}: {}",
                s.integrate(&ones)
            );
        }
        let sp = FeSpace::new(Mesh3d::periodic_cube(3, 6.0, 3));
        let ones = vec![1.0; sp.nnodes()];
        assert!((sp.integrate(&ones) - 216.0).abs() < 1e-9);
    }

    #[test]
    fn mass_integrates_polynomial_exactly() {
        // GLL quadrature with p+1 points is exact to degree 2p-1; x*y^2
        // needs degree 2 per axis -> p >= 2 gives cell-exactness for deg <= 3
        let s = small_space(3);
        let f: Vec<f64> = (0..s.nnodes())
            .map(|n| {
                let [x, y, _] = s.node_coord(n);
                x * y * y
            })
            .collect();
        // integral over [0,4]^3 of x y^2 = 8 * (64/3) * 4 = 2048/3... compute:
        // int x dx = 8; int y^2 dy = 64/3; int dz = 4 -> 8 * 64/3 * 4 = 2048/3
        let exact = 2048.0 / 3.0;
        assert!((s.integrate(&f) - exact).abs() < 1e-9);
    }

    #[test]
    fn stiffness_energy_of_linear_field() {
        // u = x restricted to interior dofs is not linear near the boundary
        // (Dirichlet drops boundary), so use the full-node path:
        // energy = int |grad u|^2 = volume
        let s = small_space(3);
        let u: Vec<f64> = (0..s.nnodes()).map(|n| s.node_coord(n)[0]).collect();
        let mut ku = vec![0.0; s.nnodes()];
        s.apply_stiffness_nodes(&u, &mut ku);
        let e: f64 = u.iter().zip(ku.iter()).map(|(&a, &b)| a * b).sum();
        assert!((e - 64.0).abs() < 1e-9, "energy {e}");
    }

    #[test]
    fn stiffness_annihilates_constants_periodic() {
        let s = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 3));
        let x = Matrix::from_fn(s.ndofs(), 1, |_, _| 1.0);
        let mut y = Matrix::zeros(s.ndofs(), 1);
        s.apply_stiffness(&x, &mut y, [1.0; 3]);
        assert!(y.norm_fro() < 1e-10);
    }

    #[test]
    fn stiffness_is_symmetric() {
        let s = small_space(2);
        let n = s.ndofs();
        let x = Matrix::from_fn(n, 1, |i, _| ((i * 7) as f64 * 0.13).sin());
        let z = Matrix::from_fn(n, 1, |i, _| ((i * 3) as f64 * 0.41).cos());
        let mut kx = Matrix::zeros(n, 1);
        let mut kz = Matrix::zeros(n, 1);
        s.apply_stiffness(&x, &mut kx, [1.0; 3]);
        s.apply_stiffness(&z, &mut kz, [1.0; 3]);
        let a: f64 = z.col(0).iter().zip(kx.col(0)).map(|(&u, &v)| u * v).sum();
        let b: f64 = x.col(0).iter().zip(kz.col(0)).map(|(&u, &v)| u * v).sum();
        assert!((a - b).abs() < 1e-10 * a.abs().max(1.0));
    }

    #[test]
    fn stiffness_hermitian_with_bloch_phases() {
        let s = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 2));
        let n = s.ndofs();
        let ph = C64::cis(0.7);
        let phases = [ph, C64::ONE, C64::ONE];
        let x = Matrix::from_fn(n, 1, |i, _| {
            C64::new(((i * 5) as f64 * 0.3).sin(), ((i * 11) as f64 * 0.2).cos())
        });
        let z = Matrix::from_fn(n, 1, |i, _| {
            C64::new(((i * 3) as f64 * 0.7).cos(), ((i * 13) as f64 * 0.5).sin())
        });
        let mut kx = Matrix::zeros(n, 1);
        let mut kz = Matrix::zeros(n, 1);
        s.apply_stiffness(&x, &mut kx, phases);
        s.apply_stiffness(&z, &mut kz, phases);
        let a = dft_linalg::dot(z.col(0), kx.col(0));
        let b = dft_linalg::dot(kz.col(0), x.col(0));
        assert!((a - b).abs() < 1e-10, "<z,Kx>={a:?} vs <Kz,x>={b:?}");
    }

    #[test]
    fn plane_wave_rayleigh_quotient_periodic() {
        // u = sin(2 pi x / L): K-energy = (2pi/L)^2 * ||u||_M^2
        let l = 4.0;
        let s = FeSpace::new(FeSpace::periodic_line_mesh(6, l, 4));
        let n = s.ndofs();
        let k = 2.0 * std::f64::consts::PI / l;
        let u: Vec<f64> = (0..n)
            .map(|d| (k * s.node_coord(s.node_of_dof(d))[0]).sin())
            .collect();
        let um = Matrix::from_vec(n, 1, u.clone());
        let mut ku = Matrix::zeros(n, 1);
        s.apply_stiffness(&um, &mut ku, [1.0; 3]);
        let num: f64 = u.iter().zip(ku.col(0)).map(|(&a, &b)| a * b).sum();
        let den: f64 = (0..n)
            .map(|d| {
                let node = s.node_of_dof(d);
                s.mass_diag()[node] * u[d] * u[d]
            })
            .sum();
        let rq = num / den;
        assert!(
            (rq - k * k).abs() < 1e-4 * k * k,
            "RQ {rq} vs k^2 {}",
            k * k
        );
    }

    #[test]
    fn dense_cell_operator_matches_sumfac() {
        let s = small_space(2);
        let n = s.ndofs();
        let x = Matrix::from_fn(n, 3, |i, j| ((i * 7 + j * 29) as f64 * 0.23).sin());
        let mut y1 = Matrix::zeros(n, 3);
        s.apply_stiffness(&x, &mut y1, [1.0; 3]);
        let dense = CellDenseOperator::<f64>::stiffness(&s);
        let mut y2 = Matrix::zeros(n, 3);
        dense.apply_block(&s, &x, &mut y2, [1.0; 3]);
        assert!(y1.max_abs_diff(&y2) < 1e-10);
    }

    #[test]
    fn stiffness_diagonal_matches_operator() {
        let s = small_space(2);
        let n = s.ndofs();
        let diag = s.stiffness_diagonal();
        for probe in [0usize, n / 2, n - 1] {
            let mut e = Matrix::zeros(n, 1);
            e[(probe, 0)] = 1.0;
            let mut ke = Matrix::zeros(n, 1);
            s.apply_stiffness(&e, &mut ke, [1.0; 3]);
            assert!((ke[(probe, 0)] - diag[probe]).abs() < 1e-10);
        }
    }

    impl FeSpace {
        /// test helper: periodic-x box, Dirichlet y/z, thin in y/z
        fn periodic_line_mesh(nx: usize, l: f64, p: usize) -> Mesh3d {
            Mesh3d::new(
                [
                    Axis::uniform(nx, 0.0, l, BoundaryCondition::Periodic),
                    Axis::uniform(1, 0.0, l, BoundaryCondition::Periodic),
                    Axis::uniform(1, 0.0, l, BoundaryCondition::Periodic),
                ],
                p,
            )
        }
    }
}
