//! Tensor-product hexahedral meshes with per-axis grading.
//!
//! DFT-FE uses octree-adaptive meshes refined toward the nuclei. Here the
//! same adaptive-resolution behaviour is obtained with *graded* tensor
//! meshes: each axis carries its own monotone sequence of cell boundaries,
//! generated so cells shrink near projected atom positions (DESIGN.md S4).
//! Every cell is an axis-aligned box, so all cell Jacobians are diagonal and
//! the spectral sum-factorization kernels apply unchanged.

/// Boundary condition attached to one coordinate axis.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BoundaryCondition {
    /// Homogeneous or lifted Dirichlet data on the two faces of this axis
    /// (used for non-periodic directions; the far-field values come from
    /// multipole expansions in the electrostatics solves).
    Dirichlet,
    /// Periodic wrap (with an optional Bloch phase supplied at operator
    /// application time for k-point sampling).
    Periodic,
}

/// One coordinate axis of a tensor-product mesh: ascending cell boundaries
/// plus its boundary condition.
#[derive(Clone, Debug)]
pub struct Axis {
    boundaries: Vec<f64>,
    bc: BoundaryCondition,
}

impl Axis {
    /// Uniform axis starting at `x0` with `ncells` cells of equal size over
    /// `length`.
    pub fn uniform(ncells: usize, x0: f64, length: f64, bc: BoundaryCondition) -> Self {
        assert!(ncells >= 1 && length > 0.0);
        let h = length / ncells as f64;
        let boundaries = (0..=ncells).map(|i| x0 + i as f64 * h).collect();
        Self { boundaries, bc }
    }

    /// Graded axis over `[x0, x0 + length]`: the target cell size grows
    /// linearly from `h_min` at a distance `0` from the nearest entry of
    /// `centers` to `h_max` at distance `width` and beyond. Boundaries are
    /// generated greedily and rescaled to fit the interval exactly.
    pub fn graded(
        x0: f64,
        length: f64,
        h_min: f64,
        h_max: f64,
        centers: &[f64],
        width: f64,
        bc: BoundaryCondition,
    ) -> Self {
        assert!(h_min > 0.0 && h_max >= h_min && length > 0.0 && width > 0.0);
        let target = |x: f64| -> f64 {
            let d = centers
                .iter()
                .map(|&c| (x - c).abs())
                .fold(f64::INFINITY, f64::min);
            if d.is_infinite() {
                h_max
            } else {
                h_min + (h_max - h_min) * (d / width).min(1.0)
            }
        };
        let mut b = vec![x0];
        let end = x0 + length;
        let mut x = x0;
        while x < end - 1e-12 {
            let h = target(x + 0.5 * target(x)); // midpoint-ish sampling
            x += h;
            b.push(x.min(end));
            if b.len() > 100_000 {
                panic!("graded axis generated too many cells");
            }
        }
        if b.len() < 2 {
            b.push(end);
        }
        // merge a sliver final cell left by the clamp into its neighbour
        if b.len() > 2 {
            let last_h = b[b.len() - 1] - b[b.len() - 2];
            if last_h < 0.5 * target(end) {
                b.remove(b.len() - 2);
            }
        }
        // rescale interior boundaries so the last lands exactly on `end`
        let got = *b.last().unwrap() - x0;
        let s = length / got;
        for v in b.iter_mut() {
            *v = x0 + (*v - x0) * s;
        }
        *b.last_mut().unwrap() = end;
        Self { boundaries: b, bc }
    }

    /// Number of cells.
    #[inline]
    pub fn ncells(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Total axis length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.boundaries[self.ncells()] - self.boundaries[0]
    }

    /// Start coordinate.
    #[inline]
    pub fn start(&self) -> f64 {
        self.boundaries[0]
    }

    /// The ascending cell boundaries.
    #[inline]
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Size of cell `c`.
    #[inline]
    pub fn h(&self, c: usize) -> f64 {
        self.boundaries[c + 1] - self.boundaries[c]
    }

    /// Boundary condition of this axis.
    #[inline]
    pub fn bc(&self) -> BoundaryCondition {
        self.bc
    }
}

/// A 3D tensor-product hexahedral mesh with a common spectral degree.
#[derive(Clone, Debug)]
pub struct Mesh3d {
    /// Per-axis discretizations.
    pub axes: [Axis; 3],
    /// Spectral polynomial degree `p` (1..=8 supported and tested).
    pub degree: usize,
}

impl Mesh3d {
    /// Assemble a mesh from three axes and a degree.
    pub fn new(axes: [Axis; 3], degree: usize) -> Self {
        assert!((1..=10).contains(&degree), "unsupported degree {degree}");
        Self { axes, degree }
    }

    /// Uniform cube `[0, l]^3` with `n` cells per axis, all-Dirichlet.
    pub fn cube(n: usize, l: f64, degree: usize) -> Self {
        Self::new(
            [
                Axis::uniform(n, 0.0, l, BoundaryCondition::Dirichlet),
                Axis::uniform(n, 0.0, l, BoundaryCondition::Dirichlet),
                Axis::uniform(n, 0.0, l, BoundaryCondition::Dirichlet),
            ],
            degree,
        )
    }

    /// Uniform periodic cube `[0, l]^3`.
    pub fn periodic_cube(n: usize, l: f64, degree: usize) -> Self {
        Self::new(
            [
                Axis::uniform(n, 0.0, l, BoundaryCondition::Periodic),
                Axis::uniform(n, 0.0, l, BoundaryCondition::Periodic),
                Axis::uniform(n, 0.0, l, BoundaryCondition::Periodic),
            ],
            degree,
        )
    }

    /// Total number of cells.
    pub fn ncells(&self) -> usize {
        self.axes.iter().map(|a| a.ncells()).product()
    }

    /// Domain volume.
    pub fn volume(&self) -> f64 {
        self.axes.iter().map(|a| a.length()).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_axis_has_equal_cells() {
        let a = Axis::uniform(4, -2.0, 8.0, BoundaryCondition::Dirichlet);
        assert_eq!(a.ncells(), 4);
        assert!((a.length() - 8.0).abs() < 1e-14);
        for c in 0..4 {
            assert!((a.h(c) - 2.0).abs() < 1e-14);
        }
    }

    #[test]
    fn graded_axis_refines_near_center() {
        let a = Axis::graded(
            0.0,
            20.0,
            0.25,
            2.0,
            &[10.0],
            5.0,
            BoundaryCondition::Dirichlet,
        );
        assert!((a.length() - 20.0).abs() < 1e-12);
        // find smallest cell: should be near x = 10
        let (mut hmin, mut xmin) = (f64::INFINITY, 0.0);
        let (mut hmax, mut xmax) = (0.0_f64, 0.0);
        for c in 0..a.ncells() {
            let h = a.h(c);
            let x = 0.5 * (a.boundaries()[c] + a.boundaries()[c + 1]);
            if h < hmin {
                hmin = h;
                xmin = x;
            }
            if h > hmax {
                hmax = h;
                xmax = x;
            }
        }
        assert!((xmin - 10.0).abs() < 3.0, "finest cell at {xmin}");
        assert!((xmax - 10.0).abs() > 5.0, "coarsest cell at {xmax}");
        assert!(hmax / hmin > 3.0, "grading ratio {}", hmax / hmin);
    }

    #[test]
    fn graded_axis_monotone_boundaries() {
        let a = Axis::graded(
            -5.0,
            10.0,
            0.2,
            1.0,
            &[-2.0, 3.0],
            2.0,
            BoundaryCondition::Periodic,
        );
        for w in a.boundaries().windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!((a.start() + 5.0).abs() < 1e-14);
    }

    #[test]
    fn mesh_counts_and_volume() {
        let m = Mesh3d::cube(3, 6.0, 4);
        assert_eq!(m.ncells(), 27);
        assert!((m.volume() - 216.0).abs() < 1e-12);
    }
}
