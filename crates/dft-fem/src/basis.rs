//! 1D Lagrange bases on GLL nodes, with barycentric evaluation and the
//! collocation differentiation matrix.

use crate::gll::gauss_lobatto_legendre;

/// Degree-`p` Lagrange basis on the `p+1` GLL nodes of `[-1, 1]`.
#[derive(Clone, Debug)]
pub struct Lagrange1d {
    /// Polynomial degree.
    pub degree: usize,
    /// GLL nodes (length `degree + 1`).
    pub nodes: Vec<f64>,
    /// GLL quadrature weights at the nodes.
    pub weights: Vec<f64>,
    /// Barycentric weights `b_i = 1 / prod_{j != i}(x_i - x_j)`.
    pub bary: Vec<f64>,
    /// Differentiation matrix `D[i][j] = l_j'(x_i)`, row-major
    /// `(p+1) x (p+1)`.
    pub dmat: Vec<f64>,
    /// Reference 1D stiffness `Khat[i][j] = sum_q w_q l_i'(x_q) l_j'(x_q)`,
    /// row-major.
    pub khat: Vec<f64>,
}

impl Lagrange1d {
    /// Construct the basis for polynomial degree `p >= 1`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "degree must be at least 1");
        let n = p + 1;
        let (nodes, weights) = gauss_lobatto_legendre(n);
        let mut bary = vec![1.0; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    bary[i] /= nodes[i] - nodes[j];
                }
            }
        }
        // D[i][j] = l_j'(x_i)
        let mut dmat = vec![0.0; n * n];
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let d = (bary[j] / bary[i]) / (nodes[i] - nodes[j]);
                    dmat[i * n + j] = d;
                    row_sum += d;
                }
            }
            dmat[i * n + i] = -row_sum;
        }
        // Khat[i][j] = sum_q w_q D[q][i] D[q][j]
        let mut khat = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for q in 0..n {
                    s += weights[q] * dmat[q * n + i] * dmat[q * n + j];
                }
                khat[i * n + j] = s;
            }
        }
        Self {
            degree: p,
            nodes,
            weights,
            bary,
            dmat,
            khat,
        }
    }

    /// Number of nodes (`degree + 1`).
    #[inline]
    pub fn n(&self) -> usize {
        self.degree + 1
    }

    /// Evaluate all basis functions at `x` in `[-1, 1]` (barycentric form).
    pub fn eval_all(&self, x: f64) -> Vec<f64> {
        let n = self.n();
        let mut vals = vec![0.0; n];
        // exact node hit
        for i in 0..n {
            if (x - self.nodes[i]).abs() < 1e-14 {
                vals[i] = 1.0;
                return vals;
            }
        }
        let mut denom = 0.0;
        for i in 0..n {
            let t = self.bary[i] / (x - self.nodes[i]);
            vals[i] = t;
            denom += t;
        }
        for v in &mut vals {
            *v /= denom;
        }
        vals
    }

    /// Entry of the differentiation matrix: `l_j'(x_i)`.
    #[inline]
    pub fn d(&self, i: usize, j: usize) -> f64 {
        self.dmat[i * self.n() + j]
    }

    /// Entry of the reference stiffness matrix.
    #[inline]
    pub fn k(&self, i: usize, j: usize) -> f64 {
        self.khat[i * self.n() + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_unity() {
        let b = Lagrange1d::new(5);
        for &x in &[-0.9, -0.3, 0.0, 0.47, 0.99] {
            let v = b.eval_all(x);
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kronecker_delta_at_nodes() {
        let b = Lagrange1d::new(4);
        for i in 0..b.n() {
            let v = b.eval_all(b.nodes[i]);
            for j in 0..b.n() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v[j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn differentiation_matrix_exact_on_polynomials() {
        // D applied to nodal values of x^k must give k x^{k-1} at nodes
        let p = 6;
        let b = Lagrange1d::new(p);
        for k in 0..=p {
            let f: Vec<f64> = b.nodes.iter().map(|&x| x.powi(k as i32)).collect();
            for i in 0..b.n() {
                let mut df = 0.0;
                for j in 0..b.n() {
                    df += b.d(i, j) * f[j];
                }
                let exact = if k == 0 {
                    0.0
                } else {
                    k as f64 * b.nodes[i].powi(k as i32 - 1)
                };
                assert!((df - exact).abs() < 1e-10, "k={k} i={i}: {df} vs {exact}");
            }
        }
    }

    #[test]
    fn stiffness_is_symmetric_psd_with_constant_nullspace() {
        let b = Lagrange1d::new(4);
        let n = b.n();
        for i in 0..n {
            for j in 0..n {
                assert!((b.k(i, j) - b.k(j, i)).abs() < 1e-12);
            }
            // K * ones = 0 (constants have zero derivative)
            let row_sum: f64 = (0..n).map(|j| b.k(i, j)).sum();
            assert!(row_sum.abs() < 1e-12);
        }
    }

    #[test]
    fn stiffness_matches_exact_linear_energy() {
        // For u(x) = x on [-1,1]: integral of (u')^2 = 2 = x^T K x with
        // x = nodes
        let b = Lagrange1d::new(3);
        let n = b.n();
        let mut e = 0.0;
        for i in 0..n {
            for j in 0..n {
                e += b.nodes[i] * b.k(i, j) * b.nodes[j];
            }
        }
        assert!((e - 2.0).abs() < 1e-12);
    }
}
