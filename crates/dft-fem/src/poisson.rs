//! FE Poisson solves for the electrostatic potentials.
//!
//! The Hartree potential `v_H` and (in the all-electron path) the nuclear
//! potential `v_N` solve `-nabla^2 v = 4 pi rho` on the FE mesh (the paper's
//! "EP" step). Dirichlet data for isolated systems comes from a multipole
//! (monopole) far field; fully periodic domains use the zero-mean gauge.

use crate::space::{FeSpace, StiffnessOperator};
use dft_linalg::iterative::{cg, DiagonalPrec, IterStats, LinearOperator};
use dft_linalg::matrix::Matrix;

/// Boundary treatment for a Poisson solve.
pub enum PoissonBc<'a> {
    /// Dirichlet values prescribed on every boundary node, from the given
    /// function of position (e.g. `-q/r` monopole far field).
    Dirichlet(&'a dyn Fn([f64; 3]) -> f64),
    /// Fully periodic domain: the right-hand side is projected to zero mean
    /// (compatibility) and the solution is returned in the zero-mean gauge.
    Periodic,
}

/// Stiffness operator with the constant null space projected out, for the
/// periodic (singular) Poisson problem. `K 1 = 0` and `1^T K = 0`, so `K x`
/// is orthogonal to the constants analytically; the projection only guards
/// against round-off drift in long CG runs.
struct ProjectedStiffness<'a> {
    inner: StiffnessOperator<'a>,
}

impl<'a> LinearOperator<f64> for ProjectedStiffness<'a> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn apply(&self, x: &Matrix<f64>, y: &mut Matrix<f64>) {
        self.inner.apply(x, y);
        let n = y.nrows() as f64;
        for j in 0..y.ncols() {
            let mean: f64 = y.col(j).iter().sum::<f64>() / n;
            for v in y.col_mut(j) {
                *v -= mean;
            }
        }
    }
}

/// Solve `-nabla^2 phi = 4 pi rho` on the FE space.
///
/// `rho` is a full nodal vector; the returned potential is also a full
/// nodal vector. `tol` is the relative CG tolerance. Returns the potential
/// and the CG statistics.
pub fn solve_poisson(
    space: &FeSpace,
    rho: &[f64],
    bc: PoissonBc<'_>,
    tol: f64,
    max_iter: usize,
) -> (Vec<f64>, IterStats) {
    assert_eq!(rho.len(), space.nnodes());
    let nd = space.ndofs();
    let four_pi = 4.0 * std::f64::consts::PI;

    match bc {
        PoissonBc::Dirichlet(g) => {
            // Lift: phi = phi0 + phi_bc, phi_bc prescribed on boundary nodes.
            let mut phi_bc = vec![0.0; space.nnodes()];
            for n in 0..space.nnodes() {
                if space.dof_of_node(n).is_none() {
                    phi_bc[n] = g(space.node_coord(n));
                }
            }
            // rhs = 4 pi M rho - K phi_bc, restricted to dofs
            let mut k_bc = vec![0.0; space.nnodes()];
            space.apply_stiffness_nodes(&phi_bc, &mut k_bc);
            let mut rhs = vec![0.0; nd];
            for d in 0..nd {
                let n = space.node_of_dof(d);
                rhs[d] = four_pi * space.mass_diag()[n] * rho[n] - k_bc[n];
            }
            let op = StiffnessOperator::new(space);
            let prec = DiagonalPrec::from_diagonal(&space.stiffness_diagonal());
            let mut x = vec![0.0; nd];
            let stats = cg(&op, &prec, &rhs, &mut x, tol, max_iter);
            let mut phi = phi_bc;
            for d in 0..nd {
                phi[space.node_of_dof(d)] = x[d];
            }
            (phi, stats)
        }
        PoissonBc::Periodic => {
            assert_eq!(
                nd,
                space.nnodes(),
                "periodic Poisson expects no Dirichlet dofs"
            );
            // compatibility: subtract the mean charge
            let total_q = space.integrate(rho);
            let vol: f64 = space.mesh.volume();
            let mean = total_q / vol;
            let mut rhs = vec![0.0; nd];
            for d in 0..nd {
                let n = space.node_of_dof(d);
                rhs[d] = four_pi * space.mass_diag()[n] * (rho[n] - mean);
            }
            // A (numerically) uniform charge is fully neutralized: phi = 0.
            let rhs_norm = rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
            let scale =
                four_pi * space.integrate(&rho.iter().map(|v| v.abs()).collect::<Vec<_>>()) + 1.0;
            if rhs_norm < 1e-12 * scale {
                return (
                    vec![0.0; space.nnodes()],
                    IterStats {
                        iterations: 0,
                        iterations_per_column: vec![0],
                        final_residuals: vec![0.0],
                        converged: true,
                    },
                );
            }
            let weights: Vec<f64> = (0..nd)
                .map(|d| space.mass_diag()[space.node_of_dof(d)])
                .collect();
            let wsum: f64 = weights.iter().sum();
            let op = ProjectedStiffness {
                inner: StiffnessOperator::new(space),
            };
            let prec = DiagonalPrec::from_diagonal(&space.stiffness_diagonal());
            let mut x = vec![0.0; nd];
            let stats = cg(&op, &prec, &rhs, &mut x, tol, max_iter);
            // zero-mean gauge
            let mean_phi: f64 = x
                .iter()
                .zip(weights.iter())
                .map(|(&v, &w)| v * w)
                .sum::<f64>()
                / wsum;
            let mut phi = vec![0.0; space.nnodes()];
            for d in 0..nd {
                phi[space.node_of_dof(d)] = x[d] - mean_phi;
            }
            (phi, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::NodalField;
    use crate::mesh::Mesh3d;
    use std::f64::consts::PI;

    #[test]
    fn manufactured_dirichlet_solution() {
        // phi = sin(pi x/L) sin(pi y/L) sin(pi z/L) on [0,L]^3 with phi=0 on
        // the boundary; -lap phi = 3 (pi/L)^2 phi = 4 pi rho
        let l = 2.0;
        let s = FeSpace::new(Mesh3d::cube(3, l, 4));
        let kk = 3.0 * (PI / l) * (PI / l);
        let phi_exact = NodalField::from_fn(&s, |[x, y, z]| {
            (PI * x / l).sin() * (PI * y / l).sin() * (PI * z / l).sin()
        });
        let rho: Vec<f64> = phi_exact
            .values
            .iter()
            .map(|&p| kk * p / (4.0 * PI))
            .collect();
        let zero = |_: [f64; 3]| 0.0;
        let (phi, stats) = solve_poisson(&s, &rho, PoissonBc::Dirichlet(&zero), 1e-12, 5000);
        assert!(stats.converged);
        let mut max_err = 0.0_f64;
        for n in 0..s.nnodes() {
            max_err = max_err.max((phi[n] - phi_exact.values[n]).abs());
        }
        assert!(max_err < 5e-4, "max error {max_err}");
    }

    #[test]
    fn dirichlet_solution_converges_with_p() {
        let l = 2.0;
        let kk = 3.0 * (PI / l) * (PI / l);
        let mut errs = vec![];
        for p in [2usize, 4] {
            let s = FeSpace::new(Mesh3d::cube(2, l, p));
            let phi_exact = NodalField::from_fn(&s, |[x, y, z]| {
                (PI * x / l).sin() * (PI * y / l).sin() * (PI * z / l).sin()
            });
            let rho: Vec<f64> = phi_exact
                .values
                .iter()
                .map(|&v| kk * v / (4.0 * PI))
                .collect();
            let zero = |_: [f64; 3]| 0.0;
            let (phi, _) = solve_poisson(&s, &rho, PoissonBc::Dirichlet(&zero), 1e-13, 8000);
            let err = phi
                .iter()
                .zip(phi_exact.values.iter())
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            errs.push(err);
        }
        assert!(
            errs[1] < errs[0] / 20.0,
            "spectral convergence expected: {errs:?}"
        );
    }

    #[test]
    fn periodic_plane_wave_solution() {
        // rho = cos(2 pi x / L) / (4 pi) * (2 pi / L)^2 -> phi = cos(2 pi x/L)
        let l = 3.0;
        let s = FeSpace::new(Mesh3d::periodic_cube(3, l, 4));
        let k = 2.0 * PI / l;
        let rho: Vec<f64> = (0..s.nnodes())
            .map(|n| {
                let x = s.node_coord(n)[0];
                k * k * (k * x).cos() / (4.0 * PI)
            })
            .collect();
        let (phi, stats) = solve_poisson(&s, &rho, PoissonBc::Periodic, 1e-12, 5000);
        assert!(stats.converged);
        let mut max_err = 0.0_f64;
        for n in 0..s.nnodes() {
            let x = s.node_coord(n)[0];
            max_err = max_err.max((phi[n] - (k * x).cos()).abs());
        }
        assert!(max_err < 1e-3, "max error {max_err}");
    }

    #[test]
    fn periodic_neutralizes_uniform_charge() {
        // constant rho must produce (numerically) zero potential after the
        // compatibility projection
        let s = FeSpace::new(Mesh3d::periodic_cube(2, 2.0, 2));
        let rho = vec![0.7; s.nnodes()];
        let (phi, stats) = solve_poisson(&s, &rho, PoissonBc::Periodic, 1e-12, 2000);
        assert!(stats.converged);
        assert!(phi.iter().all(|&v| v.abs() < 1e-8));
    }

    #[test]
    fn gaussian_charge_matches_erf_potential() {
        // rho(r) = q (alpha/pi)^{3/2} exp(-alpha r^2) centred in the box;
        // phi(r) = q erf(sqrt(alpha) r)/r. Use the exact potential as
        // Dirichlet data so the only error is interior discretization.
        let l = 8.0;
        let s = FeSpace::new(Mesh3d::cube(4, l, 4));
        let q = 2.0;
        let alpha = 1.0;
        let ctr = [l / 2.0, l / 2.0, l / 2.0];
        let rho: Vec<f64> = (0..s.nnodes())
            .map(|n| {
                let c = s.node_coord(n);
                let r2 = (0..3).map(|d| (c[d] - ctr[d]).powi(2)).sum::<f64>();
                q * (alpha / PI).powf(1.5) * (-alpha * r2).exp()
            })
            .collect();
        let phi_exact = |c: [f64; 3]| -> f64 {
            let r = (0..3)
                .map(|d| (c[d] - ctr[d]).powi(2))
                .sum::<f64>()
                .sqrt()
                .max(1e-12);
            q * erf_approx(alpha.sqrt() * r) / r
        };
        let (phi, stats) = solve_poisson(&s, &rho, PoissonBc::Dirichlet(&phi_exact), 1e-12, 8000);
        assert!(stats.converged);
        // check at a probe point off the nodes
        let f = NodalField::from_values(&s, phi);
        for probe in [[5.0, 4.0, 4.0], [3.0, 3.0, 5.0]] {
            let got = f.eval(&s, probe);
            let want = phi_exact(probe);
            assert!(
                (got - want).abs() < 5e-3 * want.abs().max(0.1),
                "at {probe:?}: {got} vs {want}"
            );
        }
    }

    /// Abramowitz-Stegun 7.1.26 erf approximation (|err| < 1.5e-7).
    fn erf_approx(x: f64) -> f64 {
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let x = x.abs();
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let y = 1.0
            - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-x * x).exp();
        sign * y
    }
}
