//! Deterministic domain decomposition of an [`FeSpace`](crate::space::FeSpace)
//! into contiguous slabs of cells for distributed-memory solves.
//!
//! The decomposition is *derived*, not negotiated: every rank runs the same
//! pure function of `(FeSpace, nranks, rank)` over the space's precomputed
//! gather/scatter tables, so all ranks agree on ownership without any setup
//! communication and the partition is bit-reproducible across runs and
//! independent of thread scheduling (cells are stored x-fastest in a fixed
//! `cz/cy/cx` build order — see `FeSpace::new`).
//!
//! Ownership follows the **first-touch** rule: a DoF (or node) is owned by
//! the rank of the lowest-indexed cell that touches it. With contiguous cell
//! slabs this makes each rank's owned DoF set a union of "first seen here"
//! indices; shared interface DoFs belong to the lower rank and appear as
//! ghosts on the higher one — exactly the owner/ghost split of DFT-FE's
//! distributed triangulation.

use crate::space::FeSpace;

/// Contiguous cell range `[start, end)` assigned to one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellRange {
    /// First cell index owned by the rank.
    pub start: usize,
    /// One past the last cell index.
    pub end: usize,
}

impl CellRange {
    /// Number of cells in the slab.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the slab is empty (more ranks than cells).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Split `ncells` into `nranks` contiguous, near-equal slabs (the first
/// `ncells % nranks` ranks get one extra cell). Deterministic in its inputs.
pub fn partition_cells(ncells: usize, nranks: usize) -> Vec<CellRange> {
    assert!(nranks >= 1);
    let base = ncells / nranks;
    let extra = ncells % nranks;
    let mut ranges = Vec::with_capacity(nranks);
    let mut start = 0;
    for r in 0..nranks {
        let len = base + usize::from(r < extra);
        ranges.push(CellRange {
            start,
            end: start + len,
        });
        start += len;
    }
    debug_assert_eq!(start, ncells);
    ranges
}

/// Owner rank of every DoF under first-touch ownership: the rank whose slab
/// contains the lowest-indexed cell touching the DoF. Sequential scan in
/// cell order — deterministic by construction.
pub fn dof_owners(space: &FeSpace, ranges: &[CellRange]) -> Vec<u32> {
    let mut owner = vec![u32::MAX; space.ndofs()];
    assign_first_touch(
        space,
        ranges,
        |ci, _| {
            space
                .cell_dofs(ci)
                .iter()
                .filter_map(|&d| if d >= 0 { Some(d as usize) } else { None })
        },
        &mut owner,
    );
    owner
}

/// Owner rank of every FE node (including Dirichlet boundary nodes, which
/// carry no DoF but still contribute to nodal fields such as the density).
pub fn node_owners(space: &FeSpace, ranges: &[CellRange]) -> Vec<u32> {
    let mut owner = vec![u32::MAX; space.nnodes()];
    assign_first_touch(
        space,
        ranges,
        |ci, _| space.cell_nodes(ci).iter().map(|&n| n as usize),
        &mut owner,
    );
    owner
}

fn assign_first_touch<'a, I, F>(
    space: &'a FeSpace,
    ranges: &[CellRange],
    indices_of_cell: F,
    owner: &mut [u32],
) where
    I: Iterator<Item = usize> + 'a,
    F: Fn(usize, &'a FeSpace) -> I,
{
    for (r, range) in ranges.iter().enumerate() {
        for ci in range.start..range.end {
            for idx in indices_of_cell(ci, space) {
                if owner[idx] == u32::MAX {
                    owner[idx] = r as u32;
                }
            }
        }
    }
    debug_assert!(owner.iter().all(|&o| o != u32::MAX));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh3d;

    #[test]
    fn partition_is_contiguous_and_balanced() {
        for (ncells, nranks) in [(27, 4), (8, 8), (5, 8), (64, 1)] {
            let ranges = partition_cells(ncells, nranks);
            assert_eq!(ranges.len(), nranks);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[nranks - 1].end, ncells);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (*lens.iter().min().unwrap(), *lens.iter().max().unwrap());
            assert!(max - min <= 1, "slabs must be near-equal: {lens:?}");
        }
    }

    #[test]
    fn first_touch_owners_cover_everything_and_are_deterministic() {
        let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
        let ranges = partition_cells(space.cells().len(), 4);
        let d1 = dof_owners(&space, &ranges);
        let d2 = dof_owners(&space, &ranges);
        assert_eq!(d1, d2);
        assert!(d1.iter().all(|&o| (o as usize) < 4));
        let n1 = node_owners(&space, &ranges);
        assert!(n1.iter().all(|&o| (o as usize) < 4));
        // every rank owns at least one DoF on this mesh
        for r in 0..4u32 {
            assert!(d1.contains(&r), "rank {r} owns no DoFs");
        }
    }

    #[test]
    fn interface_dofs_belong_to_the_lower_rank() {
        let space = FeSpace::new(Mesh3d::cube(2, 4.0, 3));
        let ranges = partition_cells(space.cells().len(), 2);
        let owners = dof_owners(&space, &ranges);
        // a DoF touched by cells of both ranks must be owned by rank 0
        for ci in ranges[1].start..ranges[1].end {
            for &d in space.cell_dofs(ci) {
                if d < 0 {
                    continue;
                }
                let touched_by_r0 =
                    (ranges[0].start..ranges[0].end).any(|cj| space.cell_dofs(cj).contains(&d));
                if touched_by_r0 {
                    assert_eq!(owners[d as usize], 0);
                }
            }
        }
    }
}
