//! # dft-invdft
//!
//! The paper's **invDFT** module (Sec. 5.1): given a target electron
//! density `rho*` from a quantum many-body calculation, find the exact
//! exchange-correlation potential `v_xc(r)` whose Kohn-Sham ground state
//! reproduces it — "a powerful link between QMB methods and DFT" and an
//! open problem for 30 years because of Gaussian-basis ill-conditioning.
//!
//! Formulation (paper Eqs. 1-2): minimize the density mismatch
//!
//! ```text
//! J[v_xc] = 1/2 integral (rho_KS[v_xc] - rho*)^2 dV
//! ```
//!
//! subject to the KS eigenproblem. Each outer iteration:
//!
//! 1. solve the KS eigenproblem at the current `v_xc` (ChFES);
//! 2. build the adjoint right-hand sides
//!    `g_i = -2 f_i P_i^perp (delta_rho . psi_i)`;
//! 3. solve the shifted adjoint systems `(H - eps_i) p_i = g_i` with the
//!    **preconditioned block-MINRES** of Sec. 5.3.1 (inverse diagonal of
//!    the FE Laplacian as preconditioner — the paper reports ~5x fewer
//!    iterations from it, reproduced in this crate's tests);
//! 4. steepest-descent update `v_xc <- v_xc - beta u` with
//!    `u = sum_i p_i psi_i` (the paper's update field), with adaptive step
//!    control and an optional far-field `-1/r`-type boundary tether.
//!
//! The same FE ingredients that make the forward problem systematically
//! convergent make the inverse problem well-conditioned — the paper's
//! central methodological claim, demonstrated here by recovering a hidden
//! functional's potential from its density alone (DESIGN.md S2).

#![deny(unsafe_code)]
// indexed loops deliberately mirror the paper's subscript notation
#![allow(clippy::needless_range_loop)]

pub mod cusp;
pub mod invert;

pub use cusp::cusp_correct_density;
pub use invert::{invert, InvDftConfig, InvDftResult};
