//! Cusp correction of target densities.
//!
//! The paper mitigates Gaussian-basis artifacts in QMB densities by adding
//! a nuclear cusp correction near each nucleus (Sec. 5.1): exact densities
//! obey Kato's condition `d rho/dr |_0 = -2 Z rho(0)`, but Gaussian
//! expansions are flat at the nucleus. This module blends the exact
//! exponential short-range behaviour into a given density inside a small
//! ball around each nucleus, preserving the total charge by global
//! renormalization.

use dft_fem::field::NodalField;
use dft_fem::space::FeSpace;

/// Apply a Kato-cusp correction around each `(z, position)` nucleus within
/// radius `r_cusp`. Returns the corrected (renormalized) density.
pub fn cusp_correct_density(
    space: &FeSpace,
    rho: &NodalField,
    nuclei: &[(f64, [f64; 3])],
    r_cusp: f64,
) -> NodalField {
    let mut out = rho.values.clone();
    for &(z, pos) in nuclei {
        // density value at the blend radius (FE interpolation)
        for n in 0..space.nnodes() {
            let c = space.node_coord(n);
            let r = ((c[0] - pos[0]).powi(2) + (c[1] - pos[1]).powi(2) + (c[2] - pos[2]).powi(2))
                .sqrt();
            if r < r_cusp {
                // rho_cusp(r) = rho(r_cusp) * exp(-2 Z (r - r_cusp)) gives
                // the exact log-derivative -2Z; blend smoothly
                let edge = sample_radial(space, rho, pos, r_cusp);
                let cusp = edge * (-2.0 * z * (r - r_cusp)).exp();
                let t = r / r_cusp; // 0 at nucleus, 1 at the edge
                let blend = t * t * (3.0 - 2.0 * t); // smoothstep
                out[n] = blend * out[n] + (1.0 - blend) * cusp;
            }
        }
    }
    // renormalize total charge
    let q_old = space.integrate(&rho.values);
    let q_new = space.integrate(&out);
    if q_new > 1e-12 {
        let s = q_old / q_new;
        for v in out.iter_mut() {
            *v *= s;
        }
    }
    NodalField::from_values(space, out)
}

fn sample_radial(space: &FeSpace, rho: &NodalField, pos: [f64; 3], r: f64) -> f64 {
    // spherical average over a few directions
    let dirs = [
        [1.0, 0.0, 0.0],
        [-1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, -1.0, 0.0],
        [0.0, 0.0, 1.0],
        [0.0, 0.0, -1.0],
    ];
    let mut acc = 0.0;
    for d in dirs {
        let p = [pos[0] + r * d[0], pos[1] + r * d[1], pos[2] + r * d[2]];
        acc += rho.eval(space, p);
    }
    acc / dirs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fem::mesh::Mesh3d;

    #[test]
    fn cusp_preserves_charge_and_sharpens_center() {
        let space = FeSpace::new(Mesh3d::cube(3, 8.0, 4));
        let ctr = [4.0, 4.0, 4.0];
        // smooth (cuspless) Gaussian standing in for a Gaussian-basis density
        let rho = NodalField::from_fn(&space, |c| {
            let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
            (-0.8 * r2).exp()
        });
        let q0 = rho.integrate(&space);
        let fixed = cusp_correct_density(&space, &rho, &[(2.0, ctr)], 0.9);
        let q1 = fixed.integrate(&space);
        assert!(
            (q0 - q1).abs() < 1e-9 * q0,
            "charge preserved: {q0} vs {q1}"
        );
        // corrected density has larger value at the nucleus than the edge
        // value extrapolated flat (the cusp points up)
        let center = fixed.eval(&space, ctr);
        let edge = fixed.eval(&space, [4.0 + 0.9, 4.0, 4.0]);
        let flat_center = rho.eval(&space, ctr) / q0 * q1;
        assert!(center > flat_center, "cusp must sharpen the nucleus");
        assert!(center > edge);
    }

    #[test]
    fn log_derivative_near_kato_value() {
        let space = FeSpace::new(Mesh3d::cube(4, 8.0, 4));
        let ctr = [4.0, 4.0, 4.0];
        let z = 1.5;
        let rho = NodalField::from_fn(&space, |c| {
            let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
            (-0.5 * r2).exp()
        });
        let fixed = cusp_correct_density(&space, &rho, &[(z, ctr)], 1.0);
        // sample the corrected density along x inside the cusp region
        let (r1, r2) = (0.2, 0.4);
        let f1 = fixed.eval(&space, [4.0 + r1, 4.0, 4.0]);
        let f2 = fixed.eval(&space, [4.0 + r2, 4.0, 4.0]);
        let logder = (f2.ln() - f1.ln()) / (r2 - r1);
        assert!(
            (logder + 2.0 * z).abs() < 0.4 * 2.0 * z,
            "log-derivative {logder} vs Kato {}",
            -2.0 * z
        );
    }
}
