//! The PDE-constrained optimization loop of inverse DFT.

use dft_core::chebyshev::{chfes, lanczos_bounds, random_subspace, ChfesOptions};
use dft_core::hamiltonian::KsHamiltonian;
use dft_core::occupation::fermi_occupations;
use dft_core::system::AtomicSystem;
use dft_core::xc::{evaluate_xc, Lda};
use dft_fem::field::NodalField;
use dft_fem::mesh::BoundaryCondition;
use dft_fem::poisson::{solve_poisson, PoissonBc};
use dft_fem::space::FeSpace;
use dft_linalg::blas1;
use dft_linalg::iterative::{block_minres, DiagonalPrec};
use dft_linalg::matrix::Matrix;

/// Configuration of the inverse solve.
#[derive(Clone, Debug)]
pub struct InvDftConfig {
    /// Kohn-Sham states carried in the eigensolves.
    pub n_states: usize,
    /// Smearing temperature for the occupations (kept small; the paper
    /// works with gapped molecular systems).
    pub kt: f64,
    /// Outer optimization iterations.
    pub max_iter: usize,
    /// Initial steepest-descent step on `v_xc`.
    pub step: f64,
    /// Stop when `||rho_KS - rho*||_L2 / N_e` falls below this.
    pub tol: f64,
    /// Chebyshev degree per eigensolve cycle.
    pub cheb_degree: usize,
    /// ChFES cycles per outer iteration.
    pub eig_passes: usize,
    /// Relative tolerance of the block-MINRES adjoint solve.
    pub minres_tol: f64,
    /// Iteration cap of the adjoint solve.
    pub minres_max_iter: usize,
    /// Use the inverse-diagonal-Laplacian preconditioner (Sec. 5.3.1).
    pub precondition: bool,
    /// RNG seed.
    pub seed: u64,
    /// Print progress.
    pub verbose: bool,
}

impl Default for InvDftConfig {
    fn default() -> Self {
        Self {
            n_states: 6,
            kt: 0.005,
            max_iter: 80,
            step: 0.15,
            tol: 1e-4,
            cheb_degree: 35,
            eig_passes: 2,
            minres_tol: 1e-7,
            minres_max_iter: 400,
            precondition: true,
            seed: 7,
            verbose: false,
        }
    }
}

/// Outcome of the inverse solve.
pub struct InvDftResult {
    /// Recovered XC potential (nodal; defined up to a constant).
    pub vxc: Vec<f64>,
    /// Final Kohn-Sham density.
    pub rho_ks: NodalField,
    /// Density-mismatch history `||rho_KS - rho*|| / N_e` per iteration.
    pub history: Vec<f64>,
    /// Total MINRES iterations spent in adjoint solves.
    pub minres_iterations: usize,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
}

fn poisson_bc_of(space: &FeSpace) -> PoissonBc<'static> {
    let all_periodic = space
        .mesh
        .axes
        .iter()
        .all(|a| a.bc() == BoundaryCondition::Periodic);
    if all_periodic {
        PoissonBc::Periodic
    } else {
        PoissonBc::Dirichlet(&|_| 0.0)
    }
}

/// Recover `v_xc` from a target density.
///
/// The electrostatic part `v_N + v_H` is evaluated once from `rho*` (it is
/// an explicit density functional); only the XC potential is unknown.
pub fn invert(
    space: &FeSpace,
    system: &AtomicSystem,
    rho_target: &NodalField,
    cfg: &InvDftConfig,
) -> InvDftResult {
    let nd = space.ndofs();
    let n_el = system.n_electrons();
    let nn = space.nnodes();

    // fixed electrostatics of the target density
    let rho_ion = system.ion_density(space);
    let rho_charge: Vec<f64> = (0..nn).map(|i| rho_ion[i] - rho_target.values[i]).collect();
    let (phi, pst) = solve_poisson(space, &rho_charge, poisson_bc_of(space), 1e-10, 20000);
    assert!(pst.converged, "electrostatics of the target density failed");
    let v_fixed: Vec<f64> = phi.iter().map(|&p| -p).collect();

    // v_xc initialized from LDA of the target density (standard warm start)
    let lda = evaluate_xc(space, rho_target, &Lda);
    let mut vxc = lda.vxc;

    // adjoint preconditioner: inverse diagonal of the (orthonormalized)
    // FE Laplacian, floored to stay SPD
    let kdiag = space.stiffness_diagonal();
    let s = space.inv_sqrt_mass();
    let lap_diag: Vec<f64> = (0..nd)
        .map(|d| (0.5 * s[d] * s[d] * kdiag[d]).max(1e-3))
        .collect();
    let prec = DiagonalPrec::from_diagonal(&lap_diag);
    let identity_prec = dft_linalg::iterative::IdentityPrec;

    let mut psi = random_subspace::<f64>(nd, cfg.n_states, cfg.seed);
    let mut window: Option<(f64, f64)> = None;
    let mut history = Vec::new();
    let mut minres_iterations = 0;
    let mut converged = false;
    let mut iterations = 0;
    let mut step = cfg.step;
    let mut rho_ks_nodes = vec![0.0; nn];
    let mut best: Option<(f64, Vec<f64>)> = None;
    // Barzilai-Borwein state: previous control and previous gradient field
    let mut prev_v: Option<Vec<f64>> = None;
    let mut prev_g: Option<Vec<f64>> = None;

    for iter in 0..cfg.max_iter {
        iterations = iter + 1;
        // effective potential with the current v_xc
        let v_eff: Vec<f64> = (0..nn).map(|i| v_fixed[i] + vxc[i]).collect();
        let h = KsHamiltonian::<f64>::new(space, &v_eff, [1.0; 3]);
        let (tmin, tmax) = lanczos_bounds(&h, 10, cfg.seed + 1);
        let (mut a0, mut a) = window.unwrap_or((tmin - 1.0, tmin + 0.1 * (tmax - tmin)));
        a0 = a0.min(tmin - 1.0);
        a = a.clamp(a0 + 1e-3 * (tmax - a0), 0.9 * tmax);
        let opts = ChfesOptions {
            cheb_degree: cfg.cheb_degree,
            block_size: cfg.n_states,
            mixed_precision: false,
        };
        let passes = if iter == 0 {
            cfg.eig_passes + 3
        } else {
            cfg.eig_passes
        };
        let mut evals = vec![];
        for _ in 0..passes {
            evals = chfes(&h, &mut psi, (a0, a, tmax), &opts);
            let top = evals[cfg.n_states - 1];
            let spread = (top - evals[0]).max(0.1);
            a = (top + (2.0 * cfg.kt).max(spread / cfg.n_states as f64)).min(0.9 * tmax);
            a0 = evals[0] - 1.0;
        }
        window = Some((a0, a));

        // occupations and KS density
        let occ = fermi_occupations(&[evals.clone()], &[1.0], n_el, cfg.kt);
        rho_ks_nodes.fill(0.0);
        for i in 0..cfg.n_states {
            let f = occ.occupations[0][i];
            if f < 1e-12 {
                continue;
            }
            let col = psi.col(i);
            for d in 0..nd {
                rho_ks_nodes[space.node_of_dof(d)] += f * col[d] * col[d] * s[d] * s[d];
            }
        }

        // mismatch
        let diff2: Vec<f64> = (0..nn)
            .map(|i| (rho_ks_nodes[i] - rho_target.values[i]).powi(2))
            .collect();
        let resid = space.integrate(&diff2).sqrt() / n_el;
        history.push(resid);
        if cfg.verbose {
            println!("invDFT {iter:3}: |drho| = {resid:.4e}  step = {step:.3e}");
        }
        // step control: revert on significant regression
        match &best {
            Some((r_best, v_best)) if resid > 1.3 * r_best => {
                vxc = v_best.clone();
                step *= 0.5;
                window = None;
                if step < 1e-6 {
                    break;
                }
                continue;
            }
            _ => {}
        }
        if best.as_ref().is_none_or(|(r, _)| resid < *r) {
            best = Some((resid, vxc.clone()));
            step *= 1.05;
        }
        if resid < cfg.tol {
            converged = true;
            break;
        }

        // ---- adjoint solve: (H - eps_i) p_i = g_i ------------------------
        // delta_rho on dofs
        let drho_dof: Vec<f64> = (0..nd)
            .map(|d| rho_ks_nodes[space.node_of_dof(d)] - rho_target.values[space.node_of_dof(d)])
            .collect();
        // occupied states only
        let occ_idx: Vec<usize> = (0..cfg.n_states)
            .filter(|&i| occ.occupations[0][i] > 1e-8)
            .collect();
        let nb = occ_idx.len();
        let mut g = Matrix::<f64>::zeros(nd, nb);
        let mut shifts = vec![0.0; nb];
        for (bj, &i) in occ_idx.iter().enumerate() {
            let f = occ.occupations[0][i];
            shifts[bj] = evals[i];
            let pcol = psi.col(i);
            let gcol = g.col_mut(bj);
            for d in 0..nd {
                gcol[d] = -2.0 * f * drho_dof[d] * pcol[d];
            }
            // project out the psi_i component (keeps the singular shifted
            // system consistent)
            let overlap = blas1::dot(pcol, gcol);
            for d in 0..nd {
                gcol[d] -= overlap * pcol[d];
            }
        }
        let mut p = Matrix::<f64>::zeros(nd, nb);
        let stats = if cfg.precondition {
            block_minres(
                &h,
                &prec,
                &shifts,
                &g,
                &mut p,
                cfg.minres_tol,
                cfg.minres_max_iter,
            )
        } else {
            block_minres(
                &h,
                &identity_prec,
                &shifts,
                &g,
                &mut p,
                cfg.minres_tol,
                cfg.minres_max_iter,
            )
        };
        minres_iterations += stats.iterations;
        // re-project the adjoints orthogonal to their states
        for (bj, &i) in occ_idx.iter().enumerate() {
            let overlap = blas1::dot(psi.col(i), p.col(bj));
            let (pcol, psicol) = (p.col_mut(bj), psi.col(i));
            for d in 0..nd {
                pcol[d] -= overlap * psicol[d];
            }
        }

        // ---- update field u = sum_i p_i psi_i ---------------------------
        let mut u_dof = vec![0.0; nd];
        for (bj, &i) in occ_idx.iter().enumerate() {
            let pcol = p.col(bj);
            let psicol = psi.col(i);
            for d in 0..nd {
                u_dof[d] += pcol[d] * psicol[d];
            }
        }
        // u is built from the orthonormal-basis vectors, so componentwise
        // u_dof = M (p psi)_node; the real-space update field of the paper
        // (u(r) = sum p_i(r) psi_i(r)) is u_dof / M.
        let g_fn: Vec<f64> = (0..nd)
            .map(|d| u_dof[d] / space.mass_diag()[space.node_of_dof(d)])
            .collect();

        // Barzilai-Borwein step length (mass-weighted inner products),
        // safeguarded by the revert logic above. Plain steepest descent is
        // far too slow for this stiff inverse problem.
        if let (Some(pv), Some(pg)) = (&prev_v, &prev_g) {
            let mut sy = 0.0;
            let mut yy = 0.0;
            for d in 0..nd {
                let node = space.node_of_dof(d);
                let m = space.mass_diag()[node];
                let sd = vxc[node] - pv[d];
                let yd = g_fn[d] - pg[d];
                sy += m * sd * yd;
                yy += m * yd * yd;
            }
            if yy > 1e-300 {
                let bb = (sy / yy).abs();
                if bb.is_finite() && bb > 0.0 {
                    step = bb.clamp(0.05 * step, 50.0 * step).min(1e4);
                }
            }
        }
        prev_v = Some((0..nd).map(|d| vxc[space.node_of_dof(d)]).collect());
        prev_g = Some(g_fn.clone());

        // Interior nodes only — Dirichlet boundary values stay at their
        // far-field tether.
        for d in 0..nd {
            let node = space.node_of_dof(d);
            vxc[node] -= step * g_fn[d];
        }
    }

    if let Some((_, v_best)) = best {
        vxc = v_best;
    }
    InvDftResult {
        vxc,
        rho_ks: NodalField::from_values(space, rho_ks_nodes),
        history,
        minres_iterations,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_core::scf::{scf, KPoint, ScfConfig};
    use dft_core::system::{Atom, AtomKind};
    use dft_core::xc::{SyntheticTruth, XcFunctional};
    use dft_fem::mesh::{Axis, Mesh3d};

    fn setup() -> (FeSpace, AtomicSystem) {
        let l = 10.0;
        let c = l / 2.0;
        let ax = || Axis::graded(0.0, l, 0.6, 2.5, &[c], 2.5, BoundaryCondition::Dirichlet);
        let space = FeSpace::new(Mesh3d::new([ax(), ax(), ax()], 3));
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
            pos: [c, c, c],
        }]);
        (space, sys)
    }

    fn target_density(space: &FeSpace, sys: &AtomicSystem) -> (NodalField, Vec<f64>) {
        // "QMB" density: ground state of the hidden-truth functional
        let cfg = ScfConfig {
            n_states: 4,
            kt: 0.005,
            tol: 1e-7,
            max_iter: 40,
            cheb_degree: 35,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        };
        let r = scf(space, sys, &SyntheticTruth, &cfg, &[KPoint::gamma()]);
        assert!(
            r.converged,
            "truth SCF must converge: {:?}",
            r.residual_history
        );
        (r.density, r.vxc)
    }

    #[test]
    fn recovers_density_and_potential_of_hidden_truth() {
        let (space, sys) = setup();
        let (rho_star, vxc_truth) = target_density(&space, &sys);
        let cfg = InvDftConfig {
            n_states: 4,
            max_iter: 60,
            tol: 2e-4,
            ..InvDftConfig::default()
        };
        let r = invert(&space, &sys, &rho_star, &cfg);
        let first = r.history[0];
        let last = *r.history.last().unwrap();
        assert!(
            last < 0.05 * first,
            "mismatch should drop >20x: {first} -> {last} ({:?})",
            r.history.len()
        );

        // compare v_xc against the hidden truth where the density lives,
        // after aligning the (undetermined) constant with rho-weighted means
        let w: Vec<f64> = (0..space.nnodes())
            .map(|i| rho_star.values[i] * space.mass_diag()[i])
            .collect();
        let wsum: f64 = w.iter().sum();
        let mean =
            |v: &[f64]| -> f64 { v.iter().zip(&w).map(|(&a, &b)| a * b).sum::<f64>() / wsum };
        let m_rec = mean(&r.vxc);
        let m_tru = mean(&vxc_truth);
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..space.nnodes() {
            let d = (r.vxc[i] - m_rec) - (vxc_truth[i] - m_tru);
            num += w[i] * d * d;
            den += w[i] * (vxc_truth[i] - m_tru).powi(2);
        }
        let rel = (num / den.max(1e-300)).sqrt();
        assert!(rel < 0.35, "relative v_xc error {rel}");
    }

    #[test]
    fn preconditioner_reduces_minres_iterations() {
        // the paper's Sec. 5.3.1 claim (~5x fewer iterations); we assert a
        // material reduction on the same few outer steps
        let (space, sys) = setup();
        let (rho_star, _) = target_density(&space, &sys);
        let mk = |precondition: bool| InvDftConfig {
            n_states: 4,
            max_iter: 4,
            tol: 1e-12,
            precondition,
            ..InvDftConfig::default()
        };
        let with = invert(&space, &sys, &rho_star, &mk(true));
        let without = invert(&space, &sys, &rho_star, &mk(false));
        assert!(
            (with.minres_iterations as f64) < 0.6 * without.minres_iterations as f64,
            "preconditioned {} vs plain {}",
            with.minres_iterations,
            without.minres_iterations
        );
    }

    #[test]
    fn exact_lda_target_is_fixed_point() {
        // if the target comes from LDA and we also start from LDA of the
        // target, the initial mismatch is already small and stays small
        let (space, sys) = setup();
        let cfg_scf = ScfConfig {
            n_states: 4,
            kt: 0.005,
            tol: 1e-8,
            max_iter: 40,
            cheb_degree: 35,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        };
        let truth = scf(
            &space,
            &sys,
            &dft_core::xc::Lda,
            &cfg_scf,
            &[KPoint::gamma()],
        );
        assert!(truth.converged);
        let cfg = InvDftConfig {
            n_states: 4,
            max_iter: 10,
            tol: 1e-6,
            ..InvDftConfig::default()
        };
        let r = invert(&space, &sys, &truth.density, &cfg);
        // LDA vxc[rho*] is (nearly) the right answer; mismatch must be tiny
        // from the first iterations onward
        assert!(r.history[0] < 5e-3, "initial mismatch {}", r.history[0]);
        assert!(*r.history.last().unwrap() <= r.history[0] * 1.05);
        let _ = SyntheticTruth.name();
    }
}
