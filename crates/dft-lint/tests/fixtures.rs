//! Golden-file tests for the lint engine: every `tests/fixtures/<name>.rs`
//! sample is linted and its diagnostics compared against
//! `tests/fixtures/<name>.expected` (one `LINE:COL ID MESSAGE` per line;
//! an empty file means the fixture must lint clean).
//!
//! Regenerate goldens after an intentional change with
//! `UPDATE_EXPECTED=1 cargo test -p dft-lint --test fixtures`.

use dft_lint::{lint_source, Diagnostic, FileCtx};
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    paths
}

fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| format!("{}:{} {} {}\n", d.line, d.col, d.id, d.message))
        .collect()
}

fn lint_fixture(path: &Path) -> Vec<Diagnostic> {
    let src = fs::read_to_string(path).expect("read fixture");
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    // the context is a placeholder: every fixture pins its real crate/file
    // via its own `dftlint:fixture(...)` directive
    let ctx = FileCtx {
        crate_name: "fixture".into(),
        file_name: name.clone(),
        display: name,
    };
    lint_source(&ctx, &src)
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let paths = fixture_paths();
    assert!(
        paths.len() >= 8,
        "expected the full fixture set, found {}",
        paths.len()
    );
    let update = std::env::var_os("UPDATE_EXPECTED").is_some();
    for path in &paths {
        let got = render(&lint_fixture(path));
        let expected_path = path.with_extension("expected");
        if update {
            fs::write(&expected_path, &got).expect("write golden");
            continue;
        }
        let want = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "missing golden {} — run with UPDATE_EXPECTED=1 to create it",
                expected_path.display()
            )
        });
        assert_eq!(
            got,
            want,
            "diagnostics for {} diverge from the golden file",
            path.display()
        );
    }
}

/// Every lint ID is exercised by at least one fixture diagnostic.
#[test]
fn fixture_set_covers_every_lint_id() {
    let mut seen: Vec<&'static str> = Vec::new();
    for path in fixture_paths() {
        for d in lint_fixture(&path) {
            if !seen.contains(&d.id) {
                seen.push(d.id);
            }
        }
    }
    for id in [
        "L000", "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008",
    ] {
        assert!(seen.contains(&id), "no fixture exercises {id}");
    }
}

/// The tag-band disjointness prover rejects the deliberately overlapping
/// registry, and accepts the well-formed one.
#[test]
fn tag_band_prover_rejects_overlap() {
    let overlap = lint_fixture(&fixtures_dir().join("l003_overlap.rs"));
    assert!(
        overlap
            .iter()
            .any(|d| d.id == "L003" && d.message.contains("overlaps")),
        "overlap not caught: {overlap:?}"
    );
    let ok = lint_fixture(&fixtures_dir().join("l003_registry_ok.rs"));
    assert!(ok.is_empty(), "clean registry flagged: {ok:?}");
}

/// A missing or empty `reason` leaves the violation live and adds L000.
#[test]
fn malformed_suppressions_do_not_suppress() {
    let diags = lint_fixture(&fixtures_dir().join("suppression_errors.rs"));
    let l000 = diags.iter().filter(|d| d.id == "L000").count();
    let l001 = diags.iter().filter(|d| d.id == "L001").count();
    assert!(l000 >= 4, "directive errors undercounted: {diags:?}");
    assert_eq!(l001, 3, "a malformed allow must not suppress: {diags:?}");
}

/// The CLI exits nonzero (with `--deny-all`) on every violating fixture
/// and zero on the clean one, printing `file:line:col` diagnostics.
#[test]
fn cli_exit_codes_and_output() {
    let bin = env!("CARGO_BIN_EXE_dft-lint");
    for path in fixture_paths() {
        let has_diags = !lint_fixture(&path).is_empty();
        let out = std::process::Command::new(bin)
            .arg("--deny-all")
            .arg(&path)
            .output()
            .expect("run dft-lint");
        assert_eq!(
            out.status.success(),
            !has_diags,
            "wrong exit status for {}",
            path.display()
        );
        if has_diags {
            let stdout = String::from_utf8_lossy(&out.stdout);
            let name = path.file_name().unwrap().to_string_lossy();
            assert!(
                stdout.lines().all(|l| l.contains(name.as_ref())),
                "diagnostic lines must carry the file path: {stdout}"
            );
        }
    }
}

/// JSON output is well-formed enough for CI consumers: one object per
/// diagnostic with the five fields.
#[test]
fn cli_json_output() {
    let bin = env!("CARGO_BIN_EXE_dft-lint");
    let out = std::process::Command::new(bin)
        .arg("--json")
        .arg(fixtures_dir().join("l001_unwrap.rs"))
        .output()
        .expect("run dft-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let trimmed = stdout.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "{stdout}"
    );
    for key in [
        "\"file\":",
        "\"line\":",
        "\"col\":",
        "\"id\":\"L001\"",
        "\"message\":",
    ] {
        assert!(trimmed.contains(key), "missing {key} in {stdout}");
    }
}

/// The shipped tree itself is lint-clean — the same gate CI enforces.
#[test]
fn workspace_is_lint_clean() {
    let root = dft_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let diags = dft_lint::lint_workspace(&root).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        diags.len(),
        render(&diags)
    );
}
