// dftlint:fixture(crate="dft-hpc", file="mixer.rs")
// L004: float equality anywhere, hash containers in the deterministic
// reduction crates; tolerance comparisons and justified sentinels pass.

use std::collections::HashMap;

fn converged(delta: f64) -> bool {
    delta == 0.0
}

fn not_converged(delta: f64) -> bool {
    delta != 1.0e-8
}

fn negated(delta: f64) -> bool {
    delta == -0.5
}

fn tolerant(delta: f64) -> bool {
    delta.abs() < 1.0e-12
}

fn lookup(map: &HashMap<u32, f64>) -> usize {
    map.len()
}

// dftlint:allow(L004, reason="exact sentinel: the producer stores this literal, never a computed value")
fn sentinel(x: f64) -> bool {
    x == 5.0
}
