// dftlint:fixture(crate="dft-hpc", file="comm.rs")
// L003: a tag constant minted outside the TagBand registry must be
// flagged even when a valid registry exists alongside it.

pub const MAX_RANKS: u64 = 4000;
pub const COLLECTIVE_TAGS: (u64, u64) = (1 << 60, u64::MAX);

pub const BARRIER_BAND: TagBand = TagBand {
    name: "barrier",
    base: (1 << 60) + 1,
    width: 1,
    raw: true,
};

pub const TAG_BANDS: [TagBand; 1] = [BARRIER_BAND];

fn sneaky_exchange() -> u64 {
    const ROGUE_TAG: u64 = (1 << 60) + 42;
    ROGUE_TAG
}
