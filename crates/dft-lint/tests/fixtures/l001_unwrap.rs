// dftlint:fixture(crate="dft-hpc", file="solver.rs")
// L001: panic paths are banned in non-test code of the fault-tolerant
// crates; test modules and justified suppressions are exempt.

fn risky(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn message(r: Result<u32, String>) -> u32 {
    r.expect("boom")
}

fn explode() {
    panic!("no");
}

fn cant_happen() -> ! {
    unreachable!()
}

fn excused(x: Option<u32>) -> u32 {
    // dftlint:allow(L001, reason="prototype path retained for the profiler demo")
    x.unwrap()
}

fn trailing_excused(x: Option<u32>) -> u32 {
    x.unwrap() // dftlint:allow(L001, reason="caller validated x above")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_panics_are_fine() {
        None::<u32>.unwrap();
        panic!("tests may panic");
    }
}
