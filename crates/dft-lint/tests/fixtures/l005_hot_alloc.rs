// dftlint:fixture(crate="dft-linalg", file="kernels.rs")
// L005: allocation inside a `dftlint:hot` body; identical calls in cold
// functions are fine.

// dftlint:hot
fn microkernel(acc: &mut [f64], a: &[f64], b: &[f64]) {
    let mut tmp = Vec::new();
    let copied = a.to_vec();
    let doubled: Vec<f64> = b.iter().map(|x| x * 2.0).collect();
    let cloned = copied.clone();
    let stackish = vec![0.0; 8];
    tmp.extend_from_slice(&stackish);
    acc[0] = doubled[0] + cloned[0] + tmp[0];
}

fn cold_path(a: &[f64]) -> Vec<f64> {
    a.to_vec()
}
