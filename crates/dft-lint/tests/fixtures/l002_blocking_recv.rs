// dftlint:fixture(crate="dft-parallel", file="exchange.rs")
// L002: raw blocking receives are comm.rs-internal; everyone else must
// use the `_deadline` variants (shared collective deadline) or polling.

fn halo_pull(c: &mut ThreadComm, prev: usize) -> Result<Vec<u8>, CommError> {
    c.recv_bytes(prev, 7)
}

fn halo_floats(c: &mut ThreadComm, prev: usize) -> Result<Vec<f64>, CommError> {
    c.recv_f64(prev, 7, WirePrecision::Fp64)
}

fn deadline_ok(c: &mut ThreadComm, prev: usize, deadline: Instant) -> Result<Vec<u8>, CommError> {
    c.recv_bytes_deadline(prev, 7, deadline)
}

fn poll_ok(c: &mut ThreadComm, prev: usize) -> Result<Option<Vec<u8>>, CommError> {
    c.try_recv_bytes(prev, 7)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_block() {
        let got = comm().recv_bytes(0, 7);
        drop(got);
    }
}
