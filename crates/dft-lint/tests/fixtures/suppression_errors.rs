// dftlint:fixture(crate="dft-hpc", file="solver.rs")
// L000: malformed suppression directives are themselves diagnostics, and
// a malformed `allow` suppresses nothing.

// dftlint:allow(L001)
fn missing_reason(x: Option<u32>) -> u32 {
    x.unwrap()
}

// dftlint:allow(L001, reason="")
fn empty_reason(x: Option<u32>) -> u32 {
    x.unwrap()
}

// dftlint:allow(L999, reason="no such lint")
fn unknown_id(x: Option<u32>) -> u32 {
    x.unwrap()
}

// dftlint:frobnicate
fn unknown_directive() {}

// dftlint:hot
const NOT_A_FN: u32 = 3;
