// dftlint:fixture(crate="dft-hpc", file="comm.rs")
// L003: the prover must reject this registry — `rogue` sits inside
// `allreduce`'s wire interval.

pub const MAX_RANKS: u64 = 4000;
pub const COLLECTIVE_TAGS: (u64, u64) = (1 << 60, u64::MAX);

pub const ALLREDUCE_BAND: TagBand = TagBand {
    name: "allreduce",
    base: (1 << 60) + 1000,
    width: MAX_RANKS,
    raw: false,
};

pub const ROGUE_BAND: TagBand = TagBand {
    name: "rogue",
    base: (1 << 60) + 2000,
    width: 1,
    raw: false,
};

pub const TAG_BANDS: [TagBand; 2] = [ALLREDUCE_BAND, ROGUE_BAND];
