// dftlint:fixture(crate="dft-hpc", file="comm.rs")
//! L008: group collectives must derive their tags from one registered band.

pub const MAX_RANKS: u64 = 4000;
pub const COLLECTIVE_TAGS: (u64, u64) = (1 << 60, u64::MAX);

pub const GROUP_REDUCE_BAND: TagBand = TagBand {
    name: "group-reduce",
    base: (1 << 60) + 11000,
    width: MAX_RANKS,
    raw: false,
};

pub const KGROUP_BAND: TagBand = TagBand {
    name: "kgroup",
    base: (1 << 60) + 21000,
    width: MAX_RANKS,
    raw: false,
};

impl ThreadComm {
    /// Violation: a raw arithmetic tag in a group context escapes the
    /// registered band the L003 prover reasons about.
    pub fn group_bad_raw_tag(&mut self, members: &[usize]) -> Result<(), CommError> {
        let root = members[0];
        self.send_f64(root, 1152921504606846976 + self.rank as u64, &[0.0], WirePrecision::Fp64)?;
        Ok(())
    }

    /// Violation: mixing two bands inside one group collective breaks the
    /// one-context-one-band discipline.
    pub fn group_mixed_bands(&mut self, members: &[usize]) -> Result<(), CommError> {
        let root = members[0];
        self.send_f64(root, GROUP_REDUCE_BAND.for_rank(self.rank), &[0.0], WirePrecision::Fp64)?;
        let deadline = Instant::now() + self.timeout;
        let _v = self.recv_f64_deadline(root, KGROUP_BAND.for_rank(root), WirePrecision::Fp64, deadline)?;
        Ok(())
    }

    /// Clean: one band, `.for_rank(..)` / `.tag()` derivations only, also
    /// through a local binding.
    pub fn group_clean(&mut self, members: &[usize]) -> Result<(), CommError> {
        let root = members[0];
        let reply = GROUP_REDUCE_BAND.for_rank(root);
        self.send_f64(root, GROUP_REDUCE_BAND.for_rank(self.rank), &[0.0], WirePrecision::Fp64)?;
        let deadline = Instant::now() + self.timeout;
        let _v = self.recv_f64_deadline(root, reply, WirePrecision::Fp64, deadline)?;
        Ok(())
    }
}
