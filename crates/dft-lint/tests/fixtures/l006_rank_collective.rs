// dftlint:fixture(crate="dft-parallel", file="scf.rs")
//! L006: collectives under rank-dependent control flow.

/// Seeded violation: only rank 0 enters the allreduce — every other rank
/// blocks in it forever.
fn rank_conditional_collective(c: &mut ThreadComm, rank: usize) -> Result<(), CommError> {
    let mut v = [1.0];
    if rank == 0 {
        c.allreduce_sum_f64(&mut v, WirePrecision::Fp64)?;
    }
    Ok(())
}

/// Early exit between paired collectives: rank 0 can return before the
/// second barrier while its peers enter it.
fn early_return_between_collectives(c: &mut ThreadComm, rank: usize) -> Result<(), CommError> {
    c.barrier()?;
    if rank == 0 {
        save_checkpoint().map_err(to_comm)?;
    }
    c.barrier()?;
    Ok(())
}

/// The call-summary graph: `reduce_all` emits a collective transitively,
/// so calling it under a rank-dependent branch is the same bug.
fn reduce_all(c: &mut ThreadComm, v: &mut [f64]) -> Result<(), CommError> {
    c.allreduce_sum_f64(v, WirePrecision::Fp64)
}

fn rank_conditional_helper(c: &mut ThreadComm, my_rank: usize) -> Result<(), CommError> {
    let mut v = [0.0];
    if my_rank != 0 {
        reduce_all(c, &mut v)?;
    }
    Ok(())
}

/// Clean: both branches emit the same collective sequence, so every rank
/// issues the same calls regardless of the branch it takes.
fn same_sequence_both_branches(c: &mut ThreadComm, rank: usize) -> Result<(), CommError> {
    let mut v = [0.0];
    if rank == 0 {
        fill_root(&mut v);
        c.broadcast_f64(&mut v, WirePrecision::Fp64)?;
    } else {
        c.broadcast_f64(&mut v, WirePrecision::Fp64)?;
    }
    Ok(())
}

/// Clean: a rank-0 filesystem write involves no collectives and no early
/// exit — the canonical checkpoint-finalize shape.
fn rank_zero_fs_write(rank: usize, path: &Path) {
    if rank == 0 {
        let _ = std::fs::write(path, b"state");
    }
}

/// Suppressed: group collectives legitimately run on their members only.
fn group_root_reduce(c: &mut ThreadComm, rank: usize, roots: &[usize]) -> Result<(), CommError> {
    let mut v = [0.0];
    // dftlint:allow(L006, reason="only group roots are members of `roots`; every member runs the same sequence")
    if roots.contains(&rank) {
        c.group_allreduce_sum_f64(roots, &mut v, WirePrecision::Fp64)?;
    }
    Ok(())
}
