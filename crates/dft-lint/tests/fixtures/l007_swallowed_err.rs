// dftlint:fixture(crate="dft-parallel", file="relax.rs")
//! L007: CommError paths that never reach the poison cascade.

/// Swallowed with `let _ =`: the failure is invisible to the SCF loop.
fn swallow_with_let_underscore(c: &mut ThreadComm) {
    let mut v = [0.0];
    let _ = c.allreduce_sum_f64(&mut v, WirePrecision::Fp64);
}

/// Discarded with `.ok()` and `.unwrap_or_default()`.
fn swallow_with_ok(c: &mut ThreadComm) -> Option<Vec<f64>> {
    c.advance_epoch().ok();
    c.try_recv_f64(1, 7, WirePrecision::Fp64).unwrap_or_default()
}

/// A bare `continue` on the `Err` arm of a comm receive: the loop spins
/// on a poisoned communicator instead of surfacing the typed error.
fn swallow_with_continue(c: &mut ThreadComm, deadline: Instant) -> Result<(), ScfError> {
    loop {
        match c.recv_f64_deadline(0, 7, WirePrecision::Fp64, deadline) {
            Ok(v) => return use_payload(v),
            Err(_) => continue,
        }
    }
}

/// Clean: binding and observing the result keeps the poison visible.
fn observe_is_err(c: &mut ThreadComm) -> Result<(), CommError> {
    let r = c.barrier();
    if r.is_err() {
        return r;
    }
    Ok(())
}

/// Clean: `?` propagates the typed error.
fn propagate(c: &mut ThreadComm) -> Result<(), CommError> {
    let _ = c.try_recv_bytes(1, 7)?;
    Ok(())
}

/// Suppressed: a deliberate swallow whose failure is observed elsewhere.
fn deliberate_swallow(c: &mut ThreadComm) {
    let mut v = [0.0];
    // dftlint:allow(L007, reason="closure shape: the failed allreduce poisons the communicator and failure() is checked by the caller")
    let _ = c.allreduce_sum_f64(&mut v, WirePrecision::Fp64);
}
