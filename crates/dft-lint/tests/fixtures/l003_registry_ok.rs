// dftlint:fixture(crate="dft-hpc", file="comm.rs")
// L003: a well-formed registry — bands pairwise disjoint on the wire,
// rank-indexed bands exactly MAX_RANKS wide, everything inside
// COLLECTIVE_TAGS. Must produce no diagnostics.

pub const MAX_RANKS: u64 = 4000;
pub const COLLECTIVE_TAGS: (u64, u64) = (1 << 60, u64::MAX);

pub const BARRIER_BAND: TagBand = TagBand {
    name: "barrier",
    base: (1 << 60) + 1,
    width: 1,
    raw: true,
};

pub const ALLREDUCE_BAND: TagBand = TagBand {
    name: "allreduce",
    base: (1 << 60) + 1000,
    width: MAX_RANKS,
    raw: false,
};

pub const BROADCAST_BAND: TagBand = TagBand {
    name: "broadcast",
    base: (1 << 60) + 5000,
    width: 1,
    raw: false,
};

pub const TAG_BANDS: [TagBand; 3] = [BARRIER_BAND, ALLREDUCE_BAND, BROADCAST_BAND];

fn barrier_tag() -> u64 {
    BARRIER_BAND.tag()
}
