//! A tiny `u64` const-expression evaluator over lexed tokens, used by the
//! L003 wire-tag prover to compute `TagBand` bounds exactly as rustc would:
//! integer literals, named `u64` consts, `u64::MAX`, parentheses, and the
//! operators `* + - << >> |` with Rust precedence (shift binds *looser*
//! than `+`, so `(1 << 60) + 1000` needs — and has — its parentheses).

use crate::token::{Tok, TokKind};
use std::collections::BTreeMap;

/// Named constants visible to the evaluator.
pub type ConstEnv = BTreeMap<String, u64>;

struct P<'a> {
    toks: &'a [Tok],
    i: usize,
    env: &'a ConstEnv,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_op(op)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn primary(&mut self) -> Result<u64, String> {
        let t = self.peek().ok_or("unexpected end of expression")?.clone();
        match &t.kind {
            TokKind::Int(v) => {
                self.i += 1;
                u64::try_from(*v).map_err(|_| format!("literal `{}` exceeds u64", t.text))
            }
            TokKind::Op if t.text == "(" => {
                self.i += 1;
                let v = self.bitor()?;
                if !self.eat_op(")") {
                    return Err("expected `)`".into());
                }
                Ok(v)
            }
            TokKind::Ident => {
                self.i += 1;
                // `u64::MAX` (or any `<ty>::MAX`) path
                if self.eat_op("::") {
                    let field = self
                        .peek()
                        .ok_or("expected path segment after `::`")?
                        .clone();
                    self.i += 1;
                    return match (t.text.as_str(), field.text.as_str()) {
                        ("u64", "MAX") => Ok(u64::MAX),
                        ("u32", "MAX") => Ok(u64::from(u32::MAX)),
                        _ => Err(format!("unknown const path `{}::{}`", t.text, field.text)),
                    };
                }
                self.env
                    .get(&t.text)
                    .copied()
                    .ok_or(format!("unknown const `{}`", t.text))
            }
            _ => Err(format!("unexpected token `{}` in const expression", t.text)),
        }
    }

    fn mul(&mut self) -> Result<u64, String> {
        let mut v = self.primary()?;
        while self.eat_op("*") {
            let r = self.primary()?;
            v = v.checked_mul(r).ok_or("overflow in `*`")?;
        }
        Ok(v)
    }

    fn add(&mut self) -> Result<u64, String> {
        let mut v = self.mul()?;
        loop {
            if self.eat_op("+") {
                let r = self.mul()?;
                v = v.checked_add(r).ok_or("overflow in `+`")?;
            } else if self.eat_op("-") {
                let r = self.mul()?;
                v = v.checked_sub(r).ok_or("underflow in `-`")?;
            } else {
                return Ok(v);
            }
        }
    }

    fn shift(&mut self) -> Result<u64, String> {
        let mut v = self.add()?;
        loop {
            if self.eat_op("<<") {
                let r = self.add()?;
                let s = u32::try_from(r).map_err(|_| "shift amount exceeds u32")?;
                v = v
                    .checked_shl(s)
                    .filter(|_| s < 64)
                    .ok_or("overflow in `<<`")?;
            } else if self.eat_op(">>") {
                let r = self.add()?;
                let s = u32::try_from(r).map_err(|_| "shift amount exceeds u32")?;
                v = v.checked_shr(s).ok_or("overflow in `>>`")?;
            } else {
                return Ok(v);
            }
        }
    }

    fn bitor(&mut self) -> Result<u64, String> {
        let mut v = self.shift()?;
        while self.eat_op("|") {
            let r = self.shift()?;
            v |= r;
        }
        Ok(v)
    }
}

/// Evaluate the token slice as one complete `u64` expression.
pub fn eval(toks: &[Tok], env: &ConstEnv) -> Result<u64, String> {
    let mut p = P { toks, i: 0, env };
    let v = p.bitor()?;
    if p.i != toks.len() {
        return Err(format!(
            "trailing token `{}` in const expression",
            p.toks[p.i].text
        ));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn ev(src: &str, env: &ConstEnv) -> Result<u64, String> {
        eval(&tokenize(src).0, env)
    }

    #[test]
    fn rust_precedence_shift_binds_looser_than_add() {
        let env = ConstEnv::new();
        // in Rust, `1 << 2 + 3` is `1 << 5`
        assert_eq!(ev("1 << 2 + 3", &env), Ok(32));
        assert_eq!(ev("(1 << 60) + 1000", &env), Ok((1u64 << 60) + 1000));
        assert_eq!(ev("2 * 3 + 4", &env), Ok(10));
    }

    #[test]
    fn idents_and_paths_resolve() {
        let mut env = ConstEnv::new();
        env.insert("MAX_RANKS".into(), 4000);
        assert_eq!(
            ev("(1 << 60) + MAX_RANKS * 2", &env),
            Ok((1u64 << 60) + 8000)
        );
        assert_eq!(ev("u64::MAX", &env), Ok(u64::MAX));
        assert!(ev("UNKNOWN", &env).is_err());
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        let env = ConstEnv::new();
        assert!(ev("1 << 64", &env).is_err());
        assert!(ev("u64::MAX + 1", &env).is_err());
    }
}
