//! A hand-rolled Rust lexer: just enough token structure for the project
//! lints. Strings, chars, lifetimes, raw strings, nested block comments,
//! and numeric literals are recognized so that lint patterns never match
//! inside literal or comment text; everything else becomes identifier or
//! operator tokens with exact `line:col` positions.

/// Token classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal with its parsed value (suffix/underscores stripped;
    /// saturates at `u128::MAX` on overflow, which is already far outside
    /// any valid wire tag).
    Int(u128),
    /// Float literal (has a fractional part, an exponent, or an `f32`/`f64`
    /// suffix).
    Float,
    /// String literal (regular, raw, or byte).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator / punctuation; `text` holds the exact spelling (maximal
    /// munch: `==`, `!=`, `<<`, `::`, ... are single tokens).
    Op,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Exact source text (for idents/ops; literals keep their raw spelling).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
}

impl Tok {
    /// True if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is the operator `s`.
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokKind::Op && self.text == s
    }
}

/// One line comment (`//`, `///`, `//!`), with the text after the first
/// `//` and the position of the first slash. Block comments are skipped:
/// lint directives live in line comments only.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after the leading `//` (doc-comment slashes included).
    pub text: String,
    /// 1-based line of the `//`.
    pub line: u32,
    /// 1-based column of the `//`.
    pub col: u32,
}

struct Lexer<'a> {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    src: std::marker::PhantomData<&'a str>,
}

/// Multi-char operators, longest first (maximal munch).
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(k, c)| self.peek(k) == Some(c))
    }

    /// Consume a `"..."` body (opening quote already consumed), returning
    /// the raw contents (escapes unprocessed).
    fn eat_string_body(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    s.push(c);
                    if let Some(e) = self.bump() {
                        s.push(e);
                    }
                }
                '"' => return s,
                _ => s.push(c),
            }
        }
        s
    }

    /// Consume a raw string `r##"..."##` starting at the `r` (or after a
    /// `b`); returns false if this is not actually a raw string opener.
    fn try_eat_raw_string(&mut self) -> bool {
        // at self.i: 'r', then zero or more '#', then '"'
        let mut k = 1;
        let mut hashes = 0;
        while self.peek(k) == Some('#') {
            hashes += 1;
            k += 1;
        }
        if self.peek(k) != Some('"') {
            return false;
        }
        for _ in 0..=k {
            self.bump(); // r, #*, "
        }
        // scan for `"` followed by `hashes` '#'
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(h) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return true;
                }
            }
        }
        true
    }
}

/// Lex `src` into tokens plus line comments.
pub fn tokenize(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    let mut comments = Vec::new();

    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        // whitespace
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        // line comment
        if c == '/' && lx.peek(1) == Some('/') {
            lx.bump();
            lx.bump();
            let mut text = String::new();
            while let Some(ch) = lx.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                lx.bump();
            }
            comments.push(Comment { text, line, col });
            continue;
        }
        // nested block comment
        if c == '/' && lx.peek(1) == Some('*') {
            lx.bump();
            lx.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (lx.peek(0), lx.peek(1)) {
                    (Some('/'), Some('*')) => {
                        lx.bump();
                        lx.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        lx.bump();
                        lx.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        lx.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // raw / byte strings: r"..", r#".."#, br"..", b".."
        if c == 'r'
            && (lx.peek(1) == Some('"') || lx.peek(1) == Some('#'))
            && lx.try_eat_raw_string()
        {
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
                col,
            });
            continue;
        }
        if c == 'b' {
            if lx.peek(1) == Some('"') {
                lx.bump();
                lx.bump();
                let body = lx.eat_string_body();
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: body,
                    line,
                    col,
                });
                continue;
            }
            if lx.peek(1) == Some('r') && (lx.peek(2) == Some('"') || lx.peek(2) == Some('#')) {
                lx.bump(); // b
                if lx.try_eat_raw_string() {
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                        col,
                    });
                    continue;
                }
            }
            if lx.peek(1) == Some('\'') {
                lx.bump(); // b
                lx.bump(); // '
                if lx.peek(0) == Some('\\') {
                    lx.bump();
                    lx.bump();
                } else {
                    lx.bump();
                }
                lx.bump(); // closing '
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                    col,
                });
                continue;
            }
        }
        // string literal
        if c == '"' {
            lx.bump();
            let body = lx.eat_string_body();
            toks.push(Tok {
                kind: TokKind::Str,
                text: body,
                line,
                col,
            });
            continue;
        }
        // char literal vs lifetime
        if c == '\'' {
            let is_char = match lx.peek(1) {
                Some('\\') => true,
                Some(ch) if ch != '\'' => lx.peek(2) == Some('\''),
                _ => false,
            };
            if is_char {
                lx.bump(); // '
                if lx.peek(0) == Some('\\') {
                    lx.bump();
                    // escape body: consume until closing quote (handles \u{..})
                    while let Some(ch) = lx.peek(0) {
                        lx.bump();
                        if ch == '\'' {
                            break;
                        }
                    }
                } else {
                    lx.bump();
                    lx.bump(); // closing '
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                    col,
                });
            } else {
                lx.bump(); // '
                let mut text = String::from("'");
                while let Some(ch) = lx.peek(0) {
                    if ch.is_alphanumeric() || ch == '_' {
                        text.push(ch);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            }
            continue;
        }
        // number
        if c.is_ascii_digit() {
            let mut text = String::new();
            let mut is_float = false;
            let radix_prefix =
                c == '0' && matches!(lx.peek(1), Some('x') | Some('o') | Some('b') | Some('X'));
            if radix_prefix {
                text.push(lx.bump().unwrap_or('0'));
                text.push(lx.bump().unwrap_or('x'));
                while let Some(ch) = lx.peek(0) {
                    if ch.is_ascii_hexdigit() || ch == '_' {
                        text.push(ch);
                        lx.bump();
                    } else {
                        break;
                    }
                }
            } else {
                while let Some(ch) = lx.peek(0) {
                    if ch.is_ascii_digit() || ch == '_' {
                        text.push(ch);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                // fractional part: `.` followed by a digit (so `0..n` and
                // `1.max(..)` stay integers)
                if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    is_float = true;
                    text.push('.');
                    lx.bump();
                    while let Some(ch) = lx.peek(0) {
                        if ch.is_ascii_digit() || ch == '_' {
                            text.push(ch);
                            lx.bump();
                        } else {
                            break;
                        }
                    }
                } else if lx.peek(0) == Some('.')
                    && lx
                        .peek(1)
                        .is_none_or(|ch| !ch.is_alphabetic() && ch != '.' && ch != '_')
                {
                    // trailing-dot float like `1.`
                    is_float = true;
                    text.push('.');
                    lx.bump();
                }
                // exponent
                if matches!(lx.peek(0), Some('e') | Some('E')) {
                    let sign = matches!(lx.peek(1), Some('+') | Some('-'));
                    let digit_at = if sign { 2 } else { 1 };
                    if lx.peek(digit_at).is_some_and(|d| d.is_ascii_digit()) {
                        is_float = true;
                        text.push(lx.bump().unwrap_or('e'));
                        if sign {
                            text.push(lx.bump().unwrap_or('+'));
                        }
                        while let Some(ch) = lx.peek(0) {
                            if ch.is_ascii_digit() || ch == '_' {
                                text.push(ch);
                                lx.bump();
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
            // suffix (u64, usize, f64, ...)
            let mut suffix = String::new();
            while let Some(ch) = lx.peek(0) {
                if ch.is_alphanumeric() || ch == '_' {
                    suffix.push(ch);
                    lx.bump();
                } else {
                    break;
                }
            }
            if suffix.starts_with("f32") || suffix.starts_with("f64") {
                is_float = true;
            }
            let kind = if is_float {
                TokKind::Float
            } else {
                let digits: String = text.chars().filter(|&ch| ch != '_').collect();
                let value =
                    if let Some(hex) = digits.strip_prefix("0x").or(digits.strip_prefix("0X")) {
                        u128::from_str_radix(hex, 16)
                    } else if let Some(oct) = digits.strip_prefix("0o") {
                        u128::from_str_radix(oct, 8)
                    } else if let Some(bin) = digits.strip_prefix("0b") {
                        u128::from_str_radix(bin, 2)
                    } else {
                        digits.parse::<u128>()
                    };
                TokKind::Int(value.unwrap_or(u128::MAX))
            };
            toks.push(Tok {
                kind,
                text,
                line,
                col,
            });
            continue;
        }
        // identifier / keyword
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while let Some(ch) = lx.peek(0) {
                if ch.is_alphanumeric() || ch == '_' {
                    text.push(ch);
                    lx.bump();
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        // operators: maximal munch
        let mut matched = false;
        for op in OPS {
            if lx.starts_with(op) {
                for _ in 0..op.len() {
                    lx.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Op,
                    text: (*op).to_string(),
                    line,
                    col,
                });
                matched = true;
                break;
            }
        }
        if !matched {
            lx.bump();
            toks.push(Tok {
                kind: TokKind::Op,
                text: c.to_string(),
                line,
                col,
            });
        }
    }
    (toks, comments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).0.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_classify_correctly() {
        assert_eq!(kinds("42"), vec![TokKind::Int(42)]);
        assert_eq!(kinds("0x10"), vec![TokKind::Int(16)]);
        assert_eq!(kinds("1_000u64"), vec![TokKind::Int(1000)]);
        assert_eq!(kinds("1.5"), vec![TokKind::Float]);
        assert_eq!(kinds("1e-3"), vec![TokKind::Float]);
        assert_eq!(kinds("2f64"), vec![TokKind::Float]);
    }

    #[test]
    fn range_and_method_on_int_stay_integers() {
        let t = tokenize("0..n").0;
        assert_eq!(t[0].kind, TokKind::Int(0));
        assert!(t[1].is_op(".."));
        let t = tokenize("1.max(x)").0;
        assert_eq!(t[0].kind, TokKind::Int(1));
        assert!(t[1].is_op("."));
    }

    #[test]
    fn strings_and_chars_hide_their_contents() {
        let (t, _) = tokenize(r#"let s = "a.unwrap() == 0.0"; let c = '"'; let l: &'a str;"#);
        assert!(!t.iter().any(|x| x.is_ident("unwrap")));
        assert!(t.iter().any(|x| x.kind == TokKind::Char));
        assert!(t
            .iter()
            .any(|x| x.kind == TokKind::Lifetime && x.text == "'a"));
    }

    #[test]
    fn raw_strings_and_block_comments_skip() {
        let (t, c) = tokenize("r#\"panic!()\"# /* vec![ /* nested */ ] */ x // tail");
        assert!(!t.iter().any(|x| x.is_ident("panic") || x.is_ident("vec")));
        assert!(t.iter().any(|x| x.is_ident("x")));
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].text, " tail");
    }

    #[test]
    fn operators_munch_maximally() {
        let t = tokenize("a == b != c << 2 :: d").0;
        let ops: Vec<&str> = t
            .iter()
            .filter(|x| x.kind == TokKind::Op)
            .map(|x| x.text.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "<<", "::"]);
    }

    #[test]
    fn positions_are_one_based() {
        let t = tokenize("a\n  bb").0;
        assert_eq!((t[0].line, t[0].col), (1, 1));
        assert_eq!((t[1].line, t[1].col), (2, 3));
    }
}
