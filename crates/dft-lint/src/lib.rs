//! `dft-lint`: project-invariant static analysis for the dft-fe-mlxc
//! workspace.
//!
//! The distributed ChFES/SCF stack (PRs 3–4) rests on conventions that
//! rustc cannot check: no panic paths in fault-tolerant code, no blocking
//! receive without a deadline, wire-tag bands that never collide, bitwise
//! reproducible reductions, and allocation-free hot kernels. This crate
//! turns each convention into a machine-checked lint with a stable ID:
//!
//! | ID   | Invariant |
//! |------|-----------|
//! | L001 | no `unwrap`/`expect`/`panic!`/`unreachable!` in non-test code of `dft-hpc`/`dft-parallel`/`dft-serve` (failures must surface as `CommError`/`ScfError`/`JobStatus::Failed`) |
//! | L002 | no raw blocking receive (`recv_bytes`/`recv_f64`) outside `comm.rs` internals — use the `_deadline` or `try_` variants |
//! | L003 | every wire tag in `comm.rs` comes from the declared `TagBand` registry, and the declared bands are statically proven pairwise disjoint, bounded by `MAX_RANKS`, and inside `COLLECTIVE_TAGS` |
//! | L004 | determinism: no `==`/`!=` on float expressions (workspace-wide), no `HashMap`/`HashSet` in the deterministic reduction crates `dft-hpc`/`dft-parallel` |
//! | L005 | no allocation (`Vec::new`, `vec![`, `.collect()`, `.clone()`, `.to_vec()`) inside functions marked `dftlint:hot` on the preceding line |
//! | L006 | SPMD collective ordering: no collective under rank-dependent control flow with divergent per-branch sequences, no early exit (`return`/`?`/`break`/`continue`) in a rank-dependent branch when collectives follow — resolved through a workspace call-summary graph |
//! | L007 | poison safety: a `CommError` is never swallowed (`let _ =`, `.ok()`, `.unwrap_or*()`, `Err(_) => continue`/`{}`) — it must reach the poison cascade or a typed error |
//! | L008 | group-collective tag discipline in `comm.rs`: every `group_*` point-to-point tag derives from exactly one registered `TagBand` (`BAND.for_rank(..)`/`BAND.tag()`), whose bounds the L003 const-evaluator proves |
//!
//! A violation can be suppressed — with a mandatory justification — by a
//! line comment on the same or the preceding line:
//!
//! ```text
//! // dftlint:allow(L001, reason="chunks_exact(8) guarantees 8-byte slices")
//! ```
//!
//! An `allow` with a missing/empty reason or an unknown lint ID is itself
//! reported as `L000`. Fixture files may pin their lint context with
//! `dftlint:fixture(crate="dft-hpc", file="comm.rs")` as the first comment.

pub mod expr;
pub mod flow;
pub mod token;

use expr::ConstEnv;
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use token::{tokenize, Comment, Tok, TokKind};

/// One lint finding at an exact source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Display path of the offending file (workspace-relative when walked).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable lint ID (`L000`..`L008`).
    pub id: &'static str,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.file, self.line, self.col, self.id, self.message
        )
    }
}

/// Lint context for one file: which crate it belongs to and its file name
/// (several lints are scoped per crate or per file).
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace crate name (e.g. `dft-hpc`), or `fixture` for test inputs.
    pub crate_name: String,
    /// Bare file name (e.g. `comm.rs`).
    pub file_name: String,
    /// Path used in diagnostics.
    pub display: String,
}

/// Crates whose non-test code must stay panic-free (L001) and
/// `HashMap`-free (L004): the fault-tolerant distributed stack.
const FAULT_TOLERANT_CRATES: &[&str] = &["dft-hpc", "dft-parallel", "dft-serve"];

/// All known lint IDs (for `allow` validation and `--summary` buckets).
pub const LINT_IDS: &[&str] = &[
    "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008",
];

// ---------------------------------------------------------------------------
// Directives (parsed from line comments)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Allow {
    id: String,
    /// Line the suppression applies to (same line for trailing comments,
    /// next code line for own-line comments).
    target_line: u32,
}

#[derive(Debug)]
struct Directives {
    fixture: Option<(String, String)>,
    allows: Vec<Allow>,
    /// Lines of `dftlint:hot` markers.
    hot_lines: Vec<(u32, u32)>,
    /// Malformed-directive findings (L000).
    errors: Vec<(u32, u32, String)>,
}

/// Extract `key="value"` from a directive argument list.
fn directive_value<'a>(args: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("{key}=\"");
    let start = args.find(&pat)? + pat.len();
    let rest = &args[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn parse_directives(comments: &[Comment], toks: &[Tok]) -> Directives {
    let mut d = Directives {
        fixture: None,
        allows: Vec::new(),
        hot_lines: Vec::new(),
        errors: Vec::new(),
    };
    for c in comments {
        let text = c.text.trim_start();
        let Some(rest) = text.strip_prefix("dftlint:") else {
            continue;
        };
        if rest.starts_with("hot") {
            d.hot_lines.push((c.line, c.col));
        } else if let Some(args) = rest.strip_prefix("allow(") {
            // close at the LAST `)`: the reason string may contain parens
            let Some(close) = args.rfind(')') else {
                d.errors
                    .push((c.line, c.col, "unclosed `dftlint:allow(`".into()));
                continue;
            };
            let args = &args[..close];
            let id = args
                .split([',', ')'])
                .next()
                .unwrap_or("")
                .trim()
                .to_string();
            if !LINT_IDS.contains(&id.as_str()) {
                d.errors.push((
                    c.line,
                    c.col,
                    format!("`dftlint:allow` names unknown lint ID `{id}`"),
                ));
                continue;
            }
            match directive_value(args, "reason") {
                Some(r) if !r.trim().is_empty() => {
                    let target_line = allow_target_line(c, toks);
                    d.allows.push(Allow { id, target_line });
                }
                Some(_) => d.errors.push((
                    c.line,
                    c.col,
                    format!("`dftlint:allow({id})` has an empty reason — justify the suppression"),
                )),
                None => d.errors.push((
                    c.line,
                    c.col,
                    format!(
                        "`dftlint:allow({id})` is missing the mandatory `reason=\"...\"` argument"
                    ),
                )),
            }
        } else if let Some(args) = rest.strip_prefix("fixture(") {
            let args = args.split(')').next().unwrap_or("");
            match (
                directive_value(args, "crate"),
                directive_value(args, "file"),
            ) {
                (Some(k), Some(f)) => d.fixture = Some((k.to_string(), f.to_string())),
                _ => d.errors.push((
                    c.line,
                    c.col,
                    "`dftlint:fixture` needs both `crate=\"..\"` and `file=\"..\"`".into(),
                )),
            }
        } else {
            d.errors.push((
                c.line,
                c.col,
                format!(
                    "unknown dftlint directive `{}` (expected allow/hot/fixture)",
                    rest.split(['(', ' ']).next().unwrap_or(rest)
                ),
            ));
        }
    }
    d
}

/// The line an `allow` comment suppresses: its own line when code precedes
/// it (trailing comment), otherwise the next line holding any token.
fn allow_target_line(c: &Comment, toks: &[Tok]) -> u32 {
    let trailing = toks.iter().any(|t| t.line == c.line && t.col < c.col);
    if trailing {
        return c.line;
    }
    toks.iter()
        .map(|t| t.line)
        .filter(|&l| l > c.line)
        .min()
        .unwrap_or(c.line)
}

// ---------------------------------------------------------------------------
// Structural regions
// ---------------------------------------------------------------------------

/// Half-open token-index ranges.
type Regions = Vec<(usize, usize)>;

fn in_regions(regions: &Regions, i: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= i && i < b)
}

/// Index of the `}` matching the `{` at `open`, or the end of the stream.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_op("{") {
            depth += 1;
        } else if t.is_op("}") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len() - 1
}

/// True if the attribute token slice (between `[` and `]`) marks test-only
/// code: `#[test]` or any `#[cfg(...)]` whose condition mentions `test`
/// outside a `not(..)`.
fn attr_is_test(attr: &[Tok]) -> bool {
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    if !attr.first().is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    for (k, t) in attr.iter().enumerate() {
        if t.is_ident("test") {
            let negated = k >= 2 && attr[k - 2].is_ident("not") && attr[k - 1].is_op("(");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Token ranges of items under `#[test]` / `#[cfg(test)]` (and stacked
/// attributes), i.e. code exempt from the non-test lints.
fn test_regions(toks: &[Tok]) -> Regions {
    let mut regions = Regions::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_op("#") && toks[i + 1].is_op("[")) {
            i += 1;
            continue;
        }
        // find the matching `]`
        let mut depth = 0usize;
        let mut close = i + 1;
        for (k, t) in toks.iter().enumerate().skip(i + 1) {
            if t.is_op("[") {
                depth += 1;
            } else if t.is_op("]") {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
        }
        if !attr_is_test(&toks[i + 2..close]) {
            i = close + 1;
            continue;
        }
        // skip any further attributes, then span the item body
        let mut j = close + 1;
        while j + 1 < toks.len() && toks[j].is_op("#") && toks[j + 1].is_op("[") {
            let mut depth = 0usize;
            let mut k = j + 1;
            while k < toks.len() {
                if toks[k].is_op("[") {
                    depth += 1;
                } else if toks[k].is_op("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        // item body: first `{` before a top-level `;`
        let mut k = j;
        let mut body = None;
        while k < toks.len() {
            if toks[k].is_op("{") {
                body = Some(k);
                break;
            }
            if toks[k].is_op(";") {
                break;
            }
            k += 1;
        }
        match body {
            Some(open) => {
                let end = matching_brace(toks, open);
                regions.push((i, end + 1));
                i = end + 1;
            }
            None => i = k + 1,
        }
    }
    regions
}

/// A function whose body is marked `dftlint:hot`.
#[derive(Debug)]
struct HotFn {
    name: String,
    body: (usize, usize),
}

fn hot_functions(
    hot_lines: &[(u32, u32)],
    toks: &[Tok],
    errors: &mut Vec<(u32, u32, String)>,
) -> Vec<HotFn> {
    let mut out = Vec::new();
    for &(line, col) in hot_lines {
        let fn_idx = toks
            .iter()
            .position(|t| t.is_ident("fn") && (t.line > line || (t.line == line && t.col > col)));
        let Some(fi) = fn_idx else {
            errors.push((
                line,
                col,
                "`dftlint:hot` does not precede a function".into(),
            ));
            continue;
        };
        let name = toks
            .get(fi + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_else(|| "?".into());
        let mut k = fi;
        let mut open = None;
        while k < toks.len() {
            if toks[k].is_op("{") {
                open = Some(k);
                break;
            }
            if toks[k].is_op(";") {
                break;
            }
            k += 1;
        }
        let Some(open) = open else {
            errors.push((
                line,
                col,
                format!("`dftlint:hot` marks bodiless function `{name}`"),
            ));
            continue;
        };
        let end = matching_brace(toks, open);
        out.push(HotFn {
            name,
            body: (open, end + 1),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// L003: the wire-tag band prover
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Band {
    name: String,
    base: u64,
    width: u64,
    raw: bool,
    line: u32,
    col: u32,
}

impl Band {
    /// The half-open interval of wire tags this band can emit: raw bands
    /// hit the wire unshifted, framed bands pass through the precision
    /// encoding `tag << 1 | precision_bit`.
    fn wire_range(&self) -> Option<(u64, u64)> {
        let hi = self.base.checked_add(self.width)?;
        if self.raw {
            Some((self.base, hi))
        } else {
            Some((self.base.checked_shl(1)?, hi.checked_shl(1)?))
        }
    }
}

#[derive(Debug)]
struct ConstItem {
    name: String,
    /// Token range of the whole `const .. ;` item.
    span: (usize, usize),
    /// Token range of the right-hand side (after `=`, before `;`).
    rhs: (usize, usize),
}

/// Scan `const NAME: Ty = rhs;` items (module- or fn-local; `const fn` and
/// `*const` are skipped).
fn const_items(toks: &[Tok]) -> Vec<ConstItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_const_kw = toks[i].is_ident("const")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && !toks[i + 1].is_ident("fn")
            && (i == 0 || !toks[i - 1].is_op("*"));
        if !is_const_kw {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        // find `=` at delimiter depth 0
        let mut depth = 0i64;
        let mut j = i + 2;
        let mut eq = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Op {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 => {
                        eq = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i += 1;
            continue;
        };
        // rhs until `;` at depth 0
        let mut depth = 0i64;
        let mut k = eq + 1;
        let mut semi = toks.len();
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Op {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => {
                        semi = k;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        out.push(ConstItem {
            name,
            span: (i, semi + 1),
            rhs: (eq + 1, semi),
        });
        i = semi + 1;
    }
    out
}

/// Split a token range on top-level commas.
pub(crate) fn split_top_level(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut parts = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (k, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Op {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    parts.push((start, k));
                    start = k + 1;
                }
                _ => {}
            }
        }
    }
    parts.push((start, toks.len()));
    parts
}

/// Parse every `TagBand { name: "..", base: .., width: .., raw: .. }`
/// struct literal in the token stream.
fn tag_band_literals(
    toks: &[Tok],
    env: &ConstEnv,
    diags: &mut Vec<(u32, u32, String)>,
) -> Vec<Band> {
    let mut bands = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_ident("TagBand") && toks[i + 1].is_op("{")) {
            i += 1;
            continue;
        }
        // `struct TagBand { .. }` / `impl TagBand { .. }` are the type's
        // definition, not a band literal
        if i > 0
            && (toks[i - 1].is_ident("struct")
                || toks[i - 1].is_ident("impl")
                || toks[i - 1].is_ident("for"))
        {
            let close = matching_brace(toks, i + 1);
            i = close + 1;
            continue;
        }
        let (line, col) = (toks[i].line, toks[i].col);
        let open = i + 1;
        let close = matching_brace(toks, open);
        let body = &toks[open + 1..close];
        let mut name = None;
        let mut base = None;
        let mut width = None;
        let mut raw = None;
        for (a, b) in split_top_level(body) {
            let field = &body[a..b];
            if field.len() < 3 || field[0].kind != TokKind::Ident || !field[1].is_op(":") {
                continue;
            }
            let value = &field[2..];
            match field[0].text.as_str() {
                "name" => {
                    if let Some(t) = value.first().filter(|t| t.kind == TokKind::Str) {
                        name = Some(t.text.clone());
                    }
                }
                "base" | "width" => match expr::eval(value, env) {
                    Ok(v) => {
                        if field[0].text == "base" {
                            base = Some(v);
                        } else {
                            width = Some(v);
                        }
                    }
                    Err(e) => diags.push((
                        field[0].line,
                        field[0].col,
                        format!("cannot evaluate TagBand `{}`: {e}", field[0].text),
                    )),
                },
                "raw" => {
                    raw = value.first().map(|t| t.is_ident("true"));
                }
                _ => {}
            }
        }
        match (name, base, width) {
            (Some(name), Some(base), Some(width)) => bands.push(Band {
                name,
                base,
                width,
                raw: raw.unwrap_or(false),
                line,
                col,
            }),
            _ => diags.push((
                line,
                col,
                "TagBand literal is missing one of `name`/`base`/`width`".into(),
            )),
        }
        i = close + 1;
    }
    bands
}

/// The full L003 pass over `comm.rs`: build the const environment, collect
/// the `TagBand` registry, prove the bands disjoint/bounded/contained, and
/// flag ad-hoc high-tag literals outside the registry.
fn lint_tag_registry(toks: &[Tok], test: &Regions, out: &mut Vec<(u32, u32, String)>) {
    let items = const_items(toks);

    // const environment: fixed-point over evaluable scalar consts
    let mut env = ConstEnv::new();
    for _ in 0..3 {
        for it in &items {
            if env.contains_key(&it.name) {
                continue;
            }
            let rhs = &toks[it.rhs.0..it.rhs.1];
            if rhs.iter().any(|t| t.is_op("{") || t.is_op(",")) {
                continue; // struct/tuple/array rhs
            }
            if let Ok(v) = expr::eval(rhs, &env) {
                env.insert(it.name.clone(), v);
            }
        }
    }

    let mut band_diags = Vec::new();
    let bands = tag_band_literals(toks, &env, &mut band_diags);
    out.extend(band_diags);

    // recognized registry spans: items declaring bands or registry consts
    let mut registry: Regions = Vec::new();
    for it in &items {
        let recognized = matches!(
            it.name.as_str(),
            "MAX_RANKS" | "COLLECTIVE_TAGS" | "TAG_BANDS"
        ) || toks[it.span.0..it.span.1]
            .iter()
            .any(|t| t.is_ident("TagBand"));
        if recognized {
            registry.push(it.span);
        }
    }

    let max_ranks = env.get("MAX_RANKS").copied();
    let collective = items
        .iter()
        .find(|it| it.name == "COLLECTIVE_TAGS")
        .and_then(|it| {
            let rhs = &toks[it.rhs.0..it.rhs.1];
            let inner = rhs
                .first()
                .filter(|t| t.is_op("("))
                .map(|_| &rhs[1..rhs.len() - 1])?;
            let parts = split_top_level(inner);
            if parts.len() != 2 {
                return None;
            }
            let lo = expr::eval(&inner[parts[0].0..parts[0].1], &env).ok()?;
            let hi = expr::eval(&inner[parts[1].0..parts[1].1], &env).ok()?;
            Some((lo, hi))
        });

    if bands.is_empty() {
        out.push((
            1,
            1,
            "comm.rs declares no TagBand registry: every collective wire tag must come from a declared band".into(),
        ));
    } else {
        if collective.is_none() {
            out.push((
                1,
                1,
                "comm.rs declares no evaluable `COLLECTIVE_TAGS` bound for its TagBand registry"
                    .into(),
            ));
        }
        if max_ranks.is_none() && bands.iter().any(|b| b.width > 1) {
            out.push((
                1,
                1,
                "comm.rs declares rank-indexed tag bands but no `MAX_RANKS` bound".into(),
            ));
        }
    }

    // per-band checks
    let mut ranged: Vec<(&Band, (u64, u64))> = Vec::new();
    for b in &bands {
        if b.width == 0 {
            out.push((
                b.line,
                b.col,
                format!("TagBand `{}` has zero width", b.name),
            ));
            continue;
        }
        if b.width > 1 {
            if let Some(m) = max_ranks {
                if b.width < m {
                    out.push((
                        b.line,
                        b.col,
                        format!(
                            "TagBand `{}` is rank-indexed but narrower than MAX_RANKS ({} < {m}): `base + rank` can escape the band",
                            b.name, b.width
                        ),
                    ));
                }
            }
        }
        let Some(range) = b.wire_range() else {
            out.push((
                b.line,
                b.col,
                format!("TagBand `{}` overflows the u64 wire-tag space", b.name),
            ));
            continue;
        };
        if let Some((clo, chi)) = collective {
            if range.0 < clo || range.1 > chi {
                out.push((
                    b.line,
                    b.col,
                    format!(
                        "TagBand `{}` escapes COLLECTIVE_TAGS: wire range [{:#x}, {:#x}) vs [{clo:#x}, {chi:#x})",
                        b.name, range.0, range.1
                    ),
                ));
            }
        }
        ranged.push((b, range));
    }

    // pairwise disjointness (sort by wire lo; adjacent half-open touch is fine)
    ranged.sort_by_key(|(_, r)| r.0);
    for w in ranged.windows(2) {
        let (a, ra) = &w[0];
        let (b, rb) = &w[1];
        if ra.1 > rb.0 {
            out.push((
                b.line,
                b.col,
                format!(
                    "TagBand `{}` overlaps TagBand `{}` on the wire: [{:#x}, {:#x}) vs [{:#x}, {:#x})",
                    b.name, a.name, rb.0, rb.1, ra.0, ra.1
                ),
            ));
        }
    }

    // ad-hoc high-tag literals outside the registry
    const HIGH: u128 = 1 << 40;
    for (k, t) in toks.iter().enumerate() {
        if in_regions(&registry, k) || in_regions(test, k) {
            continue;
        }
        if let TokKind::Int(lhs) = t.kind {
            let shifted = toks.get(k + 1).is_some_and(|o| o.is_op("<<"))
                && matches!(toks.get(k + 2).map(|r| &r.kind), Some(TokKind::Int(_)));
            if shifted {
                if let Some(TokKind::Int(rhs)) = toks.get(k + 2).map(|r| r.kind.clone()) {
                    let v = u32::try_from(rhs)
                        .ok()
                        .and_then(|s| lhs.checked_shl(s))
                        .unwrap_or(u128::MAX);
                    if v >= HIGH {
                        out.push((
                            t.line,
                            t.col,
                            format!(
                                "ad-hoc wire-tag literal `{} << {}` outside the TagBand registry: declare a band instead",
                                t.text,
                                toks[k + 2].text
                            ),
                        ));
                    }
                }
            } else if lhs >= HIGH {
                out.push((
                    t.line,
                    t.col,
                    format!(
                        "ad-hoc wire-tag literal `{}` outside the TagBand registry: declare a band instead",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The lint engine
// ---------------------------------------------------------------------------

fn float_operand(toks: &[Tok], i: usize) -> bool {
    // left operand
    if i > 0 && toks[i - 1].kind == TokKind::Float {
        return true;
    }
    // right operand (allowing unary minus)
    match toks.get(i + 1) {
        Some(t) if t.kind == TokKind::Float => true,
        Some(t) if t.is_op("-") => toks.get(i + 2).is_some_and(|r| r.kind == TokKind::Float),
        _ => false,
    }
}

/// Lint one file's source under the given context. Fixture files may
/// override the context with a `dftlint:fixture(...)` directive.
///
/// L006 call summaries are computed from this file alone; use
/// [`lint_source_with`] (as [`lint_workspace`] does) to resolve calls to
/// collective-emitting functions defined in *other* files.
pub fn lint_source(ctx: &FileCtx, src: &str) -> Vec<Diagnostic> {
    lint_source_with(ctx, src, None)
}

/// [`lint_source`] with an optional workspace-wide collective-emitter set
/// (function names that transitively issue a collective, plus the
/// `ThreadComm` primitives). `None` closes over this file's own functions.
pub fn lint_source_with(
    ctx: &FileCtx,
    src: &str,
    emitters: Option<&BTreeSet<String>>,
) -> Vec<Diagnostic> {
    let (toks, comments) = tokenize(src);
    let mut directives = parse_directives(&comments, &toks);

    let (crate_name, file_name) = match &directives.fixture {
        Some((k, f)) => (k.clone(), f.clone()),
        None => (ctx.crate_name.clone(), ctx.file_name.clone()),
    };
    let test = test_regions(&toks);
    let hot = hot_functions(&directives.hot_lines, &toks, &mut directives.errors);

    let fault_tolerant = FAULT_TOLERANT_CRATES.contains(&crate_name.as_str());
    let is_comm = file_name == "comm.rs";

    let mut raw: Vec<(u32, u32, &'static str, String)> = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        let in_test = in_regions(&test, i);

        // L001: panic paths in the fault-tolerant crates
        if fault_tolerant && !in_test && t.kind == TokKind::Ident {
            let method_call =
                i > 0 && toks[i - 1].is_op(".") && toks.get(i + 1).is_some_and(|n| n.is_op("("));
            if method_call && (t.text == "unwrap" || t.text == "expect") {
                raw.push((
                    t.line,
                    t.col,
                    "L001",
                    format!(
                        "`.{}()` in non-test code of `{crate_name}`: fault-tolerance requires returning `CommError`/`ScfError`, not panicking",
                        t.text
                    ),
                ));
            }
            let is_macro = toks.get(i + 1).is_some_and(|n| n.is_op("!"));
            if is_macro
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
            {
                raw.push((
                    t.line,
                    t.col,
                    "L001",
                    format!(
                        "`{}!` in non-test code of `{crate_name}`: fault-tolerance requires returning `CommError`/`ScfError`, not panicking",
                        t.text
                    ),
                ));
            }
        }

        // L002: raw blocking receives outside comm.rs
        if !is_comm && !in_test && t.kind == TokKind::Ident {
            let method_call =
                i > 0 && toks[i - 1].is_op(".") && toks.get(i + 1).is_some_and(|n| n.is_op("("));
            if method_call && (t.text == "recv_bytes" || t.text == "recv_f64") {
                raw.push((
                    t.line,
                    t.col,
                    "L002",
                    format!(
                        "raw blocking `.{}()` outside comm.rs internals: use the `_deadline` variant (shared collective deadline) or `try_recv_*`",
                        t.text
                    ),
                ));
            }
        }

        // L004: float equality (workspace-wide) + hash containers in the
        // deterministic reduction crates
        if !in_test {
            if (t.is_op("==") || t.is_op("!=")) && float_operand(&toks, i) {
                raw.push((
                    t.line,
                    t.col,
                    "L004",
                    format!(
                        "`{}` on a float expression breaks bitwise determinism guarantees: compare against a tolerance, or allow with a reason for exact sentinels",
                        t.text
                    ),
                ));
            }
            if fault_tolerant
                && t.kind == TokKind::Ident
                && (t.text == "HashMap" || t.text == "HashSet")
            {
                raw.push((
                    t.line,
                    t.col,
                    "L004",
                    format!(
                        "`{}` in deterministic reduction crate `{crate_name}`: iteration order is nondeterministic; use BTreeMap/BTreeSet or a Vec",
                        t.text
                    ),
                ));
            }
        }
    }

    // L005: allocations inside hot kernels
    for h in &hot {
        for i in h.body.0..h.body.1.min(toks.len()) {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let what = if t.text == "Vec"
                && toks.get(i + 1).is_some_and(|n| n.is_op("::"))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("new") || n.is_ident("with_capacity"))
            {
                Some(format!("Vec::{}", toks[i + 2].text))
            } else if t.text == "vec" && toks.get(i + 1).is_some_and(|n| n.is_op("!")) {
                Some("vec![..]".into())
            } else if i > 0
                && toks[i - 1].is_op(".")
                && matches!(t.text.as_str(), "collect" | "clone" | "to_vec")
            {
                Some(format!(".{}()", t.text))
            } else {
                None
            };
            if let Some(what) = what {
                raw.push((
                    t.line,
                    t.col,
                    "L005",
                    format!(
                        "allocation `{what}` inside `dftlint:hot` function `{}`: hot kernels must reuse caller-provided scratch",
                        h.name
                    ),
                ));
            }
        }
    }

    // L003: the tag registry prover, comm.rs only
    if is_comm {
        let mut l3 = Vec::new();
        lint_tag_registry(&toks, &test, &mut l3);
        for (line, col, msg) in l3 {
            raw.push((line, col, "L003", msg));
        }
    }

    // L006/L007: SPMD collective ordering + poison safety in the
    // fault-tolerant crates. comm.rs itself is exempt from L006: its
    // rank-conditional root/leaf sends ARE the collective implementations
    // (protocol safety there is carried by L003/L008 plus the runtime
    // sanitizer and schedule explorer).
    if fault_tolerant {
        if !is_comm {
            let local_emitters;
            let emitters = match emitters {
                Some(e) => e,
                None => {
                    local_emitters = flow::close_over_collectives(&flow::direct_calls(&toks));
                    &local_emitters
                }
            };
            let mut l6 = Vec::new();
            flow::lint_collective_ordering(&toks, &test, emitters, &mut l6);
            for (line, col, msg) in l6 {
                raw.push((line, col, "L006", msg));
            }
        }
        let mut l7 = Vec::new();
        flow::lint_poison_safety(&toks, &test, &mut l7);
        for (line, col, msg) in l7 {
            raw.push((line, col, "L007", msg));
        }
    }

    // L008: group-collective tag discipline, comm.rs only. Band consts are
    // the ones whose rhs declares a `TagBand` literal — the registry L003
    // has already proven disjoint and rank-indexable.
    if is_comm {
        let band_consts: BTreeSet<String> = const_items(&toks)
            .iter()
            .filter(|it| {
                toks[it.rhs.0..it.rhs.1]
                    .iter()
                    .any(|t| t.is_ident("TagBand"))
            })
            .map(|it| it.name.clone())
            .collect();
        let mut l8 = Vec::new();
        flow::lint_group_tag_discipline(&toks, &test, &band_consts, &mut l8);
        for (line, col, msg) in l8 {
            raw.push((line, col, "L008", msg));
        }
    }

    // apply suppressions, then fold in directive errors as L000
    let mut diags: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|(line, _, id, _)| {
            !directives
                .allows
                .iter()
                .any(|a| a.id == *id && a.target_line == *line)
        })
        .map(|(line, col, id, message)| Diagnostic {
            file: ctx.display.clone(),
            line,
            col,
            id,
            message,
        })
        .collect();
    for (line, col, message) in directives.errors {
        diags.push(Diagnostic {
            file: ctx.display.clone(),
            line,
            col,
            id: "L000",
            message,
        });
    }
    diags.sort_by(|a, b| (a.line, a.col, a.id).cmp(&(b.line, b.col, b.id)));
    diags
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Ascend from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        dir = dir.parent()?.to_path_buf();
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every project `src/` file with its lint context: `crates/<name>/src/**`
/// plus the root package's `src/**`. The vendored dependency shims under
/// `vendor/` are third-party stand-ins and are not project code.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(PathBuf, FileCtx)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for cdir in crate_dirs {
            let src = cdir.join("src");
            if src.is_dir() {
                let name = cdir
                    .file_name()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let mut paths = Vec::new();
                collect_rs(&src, &mut paths)?;
                paths.sort();
                for p in paths {
                    files.push((p, name.clone()));
                }
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        let mut paths = Vec::new();
        collect_rs(&root_src, &mut paths)?;
        paths.sort();
        for p in paths {
            files.push((p, "dft-fe-mlxc".to_string()));
        }
    }
    Ok(files
        .into_iter()
        .map(|(p, crate_name)| {
            let display = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .into_owned();
            let file_name = p
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            (
                p,
                FileCtx {
                    crate_name,
                    file_name,
                    display,
                },
            )
        })
        .collect())
}

/// Lint every project source file under the workspace at `root`.
///
/// Two passes: the first builds the L006 call-summary graph over the
/// fault-tolerant crates (every function name that transitively reaches a
/// `ThreadComm` collective), the second lints each file against it — so a
/// rank-conditional call to a *local helper* that allreduces three frames
/// down is flagged exactly like a direct rank-conditional allreduce.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut sources = Vec::new();
    for (path, ctx) in workspace_files(root)? {
        let src = fs::read_to_string(&path)?;
        sources.push((ctx, src));
    }
    let mut facts = Vec::new();
    for (ctx, src) in &sources {
        if FAULT_TOLERANT_CRATES.contains(&ctx.crate_name.as_str()) {
            let (toks, _) = tokenize(src);
            facts.extend(flow::direct_calls(&toks));
        }
    }
    let emitters = flow::close_over_collectives(&facts);
    let mut diags = Vec::new();
    for (ctx, src) in &sources {
        diags.extend(lint_source_with(ctx, src, Some(&emitters)));
    }
    Ok(diags)
}

/// Serialize diagnostics as a JSON array (hand-rolled: the linter is
/// dependency-free by design).
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"id\":\"{}\",\"message\":\"{}\"}}",
                esc(&d.file),
                d.line,
                d.col,
                d.id,
                esc(&d.message)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str, file_name: &str) -> FileCtx {
        FileCtx {
            crate_name: crate_name.into(),
            file_name: file_name.into(),
            display: format!("{crate_name}/{file_name}"),
        }
    }

    #[test]
    fn l001_flags_panics_outside_tests_only() {
        let src = r#"
fn work() -> u32 { some().unwrap() }
#[cfg(test)]
mod tests {
    fn t() { other().unwrap(); panic!("fine in tests"); }
}
"#;
        let d = lint_source(&ctx("dft-hpc", "x.rs"), src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].id, "L001");
        assert_eq!(d[0].line, 2);
        // same file in a non-fault-tolerant crate: clean
        assert!(lint_source(&ctx("dft-core", "x.rs"), src).is_empty());
    }

    #[test]
    fn suppression_requires_reason() {
        let good = "// dftlint:allow(L001, reason=\"guarded above\")\nfn f() { x.unwrap(); }\n";
        assert!(lint_source(&ctx("dft-hpc", "x.rs"), good).is_empty());
        let bad = "// dftlint:allow(L001)\nfn f() { x.unwrap(); }\n";
        let d = lint_source(&ctx("dft-hpc", "x.rs"), bad);
        assert!(d.iter().any(|x| x.id == "L000"), "{d:?}");
        assert!(d.iter().any(|x| x.id == "L001"), "unsuppressed: {d:?}");
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let src = "fn f() { x.unwrap(); } // dftlint:allow(L001, reason=\"infallible\")\n";
        assert!(lint_source(&ctx("dft-parallel", "x.rs"), src).is_empty());
    }

    #[test]
    fn l004_float_eq_and_containers() {
        let src = "fn f(a: f64) -> bool { use std::collections::HashMap; a == 0.0 }\n";
        let d = lint_source(&ctx("dft-hpc", "x.rs"), src);
        assert_eq!(d.iter().filter(|x| x.id == "L004").count(), 2, "{d:?}");
        // float eq is workspace-wide, containers are not
        let d = lint_source(&ctx("dft-core", "x.rs"), src);
        assert_eq!(d.iter().filter(|x| x.id == "L004").count(), 1, "{d:?}");
    }

    #[test]
    fn l005_hot_function_allocations() {
        let src = r#"
// dftlint:hot
fn kernel(x: &mut [f64]) {
    let v = vec![0.0; 4];
    let w: Vec<f64> = x.iter().copied().collect();
}
fn cold() { let _ = vec![1]; }
"#;
        let d = lint_source(&ctx("dft-linalg", "x.rs"), src);
        assert_eq!(d.iter().filter(|x| x.id == "L005").count(), 2, "{d:?}");
    }

    #[test]
    fn l003_accepts_a_disjoint_registry_and_rejects_overlap() {
        let ok = r#"
// dftlint:fixture(crate="dft-hpc", file="comm.rs")
pub const MAX_RANKS: u64 = 4000;
pub const COLLECTIVE_TAGS: (u64, u64) = (1 << 60, u64::MAX);
pub const A: TagBand = TagBand { name: "a", base: (1 << 60) + 1, width: 1, raw: true };
pub const B: TagBand = TagBand { name: "b", base: (1 << 60) + 1000, width: MAX_RANKS, raw: false };
"#;
        let d = lint_source(&ctx("fixture", "f.rs"), ok);
        assert!(d.is_empty(), "{d:?}");
        // raw vs framed bands occupy different wire intervals, so force
        // both raw to construct a genuine wire collision
        let overlap = ok
            .replace("+ 1000", "+ 1")
            .replace("raw: false", "raw: true");
        let d = lint_source(&ctx("fixture", "f.rs"), &overlap);
        assert!(
            d.iter()
                .any(|x| x.id == "L003" && x.message.contains("overlaps")),
            "{d:?}"
        );
    }
}
