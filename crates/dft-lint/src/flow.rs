//! Statement/branch-aware intraprocedural analysis: the parse layer under
//! the SPMD collective-protocol lints (L006–L008).
//!
//! The token lints (L001–L005) look at one token plus a fixed window. The
//! collective-protocol lints need more structure: *which function* a call
//! sits in, *which branch* of an `if`/`match` it executes under, and
//! whether a condition depends on the local rank. This module recovers
//! exactly that much structure from the token stream — function items with
//! brace-matched bodies, `if`/`else if`/`else` chains, `match` arms — and
//! runs three checks over it:
//!
//! * **L006** — every rank must issue the same collective sequence. A
//!   rank-dependent `if`/`match` whose branches emit *different* collective
//!   sequences desynchronizes the gang (`if rank == 0 { allreduce }`
//!   deadlocks everyone else), as does an early exit (`return`/`?`/
//!   `break`/`continue`) under rank-dependent control flow when collectives
//!   follow later in the function. Calls are resolved through a
//!   call-summary set: a local function that (transitively) emits a
//!   collective counts as a collective at its call sites.
//! * **L007** — a `CommError` must reach the poison cascade or a typed
//!   error, never a swallow: `let _ = <comm call>;` without `?`,
//!   `.ok()`/`.unwrap_or*()` chained onto a comm call, and
//!   `Err(_) => continue` / `Err(_) => {}` arms over a comm-call scrutinee
//!   are all flagged.
//! * **L008** — inside `comm.rs` functions named `group_*`, every
//!   point-to-point tag must be derived from a single registered `TagBand`
//!   const (`BAND.for_rank(..)` / `BAND.tag()`); the band's bounds are the
//!   ones the L003 const-evaluator already proves disjoint and
//!   rank-indexable, so the sub-communicator offset cannot escape it.

use crate::token::{Tok, TokKind};
use std::collections::BTreeSet;

/// ThreadComm collective primitives: the seed of the call-summary set.
pub const COLLECTIVE_SEED: &[&str] = &[
    "barrier",
    "allreduce_sum_f64",
    "allreduce_max_u64",
    "broadcast_f64",
    "allgather_scalar",
    "group_allreduce_sum_f64",
    "group_allgather_f64",
    "group_broadcast_f64",
];

/// Comm-fallible primitives whose `Result<_, CommError>` must never be
/// swallowed (L007): the collectives plus the point-to-point layer.
pub const COMM_FALLIBLE: &[&str] = &[
    "barrier",
    "allreduce_sum_f64",
    "allreduce_max_u64",
    "broadcast_f64",
    "allgather_scalar",
    "group_allreduce_sum_f64",
    "group_allgather_f64",
    "group_broadcast_f64",
    "send_bytes",
    "recv_bytes",
    "recv_bytes_deadline",
    "try_recv_bytes",
    "send_f64",
    "isend_f64",
    "recv_f64",
    "recv_f64_deadline",
    "try_recv_f64",
    "advance_epoch",
];

/// Point-to-point primitives whose second argument is the wire tag (L008).
const TAGGED_P2P: &[&str] = &[
    "send_bytes",
    "recv_bytes",
    "recv_bytes_deadline",
    "try_recv_bytes",
    "send_f64",
    "isend_f64",
    "recv_f64",
    "recv_f64_deadline",
    "try_recv_f64",
];

/// A raw finding before suppression filtering: `(line, col, message)`.
pub type RawDiag = (u32, u32, String);

/// One `fn` item: its name, brace-matched body, and the bodies of any
/// *nested* `fn` items (excluded from this function's analysis — closures,
/// by contrast, stay inline: `shared.with(|c| c.allreduce(..))` executes on
/// this function's control path).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Token range of the body, `(open_brace, close_brace + 1)`.
    pub body: (usize, usize),
    /// Body ranges of nested `fn` items inside `body`.
    pub inner: Vec<(usize, usize)>,
}

/// Index of the `}` matching the `{` at `open` (crate-local copy of the
/// engine helper, kept here so the module is self-contained for tests).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_op("{") {
            depth += 1;
        } else if t.is_op("}") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len() - 1
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Op {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len() - 1
}

/// Scan every `fn name(..) .. { .. }` item in the stream (methods, free
/// functions, nested functions — trait signatures without bodies are
/// skipped).
pub fn fn_items(toks: &[Tok]) -> Vec<FnItem> {
    let mut out: Vec<FnItem> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let name = name_tok.text.clone();
        // body `{` before a top-level `;` (a `;` means a bodiless signature)
        let mut depth = 0i64;
        let mut k = i + 2;
        let mut open = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Op {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(k);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k + 1;
            continue;
        };
        let close = matching_brace(toks, open);
        out.push(FnItem {
            name,
            body: (open, close + 1),
            inner: Vec::new(),
        });
        // keep scanning *inside* the body so nested fns are collected too
        i = open + 1;
    }
    // attribute nested bodies to their enclosing item
    let ranges: Vec<(usize, usize)> = out.iter().map(|f| f.body).collect();
    for f in &mut out {
        for &(a, b) in &ranges {
            if a > f.body.0 && b <= f.body.1 {
                f.inner.push((a, b));
            }
        }
    }
    out
}

/// Does this token slice depend on the local rank? The heuristic names the
/// project's rank-identity spellings — `rank`, `my_rank`, `*_rank`,
/// `is_root`, the process-grid coordinate fields (`.dom`/`.band`/`.kgrp`),
/// ownership predicates (`owns_replicated_fields`, `owned_node`) — and
/// deliberately excludes uniform values (`nranks`, `n_ranks`, `n_band`,
/// `size`): a condition on the cluster *shape* is replicated.
fn slice_is_rank_dep(toks: &[Tok]) -> bool {
    toks.iter().enumerate().any(|(j, t)| {
        if t.kind != TokKind::Ident {
            return false;
        }
        if t.text == "rank"
            || t.text == "my_rank"
            || t.text == "is_root"
            || t.text == "owns_replicated_fields"
            || t.text == "owned_node"
            || (t.text.ends_with("_rank") && t.text != "n_rank")
        {
            return true;
        }
        // grid coordinates are only rank identity as *field accesses*
        // (`pgrid.dom`); a bare `band` is usually a loop index
        matches!(t.text.as_str(), "dom" | "band" | "kgrp") && j > 0 && toks[j - 1].is_op(".")
    })
}

/// Is token `i` a call — an identifier directly followed by `(`?
fn is_call(toks: &[Tok], i: usize) -> bool {
    toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_op("("))
}

/// First `{` at bracket depth 0 in `[from, hi)` — the block opener after an
/// `if`/`while`/`match` head (struct literals cannot appear unparenthesized
/// there, so the first depth-0 `{` is the block).
fn find_block_open(toks: &[Tok], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut k = from;
    while k < hi {
        let t = &toks[k];
        if t.kind == TokKind::Op {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(k),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        k += 1;
    }
    None
}

/// Analysis context for one function body.
struct FlowCtx<'a> {
    toks: &'a [Tok],
    /// Function names known to (transitively) emit a collective, plus the
    /// `ThreadComm` collective primitives themselves.
    emitters: &'a BTreeSet<String>,
    /// Nested-`fn` body ranges to skip.
    inner: &'a [(usize, usize)],
    /// End of the enclosing function body (for the later-collective scan).
    fn_end: usize,
}

impl FlowCtx<'_> {
    fn in_inner(&self, i: usize) -> bool {
        self.inner.iter().any(|&(a, b)| a <= i && i < b)
    }

    fn is_collective_call(&self, i: usize) -> bool {
        is_call(self.toks, i) && self.emitters.contains(&self.toks[i].text) && !self.in_inner(i)
    }

    /// Collective-call names in `[lo, hi)` in token order.
    fn collective_seq(&self, lo: usize, hi: usize) -> Vec<String> {
        (lo..hi.min(self.toks.len()))
            .filter(|&i| self.is_collective_call(i))
            .map(|i| self.toks[i].text.clone())
            .collect()
    }

    fn has_collective(&self, lo: usize, hi: usize) -> bool {
        (lo..hi.min(self.toks.len())).any(|i| self.is_collective_call(i))
    }
}

fn fmt_seq(seq: &[String]) -> String {
    if seq.is_empty() {
        "(none)".to_string()
    } else {
        seq.join(", ")
    }
}

/// Does the statement the token at `k` belongs to contain a comm-fallible
/// or collective call *before* `k`? A `?` on such a call is not a desync
/// hazard: the error originated inside the comm layer, which has already
/// poisoned the communicator, so the failure cascades to every peer.
fn exit_guarded_by_comm(ctx: &FlowCtx<'_>, k: usize) -> bool {
    let mut depth = 0i64;
    let mut p = k;
    while p > 0 {
        p -= 1;
        let t = &ctx.toks[p];
        if t.kind == TokKind::Op {
            match t.text.as_str() {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth -= 1;
                    if depth < 0 {
                        break; // enclosing block/paren open: statement start
                    }
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        if t.kind == TokKind::Ident
            && (COMM_FALLIBLE.contains(&t.text.as_str()) || ctx.emitters.contains(&t.text))
            && is_call(ctx.toks, p)
        {
            return true;
        }
    }
    false
}

/// Flag early exits inside a rank-dependent branch `[a, b)` when collective
/// calls follow later in the function: the exiting rank skips them while
/// the other ranks block in them.
fn flag_early_exits(ctx: &FlowCtx<'_>, a: usize, b: usize, out: &mut Vec<RawDiag>) {
    for k in a..b.min(ctx.toks.len()) {
        if ctx.in_inner(k) {
            continue;
        }
        let t = &ctx.toks[k];
        let kind = if t.is_ident("return") {
            "return"
        } else if t.is_op("?") {
            "?"
        } else if t.is_ident("break") {
            "break"
        } else if t.is_ident("continue") {
            "continue"
        } else {
            continue;
        };
        if (t.is_op("?") || t.is_ident("return")) && exit_guarded_by_comm(ctx, k) {
            continue;
        }
        if ctx.has_collective(k + 1, ctx.fn_end) {
            out.push((
                t.line,
                t.col,
                format!(
                    "early exit `{kind}` under rank-dependent control flow skips later collective call(s): the exiting rank desynchronizes from peers still entering them"
                ),
            ));
        }
    }
}

/// Walk `[lo, hi)` of a function body: find rank-dependent `if` chains and
/// `match` expressions, compare the collective sequences of their branches,
/// and flag early exits inside rank-dependent branches.
fn walk(ctx: &FlowCtx<'_>, lo: usize, hi: usize, out: &mut Vec<RawDiag>) {
    let mut i = lo;
    while i < hi.min(ctx.toks.len()) {
        if ctx.in_inner(i) {
            i += 1;
            continue;
        }
        let t = &ctx.toks[i];
        let is_if = t.is_ident("if") || t.is_ident("while");
        if is_if {
            let Some(open) = find_block_open(ctx.toks, i + 1, hi) else {
                i += 1;
                continue;
            };
            let mut chain_dep = slice_is_rank_dep(&ctx.toks[i + 1..open]);
            let close = matching_brace(ctx.toks, open);
            let mut branches = vec![(open + 1, close)];
            let mut has_else = false;
            let mut j = close + 1;
            while j < hi && ctx.toks[j].is_ident("else") {
                if ctx.toks.get(j + 1).is_some_and(|n| n.is_ident("if")) {
                    let Some(o2) = find_block_open(ctx.toks, j + 2, hi) else {
                        break;
                    };
                    chain_dep |= slice_is_rank_dep(&ctx.toks[j + 2..o2]);
                    let c2 = matching_brace(ctx.toks, o2);
                    branches.push((o2 + 1, c2));
                    j = c2 + 1;
                } else if ctx.toks.get(j + 1).is_some_and(|n| n.is_op("{")) {
                    let c2 = matching_brace(ctx.toks, j + 1);
                    branches.push((j + 2, c2));
                    has_else = true;
                    j = c2 + 1;
                    break;
                } else {
                    break;
                }
            }
            // a rank-dependent `while` guards repetition, not selection:
            // compare body against the implicit empty fall-through
            if chain_dep {
                let mut seqs: Vec<Vec<String>> = branches
                    .iter()
                    .map(|&(a, b)| ctx.collective_seq(a, b))
                    .collect();
                if !has_else || t.is_ident("while") {
                    seqs.push(Vec::new());
                }
                if seqs.windows(2).any(|w| w[0] != w[1]) {
                    out.push((
                        t.line,
                        t.col,
                        format!(
                            "rank-dependent `{}` branches emit divergent collective sequences ({}): every rank must issue the same collectives in the same order",
                            t.text,
                            seqs.iter()
                                .map(|s| fmt_seq(s))
                                .collect::<Vec<_>>()
                                .join(" vs ")
                        ),
                    ));
                }
                for &(a, b) in &branches {
                    flag_early_exits(ctx, a, b, out);
                }
            }
            for &(a, b) in &branches {
                walk(ctx, a, b, out);
            }
            i = j;
        } else if t.is_ident("match") {
            let Some(open) = find_block_open(ctx.toks, i + 1, hi) else {
                i += 1;
                continue;
            };
            let close = matching_brace(ctx.toks, open);
            if slice_is_rank_dep(&ctx.toks[i + 1..open]) {
                let arms = match_arms(ctx.toks, open, close);
                let seqs: Vec<Vec<String>> = arms
                    .iter()
                    .map(|&(a, b)| ctx.collective_seq(a, b))
                    .collect();
                if seqs.windows(2).any(|w| w[0] != w[1]) {
                    out.push((
                        t.line,
                        t.col,
                        format!(
                            "rank-dependent `match` arms emit divergent collective sequences ({}): every rank must issue the same collectives in the same order",
                            seqs.iter()
                                .map(|s| fmt_seq(s))
                                .collect::<Vec<_>>()
                                .join(" vs ")
                        ),
                    ));
                }
                for &(a, b) in &arms {
                    flag_early_exits(ctx, a, b, out);
                }
            }
            walk(ctx, open + 1, close, out);
            i = close + 1;
        } else {
            i += 1;
        }
    }
}

/// Arm-expression token ranges of a `match` body `(open_brace, close_brace)`:
/// everything after each depth-0 `=>` up to the arm's end (matching brace
/// for block arms, depth-0 `,` otherwise).
fn match_arms(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut arms = Vec::new();
    let mut depth = 0i64;
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if t.kind == TokKind::Op {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=>" if depth == 0 => {
                    let start = k + 1;
                    let end = if toks.get(start).is_some_and(|n| n.is_op("{")) {
                        matching_brace(toks, start) + 1
                    } else {
                        let mut d = 0i64;
                        let mut m = start;
                        while m < close {
                            let u = &toks[m];
                            if u.kind == TokKind::Op {
                                match u.text.as_str() {
                                    "(" | "[" | "{" => d += 1,
                                    ")" | "]" | "}" => d -= 1,
                                    "," if d == 0 => break,
                                    _ => {}
                                }
                            }
                            m += 1;
                        }
                        m
                    };
                    arms.push((start, end.min(close)));
                    k = end;
                    continue;
                }
                _ => {}
            }
        }
        k += 1;
    }
    arms
}

/// L006 over one file: analyze every function body against the emitter
/// summary set.
pub fn lint_collective_ordering(
    toks: &[Tok],
    test: &[(usize, usize)],
    emitters: &BTreeSet<String>,
    out: &mut Vec<RawDiag>,
) {
    for f in fn_items(toks) {
        if test.iter().any(|&(a, b)| a <= f.body.0 && f.body.0 < b) {
            continue;
        }
        let ctx = FlowCtx {
            toks,
            emitters,
            inner: &f.inner,
            fn_end: f.body.1,
        };
        walk(&ctx, f.body.0 + 1, f.body.1.saturating_sub(1), out);
    }
}

/// Per-file direct call facts for the call-summary fixed point: for every
/// function, the set of identifiers it calls.
pub fn direct_calls(toks: &[Tok]) -> Vec<(String, BTreeSet<String>)> {
    fn_items(toks)
        .iter()
        .map(|f| {
            let calls = (f.body.0..f.body.1.min(toks.len()))
                .filter(|&i| is_call(toks, i) && !f.inner.iter().any(|&(a, b)| a <= i && i < b))
                .map(|i| toks[i].text.clone())
                .collect();
            (f.name.clone(), calls)
        })
        .collect()
}

/// Close a set of per-function call facts over [`COLLECTIVE_SEED`]: the
/// returned set contains the seed primitives plus every function name that
/// transitively reaches one.
pub fn close_over_collectives(facts: &[(String, BTreeSet<String>)]) -> BTreeSet<String> {
    let mut emitters: BTreeSet<String> = COLLECTIVE_SEED.iter().map(|s| s.to_string()).collect();
    loop {
        let mut grew = false;
        for (name, calls) in facts {
            if !emitters.contains(name) && calls.iter().any(|c| emitters.contains(c)) {
                emitters.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    emitters
}

// ---------------------------------------------------------------------------
// L007: swallowed CommError paths
// ---------------------------------------------------------------------------

fn is_comm_fallible_call(toks: &[Tok], i: usize) -> bool {
    is_call(toks, i)
        && COMM_FALLIBLE.contains(&toks[i].text.as_str())
        && i > 0
        && toks[i - 1].is_op(".")
}

/// L007 over one file.
pub fn lint_poison_safety(toks: &[Tok], test: &[(usize, usize)], out: &mut Vec<RawDiag>) {
    let in_test = |i: usize| test.iter().any(|&(a, b)| a <= i && i < b);

    // rule 1: `let _ = <expr with a comm call>;` with no `?` and no
    // `.is_err()`/`.is_ok()` observation in the statement
    let mut i = 0;
    while i + 2 < toks.len() {
        if !(toks[i].is_ident("let") && toks[i + 1].is_ident("_") && toks[i + 2].is_op("=")) {
            i += 1;
            continue;
        }
        // statement extent: to the `;` at depth 0
        let mut depth = 0i64;
        let mut k = i + 3;
        let mut semi = toks.len();
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Op {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => {
                        semi = k;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        let stmt = &toks[i + 3..semi.min(toks.len())];
        let comm_call = (i + 3..semi.min(toks.len())).find(|&j| is_comm_fallible_call(toks, j));
        if let Some(j) = comm_call {
            let observed = stmt
                .iter()
                .any(|t| t.is_op("?") || t.is_ident("is_err") || t.is_ident("is_ok"));
            if !observed && !in_test(j) {
                out.push((
                    toks[j].line,
                    toks[j].col,
                    format!(
                        "`let _ =` swallows the `CommError` from `.{}()`: a failed comm op must reach the poison cascade or a typed error (bind it, `?` it, or observe `.is_err()`)",
                        toks[j].text
                    ),
                ));
            }
        }
        i = semi + 1;
    }

    // rule 2: `.ok()` / `.unwrap_or*()` chained directly onto a comm call
    for j in 0..toks.len() {
        if !is_comm_fallible_call(toks, j) || in_test(j) {
            continue;
        }
        let close = matching_paren(toks, j + 1);
        let chained = toks.get(close + 1).is_some_and(|t| t.is_op("."))
            && toks.get(close + 2).is_some_and(|t| {
                matches!(
                    t.text.as_str(),
                    "ok" | "unwrap_or" | "unwrap_or_else" | "unwrap_or_default"
                )
            });
        if chained {
            out.push((
                toks[close + 2].line,
                toks[close + 2].col,
                format!(
                    "`.{}()` discards the `CommError` from `.{}()`: a failed comm op must reach the poison cascade or a typed error",
                    toks[close + 2].text, toks[j].text
                ),
            ));
        }
    }

    // rule 3: `Err(..) => continue` / `Err(..) => {}` over a comm-call
    // scrutinee
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("match") {
            i += 1;
            continue;
        }
        let Some(open) = find_block_open(toks, i + 1, toks.len()) else {
            i += 1;
            continue;
        };
        let close = matching_brace(toks, open);
        let scrutinee_comm = (i + 1..open).any(|j| is_comm_fallible_call(toks, j));
        if scrutinee_comm && !in_test(i) {
            let mut depth = 0i64;
            let mut k = open + 1;
            while k < close {
                let t = &toks[k];
                if t.kind == TokKind::Op {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=>" if depth == 0 => {
                            // pattern starts after the previous arm/`{`;
                            // look back for an `Err` head
                            let mut p = k;
                            let mut err_tok = None;
                            while p > open {
                                p -= 1;
                                let u = &toks[p];
                                if u.is_op(",") || u.is_op("{") {
                                    break;
                                }
                                if u.is_ident("Err") {
                                    err_tok = Some(p);
                                }
                            }
                            if let Some(e) = err_tok {
                                let body = &toks[k + 1..close.min(toks.len())];
                                let swallowed =
                                    body.first().is_some_and(|t| t.is_ident("continue"))
                                        || (body.first().is_some_and(|t| t.is_op("{"))
                                            && body.get(1).is_some_and(|t| t.is_op("}")))
                                        || (body.first().is_some_and(|t| t.is_op("("))
                                            && body.get(1).is_some_and(|t| t.is_op(")")));
                                if swallowed {
                                    out.push((
                                        toks[e].line,
                                        toks[e].col,
                                        "`Err` arm swallows a `CommError` (bare `continue`/empty body): a failed comm op must reach the poison cascade or a typed error".to_string(),
                                    ));
                                }
                            }
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
        }
        i = close + 1;
    }
}

// ---------------------------------------------------------------------------
// L008: tag-band discipline in group contexts (comm.rs)
// ---------------------------------------------------------------------------

/// L008 over `comm.rs`: inside every `group_*` function each tagged
/// point-to-point call must derive its tag from exactly one registered
/// `TagBand` const via `.for_rank(..)` or `.tag()`. `band_consts` is the
/// set of const names whose right-hand side declares a `TagBand` literal —
/// the registry the L003 const-evaluator has already proven disjoint and
/// wide enough for `base + rank` offsets.
pub fn lint_group_tag_discipline(
    toks: &[Tok],
    test: &[(usize, usize)],
    band_consts: &BTreeSet<String>,
    out: &mut Vec<RawDiag>,
) {
    for f in fn_items(toks) {
        if !f.name.starts_with("group_") {
            continue;
        }
        if test.iter().any(|&(a, b)| a <= f.body.0 && f.body.0 < b) {
            continue;
        }
        // `let t = BAND.for_rank(..)` bindings usable as tag arguments
        let mut bound: Vec<(String, String)> = Vec::new(); // (local, band)
        for i in f.body.0..f.body.1.min(toks.len()) {
            if toks[i].is_ident("let")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(i + 2).is_some_and(|t| t.is_op("="))
                && toks
                    .get(i + 3)
                    .is_some_and(|t| band_consts.contains(&t.text))
                && toks.get(i + 4).is_some_and(|t| t.is_op("."))
                && toks
                    .get(i + 5)
                    .is_some_and(|t| t.is_ident("for_rank") || t.is_ident("tag"))
            {
                bound.push((toks[i + 1].text.clone(), toks[i + 3].text.clone()));
            }
        }
        let mut used: Vec<(String, u32, u32)> = Vec::new();
        for i in f.body.0..f.body.1.min(toks.len()) {
            if !(is_call(toks, i)
                && TAGGED_P2P.contains(&toks[i].text.as_str())
                && i > 0
                && toks[i - 1].is_op("."))
            {
                continue;
            }
            let open = i + 1;
            let close = matching_paren(toks, open);
            let args = crate::split_top_level(&toks[open + 1..close]);
            let Some(&(a, b)) = args.get(1) else {
                continue;
            };
            let arg = &toks[open + 1 + a..open + 1 + b];
            let band = match arg {
                [c, dot, m, ..]
                    if band_consts.contains(&c.text)
                        && dot.is_op(".")
                        && (m.is_ident("for_rank") || m.is_ident("tag")) =>
                {
                    Some(c.text.clone())
                }
                [v] if v.kind == TokKind::Ident => bound
                    .iter()
                    .find(|(local, _)| *local == v.text)
                    .map(|(_, band)| band.clone()),
                _ => None,
            };
            match band {
                Some(b) => used.push((b, toks[i].line, toks[i].col)),
                None => out.push((
                    toks[i].line,
                    toks[i].col,
                    format!(
                        "tag for `.{}()` in group context `{}` is not derived from a registered TagBand (`BAND.for_rank(..)`/`BAND.tag()`): sub-communicator tags must stay inside their L003-proven band",
                        toks[i].text, f.name
                    ),
                )),
            }
        }
        for w in used.windows(2) {
            if w[1].0 != w[0].0 {
                out.push((
                    w[1].1,
                    w[1].2,
                    format!(
                        "group context `{}` mixes tag bands `{}` and `{}`: one group collective must stay inside one registered band",
                        f.name, w[0].0, w[1].0
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn seed() -> BTreeSet<String> {
        COLLECTIVE_SEED.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fn_items_find_bodies_and_nested() {
        let (toks, _) = tokenize("fn a() { fn b() {} x(); } fn c();");
        let fns = fn_items(&toks);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[0].inner.len(), 1);
        assert_eq!(fns[1].name, "b");
    }

    #[test]
    fn rank_conditional_collective_is_divergent() {
        let (toks, _) = tokenize(
            "fn f(c: &mut C, rank: usize) { if rank == 0 { c.allreduce_sum_f64(&mut v, w); } }",
        );
        let mut out = Vec::new();
        lint_collective_ordering(&toks, &[], &seed(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].2.contains("divergent collective sequences"));
    }

    #[test]
    fn equal_sequences_in_both_branches_are_clean() {
        let (toks, _) = tokenize(
            "fn f(c: &mut C, rank: usize) { if rank == 0 { c.barrier()?; } else { c.barrier()?; } }",
        );
        let mut out = Vec::new();
        lint_collective_ordering(&toks, &[], &seed(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn rank_zero_fs_write_is_clean() {
        let (toks, _) = tokenize("fn f(rank: usize) { if rank == 0 { write_state(p); } }");
        let mut out = Vec::new();
        lint_collective_ordering(&toks, &[], &seed(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn early_exit_before_later_collective_is_flagged() {
        let (toks, _) =
            tokenize("fn f(c: &mut C, rank: usize) { if rank == 0 { save()?; } c.barrier()?; }");
        let mut out = Vec::new();
        lint_collective_ordering(&toks, &[], &seed(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].2.contains("early exit `?`"), "{out:?}");
    }

    #[test]
    fn summary_propagates_through_local_fns() {
        let src = "fn helper(c: &mut C) { c.barrier().unwrap_or(()); }\n\
                   fn f(c: &mut C, rank: usize) { if rank == 0 { helper(c); } }";
        let (toks, _) = tokenize(src);
        let emitters = close_over_collectives(&direct_calls(&toks));
        assert!(emitters.contains("helper"));
        let mut out = Vec::new();
        lint_collective_ordering(&toks, &[], &emitters, &mut out);
        assert!(out.iter().any(|d| d.2.contains("divergent")), "{out:?}");
    }

    #[test]
    fn l007_swallows_are_flagged_and_observation_is_not() {
        let src = "fn f(c: &mut C) { let _ = c.allreduce_sum_f64(&mut v, w); \
                   let r = c.barrier(); if r.is_err() { return; } \
                   let _ = c.advance_epoch()?; \
                   c.try_recv_f64(s, t, w).ok(); \
                   match c.recv_f64_deadline(s, t, w, d) { Ok(v) => use_it(v), Err(_) => {} } }";
        let (toks, _) = tokenize(src);
        let mut out = Vec::new();
        lint_poison_safety(&toks, &[], &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn l008_raw_tag_and_mixed_bands_flagged() {
        let src = "fn group_x(c: &mut C) { c.send_f64(m, 77, &d, w)?; \
                   c.send_f64(m, A_BAND.for_rank(r), &d, w)?; \
                   c.recv_f64(m, B_BAND.tag(), w)?; }";
        let (toks, _) = tokenize(src);
        let bands: BTreeSet<String> = ["A_BAND", "B_BAND"].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        lint_group_tag_discipline(&toks, &[], &bands, &mut out);
        assert!(out.iter().any(|d| d.2.contains("not derived")), "{out:?}");
        assert!(
            out.iter().any(|d| d.2.contains("mixes tag bands")),
            "{out:?}"
        );
    }
}
