//! CLI for `dft-lint`.
//!
//! ```text
//! cargo run -p dft-lint -- --workspace --deny-all        # CI gate
//! cargo run -p dft-lint -- --json path/to/file.rs        # machine output
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics emitted (with `--deny-all`, any
//! diagnostic; without it, only `L000` directive errors fail), 2 usage or
//! I/O error.

use dft_lint::{
    diagnostics_to_json, find_workspace_root, lint_source, lint_workspace, Diagnostic, FileCtx,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: dft-lint [--workspace] [--deny-all] [--json] [--summary] [FILES...]\n\
    --workspace  lint every project src/ file under the enclosing workspace\n\
    --deny-all   exit nonzero on any diagnostic (default: only on L000 directive errors)\n\
    --json       emit diagnostics as a JSON array instead of human-readable lines\n\
    --summary    print per-lint violation counts after the diagnostics";

fn lint_one_path(path: &Path) -> Result<Vec<Diagnostic>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    // Infer the crate from a `crates/<name>/` path component when present;
    // fixtures override this via their own `dftlint:fixture` directive.
    let comps: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let crate_name = comps
        .iter()
        .position(|c| c == "crates")
        .and_then(|i| comps.get(i + 1).cloned())
        .unwrap_or_else(|| "unknown".to_string());
    let ctx = FileCtx {
        crate_name,
        file_name: path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
        display: path.display().to_string(),
    };
    Ok(lint_source(&ctx, &src))
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut deny_all = false;
    let mut json = false;
    let mut summary = false;
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--summary" => summary = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("dft-lint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    if !workspace && files.is_empty() {
        eprintln!("dft-lint: nothing to lint\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut diags = Vec::new();
    if workspace {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("dft-lint: no enclosing [workspace] Cargo.toml found");
            return ExitCode::from(2);
        };
        match lint_workspace(&root) {
            Ok(d) => diags.extend(d),
            Err(e) => {
                eprintln!("dft-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for path in &files {
        match lint_one_path(path) {
            Ok(d) => diags.extend(d),
            Err(e) => {
                eprintln!("dft-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if json {
        println!("{}", diagnostics_to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if !diags.is_empty() {
            eprintln!("dft-lint: {} diagnostic(s)", diags.len());
        }
    }
    if summary {
        // every bucket, zeros included: a burn-down regression is visible
        // in the CI log at a glance
        println!("dft-lint summary:");
        let mut total = 0usize;
        for id in std::iter::once(&"L000").chain(dft_lint::LINT_IDS) {
            let n = diags.iter().filter(|d| d.id == *id).count();
            total += n;
            println!("  {id}: {n}");
        }
        println!("  total: {total}");
    }

    let fails = if deny_all {
        !diags.is_empty()
    } else {
        diags.iter().any(|d| d.id == "L000")
    };
    if fails {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
