//! Icosahedral quasicrystals by the 6D cut-and-project method, with a
//! Tsai-type binary (Yb/Cd) decoration, and nanoparticle carving.
//!
//! The paper's first science application is the thermodynamic stability of
//! Tsai-type icosahedral YbCd5.7 nanoparticles (Takakura et al. structure;
//! Yb295Cd1648 with 1,943 atoms). Here the aperiodic, long-range-ordered
//! point set is generated from first principles of quasicrystallography:
//! project the 6D hypercubic lattice `Z^6` onto a 3D "physical" subspace
//! `E_par` oriented so the 6 lattice basis vectors map onto the six
//! five-fold axes of an icosahedron; accept a lattice point when its
//! complementary projection lands inside a window in `E_perp`. A spherical
//! window preserves full icosahedral symmetry (verified by the five-fold
//! rotation test below). Chemical decoration: points with small
//! `|x_perp|` (deep inside the acceptance window) become the rare-earth
//! species — a Tsai-like chemical ordering that yields the experimental
//! Cd/Yb ratio of ~5.7 for the right threshold.

use crate::structure::Structure;

/// The golden ratio.
pub const TAU: f64 = 1.618_033_988_749_895;

/// Parameters of the cut-and-project generation.
#[derive(Clone, Copy, Debug)]
pub struct QcParams {
    /// 6D lattice constant (sets the physical length scale; Bohr).
    pub lattice_constant: f64,
    /// Acceptance-window radius in `E_perp` (in units of the projected
    /// basis length; ~1.5-2.5 gives Tsai-like densities).
    pub window: f64,
    /// Fraction of the window radius below which a site is decorated as
    /// the rare-earth species ("Yb"); the rest are "Cd".
    pub yb_window_fraction: f64,
    /// Range of 6D integer coordinates searched (`-n..=n` per axis).
    pub n_range: i32,
}

impl Default for QcParams {
    fn default() -> Self {
        Self {
            lattice_constant: 10.0,
            window: 1.8,
            yb_window_fraction: 0.42,
            n_range: 3,
        }
    }
}

/// Six icosahedral parallel-space basis vectors (rows) and their
/// perpendicular-space partners, normalized so each 6D basis vector is a
/// unit vector (the pair `(a_i, b_i)/sqrt(1+tau^2)` is orthonormal in 6D).
fn icosahedral_bases() -> ([[f64; 3]; 6], [[f64; 3]; 6]) {
    let a = [
        [1.0, TAU, 0.0],
        [-1.0, TAU, 0.0],
        [0.0, 1.0, TAU],
        [0.0, -1.0, TAU],
        [TAU, 0.0, 1.0],
        [-TAU, 0.0, 1.0],
    ];
    let b = [
        [TAU, -1.0, 0.0],
        [-TAU, -1.0, 0.0],
        [0.0, TAU, -1.0],
        [0.0, -TAU, -1.0],
        [-1.0, 0.0, TAU],
        [1.0, 0.0, TAU],
    ];
    (a, b)
}

/// Generate the vertex set of an icosahedral quasicrystal by
/// cut-and-project. Returns positions (centred at the origin) and the
/// perpendicular-space norms used for decoration.
pub fn icosahedral_quasicrystal(p: &QcParams) -> (Vec<[f64; 3]>, Vec<f64>) {
    let (a, b) = icosahedral_bases();
    let norm = (1.0 + TAU * TAU).sqrt();
    let scale = p.lattice_constant / norm;
    let n = p.n_range;
    let mut positions = Vec::new();
    let mut perp_norms = Vec::new();
    // iterate over Z^6 box
    let mut idx = [0i32; 6];
    // the recursion threads the whole cut-and-project state explicitly
    #[allow(clippy::too_many_arguments)]
    fn rec(
        d: usize,
        idx: &mut [i32; 6],
        n: i32,
        a: &[[f64; 3]; 6],
        b: &[[f64; 3]; 6],
        scale: f64,
        norm: f64,
        window: f64,
        positions: &mut Vec<[f64; 3]>,
        perp_norms: &mut Vec<f64>,
    ) {
        if d == 6 {
            let mut xp = [0.0f64; 3];
            let mut xq = [0.0f64; 3];
            for i in 0..6 {
                for k in 0..3 {
                    xp[k] += idx[i] as f64 * a[i][k];
                    xq[k] += idx[i] as f64 * b[i][k];
                }
            }
            let perp = (xq[0] * xq[0] + xq[1] * xq[1] + xq[2] * xq[2]).sqrt() / norm;
            if perp <= window {
                positions.push([xp[0] * scale, xp[1] * scale, xp[2] * scale]);
                perp_norms.push(perp);
            }
            return;
        }
        for v in -n..=n {
            idx[d] = v;
            rec(
                d + 1,
                idx,
                n,
                a,
                b,
                scale,
                norm,
                window,
                positions,
                perp_norms,
            );
        }
    }
    rec(
        0,
        &mut idx,
        n,
        &a,
        &b,
        scale,
        norm,
        p.window,
        &mut positions,
        &mut perp_norms,
    );
    (positions, perp_norms)
}

/// Carve a nanoparticle of radius `r` out of the quasicrystal and decorate
/// it (Yb inside the inner perpendicular window, Cd outside), shifted so
/// the particle is centred in a cubic box with `vacuum` padding.
pub fn nanoparticle(p: &QcParams, r: f64, vacuum: f64) -> Structure {
    let (pos, perp) = icosahedral_quasicrystal(p);
    let mut positions = Vec::new();
    let mut species: Vec<&'static str> = Vec::new();
    for (x, &w) in pos.iter().zip(&perp) {
        let rr = (x[0] * x[0] + x[1] * x[1] + x[2] * x[2]).sqrt();
        if rr <= r {
            positions.push(*x);
            species.push(if w < p.yb_window_fraction * p.window {
                "Yb"
            } else {
                "Cd"
            });
        }
    }
    let box_l = 2.0 * (r + vacuum);
    for q in positions.iter_mut() {
        for k in 0..3 {
            q[k] += box_l / 2.0;
        }
    }
    Structure {
        positions,
        species,
        cell: [box_l; 3],
        periodic: [false; 3],
    }
}

/// Rotation matrix by angle `t` about unit axis `u` (Rodrigues).
pub fn rotation_about(u: [f64; 3], t: f64) -> [[f64; 3]; 3] {
    let (c, s) = (t.cos(), t.sin());
    let mut r = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let eps = |i: usize, j: usize, k: usize| -> f64 {
                match (i, j, k) {
                    (0, 1, 2) | (1, 2, 0) | (2, 0, 1) => 1.0,
                    (0, 2, 1) | (2, 1, 0) | (1, 0, 2) => -1.0,
                    _ => 0.0,
                }
            };
            let mut cross = 0.0;
            for k in 0..3 {
                cross += eps(i, j, k) * u[k];
            }
            r[i][j] = c * if i == j { 1.0 } else { 0.0 } + (1.0 - c) * u[i] * u[j] - s * cross;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> QcParams {
        // small lattice constant so several shells fall inside the test
        // balls below (nearest projected neighbours sit at ~lattice_constant)
        QcParams {
            lattice_constant: 5.0,
            window: 1.5,
            yb_window_fraction: 0.45,
            n_range: 2,
        }
    }

    #[test]
    fn point_set_is_nonempty_and_origin_included() {
        let (pos, _) = icosahedral_quasicrystal(&small_params());
        assert!(pos.len() > 50, "got {} points", pos.len());
        assert!(pos.iter().any(|p| p.iter().all(|&c| c.abs() < 1e-12)));
    }

    #[test]
    fn five_fold_symmetry_about_an_icosahedral_axis() {
        // a spherical window makes the projected set invariant under the
        // icosahedral group; check the 72-degree rotation about a 5-fold
        // axis maps the set onto itself
        let (pos, _) = icosahedral_quasicrystal(&small_params());
        let nrm = (1.0 + TAU * TAU).sqrt();
        let axis = [1.0 / nrm, TAU / nrm, 0.0]; // the a_1 direction
        let rot = rotation_about(axis, 2.0 * std::f64::consts::PI / 5.0);
        // restrict to a modest ball so every rotated partner is inside the
        // enumerated range
        let inner: Vec<[f64; 3]> = pos
            .iter()
            .filter(|p| (p[0].powi(2) + p[1].powi(2) + p[2].powi(2)).sqrt() < 12.0)
            .cloned()
            .collect();
        assert!(inner.len() > 10);
        for p in &inner {
            let q = [
                rot[0][0] * p[0] + rot[0][1] * p[1] + rot[0][2] * p[2],
                rot[1][0] * p[0] + rot[1][1] * p[1] + rot[1][2] * p[2],
                rot[2][0] * p[0] + rot[2][1] * p[1] + rot[2][2] * p[2],
            ];
            let found = pos.iter().any(|r| {
                (r[0] - q[0]).abs() < 1e-6
                    && (r[1] - q[1]).abs() < 1e-6
                    && (r[2] - q[2]).abs() < 1e-6
            });
            assert!(found, "rotated image of {p:?} missing");
        }
    }

    #[test]
    fn aperiodicity_no_short_translation_maps_set_to_itself() {
        // crystals have lattice translations; the QC must not (test a few
        // candidate short difference vectors on an inner ball)
        let (pos, _) = icosahedral_quasicrystal(&small_params());
        let inner: Vec<[f64; 3]> = pos
            .iter()
            .filter(|p| (p[0].powi(2) + p[1].powi(2) + p[2].powi(2)).sqrt() < 10.0)
            .cloned()
            .collect();
        // candidate translations: differences from the origin to its
        // nearest neighbours
        let mut candidates: Vec<[f64; 3]> = inner
            .iter()
            .filter(|p| {
                let r = (p[0].powi(2) + p[1].powi(2) + p[2].powi(2)).sqrt();
                r > 1e-9 && r < 10.0
            })
            .cloned()
            .collect();
        candidates.truncate(6);
        assert!(!candidates.is_empty());
        for t in candidates {
            let mut all_mapped = true;
            for p in &inner {
                let q = [p[0] + t[0], p[1] + t[1], p[2] + t[2]];
                if (q[0].powi(2) + q[1].powi(2) + q[2].powi(2)).sqrt() > 10.0 {
                    continue; // outside the tested ball
                }
                let found = pos.iter().any(|r| {
                    (r[0] - q[0]).abs() < 1e-6
                        && (r[1] - q[1]).abs() < 1e-6
                        && (r[2] - q[2]).abs() < 1e-6
                });
                if !found {
                    all_mapped = false;
                    break;
                }
            }
            assert!(!all_mapped, "translation {t:?} maps the QC to itself");
        }
    }

    #[test]
    fn nanoparticle_composition_is_tsai_like() {
        let p = QcParams {
            n_range: 3,
            ..QcParams::default()
        };
        let np = nanoparticle(&p, 28.0, 8.0);
        assert!(np.n_atoms() > 100, "atoms: {}", np.n_atoms());
        let yb = np.count("Yb");
        let cd = np.count("Cd");
        assert!(yb > 0 && cd > 0);
        let ratio = cd as f64 / yb as f64;
        // experimental YbCd5.7; accept a broad Tsai-like band
        assert!(
            ratio > 2.0 && ratio < 12.0,
            "Cd/Yb ratio {ratio} ({cd}/{yb})"
        );
        // atoms sit inside the box with the requested vacuum
        for q in &np.positions {
            for k in 0..3 {
                assert!(q[k] > 4.0 && q[k] < np.cell[k] - 4.0);
            }
        }
    }

    #[test]
    fn minimum_distance_is_physical() {
        let (pos, _) = icosahedral_quasicrystal(&small_params());
        // brute-force min distance within an inner ball
        let inner: Vec<[f64; 3]> = pos
            .iter()
            .filter(|p| (p[0].powi(2) + p[1].powi(2) + p[2].powi(2)).sqrt() < 10.0)
            .cloned()
            .collect();
        let mut dmin = f64::INFINITY;
        for i in 0..inner.len() {
            for j in (i + 1)..inner.len() {
                let d = ((inner[i][0] - inner[j][0]).powi(2)
                    + (inner[i][1] - inner[j][1]).powi(2)
                    + (inner[i][2] - inner[j][2]).powi(2))
                .sqrt();
                dmin = dmin.min(d);
            }
        }
        assert!(dmin > 1.0, "atoms unphysically close: {dmin}");
    }

    #[test]
    fn rotation_matrix_is_orthogonal() {
        let r = rotation_about([0.0, 0.0, 1.0], 0.7);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|k| r[k][i] * r[k][j]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-12);
            }
        }
    }
}
