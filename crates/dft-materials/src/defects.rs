//! Extended defects: screw dislocations, reflection twins, random solutes.
//!
//! These generate the paper's Mg-Y benchmark family: "DislocMgY" (a
//! pyramidal II ⟨c+a⟩ screw dislocation with a Y solute in the core) and
//! "TwinDislocMgY" (the dislocation interacting with a reflection twin in
//! a 1 at.% Y random solid solution).

use crate::structure::Structure;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Apply a Volterra screw-dislocation displacement with the line along `z`
/// through `(x0, y0)` and Burgers magnitude `b` (displacement along `z`):
///
/// ```text
/// u_z(x, y) = b / (2 pi) * atan2(y - y0, x - x0)
/// ```
pub fn screw_dislocation_z(s: &mut Structure, x0: f64, y0: f64, b: f64) {
    for p in s.positions.iter_mut() {
        let theta = (p[1] - y0).atan2(p[0] - x0);
        p[2] += b * theta / (2.0 * std::f64::consts::PI);
    }
}

/// The screw displacement field itself (for tests and elasticity checks).
pub fn screw_uz(x: f64, y: f64, x0: f64, y0: f64, b: f64) -> f64 {
    b * (y - y0).atan2(x - x0) / (2.0 * std::f64::consts::PI)
}

/// Build a reflection twin with a coherent boundary at `z = z_plane`: the
/// lower half of the input crystal is kept, the upper half is replaced by
/// the **mirror image** of the lower half. Atoms within `merge_tol` of the
/// plane sit on the boundary and are kept once.
pub fn reflection_twin_z(s: &Structure, z_plane: f64, merge_tol: f64) -> Structure {
    let mut positions = Vec::new();
    let mut species = Vec::new();
    for (p, &sp) in s.positions.iter().zip(&s.species) {
        if p[2] <= z_plane + merge_tol {
            positions.push(*p);
            species.push(sp);
            // mirror partner above the plane (skip boundary atoms — they
            // map onto themselves)
            if p[2] < z_plane - merge_tol {
                let zm = 2.0 * z_plane - p[2];
                if zm <= s.cell[2] + merge_tol {
                    positions.push([p[0], p[1], zm]);
                    species.push(sp);
                }
            }
        }
    }
    Structure {
        positions,
        species,
        cell: s.cell,
        periodic: s.periodic,
    }
}

/// Substitute a fraction `concentration` of host atoms by `solute`
/// (deterministic for a given seed). Returns the indices substituted.
pub fn random_solutes(
    s: &mut Structure,
    solute: &'static str,
    concentration: f64,
    seed: u64,
) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&concentration));
    let n = s.n_atoms();
    let target = ((n as f64) * concentration).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = Vec::with_capacity(target);
    while chosen.len() < target {
        let i = rng.gen_range(0..n);
        if !chosen.contains(&i) {
            chosen.push(i);
            s.species[i] = solute;
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg::hcp_supercell;

    #[test]
    fn burgers_circuit_closes_to_b() {
        // going around the line once accumulates exactly b
        let b = 11.4; // |<c+a>| of Mg in Bohr, roughly
        let mut acc: f64 = 0.0;
        let n = 400;
        let mut prev = screw_uz(1.0, 0.0, 0.0, 0.0, b);
        for k in 1..=n {
            let th = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            // avoid the branch cut by integrating increments
            let u = screw_uz(th.cos(), th.sin(), 0.0, 0.0, b);
            let mut du = u - prev;
            if du > b / 2.0 {
                du -= b;
            }
            if du < -b / 2.0 {
                du += b;
            }
            acc += du;
            prev = u;
        }
        assert!((acc.abs() - b).abs() < 1e-9, "circuit sum {acc} vs b {b}");
    }

    #[test]
    fn screw_displaces_antisymmetrically() {
        let mut s = hcp_supercell(2, 2, 2, [false, false, true]);
        let before = s.positions.clone();
        let (cx, cy) = (s.cell[0] / 2.0 + 0.1, s.cell[1] / 2.0 + 0.1);
        screw_dislocation_z(&mut s, cx, cy, 2.0);
        // displacement depends only on the angle: points opposite each
        // other differ by +-b/2
        let mut moved = 0;
        for (p, q) in s.positions.iter().zip(before.iter()) {
            if (p[2] - q[2]).abs() > 1e-9 {
                moved += 1;
            }
            assert!((p[2] - q[2]).abs() <= 1.0 + 1e-12, "|u_z| <= b/2");
        }
        assert!(moved > s.n_atoms() / 2, "most atoms displaced");
    }

    #[test]
    fn solutes_hit_requested_concentration_and_are_deterministic() {
        let mut s1 = hcp_supercell(4, 3, 3, [true; 3]);
        let picked1 = random_solutes(&mut s1, "Y", 0.01, 9);
        let mut s2 = hcp_supercell(4, 3, 3, [true; 3]);
        let picked2 = random_solutes(&mut s2, "Y", 0.01, 9);
        assert_eq!(picked1, picked2, "seeded determinism");
        let n = s1.n_atoms();
        let want = ((n as f64) * 0.01).round() as usize;
        assert_eq!(s1.count("Y"), want);
        assert_eq!(s1.count("Mg"), n - want);
        // a different seed picks different sites
        let mut s3 = hcp_supercell(4, 3, 3, [true; 3]);
        let picked3 = random_solutes(&mut s3, "Y", 0.01, 10);
        assert_ne!(picked1, picked3);
    }
}

#[cfg(test)]
mod twin_tests {
    use super::*;
    use crate::mg::hcp_supercell;

    #[test]
    fn twin_is_mirror_symmetric_about_the_plane() {
        let base = hcp_supercell(2, 2, 4, [true, true, false]);
        let zp = base.cell[2] / 2.0;
        let twin = reflection_twin_z(&base, zp, 1e-6);
        // every atom must have a mirror partner (itself if on the plane)
        for (i, p) in twin.positions.iter().enumerate() {
            let zm = 2.0 * zp - p[2];
            if zm < 0.0 || zm > twin.cell[2] {
                continue;
            }
            let found = twin.positions.iter().any(|q| {
                (q[0] - p[0]).abs() < 1e-9 && (q[1] - p[1]).abs() < 1e-9 && (q[2] - zm).abs() < 1e-9
            });
            assert!(found, "atom {i} at {p:?} lacks mirror partner");
        }
    }

    #[test]
    fn twin_breaks_translational_symmetry_along_z() {
        // the twinned crystal is NOT the perfect crystal
        let base = hcp_supercell(1, 1, 4, [true, true, false]);
        let zp = base.cell[2] / 2.0;
        let twin = reflection_twin_z(&base, zp, 1e-6);
        let mut differs = false;
        'outer: for p in &twin.positions {
            for q in &base.positions {
                if (p[0] - q[0]).abs() < 1e-9
                    && (p[1] - q[1]).abs() < 1e-9
                    && (p[2] - q[2]).abs() < 1e-9
                {
                    continue 'outer;
                }
            }
            differs = true;
            break;
        }
        assert!(differs, "twin must differ from the perfect crystal");
    }
}
