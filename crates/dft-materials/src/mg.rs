//! HCP magnesium supercells (orthorhombic 4-atom representation).

use crate::structure::Structure;

/// HCP lattice constant of Mg, Bohr (a = 3.209 Angstrom).
pub const MG_A: f64 = 6.0646;
/// Ideal-ish c/a ratio of Mg (1.624).
pub const MG_C_OVER_A: f64 = 1.624;

/// Build an `nx x ny x nz` orthorhombic HCP supercell. The orthorhombic
/// cell is `a x a*sqrt(3) x c` with 4 atoms at the standard HCP basis.
pub fn hcp_supercell(nx: usize, ny: usize, nz: usize, periodic: [bool; 3]) -> Structure {
    let a = MG_A;
    let b = a * 3.0_f64.sqrt();
    let c = a * MG_C_OVER_A;
    // 4-atom orthorhombic basis of HCP (fractional)
    let basis = [
        [0.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [0.5, 5.0 / 6.0, 0.5],
        [0.0, 1.0 / 3.0, 0.5],
    ];
    let mut positions = Vec::with_capacity(4 * nx * ny * nz);
    for ix in 0..nx {
        for iy in 0..ny {
            for iz in 0..nz {
                for f in basis {
                    positions.push([
                        (ix as f64 + f[0]) * a,
                        (iy as f64 + f[1]) * b,
                        (iz as f64 + f[2]) * c,
                    ]);
                }
            }
        }
    }
    let n = positions.len();
    Structure {
        positions,
        species: vec!["Mg"; n],
        cell: [nx as f64 * a, ny as f64 * b, nz as f64 * c],
        periodic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_count_is_four_per_cell() {
        let s = hcp_supercell(3, 2, 2, [true; 3]);
        assert_eq!(s.n_atoms(), 4 * 3 * 2 * 2);
    }

    #[test]
    fn nearest_neighbour_distance_is_close_to_a() {
        let s = hcp_supercell(2, 2, 2, [true; 3]);
        let d = s.min_distance();
        // ideal HCP nearest neighbour = a (in-plane); with c/a slightly
        // above ideal the out-of-plane neighbour is marginally longer
        assert!(
            (d - MG_A).abs() < 0.05 * MG_A,
            "nearest neighbour {d} vs a = {MG_A}"
        );
    }

    #[test]
    fn coordination_number_is_twelve() {
        let s = hcp_supercell(3, 3, 3, [true; 3]);
        // count neighbours of atom 0 within 1.1 * a
        let mut coord = 0;
        for j in 1..s.n_atoms() {
            if s.distance(0, j) < 1.1 * MG_A {
                coord += 1;
            }
        }
        assert_eq!(coord, 12, "HCP coordination");
    }

    #[test]
    fn density_matches_hcp_packing() {
        let s = hcp_supercell(2, 2, 2, [true; 3]);
        let vol = s.cell[0] * s.cell[1] * s.cell[2];
        let v_per_atom = vol / s.n_atoms() as f64;
        // HCP volume per atom = sqrt(3)/2 a^2 c / 2... = a^2 c sqrt(3)/4
        let exact = MG_A * MG_A * (MG_A * MG_C_OVER_A) * 3.0_f64.sqrt() / 4.0;
        assert!((v_per_atom - exact).abs() < 1e-9 * exact);
    }
}
