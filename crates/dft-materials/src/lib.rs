//! # dft-materials
//!
//! Atomic-structure generators for the paper's two science applications
//! (Sec. 6.2):
//!
//! * [`quasicrystal`] — Tsai-type icosahedral **YbCd quasicrystal**
//!   nanoparticles via the 6D cut-and-project method (aperiodic,
//!   long-range-ordered; Yb295Cd1648-class particles for the stability
//!   study);
//! * [`mg`] — HCP magnesium supercells;
//! * [`defects`] — pyramidal ⟨c+a⟩ **screw dislocations** (Volterra
//!   fields), **reflection twin boundaries**, and random Y **solutes** at
//!   1 at.% (the DislocMgY / TwinDislocMgY benchmark family);
//! * [`requests`] — request-side generators deriving whole job-server
//!   burst families (strain scans, solute substitutions, jitter
//!   ensembles) from one base structure;
//! * [`structure`] — the shared [`structure::Structure`] type.
//!
//! All generators are deterministic given their seeds.

#![deny(unsafe_code)]
// indexed loops deliberately mirror the paper's subscript notation
#![allow(clippy::needless_range_loop)]

pub mod defects;
pub mod mg;
pub mod quasicrystal;
pub mod requests;
pub mod structure;

pub use defects::{random_solutes, reflection_twin_z, screw_dislocation_z};
pub use mg::hcp_supercell;
pub use quasicrystal::{icosahedral_quasicrystal, nanoparticle, QcParams};
pub use requests::{jitter_ensemble, strain_scan, substitution_scan};
pub use structure::Structure;
