//! The shared atomic-structure container.

use serde::Serialize;

/// A collection of atoms with species labels in an orthorhombic cell.
#[derive(Clone, Debug, Serialize)]
pub struct Structure {
    /// Cartesian positions (Bohr).
    pub positions: Vec<[f64; 3]>,
    /// Species label per atom ("Mg", "Y", "Yb", "Cd", ...).
    pub species: Vec<&'static str>,
    /// Orthorhombic cell lengths (Bohr).
    pub cell: [f64; 3],
    /// Periodicity per axis.
    pub periodic: [bool; 3],
}

impl Structure {
    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.positions.len()
    }

    /// Count atoms of a given species.
    pub fn count(&self, sp: &str) -> usize {
        self.species.iter().filter(|&&s| s == sp).count()
    }

    /// Smallest interatomic distance (periodic-aware, brute force — meant
    /// for validation on moderate systems).
    pub fn min_distance(&self) -> f64 {
        let n = self.n_atoms();
        let mut dmin = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                dmin = dmin.min(self.distance(i, j));
            }
        }
        dmin
    }

    /// Periodic-aware distance between atoms `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        let mut d2 = 0.0;
        for k in 0..3 {
            let mut dx = self.positions[i][k] - self.positions[j][k];
            if self.periodic[k] {
                dx -= (dx / self.cell[k]).round() * self.cell[k];
            }
            d2 += dx * dx;
        }
        d2.sqrt()
    }

    /// Geometric centroid.
    pub fn centroid(&self) -> [f64; 3] {
        let n = self.n_atoms().max(1) as f64;
        let mut c = [0.0; 3];
        for p in &self.positions {
            for k in 0..3 {
                c[k] += p[k] / n;
            }
        }
        c
    }

    /// Electron count given a map from species to valence charge.
    pub fn electron_count(&self, z_of: impl Fn(&str) -> f64) -> f64 {
        self.species.iter().map(|s| z_of(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_atoms() -> Structure {
        Structure {
            positions: vec![[0.5, 0.5, 0.5], [9.5, 0.5, 0.5]],
            species: vec!["Mg", "Y"],
            cell: [10.0, 10.0, 10.0],
            periodic: [true, false, false],
        }
    }

    #[test]
    fn periodic_distance_uses_nearest_image() {
        let s = two_atoms();
        assert!((s.distance(0, 1) - 1.0).abs() < 1e-12);
        let mut s2 = s.clone();
        s2.periodic = [false; 3];
        assert!((s2.distance(0, 1) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn counts_and_electrons() {
        let s = two_atoms();
        assert_eq!(s.count("Mg"), 1);
        assert_eq!(s.count("Y"), 1);
        let ne = s.electron_count(|sp| if sp == "Mg" { 2.0 } else { 3.0 });
        assert_eq!(ne, 5.0);
    }
}
