//! Request-side structure generators: families of related [`Structure`]s
//! sized for submission as serving bursts (screening scans, equation-of-state
//! sweeps). Each generator derives a whole batch from one base structure, so
//! a job server sees many near-identical requests — the access pattern the
//! converged-state cache and warm-start path are built for.
//!
//! All generators are deterministic given their inputs.

use crate::structure::Structure;

/// Isotropic strain scan: one structure per strain `e`, with the cell and
/// every Cartesian position scaled by `1 + e` (fractional coordinates are
/// preserved). The classic equation-of-state burst.
pub fn strain_scan(base: &Structure, strains: &[f64]) -> Vec<Structure> {
    strains
        .iter()
        .map(|&e| {
            let s = 1.0 + e;
            let mut out = base.clone();
            for k in 0..3 {
                out.cell[k] *= s;
            }
            for p in &mut out.positions {
                for k in 0..3 {
                    p[k] *= s;
                }
            }
            out
        })
        .collect()
}

/// Substitution scan for dilute-solute screening: one structure per listed
/// site, with that site's species replaced by `solute`. Submitting the
/// family probes every symmetry-inequivalent substitution of a supercell.
pub fn substitution_scan(
    base: &Structure,
    solute: &'static str,
    sites: &[usize],
) -> Vec<Structure> {
    sites
        .iter()
        .map(|&i| {
            let mut out = base.clone();
            out.species[i] = solute;
            out
        })
        .collect()
}

/// Deterministic thermal-jitter ensemble: `count` copies of `base` with
/// every coordinate displaced by at most `amp` (Bohr), driven by a
/// splitmix64 stream seeded from `seed` — the same inputs always produce
/// the same ensemble, so resubmitted bursts hit the converged-state cache.
pub fn jitter_ensemble(base: &Structure, amp: f64, count: usize, seed: u64) -> Vec<Structure> {
    let mut state = seed;
    let mut next_unit = || {
        // splitmix64: cheap, reproducible, no external RNG dependency
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // map to [-1, 1)
        (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..count)
        .map(|_| {
            let mut out = base.clone();
            for p in &mut out.positions {
                for k in 0..3 {
                    p[k] += amp * next_unit();
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Structure {
        Structure {
            positions: vec![[1.0, 1.0, 1.0], [3.0, 3.0, 3.0]],
            species: vec!["Mg", "Mg"],
            cell: [6.0, 6.0, 6.0],
            periodic: [true; 3],
        }
    }

    #[test]
    fn strain_scan_preserves_fractional_coordinates() {
        let family = strain_scan(&base(), &[-0.02, 0.0, 0.02]);
        assert_eq!(family.len(), 3);
        assert_eq!(family[1].cell, base().cell);
        for s in &family {
            for (p, p0) in s.positions.iter().zip(base().positions.iter()) {
                for k in 0..3 {
                    let frac = p[k] / s.cell[k];
                    let frac0 = p0[k] / base().cell[k];
                    assert!((frac - frac0).abs() < 1e-15);
                }
            }
        }
        assert!(family[0].cell[0] < 6.0 && family[2].cell[0] > 6.0);
    }

    #[test]
    fn substitution_scan_swaps_exactly_one_site() {
        let family = substitution_scan(&base(), "Y", &[0, 1]);
        assert_eq!(family.len(), 2);
        assert_eq!(family[0].species, vec!["Y", "Mg"]);
        assert_eq!(family[1].species, vec!["Mg", "Y"]);
        for s in &family {
            assert_eq!(s.count("Y"), 1);
            assert_eq!(s.positions, base().positions);
        }
    }

    #[test]
    fn jitter_ensemble_is_deterministic_and_bounded() {
        let a = jitter_ensemble(&base(), 0.1, 4, 7);
        let b = jitter_ensemble(&base(), 0.1, 4, 7);
        let c = jitter_ensemble(&base(), 0.1, 4, 8);
        assert_eq!(a.len(), 4);
        for (sa, sb) in a.iter().zip(b.iter()) {
            assert_eq!(sa.positions, sb.positions, "same seed must reproduce");
        }
        let moved = a
            .iter()
            .zip(c.iter())
            .any(|(sa, sc)| sa.positions != sc.positions);
        assert!(moved, "different seeds must differ");
        for s in &a {
            for (p, p0) in s.positions.iter().zip(base().positions.iter()) {
                for k in 0..3 {
                    assert!((p[k] - p0[k]).abs() <= 0.1, "displacement exceeds amp");
                }
            }
        }
    }
}
