//! Schedule-exploration sanitizer: seeded message-delivery perturbation
//! plus an N-schedule bit-identity driver.
//!
//! The repo's reproducibility claims rest on the distributed solvers being
//! *deterministic by construction*: every collective accumulates in fixed
//! rank order, ghost harvests fill slots in list order (not arrival
//! order), and wire tags fully disambiguate streams. DPOR-style systematic
//! concurrency testing shows that such claims are checkable mechanically:
//! perturb the schedule, rerun, and compare bits. This module is the
//! bounded version of that idea — a [`SchedulePlan`] seeds a per-rank
//! deterministic RNG that
//!
//! 1. injects bounded delays ahead of sends (salted by the wire-tag band,
//!    so different traffic classes are skewed against each other), which
//!    reorders channel arrivals and flips the readiness order every
//!    `try_recv_*` poll observes, and
//! 2. permutes the insertion position of drained packets in the pending
//!    queue, preserving per-`(src, tag)` FIFO (the MPI non-overtaking
//!    rule) while shuffling cross-stream order.
//!
//! [`explore_schedules`] then runs a cluster closure under N derived
//! seeds and reports the first pair of schedules whose per-rank results
//! diverge — for the deterministic SCF/forces oracles the assertion is
//! bit-identity across all N; for an order-*dependent* program the
//! divergence report names the two seeds that reproduce the difference.
//!
//! The perturbation state is a plain `Option` on [`ThreadComm`]
//! (`None` = zero-cost): production runs never enable it, CI runs it as a
//! bounded gate (N=8 by default, `DFT_SCHED_EXPLORE=off` to skip), and the
//! `sanitize` feature's message-leak ledger composes with it for free.
//!
//! [`ThreadComm`]: crate::comm::ThreadComm

use crate::comm::{run_cluster_with, ClusterOptions, ThreadComm};
use std::time::Duration;

/// SplitMix64: the de-facto standard 64-bit seed expander. Pure,
/// stateless, and bijective — the whole exploration is replayable from one
/// `u64`.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded message-schedule perturbation, applied identically on every
/// run with the same plan: deterministic chaos.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulePlan {
    /// Base seed; each rank derives its own stream as
    /// `splitmix64(seed ^ rank)`.
    pub seed: u64,
    /// Upper bound on one injected pre-send delay.
    pub max_delay: Duration,
    /// Apply a delay to roughly one send in `delay_one_in` (1 = every
    /// send). Keeps the oracle gate cheap while still reordering arrivals.
    pub delay_one_in: u32,
}

impl SchedulePlan {
    /// The CI-gate defaults: 50 microsecond delay cap on ~1/8 of sends.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            max_delay: Duration::from_micros(50),
            delay_one_in: 8,
        }
    }

    /// An aggressive plan for explorer self-tests: delay every send, with
    /// a larger cap, so arrival order is dominated by the seeded delays.
    #[must_use]
    pub fn aggressive(seed: u64) -> Self {
        Self {
            seed,
            max_delay: Duration::from_millis(4),
            delay_one_in: 1,
        }
    }
}

/// Per-rank perturbation state derived from a [`SchedulePlan`].
#[derive(Clone, Debug)]
pub struct SchedState {
    rng: u64,
    max_delay_nanos: u64,
    delay_one_in: u32,
}

impl SchedState {
    /// Rank `rank`'s stream of the plan.
    #[must_use]
    pub fn for_rank(plan: &SchedulePlan, rank: usize) -> Self {
        Self {
            rng: splitmix64(plan.seed ^ (rank as u64).wrapping_mul(0x9e37_79b9)),
            max_delay_nanos: plan.max_delay.as_nanos().min(u128::from(u64::MAX)) as u64,
            delay_one_in: plan.delay_one_in.max(1),
        }
    }

    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.rng = splitmix64(self.rng);
        self.rng
    }

    /// The delay to inject ahead of a send carrying `wire_tag`, or `None`
    /// for this send. Salting by the tag keeps distinct tag bands on
    /// distinct skew sequences even when their sends interleave.
    pub fn delay_for(&mut self, wire_tag: u64) -> Option<Duration> {
        let draw = self.next_u64() ^ splitmix64(wire_tag);
        if self.max_delay_nanos == 0 || !draw.is_multiple_of(u64::from(self.delay_one_in)) {
            return None;
        }
        Some(Duration::from_nanos(
            splitmix64(draw) % self.max_delay_nanos,
        ))
    }

    /// A pending-queue insertion slot in `floor..=len` (inclusive of the
    /// tail): where a freshly drained packet lands among packets of
    /// *other* `(src, tag)` streams.
    pub fn insert_slot(&mut self, floor: usize, len: usize) -> usize {
        let span = (len - floor) as u64 + 1;
        floor + (self.next_u64() % span) as usize
    }
}

/// Two schedules whose per-rank results diverged: replay either seed to
/// reproduce its half of the difference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleDivergence {
    /// Index (0-based) and derived seed of the baseline schedule.
    pub schedule_a: usize,
    pub seed_a: u64,
    /// Index and derived seed of the diverging schedule.
    pub schedule_b: usize,
    pub seed_b: u64,
    /// First rank whose result differs between the two schedules.
    pub rank: usize,
}

impl std::fmt::Display for ScheduleDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule divergence: rank {} differs between schedule {} (seed {:#x}) and schedule {} (seed {:#x})",
            self.rank, self.schedule_a, self.seed_a, self.schedule_b, self.seed_b
        )
    }
}

/// The derived seed of schedule `k` under `base_seed` (pure, so a reported
/// divergence is replayable without rerunning the search).
#[must_use]
pub fn schedule_seed(base_seed: u64, k: usize) -> u64 {
    splitmix64(base_seed.wrapping_add(k as u64))
}

/// Run `f` on an `n_ranks` cluster under `n_schedules` seeded delivery
/// schedules and compare the per-rank results against the first schedule.
/// Returns the (schedule-invariant) results on success, or the first
/// [`ScheduleDivergence`] found. `proto` supplies timeout/fault settings;
/// its own `schedule` field is overridden per iteration. With
/// `n_schedules == 0` the closure runs once, unperturbed.
pub fn explore_schedules<T, F>(
    n_ranks: usize,
    n_schedules: usize,
    base_seed: u64,
    plan_of: impl Fn(u64) -> SchedulePlan,
    proto: &ClusterOptions,
    f: F,
) -> Result<Vec<T>, ScheduleDivergence>
where
    T: PartialEq + Send,
    F: Fn(&mut ThreadComm) -> T + Send + Sync,
{
    let mut opts = proto.clone();
    if n_schedules == 0 {
        opts.schedule = None;
        return Ok(run_cluster_with(n_ranks, &opts, f).0);
    }
    let seed0 = schedule_seed(base_seed, 0);
    opts.schedule = Some(plan_of(seed0));
    let (baseline, _) = run_cluster_with(n_ranks, &opts, &f);
    for k in 1..n_schedules {
        let seed = schedule_seed(base_seed, k);
        opts.schedule = Some(plan_of(seed));
        let (results, _) = run_cluster_with(n_ranks, &opts, &f);
        if let Some(rank) = (0..baseline.len()).find(|&r| results[r] != baseline[r]) {
            return Err(ScheduleDivergence {
                schedule_a: 0,
                seed_a: seed0,
                schedule_b: k,
                seed_b: seed,
                rank,
            });
        }
    }
    Ok(baseline)
}

/// Schedule count for CI gates: `DFT_SCHED_EXPLORE` unset uses
/// `default_n`, `off`/`0` disables exploration, any other value is parsed
/// as the count (falling back to `default_n`).
#[must_use]
pub fn schedules_from_env(default_n: usize) -> usize {
    match std::env::var("DFT_SCHED_EXPLORE") {
        Err(_) => default_n,
        Ok(v) if v == "off" || v == "0" => 0,
        Ok(v) => v.parse().unwrap_or(default_n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::WirePrecision;

    /// An order-DEPENDENT comm program: rank 0 polls ranks 1 and 2 with
    /// `try_recv_bytes` and records arrival order. The seeded send delays
    /// flip which peer lands first, so schedules diverge — exactly what
    /// the explorer must catch.
    fn order_dependent(c: &mut ThreadComm) -> Vec<u8> {
        let me = c.rank();
        if me == 0 {
            let mut order = Vec::new();
            let mut seen = [false; 3];
            while order.len() < 2 {
                for src in [1usize, 2] {
                    if !seen[src] {
                        if let Ok(Some(data)) = c.try_recv_bytes(src, 7) {
                            seen[src] = true;
                            order.extend_from_slice(&data);
                        }
                    }
                }
            }
            order
        } else {
            c.send_bytes(0, 7, vec![me as u8]).expect("send");
            Vec::new()
        }
    }

    /// An order-INDEPENDENT program: the same traffic, but rank 0 sums the
    /// payloads — any delivery order gives the same bits.
    fn order_independent(c: &mut ThreadComm) -> f64 {
        let mut v = [c.rank() as f64 + 1.0];
        c.allreduce_sum_f64(&mut v, WirePrecision::Fp64)
            .expect("allreduce");
        v[0]
    }

    #[test]
    fn explorer_catches_an_order_dependent_program() {
        // 24 aggressive schedules: the chance that every seeded delay
        // assignment yields the same arrival order is ~2^-23
        let div = explore_schedules(
            3,
            24,
            0xC0FFEE,
            SchedulePlan::aggressive,
            &ClusterOptions::default(),
            order_dependent,
        );
        let d = div.expect_err("order-dependent program must diverge");
        assert_eq!(d.rank, 0, "only rank 0's result is order-sensitive: {d}");
        assert_ne!(d.seed_a, d.seed_b);
        assert_eq!(d.seed_a, schedule_seed(0xC0FFEE, d.schedule_a));
        assert_eq!(d.seed_b, schedule_seed(0xC0FFEE, d.schedule_b));
    }

    #[test]
    fn deterministic_program_is_bit_identical_across_schedules() {
        let sums = explore_schedules(
            4,
            8,
            42,
            SchedulePlan::aggressive,
            &ClusterOptions::default(),
            order_independent,
        )
        .expect("deterministic program must not diverge");
        for s in sums {
            assert_eq!(s.to_bits(), 10.0f64.to_bits());
        }
    }

    #[test]
    fn schedule_replay_is_reproducible_from_the_seed() {
        // the per-rank delay/insertion draw streams are pure functions of
        // (plan, rank): replaying a seed replays the exact perturbation
        let plan = SchedulePlan::aggressive(0xDEAD_BEEF);
        for rank in 0..4 {
            let mut a = SchedState::for_rank(&plan, rank);
            let mut b = SchedState::for_rank(&plan, rank);
            for tag in 0..256u64 {
                assert_eq!(a.delay_for(tag), b.delay_for(tag));
                assert_eq!(
                    a.insert_slot(0, tag as usize),
                    b.insert_slot(0, tag as usize)
                );
            }
        }
        // and a full exploration under the same base seed returns the same
        // schedule-invariant results
        let run = || {
            explore_schedules(
                4,
                4,
                7,
                SchedulePlan::aggressive,
                &ClusterOptions::default(),
                order_independent,
            )
            .expect("deterministic")
        };
        assert_eq!(run(), run());
        // distinct ranks draw distinct streams
        let mut r0 = SchedState::for_rank(&plan, 0);
        let mut r1 = SchedState::for_rank(&plan, 1);
        assert_ne!(r0.next_u64(), r1.next_u64());
    }

    #[test]
    fn env_gate_parses_count_and_off() {
        // (env mutation is process-global; this test only exercises the
        // unset path plus the parser via direct calls)
        assert_eq!(schedules_from_env(8), 8);
    }
}
