//! Per-phase SCF/ChFES profiling — the measured counterpart of the paper's
//! Table 3 breakdown.
//!
//! The simulated schedule in [`crate::schedule`] *predicts* per-step wall
//! times of one SCF iteration (CF, CholGS-S/CI/O, RR-P/D/SR, DC,
//! DH+EP+Others) from machine models. This module *measures* the same
//! breakdown on the real solver path: the SCF driver threads a [`Profile`]
//! through ChFES, the FE Poisson solves, and the density build, opening a
//! [`PhaseScope`] around each step. Scopes accumulate wall-clock seconds,
//! analytic FLOP counts (the paper's convention: `gemm_flops`-style counts
//! attributed at call sites; CholGS-CI and RR-D are wall-time-only, matching
//! Sec. 6.3), and moved bytes. The finished [`ScfProfile`] is a
//! serde-serializable per-iteration + cumulative report.
//!
//! Profiling is strictly opt-in: call sites hold `Option<&Profile>`, and a
//! [`PhaseScope`] constructed from `None` never reads the clock, so the
//! disabled path costs one branch per scope.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// One step of the Table-3 breakdown, plus the residual `Other` bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Chebyshev filtering of the wavefunction block.
    Cf,
    /// CholGS overlap build `S = Psi_f† Psi_f`.
    CholGsS,
    /// CholGS Cholesky factorization + triangular inverse (wall-time-only).
    CholGsCi,
    /// CholGS orthonormalization GEMM `Psi_o = Psi_f L^{-†}`.
    CholGsO,
    /// Rayleigh-Ritz projection `Hp = Psi† (H Psi)`.
    RrP,
    /// Rayleigh-Ritz dense diagonalization (wall-time-only).
    RrD,
    /// Rayleigh-Ritz subspace rotation `Psi Q`.
    RrSr,
    /// Density compute from occupied orbitals.
    Dc,
    /// Discrete Hamiltonian setup: XC evaluation + effective potential.
    Dh,
    /// Electrostatic potential: FE Poisson solves.
    Ep,
    /// Checkpoint write: serializing SCF state to the snapshot store.
    Ck,
    /// Everything else inside the SCF loop (Lanczos bounds, occupations,
    /// mixing, energy integrals).
    Other,
}

impl Phase {
    /// All phases, in Table-3 order (the non-Table-3 `Ck` rides ahead of
    /// the `Other` bucket).
    pub const ALL: [Phase; 12] = [
        Phase::Cf,
        Phase::CholGsS,
        Phase::CholGsCi,
        Phase::CholGsO,
        Phase::RrP,
        Phase::RrD,
        Phase::RrSr,
        Phase::Dc,
        Phase::Dh,
        Phase::Ep,
        Phase::Ck,
        Phase::Other,
    ];

    /// The paper's step label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Cf => "CF",
            Phase::CholGsS => "CholGS-S",
            Phase::CholGsCi => "CholGS-CI",
            Phase::CholGsO => "CholGS-O",
            Phase::RrP => "RR-P",
            Phase::RrD => "RR-D",
            Phase::RrSr => "RR-SR",
            Phase::Dc => "DC",
            Phase::Dh => "DH",
            Phase::Ep => "EP",
            Phase::Ck => "CK",
            Phase::Other => "Other",
        }
    }

    fn index(self) -> usize {
        // dftlint:allow(L001, reason="Phase::ALL enumerates every variant by construction")
        Phase::ALL.iter().position(|&p| p == self).unwrap()
    }
}

#[derive(Clone, Copy, Default)]
struct PhaseAcc {
    seconds: f64,
    flops: u64,
    bytes: u64,
    calls: u64,
}

#[derive(Default)]
struct ProfileInner {
    /// One accumulator row per phase, per SCF iteration.
    iterations: Vec<[PhaseAcc; Phase::ALL.len()]>,
}

impl ProfileInner {
    fn current(&mut self) -> &mut [PhaseAcc; Phase::ALL.len()] {
        if self.iterations.is_empty() {
            self.iterations.push(Default::default());
        }
        // dftlint:allow(L001, reason="guarded by the push above: iterations is nonempty here")
        self.iterations.last_mut().unwrap()
    }
}

/// Accumulates per-phase, per-iteration measurements for one SCF run.
///
/// Shared by reference down the solver call tree; interior mutability keeps
/// the instrumented signatures `&Profile`.
#[derive(Default)]
pub struct Profile {
    inner: Mutex<ProfileInner>,
    started: Option<Instant>,
}

impl Profile {
    /// Empty profile; the run's total wall clock starts now.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(ProfileInner::default()),
            started: Some(Instant::now()),
        }
    }

    /// Open a new per-iteration bucket; subsequent scopes accumulate there.
    pub fn begin_iteration(&self) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iterations
            .push(Default::default());
    }

    /// RAII scope timing `phase`; commit happens on drop.
    pub fn scope(&self, phase: Phase) -> PhaseScope<'_> {
        PhaseScope::new(Some(self), phase)
    }

    fn record(&self, phase: Phase, seconds: f64, flops: u64, bytes: u64) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let acc = &mut inner.current()[phase.index()];
        acc.seconds += seconds;
        acc.flops += flops;
        acc.bytes += bytes;
        acc.calls += 1;
    }

    /// Freeze into a report. `total_seconds` defaults to the wall clock
    /// since [`Profile::new`] when `None`.
    pub fn finish(&self, total_seconds: Option<f64>) -> ScfProfile {
        let total = total_seconds
            .or_else(|| self.started.map(|t0| t0.elapsed().as_secs_f64()))
            .unwrap_or(0.0);
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let iterations: Vec<IterationProfile> = inner
            .iterations
            .iter()
            .enumerate()
            .map(|(i, row)| IterationProfile {
                iteration: i,
                phases: row_records(row),
            })
            .collect();
        let mut cum: [PhaseAcc; Phase::ALL.len()] = Default::default();
        for row in &inner.iterations {
            for (c, r) in cum.iter_mut().zip(row) {
                c.seconds += r.seconds;
                c.flops += r.flops;
                c.bytes += r.bytes;
                c.calls += r.calls;
            }
        }
        ScfProfile {
            total_seconds: total,
            iterations,
            cumulative: row_records(&cum),
        }
    }
}

fn row_records(row: &[PhaseAcc; Phase::ALL.len()]) -> Vec<PhaseRecord> {
    Phase::ALL
        .iter()
        .zip(row)
        .filter(|(_, acc)| acc.calls > 0)
        .map(|(&p, acc)| PhaseRecord {
            phase: p.label().to_string(),
            seconds: acc.seconds,
            flops: acc.flops,
            bytes: acc.bytes,
            calls: acc.calls,
        })
        .collect()
}

/// RAII timing scope. Built from `Option<&Profile>`: with `None` it is
/// inert — no clock read, no lock, nothing on drop.
pub struct PhaseScope<'a> {
    profile: Option<&'a Profile>,
    phase: Phase,
    t0: Option<Instant>,
    flops: u64,
    bytes: u64,
}

impl<'a> PhaseScope<'a> {
    /// Open a scope for `phase` (inert when `profile` is `None`).
    pub fn new(profile: Option<&'a Profile>, phase: Phase) -> Self {
        Self {
            profile,
            phase,
            t0: profile.map(|_| Instant::now()),
            flops: 0,
            bytes: 0,
        }
    }

    /// Attribute analytically counted FLOPs to this scope.
    #[inline]
    pub fn add_flops(&mut self, flops: u64) {
        if self.profile.is_some() {
            self.flops += flops;
        }
    }

    /// Attribute moved bytes to this scope.
    #[inline]
    pub fn add_bytes(&mut self, bytes: u64) {
        if self.profile.is_some() {
            self.bytes += bytes;
        }
    }
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        if let (Some(p), Some(t0)) = (self.profile, self.t0) {
            p.record(
                self.phase,
                t0.elapsed().as_secs_f64(),
                self.flops,
                self.bytes,
            );
        }
    }
}

/// Accumulated measurements of one phase (one Table-3 row).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase label ("CF", "CholGS-S", ...).
    pub phase: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Analytic FLOPs attributed at call sites (0 for wall-time-only steps).
    pub flops: u64,
    /// Bytes moved through the phase's dominant operands.
    pub bytes: u64,
    /// Number of scopes that hit this phase.
    pub calls: u64,
}

impl PhaseRecord {
    /// Sustained GFLOP/s of this phase: `flops / seconds / 1e9`.
    /// `None` for wall-time-only phases (no attributed FLOPs) or
    /// zero-duration records, where a rate is meaningless.
    pub fn gflops(&self) -> Option<f64> {
        if self.flops > 0 && self.seconds > 0.0 {
            Some(self.flops as f64 / self.seconds / 1e9)
        } else {
            None
        }
    }
}

/// Per-phase measurements of one SCF iteration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationProfile {
    /// Zero-based SCF iteration index.
    pub iteration: usize,
    /// Phases touched in this iteration, Table-3 order.
    pub phases: Vec<PhaseRecord>,
}

/// The full measured Table-3 report of one SCF run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScfProfile {
    /// Total wall-clock seconds of the profiled region.
    pub total_seconds: f64,
    /// Per-iteration breakdown.
    pub iterations: Vec<IterationProfile>,
    /// Sum over all iterations, per phase.
    pub cumulative: Vec<PhaseRecord>,
}

impl ScfProfile {
    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        // dftlint:allow(L001, reason="plain-data struct; serde_json serialization is infallible here")
        serde_json::to_string(self).expect("serializable")
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        // dftlint:allow(L001, reason="plain-data struct; serde_json serialization is infallible here")
        serde_json::to_string_pretty(self).expect("serializable")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Cumulative seconds of the phase labeled `label` (0 if absent).
    pub fn phase_seconds(&self, label: &str) -> f64 {
        self.cumulative
            .iter()
            .find(|r| r.phase == label)
            .map_or(0.0, |r| r.seconds)
    }

    /// Cumulative FLOPs of the phase labeled `label` (0 if absent).
    pub fn phase_flops(&self, label: &str) -> u64 {
        self.cumulative
            .iter()
            .find(|r| r.phase == label)
            .map_or(0, |r| r.flops)
    }

    /// Sustained cumulative GFLOP/s of the phase labeled `label`
    /// (`None` if the phase is absent or wall-time-only).
    pub fn phase_gflops(&self, label: &str) -> Option<f64> {
        self.cumulative
            .iter()
            .find(|r| r.phase == label)
            .and_then(PhaseRecord::gflops)
    }

    /// `(label, gflops)` for every cumulative phase that carries FLOPs,
    /// Table-3 order — the measured counterpart of the paper's sustained
    /// per-step performance column.
    pub fn gflops_breakdown(&self) -> Vec<(String, f64)> {
        self.cumulative
            .iter()
            .filter_map(|r| r.gflops().map(|g| (r.phase.clone(), g)))
            .collect()
    }

    /// Sum of all phase wall times (should approach `total_seconds` when
    /// the instrumented scopes cover the loop).
    pub fn measured_seconds(&self) -> f64 {
        self.cumulative.iter().map(|r| r.seconds).sum()
    }

    /// `measured_seconds / total_seconds` — the fraction of the run inside
    /// instrumented scopes.
    pub fn coverage(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.measured_seconds() / self.total_seconds
        } else {
            0.0
        }
    }

    /// The cumulative breakdown folded onto the simulated schedule's step
    /// names: DH, EP, CK, and Other merge into `"DH+EP+Others"`, matching
    /// [`crate::schedule::scf_step`]. Returns `(step, seconds, flops)`.
    pub fn table3_rows(&self) -> Vec<(String, f64, u64)> {
        let mut rows: Vec<(String, f64, u64)> = Vec::new();
        let mut tail = ("DH+EP+Others".to_string(), 0.0, 0u64);
        for p in Phase::ALL {
            let label = p.label();
            let (s, f) = (self.phase_seconds(label), self.phase_flops(label));
            match p {
                Phase::Dh | Phase::Ep | Phase::Ck | Phase::Other => {
                    tail.1 += s;
                    tail.2 += f;
                }
                _ => rows.push((label.to_string(), s, f)),
            }
        }
        rows.push(tail);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_into_iterations() {
        let p = Profile::new();
        p.begin_iteration();
        {
            let mut s = p.scope(Phase::Cf);
            s.add_flops(100);
            s.add_bytes(8);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let mut s = p.scope(Phase::Cf);
            s.add_flops(50);
        }
        p.begin_iteration();
        p.scope(Phase::RrD);
        let rep = p.finish(None);
        assert_eq!(rep.iterations.len(), 2);
        let cf = &rep.iterations[0].phases[0];
        assert_eq!(cf.phase, "CF");
        assert_eq!(cf.calls, 2);
        assert_eq!(cf.flops, 150);
        assert_eq!(cf.bytes, 8);
        assert!(cf.seconds >= 0.002);
        assert_eq!(rep.phase_flops("CF"), 150);
        assert!(rep.total_seconds >= rep.iterations[0].phases[0].seconds);
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let mut s = PhaseScope::new(None, Phase::Cf);
        s.add_flops(10);
        s.add_bytes(10);
        drop(s);
        // nothing to observe: the scope holds no profile. The real assertion
        // is that this compiles to a no-op and never panics.
    }

    #[test]
    fn record_before_begin_iteration_lands_in_bucket_zero() {
        let p = Profile::new();
        p.scope(Phase::Ep);
        let rep = p.finish(Some(1.0));
        assert_eq!(rep.iterations.len(), 1);
        assert_eq!(rep.iterations[0].phases[0].phase, "EP");
    }

    #[test]
    fn json_round_trip_preserves_report() {
        let p = Profile::new();
        p.begin_iteration();
        {
            let mut s = p.scope(Phase::CholGsS);
            s.add_flops(12345);
            s.add_bytes(99);
        }
        p.scope(Phase::RrSr);
        let rep = p.finish(Some(0.5));
        let back = ScfProfile::from_json(&rep.to_json()).unwrap();
        assert_eq!(back, rep);
        let back2 = ScfProfile::from_json(&rep.to_json_pretty()).unwrap();
        assert_eq!(back2, rep);
    }

    #[test]
    fn table3_rows_merge_tail_phases() {
        let p = Profile::new();
        p.begin_iteration();
        p.scope(Phase::Dh);
        p.scope(Phase::Ep);
        p.scope(Phase::Other);
        {
            let mut s = p.scope(Phase::Cf);
            s.add_flops(7);
        }
        let rep = p.finish(Some(1.0));
        let rows = rep.table3_rows();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].0, "CF");
        assert_eq!(rows[0].2, 7);
        assert_eq!(rows.last().unwrap().0, "DH+EP+Others");
        let tail = rows.last().unwrap().1;
        let expect = rep.phase_seconds("DH") + rep.phase_seconds("EP") + rep.phase_seconds("Other");
        assert!((tail - expect).abs() < 1e-12);
    }

    #[test]
    fn coverage_ratio_reflects_scoped_fraction() {
        let p = Profile::new();
        p.begin_iteration();
        {
            let _s = p.scope(Phase::Cf);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let rep = p.finish(None);
        assert!(rep.coverage() > 0.5, "coverage {}", rep.coverage());
        assert!(rep.measured_seconds() <= rep.total_seconds * 1.5);
    }
}
