//! Dual-stream discrete-event timeline.
//!
//! The paper overlaps GPU compute with data movement by issuing work on two
//! GPU streams (Sec. 5.4.3): while block `k` of `H X` is being computed, the
//! partition-boundary communication of block `k-1` is in flight. This module
//! reproduces that execution model: tasks are bound to a [`Stream`], run in
//! issue order within their stream, and may additionally depend on tasks in
//! other streams. The makespan of such a DAG is exactly the walltime the
//! overlap schedule would achieve.

/// Execution stream of a task.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Stream {
    /// GPU compute stream.
    Compute,
    /// Data-movement stream (MPI / NCCL / host-device copies).
    Comm,
    /// Host (CPU) serial work.
    Host,
}

/// Identifier returned by [`Timeline::add`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TaskId(usize);

struct Task {
    stream: Stream,
    duration: f64,
    deps: Vec<TaskId>,
    finish: f64,
}

/// An append-only task DAG with per-stream FIFO ordering.
#[derive(Default)]
pub struct Timeline {
    tasks: Vec<Task>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a task of `duration` seconds on `stream`, ordered after all
    /// earlier tasks on the same stream and after every task in `deps`.
    /// Durations must be non-negative.
    pub fn add(&mut self, stream: Stream, duration: f64, deps: &[TaskId]) -> TaskId {
        assert!(duration >= 0.0 && duration.is_finite());
        // compute finish time eagerly: stream-FIFO + dep edges
        let stream_ready = self
            .tasks
            .iter()
            .filter(|t| t.stream == stream)
            .map(|t| t.finish)
            .fold(0.0, f64::max);
        let dep_ready = deps
            .iter()
            .map(|d| self.tasks[d.0].finish)
            .fold(0.0, f64::max);
        let start = stream_ready.max(dep_ready);
        let finish = start + duration;
        self.tasks.push(Task {
            stream,
            duration,
            deps: deps.to_vec(),
            finish,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Finish time of a specific task.
    pub fn finish_of(&self, id: TaskId) -> f64 {
        self.tasks[id.0].finish
    }

    /// Total makespan (finish time of the last-finishing task).
    pub fn makespan(&self) -> f64 {
        self.tasks.iter().map(|t| t.finish).fold(0.0, f64::max)
    }

    /// Sum of all task durations (the walltime a fully serial schedule
    /// would take) — useful for quantifying overlap benefit.
    pub fn serial_time(&self) -> f64 {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Busy time per stream.
    pub fn stream_time(&self, stream: Stream) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.stream == stream)
            .map(|t| t.duration)
            .sum()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks have been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Consistency check used in tests: every task finishes no earlier than
    /// each of its dependencies plus its own duration.
    pub fn validate(&self) -> bool {
        self.tasks.iter().all(|t| {
            t.deps
                .iter()
                .all(|d| t.finish >= self.tasks[d.0].finish + t.duration - 1e-12)
        })
    }
}

/// Build the classic pipelined block schedule: `n` blocks, each with a
/// compute task and a communication task that depends on its compute; with
/// `overlap`, comm of block `k` proceeds while compute of block `k+1` runs
/// (two streams), otherwise everything serializes on one stream.
///
/// Returns the makespan. This is the paper's Sec. 5.4.3 pattern for the
/// `H X` boundary exchange and for the CholGS-S / RR-P allreduce pipelines.
pub fn pipelined_blocks(n: usize, t_compute: f64, t_comm: f64, overlap: bool) -> f64 {
    let mut tl = Timeline::new();
    for _ in 0..n {
        let comm_stream = if overlap {
            Stream::Comm
        } else {
            Stream::Compute
        };
        let c = tl.add(Stream::Compute, t_compute, &[]);
        tl.add(comm_stream, t_comm, &[c]);
    }
    tl.makespan()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_adds_up() {
        let mut tl = Timeline::new();
        let a = tl.add(Stream::Compute, 1.0, &[]);
        let b = tl.add(Stream::Compute, 2.0, &[a]);
        tl.add(Stream::Compute, 3.0, &[b]);
        assert!((tl.makespan() - 6.0).abs() < 1e-12);
        assert!(tl.validate());
    }

    #[test]
    fn independent_streams_overlap() {
        let mut tl = Timeline::new();
        tl.add(Stream::Compute, 5.0, &[]);
        tl.add(Stream::Comm, 3.0, &[]);
        assert!((tl.makespan() - 5.0).abs() < 1e-12);
        assert!((tl.serial_time() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn cross_stream_dependency_respected() {
        let mut tl = Timeline::new();
        let a = tl.add(Stream::Compute, 2.0, &[]);
        let b = tl.add(Stream::Comm, 1.0, &[a]);
        let c = tl.add(Stream::Compute, 1.0, &[b]);
        assert!((tl.finish_of(c) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_overlap_hides_communication() {
        // 10 blocks, compute 1s, comm 0.8s:
        // serial: 10 * 1.8 = 18; overlapped: 10*1 + 0.8 = 10.8
        let serial = pipelined_blocks(10, 1.0, 0.8, false);
        let overlapped = pipelined_blocks(10, 1.0, 0.8, true);
        assert!((serial - 18.0).abs() < 1e-9);
        assert!((overlapped - 10.8).abs() < 1e-9);
    }

    #[test]
    fn pipelined_comm_bound_case() {
        // comm dominates: makespan ~= first compute + n * t_comm
        let overlapped = pipelined_blocks(5, 0.2, 1.0, true);
        assert!((overlapped - (0.2 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn stream_times_partition_serial_time() {
        let mut tl = Timeline::new();
        tl.add(Stream::Compute, 1.5, &[]);
        tl.add(Stream::Comm, 2.5, &[]);
        tl.add(Stream::Host, 0.5, &[]);
        assert!(
            (tl.stream_time(Stream::Compute)
                + tl.stream_time(Stream::Comm)
                + tl.stream_time(Stream::Host)
                - tl.serial_time())
            .abs()
                < 1e-12
        );
    }
}
