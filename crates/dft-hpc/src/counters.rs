//! FLOP and byte counters plus wall-clock timers — the "timers and FLOP
//! count" measurement mechanism the paper declares in its performance
//! attributes table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cheap, thread-safe FLOP counter shareable across kernels.
#[derive(Clone, Default)]
pub struct FlopCounter {
    count: Arc<AtomicU64>,
}

impl FlopCounter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `flops` to the tally.
    #[inline]
    pub fn add(&self, flops: u64) {
        self.count.fetch_add(flops, Ordering::Relaxed);
    }

    /// Current tally.
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous tally.
    pub fn reset(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }
}

/// A named section timer accumulating wall time over repeated scopes.
pub struct SectionTimer {
    /// Section label ("CF", "CholGS-S", ...).
    pub name: String,
    elapsed: f64,
    started: Option<Instant>,
}

impl SectionTimer {
    /// New timer with a label.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            elapsed: 0.0,
            started: None,
        }
    }

    /// Start the section. Calling `start` while already running first
    /// accumulates the running segment, so no time is silently dropped.
    pub fn start(&mut self) {
        self.stop();
        self.started = Some(Instant::now());
    }

    /// Stop and accumulate. A `stop` without a matching `start` is a no-op.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.elapsed += t0.elapsed().as_secs_f64();
        }
    }

    /// True while between a `start` and its `stop`.
    pub fn is_running(&self) -> bool {
        self.started.is_some()
    }

    /// Accumulated seconds (excluding any still-running segment).
    pub fn seconds(&self) -> f64 {
        self.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let c = FlopCounter::new();
        let c2 = c.clone();
        c.add(10);
        c2.add(32);
        assert_eq!(c.get(), 42);
        assert_eq!(c.reset(), 42);
        assert_eq!(c2.get(), 0);
    }

    #[test]
    fn timer_accumulates() {
        let mut t = SectionTimer::new("CF");
        t.start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.stop();
        let one = t.seconds();
        assert!(one >= 0.004);
        t.start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.stop();
        assert!(t.seconds() > one);
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut t = SectionTimer::new("x");
        t.stop();
        assert_eq!(t.seconds(), 0.0);
        t.stop();
        t.stop();
        assert_eq!(t.seconds(), 0.0);
        assert!(!t.is_running());
    }

    #[test]
    fn double_start_accumulates_running_segment() {
        let mut t = SectionTimer::new("x");
        t.start();
        std::thread::sleep(std::time::Duration::from_millis(4));
        // misuse: second start without a stop — the first segment must
        // still be counted, not discarded
        t.start();
        std::thread::sleep(std::time::Duration::from_millis(4));
        t.stop();
        assert!(t.seconds() >= 0.007, "got {}", t.seconds());
        assert!(!t.is_running());
    }

    #[test]
    fn is_running_tracks_scope_state() {
        let mut t = SectionTimer::new("x");
        assert!(!t.is_running());
        t.start();
        assert!(t.is_running());
        t.stop();
        assert!(!t.is_running());
        // seconds() excludes a still-running segment
        t.start();
        let frozen = t.seconds();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(t.seconds(), frozen);
        t.stop();
        assert!(t.seconds() > frozen);
    }
}
