//! Machine models and kernel cost primitives.
//!
//! Constants follow the paper's Sec. 6.1 ("theoretical peak FP64 performance
//! per GPU ... 47.8, 7.8 and 9.7 TFLOPS for Frontier, Summit and
//! Perlmutter") plus public node specifications. The paper's observed
//! cross-machine behaviour that the model must reproduce:
//!
//! * Frontier node FP64 peak 191.2 TFLOPS (8,000 nodes = 1,529.6 PFLOPS,
//!   Table 3);
//! * Crusher-vs-Summit: 1.7x higher FLOPS/HBM-byte ratio, correlating with
//!   the 1.4x lower CF throughput efficiency (Sec. 5.4.1);
//! * Perlmutter's FP64 *tensor cores* double the GEMM-achievable peak,
//!   explaining the 85.7% of (vector) peak observed for CF (Fig. 4);
//! * RCCL + AWS-OFI plugin: "order of magnitude" higher allreduce bus
//!   bandwidth than Cray MPICH (Sec. 5.4.4), unstable beyond ~1,000 nodes.

use serde::Serialize;

/// One GPU (the paper counts an MI250X — two GCDs — as one GPU).
#[derive(Clone, Debug, Serialize)]
pub struct GpuModel {
    /// Marketing name.
    pub name: &'static str,
    /// FP64 vector peak per GPU, TFLOPS.
    pub fp64_tflops: f64,
    /// FP64 matrix/tensor-core peak per GPU, TFLOPS (equals `fp64_tflops`
    /// when absent or unused — the paper could not use MI250X matrix cores).
    pub fp64_matrix_tflops: f64,
    /// HBM bandwidth per GPU, TB/s.
    pub hbm_tbps: f64,
    /// Asymptotic large-GEMM efficiency relative to the peak actually used
    /// by GEMMs (`fp64_matrix_tflops`).
    pub gemm_eff_max: f64,
    /// Block size at which GEMM efficiency reaches half its asymptote
    /// (tile-quantization / launch-overhead scale).
    pub gemm_n_half: f64,
    /// Throughput multiplier of FP32 over FP64 GEMMs (2.0 on vector GPUs;
    /// 1.0 on A100, whose FP64 tensor cores already run at the FP32 rate).
    pub fp32_speedup: f64,
}

impl GpuModel {
    /// GEMM efficiency for smallest matrix dimension `n`, relative to the
    /// FP64 *vector* peak (can exceed 1.0 on tensor-core hardware).
    pub fn gemm_eff(&self, n: f64) -> f64 {
        let sat = n / (n + self.gemm_n_half);
        self.gemm_eff_max * sat * self.fp64_matrix_tflops / self.fp64_tflops
    }

    /// Seconds for a GEMM performing `flops` FP64-equivalent operations with
    /// smallest dimension `n_small`. `fp32_fraction` of the work may run at
    /// 2x rate (mixed precision).
    pub fn gemm_seconds(&self, flops: f64, n_small: f64, fp32_fraction: f64) -> f64 {
        let rate = self.fp64_tflops * 1e12 * self.gemm_eff(n_small);
        let f64_part = flops * (1.0 - fp32_fraction);
        let f32_part = flops * fp32_fraction;
        f64_part / rate + f32_part / (self.fp32_speedup * rate)
    }

    /// Seconds to stream `bytes` through HBM.
    pub fn mem_seconds(&self, bytes: f64) -> f64 {
        bytes / (self.hbm_tbps * 1e12)
    }
}

/// A machine (interconnect + node composition).
#[derive(Clone, Debug, Serialize)]
pub struct MachineModel {
    /// Machine name.
    pub name: &'static str,
    /// GPUs per node (paper convention: MI250X = 1 GPU = 2 GCDs).
    pub gpus_per_node: usize,
    /// The GPU.
    pub gpu: GpuModel,
    /// Injection bandwidth per node, GB/s.
    pub nic_gbps: f64,
    /// Point-to-point message latency, seconds.
    pub latency_s: f64,
    /// Fraction of NIC bandwidth achieved by the plain (Cray MPICH)
    /// allreduce.
    pub mpi_allreduce_eff: f64,
    /// Bus-bandwidth multiplier of RCCL/NCCL allreduce over plain MPI
    /// (paper: "order of magnitude improvement").
    pub ccl_allreduce_speedup: f64,
    /// Node count beyond which RCCL is unstable and the code falls back to
    /// MPI (paper Sec. 5.4.4: ~1,000 Frontier nodes).
    pub ccl_max_nodes: usize,
    /// Fixed per-kernel launch/synchronization overhead, seconds. Dominates
    /// strong-scaling limits when per-GPU work shrinks.
    pub kernel_overhead_s: f64,
}

impl MachineModel {
    /// FP64 vector peak of one node, TFLOPS.
    pub fn node_peak_tflops(&self) -> f64 {
        self.gpus_per_node as f64 * self.gpu.fp64_tflops
    }

    /// NIC bandwidth share of one GPU, bytes/s.
    pub fn nic_bw_per_gpu(&self) -> f64 {
        self.nic_gbps * 1e9 / self.gpus_per_node as f64
    }

    /// Point-to-point time for `bytes` from one GPU (`gpu_aware` routes
    /// directly; otherwise staging through the host costs ~1.5x, the
    /// paper's observed GPU-aware-MPI speedup on the CF step).
    pub fn p2p_seconds(&self, bytes: f64, gpu_aware: bool) -> f64 {
        let bw = self.nic_bw_per_gpu() * if gpu_aware { 1.0 } else { 1.0 / 1.5 };
        self.latency_s + bytes / bw
    }

    /// Ring-allreduce time for `bytes` per rank over `nodes` nodes.
    /// `use_ccl` selects the NCCL/RCCL bus-bandwidth path (automatically
    /// disabled above [`Self::ccl_max_nodes`]).
    pub fn allreduce_seconds(&self, bytes: f64, nodes: usize, use_ccl: bool) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let ccl = use_ccl && nodes <= self.ccl_max_nodes;
        let bus = self.nic_gbps
            * 1e9
            * self.mpi_allreduce_eff
            * if ccl { self.ccl_allreduce_speedup } else { 1.0 };
        let n = nodes as f64;
        2.0 * bytes * (n - 1.0) / n / bus + 2.0 * (n).log2() * self.latency_s
    }

    /// OLCF Frontier (and its test system Crusher): 4x AMD MI250X per node.
    pub fn frontier() -> Self {
        MachineModel {
            name: "Frontier",
            gpus_per_node: 4,
            gpu: GpuModel {
                name: "AMD MI250X",
                fp64_tflops: 47.8,
                fp64_matrix_tflops: 47.8, // matrix cores unusable (paper fn. 2)
                hbm_tbps: 3.2768,
                gemm_eff_max: 0.62,
                gemm_n_half: 140.0,
                fp32_speedup: 2.0,
            },
            nic_gbps: 100.0, // 4x Slingshot-11 @ 25 GB/s
            latency_s: 2.0e-6,
            mpi_allreduce_eff: 0.06,
            ccl_allreduce_speedup: 10.0,
            ccl_max_nodes: 1000,
            kernel_overhead_s: 2.0e-4,
        }
    }

    /// Crusher is architecturally identical to Frontier.
    pub fn crusher() -> Self {
        let mut m = Self::frontier();
        m.name = "Crusher";
        m
    }

    /// OLCF Summit: 6x NVIDIA V100 per node.
    pub fn summit() -> Self {
        MachineModel {
            name: "Summit",
            gpus_per_node: 6,
            gpu: GpuModel {
                name: "NVIDIA V100",
                fp64_tflops: 7.8,
                fp64_matrix_tflops: 7.8,
                hbm_tbps: 0.9,
                gemm_eff_max: 0.68,
                gemm_n_half: 45.0,
                fp32_speedup: 2.0,
            },
            nic_gbps: 25.0, // dual-rail EDR InfiniBand
            latency_s: 1.5e-6,
            mpi_allreduce_eff: 0.30,
            ccl_allreduce_speedup: 3.0,
            ccl_max_nodes: usize::MAX,
            kernel_overhead_s: 9.0e-4,
        }
    }

    /// NERSC Perlmutter: 4x NVIDIA A100 per node (FP64 tensor cores give
    /// 2x the vector peak for GEMMs).
    pub fn perlmutter() -> Self {
        MachineModel {
            name: "Perlmutter",
            gpus_per_node: 4,
            gpu: GpuModel {
                name: "NVIDIA A100",
                fp64_tflops: 9.7,
                fp64_matrix_tflops: 19.4,
                hbm_tbps: 1.555,
                gemm_eff_max: 0.55,
                gemm_n_half: 55.0,
                fp32_speedup: 1.0,
            },
            nic_gbps: 25.0, // Slingshot-10/11
            latency_s: 2.0e-6,
            mpi_allreduce_eff: 0.30,
            ccl_allreduce_speedup: 3.0,
            ccl_max_nodes: usize::MAX,
            kernel_overhead_s: 3.0e-4,
        }
    }
}

/// A machine plus a node count.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterSpec {
    /// The machine model.
    pub machine: MachineModel,
    /// Number of nodes used.
    pub nodes: usize,
}

impl ClusterSpec {
    /// Convenience constructor.
    pub fn new(machine: MachineModel, nodes: usize) -> Self {
        Self { machine, nodes }
    }

    /// Total GPUs.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.machine.gpus_per_node
    }

    /// Aggregate FP64 vector peak, PFLOPS.
    pub fn peak_pflops(&self) -> f64 {
        self.nodes as f64 * self.machine.node_peak_tflops() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_node_peak_matches_paper_table3() {
        // 8,000 nodes -> 1,529.6 PFLOPS FP64 peak (Table 3)
        let c = ClusterSpec::new(MachineModel::frontier(), 8000);
        assert!(
            (c.peak_pflops() - 1529.6).abs() < 0.1,
            "{}",
            c.peak_pflops()
        );
        // 2,400 nodes -> 458.9 ; 6,000 -> 1,147.2
        let a = ClusterSpec::new(MachineModel::frontier(), 2400);
        assert!((a.peak_pflops() - 458.88).abs() < 0.1);
        let b = ClusterSpec::new(MachineModel::frontier(), 6000);
        assert!((b.peak_pflops() - 1147.2).abs() < 0.1);
    }

    #[test]
    fn crusher_summit_balance_ratio_is_about_1_7() {
        // paper Sec 5.4.1: Crusher node has 1.7x the FLOPS/HBM-byte ratio
        // of a Summit node
        let cr = MachineModel::crusher();
        let su = MachineModel::summit();
        let ratio =
            |m: &MachineModel| m.node_peak_tflops() / (m.gpus_per_node as f64 * m.gpu.hbm_tbps);
        let r = ratio(&cr) / ratio(&su);
        assert!((r - 1.7).abs() < 0.15, "balance ratio {r}");
    }

    #[test]
    fn gemm_efficiency_rises_with_block_size() {
        let g = &MachineModel::summit().gpu;
        let e50 = g.gemm_eff(50.0);
        let e200 = g.gemm_eff(200.0);
        let e500 = g.gemm_eff(500.0);
        assert!(e50 < e200 && e200 < e500);
        assert!(e500 < g.gemm_eff_max);
    }

    #[test]
    fn perlmutter_tensor_cores_exceed_vector_efficiency() {
        // relative-to-vector-peak efficiency can exceed what any vector-only
        // GPU reaches
        let p = &MachineModel::perlmutter().gpu;
        let s = &MachineModel::summit().gpu;
        assert!(p.gemm_eff(500.0) > s.gemm_eff(500.0));
        assert!(p.gemm_eff(2000.0) > 0.9); // near/above vector peak
    }

    #[test]
    fn mixed_precision_gemm_is_faster() {
        let g = &MachineModel::frontier().gpu;
        let t64 = g.gemm_seconds(1e12, 500.0, 0.0);
        let tmx = g.gemm_seconds(1e12, 500.0, 0.9);
        assert!(tmx < t64 * 0.7);
        assert!(tmx > t64 * 0.5); // cannot beat the 2x bound
    }

    #[test]
    fn allreduce_scales_with_log_nodes_latency_term() {
        let m = MachineModel::frontier();
        let t_small = m.allreduce_seconds(8.0, 16, false);
        let t_big = m.allreduce_seconds(8.0, 4096, false);
        assert!(t_big > t_small);
        // tiny payload: dominated by the latency term ~ 2 log2(n) alpha
        assert!((t_big - 2.0 * (4096f64).log2() * m.latency_s).abs() < 1e-5);
    }

    #[test]
    fn rccl_speedup_disabled_beyond_stability_limit() {
        let m = MachineModel::frontier();
        let bytes = 1e9;
        let with_ccl = m.allreduce_seconds(bytes, 800, true);
        let without = m.allreduce_seconds(bytes, 800, false);
        assert!(with_ccl < without / 5.0);
        // above 1,000 nodes RCCL falls back to MPI
        let big_ccl = m.allreduce_seconds(bytes, 2000, true);
        let big_mpi = m.allreduce_seconds(bytes, 2000, false);
        assert!((big_ccl - big_mpi).abs() < 1e-12);
    }

    #[test]
    fn gpu_aware_p2p_is_1_5x_faster_asymptotically() {
        let m = MachineModel::frontier();
        let bytes = 1e8;
        let aware = m.p2p_seconds(bytes, true);
        let staged = m.p2p_seconds(bytes, false);
        assert!((staged / aware - 1.5).abs() < 0.05);
    }
}
