//! SCF-iteration performance schedules (Algorithm 1 priced on a machine
//! model).
//!
//! One SCF iteration of DFT-FE-MLXC expands into the steps of the paper's
//! Table 3 — CF, CholGS-S/CI/O, RR-P/D/SR, DC, DH+EP+Others. Each step is
//! priced with the roofline/alpha-beta primitives of [`crate::machine`] and
//! the dual-stream overlap of [`crate::event`], using the FLOP-accounting
//! conventions of the paper's Sec. 6.3:
//!
//! * GEMM steps are counted as `alpha * 4 * N * M * N` for complex k-point
//!   data (`alpha * 2 * ...` for real), with `alpha = 1` when Hermiticity /
//!   triangularity is exploited (CholGS-S, CholGS-O, RR-P) and `alpha = 2`
//!   otherwise (RR-SR);
//! * CF is counted from the cell-level dense kernel:
//!   `m_cheb * 2 * nloc^2 * ncells * N` (x4 complex);
//! * CholGS-CI and RR-D FLOPs are *not* counted (matching the paper), but
//!   their wall times are included, priced at calibrated dense-solver
//!   efficiencies.
//!
//! Reverse-engineering Table 3 fixes the remaining free parameters: states
//! per k-point `N ~ 0.289 x electrons`, Chebyshev degree ~23 per SCF
//! iteration, TRMM/HERK half-FLOP execution for the triangular/Hermitian
//! steps, and full-GEMM execution for CholGS-S. These are encoded as
//! defaults and documented in EXPERIMENTS.md.

use crate::event::pipelined_blocks;
use crate::machine::ClusterSpec;
use serde::Serialize;

/// Ratio of Kohn-Sham states per k-point to electrons in the supercell
/// slice, inferred from the paper's Table 3 FLOP counts.
pub const STATES_PER_ELECTRON: f64 = 0.289;

/// A DFT benchmark system, in the units the schedule needs.
#[derive(Clone, Debug, Serialize)]
pub struct DftSystemSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of atoms.
    pub atoms: f64,
    /// Electrons per k-point slice (the paper's "e-" count).
    pub electrons: f64,
    /// FE degrees of freedom `M` (shared mesh across k-points).
    pub dofs: f64,
    /// Kohn-Sham states per k-point, `N`.
    pub states: f64,
    /// Brillouin-zone k-points.
    pub kpoints: usize,
    /// Complex (Bloch) wavefunctions?
    pub complex: bool,
    /// FE polynomial degree `p`.
    pub poly_degree: usize,
}

impl DftSystemSpec {
    /// Spec with `N` derived from the electron count via
    /// [`STATES_PER_ELECTRON`].
    pub fn new(
        name: &str,
        atoms: f64,
        electrons: f64,
        dofs: f64,
        kpoints: usize,
        complex: bool,
        poly_degree: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            atoms,
            electrons,
            dofs,
            states: (STATES_PER_ELECTRON * electrons).round(),
            kpoints,
            complex,
            poly_degree,
        }
    }

    /// Local FE-cell matrix order `(p+1)^3`.
    pub fn nloc(&self) -> f64 {
        ((self.poly_degree + 1).pow(3)) as f64
    }

    /// Number of FE cells (`M / p^3` for a structured spectral mesh).
    pub fn ncells(&self) -> f64 {
        self.dofs / (self.poly_degree.pow(3) as f64)
    }

    /// GEMM FLOP factor over a real MAC (paper: 4 for complex, 2 for real).
    pub fn gemm_factor(&self) -> f64 {
        if self.complex {
            4.0
        } else {
            2.0
        }
    }

    /// Bytes per wavefunction scalar in memory.
    pub fn scalar_bytes(&self) -> f64 {
        if self.complex {
            16.0
        } else {
            8.0
        }
    }

    /// Total electrons in the supercell (electrons x k-points) — the
    /// number the paper headlines.
    pub fn supercell_electrons(&self) -> f64 {
        self.electrons * self.kpoints as f64
    }
}

/// Solver/implementation options (the knobs of Secs. 5.4.2-5.4.4).
#[derive(Clone, Debug, Serialize)]
pub struct SolverOptions {
    /// Chebyshev-filter wavefunction block size `B_f`.
    pub block_size: f64,
    /// Chebyshev polynomial degree per SCF iteration.
    pub cheb_degree: f64,
    /// Column block size used inside the CholGS/RR GEMM pipelines.
    pub sub_block: f64,
    /// Mixed FP32/FP64 precision (Sec. 5.4.2).
    pub mixed_precision: bool,
    /// Asynchronous compute/communication overlap (Sec. 5.4.3).
    pub async_overlap: bool,
    /// GPU-aware point-to-point MPI (Sec. 5.4.4).
    pub gpu_aware: bool,
    /// GPU-aware NCCL/RCCL collectives (Sec. 5.4.4; auto-disabled by the
    /// machine model beyond its stability node count).
    pub use_ccl: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            block_size: 250.0,
            cheb_degree: 23.0,
            sub_block: 2000.0,
            mixed_precision: true,
            async_overlap: true,
            gpu_aware: true,
            use_ccl: false,
        }
    }
}

impl SolverOptions {
    /// The paper's baseline configuration (Fig. 5): no mixed precision, no
    /// overlap.
    pub fn baseline() -> Self {
        Self {
            mixed_precision: false,
            async_overlap: false,
            ..Self::default()
        }
    }
}

/// One priced step of the SCF iteration.
#[derive(Clone, Debug, Serialize)]
pub struct StepTiming {
    /// Step label (Table 3 names).
    pub name: &'static str,
    /// Wall seconds.
    pub seconds: f64,
    /// Counted PFLOP (None for steps the paper does not count).
    pub pflop: Option<f64>,
}

impl StepTiming {
    /// Sustained PFLOPS of this step (0 if uncounted).
    pub fn pflops(&self) -> f64 {
        self.pflop.map_or(0.0, |f| f / self.seconds)
    }
}

/// A priced SCF iteration.
#[derive(Clone, Debug, Serialize)]
pub struct ScfStepReport {
    /// System name.
    pub system: String,
    /// Machine name.
    pub machine: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Per-step breakdown in Table 3 order.
    pub steps: Vec<StepTiming>,
    /// Total wall seconds of one SCF iteration.
    pub total_seconds: f64,
    /// Total counted PFLOP.
    pub total_pflop: f64,
    /// Aggregate FP64 peak of the allocation, PFLOPS.
    pub peak_pflops: f64,
}

impl ScfStepReport {
    /// Sustained PFLOPS over the whole iteration.
    pub fn sustained_pflops(&self) -> f64 {
        self.total_pflop / self.total_seconds
    }
    /// Fraction of FP64 peak.
    pub fn efficiency(&self) -> f64 {
        self.sustained_pflops() / self.peak_pflops
    }
    /// Find a step by name.
    pub fn step(&self, name: &str) -> &StepTiming {
        self.steps
            .iter()
            .find(|s| s.name == name)
            // dftlint:allow(L001, reason="documented API contract: callers pass step names from this schedule's own table")
            .unwrap_or_else(|| panic!("no step named {name}"))
    }
}

/// Per-GPU workgroup geometry for one k-point group.
struct Workgroup {
    gpus: f64,
    group_nodes: usize,
    m_loc: f64,
    cells_loc: f64,
    surface_dofs: f64,
}

fn workgroup(sys: &DftSystemSpec, cluster: &ClusterSpec) -> Workgroup {
    let total_gpus = cluster.total_gpus() as f64;
    let groups = sys.kpoints as f64;
    let gpus = (total_gpus / groups).max(1.0);
    let group_nodes = ((cluster.nodes as f64 / groups).ceil() as usize).max(1);
    let m_loc = sys.dofs / gpus;
    let cells_loc = sys.ncells() / gpus;
    // boundary nodes of a cubic partition of m_loc dofs
    let surface_dofs = 6.0 * m_loc.powf(2.0 / 3.0);
    Workgroup {
        gpus,
        group_nodes,
        m_loc,
        cells_loc,
        surface_dofs,
    }
}

/// Number of memory passes over the wavefunction block per Chebyshev apply
/// (gather/scatter + three-term recurrence reads/writes). Calibrated so the
/// CF step lands at the paper's measured efficiencies (Fig. 4).
pub const CF_L1_PASSES: f64 = 14.0;

/// Calibrated effective efficiency of the distributed dense Cholesky
/// (CholGS-CI, ScaLAPACK-style) relative to the group's aggregate peak
/// (fit to Table 3: 3.8 s for system A, consistent with 8.8 s for C).
pub const CHOLESKY_EFF: f64 = 6.4e-5;

/// Calibrated effective efficiency of the distributed dense eigensolver
/// (RR-D) relative to the group's aggregate peak (fit to Table 3: 9.7 s for
/// system A, consistent with 22.3 s for C).
pub const EIG_EFF: f64 = 3.4e-4;

/// Calibrated achieved fraction of peak for the density-compute (DC) step
/// (paper Table 3: 35-39%).
pub const DC_EFF: f64 = 0.37;

/// Fractional overhead of DH+EP+Others relative to the priced steps
/// (paper Table 3: ~9-10% of the iteration).
pub const OTHERS_FRACTION: f64 = 0.105;

/// One H-apply over a block of `bf` states: (compute seconds, comm seconds,
/// counted flops per GPU). Used by CF, RR-P and the invDFT adjoint solve.
fn h_apply_block(
    sys: &DftSystemSpec,
    opts: &SolverOptions,
    cluster: &ClusterSpec,
    wg: &Workgroup,
    bf: f64,
) -> (f64, f64, f64) {
    let gpu = &cluster.machine.gpu;
    // True executed arithmetic (what nvprof counts): 2 x gemm_factor per MAC
    // (a complex MAC is 4 FMAs = 8 FLOPs).
    let flops = 2.0 * sys.gemm_factor() * sys.nloc() * sys.nloc() * wg.cells_loc * bf;
    let t_gemm = gpu.gemm_seconds(flops, bf, 0.0) + cluster.machine.kernel_overhead_s;
    let l1_bytes = CF_L1_PASSES * wg.m_loc * bf * sys.scalar_bytes();
    let t_l1 = gpu.mem_seconds(l1_bytes);
    let wire = if opts.mixed_precision { 4.0 } else { 8.0 } * if sys.complex { 2.0 } else { 1.0 };
    let halo_bytes = wg.surface_dofs * bf * wire;
    // Large allocations suffer routing congestion (the paper's footnote on
    // Frontier instability preventing optimal GPU-aware routing beyond
    // ~1,000 nodes).
    let congestion = (cluster.nodes as f64 / 1000.0).sqrt().max(1.0);
    let t_halo = cluster.machine.p2p_seconds(halo_bytes, opts.gpu_aware) * congestion;
    (t_gemm + t_l1, t_halo, flops)
}

/// Price one SCF iteration of Algorithm 1.
pub fn scf_step(sys: &DftSystemSpec, opts: &SolverOptions, cluster: &ClusterSpec) -> ScfStepReport {
    let wg = workgroup(sys, cluster);
    let gpu = &cluster.machine.gpu;
    let kpts = sys.kpoints as f64;
    let (m, n) = (sys.dofs, sys.states);
    let gf = sys.gemm_factor();
    let mut steps = Vec::new();

    // ---- CF: Chebyshev filtering --------------------------------------
    let n_blocks = (n / opts.block_size).ceil();
    let (t_c, t_m, f_unit) = h_apply_block(sys, opts, cluster, &wg, opts.block_size);
    let units = (opts.cheb_degree * n_blocks) as usize;
    let overlap_halo = opts.async_overlap && opts.gpu_aware;
    let t_cf = pipelined_blocks(units, t_c, t_m, overlap_halo);
    let cf_pflop = opts.cheb_degree * n_blocks * f_unit * wg.gpus * kpts / 1e15;
    steps.push(StepTiming {
        name: "CF",
        seconds: t_cf,
        pflop: Some(cf_pflop),
    });

    // ---- CholGS-S: overlap matrix (full GEMM executed, alpha=1 counted) --
    let bs = opts.sub_block.min(n);
    let s_blocks = (n / bs).ceil() as usize;
    let fp32_frac = if opts.mixed_precision {
        1.0 - bs / n
    } else {
        0.0
    };
    let s_exec_flops_gpu = 2.0 * gf * wg.m_loc * n * bs; // full GEMM per block
    let t_s_gemm =
        gpu.gemm_seconds(s_exec_flops_gpu, bs, fp32_frac) + cluster.machine.kernel_overhead_s;
    let wire = if opts.mixed_precision { 4.0 } else { 8.0 } * if sys.complex { 2.0 } else { 1.0 };
    let t_s_ar = cluster
        .machine
        .allreduce_seconds(n * bs * wire, wg.group_nodes, opts.use_ccl);
    let t_chs = pipelined_blocks(s_blocks, t_s_gemm, t_s_ar, opts.async_overlap);
    let chs_pflop = 1.0 * gf * m * n * n * kpts / 1e15; // alpha = 1
    steps.push(StepTiming {
        name: "CholGS-S",
        seconds: t_chs,
        pflop: Some(chs_pflop),
    });

    // ---- CholGS-CI: Cholesky factorization + triangular inverse ---------
    let ci_flops = (2.0 / 3.0) * n * n * n * gf;
    let t_ci = ci_flops / (wg.gpus * gpu.fp64_tflops * 1e12 * CHOLESKY_EFF);
    steps.push(StepTiming {
        name: "CholGS-CI",
        seconds: t_ci,
        pflop: None,
    });

    // ---- CholGS-O: Psi L^{-dagger} (TRMM, half flops, all-FP32 in mixed) -
    let o_exec_flops_gpu = gf * wg.m_loc * n * n; // TRMM = half of a full GEMM
    let o_fp32 = if opts.mixed_precision { 1.0 } else { 0.0 };
    let t_cho = gpu.gemm_seconds(o_exec_flops_gpu, bs, o_fp32);
    let cho_pflop = 1.0 * gf * m * n * n * kpts / 1e15;
    steps.push(StepTiming {
        name: "CholGS-O",
        seconds: t_cho,
        pflop: Some(cho_pflop),
    });

    // ---- RR-P: projected Hamiltonian = Psi^H (H Psi) ---------------------
    // One full H application over all N states + a Hermitian rank-k GEMM.
    let (t_hc, t_hm, _f) = h_apply_block(sys, opts, cluster, &wg, opts.block_size);
    let t_hpsi = pipelined_blocks(n_blocks as usize, t_hc, t_hm, overlap_halo);
    let p_exec_flops_gpu = gf * wg.m_loc * n * bs; // HERK-style half, per block
    let t_p_gemm =
        gpu.gemm_seconds(p_exec_flops_gpu, bs, fp32_frac) + cluster.machine.kernel_overhead_s;
    let t_p_ar = cluster
        .machine
        .allreduce_seconds(n * bs * wire, wg.group_nodes, opts.use_ccl);
    let t_rrp = t_hpsi + pipelined_blocks(s_blocks, t_p_gemm, t_p_ar, opts.async_overlap);
    let rrp_pflop = 1.0 * gf * m * n * n * kpts / 1e15;
    steps.push(StepTiming {
        name: "RR-P",
        seconds: t_rrp,
        pflop: Some(rrp_pflop),
    });

    // ---- RR-D: dense diagonalization -------------------------------------
    let d_flops = 9.0 * n * n * n * gf;
    let t_rrd = d_flops / (wg.gpus * gpu.fp64_tflops * 1e12 * EIG_EFF);
    steps.push(StepTiming {
        name: "RR-D",
        seconds: t_rrd,
        pflop: None,
    });

    // ---- RR-SR: subspace rotation (full GEMM, alpha = 2) ------------------
    let sr_exec_flops_gpu = 2.0 * gf * wg.m_loc * n * n;
    let sr_fp32 = if opts.mixed_precision { 1.0 } else { 0.0 };
    let t_rrsr = gpu.gemm_seconds(sr_exec_flops_gpu, bs, sr_fp32);
    let rrsr_pflop = 2.0 * gf * m * n * n * kpts / 1e15;
    steps.push(StepTiming {
        name: "RR-SR",
        seconds: t_rrsr,
        pflop: Some(rrsr_pflop),
    });

    // ---- DC: density computation -----------------------------------------
    // Interpolation of the wavefunction block from FE nodes to quadrature
    // points is one more cell-level dense GEMM pass over all states
    // (matches Table 3: 591.6 PFLOP for A, 2,302.5 for C).
    let dc_pflop = 2.0 * gf * sys.nloc() * sys.nloc() * sys.ncells() * n * kpts / 1e15;
    let t_dc = (dc_pflop * 1e15 / (wg.gpus * kpts)) / (gpu.fp64_tflops * 1e12 * DC_EFF);
    steps.push(StepTiming {
        name: "DC",
        seconds: t_dc,
        pflop: Some(dc_pflop),
    });

    // Large allocations pay OS jitter / load-imbalance / routing-congestion
    // overhead that grows with node count (the paper's Sec. 7.2 discussion
    // of degraded efficiency beyond ~1,000 Frontier nodes), and strong
    // scaling degrades when the per-GPU granularity shrinks (surface-to-
    // volume overheads, kernel-tail effects — the paper's Fig. 8 falloff
    // below ~30K DoF/GPU). Both calibrated against Table 3 and Fig. 8.
    let jitter = (1.0 + 0.055 * (cluster.nodes as f64 / 1000.0).max(1.0).log2())
        * (1.0 + 15_000.0 / wg.m_loc);
    for st in steps.iter_mut() {
        st.seconds *= jitter;
    }

    // ---- DH + EP + Others -------------------------------------------------
    let priced: f64 = steps.iter().map(|s| s.seconds).sum();
    steps.push(StepTiming {
        name: "DH+EP+Others",
        seconds: OTHERS_FRACTION * priced,
        pflop: None,
    });

    let total_seconds: f64 = steps.iter().map(|s| s.seconds).sum();
    let total_pflop: f64 = steps.iter().filter_map(|s| s.pflop).sum();
    ScfStepReport {
        system: sys.name.clone(),
        machine: cluster.machine.name,
        nodes: cluster.nodes,
        steps,
        total_seconds,
        total_pflop,
        peak_pflops: cluster.peak_pflops(),
    }
}

/// Price one outer iteration of the invDFT PDE-constrained optimization:
/// a Chebyshev-filtered eigensolve plus the preconditioned block-MINRES
/// adjoint solve (Sec. 5.3). All-electron molecular problems have a huge
/// spectral width, hence the large Chebyshev degree.
pub fn invdft_iteration(
    sys: &DftSystemSpec,
    opts: &SolverOptions,
    cluster: &ClusterSpec,
    cheb_degree_ae: f64,
    minres_iters: f64,
    per_apply_overhead_s: f64,
) -> f64 {
    let wg = workgroup(sys, cluster);
    let bf = sys.states; // molecular: all states fit one block
    let (t_c, t_m, _) = h_apply_block(sys, opts, cluster, &wg, bf);
    let applies = cheb_degree_ae + minres_iters;
    let unit = t_c + per_apply_overhead_s;
    pipelined_blocks(applies as usize, unit, t_m, opts.async_overlap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;

    /// TwinDislocMgY(A): 36,344 atoms, 75,667 e- x 4 k-points. DoF scaled
    /// from the paper's 1.7e9 for the 74,164-atom system.
    fn twin_a() -> DftSystemSpec {
        DftSystemSpec::new(
            "TwinDislocMgY(A)",
            36_344.0,
            75_667.0,
            1.7e9 * 36_344.0 / 74_164.0,
            4,
            true,
            8,
        )
    }

    fn twin_c() -> DftSystemSpec {
        DftSystemSpec::new("TwinDislocMgY(C)", 74_164.0, 154_781.0, 1.7e9, 4, true, 8)
    }

    fn paper_large_run_opts() -> SolverOptions {
        // the paper's large runs could not use optimal GPU-aware routing
        SolverOptions {
            gpu_aware: false,
            ..SolverOptions::default()
        }
    }

    #[test]
    fn counted_flops_match_paper_table3_within_10_percent() {
        let opts = paper_large_run_opts();
        let a = scf_step(
            &twin_a(),
            &opts,
            &ClusterSpec::new(MachineModel::frontier(), 2400),
        );
        // Paper Table 3 (A): CholGS-S 6,917.3 / RR-SR 13,834.6 / CF 14,854.2
        let rel = |x: f64, y: f64| (x - y).abs() / y;
        assert!(rel(a.step("CholGS-S").pflop.unwrap(), 6917.3) < 0.10);
        assert!(rel(a.step("RR-SR").pflop.unwrap(), 13834.6) < 0.10);
        assert!(rel(a.step("CF").pflop.unwrap(), 14854.2) < 0.12);
        assert!(rel(a.step("DC").pflop.unwrap(), 591.6) < 0.15);
        // total counted
        assert!(rel(a.total_pflop, 50456.7) < 0.10, "{}", a.total_pflop);
    }

    #[test]
    fn wall_time_and_sustained_performance_near_paper() {
        let opts = paper_large_run_opts();
        let a = scf_step(
            &twin_a(),
            &opts,
            &ClusterSpec::new(MachineModel::frontier(), 2400),
        );
        // paper: 223 s, 226.3 PFLOPS (49.3%)
        assert!(
            (a.total_seconds - 223.0).abs() / 223.0 < 0.25,
            "total {}",
            a.total_seconds
        );
        assert!(
            (a.efficiency() - 0.493).abs() < 0.12,
            "efficiency {}",
            a.efficiency()
        );
        let c = scf_step(
            &twin_c(),
            &opts,
            &ClusterSpec::new(MachineModel::frontier(), 8000),
        );
        // paper: 513.7 s, 659.7 PFLOPS (43.1%)
        assert!(
            (c.total_seconds - 513.7).abs() / 513.7 < 0.25,
            "total {}",
            c.total_seconds
        );
        assert!(
            (c.efficiency() - 0.431).abs() < 0.12,
            "efficiency {}",
            c.efficiency()
        );
    }

    #[test]
    fn mixed_precision_and_overlap_speed_up_the_iteration() {
        let sys = twin_a();
        let cluster = ClusterSpec::new(MachineModel::frontier(), 2400);
        let fast = scf_step(&sys, &SolverOptions::default(), &cluster);
        let slow = scf_step(&sys, &SolverOptions::baseline(), &cluster);
        assert!(slow.total_seconds > 1.2 * fast.total_seconds);
    }

    #[test]
    fn bigger_system_same_nodes_takes_longer() {
        let cluster = ClusterSpec::new(MachineModel::frontier(), 2400);
        let a = scf_step(&twin_a(), &SolverOptions::default(), &cluster);
        let c = scf_step(&twin_c(), &SolverOptions::default(), &cluster);
        assert!(c.total_seconds > 2.0 * a.total_seconds);
    }

    #[test]
    fn strong_scaling_reduces_walltime_sublinearly() {
        let sys = DftSystemSpec::new("YbCd", 1943.0, 40_040.0, 75_069_290.0, 1, false, 7);
        let opts = SolverOptions::default();
        let t240 = scf_step(
            &sys,
            &opts,
            &ClusterSpec::new(MachineModel::frontier(), 240),
        )
        .total_seconds;
        let t960 = scf_step(
            &sys,
            &opts,
            &ClusterSpec::new(MachineModel::frontier(), 960),
        )
        .total_seconds;
        assert!(t960 < t240);
        let speedup = t240 / t960;
        assert!(speedup > 2.0 && speedup < 4.0, "speedup {speedup}");
    }

    #[test]
    fn step_report_accessors() {
        let a = scf_step(
            &twin_a(),
            &SolverOptions::default(),
            &ClusterSpec::new(MachineModel::frontier(), 2400),
        );
        assert_eq!(a.steps.len(), 9);
        assert!(a.step("CF").pflops() > 0.0);
        assert!(a.step("RR-D").pflop.is_none());
        assert!(a.sustained_pflops() > 100.0);
    }

    #[test]
    fn invdft_iteration_scales_with_nodes() {
        let sys = DftSystemSpec::new("C6H4", 10.0, 40.0, 6.0e7, 1, false, 7);
        let opts = SolverOptions::default();
        let t4 = invdft_iteration(
            &sys,
            &opts,
            &ClusterSpec::new(MachineModel::perlmutter(), 4),
            1000.0,
            60.0,
            0.005,
        );
        let t32 = invdft_iteration(
            &sys,
            &opts,
            &ClusterSpec::new(MachineModel::perlmutter(), 32),
            1000.0,
            60.0,
            0.005,
        );
        assert!(t4 > t32);
        let speedup = t4 / t32;
        assert!(speedup > 2.0 && speedup < 8.0, "speedup {speedup}");
    }
}
