//! A real (threaded) message-passing runtime: the MPI stand-in.
//!
//! Ranks are OS threads connected by crossbeam channels. Point-to-point
//! messages and collectives move actual bytes, and every send records its
//! wire volume, so the paper's mixed-precision communication claims
//! (Sec. 5.4.2: FP32 on FE partition boundaries halves traffic while
//! retaining FP64 accuracy) are *testable* rather than asserted.
//!
//! # Fault tolerance
//!
//! Production runs at the paper's scale (8,000 Frontier nodes for hours)
//! lose nodes routinely, so no primitive here blocks forever: every
//! blocking receive — and every receive leg of every collective — takes a
//! deadline derived from the communicator's [`timeout`](ThreadComm::timeout)
//! and surfaces a typed [`CommError`] on expiry instead of hanging or
//! panicking. After the first error the communicator is *poisoned*: all
//! subsequent operations return the original error immediately without
//! waiting or sending, so one dead rank cascades a clean, bounded-time
//! failure through every surviving rank instead of a deadlock.
//!
//! A deterministic fault-injection layer ([`FaultPlan`]) drives the
//! recovery tests: a rule can kill a rank at an application-declared epoch
//! (e.g. "SCF iteration 3") or on its n-th send whose wire tag falls in a
//! band (e.g. "mid ghost exchange", "mid allreduce"), and can delay
//! messages matching a tag band to model slow links.

use crate::explore::{SchedState, SchedulePlan};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Precision used on the wire for floating-point payloads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WirePrecision {
    /// Full FP64 payloads.
    Fp64,
    /// Demote to FP32 on send, promote on receive (the paper's boundary-
    /// communication trick).
    Fp32,
}

impl WirePrecision {
    /// Bytes per scalar on the wire.
    pub fn bytes(self) -> usize {
        match self {
            WirePrecision::Fp64 => 8,
            WirePrecision::Fp32 => 4,
        }
    }
}

/// A typed communication failure. `Copy` so a poisoned communicator can
/// keep returning its original failure cheaply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A blocking receive (or a receive leg of a collective) hit its
    /// deadline: the peer is dead, silent, or slower than the timeout.
    Timeout {
        /// Rank the receive was waiting on.
        src: usize,
        /// Wire tag the receive was matching.
        tag: u64,
    },
    /// The channel to/from `peer` is disconnected: every endpoint that
    /// could produce the message has exited.
    PeerGone {
        /// The peer rank involved in the failed operation.
        peer: usize,
    },
    /// This rank was killed by a [`FaultPlan`] rule (fault injection).
    Killed {
        /// The killed rank (this rank).
        rank: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { src, tag } => {
                write!(f, "timeout waiting for rank {src} (wire tag {tag:#x})")
            }
            CommError::PeerGone { peer } => write!(f, "peer rank {peer} is gone (disconnected)"),
            CommError::Killed { rank } => write!(f, "rank {rank} killed by fault injection"),
        }
    }
}

impl std::error::Error for CommError {}

/// One fault-injection kill rule (see [`FaultPlan`]).
#[derive(Clone, Debug)]
pub struct KillRule {
    /// Rank this rule kills.
    pub rank: usize,
    /// Rule arms when the victim's epoch counter reaches this value (the
    /// application advances epochs, e.g. once per SCF iteration).
    pub epoch: u64,
    /// `None`: die immediately when the epoch is reached (inside
    /// [`ThreadComm::advance_epoch`]). `Some((lo, hi))`: die on a send
    /// whose wire tag satisfies `lo <= tag < hi`.
    pub tags: Option<(u64, u64)>,
    /// With `tags`: number of matching sends to let through before dying
    /// (0 = die on the first match).
    pub after_matches: u64,
}

/// One fault-injection delay rule: sleep before delivering matching sends.
#[derive(Clone, Debug)]
pub struct DelayRule {
    /// Sender rank the rule applies to (`None` = every rank).
    pub rank: Option<usize>,
    /// Wire-tag band `lo <= tag < hi` to delay.
    pub tags: (u64, u64),
    /// Injected latency per matching send.
    pub delay: Duration,
}

/// A deterministic fault plan threaded through every [`ThreadComm`] of a
/// cluster: kill rules turn a rank dead ([`CommError::Killed`]) at a
/// reproducible point, delay rules add latency to matching messages. The
/// plan is pure data — no clocks, no randomness — so a faulted run is
/// exactly repeatable.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Kill rules (each fires at most once).
    pub kills: Vec<KillRule>,
    /// Delay rules (applied to every matching send).
    pub delays: Vec<DelayRule>,
}

impl FaultPlan {
    /// Kill `rank` as soon as its epoch counter reaches `epoch`.
    pub fn kill_at_epoch(rank: usize, epoch: u64) -> Self {
        Self {
            kills: vec![KillRule {
                rank,
                epoch,
                tags: None,
                after_matches: 0,
            }],
            delays: Vec::new(),
        }
    }

    /// Kill `rank` on its `(after_matches + 1)`-th send with a wire tag in
    /// `tags`, once its epoch counter has reached `epoch`.
    pub fn kill_on_send(rank: usize, epoch: u64, tags: (u64, u64), after_matches: u64) -> Self {
        Self {
            kills: vec![KillRule {
                rank,
                epoch,
                tags: Some(tags),
                after_matches,
            }],
            delays: Vec::new(),
        }
    }

    /// Add a delay rule to this plan (builder style).
    pub fn with_delay(mut self, rank: Option<usize>, tags: (u64, u64), delay: Duration) -> Self {
        self.delays.push(DelayRule { rank, tags, delay });
        self
    }
}

/// The wire-tag band of every collective primitive (barrier, allreduce,
/// broadcast, allgather) — for [`FaultPlan`] rules targeting collectives.
pub const COLLECTIVE_TAGS: (u64, u64) = (1 << 60, u64::MAX);

/// Upper bound on cluster size, which bounds every rank-indexed tag band:
/// a band of `width = MAX_RANKS` can address `base + rank` for any rank
/// without escaping its declared interval. [`run_cluster_with`] rejects
/// larger clusters. The dft-lint L003 prover reads this constant to verify
/// the bands below are pairwise disjoint on the wire.
pub const MAX_RANKS: u64 = 4000;

/// A declared interval of collective tags. Every collective primitive draws
/// its tags from exactly one band; no tag literal may appear outside this
/// registry (lint L003). `raw` bands are sent via [`ThreadComm::send_bytes`]
/// unshifted; framed bands pass through the precision encoding
/// (`tag << 1 | fp32_bit`), which doubles their wire interval.
#[derive(Debug, Clone, Copy)]
pub struct TagBand {
    /// Human-readable band name (diagnostics only).
    pub name: &'static str,
    /// First logical tag in the band.
    pub base: u64,
    /// Number of logical tags (`1` for single-tag bands, [`MAX_RANKS`] for
    /// rank-indexed bands).
    pub width: u64,
    /// True when the tag hits the wire unshifted (no precision framing).
    pub raw: bool,
}

impl TagBand {
    /// The band's single (or first) logical tag.
    #[inline]
    pub const fn tag(&self) -> u64 {
        self.base
    }

    /// The logical tag a rank-indexed band assigns to `rank`.
    #[inline]
    pub const fn for_rank(&self, rank: usize) -> u64 {
        debug_assert!((rank as u64) < self.width);
        self.base + rank as u64
    }

    /// Half-open interval of wire tags this band can emit.
    pub const fn wire_range(&self) -> (u64, u64) {
        if self.raw {
            (self.base, self.base + self.width)
        } else {
            (self.base << 1, (self.base + self.width) << 1)
        }
    }

    /// Whether an observed wire tag falls inside this band.
    pub const fn contains_wire(&self, wire: u64) -> bool {
        let (lo, hi) = self.wire_range();
        lo <= wire && wire < hi
    }
}

/// Barrier control messages (raw bytes, no precision framing).
pub const BARRIER_BAND: TagBand = TagBand {
    name: "barrier",
    base: (1 << 60) + 1,
    width: 1,
    raw: true,
};

/// Allreduce: `base + rank` carries rank contributions to root, `base`
/// carries the reduced result back.
pub const ALLREDUCE_BAND: TagBand = TagBand {
    name: "allreduce",
    base: (1 << 60) + 1000,
    width: MAX_RANKS,
    raw: false,
};

/// Broadcast payload from rank 0.
pub const BROADCAST_BAND: TagBand = TagBand {
    name: "broadcast",
    base: (1 << 60) + 5000,
    width: 1,
    raw: false,
};

/// Allgather: `base + rank` carries each rank's scalar to root (the
/// result returns on [`BROADCAST_BAND`]).
pub const GATHER_BAND: TagBand = TagBand {
    name: "gather",
    base: (1 << 60) + 7000,
    width: MAX_RANKS,
    raw: false,
};

/// Sub-group allreduce (process-grid rows/columns): `base + rank` carries a
/// member's contribution to the group root, `base + root` carries the
/// reduced result back. Disjoint groups may use the band concurrently —
/// their `(src, dst)` pairs never collide.
pub const GROUP_REDUCE_BAND: TagBand = TagBand {
    name: "group-reduce",
    base: (1 << 60) + 11000,
    width: MAX_RANKS,
    raw: false,
};

/// Sub-group allgather of variable-length blocks (band-axis assembly of
/// wavefunction column blocks): `base + rank` carries a member's block to
/// the group root, `base + root` carries the framed concatenation back.
pub const GROUP_ASSEMBLE_BAND: TagBand = TagBand {
    name: "group-assemble",
    base: (1 << 60) + 16000,
    width: MAX_RANKS,
    raw: false,
};

/// K-point-group broadcast: `base + root` carries the payload from each
/// group's root to its members (concurrent per-group broadcasts share the
/// band; roots are distinct ranks).
pub const KGROUP_BAND: TagBand = TagBand {
    name: "kgroup",
    base: (1 << 60) + 21000,
    width: MAX_RANKS,
    raw: false,
};

/// Preemption-consensus allreduce(max): `base + rank` carries each rank's
/// local view of a control flag to root, `base` carries the agreed maximum
/// back. A dedicated band — rather than piggybacking on
/// [`ALLREDUCE_BAND`] — so the job server's control traffic is separable
/// from solver reductions in fault plans and sanitizer ledgers: a per-job
/// cluster is already its own comm namespace, and this band keeps its
/// *control plane* disjoint from its data plane on the wire too.
pub const PREEMPT_BAND: TagBand = TagBand {
    name: "preempt",
    base: (1 << 60) + 26000,
    width: MAX_RANKS,
    raw: false,
};

/// The complete collective tag registry. The dft-lint L003 pass statically
/// proves these bands pairwise disjoint on the wire and contained in
/// [`COLLECTIVE_TAGS`]; the `sanitize` feature additionally asserts at
/// runtime that every observed collective wire tag lands in one of them.
pub const TAG_BANDS: [TagBand; 8] = [
    BARRIER_BAND,
    ALLREDUCE_BAND,
    BROADCAST_BAND,
    GATHER_BAND,
    GROUP_REDUCE_BAND,
    GROUP_ASSEMBLE_BAND,
    KGROUP_BAND,
    PREEMPT_BAND,
];

/// The wire-tag band a logical point-to-point tag occupies after precision
/// encoding (both FP64 and FP32 framings) — for [`FaultPlan`] rules
/// targeting a specific exchange.
pub const fn wire_tag_band(tag: u64) -> (u64, u64) {
    (tag << 1, (tag << 1) + 2)
}

/// Cluster-wide run options: the receive deadline and the fault plan.
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// Deadline for every blocking receive (and each receive leg of a
    /// collective). Must exceed the peers' worst-case compute skew.
    pub timeout: Duration,
    /// Deterministic fault-injection plan (empty = fault-free).
    pub faults: Arc<FaultPlan>,
    /// Seeded message-schedule perturbation for the exploration sanitizer
    /// (`None` = natural delivery order, zero overhead).
    pub schedule: Option<SchedulePlan>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(30),
            faults: Arc::new(FaultPlan::default()),
            schedule: None,
        }
    }
}

impl ClusterOptions {
    /// Fault-free options with the given receive timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            timeout,
            ..Self::default()
        }
    }
}

struct Packet {
    src: usize,
    tag: u64,
    data: Vec<u8>,
}

/// Shared byte/message counters for a cluster run.
///
/// Every hop of every primitive — point-to-point sends, barrier
/// control messages, and each leg of the collectives — passes through
/// [`ThreadComm::send_bytes`], so `bytes_sent` is the exact payload volume
/// that crossed the wire. Floating-point payloads are additionally broken
/// down by wire precision (`bytes_fp64` / `bytes_fp32`), which is what
/// makes the paper's "FP32 boundary exchange halves traffic" claim
/// (Sec. 5.4.2) directly measurable. Fault-tolerance events (receive
/// timeouts, injected kills, injected delays) are tallied alongside.
/// Debug-build message-leak detector (`sanitize` feature): the dynamic
/// complement of the static L003 tag prover. Every successful
/// [`ThreadComm::send_bytes`] records its `(src, dst, wire_tag)` triple;
/// every delivery decrements it. At clean cluster shutdown
/// ([`run_cluster_with`] with no rank failed) any nonzero entry is a
/// message that was sent but never received — a protocol leak.
#[cfg(feature = "sanitize")]
pub mod sanitize {
    use super::{COLLECTIVE_TAGS, TAG_BANDS};
    use std::collections::BTreeMap;
    use std::sync::{Mutex, PoisonError};

    /// In-flight message ledger keyed by `(src, dst, wire_tag)`.
    #[derive(Default)]
    pub struct MsgTracker {
        in_flight: Mutex<BTreeMap<(usize, usize, u64), u64>>,
    }

    impl MsgTracker {
        /// Record a message handed to the destination channel.
        pub fn record(&self, src: usize, dst: usize, wire_tag: u64) {
            let mut map = self
                .in_flight
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *map.entry((src, dst, wire_tag)).or_insert(0) += 1;
        }

        /// Record a message delivered to its receiver.
        pub fn deliver(&self, src: usize, dst: usize, wire_tag: u64) {
            let mut map = self
                .in_flight
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(n) = map.get_mut(&(src, dst, wire_tag)) {
                *n -= 1;
                if *n == 0 {
                    map.remove(&(src, dst, wire_tag));
                }
            }
        }

        /// Panic if any recorded message was never delivered. Called at
        /// clean shutdown only — ranks that failed (kill/timeout) leave
        /// legitimately undeliverable messages behind.
        pub fn assert_drained(&self) {
            let map = self
                .in_flight
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let leaks: Vec<String> = map
                .iter()
                .map(|(&(src, dst, tag), &n)| {
                    format!("{n} message(s) {src} -> {dst} wire_tag {tag:#x}")
                })
                .collect();
            assert!(
                leaks.is_empty(),
                "comm sanitizer: {} leaked message(s) at clean shutdown:\n  {}",
                leaks.len(),
                leaks.join("\n  ")
            );
        }

        /// Assert that a collective-range wire tag belongs to a declared
        /// [`TagBand`](super::TagBand) — the runtime twin of lint L003.
        pub fn assert_tag_registered(wire_tag: u64) {
            if wire_tag < COLLECTIVE_TAGS.0 {
                return; // point-to-point tag space, unregistered by design
            }
            assert!(
                TAG_BANDS.iter().any(|b| b.contains_wire(wire_tag)),
                "comm sanitizer: collective wire tag {wire_tag:#x} is outside every registered TagBand"
            );
        }
    }
}

#[derive(Default)]
pub struct CommStats {
    /// Debug-build message-leak tracker (`sanitize` feature only).
    #[cfg(feature = "sanitize")]
    pub tracker: sanitize::MsgTracker,
    /// Total payload bytes sent by all ranks (point-to-point + collectives).
    pub bytes_sent: AtomicU64,
    /// Total messages sent.
    pub messages: AtomicU64,
    /// Payload bytes sent as FP64 floating-point data.
    pub bytes_fp64: AtomicU64,
    /// Payload bytes sent as FP32 (demoted) floating-point data.
    pub bytes_fp32: AtomicU64,
    /// Nanoseconds spent waiting (polling or blocking) for ghost-exchange
    /// payloads that had not yet arrived — the paper's "data movement
    /// exposed on the critical path". Cross-iteration overlap posts sends
    /// earlier, which shows up here as a smaller wait at fixed byte volume.
    pub ghost_wait_nanos: AtomicU64,
    /// Receives that expired at their deadline.
    pub timeouts: AtomicU64,
    /// Ranks killed by fault injection.
    pub kills: AtomicU64,
    /// Sends delayed by fault injection.
    pub delayed: AtomicU64,
}

impl CommStats {
    /// Snapshot of `(bytes_sent, messages, bytes_fp64, bytes_fp32)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.bytes_sent.load(Ordering::Relaxed),
            self.messages.load(Ordering::Relaxed),
            self.bytes_fp64.load(Ordering::Relaxed),
            self.bytes_fp32.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of the fault counters `(timeouts, kills, delayed sends)`.
    pub fn fault_snapshot(&self) -> (u64, u64, u64) {
        (
            self.timeouts.load(Ordering::Relaxed),
            self.kills.load(Ordering::Relaxed),
            self.delayed.load(Ordering::Relaxed),
        )
    }
}

/// One rank's endpoint in a threaded cluster.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    pending: VecDeque<Packet>,
    stats: Arc<CommStats>,
    timeout: Duration,
    faults: Arc<FaultPlan>,
    /// Per kill rule: matching sends seen so far (rule fires when the count
    /// passes `after_matches`).
    kill_hits: Vec<u64>,
    /// Application-declared epoch (e.g. SCF iteration), advanced via
    /// [`Self::advance_epoch`]; arms epoch-gated kill rules.
    epoch: u64,
    /// First failure observed; once set, every operation short-circuits.
    failed: Option<CommError>,
    /// Schedule-exploration state: seeded send delays and pending-queue
    /// permutation (`None` in production runs).
    sched: Option<SchedState>,
}

impl ThreadComm {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Shared traffic statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// The receive deadline applied to blocking operations.
    #[inline]
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Override the receive deadline.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The failure that poisoned this communicator, if any.
    #[inline]
    pub fn failure(&self) -> Option<CommError> {
        self.failed
    }

    /// Poison the communicator: every subsequent operation returns the
    /// first recorded error immediately (no waiting, no sending), so a
    /// detected failure cascades through the cluster in bounded time.
    pub fn fail(&mut self, err: CommError) {
        if self.failed.is_none() {
            match err {
                CommError::Timeout { .. } => {
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                CommError::Killed { .. } => {
                    self.stats.kills.fetch_add(1, Ordering::Relaxed);
                }
                CommError::PeerGone { .. } => {}
            }
            self.failed = Some(err);
        }
    }

    /// Clear a recorded failure (drivers/tests that deliberately continue
    /// after a fault, e.g. to drain state before a restart).
    pub fn clear_failure(&mut self) {
        self.failed = None;
    }

    #[inline]
    fn check(&self) -> Result<(), CommError> {
        match self.failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Advance the application epoch (e.g. call once per SCF iteration).
    /// Fires epoch-gated kill rules with no tag filter, so "kill rank R at
    /// iteration K" happens at a precisely reproducible point.
    pub fn advance_epoch(&mut self) -> Result<(), CommError> {
        self.epoch += 1;
        let faults = Arc::clone(&self.faults);
        for rule in &faults.kills {
            if rule.rank == self.rank && rule.tags.is_none() && self.epoch >= rule.epoch {
                self.fail(CommError::Killed { rank: self.rank });
            }
        }
        self.check()
    }

    /// Current application epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Evaluate tag-gated kill and delay rules for a send carrying
    /// `wire_tag`. Returns the kill error if a rule fires.
    fn fault_on_send(&mut self, wire_tag: u64) -> Result<(), CommError> {
        if self.faults.kills.is_empty() && self.faults.delays.is_empty() {
            return Ok(());
        }
        let faults = Arc::clone(&self.faults);
        for (i, rule) in faults.kills.iter().enumerate() {
            if rule.rank != self.rank || self.epoch < rule.epoch {
                continue;
            }
            if let Some((lo, hi)) = rule.tags {
                if wire_tag >= lo && wire_tag < hi {
                    let hit = self.kill_hits[i];
                    self.kill_hits[i] = hit + 1;
                    if hit >= rule.after_matches {
                        self.fail(CommError::Killed { rank: self.rank });
                        return self.check();
                    }
                }
            }
        }
        for rule in &faults.delays {
            if rule.rank.is_none_or(|r| r == self.rank)
                && wire_tag >= rule.tags.0
                && wire_tag < rule.tags.1
            {
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(rule.delay);
            }
        }
        Ok(())
    }

    /// Send raw bytes to `dst` with a user `tag`. Fails fast on a poisoned
    /// communicator or a fired kill rule; [`CommError::PeerGone`] if the
    /// destination channel is disconnected.
    pub fn send_bytes(&mut self, dst: usize, tag: u64, data: Vec<u8>) -> Result<(), CommError> {
        self.check()?;
        self.fault_on_send(tag)?;
        if let Some(s) = self.sched.as_mut() {
            if let Some(d) = s.delay_for(tag) {
                std::thread::sleep(d);
            }
        }
        #[cfg(feature = "sanitize")]
        sanitize::MsgTracker::assert_tag_registered(tag);
        self.stats
            .bytes_sent
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        // record before the channel send: once the packet is in the
        // channel the receiver may deliver (and decrement) it immediately
        #[cfg(feature = "sanitize")]
        self.stats.tracker.record(self.rank, dst, tag);
        if self.senders[dst]
            .send(Packet {
                src: self.rank,
                tag,
                data,
            })
            .is_err()
        {
            #[cfg(feature = "sanitize")]
            self.stats.tracker.deliver(self.rank, dst, tag); // undo: nothing was sent
            let e = CommError::PeerGone { peer: dst };
            self.fail(e);
            return Err(e);
        }
        Ok(())
    }

    /// Stash a drained non-matching packet in the pending queue. Without a
    /// schedule plan this is a plain FIFO append; under exploration the
    /// packet lands at a seeded position among *other* `(src, tag)`
    /// streams — but never ahead of an earlier packet of its own stream,
    /// so the MPI non-overtaking rule holds under every explored schedule.
    fn stash(&mut self, p: Packet) {
        let Some(s) = self.sched.as_mut() else {
            self.pending.push_back(p);
            return;
        };
        let floor = self
            .pending
            .iter()
            .rposition(|q| q.src == p.src && q.tag == p.tag)
            .map_or(0, |i| i + 1);
        let slot = s.insert_slot(floor, self.pending.len());
        self.pending.insert(slot, p);
    }

    /// Pop the first buffered packet matching `(src, tag)`, preserving the
    /// arrival (FIFO) order of any same-`(src, tag)` messages behind it.
    fn take_pending(&mut self, src: usize, tag: u64) -> Option<Vec<u8>> {
        let pos = self
            .pending
            .iter()
            .position(|p| p.src == src && p.tag == tag)?;
        let p = self.pending.remove(pos)?;
        #[cfg(feature = "sanitize")]
        self.stats.tracker.deliver(p.src, self.rank, p.tag);
        Some(p.data)
    }

    /// Blocking receive of a message from `src` with `tag` against the
    /// communicator's default deadline (out-of-order arrivals are
    /// buffered). On expiry the communicator is poisoned and
    /// [`CommError::Timeout`] is returned — there is no infinite wait.
    pub fn recv_bytes(&mut self, src: usize, tag: u64) -> Result<Vec<u8>, CommError> {
        let deadline = Instant::now() + self.timeout;
        self.recv_bytes_deadline(src, tag, deadline)
    }

    /// [`Self::recv_bytes`] against an explicit deadline — collectives pass
    /// one shared deadline through all their receive legs. Packets drained
    /// while scanning for the tag are stashed in the pending queue and
    /// survive the error path (nothing is ever dropped).
    pub fn recv_bytes_deadline(
        &mut self,
        src: usize,
        tag: u64,
        deadline: Instant,
    ) -> Result<Vec<u8>, CommError> {
        self.check()?;
        if let Some(data) = self.take_pending(src, tag) {
            return Ok(data);
        }
        loop {
            let now = Instant::now();
            if now >= deadline {
                let e = CommError::Timeout { src, tag };
                self.fail(e);
                return Err(e);
            }
            match self.receiver.recv_timeout(deadline - now) {
                Ok(p) => {
                    if p.src == src && p.tag == tag {
                        #[cfg(feature = "sanitize")]
                        self.stats.tracker.deliver(p.src, self.rank, p.tag);
                        return Ok(p.data);
                    }
                    self.stash(p);
                }
                Err(RecvTimeoutError::Timeout) => {
                    let e = CommError::Timeout { src, tag };
                    self.fail(e);
                    return Err(e);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let e = CommError::PeerGone { peer: src };
                    self.fail(e);
                    return Err(e);
                }
            }
        }
    }

    /// Nonblocking receive: drain everything that has already arrived into
    /// the pending queue and return the first match for `(src, tag)` if one
    /// is there, `Ok(None)` otherwise. The counterpart of
    /// [`Self::isend_f64`] for comm/compute overlap — poll between
    /// interior-compute chunks. Already-stashed packets are checked before
    /// any error is raised, so a disconnect never drops buffered messages.
    pub fn try_recv_bytes(&mut self, src: usize, tag: u64) -> Result<Option<Vec<u8>>, CommError> {
        self.check()?;
        let disconnected = loop {
            match self.receiver.try_recv() {
                Ok(p) => self.stash(p),
                Err(TryRecvError::Empty) => break false,
                Err(TryRecvError::Disconnected) => break true,
            }
        };
        // serve from the stash first: a message that already arrived must
        // be delivered even if the channel has since disconnected
        if let Some(data) = self.take_pending(src, tag) {
            return Ok(Some(data));
        }
        if disconnected {
            let e = CommError::PeerGone { peer: src };
            self.fail(e);
            return Err(e);
        }
        Ok(None)
    }

    fn wire_tag(tag: u64, wire: WirePrecision) -> u64 {
        // the wire format travels in the low bit of the tag space so a
        // receive must name the same precision the send used
        tag << 1 | u64::from(wire == WirePrecision::Fp32)
    }

    fn decode_f64(bytes: &[u8], wire: WirePrecision) -> Vec<f64> {
        match wire {
            WirePrecision::Fp64 => bytes
                .chunks_exact(8)
                // dftlint:allow(L001, reason="chunks_exact(8) guarantees 8-byte slices; try_into cannot fail")
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
            WirePrecision::Fp32 => bytes
                .chunks_exact(4)
                // dftlint:allow(L001, reason="chunks_exact(4) guarantees 4-byte slices; try_into cannot fail")
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()) as f64)
                .collect(),
        }
    }

    /// Send an `f64` slice, demoting to the requested wire precision.
    pub fn send_f64(
        &mut self,
        dst: usize,
        tag: u64,
        data: &[f64],
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        let bytes = match wire {
            WirePrecision::Fp64 => {
                let mut b = Vec::with_capacity(data.len() * 8);
                for v in data {
                    b.extend_from_slice(&v.to_le_bytes());
                }
                b
            }
            WirePrecision::Fp32 => {
                let mut b = Vec::with_capacity(data.len() * 4);
                for v in data {
                    b.extend_from_slice(&(*v as f32).to_le_bytes());
                }
                b
            }
        };
        let counter = match wire {
            WirePrecision::Fp64 => &self.stats.bytes_fp64,
            WirePrecision::Fp32 => &self.stats.bytes_fp32,
        };
        counter.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.send_bytes(dst, Self::wire_tag(tag, wire), bytes)
    }

    /// Nonblocking (immediately returning) send of an `f64` slice. The
    /// channel transport is buffered, so posting the send never waits on the
    /// receiver: issue boundary `isend`s first, overlap interior compute,
    /// then harvest with [`Self::try_recv_f64`] / [`Self::recv_f64`].
    pub fn isend_f64(
        &mut self,
        dst: usize,
        tag: u64,
        data: &[f64],
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        self.send_f64(dst, tag, data, wire)
    }

    /// Receive an `f64` slice sent with [`Self::send_f64`] (promoting FP32
    /// payloads back to FP64).
    pub fn recv_f64(
        &mut self,
        src: usize,
        tag: u64,
        wire: WirePrecision,
    ) -> Result<Vec<f64>, CommError> {
        let bytes = self.recv_bytes(src, Self::wire_tag(tag, wire))?;
        Ok(Self::decode_f64(&bytes, wire))
    }

    /// [`Self::recv_f64`] against an explicit deadline.
    pub fn recv_f64_deadline(
        &mut self,
        src: usize,
        tag: u64,
        wire: WirePrecision,
        deadline: Instant,
    ) -> Result<Vec<f64>, CommError> {
        let bytes = self.recv_bytes_deadline(src, Self::wire_tag(tag, wire), deadline)?;
        Ok(Self::decode_f64(&bytes, wire))
    }

    /// Nonblocking variant of [`Self::recv_f64`]: `Ok(None)` if the message
    /// has not arrived yet.
    pub fn try_recv_f64(
        &mut self,
        src: usize,
        tag: u64,
        wire: WirePrecision,
    ) -> Result<Option<Vec<f64>>, CommError> {
        Ok(self
            .try_recv_bytes(src, Self::wire_tag(tag, wire))?
            .map(|b| Self::decode_f64(&b, wire)))
    }

    /// Barrier across all ranks (dissemination via rank 0). One shared
    /// deadline covers the whole collective.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let tag = BARRIER_BAND.tag();
        let deadline = Instant::now() + self.timeout;
        if self.rank == 0 {
            for r in 1..self.size {
                let _ = self.recv_bytes_deadline(r, tag, deadline)?;
            }
            for r in 1..self.size {
                self.send_bytes(r, tag, vec![])?;
            }
        } else {
            self.send_bytes(0, tag, vec![])?;
            let _ = self.recv_bytes_deadline(0, tag, deadline)?;
        }
        Ok(())
    }

    /// In-place allreduce(sum) over `f64` buffers, with selectable wire
    /// precision (gather-to-root + broadcast; the accumulation itself is
    /// always FP64, matching the paper's "FP32 wire, FP64 math" scheme).
    /// One shared deadline covers every receive leg.
    pub fn allreduce_sum_f64(
        &mut self,
        data: &mut [f64],
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        if self.size == 1 {
            return self.check();
        }
        let deadline = Instant::now() + self.timeout;
        if self.rank == 0 {
            let mut acc = data.to_vec();
            for r in 1..self.size {
                let contrib =
                    self.recv_f64_deadline(r, ALLREDUCE_BAND.for_rank(r), wire, deadline)?;
                for (a, &c) in acc.iter_mut().zip(contrib.iter()) {
                    *a += c;
                }
            }
            for r in 1..self.size {
                self.send_f64(r, ALLREDUCE_BAND.tag(), &acc, wire)?;
            }
            data.copy_from_slice(&acc);
        } else {
            self.send_f64(0, ALLREDUCE_BAND.for_rank(self.rank), data, wire)?;
            let red = self.recv_f64_deadline(0, ALLREDUCE_BAND.tag(), wire, deadline)?;
            data.copy_from_slice(&red);
        }
        Ok(())
    }

    /// Allreduce(max) of one small unsigned counter — the control-plane
    /// consensus primitive behind cooperative preemption: every rank
    /// contributes its local view of a flag/epoch and all ranks agree on
    /// the maximum, so a signal observed by *any* rank mid-iteration
    /// becomes a decision taken by *every* rank at the same iteration.
    /// Values must stay below 2^53 (they ride the FP64 wire exactly);
    /// preemption flags and iteration counters are far below that. Uses
    /// the dedicated [`PREEMPT_BAND`].
    pub fn allreduce_max_u64(&mut self, v: u64) -> Result<u64, CommError> {
        // dftlint:allow(L003, reason="2^53 is the exact-f64 range bound of the payload, not a wire tag")
        debug_assert!(v < (1 << 53), "control counter exceeds exact f64 range");
        if self.size == 1 {
            self.check()?;
            return Ok(v);
        }
        let deadline = Instant::now() + self.timeout;
        if self.rank == 0 {
            let mut acc = v as f64;
            for r in 1..self.size {
                let contrib = self.recv_f64_deadline(
                    r,
                    PREEMPT_BAND.for_rank(r),
                    WirePrecision::Fp64,
                    deadline,
                )?;
                // max of non-negative integers is order-independent and
                // exact in f64: deterministic regardless of arrival order
                for &c in &contrib {
                    if c > acc {
                        acc = c;
                    }
                }
            }
            for r in 1..self.size {
                self.send_f64(r, PREEMPT_BAND.tag(), &[acc], WirePrecision::Fp64)?;
            }
            Ok(acc as u64)
        } else {
            self.send_f64(
                0,
                PREEMPT_BAND.for_rank(self.rank),
                &[v as f64],
                WirePrecision::Fp64,
            )?;
            let red =
                self.recv_f64_deadline(0, PREEMPT_BAND.tag(), WirePrecision::Fp64, deadline)?;
            Ok(red.first().copied().unwrap_or(v as f64) as u64)
        }
    }

    /// Broadcast from rank 0, with selectable wire precision (rank 0's data
    /// is left untouched; FP32 wire rounds what the other ranks receive).
    /// Each of the `size - 1` hops carries the full payload once.
    pub fn broadcast_f64(
        &mut self,
        data: &mut [f64],
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        if self.size == 1 {
            return self.check();
        }
        if self.rank == 0 {
            for r in 1..self.size {
                self.send_f64(r, BROADCAST_BAND.tag(), data, wire)?;
            }
        } else {
            let v = self.recv_f64(0, BROADCAST_BAND.tag(), wire)?;
            data.copy_from_slice(&v);
        }
        Ok(())
    }

    /// Gather per-rank scalars at every rank (small allgather):
    /// gather-to-root then broadcast, so every hop moves only payload —
    /// `size - 1` one-scalar hops in, `size - 1` full-vector hops out
    /// (the former one-hot-allreduce implementation padded every hop to
    /// `size` scalars, inflating the recorded wire volume).
    pub fn allgather_scalar(&mut self, v: f64) -> Result<Vec<f64>, CommError> {
        let mut buf = vec![0.0; self.size];
        buf[self.rank] = v;
        if self.size == 1 {
            self.check()?;
            return Ok(buf);
        }
        let deadline = Instant::now() + self.timeout;
        if self.rank == 0 {
            // r is the peer rank, not just an index into buf
            #[allow(clippy::needless_range_loop)]
            for r in 1..self.size {
                let got = self.recv_f64_deadline(
                    r,
                    GATHER_BAND.for_rank(r),
                    WirePrecision::Fp64,
                    deadline,
                )?;
                buf[r] = got[0];
            }
        } else {
            self.send_f64(
                0,
                GATHER_BAND.for_rank(self.rank),
                &[v],
                WirePrecision::Fp64,
            )?;
        }
        self.broadcast_f64(&mut buf, WirePrecision::Fp64)?;
        Ok(buf)
    }

    /// In-place allreduce(sum) over the communicator sub-group `members`
    /// (ascending global ranks; must contain `self.rank`). The group root is
    /// `members[0]`; contributions are accumulated in member order, always
    /// in FP64 regardless of the wire precision. When `members` is the full
    /// rank list `[0, n)` the arithmetic is bit-identical to
    /// [`Self::allreduce_sum_f64`]. Disjoint groups (process-grid rows or
    /// columns) may call this concurrently on the shared
    /// [`GROUP_REDUCE_BAND`].
    pub fn group_allreduce_sum_f64(
        &mut self,
        members: &[usize],
        data: &mut [f64],
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        if members.len() <= 1 {
            return self.check();
        }
        let root = members[0];
        let deadline = Instant::now() + self.timeout;
        if self.rank == root {
            let mut acc = data.to_vec();
            for &m in &members[1..] {
                let contrib =
                    self.recv_f64_deadline(m, GROUP_REDUCE_BAND.for_rank(m), wire, deadline)?;
                for (a, &c) in acc.iter_mut().zip(contrib.iter()) {
                    *a += c;
                }
            }
            for &m in &members[1..] {
                self.send_f64(m, GROUP_REDUCE_BAND.for_rank(root), &acc, wire)?;
            }
            data.copy_from_slice(&acc);
        } else {
            self.send_f64(root, GROUP_REDUCE_BAND.for_rank(self.rank), data, wire)?;
            let red =
                self.recv_f64_deadline(root, GROUP_REDUCE_BAND.for_rank(root), wire, deadline)?;
            data.copy_from_slice(&red);
        }
        Ok(())
    }

    /// Allgather of variable-length `f64` blocks over the sub-group
    /// `members`: returns every member's block in member order, on every
    /// member. Gather-to-root then one framed return hop per member — the
    /// frame is `[n, len_0.., blocks..]` (block counts and lengths are far
    /// below 2^24, so they survive an FP32 wire exactly).
    pub fn group_allgather_f64(
        &mut self,
        members: &[usize],
        mine: &[f64],
        wire: WirePrecision,
    ) -> Result<Vec<Vec<f64>>, CommError> {
        if members.len() <= 1 {
            self.check()?;
            return Ok(vec![mine.to_vec()]);
        }
        let root = members[0];
        let deadline = Instant::now() + self.timeout;
        if self.rank == root {
            let mut blocks: Vec<Vec<f64>> = Vec::with_capacity(members.len());
            blocks.push(mine.to_vec());
            for &m in &members[1..] {
                blocks.push(self.recv_f64_deadline(
                    m,
                    GROUP_ASSEMBLE_BAND.for_rank(m),
                    wire,
                    deadline,
                )?);
            }
            let total: usize = blocks.iter().map(Vec::len).sum();
            let mut framed = Vec::with_capacity(1 + blocks.len() + total);
            framed.push(blocks.len() as f64);
            for b in &blocks {
                framed.push(b.len() as f64);
            }
            for b in &blocks {
                framed.extend_from_slice(b);
            }
            for &m in &members[1..] {
                self.send_f64(m, GROUP_ASSEMBLE_BAND.for_rank(root), &framed, wire)?;
            }
            Ok(blocks)
        } else {
            self.send_f64(root, GROUP_ASSEMBLE_BAND.for_rank(self.rank), mine, wire)?;
            let framed =
                self.recv_f64_deadline(root, GROUP_ASSEMBLE_BAND.for_rank(root), wire, deadline)?;
            if framed.is_empty() {
                let e = CommError::PeerGone { peer: root };
                self.fail(e);
                return Err(e);
            }
            let n = framed[0] as usize;
            if framed.len() < 1 + n {
                let e = CommError::PeerGone { peer: root };
                self.fail(e);
                return Err(e);
            }
            let mut blocks = Vec::with_capacity(n);
            let mut off = 1 + n;
            for i in 0..n {
                let len = framed[1 + i] as usize;
                if off + len > framed.len() {
                    let e = CommError::PeerGone { peer: root };
                    self.fail(e);
                    return Err(e);
                }
                blocks.push(framed[off..off + len].to_vec());
                off += len;
            }
            Ok(blocks)
        }
    }

    /// Broadcast from the sub-group root `members[0]` to the other members
    /// (the root's `data` is left untouched). Concurrent broadcasts from
    /// distinct roots (one per k-point group) share [`KGROUP_BAND`].
    pub fn group_broadcast_f64(
        &mut self,
        members: &[usize],
        data: &mut [f64],
        wire: WirePrecision,
    ) -> Result<(), CommError> {
        if members.len() <= 1 {
            return self.check();
        }
        let root = members[0];
        if self.rank == root {
            for &m in &members[1..] {
                self.send_f64(m, KGROUP_BAND.for_rank(root), data, wire)?;
            }
        } else {
            let v = self.recv_f64(root, KGROUP_BAND.for_rank(root), wire)?;
            data.copy_from_slice(&v);
        }
        Ok(())
    }
}

/// Run `f` on `n` ranks (threads) and collect the per-rank results in rank
/// order. Returns the results and the shared traffic statistics.
/// Fault-free, with the default (generous) receive deadline; see
/// [`run_cluster_with`] for timeouts and fault injection.
pub fn run_cluster<T, F>(n: usize, f: F) -> (Vec<T>, Arc<CommStats>)
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Send + Sync,
{
    run_cluster_with(n, &ClusterOptions::default(), f)
}

/// [`run_cluster`] with explicit [`ClusterOptions`]: a receive deadline for
/// every blocking operation and a deterministic [`FaultPlan`].
pub fn run_cluster_with<T, F>(n: usize, opts: &ClusterOptions, f: F) -> (Vec<T>, Arc<CommStats>)
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Send + Sync,
{
    assert!(
        n >= 1 && n as u64 <= MAX_RANKS,
        "cluster size exceeds MAX_RANKS"
    );
    let stats = Arc::new(CommStats::default());
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let mut comms: Vec<ThreadComm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| ThreadComm {
            rank,
            size: n,
            senders: senders.clone(),
            receiver,
            pending: VecDeque::new(),
            stats: Arc::clone(&stats),
            timeout: opts.timeout,
            faults: Arc::clone(&opts.faults),
            kill_hits: vec![0; opts.faults.kills.len()],
            epoch: 0,
            failed: None,
            sched: opts
                .schedule
                .as_ref()
                .map(|plan| SchedState::for_rank(plan, rank)),
        })
        .collect();
    drop(senders);

    let results: Vec<T> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms.iter_mut().map(|c| scope.spawn(|| f(c))).collect();
        handles
            .into_iter()
            // dftlint:allow(L001, reason="re-raise a rank thread's panic on the driver; rank panics are bugs, not recoverable comm faults")
            .map(|h| h.join().unwrap())
            .collect()
    });
    // leak check only on clean shutdown: a failed rank (kill/timeout)
    // legitimately strands messages addressed to it
    #[cfg(feature = "sanitize")]
    if comms.iter().all(|c| c.failed.is_none()) {
        stats.tracker.assert_drained();
    }
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_point_to_point() {
        let (results, _) = run_cluster(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send_f64(next, 7, &[c.rank() as f64], WirePrecision::Fp64)
                .unwrap();
            let got = c.recv_f64(prev, 7, WirePrecision::Fp64).unwrap();
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let (results, _) = run_cluster(5, |c| {
            let mut v = vec![c.rank() as f64, 1.0];
            c.allreduce_sum_f64(&mut v, WirePrecision::Fp64).unwrap();
            v
        });
        for r in results {
            assert_eq!(r, vec![10.0, 5.0]);
        }
    }

    /// The preemption-consensus primitive: every rank learns the maximum
    /// contributed value, including a flag raised by a single rank.
    #[test]
    fn allreduce_max_agrees_on_the_maximum() {
        let (results, _) = run_cluster(5, |c| {
            let flag = u64::from(c.rank() == 3) * 7;
            c.allreduce_max_u64(flag).unwrap()
        });
        for r in results {
            assert_eq!(r, 7);
        }
        // all-zero flags stay zero, and a single rank degenerates cleanly
        let (results, _) = run_cluster(4, |c| c.allreduce_max_u64(0).unwrap());
        assert!(results.iter().all(|&r| r == 0));
        let (results, _) = run_cluster(1, |c| c.allreduce_max_u64(9).unwrap());
        assert_eq!(results, vec![9]);
    }

    #[test]
    fn fp32_wire_halves_traffic() {
        let payload: Vec<f64> = (0..1000).map(|i| i as f64 * 0.001).collect();
        let (_, stats64) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 1, &payload, WirePrecision::Fp64).unwrap();
            } else {
                let _ = c.recv_f64(0, 1, WirePrecision::Fp64).unwrap();
            }
        });
        let (_, stats32) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 1, &payload, WirePrecision::Fp32).unwrap();
            } else {
                let _ = c.recv_f64(0, 1, WirePrecision::Fp32).unwrap();
            }
        });
        let b64 = stats64.bytes_sent.load(Ordering::Relaxed);
        let b32 = stats32.bytes_sent.load(Ordering::Relaxed);
        assert_eq!(b64, 8000);
        assert_eq!(b32, 4000);
    }

    #[test]
    fn fp32_wire_retains_small_relative_error() {
        let payload: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 2, &payload, WirePrecision::Fp32).unwrap();
                vec![]
            } else {
                c.recv_f64(0, 2, WirePrecision::Fp32).unwrap()
            }
        });
        let got = &results[1];
        for (a, b) in payload.iter().zip(got.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn allreduce_fp32_wire_accumulates_in_fp64() {
        // each rank contributes 1e-3; with 8 ranks the FP64 accumulation
        // keeps full precision even if each wire hop rounds to FP32
        let (results, _) = run_cluster(8, |c| {
            let mut v = vec![1e-3];
            c.allreduce_sum_f64(&mut v, WirePrecision::Fp32).unwrap();
            v[0]
        });
        for r in results {
            assert!((r - 8e-3).abs() < 1e-8);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::AtomicUsize;
        let phase1 = Arc::new(AtomicUsize::new(0));
        let p1 = Arc::clone(&phase1);
        let (results, _) = run_cluster(4, move |c| {
            p1.fetch_add(1, Ordering::SeqCst);
            c.barrier().unwrap();
            // after the barrier every rank must observe all increments
            p1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }

    #[test]
    fn allgather_scalar_collects_all() {
        let (results, _) = run_cluster(3, |c| c.allgather_scalar((c.rank() * 10) as f64).unwrap());
        for r in results {
            assert_eq!(r, vec![0.0, 10.0, 20.0]);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 100, &[1.0], WirePrecision::Fp64).unwrap();
                c.send_f64(1, 200, &[2.0], WirePrecision::Fp64).unwrap();
                0.0
            } else {
                // receive in reverse order
                let b = c.recv_f64(0, 200, WirePrecision::Fp64).unwrap()[0];
                let a = c.recv_f64(0, 100, WirePrecision::Fp64).unwrap()[0];
                a + 10.0 * b
            }
        });
        assert_eq!(results[1], 21.0);
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let (results, _) = run_cluster(1, |c| {
            let mut v = vec![3.5];
            c.allreduce_sum_f64(&mut v, WirePrecision::Fp64).unwrap();
            c.barrier().unwrap();
            c.broadcast_f64(&mut v, WirePrecision::Fp64).unwrap();
            v[0]
        });
        assert_eq!(results[0], 3.5);
    }

    /// Satellite: the FP32 allreduce must record exactly half the payload
    /// bytes of the FP64 one — every hop of the collective carries only
    /// payload, demoted uniformly.
    #[test]
    fn fp32_allreduce_records_exactly_half_fp64_payload_bytes() {
        let n = 4;
        let run = |wire: WirePrecision| {
            let (_, stats) = run_cluster(n, move |c| {
                let mut v = vec![c.rank() as f64 + 0.25; 257];
                c.allreduce_sum_f64(&mut v, wire).unwrap();
            });
            stats.snapshot()
        };
        let (b64, m64, fp64_64, fp32_64) = run(WirePrecision::Fp64);
        let (b32, m32, fp64_32, fp32_32) = run(WirePrecision::Fp32);
        // same hop count, half the bytes, and precision counters agree
        assert_eq!(m64, m32);
        assert_eq!(2 * b32, b64, "fp32 allreduce must move half the bytes");
        assert_eq!(fp64_64, b64);
        assert_eq!(fp32_64, 0);
        assert_eq!(fp32_32, b32);
        assert_eq!(fp64_32, 0);
        // 2*(n-1) hops of 257 scalars each
        assert_eq!(b64, (2 * (n as u64 - 1)) * 257 * 8);
    }

    /// Satellite: interleaved *distinct* tags flowing both directions, with
    /// each side receiving in a permuted order, so every receive but the
    /// first goes through the pending-queue path.
    #[test]
    fn interleaved_distinct_tags_both_directions() {
        let (results, _) = run_cluster(2, |c| {
            let peer = 1 - c.rank();
            let base = (c.rank() as f64 + 1.0) * 100.0;
            for (i, tag) in [11u64, 22, 33, 44].iter().enumerate() {
                c.send_f64(peer, *tag, &[base + i as f64], WirePrecision::Fp64)
                    .unwrap();
            }
            // harvest in an order disjoint from the send order
            let d = c.recv_f64(peer, 44, WirePrecision::Fp64).unwrap()[0];
            let b = c.recv_f64(peer, 22, WirePrecision::Fp64).unwrap()[0];
            let a = c.recv_f64(peer, 11, WirePrecision::Fp64).unwrap()[0];
            let cc = c.recv_f64(peer, 33, WirePrecision::Fp64).unwrap()[0];
            (a, b, cc, d)
        });
        let expect = |base: f64| (base, base + 1.0, base + 2.0, base + 3.0);
        assert_eq!(results[0], expect(200.0));
        assert_eq!(results[1], expect(100.0));
    }

    /// Repeated messages on the same `(src, tag)` must pop in send (FIFO)
    /// order even when an unrelated tag is buffered ahead of them.
    #[test]
    fn same_tag_messages_preserve_fifo_order() {
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 9, &[-1.0], WirePrecision::Fp64).unwrap(); // decoy tag
                for i in 0..4 {
                    c.send_f64(1, 5, &[i as f64], WirePrecision::Fp64).unwrap();
                }
                vec![]
            } else {
                let seq: Vec<f64> = (0..4)
                    .map(|_| c.recv_f64(0, 5, WirePrecision::Fp64).unwrap()[0])
                    .collect();
                let decoy = c.recv_f64(0, 9, WirePrecision::Fp64).unwrap()[0];
                assert_eq!(decoy, -1.0);
                seq
            }
        });
        assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0]);
    }

    /// isend/try_recv contract: `try_recv_f64` returns `None` before the
    /// message is posted and `Some` after, without ever blocking.
    #[test]
    fn isend_try_recv_roundtrip() {
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                // nothing posted yet on tag 77 from rank 1
                let early = c.try_recv_f64(1, 77, WirePrecision::Fp32).unwrap();
                assert!(early.is_none());
                c.barrier().unwrap(); // rank 1 posts its isend before this barrier
                loop {
                    if let Some(v) = c.try_recv_f64(1, 77, WirePrecision::Fp32).unwrap() {
                        return v[0];
                    }
                    std::hint::spin_loop();
                }
            } else {
                c.isend_f64(0, 77, &[6.5], WirePrecision::Fp32).unwrap();
                c.barrier().unwrap();
                6.5
            }
        });
        assert_eq!(results, vec![6.5, 6.5]);
    }

    /// A send and receive naming different wire precisions must not pair up:
    /// the precision is part of the wire tag.
    #[test]
    fn wire_precision_is_part_of_the_match() {
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 3, &[1.0], WirePrecision::Fp32).unwrap();
                c.send_f64(1, 3, &[2.0], WirePrecision::Fp64).unwrap();
                0.0
            } else {
                // ask for the FP64 message first: the FP32 one must not match
                let v64 = c.recv_f64(0, 3, WirePrecision::Fp64).unwrap()[0];
                let v32 = c.recv_f64(0, 3, WirePrecision::Fp32).unwrap()[0];
                10.0 * v64 + v32
            }
        });
        assert_eq!(results[1], 21.0);
    }

    /// `allgather_scalar` wire volume: (n-1) one-scalar gather hops plus
    /// (n-1) n-scalar broadcast hops, nothing more.
    #[test]
    fn allgather_scalar_moves_only_payload() {
        let n = 4u64;
        let (_, stats) = run_cluster(n as usize, |c| c.allgather_scalar(c.rank() as f64).unwrap());
        let (bytes, msgs, _, _) = stats.snapshot();
        assert_eq!(bytes, (n - 1) * 8 + (n - 1) * n * 8);
        assert_eq!(msgs, 2 * (n - 1));
    }

    // -----------------------------------------------------------------
    // Fault tolerance: deadlines, poisoning, and fault injection
    // -----------------------------------------------------------------

    /// A receive with no sender expires at its deadline with a typed
    /// timeout instead of blocking forever, and poisons the communicator.
    #[test]
    fn recv_times_out_instead_of_hanging() {
        let opts = ClusterOptions::with_timeout(Duration::from_millis(50));
        let (results, stats) = run_cluster_with(2, &opts, |c| {
            if c.rank() == 0 {
                let t0 = Instant::now();
                let err = c.recv_f64(1, 42, WirePrecision::Fp64).unwrap_err();
                let waited = t0.elapsed();
                assert!(
                    matches!(err, CommError::Timeout { src: 1, .. }),
                    "unexpected error {err:?}"
                );
                assert!(waited < Duration::from_secs(5), "waited {waited:?}");
                // poisoned: the next operation short-circuits with the
                // original error, without waiting again
                let t1 = Instant::now();
                let err2 = c.recv_f64(1, 43, WirePrecision::Fp64).unwrap_err();
                assert_eq!(err, err2);
                assert!(t1.elapsed() < Duration::from_millis(40));
                1.0
            } else {
                // rank 1 sends nothing and exits
                0.0
            }
        });
        assert_eq!(results, vec![1.0, 0.0]);
        assert!(stats.fault_snapshot().0 >= 1, "timeout not counted");
    }

    /// Messages stashed while scanning for another tag must survive a
    /// subsequent timeout: the error path never drops buffered packets.
    #[test]
    fn pending_messages_survive_the_timeout_error_path() {
        let opts = ClusterOptions::with_timeout(Duration::from_millis(50));
        let (results, _) = run_cluster_with(2, &opts, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 7, &[3.25], WirePrecision::Fp64).unwrap();
                c.barrier().unwrap();
                0.0
            } else {
                c.barrier().unwrap(); // tag-7 message has arrived by now
                                      // wait for a message that never comes; the tag-7 packet is
                                      // drained into the pending queue along the way
                let err = c.recv_f64(0, 9, WirePrecision::Fp64).unwrap_err();
                assert!(matches!(err, CommError::Timeout { .. }));
                // the stashed message is still deliverable after clearing
                c.clear_failure();
                c.recv_f64(0, 7, WirePrecision::Fp64).unwrap()[0]
            }
        });
        assert_eq!(results[1], 3.25);
    }

    /// try_recv on a disconnected channel: already-arrived packets are
    /// served from the stash before PeerGone is raised.
    #[test]
    fn try_recv_serves_stash_before_peer_gone() {
        let stats = Arc::new(CommStats::default());
        let (s0, r0) = unbounded();
        let (s1, r1) = unbounded();
        let mk = |rank: usize, receiver, senders: Vec<Sender<Packet>>| ThreadComm {
            rank,
            size: 2,
            senders,
            receiver,
            pending: VecDeque::new(),
            stats: Arc::clone(&stats),
            timeout: Duration::from_millis(50),
            faults: Arc::new(FaultPlan::default()),
            kill_hits: Vec::new(),
            epoch: 0,
            failed: None,
            sched: None,
        };
        // rank 1 holds no sender clone of rank 0's channel -> dropping
        // rank 1 disconnects rank 0's receiver entirely
        let mut c0 = mk(0, r0, vec![s0.clone(), s1.clone()]);
        let mut c1 = mk(1, r1, vec![s0, s1]);
        c1.send_f64(0, 5, &[1.5], WirePrecision::Fp64).unwrap();
        drop(c1);
        drop(c0.senders.remove(0)); // drop rank 0's own sender clone too
                                    // the in-flight message is still delivered...
        let got = c0.try_recv_f64(1, 5, WirePrecision::Fp64).unwrap();
        assert_eq!(got, Some(vec![1.5]));
        // ...and only then does the dead channel surface as PeerGone
        let err = c0.try_recv_f64(1, 5, WirePrecision::Fp64).unwrap_err();
        assert!(matches!(err, CommError::PeerGone { peer: 1 }));
        // blocking receive on the same dead channel: PeerGone, not a hang
        c0.clear_failure();
        let err = c0.recv_f64(1, 6, WirePrecision::Fp64).unwrap_err();
        assert!(matches!(err, CommError::PeerGone { peer: 1 }));
    }

    /// Epoch-gated kill: the victim dies exactly at `advance_epoch(K)`;
    /// the survivor's collective times out rather than deadlocking.
    #[test]
    fn epoch_kill_is_deterministic_and_survivor_times_out() {
        let mut opts = ClusterOptions::with_timeout(Duration::from_millis(80));
        opts.faults = Arc::new(FaultPlan::kill_at_epoch(1, 3));
        let (results, stats) = run_cluster_with(2, &opts, |c| {
            for epoch in 1..=5u64 {
                if let Err(e) = c.advance_epoch() {
                    assert!(matches!(e, CommError::Killed { rank: 1 }));
                    assert_eq!(epoch, 3, "killed at wrong epoch");
                    return format!("killed@{epoch}");
                }
                let mut v = vec![1.0];
                if let Err(e) = c.allreduce_sum_f64(&mut v, WirePrecision::Fp64) {
                    assert_eq!(c.rank(), 0, "only the survivor should time out");
                    assert!(matches!(e, CommError::Timeout { .. }), "{e:?}");
                    return format!("lost-peer@{epoch}");
                }
                assert_eq!(v[0], 2.0);
            }
            "completed".to_string()
        });
        assert_eq!(results, vec!["lost-peer@3", "killed@3"]);
        let (timeouts, kills, _) = stats.fault_snapshot();
        assert_eq!(kills, 1);
        assert!(timeouts >= 1);
    }

    /// Tag-band kill: the victim dies on its n-th collective send.
    #[test]
    fn tag_band_kill_fires_on_nth_matching_send() {
        let mut opts = ClusterOptions::with_timeout(Duration::from_millis(80));
        // rank 1 dies on its second send inside the collective tag band
        opts.faults = Arc::new(FaultPlan::kill_on_send(1, 0, COLLECTIVE_TAGS, 1));
        let (results, _) = run_cluster_with(2, &opts, |c| {
            let mut ok_rounds = 0;
            for _ in 0..4 {
                let mut v = vec![1.0];
                match c.allreduce_sum_f64(&mut v, WirePrecision::Fp64) {
                    Ok(()) => ok_rounds += 1,
                    Err(CommError::Killed { rank }) => {
                        assert_eq!(rank, 1);
                        break;
                    }
                    Err(_) => break,
                }
            }
            ok_rounds
        });
        // one full allreduce succeeds (rank 1's first collective send);
        // the second one kills rank 1 mid-collective and rank 0 times out
        assert_eq!(results[1], 1);
        assert!(results[0] <= 2);
    }

    /// Delay rule: a matching message is late but arrives (slow != dead)
    /// when the delay is below the timeout.
    #[test]
    fn delayed_message_still_arrives_within_timeout() {
        let mut opts = ClusterOptions::with_timeout(Duration::from_millis(500));
        opts.faults = Arc::new(FaultPlan::default().with_delay(
            Some(0),
            wire_tag_band(15),
            Duration::from_millis(40),
        ));
        let (results, stats) = run_cluster_with(2, &opts, |c| {
            if c.rank() == 0 {
                let t0 = Instant::now();
                c.send_f64(1, 15, &[2.5], WirePrecision::Fp64).unwrap();
                t0.elapsed().as_secs_f64()
            } else {
                let v = c.recv_f64(0, 15, WirePrecision::Fp64).unwrap();
                assert_eq!(v, vec![2.5]);
                0.0
            }
        });
        assert!(
            results[0] >= 0.035,
            "send was not delayed: {:.3}s",
            results[0]
        );
        assert_eq!(stats.fault_snapshot().2, 1, "delay not counted");
    }

    /// A cluster-wide cascade: one rank killed, every survivor of a
    /// 4-rank collective returns an error within a bounded time.
    #[test]
    fn all_survivors_fail_cleanly_after_one_kill() {
        let timeout = Duration::from_millis(100);
        let mut opts = ClusterOptions::with_timeout(timeout);
        opts.faults = Arc::new(FaultPlan::kill_at_epoch(2, 1));
        let t0 = Instant::now();
        let (results, _) = run_cluster_with(4, &opts, |c| {
            if c.advance_epoch().is_err() {
                return "killed";
            }
            let mut v = vec![c.rank() as f64];
            match c.allreduce_sum_f64(&mut v, WirePrecision::Fp64) {
                Ok(()) => "ok",
                Err(_) => "failed",
            }
        });
        let elapsed = t0.elapsed();
        assert_eq!(results[2], "killed");
        for r in [0usize, 1, 3] {
            assert_eq!(results[r], "failed", "rank {r} did not observe failure");
        }
        // bounded: root waits at most one deadline, non-roots one more
        assert!(
            elapsed < Duration::from_secs(5),
            "cascade took {elapsed:?} (timeout {timeout:?})"
        );
    }

    /// A full-group sub-communicator allreduce must reproduce the global
    /// allreduce bit-for-bit: same root, same member-order accumulation.
    #[test]
    fn full_group_allreduce_matches_global_allreduce_bitwise() {
        let (results, _) = run_cluster(4, |c| {
            let members: Vec<usize> = (0..c.size()).collect();
            let mut a = vec![(c.rank() as f64 + 1.0) * 0.1, 1.0 / 3.0];
            let mut b = a.clone();
            c.allreduce_sum_f64(&mut a, WirePrecision::Fp64).unwrap();
            c.group_allreduce_sum_f64(&members, &mut b, WirePrecision::Fp64)
                .unwrap();
            (a, b)
        });
        for (a, b) in results {
            assert_eq!(a[0].to_bits(), b[0].to_bits());
            assert_eq!(a[1].to_bits(), b[1].to_bits());
        }
    }

    /// Row groups then column groups of a 2x2 process grid: disjoint
    /// sub-groups share a tag band concurrently, and each axis sums only
    /// its own members.
    #[test]
    fn grid_row_and_column_group_allreduces() {
        let (results, _) = run_cluster(4, |c| {
            // 2x2 grid, dom-fastest: rank = band * 2 + dom
            let dom = c.rank() % 2;
            let band = c.rank() / 2;
            let row: Vec<usize> = vec![band * 2, band * 2 + 1]; // same band, both doms
            let col: Vec<usize> = vec![dom, dom + 2]; // same dom, both bands
            let mut v = vec![c.rank() as f64];
            c.group_allreduce_sum_f64(&row, &mut v, WirePrecision::Fp64)
                .unwrap();
            let mut w = vec![c.rank() as f64];
            c.group_allreduce_sum_f64(&col, &mut w, WirePrecision::Fp64)
                .unwrap();
            (v[0], w[0])
        });
        // rows: {0,1}->1, {2,3}->5; cols: {0,2}->2, {1,3}->4
        assert_eq!(
            results,
            vec![(1.0, 2.0), (1.0, 4.0), (5.0, 2.0), (5.0, 4.0)]
        );
    }

    /// Variable-length block allgather over a sub-group returns blocks in
    /// member order on every member.
    #[test]
    fn group_allgather_assembles_blocks_in_member_order() {
        let (results, _) = run_cluster(4, |c| {
            if c.rank() == 3 {
                return vec![]; // not a member; stays idle
            }
            let members = [0usize, 1, 2];
            let mine: Vec<f64> = (0..=c.rank()).map(|i| (c.rank() * 10 + i) as f64).collect();
            let blocks = c
                .group_allgather_f64(&members, &mine, WirePrecision::Fp64)
                .unwrap();
            blocks.into_iter().flatten().collect::<Vec<f64>>()
        });
        let expect = vec![0.0, 10.0, 11.0, 20.0, 21.0, 22.0];
        for (r, got) in results.iter().take(3).enumerate() {
            assert_eq!(*got, expect, "rank {r}");
        }
    }

    /// Satellite: audited byte accounting for the sub-group collectives —
    /// every hop carries only payload (plus the allgather's small length
    /// frame), and the totals are exact.
    #[test]
    fn group_collective_byte_accounting_is_exact() {
        let len = 10usize;
        let (_, stats) = run_cluster(4, move |c| {
            let dom = c.rank() % 2;
            let band = c.rank() / 2;
            let row = [band * 2, band * 2 + 1];
            let mut v = vec![1.0; len];
            c.group_allreduce_sum_f64(&row, &mut v, WirePrecision::Fp64)
                .unwrap();
            // band-axis assembly: columns gathered within each dom column
            let col = [dom, dom + 2];
            let _ = c
                .group_allgather_f64(&col, &v, WirePrecision::Fp64)
                .unwrap();
        });
        // allreduce per 2-member row: 1 contribution + 1 result = 2*len
        // doubles; two rows -> 4*len. allgather per 2-member col: 1 block
        // of len + 1 framed return of (1 + 2 + 2*len); two cols.
        let expect_f64 = 8 * (4 * len + 2 * (len + 3 + 2 * len)) as u64;
        let (bytes, msgs, f64b, f32b) = stats.snapshot();
        assert_eq!(f64b, expect_f64);
        assert_eq!(bytes, expect_f64);
        assert_eq!(msgs, 8);
        assert_eq!(f32b, 0);
    }

    /// FP32 wire on the group reduce demotes the contributions and result
    /// hops to exactly half the FP64 byte volume.
    #[test]
    fn group_allreduce_fp32_wire_halves_bytes() {
        let len = 64usize;
        let run = |wire: WirePrecision| {
            let (_, stats) = run_cluster(2, move |c| {
                let mut v = vec![0.5; len];
                c.group_allreduce_sum_f64(&[0, 1], &mut v, wire).unwrap();
            });
            stats.snapshot()
        };
        let (b64, _, f64b, _) = run(WirePrecision::Fp64);
        let (b32, _, _, f32b) = run(WirePrecision::Fp32);
        assert_eq!(b64, f64b);
        assert_eq!(b32, f32b);
        assert_eq!(b32 * 2, b64);
    }

    /// Out-of-order tag matching within a sub-group: a point-to-point
    /// message posted before the group collective must survive the
    /// collective's receive scanning (stashed, not dropped) and still be
    /// deliverable afterwards.
    #[test]
    fn out_of_order_tags_within_a_subgroup_are_buffered() {
        let (results, _) = run_cluster(3, |c| {
            let members = [0usize, 1, 2];
            if c.rank() == 1 {
                // arrives at the root before (or while) it collects the
                // group contributions on the collective band
                c.send_f64(0, 41, &[7.0], WirePrecision::Fp64).unwrap();
            }
            let mut v = vec![c.rank() as f64];
            c.group_allreduce_sum_f64(&members, &mut v, WirePrecision::Fp64)
                .unwrap();
            if c.rank() == 0 {
                let side = c.recv_f64(1, 41, WirePrecision::Fp64).unwrap();
                v[0] + side[0]
            } else {
                v[0]
            }
        });
        assert_eq!(results, vec![10.0, 3.0, 3.0]);
    }

    /// Satellite: one band-column rank dies mid-grid-collective and the
    /// whole 2x2 grid drains in bounded time — the row peers time out, the
    /// column peers of the timed-out ranks time out in turn.
    #[test]
    fn dead_band_column_rank_poisons_the_whole_grid_in_bounded_time() {
        let timeout = Duration::from_millis(100);
        let mut opts = ClusterOptions::with_timeout(timeout);
        // rank 3 dies on its first send in the group-reduce band
        opts.faults = Arc::new(FaultPlan::kill_on_send(
            3,
            0,
            GROUP_REDUCE_BAND.wire_range(),
            0,
        ));
        let t0 = Instant::now();
        let (results, _) = run_cluster_with(4, &opts, |c| {
            let dom = c.rank() % 2;
            let band = c.rank() / 2;
            let row = [band * 2, band * 2 + 1];
            let col = [dom, dom + 2];
            // iterate row + column reduces until the failure cascades in
            for _ in 0..8 {
                let mut v = vec![1.0];
                if c.group_allreduce_sum_f64(&row, &mut v, WirePrecision::Fp64)
                    .is_err()
                    || c.group_allreduce_sum_f64(&col, &mut v, WirePrecision::Fp64)
                        .is_err()
                {
                    return "failed";
                }
            }
            "ok"
        });
        let elapsed = t0.elapsed();
        for (r, out) in results.iter().enumerate() {
            assert_eq!(*out, "failed", "rank {r} never observed the dead rank");
        }
        assert!(
            elapsed < Duration::from_secs(5),
            "grid drain took {elapsed:?} (timeout {timeout:?})"
        );
    }

    /// Concurrent per-group broadcasts from distinct roots share the
    /// k-group band without cross-talk.
    #[test]
    fn concurrent_kgroup_broadcasts_do_not_cross_talk() {
        let (results, _) = run_cluster(4, |c| {
            let grp: [usize; 2] = if c.rank() < 2 { [0, 1] } else { [2, 3] };
            let mut v = vec![(grp[0] * 100) as f64];
            c.group_broadcast_f64(&grp, &mut v, WirePrecision::Fp64)
                .unwrap();
            v[0]
        });
        assert_eq!(results, vec![0.0, 0.0, 200.0, 200.0]);
    }

    /// The `sanitize` feature's message-leak detector and tag-band asserts.
    #[cfg(feature = "sanitize")]
    mod sanitizer {
        use super::super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn clean_collectives_leave_no_messages_in_flight() {
            // run_cluster_with itself asserts drainage at clean shutdown
            let (results, _) = run_cluster(4, |c| {
                c.barrier().unwrap();
                let mut v = vec![c.rank() as f64];
                c.allreduce_sum_f64(&mut v, WirePrecision::Fp64).unwrap();
                let all = c.allgather_scalar(c.rank() as f64).unwrap();
                (v[0], all.len())
            });
            assert_eq!(results, vec![(6.0, 4); 4]);
        }

        #[test]
        fn leaked_message_panics_at_clean_shutdown() {
            let leaked = catch_unwind(AssertUnwindSafe(|| {
                run_cluster(2, |c| {
                    if c.rank() == 0 {
                        // sent but never received by rank 1
                        c.send_f64(1, 9, &[1.0], WirePrecision::Fp64).unwrap();
                    }
                })
            }));
            let msg = match leaked {
                Ok(_) => panic!("sanitizer missed a leaked message"),
                Err(e) => *e.downcast::<String>().expect("panic payload"),
            };
            assert!(msg.contains("leaked message"), "unexpected panic: {msg}");
        }

        #[test]
        fn unregistered_collective_tag_panics() {
            let r = catch_unwind(AssertUnwindSafe(|| {
                run_cluster(2, |c| {
                    if c.rank() == 0 {
                        // collective-range tag outside every declared band;
                        // panics inside send_bytes before anything is sent,
                        // so rank 1 must not wait on a receive
                        let _ = c.send_bytes(1, (1 << 60) + 999_999, vec![]);
                    }
                })
            }));
            assert!(r.is_err(), "sanitizer accepted an unregistered tag");
        }
    }
}
