//! A real (threaded) message-passing runtime: the MPI stand-in.
//!
//! Ranks are OS threads connected by crossbeam channels. Point-to-point
//! messages and collectives move actual bytes, and every send records its
//! wire volume, so the paper's mixed-precision communication claims
//! (Sec. 5.4.2: FP32 on FE partition boundaries halves traffic while
//! retaining FP64 accuracy) are *testable* rather than asserted.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Precision used on the wire for floating-point payloads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WirePrecision {
    /// Full FP64 payloads.
    Fp64,
    /// Demote to FP32 on send, promote on receive (the paper's boundary-
    /// communication trick).
    Fp32,
}

impl WirePrecision {
    /// Bytes per scalar on the wire.
    pub fn bytes(self) -> usize {
        match self {
            WirePrecision::Fp64 => 8,
            WirePrecision::Fp32 => 4,
        }
    }
}

struct Packet {
    src: usize,
    tag: u64,
    data: Vec<u8>,
}

/// Shared byte/message counters for a cluster run.
///
/// Every hop of every primitive — point-to-point sends, barrier
/// control messages, and each leg of the collectives — passes through
/// [`ThreadComm::send_bytes`], so `bytes_sent` is the exact payload volume
/// that crossed the wire. Floating-point payloads are additionally broken
/// down by wire precision (`bytes_fp64` / `bytes_fp32`), which is what
/// makes the paper's "FP32 boundary exchange halves traffic" claim
/// (Sec. 5.4.2) directly measurable.
#[derive(Default)]
pub struct CommStats {
    /// Total payload bytes sent by all ranks (point-to-point + collectives).
    pub bytes_sent: AtomicU64,
    /// Total messages sent.
    pub messages: AtomicU64,
    /// Payload bytes sent as FP64 floating-point data.
    pub bytes_fp64: AtomicU64,
    /// Payload bytes sent as FP32 (demoted) floating-point data.
    pub bytes_fp32: AtomicU64,
}

impl CommStats {
    /// Snapshot of `(bytes_sent, messages, bytes_fp64, bytes_fp32)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.bytes_sent.load(Ordering::Relaxed),
            self.messages.load(Ordering::Relaxed),
            self.bytes_fp64.load(Ordering::Relaxed),
            self.bytes_fp32.load(Ordering::Relaxed),
        )
    }
}

/// One rank's endpoint in a threaded cluster.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    pending: VecDeque<Packet>,
    stats: Arc<CommStats>,
}

impl ThreadComm {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Shared traffic statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Send raw bytes to `dst` with a user `tag`.
    pub fn send_bytes(&self, dst: usize, tag: u64, data: Vec<u8>) {
        self.stats
            .bytes_sent
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.senders[dst]
            .send(Packet {
                src: self.rank,
                tag,
                data,
            })
            .expect("receiver dropped");
    }

    /// Pop the first buffered packet matching `(src, tag)`, preserving the
    /// arrival (FIFO) order of any same-`(src, tag)` messages behind it.
    fn take_pending(&mut self, src: usize, tag: u64) -> Option<Vec<u8>> {
        let pos = self
            .pending
            .iter()
            .position(|p| p.src == src && p.tag == tag)?;
        Some(self.pending.remove(pos).unwrap().data)
    }

    /// Blocking receive of a message from `src` with `tag` (out-of-order
    /// arrivals are buffered).
    pub fn recv_bytes(&mut self, src: usize, tag: u64) -> Vec<u8> {
        if let Some(data) = self.take_pending(src, tag) {
            return data;
        }
        loop {
            let p = self.receiver.recv().expect("all senders dropped");
            if p.src == src && p.tag == tag {
                return p.data;
            }
            self.pending.push_back(p);
        }
    }

    /// Nonblocking receive: drain everything that has already arrived into
    /// the pending queue and return the first match for `(src, tag)` if one
    /// is there, `None` otherwise. The counterpart of [`Self::isend_f64`]
    /// for comm/compute overlap — poll between interior-compute chunks.
    pub fn try_recv_bytes(&mut self, src: usize, tag: u64) -> Option<Vec<u8>> {
        while let Ok(p) = self.receiver.try_recv() {
            self.pending.push_back(p);
        }
        self.take_pending(src, tag)
    }

    fn wire_tag(tag: u64, wire: WirePrecision) -> u64 {
        // the wire format travels in the low bit of the tag space so a
        // receive must name the same precision the send used
        tag << 1 | u64::from(wire == WirePrecision::Fp32)
    }

    fn decode_f64(bytes: &[u8], wire: WirePrecision) -> Vec<f64> {
        match wire {
            WirePrecision::Fp64 => bytes
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
            WirePrecision::Fp32 => bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()) as f64)
                .collect(),
        }
    }

    /// Send an `f64` slice, demoting to the requested wire precision.
    pub fn send_f64(&self, dst: usize, tag: u64, data: &[f64], wire: WirePrecision) {
        let bytes = match wire {
            WirePrecision::Fp64 => {
                let mut b = Vec::with_capacity(data.len() * 8);
                for v in data {
                    b.extend_from_slice(&v.to_le_bytes());
                }
                b
            }
            WirePrecision::Fp32 => {
                let mut b = Vec::with_capacity(data.len() * 4);
                for v in data {
                    b.extend_from_slice(&(*v as f32).to_le_bytes());
                }
                b
            }
        };
        let counter = match wire {
            WirePrecision::Fp64 => &self.stats.bytes_fp64,
            WirePrecision::Fp32 => &self.stats.bytes_fp32,
        };
        counter.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.send_bytes(dst, Self::wire_tag(tag, wire), bytes);
    }

    /// Nonblocking (immediately returning) send of an `f64` slice. The
    /// channel transport is buffered, so posting the send never waits on the
    /// receiver: issue boundary `isend`s first, overlap interior compute,
    /// then harvest with [`Self::try_recv_f64`] / [`Self::recv_f64`].
    pub fn isend_f64(&self, dst: usize, tag: u64, data: &[f64], wire: WirePrecision) {
        self.send_f64(dst, tag, data, wire);
    }

    /// Receive an `f64` slice sent with [`Self::send_f64`] (promoting FP32
    /// payloads back to FP64).
    pub fn recv_f64(&mut self, src: usize, tag: u64, wire: WirePrecision) -> Vec<f64> {
        let bytes = self.recv_bytes(src, Self::wire_tag(tag, wire));
        Self::decode_f64(&bytes, wire)
    }

    /// Nonblocking variant of [`Self::recv_f64`]: `None` if the message has
    /// not arrived yet.
    pub fn try_recv_f64(&mut self, src: usize, tag: u64, wire: WirePrecision) -> Option<Vec<f64>> {
        self.try_recv_bytes(src, Self::wire_tag(tag, wire))
            .map(|b| Self::decode_f64(&b, wire))
    }

    /// Barrier across all ranks (dissemination via rank 0).
    pub fn barrier(&mut self) {
        const TAG: u64 = (1 << 60) + 1;
        if self.rank == 0 {
            for r in 1..self.size {
                let _ = self.recv_bytes(r, TAG);
            }
            for r in 1..self.size {
                self.send_bytes(r, TAG, vec![]);
            }
        } else {
            self.send_bytes(0, TAG, vec![]);
            let _ = self.recv_bytes(0, TAG);
        }
    }

    /// In-place allreduce(sum) over `f64` buffers, with selectable wire
    /// precision (gather-to-root + broadcast; the accumulation itself is
    /// always FP64, matching the paper's "FP32 wire, FP64 math" scheme).
    pub fn allreduce_sum_f64(&mut self, data: &mut [f64], wire: WirePrecision) {
        const TAG: u64 = (1 << 60) + 1000;
        if self.size == 1 {
            return;
        }
        if self.rank == 0 {
            let mut acc = data.to_vec();
            for r in 1..self.size {
                let contrib = self.recv_f64(r, TAG + r as u64, wire);
                for (a, &c) in acc.iter_mut().zip(contrib.iter()) {
                    *a += c;
                }
            }
            for r in 1..self.size {
                self.send_f64(r, TAG, &acc, wire);
            }
            data.copy_from_slice(&acc);
        } else {
            self.send_f64(0, TAG + self.rank as u64, data, wire);
            let red = self.recv_f64(0, TAG, wire);
            data.copy_from_slice(&red);
        }
    }

    /// Broadcast from rank 0, with selectable wire precision (rank 0's data
    /// is left untouched; FP32 wire rounds what the other ranks receive).
    /// Each of the `size - 1` hops carries the full payload once.
    pub fn broadcast_f64(&mut self, data: &mut [f64], wire: WirePrecision) {
        const TAG: u64 = (1 << 60) + 5000;
        if self.size == 1 {
            return;
        }
        if self.rank == 0 {
            for r in 1..self.size {
                self.send_f64(r, TAG, data, wire);
            }
        } else {
            let v = self.recv_f64(0, TAG, wire);
            data.copy_from_slice(&v);
        }
    }

    /// Gather per-rank scalars at every rank (small allgather):
    /// gather-to-root then broadcast, so every hop moves only payload —
    /// `size - 1` one-scalar hops in, `size - 1` full-vector hops out
    /// (the former one-hot-allreduce implementation padded every hop to
    /// `size` scalars, inflating the recorded wire volume).
    pub fn allgather_scalar(&mut self, v: f64) -> Vec<f64> {
        const TAG: u64 = (1 << 60) + 7000;
        let mut buf = vec![0.0; self.size];
        buf[self.rank] = v;
        if self.size == 1 {
            return buf;
        }
        if self.rank == 0 {
            // r is the peer rank, not just an index into buf
            #[allow(clippy::needless_range_loop)]
            for r in 1..self.size {
                let got = self.recv_f64(r, TAG + r as u64, WirePrecision::Fp64);
                buf[r] = got[0];
            }
        } else {
            self.send_f64(0, TAG + self.rank as u64, &[v], WirePrecision::Fp64);
        }
        self.broadcast_f64(&mut buf, WirePrecision::Fp64);
        buf
    }
}

/// Run `f` on `n` ranks (threads) and collect the per-rank results in rank
/// order. Returns the results and the shared traffic statistics.
pub fn run_cluster<T, F>(n: usize, f: F) -> (Vec<T>, Arc<CommStats>)
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Send + Sync,
{
    assert!(n >= 1);
    let stats = Arc::new(CommStats::default());
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let mut comms: Vec<ThreadComm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| ThreadComm {
            rank,
            size: n,
            senders: senders.clone(),
            receiver,
            pending: VecDeque::new(),
            stats: Arc::clone(&stats),
        })
        .collect();
    drop(senders);

    let results: Vec<T> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms.iter_mut().map(|c| scope.spawn(|| f(c))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_point_to_point() {
        let (results, _) = run_cluster(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send_f64(next, 7, &[c.rank() as f64], WirePrecision::Fp64);
            let got = c.recv_f64(prev, 7, WirePrecision::Fp64);
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let (results, _) = run_cluster(5, |c| {
            let mut v = vec![c.rank() as f64, 1.0];
            c.allreduce_sum_f64(&mut v, WirePrecision::Fp64);
            v
        });
        for r in results {
            assert_eq!(r, vec![10.0, 5.0]);
        }
    }

    #[test]
    fn fp32_wire_halves_traffic() {
        let payload: Vec<f64> = (0..1000).map(|i| i as f64 * 0.001).collect();
        let (_, stats64) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 1, &payload, WirePrecision::Fp64);
            } else {
                let _ = c.recv_f64(0, 1, WirePrecision::Fp64);
            }
        });
        let (_, stats32) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 1, &payload, WirePrecision::Fp32);
            } else {
                let _ = c.recv_f64(0, 1, WirePrecision::Fp32);
            }
        });
        let b64 = stats64.bytes_sent.load(Ordering::Relaxed);
        let b32 = stats32.bytes_sent.load(Ordering::Relaxed);
        assert_eq!(b64, 8000);
        assert_eq!(b32, 4000);
    }

    #[test]
    fn fp32_wire_retains_small_relative_error() {
        let payload: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 2, &payload, WirePrecision::Fp32);
                vec![]
            } else {
                c.recv_f64(0, 2, WirePrecision::Fp32)
            }
        });
        let got = &results[1];
        for (a, b) in payload.iter().zip(got.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn allreduce_fp32_wire_accumulates_in_fp64() {
        // each rank contributes 1e-3; with 8 ranks the FP64 accumulation
        // keeps full precision even if each wire hop rounds to FP32
        let (results, _) = run_cluster(8, |c| {
            let mut v = vec![1e-3];
            c.allreduce_sum_f64(&mut v, WirePrecision::Fp32);
            v[0]
        });
        for r in results {
            assert!((r - 8e-3).abs() < 1e-8);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::AtomicUsize;
        let phase1 = Arc::new(AtomicUsize::new(0));
        let p1 = Arc::clone(&phase1);
        let (results, _) = run_cluster(4, move |c| {
            p1.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // after the barrier every rank must observe all increments
            p1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }

    #[test]
    fn allgather_scalar_collects_all() {
        let (results, _) = run_cluster(3, |c| c.allgather_scalar((c.rank() * 10) as f64));
        for r in results {
            assert_eq!(r, vec![0.0, 10.0, 20.0]);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 100, &[1.0], WirePrecision::Fp64);
                c.send_f64(1, 200, &[2.0], WirePrecision::Fp64);
                0.0
            } else {
                // receive in reverse order
                let b = c.recv_f64(0, 200, WirePrecision::Fp64)[0];
                let a = c.recv_f64(0, 100, WirePrecision::Fp64)[0];
                a + 10.0 * b
            }
        });
        assert_eq!(results[1], 21.0);
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let (results, _) = run_cluster(1, |c| {
            let mut v = vec![3.5];
            c.allreduce_sum_f64(&mut v, WirePrecision::Fp64);
            c.barrier();
            c.broadcast_f64(&mut v, WirePrecision::Fp64);
            v[0]
        });
        assert_eq!(results[0], 3.5);
    }

    /// Satellite: the FP32 allreduce must record exactly half the payload
    /// bytes of the FP64 one — every hop of the collective carries only
    /// payload, demoted uniformly.
    #[test]
    fn fp32_allreduce_records_exactly_half_fp64_payload_bytes() {
        let n = 4;
        let run = |wire: WirePrecision| {
            let (_, stats) = run_cluster(n, move |c| {
                let mut v = vec![c.rank() as f64 + 0.25; 257];
                c.allreduce_sum_f64(&mut v, wire);
            });
            stats.snapshot()
        };
        let (b64, m64, fp64_64, fp32_64) = run(WirePrecision::Fp64);
        let (b32, m32, fp64_32, fp32_32) = run(WirePrecision::Fp32);
        // same hop count, half the bytes, and precision counters agree
        assert_eq!(m64, m32);
        assert_eq!(2 * b32, b64, "fp32 allreduce must move half the bytes");
        assert_eq!(fp64_64, b64);
        assert_eq!(fp32_64, 0);
        assert_eq!(fp32_32, b32);
        assert_eq!(fp64_32, 0);
        // 2*(n-1) hops of 257 scalars each
        assert_eq!(b64, (2 * (n as u64 - 1)) * 257 * 8);
    }

    /// Satellite: interleaved *distinct* tags flowing both directions, with
    /// each side receiving in a permuted order, so every receive but the
    /// first goes through the pending-queue path.
    #[test]
    fn interleaved_distinct_tags_both_directions() {
        let (results, _) = run_cluster(2, |c| {
            let peer = 1 - c.rank();
            let base = (c.rank() as f64 + 1.0) * 100.0;
            for (i, tag) in [11u64, 22, 33, 44].iter().enumerate() {
                c.send_f64(peer, *tag, &[base + i as f64], WirePrecision::Fp64);
            }
            // harvest in an order disjoint from the send order
            let d = c.recv_f64(peer, 44, WirePrecision::Fp64)[0];
            let b = c.recv_f64(peer, 22, WirePrecision::Fp64)[0];
            let a = c.recv_f64(peer, 11, WirePrecision::Fp64)[0];
            let cc = c.recv_f64(peer, 33, WirePrecision::Fp64)[0];
            (a, b, cc, d)
        });
        let expect = |base: f64| (base, base + 1.0, base + 2.0, base + 3.0);
        assert_eq!(results[0], expect(200.0));
        assert_eq!(results[1], expect(100.0));
    }

    /// Repeated messages on the same `(src, tag)` must pop in send (FIFO)
    /// order even when an unrelated tag is buffered ahead of them.
    #[test]
    fn same_tag_messages_preserve_fifo_order() {
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 9, &[-1.0], WirePrecision::Fp64); // decoy tag
                for i in 0..4 {
                    c.send_f64(1, 5, &[i as f64], WirePrecision::Fp64);
                }
                vec![]
            } else {
                let seq: Vec<f64> = (0..4)
                    .map(|_| c.recv_f64(0, 5, WirePrecision::Fp64)[0])
                    .collect();
                let decoy = c.recv_f64(0, 9, WirePrecision::Fp64)[0];
                assert_eq!(decoy, -1.0);
                seq
            }
        });
        assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0]);
    }

    /// isend/try_recv contract: `try_recv_f64` returns `None` before the
    /// message is posted and `Some` after, without ever blocking.
    #[test]
    fn isend_try_recv_roundtrip() {
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                // nothing posted yet on tag 77 from rank 1
                let early = c.try_recv_f64(1, 77, WirePrecision::Fp32);
                assert!(early.is_none());
                c.barrier(); // rank 1 posts its isend before this barrier
                loop {
                    if let Some(v) = c.try_recv_f64(1, 77, WirePrecision::Fp32) {
                        return v[0];
                    }
                    std::hint::spin_loop();
                }
            } else {
                c.isend_f64(0, 77, &[6.5], WirePrecision::Fp32);
                c.barrier();
                6.5
            }
        });
        assert_eq!(results, vec![6.5, 6.5]);
    }

    /// A send and receive naming different wire precisions must not pair up:
    /// the precision is part of the wire tag.
    #[test]
    fn wire_precision_is_part_of_the_match() {
        let (results, _) = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 3, &[1.0], WirePrecision::Fp32);
                c.send_f64(1, 3, &[2.0], WirePrecision::Fp64);
                0.0
            } else {
                // ask for the FP64 message first: the FP32 one must not match
                let v64 = c.recv_f64(0, 3, WirePrecision::Fp64)[0];
                let v32 = c.recv_f64(0, 3, WirePrecision::Fp32)[0];
                10.0 * v64 + v32
            }
        });
        assert_eq!(results[1], 21.0);
    }

    /// `allgather_scalar` wire volume: (n-1) one-scalar gather hops plus
    /// (n-1) n-scalar broadcast hops, nothing more.
    #[test]
    fn allgather_scalar_moves_only_payload() {
        let n = 4u64;
        let (_, stats) = run_cluster(n as usize, |c| c.allgather_scalar(c.rank() as f64));
        let (bytes, msgs, _, _) = stats.snapshot();
        assert_eq!(bytes, (n - 1) * 8 + (n - 1) * n * 8);
        assert_eq!(msgs, 2 * (n - 1));
    }
}
