//! Regression: the swap-based (allocation-free) buffer rotation inside
//! [`lanczos_bounds`] must be *bit-identical* to the seed's clone-based
//! rotation — same random start, same apply sequence, same floating-point
//! operations in the same order, so the returned `(theta_min, upper_bound)`
//! pair matches exactly, not just to a tolerance.

use dft_core::chebyshev::lanczos_bounds;
use dft_core::hamiltonian::KsHamiltonian;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::FeSpace;
use dft_linalg::blas1;
use dft_linalg::eig::eigh;
use dft_linalg::iterative::LinearOperator;
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Real, Scalar, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The seed implementation: identical arithmetic to `lanczos_bounds`, but
/// each iteration clones `v` into `v_prev` and builds the next `v` from `w`
/// by copy — the exact pre-optimization data flow.
fn lanczos_bounds_clone_reference<T: Scalar>(
    op: &dyn LinearOperator<T>,
    k: usize,
    seed: u64,
) -> (f64, f64) {
    let n = op.dim();
    let k = k.min(n).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = Matrix::<T>::zeros(n, 1);
    for x in v.col_mut(0) {
        *x = T::from_f64(rng.gen::<f64>() - 0.5);
    }
    let nrm = blas1::nrm2(v.col(0)).to_f64();
    for x in v.col_mut(0) {
        *x = x.scale(T::Re::from_f64(1.0 / nrm));
    }
    let mut v_prev = Matrix::<T>::zeros(n, 1);
    let mut alphas = Vec::with_capacity(k);
    let mut betas = Vec::with_capacity(k);
    let mut beta = 0.0f64;
    let mut w = Matrix::<T>::zeros(n, 1);
    for _ in 0..k {
        op.apply(&v, &mut w);
        let alpha = blas1::dot(v.col(0), w.col(0)).re().to_f64();
        alphas.push(alpha);
        let ar = T::Re::from_f64(alpha);
        let br = T::Re::from_f64(beta);
        {
            let vc = v.col(0);
            let pc = v_prev.col(0);
            for ((wv, &vv), &pv) in w.col_mut(0).iter_mut().zip(vc.iter()).zip(pc.iter()) {
                *wv = *wv - vv.scale(ar) - pv.scale(br);
            }
        }
        beta = blas1::nrm2(w.col(0)).to_f64();
        betas.push(beta);
        if beta < 1e-12 {
            break;
        }
        v_prev = v.clone();
        v = w.clone();
        let inv = T::Re::from_f64(1.0 / beta);
        for x in v.col_mut(0) {
            *x = x.scale(inv);
        }
    }
    let m = alphas.len();
    let mut tri = Matrix::<f64>::zeros(m, m);
    for i in 0..m {
        tri[(i, i)] = alphas[i];
        if i + 1 < m {
            tri[(i, i + 1)] = betas[i];
            tri[(i + 1, i)] = betas[i];
        }
    }
    let e = eigh(&tri).expect("tridiagonal eigensolve");
    (e.eigenvalues[0], e.eigenvalues[m - 1] + betas[m - 1].abs())
}

fn space() -> FeSpace {
    FeSpace::new(Mesh3d::cube(2, 6.0, 3))
}

#[test]
fn swap_rotation_bit_identical_to_clone_reference_real() {
    let s = space();
    let v: Vec<f64> = (0..s.nnodes())
        .map(|n| (s.node_coord(n)[0] * 0.3).sin() - 0.1)
        .collect();
    let h = KsHamiltonian::<f64>::new(&s, &v, [1.0; 3]);
    for (k, seed) in [(6, 0u64), (12, 3), (20, 42)] {
        let (a, b) = lanczos_bounds(&h, k, seed);
        let (ar, br) = lanczos_bounds_clone_reference(&h, k, seed);
        assert_eq!(a.to_bits(), ar.to_bits(), "theta_min differs (k={k})");
        assert_eq!(b.to_bits(), br.to_bits(), "upper bound differs (k={k})");
    }
}

#[test]
fn swap_rotation_bit_identical_to_clone_reference_complex() {
    let s = FeSpace::new(Mesh3d::periodic_cube(2, 5.0, 2));
    let v: Vec<f64> = (0..s.nnodes())
        .map(|n| (s.node_coord(n)[1] * 0.5).cos())
        .collect();
    let phases = [C64::cis(0.4), C64::cis(-0.9), C64::ONE];
    let h = KsHamiltonian::<C64>::new(&s, &v, phases);
    let (a, b) = lanczos_bounds(&h, 10, 7);
    let (ar, br) = lanczos_bounds_clone_reference(&h, 10, 7);
    assert_eq!(a.to_bits(), ar.to_bits());
    assert_eq!(b.to_bits(), br.to_bits());
}

/// Sanity companion: the bounds actually bracket the spectrum of a small
/// dense Hamiltonian (so the bit-identity above isn't vacuous).
#[test]
fn bounds_bracket_dense_spectrum() {
    let s = space();
    let v: Vec<f64> = vec![0.5; s.nnodes()];
    let h = KsHamiltonian::<f64>::new(&s, &v, [1.0; 3]);
    let n = h.dim();
    let mut dense = Matrix::<f64>::zeros(n, n);
    let mut e = Matrix::<f64>::zeros(n, 1);
    let mut he = Matrix::<f64>::zeros(n, 1);
    for j in 0..n {
        e.col_mut(0).fill(0.0);
        e[(j, 0)] = 1.0;
        h.apply(&e, &mut he);
        for i in 0..n {
            dense[(i, j)] = he[(i, 0)];
        }
    }
    let eig = eigh(&dense).expect("dense eigensolve");
    let (tmin, ub) = lanczos_bounds(&h, 30, 5);
    let lo = eig.eigenvalues[0];
    let hi = eig.eigenvalues[n - 1];
    assert!(ub >= hi - 1e-8, "upper bound {ub} < lambda_max {hi}");
    assert!(tmin >= lo - 1e-6, "theta_min {tmin} below lambda_min {lo}");
}
