//! Property-based tests of the Kohn-Sham solver invariants.

use dft_core::occupation::fermi_occupations;
use dft_core::xc::{Lda, Pbe, SyntheticTruth, XcFunctional};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn occupations_conserve_electrons(
        evals in proptest::collection::vec(-3.0..3.0f64, 6..20),
        frac in 0.1..0.9f64,
        kt in 0.001..0.1f64,
    ) {
        let mut e = evals.clone();
        e.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n_el = (2.0 * e.len() as f64 * frac).max(1.0).floor();
        let r = fermi_occupations(&[e.clone()], &[1.0], n_el, kt);
        let total: f64 = r.occupations[0].iter().sum();
        prop_assert!((total - n_el).abs() < 1e-6);
        // occupations within [0, 2] and monotone non-increasing in energy
        for w in r.occupations[0].windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &f in &r.occupations[0] {
            prop_assert!((-1e-12..=2.0 + 1e-12).contains(&f));
        }
        prop_assert!(r.entropy >= -1e-12);
    }

    #[test]
    fn lda_potential_is_energy_derivative(rho in 0.01..5.0f64) {
        let h = rho * 1e-6;
        let p = Lda.eval_point(rho, 0.0);
        let fd = (Lda.eval_point(rho + h, 0.0).e - Lda.eval_point(rho - h, 0.0).e) / (2.0 * h);
        prop_assert!((p.de_drho - fd).abs() < 1e-4 * fd.abs().max(1e-8));
    }

    #[test]
    fn gga_energy_density_negative_and_monotone_gradients(
        rho in 0.01..3.0f64,
        g in 0.0..3.0f64,
    ) {
        for f in [&Pbe as &dyn XcFunctional, &SyntheticTruth] {
            let p = f.eval_point(rho, g);
            prop_assert!(p.e < 0.0, "XC energy density must be negative");
            prop_assert!(p.e.is_finite() && p.de_drho.is_finite() && p.de_dgrad.is_finite());
            // enhancement: gradients only make exchange more negative
            let p0 = f.eval_point(rho, 0.0);
            prop_assert!(p.e <= p0.e + 1e-3 * p0.e.abs());
        }
    }

    #[test]
    fn xc_ladder_distinct_for_inhomogeneous_density(rho in 0.05..2.0f64, g in 0.5..2.5f64) {
        let lda = Lda.eval_point(rho, g).e;
        let pbe = Pbe.eval_point(rho, g).e;
        let tru = SyntheticTruth.eval_point(rho, g).e;
        prop_assert!((lda - pbe).abs() > 1e-8);
        prop_assert!((pbe - tru).abs() > 1e-9);
    }
}

#[test]
fn fermi_occupations_multi_kpoint_weighting() {
    // unequal weights: occupancy sum must respect them exactly
    let evals = vec![vec![-1.0, 0.0, 1.0], vec![-0.8, 0.1, 0.9]];
    let r = fermi_occupations(&evals, &[0.25, 0.75], 3.0, 0.05);
    let total: f64 = r
        .occupations
        .iter()
        .zip(&[0.25, 0.75])
        .map(|(o, &w)| -> f64 { w * o.iter().sum::<f64>() })
        .sum();
    assert!((total - 3.0).abs() < 1e-8);
}
