//! The self-consistent field driver (the paper's Eq. 1 loop) and the total
//! energy assembly.
//!
//! One SCF iteration:
//!
//! 1. electrostatics — **one** FE Poisson solve for the potential of
//!    `rho_ion - rho_e` (Gaussian-smeared nuclei make `v_N` and `v_H` a
//!    single neutral solve, valid for isolated and periodic systems);
//! 2. exchange-correlation — any [`crate::xc::XcFunctional`] (LDA, PBE,
//!    MLXC, hidden truth);
//! 3. ChFES per k-point (complex Bloch path via phases);
//! 4. Fermi-Dirac occupations with a common chemical potential;
//! 5. density build, Anderson mixing, convergence check on the density
//!    residual.
//!
//! The total (free) energy uses the band-energy identity
//! `T_s = sum f eps - integral rho_out v_eff_in` (exact for Ritz pairs of
//! the discrete Hamiltonian), Gaussian-nucleus electrostatics with analytic
//! self-energy and short-ranged ion-ion corrections, and the smearing
//! entropy.

use crate::chebyshev::{chfes_profiled, lanczos_bounds, random_subspace, ChfesOptions};
use crate::hamiltonian::KsHamiltonian;
use crate::mixing::AndersonMixer;
use crate::occupation::fermi_occupations;
use crate::system::AtomicSystem;
use crate::xc::{evaluate_xc, XcFunctional};
use dft_fem::field::NodalField;
use dft_fem::mesh::BoundaryCondition;
use dft_fem::poisson::{solve_poisson, PoissonBc};
use dft_fem::space::FeSpace;
use dft_hpc::profile::{Phase, PhaseScope, Profile, ScfProfile};
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Real, Scalar, C64};

/// One Brillouin-zone sampling point (fractional coordinates along each
/// axis; only periodic axes matter) with its weight.
#[derive(Clone, Copy, Debug)]
pub struct KPoint {
    /// Fractional k along each axis (in `[-1/2, 1/2]`).
    pub frac: [f64; 3],
    /// Quadrature weight (weights must sum to 1 across the set).
    pub weight: f64,
}

impl KPoint {
    /// The Γ point with unit weight.
    pub fn gamma() -> Self {
        Self {
            frac: [0.0; 3],
            weight: 1.0,
        }
    }
    /// True if this is exactly Γ.
    pub fn is_gamma(&self) -> bool {
        // dftlint:allow(L004, reason="exact Gamma-point sentinel: frac is set to literal 0.0, never computed")
        self.frac.iter().all(|&f| f == 0.0)
    }
}

/// SCF configuration.
#[derive(Clone, Debug)]
pub struct ScfConfig {
    /// Number of Kohn-Sham states per k-point.
    pub n_states: usize,
    /// Fermi-Dirac smearing temperature (Ha).
    pub kt: f64,
    /// Convergence tolerance on the density residual
    /// `||rho_out - rho_in||_L2 / N_e`.
    pub tol: f64,
    /// Maximum SCF iterations.
    pub max_iter: usize,
    /// Anderson mixing fraction.
    pub mixing_alpha: f64,
    /// Anderson history depth.
    pub anderson_depth: usize,
    /// Chebyshev filter degree per ChFES cycle.
    pub cheb_degree: usize,
    /// Extra ChFES cycles in the first SCF iteration (the paper's
    /// "multiple passes of Chebyshev filtering in the initial SCF step").
    pub first_iter_cf_passes: usize,
    /// Filter wavefunction block size `B_f`.
    pub block_size: usize,
    /// Mixed-precision CholGS / RR (Sec. 5.4.2).
    pub mixed_precision: bool,
    /// Relative tolerance of the Poisson CG solves.
    pub poisson_tol: f64,
    /// RNG seed for the initial subspace.
    pub seed: u64,
    /// Print per-iteration diagnostics.
    pub verbose: bool,
    /// Collect the per-phase Table-3 profile of the SCF loop into
    /// [`ScfResult::profile`]. Off by default; when off the solver path
    /// carries no measurable instrumentation overhead.
    pub profile: bool,
    /// Write an SCF restart snapshot every `checkpoint_every` iterations
    /// (0 = never). Consumed by the distributed driver; the serial solver
    /// ignores it.
    pub checkpoint_every: usize,
}

impl Default for ScfConfig {
    fn default() -> Self {
        Self {
            n_states: 8,
            kt: 0.01,
            tol: 1e-6,
            max_iter: 40,
            mixing_alpha: 0.3,
            anderson_depth: 6,
            cheb_degree: 40,
            first_iter_cf_passes: 4,
            block_size: 64,
            mixed_precision: false,
            poisson_tol: 1e-10,
            seed: 42,
            verbose: false,
            profile: false,
            checkpoint_every: 0,
        }
    }
}

/// Decomposed total energy (Hartree).
#[derive(Clone, Copy, Debug, Default)]
pub struct TotalEnergy {
    /// Band (eigenvalue) energy `sum_k w_k sum_i f_i eps_i`.
    pub band: f64,
    /// Kohn-Sham kinetic energy `T_s`.
    pub kinetic: f64,
    /// Total electrostatic energy (electron-electron + electron-ion +
    /// ion-ion), Gaussian-corrected.
    pub electrostatic: f64,
    /// Exchange-correlation energy.
    pub xc: f64,
    /// Smearing entropy contribution `-kT S`.
    pub entropy_term: f64,
    /// Internal energy `T_s + E_es + E_xc`.
    pub total: f64,
    /// Free energy `total + entropy_term` (the variational quantity).
    pub free_energy: f64,
}

/// SCF outcome.
pub struct ScfResult {
    /// Energy decomposition.
    pub energy: TotalEnergy,
    /// Eigenvalues per k-point (ascending).
    pub eigenvalues: Vec<Vec<f64>>,
    /// Occupations per k-point (0..2 with spin degeneracy).
    pub occupations: Vec<Vec<f64>>,
    /// Chemical potential.
    pub mu: f64,
    /// Converged electron density (nodal).
    pub density: NodalField,
    /// Final XC potential (nodal).
    pub vxc: Vec<f64>,
    /// Final effective potential (nodal).
    pub v_eff: Vec<f64>,
    /// SCF iterations performed.
    pub iterations: usize,
    /// Whether the density residual met the tolerance.
    pub converged: bool,
    /// Residual per iteration.
    pub residual_history: Vec<f64>,
    /// Measured per-phase Table-3 breakdown of the SCF loop
    /// (`Some` iff [`ScfConfig::profile`] was set).
    pub profile: Option<ScfProfile>,
}

/// Analytic FLOP count of a CG Poisson solve: per iteration one stiffness
/// apply plus the BLAS-1 work (two dots, three axpys ≈ 10 flops per DoF).
fn poisson_flops(space: &FeSpace, cg_iterations: usize) -> u64 {
    cg_iterations as u64 * (space.stiffness_apply_flops::<f64>(1) + 10 * space.ndofs() as u64)
}

/// Main-memory traffic of a CG Poisson solve: per iteration the five
/// working vectors streamed once each way.
fn poisson_bytes(space: &FeSpace, cg_iterations: usize) -> u64 {
    cg_iterations as u64 * 10 * space.ndofs() as u64 * std::mem::size_of::<f64>() as u64
}

fn poisson_bc_of(space: &FeSpace) -> PoissonBc<'static> {
    let all_periodic = space
        .mesh
        .axes
        .iter()
        .all(|a| a.bc() == BoundaryCondition::Periodic);
    if all_periodic {
        PoissonBc::Periodic
    } else {
        // neutral systems: monopole-free far field
        PoissonBc::Dirichlet(&|_| 0.0)
    }
}

/// Run the SCF on `space` for `system` with functional `xc` at the given
/// k-points. Dispatches to the real (Γ-only) or complex (Bloch) scalar
/// path.
pub fn scf(
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &dyn XcFunctional,
    cfg: &ScfConfig,
    kpts: &[KPoint],
) -> ScfResult {
    // Adopt the persisted GEMM blocking profile (if one was autotuned for
    // this machine) before the kernel-heavy ChFES loop starts.
    let _ = dft_linalg::autotune::load_from_disk();
    let gamma_only = kpts.len() == 1 && kpts[0].is_gamma();
    if gamma_only {
        scf_impl::<f64>(space, system, xc, cfg, kpts)
    } else {
        scf_impl::<C64>(space, system, xc, cfg, kpts)
    }
}

/// Force the complex-scalar code path regardless of the k-point set
/// (used by tests to validate the Bloch machinery at Γ).
pub fn scf_complex(
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &dyn XcFunctional,
    cfg: &ScfConfig,
    kpts: &[KPoint],
) -> ScfResult {
    scf_impl::<C64>(space, system, xc, cfg, kpts)
}

use private_scalar_ext::ScalarExt;
mod private_scalar_ext {
    use super::*;
    /// Object-safe helper so `scf_impl` can stay generic.
    pub trait ScalarExt: Scalar {
        /// The imaginary unit (panics for real scalars).
        fn imag() -> Self;
    }
    impl ScalarExt for f64 {
        fn imag() -> Self {
            panic!("no imaginary unit in f64")
        }
    }
    impl ScalarExt for C64 {
        fn imag() -> Self {
            C64::I
        }
    }
}

fn scf_impl<T: Scalar + ScalarExt>(
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &dyn XcFunctional,
    cfg: &ScfConfig,
    kpts: &[KPoint],
) -> ScfResult {
    let nd = space.ndofs();
    let n_el = system.n_electrons();
    assert!(
        cfg.n_states * 2 >= n_el.ceil() as usize,
        "not enough states"
    );
    assert!(cfg.n_states <= nd, "more states than DoFs");
    let wsum: f64 = kpts.iter().map(|k| k.weight).sum();
    assert!((wsum - 1.0).abs() < 1e-10, "k-point weights must sum to 1");

    let rho_ion = system.ion_density(space);
    let mut rho_in = system.initial_density(space);
    let mut mixer = AndersonMixer::new(
        cfg.mixing_alpha,
        cfg.anderson_depth,
        space.mass_diag().to_vec(),
    );

    // per-k state
    let mut psi: Vec<Matrix<T>> = (0..kpts.len())
        .map(|ik| random_subspace::<T>(nd, cfg.n_states, cfg.seed + ik as u64))
        .collect();
    // per-k filter window (a0 = below wanted spectrum, a = just above it)
    let mut filter_window: Vec<Option<(f64, f64)>> = vec![None; kpts.len()];

    let mut result_energy = TotalEnergy::default();
    let mut eigenvalues: Vec<Vec<f64>> = vec![vec![]; kpts.len()];
    let mut occupations: Vec<Vec<f64>> = vec![vec![]; kpts.len()];
    let mut mu = 0.0;
    let mut vxc_nodes = vec![0.0; space.nnodes()];
    let mut v_eff = vec![0.0; space.nnodes()];
    let mut residual_history = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    let mut rho_out = rho_in.clone();
    let e_ii_corr = system.ion_ion_correction(space);
    let kweights: Vec<f64> = kpts.iter().map(|k| k.weight).collect();

    // Profiled region: the SCF loop proper (setup above is excluded from
    // the total so phase times can be checked against it).
    let profile_store = cfg.profile.then(Profile::new);
    let profile = profile_store.as_ref();

    for iter in 0..cfg.max_iter {
        iterations = iter + 1;
        if let Some(p) = profile {
            p.begin_iteration();
        }
        // ---- effective potential from rho_in --------------------------
        let rho_charge: Vec<f64> = (0..space.nnodes())
            .map(|i| rho_ion[i] - rho_in[i])
            .collect();
        let (phi, pst) = {
            let mut scope = PhaseScope::new(profile, Phase::Ep);
            let r = solve_poisson(
                space,
                &rho_charge,
                poisson_bc_of(space),
                cfg.poisson_tol,
                20000,
            );
            scope.add_flops(poisson_flops(space, r.1.iterations));
            scope.add_bytes(poisson_bytes(space, r.1.iterations));
            r
        };
        assert!(pst.converged, "Poisson solve failed at SCF iter {iter}");
        {
            let _scope = PhaseScope::new(profile, Phase::Dh);
            let rho_in_field = NodalField::from_values(space, rho_in.clone());
            let xce = evaluate_xc(space, &rho_in_field, xc);
            vxc_nodes = xce.vxc.clone();
            for i in 0..space.nnodes() {
                v_eff[i] = -phi[i] + vxc_nodes[i];
            }
        }

        // ---- eigenproblem per k-point ----------------------------------
        for (ik, k) in kpts.iter().enumerate() {
            let ph = phases_for::<T>(space, k);
            let h = KsHamiltonian::<T>::new(space, &v_eff, ph);
            let (tmin, tmax) = {
                let _scope = PhaseScope::new(profile, Phase::Other);
                lanczos_bounds(&h, 10, cfg.seed + 1000 + ik as u64)
            };
            let passes = if iter == 0 {
                cfg.first_iter_cf_passes
            } else {
                1
            };
            let opts = ChfesOptions {
                cheb_degree: cfg.cheb_degree,
                block_size: cfg.block_size,
                mixed_precision: cfg.mixed_precision,
            };
            let (mut a0, mut a) =
                filter_window[ik].unwrap_or((tmin - 1.0, tmin + 0.1 * (tmax - tmin)));
            // keep the window consistent with the fresh upper bound
            a0 = a0.min(tmin - 1.0);
            a = a.clamp(a0 + 1e-3 * (tmax - a0), 0.9 * tmax);
            let mut evals = vec![];
            for _ in 0..passes {
                evals = chfes_profiled(&h, &mut psi[ik], (a0, a, tmax), &opts, profile);
                // filter edge just above the wanted spectrum: amplifying a
                // wide unwanted band stalls SCF convergence
                let top = evals[cfg.n_states - 1];
                let spread = (top - evals[0]).max(0.1);
                let gap = (2.0 * cfg.kt).max(spread / cfg.n_states as f64);
                a = (top + gap).min(0.9 * tmax);
                a0 = evals[0] - 1.0;
            }
            filter_window[ik] = Some((a0, a));
            eigenvalues[ik] = evals;
        }

        // ---- occupations & density -------------------------------------
        let occ = {
            let _scope = PhaseScope::new(profile, Phase::Other);
            fermi_occupations(&eigenvalues, &kweights, n_el, cfg.kt)
        };
        mu = occ.mu;
        occupations = occ.occupations.clone();

        {
            let mut scope = PhaseScope::new(profile, Phase::Dc);
            rho_out = vec![0.0; space.nnodes()];
            let s = space.inv_sqrt_mass();
            for ik in 0..kpts.len() {
                let w = kpts[ik].weight;
                for i in 0..cfg.n_states {
                    let f = occupations[ik][i];
                    if f < 1e-14 {
                        continue;
                    }
                    // per DoF: |psi|^2 (MUL_FLOPS), two mass scalings, the
                    // k/occupation weight, and the accumulate
                    scope.add_flops(nd as u64 * (T::MUL_FLOPS + 4));
                    scope.add_bytes(nd as u64 * std::mem::size_of::<T>() as u64);
                    let col = psi[ik].col(i);
                    for d in 0..nd {
                        let amp = col[d].abs_sq().to_f64() * s[d] * s[d];
                        rho_out[space.node_of_dof(d)] += w * f * amp;
                    }
                }
            }
        }

        // ---- total energy (with rho_out) --------------------------------
        let (band, rho_veff, rho_charge_out) = {
            let _scope = PhaseScope::new(profile, Phase::Other);
            let band: f64 = (0..kpts.len())
                .map(|ik| -> f64 {
                    kpts[ik].weight
                        * eigenvalues[ik]
                            .iter()
                            .zip(&occupations[ik])
                            .map(|(&e, &f)| e * f)
                            .sum::<f64>()
                })
                .sum();
            let rho_veff: f64 = space.integrate(
                &(0..space.nnodes())
                    .map(|i| rho_out[i] * v_eff[i])
                    .collect::<Vec<_>>(),
            );
            let rho_charge_out: Vec<f64> = (0..space.nnodes())
                .map(|i| rho_ion[i] - rho_out[i])
                .collect();
            (band, rho_veff, rho_charge_out)
        };
        let kinetic = band - rho_veff;
        let (phi_out, pst_out) = {
            let mut scope = PhaseScope::new(profile, Phase::Ep);
            let r = solve_poisson(
                space,
                &rho_charge_out,
                poisson_bc_of(space),
                cfg.poisson_tol,
                20000,
            );
            scope.add_flops(poisson_flops(space, r.1.iterations));
            scope.add_bytes(poisson_bytes(space, r.1.iterations));
            r
        };
        let _ = pst_out;
        let xc_out = {
            let _scope = PhaseScope::new(profile, Phase::Dh);
            let rho_out_field = NodalField::from_values(space, rho_out.clone());
            evaluate_xc(space, &rho_out_field, xc)
        };
        let residual = {
            let _scope = PhaseScope::new(profile, Phase::Other);
            let e_es_gauss = 0.5
                * space.integrate(
                    &(0..space.nnodes())
                        .map(|i| rho_charge_out[i] * phi_out[i])
                        .collect::<Vec<_>>(),
                );
            let electrostatic = e_es_gauss + e_ii_corr;
            let total = kinetic + electrostatic + xc_out.energy;
            let entropy_term = -cfg.kt * occ.entropy;
            result_energy = TotalEnergy {
                band,
                kinetic,
                electrostatic,
                xc: xc_out.energy,
                entropy_term,
                total,
                free_energy: total + entropy_term,
            };

            // ---- convergence & mixing -----------------------------------
            let diff: Vec<f64> = (0..space.nnodes())
                .map(|i| (rho_out[i] - rho_in[i]).powi(2))
                .collect();
            space.integrate(&diff).sqrt() / n_el
        };
        residual_history.push(residual);
        if cfg.verbose {
            println!(
                "SCF {iter:3}  E = {:+.8} Ha   resid = {residual:.3e}   mu = {mu:+.4}",
                result_energy.free_energy
            );
        }
        if residual < cfg.tol {
            converged = true;
            break;
        }
        {
            let _scope = PhaseScope::new(profile, Phase::Other);
            rho_in = mixer.mix(&rho_in, &rho_out);
        }
    }

    ScfResult {
        energy: result_energy,
        eigenvalues,
        occupations,
        mu,
        density: NodalField::from_values(space, rho_out),
        vxc: vxc_nodes,
        v_eff,
        iterations,
        converged,
        residual_history,
        profile: profile_store.map(|p| p.finish(None)),
    }
}

/// Bloch phases `e^{i 2 pi f_d}` for k-point `k` in scalar type `T`.
fn phases_for<T: Scalar + ScalarExt>(space: &FeSpace, k: &KPoint) -> [T; 3] {
    let mut ph = [T::ONE; 3];
    for d in 0..3 {
        // dftlint:allow(L004, reason="exact Gamma-point sentinel: k.frac is set to literal 0.0, never computed")
        if space.mesh.axes[d].bc() == BoundaryCondition::Periodic && k.frac[d] != 0.0 {
            let theta = 2.0 * std::f64::consts::PI * k.frac[d];
            if T::IS_COMPLEX {
                ph[d] = T::from_f64(theta.cos())
                    + T::imag().scale(<T::Re as Real>::from_f64(theta.sin()));
            } else {
                let c = theta.cos().round();
                assert!(
                    (theta.sin()).abs() < 1e-12 && (c.abs() - 1.0).abs() < 1e-12,
                    "real path supports only Γ / zone-boundary k-points"
                );
                ph[d] = T::from_f64(c);
            }
        }
    }
    ph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Atom, AtomKind};
    use crate::xc::{Lda, SyntheticTruth};
    use dft_fem::mesh::{Axis, Mesh3d};

    fn atom_space(l: f64, n: usize, p: usize) -> FeSpace {
        let c = l / 2.0;
        let ax = || {
            Axis::graded(
                0.0,
                l,
                0.5,
                l / n as f64,
                &[c],
                3.0,
                BoundaryCondition::Dirichlet,
            )
        };
        FeSpace::new(Mesh3d::new([ax(), ax(), ax()], p))
    }

    fn quick_cfg(n_states: usize) -> ScfConfig {
        ScfConfig {
            n_states,
            kt: 0.02,
            tol: 1e-5,
            max_iter: 30,
            cheb_degree: 30,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        }
    }

    #[test]
    fn hydrogen_like_atom_binds() {
        // 1 electron in a z=1 smeared nucleus with LDA: expect a bound
        // ground state near (but above) -0.5 Ha modulo smearing and
        // self-interaction.
        let space = atom_space(12.0, 3, 3);
        let c = 6.0;
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::AllElectron { z: 1.0, r_c: 0.4 },
            pos: [c, c, c],
        }]);
        let r = scf(&space, &sys, &Lda, &quick_cfg(4), &[KPoint::gamma()]);
        assert!(r.converged, "residuals {:?}", r.residual_history);
        assert!(
            r.energy.free_energy < -0.2 && r.energy.free_energy > -0.75,
            "E = {}",
            r.energy.free_energy
        );
        // density integrates to one electron
        assert!((r.density.integrate(&space) - 1.0).abs() < 1e-6);
        // ground state is bound
        assert!(r.eigenvalues[0][0] < 0.0);
    }

    #[test]
    fn helium_like_scf_converges_and_is_stable() {
        let space = atom_space(12.0, 3, 3);
        let c = 6.0;
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.5 },
            pos: [c, c, c],
        }]);
        let r = scf(&space, &sys, &Lda, &quick_cfg(4), &[KPoint::gamma()]);
        assert!(r.converged);
        assert!((r.density.integrate(&space) - 2.0).abs() < 1e-6);
        // kinetic energy positive, XC negative, bound total
        assert!(r.energy.kinetic > 0.0, "T_s = {}", r.energy.kinetic);
        assert!(r.energy.xc < 0.0);
        assert!(r.energy.free_energy < 0.0);
        // residual decreased by orders of magnitude
        let first = r.residual_history[0];
        let last = *r.residual_history.last().unwrap();
        assert!(last < 1e-3 * first);
    }

    #[test]
    fn truth_and_lda_give_different_energies() {
        let space = atom_space(12.0, 3, 3);
        let c = 6.0;
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.5 },
            pos: [c, c, c],
        }]);
        let r_lda = scf(&space, &sys, &Lda, &quick_cfg(4), &[KPoint::gamma()]);
        let r_tru = scf(
            &space,
            &sys,
            &SyntheticTruth,
            &quick_cfg(4),
            &[KPoint::gamma()],
        );
        assert!(r_lda.converged && r_tru.converged);
        let d = (r_lda.energy.free_energy - r_tru.energy.free_energy).abs();
        assert!(d > 1e-3, "functionals should disagree: diff = {d}");
    }

    #[test]
    fn complex_gamma_matches_real_path() {
        let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
            pos: [3.0, 3.0, 3.0],
        }]);
        let cfg = quick_cfg(4);
        let r_real = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
        let r_cplx = scf_complex(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
        assert!(r_real.converged && r_cplx.converged);
        assert!(
            (r_real.energy.free_energy - r_cplx.energy.free_energy).abs() < 1e-5,
            "real {} vs complex {}",
            r_real.energy.free_energy,
            r_cplx.energy.free_energy
        );
    }

    #[test]
    fn periodic_kpoint_sampling_runs_and_shifts_energy() {
        // periodic box with one soft atom: 2 k-points along z
        let space = FeSpace::new(Mesh3d::periodic_cube(2, 6.0, 3));
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
            pos: [3.0, 3.0, 3.0],
        }]);
        let cfg = quick_cfg(4);
        let kpts = [
            KPoint {
                frac: [0.0, 0.0, 0.0],
                weight: 0.5,
            },
            KPoint {
                frac: [0.0, 0.0, 0.25],
                weight: 0.5,
            },
        ];
        let r = scf(&space, &sys, &Lda, &cfg, &kpts);
        assert!(r.converged, "residuals {:?}", r.residual_history);
        assert_eq!(r.eigenvalues.len(), 2);
        // the two k-points have different spectra
        let d0 = (r.eigenvalues[0][0] - r.eigenvalues[1][0]).abs();
        assert!(d0 > 1e-6, "k-dispersion expected, got {d0}");
        assert!((r.density.integrate(&space) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_precision_scf_matches_fp64_energy() {
        let space = atom_space(12.0, 3, 3);
        let c = 6.0;
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.5 },
            pos: [c, c, c],
        }]);
        let mut cfg = quick_cfg(4);
        let r64 = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
        cfg.mixed_precision = true;
        let rmx = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
        assert!(r64.converged && rmx.converged);
        // paper: mixed precision stays within the discretization accuracy
        assert!(
            (r64.energy.free_energy - rmx.energy.free_energy).abs() < 1e-4,
            "fp64 {} vs mixed {}",
            r64.energy.free_energy,
            rmx.energy.free_energy
        );
    }

    #[test]
    fn profiling_off_by_default_and_absent_from_result() {
        assert!(!ScfConfig::default().profile);
        let space = atom_space(10.0, 2, 2);
        let c = 5.0;
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.5 },
            pos: [c, c, c],
        }]);
        let cfg = ScfConfig {
            max_iter: 2,
            tol: 0.0,
            ..quick_cfg(4)
        };
        let r = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
        assert!(r.profile.is_none());
    }

    #[test]
    fn profiled_scf_matches_analytic_flops_and_wall_clock() {
        use crate::chebyshev::chebyshev_filter_flops;
        use dft_linalg::gemm::gemm_flops;

        let space = atom_space(12.0, 3, 3);
        let c = 6.0;
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.5 },
            pos: [c, c, c],
        }]);
        let cfg = ScfConfig {
            profile: true,
            ..quick_cfg(4)
        };
        let r = scf(&space, &sys, &Lda, &cfg, &[KPoint::gamma()]);
        assert!(r.converged);
        let prof = r.profile.expect("profile requested");

        // one bucket per SCF iteration
        assert_eq!(prof.iterations.len(), r.iterations);

        // phase wall times account for the loop: sum <= total, and within
        // 5% of it (the un-scoped bookkeeping between scopes is tiny)
        assert!(
            prof.measured_seconds() <= prof.total_seconds * (1.0 + 1e-9),
            "scoped time {} exceeds total {}",
            prof.measured_seconds(),
            prof.total_seconds
        );
        assert!(
            prof.coverage() > 0.95,
            "scope coverage {:.3} below 95%",
            prof.coverage()
        );

        // FLOP tallies must equal the analytic per-call counts exactly:
        // ChFES runs first_iter_cf_passes times at iteration 0, once after
        let (n, nd) = (cfg.n_states, space.ndofs());
        let calls = (cfg.first_iter_cf_passes + r.iterations - 1) as u64;
        let v0 = vec![0.0; space.nnodes()];
        let h = KsHamiltonian::<f64>::new(&space, &v0, [1.0; 3]);
        assert_eq!(
            prof.phase_flops("CF"),
            calls * chebyshev_filter_flops(&h, n, cfg.cheb_degree)
        );
        assert_eq!(
            prof.phase_flops("CholGS-S"),
            calls * gemm_flops::<f64>(n, n, nd)
        );
        assert_eq!(
            prof.phase_flops("CholGS-O"),
            calls * gemm_flops::<f64>(nd, n, n)
        );
        assert_eq!(
            prof.phase_flops("RR-P"),
            calls * (h.apply_flops(n) + gemm_flops::<f64>(n, n, nd))
        );
        assert_eq!(
            prof.phase_flops("RR-SR"),
            calls * gemm_flops::<f64>(nd, n, n)
        );
        // wall-time-only steps per the paper's Sec. 6.3 accounting
        assert_eq!(prof.phase_flops("CholGS-CI"), 0);
        assert_eq!(prof.phase_flops("RR-D"), 0);
        // the merged tail row carries the Poisson + density FLOPs
        assert!(prof.phase_flops("EP") > 0);
        assert!(prof.phase_flops("DC") > 0);

        // the report survives a JSON round trip bit-for-bit
        let back = ScfProfile::from_json(&prof.to_json()).unwrap();
        assert_eq!(back, prof);
        assert_eq!(prof.table3_rows().len(), 9);
    }
}
