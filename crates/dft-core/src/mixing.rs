//! Anderson (Pulay/DIIS) density mixing for SCF acceleration.

/// Anderson mixer with bounded history.
pub struct AndersonMixer {
    alpha: f64,
    depth: usize,
    history: Vec<(Vec<f64>, Vec<f64>)>, // (rho_in, residual)
    weights: Vec<f64>,
}

impl AndersonMixer {
    /// `alpha` — linear mixing fraction; `depth` — history length;
    /// `weights` — integration weights for the inner products.
    pub fn new(alpha: f64, depth: usize, weights: Vec<f64>) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Self {
            alpha,
            depth: depth.max(1),
            history: Vec::new(),
            weights,
        }
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .zip(&self.weights)
            .map(|((&x, &y), &w)| w * x * y)
            .sum()
    }

    /// Produce the next input density from `(rho_in, rho_out)` of the
    /// current SCF step.
    pub fn mix(&mut self, rho_in: &[f64], rho_out: &[f64]) -> Vec<f64> {
        self.mix_with(rho_in, rho_out, &|_| {})
    }

    /// [`Self::mix`] with a cross-rank reduction hook for the `m x m`
    /// residual Gram matrix: a distributed SCF passes weights masked to its
    /// owned nodes and sums the partial Grams with `reduce_gram` (an
    /// allreduce), after which every rank solves the same small system and
    /// produces identical mixing coefficients. The serial path passes a
    /// no-op closure and is unchanged.
    pub fn mix_with(
        &mut self,
        rho_in: &[f64],
        rho_out: &[f64],
        reduce_gram: &dyn Fn(&mut [f64]),
    ) -> Vec<f64> {
        let n = rho_in.len();
        let res: Vec<f64> = (0..n).map(|i| rho_out[i] - rho_in[i]).collect();
        self.history.push((rho_in.to_vec(), res));
        if self.history.len() > self.depth {
            self.history.remove(0);
        }
        let m = self.history.len();
        if m == 1 {
            return (0..n)
                .map(|i| rho_in[i] + self.alpha * self.history[0].1[i])
                .collect();
        }
        // Solve min || sum c_k R_k || with sum c_k = 1 via the bordered
        // normal equations (B c = lambda 1, 1^T c = 1).
        let mut b = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                b[i * m + j] = self.dot(&self.history[i].1, &self.history[j].1);
            }
        }
        // assemble partial Grams across ranks before regularizing, so the
        // regularization sees the full-domain trace
        reduce_gram(&mut b);
        // regularize
        let tr: f64 = (0..m).map(|i| b[i * m + i]).sum::<f64>() / m as f64;
        for i in 0..m {
            b[i * m + i] += 1e-12 * tr.max(1e-300);
        }
        let c = solve_constrained(&b, m);
        // rho_new = sum c_k (rho_k + alpha R_k)
        let mut out = vec![0.0; n];
        for (k, (rk, resk)) in self.history.iter().enumerate() {
            let ck = c[k];
            for i in 0..n {
                out[i] += ck * (rk[i] + self.alpha * resk[i]);
            }
        }
        // clip tiny negative densities from extrapolation
        for v in out.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    /// Drop the history (e.g. after a big change in the Hamiltonian).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// The retained `(rho_in, residual)` history, oldest first — what a
    /// checkpoint must capture to make a restarted SCF bit-compatible.
    pub fn history(&self) -> &[(Vec<f64>, Vec<f64>)] {
        &self.history
    }

    /// Replace the history with checkpointed pairs (oldest first); entries
    /// beyond the mixer's depth are dropped from the front, matching what
    /// [`Self::mix_with`] would have retained.
    pub fn restore_history(&mut self, pairs: Vec<(Vec<f64>, Vec<f64>)>) {
        self.history = pairs;
        while self.history.len() > self.depth {
            self.history.remove(0);
        }
    }
}

/// Solve the equality-constrained least-squares coefficients by Gaussian
/// elimination of the bordered system.
fn solve_constrained(b: &[f64], m: usize) -> Vec<f64> {
    let n = m + 1;
    let mut a = vec![0.0; n * n];
    let mut rhs = vec![0.0; n];
    for i in 0..m {
        for j in 0..m {
            a[i * n + j] = b[i * m + j];
        }
        a[i * n + m] = 1.0;
        a[m * n + i] = 1.0;
    }
    rhs[m] = 1.0;
    // Gaussian elimination with partial pivoting
    for col in 0..n {
        let mut piv = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if a[piv * n + col].abs() < 1e-300 {
            // degenerate: fall back to last-step-only
            let mut c = vec![0.0; m];
            c[m - 1] = 1.0;
            return c;
        }
        if piv != col {
            for k in 0..n {
                a.swap(col * n + k, piv * n + k);
            }
            rhs.swap(col, piv);
        }
        let d = a[col * n + col];
        for r in col + 1..n {
            let f = a[r * n + col] / d;
            // dftlint:allow(L004, reason="exact-zero elimination skip: avoids FMA work, never a tolerance test")
            if f != 0.0 {
                for k in col..n {
                    a[r * n + k] -= f * a[col * n + k];
                }
                rhs[r] -= f * rhs[col];
            }
        }
    }
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = rhs[r];
        for k in r + 1..n {
            acc -= a[r * n + k] * x[k];
        }
        x[r] = acc / a[r * n + r];
    }
    x.truncate(m);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_linear_mixing() {
        let w = vec![1.0; 4];
        let mut mx = AndersonMixer::new(0.3, 5, w);
        let rin = vec![1.0, 2.0, 3.0, 4.0];
        let rout = vec![2.0, 2.0, 2.0, 2.0];
        let mixed = mx.mix(&rin, &rout);
        for i in 0..4 {
            let expect = rin[i] + 0.3 * (rout[i] - rin[i]);
            assert!((mixed[i] - expect.max(0.0)).abs() < 1e-14);
        }
    }

    #[test]
    fn anderson_accelerates_linear_fixed_point() {
        // fixed point of g(x) = A x + b with spectral radius < 1
        let n = 6;
        let a_diag: Vec<f64> = (0..n).map(|i| 0.3 + 0.1 * (i as f64 / n as f64)).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.1).collect();
        let exact: Vec<f64> = (0..n).map(|i| b[i] / (1.0 - a_diag[i])).collect();
        let g = |x: &[f64]| -> Vec<f64> { (0..n).map(|i| a_diag[i] * x[i] + b[i]).collect() };

        let run = |anderson: bool| -> usize {
            let mut mx = AndersonMixer::new(0.5, if anderson { 5 } else { 1 }, vec![1.0; n]);
            let mut x = vec![0.5; n];
            for it in 0..200 {
                let out = g(&x);
                let res: f64 = (0..n).map(|i| (out[i] - x[i]).powi(2)).sum::<f64>().sqrt();
                if res < 1e-10 {
                    return it;
                }
                x = mx.mix(&x, &out);
            }
            200
        };
        let it_lin = run(false);
        let it_and = run(true);
        assert!(it_and < it_lin, "anderson {it_and} vs linear {it_lin}");
        // verify convergence point is correct
        let mut mx = AndersonMixer::new(0.5, 5, vec![1.0; n]);
        let mut x = vec![0.5; n];
        for _ in 0..100 {
            let out = g(&x);
            x = mx.mix(&x, &out);
        }
        for i in 0..n {
            assert!((x[i] - exact[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn mixer_clips_negative_densities() {
        let mut mx = AndersonMixer::new(1.0, 3, vec![1.0; 2]);
        let _ = mx.mix(&[1.0, 1.0], &[0.5, 0.5]);
        let out = mx.mix(&[0.5, 0.5], &[-2.0, 0.1]);
        assert!(out.iter().all(|&v| v >= 0.0));
    }

    /// Checkpoint contract: exporting the history and restoring it into a
    /// fresh mixer must reproduce the original mixer's next output exactly.
    #[test]
    fn history_export_restore_is_bit_compatible() {
        let w = vec![1.0, 0.5, 2.0];
        let mut a = AndersonMixer::new(0.4, 3, w.clone());
        let _ = a.mix(&[1.0, 2.0, 3.0], &[1.5, 1.8, 2.5]);
        let _ = a.mix(&[1.2, 1.9, 2.8], &[1.4, 1.7, 2.6]);
        let saved: Vec<(Vec<f64>, Vec<f64>)> = a.history().to_vec();

        let mut b = AndersonMixer::new(0.4, 3, w);
        b.restore_history(saved);
        let (rin, rout) = ([1.3, 1.8, 2.7], [1.35, 1.75, 2.65]);
        let out_a = a.mix(&rin, &rout);
        let out_b = b.mix(&rin, &rout);
        for (x, y) in out_a.iter().zip(out_b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // restoring more pairs than depth keeps only the newest `depth`
        let mut c = AndersonMixer::new(0.4, 2, vec![1.0; 3]);
        c.restore_history(vec![
            (vec![0.0; 3], vec![0.1; 3]),
            (vec![1.0; 3], vec![0.2; 3]),
            (vec![2.0; 3], vec![0.3; 3]),
        ]);
        assert_eq!(c.history().len(), 2);
        assert_eq!(c.history()[0].0, vec![1.0; 3]);
    }

    #[test]
    fn reset_clears_history() {
        let mut mx = AndersonMixer::new(0.4, 4, vec![1.0; 2]);
        let _ = mx.mix(&[1.0, 2.0], &[1.5, 1.5]);
        mx.reset();
        // behaves like first step again
        let mixed = mx.mix(&[1.0, 2.0], &[2.0, 1.0]);
        assert!((mixed[0] - (1.0 + 0.4)).abs() < 1e-14);
    }
}
