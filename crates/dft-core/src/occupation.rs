//! Fermi-Dirac occupations with chemical-potential bisection and the
//! smearing entropy (the paper's Eq. 1 occupancies `f_i`).

/// Occupations of all k-points, the chemical potential, and the smearing
/// entropy.
#[derive(Clone, Debug)]
pub struct OccupationResult {
    /// Chemical potential (Fermi level), Hartree.
    pub mu: f64,
    /// Occupations per k-point, including the spin factor 2 (each entry in
    /// `[0, 2]`).
    pub occupations: Vec<Vec<f64>>,
    /// Smearing entropy `S = -sum 2 (f ln f + (1-f) ln(1-f))`, k-weighted.
    pub entropy: f64,
}

fn fermi(e: f64, mu: f64, kt: f64) -> f64 {
    let x = (e - mu) / kt;
    if x > 40.0 {
        0.0
    } else if x < -40.0 {
        1.0
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Find `mu` so the k-weighted, spin-degenerate occupation sum equals
/// `n_electrons`, then return occupations and entropy.
///
/// `weights` are the k-point weights (must sum to 1).
pub fn fermi_occupations(
    evals: &[Vec<f64>],
    weights: &[f64],
    n_electrons: f64,
    kt: f64,
) -> OccupationResult {
    assert_eq!(evals.len(), weights.len());
    assert!(kt > 0.0 && kt.is_finite(), "kt must be positive and finite");
    assert!(
        n_electrons >= 0.0 && n_electrons.is_finite(),
        "electron count must be non-negative and finite: {n_electrons}"
    );
    let max_electrons: f64 = evals
        .iter()
        .zip(weights)
        .map(|(e, &w)| 2.0 * w * e.len() as f64)
        .sum();
    assert!(
        n_electrons <= max_electrons + 1e-9,
        "not enough states: {n_electrons} electrons, capacity {max_electrons}"
    );

    // No states anywhere (capacity forces n_electrons ~ 0): the bisection
    // bracket below would be [+inf, -inf] and poison mu with NaN.
    if evals.iter().all(|e| e.is_empty()) {
        return OccupationResult {
            mu: 0.0,
            occupations: evals.iter().map(|_| Vec::new()).collect(),
            entropy: 0.0,
        };
    }

    // A non-finite eigenvalue would poison the bisection bracket (and mu)
    // with NaN/inf; fail loudly at the boundary instead.
    assert!(
        evals.iter().flatten().all(|e| e.is_finite()),
        "non-finite eigenvalue in spectrum"
    );

    let count = |mu: f64| -> f64 {
        evals
            .iter()
            .zip(weights)
            .map(|(ek, &w)| -> f64 { w * ek.iter().map(|&e| 2.0 * fermi(e, mu, kt)).sum::<f64>() })
            .sum()
    };

    let all: Vec<f64> = evals.iter().flatten().copied().collect();
    let lo0 = all.iter().cloned().fold(f64::INFINITY, f64::min) - 30.0 * kt - 1.0;
    let hi0 = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 30.0 * kt + 1.0;
    let (mut lo, mut hi) = (lo0, hi0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count(mid) < n_electrons {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mu = 0.5 * (lo + hi);

    let occupations: Vec<Vec<f64>> = evals
        .iter()
        .map(|ek| ek.iter().map(|&e| 2.0 * fermi(e, mu, kt)).collect())
        .collect();
    let mut entropy = 0.0;
    for (occ, &w) in occupations.iter().zip(weights) {
        for &o in occ {
            let f = (o / 2.0).clamp(1e-30, 1.0 - 1e-16);
            let term = f * f.ln() + (1.0 - f) * (1.0 - f).ln();
            entropy -= 2.0 * w * term;
        }
    }
    OccupationResult {
        mu,
        occupations,
        entropy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupations_sum_to_electron_count() {
        let evals = vec![vec![-1.0, -0.5, -0.2, 0.1, 0.5, 1.0]];
        let r = fermi_occupations(&evals, &[1.0], 6.0, 0.01);
        let total: f64 = r.occupations[0].iter().sum();
        assert!((total - 6.0).abs() < 1e-8);
    }

    #[test]
    fn zero_temperature_limit_fills_lowest_states() {
        let evals = vec![vec![-2.0, -1.0, 0.0, 1.0]];
        let r = fermi_occupations(&evals, &[1.0], 4.0, 1e-4);
        assert!((r.occupations[0][0] - 2.0).abs() < 1e-6);
        assert!((r.occupations[0][1] - 2.0).abs() < 1e-6);
        assert!(r.occupations[0][2] < 1e-6);
        assert!(r.mu > -1.0 && r.mu < 0.0);
    }

    #[test]
    fn degenerate_level_fractionally_occupied() {
        // 2 electrons in a doubly degenerate level above a filled state
        let evals = vec![vec![-1.0, 0.0, 0.0]];
        let r = fermi_occupations(&evals, &[1.0], 4.0, 0.01);
        assert!((r.occupations[0][1] - 1.0).abs() < 1e-6);
        assert!((r.occupations[0][2] - 1.0).abs() < 1e-6);
        assert!(r.entropy > 0.1, "fractional occupation must carry entropy");
    }

    #[test]
    fn kpoint_weights_respected() {
        let evals = vec![vec![-1.0, 0.0], vec![-0.9, 0.1]];
        let r = fermi_occupations(&evals, &[0.5, 0.5], 2.0, 0.02);
        let total: f64 = r
            .occupations
            .iter()
            .zip(&[0.5, 0.5])
            .map(|(o, &w)| -> f64 { w * o.iter().sum::<f64>() })
            .sum();
        assert!((total - 2.0).abs() < 1e-8);
    }

    #[test]
    fn entropy_vanishes_for_integer_occupations() {
        let evals = vec![vec![-3.0, -2.0, 5.0]];
        let r = fermi_occupations(&evals, &[1.0], 4.0, 0.005);
        assert!(r.entropy.abs() < 1e-6, "entropy {}", r.entropy);
    }

    #[test]
    fn empty_eigenvalue_lists_yield_finite_mu() {
        // regression: the bisection bracket over an empty spectrum was
        // [+inf, -inf] and returned mu = NaN
        let r = fermi_occupations(&[vec![], vec![]], &[0.5, 0.5], 0.0, 0.01);
        assert!(r.mu.is_finite(), "mu must be finite, got {}", r.mu);
        assert_eq!(r.occupations, vec![Vec::<f64>::new(), Vec::new()]);
        assert_eq!(r.entropy, 0.0);
    }

    #[test]
    fn no_kpoints_at_all() {
        let r = fermi_occupations(&[], &[], 0.0, 0.01);
        assert!(r.mu.is_finite());
        assert!(r.occupations.is_empty());
        assert_eq!(r.entropy, 0.0);
    }

    #[test]
    fn zero_electrons_empties_every_state() {
        let evals = vec![vec![-1.0, 0.0, 1.0]];
        let r = fermi_occupations(&evals, &[1.0], 0.0, 0.01);
        assert!(r.mu.is_finite());
        let total: f64 = r.occupations[0].iter().sum();
        assert!(total < 1e-9, "expected empty occupations, got {total}");
    }

    #[test]
    fn full_capacity_fills_every_state() {
        // n_electrons exactly at 2 * n_states: the count is flat at
        // capacity for large mu, the bisection must still settle on a
        // finite mu with every occupation pinned at 2
        let evals = vec![vec![-1.0, -0.5, 0.3]];
        let r = fermi_occupations(&evals, &[1.0], 6.0, 0.01);
        assert!(r.mu.is_finite());
        for &o in &r.occupations[0] {
            assert!((o - 2.0).abs() < 1e-9, "occupation {o}");
        }
    }

    #[test]
    fn fully_degenerate_spectrum_splits_evenly() {
        // every eigenvalue identical: the Fermi cutoff |x| > 40 makes the
        // count flat away from the level, but bisection must land on the
        // level and split the electrons evenly
        let evals = vec![vec![0.7; 4]];
        let r = fermi_occupations(&evals, &[1.0], 3.0, 0.01);
        assert!(r.mu.is_finite());
        for &o in &r.occupations[0] {
            assert!((o - 0.75).abs() < 1e-8, "occupation {o}");
        }
    }

    /// Degenerate spectrum *and* n_electrons exactly at capacity: the count
    /// is flat at capacity everywhere above the level, so the bracket's
    /// upper end never over-counts — bisection must still produce a finite
    /// mu above the level with every state full.
    #[test]
    fn fully_degenerate_spectrum_at_full_capacity() {
        let evals = vec![vec![-0.3; 5]];
        let r = fermi_occupations(&evals, &[1.0], 10.0, 0.02);
        assert!(r.mu.is_finite(), "mu must be finite, got {}", r.mu);
        for &o in &r.occupations[0] {
            assert!((o - 2.0).abs() < 1e-9, "occupation {o}");
        }
        assert!(r.entropy.abs() < 1e-6);
    }

    /// Widely separated eigenvalues keep the bracket (and mu) finite.
    #[test]
    fn huge_magnitude_eigenvalues_keep_finite_mu() {
        let evals = vec![vec![-1e8, 1e8]];
        let r = fermi_occupations(&evals, &[1.0], 2.0, 0.01);
        assert!(r.mu.is_finite());
        assert!((r.occupations[0][0] - 2.0).abs() < 1e-9);
        assert!(r.occupations[0][1] < 1e-9);
    }

    /// Capacity with non-uniform k-weights: exactly-full still settles.
    #[test]
    fn full_capacity_with_unequal_kpoint_weights() {
        let evals = vec![vec![-1.0, 0.2], vec![-0.8, 0.1]];
        let r = fermi_occupations(&evals, &[0.25, 0.75], 4.0, 0.01);
        assert!(r.mu.is_finite());
        for occ in &r.occupations {
            for &o in occ {
                assert!((o - 2.0).abs() < 1e-9, "occupation {o}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-finite eigenvalue")]
    fn non_finite_eigenvalue_rejected() {
        fermi_occupations(&[vec![0.0, f64::NAN]], &[1.0], 1.0, 0.01);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_electron_count_rejected() {
        fermi_occupations(&[vec![0.0]], &[1.0], -1.0, 0.01);
    }

    #[test]
    #[should_panic(expected = "not enough states")]
    fn over_capacity_rejected() {
        fermi_occupations(&[vec![0.0]], &[1.0], 3.0, 0.01);
    }
}
