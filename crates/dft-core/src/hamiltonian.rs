//! The discrete Kohn-Sham Hamiltonian in the Löwdin-orthonormalized
//! spectral FE basis.
//!
//! With GLL collocation the FE mass matrix is diagonal, so the generalized
//! eigenproblem `H psi = eps M psi` becomes the standard
//! `Hhat psihat = eps psihat` with
//!
//! ```text
//! Hhat = -1/2 M^{-1/2} K M^{-1/2} + diag(v_eff)
//! ```
//!
//! (`K` the FE stiffness matrix, `v_eff` the nodal effective potential).
//! This is exactly the paper's formulation; `Hhat` is applied matrix-free
//! through the cell-level kernels of [`dft_fem::space::FeSpace`], with
//! Bloch phases carrying the k-point dependence for complex scalars.

use dft_fem::space::FeSpace;
use dft_linalg::iterative::LinearOperator;
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Real, Scalar};

/// A Kohn-Sham Hamiltonian-shaped operator: a [`LinearOperator`] that also
/// knows the analytic FLOP cost of one apply, which is what the ChFES phase
/// profiling records. Implemented by the shared-memory [`KsHamiltonian`]
/// and by the distributed operator of `dft-parallel` (whose `dim` is the
/// rank-local owned-DoF count and whose FLOPs are the rank-local work).
pub trait HamOperator<T: Scalar>: LinearOperator<T> {
    /// Analytic FLOP count of one apply on `ncols` columns.
    fn apply_flops(&self, ncols: usize) -> u64;
}

/// The discrete KS Hamiltonian for one k-point.
pub struct KsHamiltonian<'a, T: Scalar> {
    space: &'a FeSpace,
    /// Effective potential at DoF nodes.
    v_eff_dof: Vec<f64>,
    /// Bloch phases per axis (`e^{i k . L}`; ONE for Γ / non-periodic).
    pub phases: [T; 3],
}

impl<'a, T: Scalar> KsHamiltonian<'a, T> {
    /// Build from a full nodal effective potential (restricted to DoFs
    /// internally).
    pub fn new(space: &'a FeSpace, v_eff_nodes: &[f64], phases: [T; 3]) -> Self {
        assert_eq!(v_eff_nodes.len(), space.nnodes());
        let v_eff_dof = (0..space.ndofs())
            .map(|d| v_eff_nodes[space.node_of_dof(d)])
            .collect();
        Self {
            space,
            v_eff_dof,
            phases,
        }
    }

    /// The FE space.
    pub fn space(&self) -> &FeSpace {
        self.space
    }

    /// Analytic FLOP count of one [`KsHamiltonian::apply`] on `ncols`
    /// columns: the `M^{-1/2}` input scaling, the sum-factorized stiffness
    /// apply, and the output scaling plus potential term (per element one
    /// scale, one scale, one multiply-add).
    pub fn apply_flops(&self, ncols: usize) -> u64 {
        let nd = self.space.ndofs() as u64;
        let nc = ncols as u64;
        self.space.stiffness_apply_flops::<T>(ncols) + nd * nc * (3 * T::MUL_FLOPS + T::ADD_FLOPS)
    }

    /// Diagonal of `Hhat` (for preconditioning and spectral estimates):
    /// `1/2 s_d^2 K_dd + v_d` (the kinetic diagonal is positive).
    pub fn diagonal(&self) -> Vec<f64> {
        let kdiag = self.space.stiffness_diagonal();
        let s = self.space.inv_sqrt_mass();
        (0..self.space.ndofs())
            .map(|d| 0.5 * s[d] * s[d] * kdiag[d] + self.v_eff_dof[d])
            .collect()
    }
}

impl<'a, T: Scalar> HamOperator<T> for KsHamiltonian<'a, T> {
    fn apply_flops(&self, ncols: usize) -> u64 {
        KsHamiltonian::apply_flops(self, ncols)
    }
}

impl<'a, T: Scalar> LinearOperator<T> for KsHamiltonian<'a, T> {
    fn dim(&self) -> usize {
        self.space.ndofs()
    }

    fn apply(&self, x: &Matrix<T>, y: &mut Matrix<T>) {
        let nd = self.space.ndofs();
        assert_eq!(x.nrows(), nd);
        let s = self.space.inv_sqrt_mass();
        // y = K M^{-1/2} x, with the input scaling fused into the cell
        // gather (no copy of x). K is the grad-grad stiffness, i.e. the
        // discrete -∇², so the kinetic operator -1/2 ∇² is +1/2 K.
        self.space.apply_stiffness_scaled(x, y, self.phases, s);
        for j in 0..y.ncols() {
            let ycol = y.col_mut(j);
            let xcol = x.col(j);
            for ((yv, &xv), (&si, &vi)) in ycol
                .iter_mut()
                .zip(xcol.iter())
                .zip(s.iter().zip(self.v_eff_dof.iter()))
            {
                *yv = yv.scale(T::Re::from_f64(0.5 * si)) + xv.scale(T::Re::from_f64(vi));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fem::mesh::Mesh3d;
    use dft_linalg::blas1;
    use dft_linalg::scalar::C64;

    fn space() -> FeSpace {
        FeSpace::new(Mesh3d::cube(2, 6.0, 3))
    }

    #[test]
    fn hamiltonian_is_symmetric() {
        let s = space();
        let v: Vec<f64> = (0..s.nnodes())
            .map(|n| s.node_coord(n)[0] * 0.1 - 0.3)
            .collect();
        let h = KsHamiltonian::<f64>::new(&s, &v, [1.0; 3]);
        let n = h.dim();
        let x = Matrix::from_fn(n, 1, |i, _| ((i * 7) as f64 * 0.23).sin());
        let z = Matrix::from_fn(n, 1, |i, _| ((i * 5) as f64 * 0.31).cos());
        let mut hx = Matrix::zeros(n, 1);
        let mut hz = Matrix::zeros(n, 1);
        h.apply(&x, &mut hx);
        h.apply(&z, &mut hz);
        let a = blas1::dot(z.col(0), hx.col(0));
        let b = blas1::dot(hz.col(0), x.col(0));
        assert!((a - b).abs() < 1e-10 * a.abs().max(1.0));
    }

    #[test]
    fn constant_potential_shifts_spectrum() {
        let s = space();
        let v0: Vec<f64> = vec![0.0; s.nnodes()];
        let v5: Vec<f64> = vec![5.0; s.nnodes()];
        let h0 = KsHamiltonian::<f64>::new(&s, &v0, [1.0; 3]);
        let h5 = KsHamiltonian::<f64>::new(&s, &v5, [1.0; 3]);
        let n = h0.dim();
        let x = Matrix::from_fn(n, 2, |i, j| ((i * 3 + j * 17) as f64 * 0.41).sin());
        let mut y0 = Matrix::zeros(n, 2);
        let mut y5 = Matrix::zeros(n, 2);
        h0.apply(&x, &mut y0);
        h5.apply(&x, &mut y5);
        // y5 = y0 + 5 x
        let mut expect = y0.clone();
        expect.axpy_inplace(5.0, &x);
        assert!(y5.max_abs_diff(&expect) < 1e-10);
    }

    #[test]
    fn rayleigh_quotient_positive_for_positive_potential() {
        let s = space();
        let v: Vec<f64> = vec![1.0; s.nnodes()];
        let h = KsHamiltonian::<f64>::new(&s, &v, [1.0; 3]);
        let n = h.dim();
        let x = Matrix::from_fn(n, 1, |i, _| ((i * 13) as f64 * 0.7).sin());
        let mut y = Matrix::zeros(n, 1);
        h.apply(&x, &mut y);
        let rq = blas1::dot(x.col(0), y.col(0)) / blas1::dot(x.col(0), x.col(0));
        assert!(rq > 1.0, "kinetic part positive -> RQ > 1: {rq}");
    }

    #[test]
    fn complex_hamiltonian_hermitian_with_phases() {
        let s = FeSpace::new(Mesh3d::periodic_cube(2, 5.0, 2));
        let v: Vec<f64> = (0..s.nnodes())
            .map(|n| (s.node_coord(n)[1] * 0.5).sin())
            .collect();
        let phases = [C64::cis(0.4), C64::cis(-0.9), C64::ONE];
        let h = KsHamiltonian::<C64>::new(&s, &v, phases);
        let n = h.dim();
        let x = Matrix::from_fn(n, 1, |i, _| {
            C64::new(((i * 3) as f64 * 0.5).sin(), ((i * 7) as f64 * 0.2).cos())
        });
        let z = Matrix::from_fn(n, 1, |i, _| {
            C64::new(((i * 11) as f64 * 0.3).cos(), ((i * 5) as f64 * 0.9).sin())
        });
        let mut hx = Matrix::zeros(n, 1);
        let mut hz = Matrix::zeros(n, 1);
        h.apply(&x, &mut hx);
        h.apply(&z, &mut hz);
        let a = blas1::dot(z.col(0), hx.col(0));
        let b = blas1::dot(hz.col(0), x.col(0));
        assert!((a - b).abs() < 1e-10, "<z,Hx> = {a:?}, <Hz,x> = {b:?}");
    }

    #[test]
    fn diagonal_matches_unit_vector_probe() {
        let s = space();
        let v: Vec<f64> = (0..s.nnodes()).map(|n| 0.2 * n as f64 / 100.0).collect();
        let h = KsHamiltonian::<f64>::new(&s, &v, [1.0; 3]);
        let n = h.dim();
        let diag = h.diagonal();
        for probe in [0, n / 3, n - 1] {
            let mut e = Matrix::zeros(n, 1);
            e[(probe, 0)] = 1.0;
            let mut he = Matrix::zeros(n, 1);
            h.apply(&e, &mut he);
            assert!(
                (he[(probe, 0)] - diag[probe]).abs() < 1e-10,
                "probe {probe}: {} vs {}",
                he[(probe, 0)],
                diag[probe]
            );
        }
    }
}
