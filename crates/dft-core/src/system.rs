//! Atomic systems with Gaussian-smeared nuclei / local pseudopotentials.
//!
//! Every atom carries a charge `z` (valence charge for pseudopotentials,
//! full nuclear charge for all-electron-style runs) and a smearing width:
//! its charge density is the Gaussian `z (alpha/pi)^{3/2} exp(-alpha r^2)`,
//! whose exact potential is `z erf(sqrt(alpha) r)/r`. This is the
//! local-pseudopotential substitution for ONCV (DESIGN.md S3): the total
//! electrostatic potential then comes from *one* FE Poisson solve of
//! `rho_ion - rho_e` per SCF step, valid for both isolated and periodic
//! systems, with analytic short-ranged ion-ion corrections.

use crate::math::erfc;
use dft_fem::mesh::BoundaryCondition;
use dft_fem::space::FeSpace;

/// How an atom's charge enters the Hamiltonian.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AtomKind {
    /// Smooth local pseudopotential: valence charge `z`, smearing width
    /// `r_c` (`alpha = 1/r_c^2`). Larger `r_c` = softer potential.
    Pseudo {
        /// Valence charge.
        z: f64,
        /// Smearing length (Bohr).
        r_c: f64,
    },
    /// "All-electron-style" nucleus: full charge `z` with a small smearing
    /// `r_c` that must be resolved by the mesh.
    AllElectron {
        /// Nuclear charge.
        z: f64,
        /// Small smearing length (Bohr).
        r_c: f64,
    },
}

impl AtomKind {
    /// Charge carried by this atom.
    pub fn z(&self) -> f64 {
        match *self {
            AtomKind::Pseudo { z, .. } | AtomKind::AllElectron { z, .. } => z,
        }
    }
    /// Gaussian exponent `alpha = 1/r_c^2`.
    pub fn alpha(&self) -> f64 {
        match *self {
            AtomKind::Pseudo { r_c, .. } | AtomKind::AllElectron { r_c, .. } => 1.0 / (r_c * r_c),
        }
    }
}

/// One atom.
#[derive(Clone, Copy, Debug)]
pub struct Atom {
    /// Charge model.
    pub kind: AtomKind,
    /// Position (Bohr).
    pub pos: [f64; 3],
}

/// A collection of atoms on an FE space's domain.
#[derive(Clone, Debug, Default)]
pub struct AtomicSystem {
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl AtomicSystem {
    /// Build from a list of atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        Self { atoms }
    }

    /// Total ionic charge (= number of electrons for a neutral system).
    pub fn total_charge(&self) -> f64 {
        self.atoms.iter().map(|a| a.kind.z()).sum()
    }

    /// Number of electrons of the neutral system.
    pub fn n_electrons(&self) -> f64 {
        self.total_charge()
    }

    /// Ionic Gaussian charge density sampled at every FE node (positive).
    /// Periodic axes sum over the nearest images.
    pub fn ion_density(&self, space: &FeSpace) -> Vec<f64> {
        let lengths = [
            space.mesh.axes[0].length(),
            space.mesh.axes[1].length(),
            space.mesh.axes[2].length(),
        ];
        let periodic = [
            space.mesh.axes[0].bc() == BoundaryCondition::Periodic,
            space.mesh.axes[1].bc() == BoundaryCondition::Periodic,
            space.mesh.axes[2].bc() == BoundaryCondition::Periodic,
        ];
        let mut rho = vec![0.0; space.nnodes()];
        for atom in &self.atoms {
            let alpha = atom.kind.alpha();
            let z = atom.kind.z();
            let norm = z * (alpha / std::f64::consts::PI).powf(1.5);
            // cutoff radius where the Gaussian is negligible
            let rcut2 = 18.0 / alpha; // exp(-18) ~ 1.5e-8
            for n in 0..space.nnodes() {
                let c = space.node_coord(n);
                let mut r2 = 0.0;
                for d in 0..3 {
                    let mut dx = c[d] - atom.pos[d];
                    if periodic[d] {
                        // nearest image
                        dx -= (dx / lengths[d]).round() * lengths[d];
                    }
                    r2 += dx * dx;
                }
                if r2 < rcut2 {
                    rho[n] += norm * (-alpha * r2).exp();
                }
            }
        }
        rho
    }

    /// Superposition-of-atomic-Gaussians initial electron density,
    /// normalized to the electron count.
    pub fn initial_density(&self, space: &FeSpace) -> Vec<f64> {
        // reuse the ion Gaussian shapes but broadened 2x
        let broadened = AtomicSystem {
            atoms: self
                .atoms
                .iter()
                .map(|a| Atom {
                    kind: match a.kind {
                        AtomKind::Pseudo { z, r_c } => AtomKind::Pseudo { z, r_c: 2.0 * r_c },
                        AtomKind::AllElectron { z, r_c } => AtomKind::Pseudo {
                            z,
                            r_c: (8.0 * r_c).min(1.0),
                        },
                    },
                    pos: a.pos,
                })
                .collect(),
        };
        let mut rho = broadened.ion_density(space);
        let q = space.integrate(&rho);
        let target = self.n_electrons();
        if q > 1e-12 {
            let s = target / q;
            for v in rho.iter_mut() {
                *v *= s;
            }
        }
        rho
    }

    /// Short-ranged ion-ion correction energy: the difference between true
    /// point charges and the interacting Gaussians,
    /// `sum_{a<b} z_a z_b erfc(sqrt(alpha_ab) r_ab) / r_ab`, summed over
    /// nearest periodic images within the erfc cutoff, minus the Gaussian
    /// self-energies `z^2 sqrt(alpha/(2 pi))`.
    pub fn ion_ion_correction(&self, space: &FeSpace) -> f64 {
        let lengths = [
            space.mesh.axes[0].length(),
            space.mesh.axes[1].length(),
            space.mesh.axes[2].length(),
        ];
        let periodic = [
            space.mesh.axes[0].bc() == BoundaryCondition::Periodic,
            space.mesh.axes[1].bc() == BoundaryCondition::Periodic,
            space.mesh.axes[2].bc() == BoundaryCondition::Periodic,
        ];
        let n = self.atoms.len();
        let mut e = 0.0;
        // self energies
        for a in &self.atoms {
            let z = a.kind.z();
            e -= z * z * (a.kind.alpha() / (2.0 * std::f64::consts::PI)).sqrt();
        }
        // pair corrections over images (erfc cutoff)
        let img = |d: usize| -> i64 {
            if periodic[d] {
                let alpha_min = self
                    .atoms
                    .iter()
                    .map(|a| a.kind.alpha())
                    .fold(f64::INFINITY, f64::min);
                let rcut = 7.0 / (0.5 * alpha_min).sqrt();
                (rcut / lengths[d]).ceil() as i64
            } else {
                0
            }
        };
        let (ix, iy, iz) = (img(0), img(1), img(2));
        for i in 0..n {
            for j in 0..n {
                let (ai, aj) = (&self.atoms[i], &self.atoms[j]);
                let (zi, zj) = (ai.kind.z(), aj.kind.z());
                let alpha_ij =
                    ai.kind.alpha() * aj.kind.alpha() / (ai.kind.alpha() + aj.kind.alpha());
                let sq = alpha_ij.sqrt();
                for gx in -ix..=ix {
                    for gy in -iy..=iy {
                        for gz in -iz..=iz {
                            if i == j && gx == 0 && gy == 0 && gz == 0 {
                                continue;
                            }
                            let dx = ai.pos[0] - aj.pos[0] + gx as f64 * lengths[0];
                            let dy = ai.pos[1] - aj.pos[1] + gy as f64 * lengths[1];
                            let dz = ai.pos[2] - aj.pos[2] + gz as f64 * lengths[2];
                            let r = (dx * dx + dy * dy + dz * dz).sqrt();
                            if r < 1e-8 {
                                continue;
                            }
                            // half to avoid double counting i<->j
                            e += 0.5 * zi * zj * erfc(sq * r) / r;
                        }
                    }
                }
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fem::mesh::Mesh3d;

    fn space() -> FeSpace {
        FeSpace::new(Mesh3d::cube(3, 12.0, 3))
    }

    #[test]
    fn ion_density_integrates_to_total_charge() {
        // Gaussians must be resolved by the mesh: node spacing here is
        // ~0.7 Bohr, so use r_c comfortably above that.
        let s = FeSpace::new(Mesh3d::cube(4, 12.0, 4));
        let sys = AtomicSystem::new(vec![
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 1.6 },
                pos: [6.0, 6.0, 6.0],
            },
            Atom {
                kind: AtomKind::Pseudo { z: 4.0, r_c: 1.4 },
                pos: [4.0, 6.0, 7.0],
            },
        ]);
        let rho = sys.ion_density(&s);
        let q = s.integrate(&rho);
        assert!((q - 6.0).abs() < 2e-2, "q = {q}");
    }

    #[test]
    fn initial_density_normalized_to_electron_count() {
        let s = space();
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 3.0, r_c: 0.7 },
            pos: [6.0, 6.0, 6.0],
        }]);
        let rho = sys.initial_density(&s);
        assert!((s.integrate(&rho) - 3.0).abs() < 1e-10);
        assert!(rho.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn ion_ion_correction_two_distant_atoms_is_self_energy_only() {
        // far apart: erfc term ~ 0, correction = -sum self energies
        let s = space();
        let mk = |pos| Atom {
            kind: AtomKind::Pseudo { z: 1.0, r_c: 0.4 },
            pos,
        };
        let sys = AtomicSystem::new(vec![mk([2.0, 2.0, 2.0]), mk([10.0, 10.0, 10.0])]);
        let alpha = 1.0 / (0.4 * 0.4);
        let self_e = 2.0 * (alpha / (2.0 * std::f64::consts::PI)).sqrt();
        assert!((sys.ion_ion_correction(&s) + self_e).abs() < 1e-9);
    }

    #[test]
    fn ion_ion_correction_close_pair_recovers_point_repulsion() {
        // close atoms: gaussian interaction deviates from 1/r; the
        // correction makes E_gauss + corr = z^2/r + self-consistent pieces.
        // We verify corr = erfc(sqrt(alpha/2) r)/r - self for equal atoms.
        let s = space();
        let r_c = 0.5;
        let d = 0.8;
        let mk = |x| Atom {
            kind: AtomKind::Pseudo { z: 1.0, r_c },
            pos: [x, 6.0, 6.0],
        };
        let sys = AtomicSystem::new(vec![mk(5.6), mk(5.6 + d)]);
        let alpha = 1.0 / (r_c * r_c);
        let self_e = 2.0 * (alpha / (2.0 * std::f64::consts::PI)).sqrt();
        let expect = crate::math::erfc((alpha / 2.0_f64).sqrt() * d) / d - self_e;
        assert!((sys.ion_ion_correction(&s) - expect).abs() < 1e-9);
    }

    #[test]
    fn periodic_images_counted() {
        let s = FeSpace::new(Mesh3d::periodic_cube(2, 4.0, 2));
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 1.0, r_c: 1.2 },
            pos: [2.0, 2.0, 2.0],
        }]);
        // single atom in a small periodic box: image pairs contribute
        let alpha: f64 = 1.0 / (1.2 * 1.2);
        let self_e = (alpha / (2.0 * std::f64::consts::PI)).sqrt();
        let corr = sys.ion_ion_correction(&s);
        assert!(
            corr > -self_e,
            "images must add positive pair terms: {corr}"
        );
    }
}
