//! Exchange-correlation functionals and their FE evaluation.
//!
//! The accuracy ladder of the paper's Fig. 1 is represented by:
//!
//! * [`Lda`] — Level 1: Slater exchange + Perdew-Wang-92 correlation;
//! * [`Pbe`] — Level 2: the PBE GGA;
//! * [`MlxcFunctional`] — Level 4+: the machine-learned functional trained
//!   on exact XC potentials from inverse DFT;
//! * [`SyntheticTruth`] — the *hidden-truth* functional that plays the role
//!   of the quantum many-body answer in this reproduction (DESIGN.md S2):
//!   densities generated with it stand in for CI/CC/QMC densities, invDFT
//!   must recover its potential from the density alone, and accuracy
//!   figures measure error against it. It is a GGA-form functional with
//!   deliberately different enhancement parameters from PBE, so that both
//!   LDA and PBE are measurably "wrong" against it.
//!
//! GGA potentials use `v = de/drho - div(de/d|grad rho| * grad rho /
//! |grad rho|)` with the divergence assembled by mass-weighted FE recovery
//! ([`FeDivergence`]), whose exact adjoint is also provided for MLXC
//! training.

use dft_fem::field::NodalField;
use dft_fem::space::FeSpace;
use dft_mlxc::functional::MlxcModel;
use dft_mlxc::train::DivergenceOp;

/// Pointwise functional data: energy density and its partials.
#[derive(Clone, Copy, Debug, Default)]
pub struct XcPoint {
    /// XC energy density per volume.
    pub e: f64,
    /// `de/drho` at fixed `|grad rho|`.
    pub de_drho: f64,
    /// `de/d|grad rho|`.
    pub de_dgrad: f64,
}

/// An exchange-correlation functional of `(rho, |grad rho|)`.
pub trait XcFunctional: Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Whether the functional uses the density gradient.
    fn needs_gradient(&self) -> bool;
    /// Pointwise evaluation.
    fn eval_point(&self, rho: f64, grad_norm: f64) -> XcPoint;
}

/// Result of evaluating a functional on a density field.
#[derive(Clone, Debug)]
pub struct XcEvaluation {
    /// Total XC energy.
    pub energy: f64,
    /// XC potential at every node.
    pub vxc: Vec<f64>,
    /// XC energy density at every node.
    pub exc_density: Vec<f64>,
}

/// Floor protecting `rho^{-1/3}`-type expressions in vacuum.
const RHO_FLOOR: f64 = 1e-12;

/// Evaluate a functional on a nodal density: energy, potential (including
/// the GGA divergence term), and the energy density.
pub fn evaluate_xc(space: &FeSpace, rho: &NodalField, xc: &dyn XcFunctional) -> XcEvaluation {
    let n = space.nnodes();
    let (grad, grad_norm): (Option<[NodalField; 3]>, Vec<f64>) = if xc.needs_gradient() {
        let g = rho.gradient(space);
        let gn = (0..n)
            .map(|i| {
                (g[0].values[i].powi(2) + g[1].values[i].powi(2) + g[2].values[i].powi(2)).sqrt()
            })
            .collect();
        (Some(g), gn)
    } else {
        (None, vec![0.0; n])
    };

    let mut exc_density = vec![0.0; n];
    let mut vloc = vec![0.0; n];
    let mut cgrad = vec![0.0; n];
    for i in 0..n {
        let p = xc.eval_point(rho.values[i].max(0.0), grad_norm[i]);
        exc_density[i] = p.e;
        vloc[i] = p.de_drho;
        cgrad[i] = p.de_dgrad;
    }
    let energy = space.integrate(&exc_density);

    let vxc = if let Some(g) = grad {
        // divergence of c * grad(rho)/|grad(rho)|
        let mut vx = vec![0.0; n];
        let mut vy = vec![0.0; n];
        let mut vz = vec![0.0; n];
        for i in 0..n {
            if grad_norm[i] > 1e-12 {
                let c = cgrad[i] / grad_norm[i];
                vx[i] = c * g[0].values[i];
                vy[i] = c * g[1].values[i];
                vz[i] = c * g[2].values[i];
            }
        }
        let div = FeDivergence { space }.divergence(&vx, &vy, &vz);
        (0..n).map(|i| vloc[i] - div[i]).collect()
    } else {
        vloc
    };

    XcEvaluation {
        energy,
        vxc,
        exc_density,
    }
}

// ---------------------------------------------------------------------------
// LDA: Slater exchange + PW92 correlation
// ---------------------------------------------------------------------------

/// Level-1 local density approximation (Slater X + PW92 C, unpolarized).
pub struct Lda;

/// PW92 correlation energy per electron, unpolarized.
fn pw92_ec(rs: f64) -> f64 {
    const A: f64 = 0.031091;
    const A1: f64 = 0.21370;
    const B1: f64 = 7.5957;
    const B2: f64 = 3.5876;
    const B3: f64 = 1.6382;
    const B4: f64 = 0.49294;
    let s = rs.sqrt();
    let q = 2.0 * A * (B1 * s + B2 * rs + B3 * rs * s + B4 * rs * rs);
    -2.0 * A * (1.0 + A1 * rs) * (1.0 + 1.0 / q).ln()
}

/// `r_s` from the density.
fn rs_of_rho(rho: f64) -> f64 {
    (3.0 / (4.0 * std::f64::consts::PI * rho.max(RHO_FLOOR))).powf(1.0 / 3.0)
}

impl XcFunctional for Lda {
    fn name(&self) -> &'static str {
        "LDA(PW92)"
    }
    fn needs_gradient(&self) -> bool {
        false
    }
    fn eval_point(&self, rho: f64, _grad_norm: f64) -> XcPoint {
        let rho = rho.max(RHO_FLOOR);
        let cx = -(3.0 / 4.0) * (3.0 / std::f64::consts::PI).powf(1.0 / 3.0);
        let ex = cx * rho.powf(4.0 / 3.0);
        let vx = (4.0 / 3.0) * cx * rho.powf(1.0 / 3.0);
        // correlation: e_c = rho * eps_c(rs); v_c = eps_c - rs/3 deps/drs
        let rs = rs_of_rho(rho);
        let h = rs * 1e-6;
        let ec = pw92_ec(rs);
        let dec = (pw92_ec(rs + h) - pw92_ec(rs - h)) / (2.0 * h);
        XcPoint {
            e: ex + rho * ec,
            de_drho: vx + ec - (rs / 3.0) * dec,
            de_dgrad: 0.0,
        }
    }
}

// ---------------------------------------------------------------------------
// GGA family: PBE and the hidden truth
// ---------------------------------------------------------------------------

/// Parameters of a PBE-form GGA.
#[derive(Clone, Copy, Debug)]
pub struct GgaParams {
    /// Exchange enhancement limit kappa.
    pub kappa: f64,
    /// Exchange gradient coefficient mu.
    pub mu: f64,
    /// Correlation gradient coefficient beta.
    pub beta: f64,
    /// Overall correlation scaling (1.0 for genuine PBE).
    pub c_scale: f64,
}

/// PBE-form GGA energy density (unpolarized). The potential partials are
/// produced by differencing the smooth `e(rho, g)` — robust and exact to
/// ~1e-8, avoiding pages of analytic chain rule.
pub struct GgaForm {
    nm: &'static str,
    p: GgaParams,
}

/// Level-2 PBE.
pub struct Pbe;
/// The hidden many-body "truth" of this reproduction (DESIGN.md S2).
pub struct SyntheticTruth;

impl GgaForm {
    /// PBE parameters.
    pub fn pbe() -> Self {
        GgaForm {
            nm: "PBE",
            p: GgaParams {
                kappa: 0.804,
                mu: 0.219_514_972_764_517_1,
                beta: 0.066_725,
                c_scale: 1.0,
            },
        }
    }
    /// Hidden-truth parameters: same functional *form*, different physics —
    /// a stand-in for the quantum many-body answer.
    pub fn truth() -> Self {
        GgaForm {
            nm: "SyntheticTruth",
            p: GgaParams {
                kappa: 0.62,
                mu: 0.31,
                beta: 0.046,
                c_scale: 1.08,
            },
        }
    }

    fn energy_density(&self, rho: f64, g: f64) -> f64 {
        let rho = rho.max(RHO_FLOOR);
        let pi = std::f64::consts::PI;
        // exchange
        let kf = (3.0 * pi * pi * rho).powf(1.0 / 3.0);
        let s = g / (2.0 * kf * rho);
        let fx = 1.0 + self.p.kappa - self.p.kappa / (1.0 + self.p.mu * s * s / self.p.kappa);
        let cx = -(3.0 / 4.0) * (3.0 / pi).powf(1.0 / 3.0);
        let ex = cx * rho.powf(4.0 / 3.0) * fx;
        // correlation with gradient term H
        let rs = rs_of_rho(rho);
        let ec_unif = pw92_ec(rs);
        let gamma = (1.0 - (2.0f64).ln()) / (pi * pi);
        let ks = (4.0 * kf / pi).sqrt();
        let t2 = (g / (2.0 * ks * rho)).powi(2);
        let expo = (-ec_unif / gamma).exp();
        let a = if expo > 1.0 + 1e-14 {
            self.p.beta / gamma / (expo - 1.0)
        } else {
            1e10
        };
        let num = 1.0 + a * t2;
        let den = 1.0 + a * t2 + a * a * t2 * t2;
        let h = gamma * (1.0 + self.p.beta / gamma * t2 * num / den).ln();
        ex + self.p.c_scale * rho * (ec_unif + h)
    }
}

impl XcFunctional for GgaForm {
    fn name(&self) -> &'static str {
        self.nm
    }
    fn needs_gradient(&self) -> bool {
        true
    }
    fn eval_point(&self, rho: f64, grad_norm: f64) -> XcPoint {
        let rho = rho.max(RHO_FLOOR);
        let e = self.energy_density(rho, grad_norm);
        let hr = rho * 1e-6 + 1e-12;
        let hg = grad_norm * 1e-6 + 1e-10;
        let de_drho = (self.energy_density(rho + hr, grad_norm)
            - self.energy_density((rho - hr).max(RHO_FLOOR), grad_norm))
            / (rho + hr - (rho - hr).max(RHO_FLOOR));
        let de_dgrad = (self.energy_density(rho, grad_norm + hg)
            - self.energy_density(rho, (grad_norm - hg).max(0.0)))
            / (grad_norm + hg - (grad_norm - hg).max(0.0));
        XcPoint {
            e,
            de_drho,
            de_dgrad,
        }
    }
}

impl XcFunctional for Pbe {
    fn name(&self) -> &'static str {
        "PBE"
    }
    fn needs_gradient(&self) -> bool {
        true
    }
    fn eval_point(&self, rho: f64, grad_norm: f64) -> XcPoint {
        GgaForm::pbe().eval_point(rho, grad_norm)
    }
}

impl XcFunctional for SyntheticTruth {
    fn name(&self) -> &'static str {
        "SyntheticTruth"
    }
    fn needs_gradient(&self) -> bool {
        true
    }
    fn eval_point(&self, rho: f64, grad_norm: f64) -> XcPoint {
        GgaForm::truth().eval_point(rho, grad_norm)
    }
}

// ---------------------------------------------------------------------------
// MLXC adapter
// ---------------------------------------------------------------------------

/// The machine-learned functional as an [`XcFunctional`] (spin-unpolarized
/// path, `xi = 0`).
pub struct MlxcFunctional {
    /// The trained model.
    pub model: MlxcModel,
}

impl MlxcFunctional {
    /// Wrap a trained model.
    pub fn new(model: MlxcModel) -> Self {
        Self { model }
    }
}

impl XcFunctional for MlxcFunctional {
    fn name(&self) -> &'static str {
        "MLXC"
    }
    fn needs_gradient(&self) -> bool {
        true
    }
    fn eval_point(&self, rho: f64, grad_norm: f64) -> XcPoint {
        let p = self.model.eval_point(rho, 0.0, grad_norm);
        XcPoint {
            e: p.e,
            de_drho: p.de_drho,
            de_dgrad: p.de_dgrad,
        }
    }
}

// ---------------------------------------------------------------------------
// FE divergence with exact adjoint (for GGA potentials and MLXC training)
// ---------------------------------------------------------------------------

/// Mass-weighted FE divergence of nodal vector fields, with its exact
/// adjoint (needed to backpropagate the MLXC potential loss).
pub struct FeDivergence<'a> {
    /// The FE space.
    pub space: &'a FeSpace,
}

impl<'a> FeDivergence<'a> {
    /// `A_d v`: assembled mass-weighted cell derivative along axis `d`
    /// (before the `M^{-1}` of the recovery).
    fn apply_deriv_mass(&self, d: usize, v: &[f64]) -> Vec<f64> {
        let space = self.space;
        let n1 = space.mesh.degree + 1;
        let nloc = n1 * n1 * n1;
        let b = &space.basis;
        let mut out = vec![0.0; space.nnodes()];
        let mut loc = vec![0.0; nloc];
        for cell in space.cells() {
            space.gather_cell_nodes(cell, v, [1.0; 3], &mut loc);
            let jd = 2.0 / cell.h[d];
            let jac = cell.h[0] * cell.h[1] * cell.h[2] / 8.0;
            for c in 0..n1 {
                for bb in 0..n1 {
                    for a in 0..n1 {
                        let mut dv = 0.0;
                        for j in 0..n1 {
                            let idx = match d {
                                0 => j + n1 * (bb + n1 * c),
                                1 => a + n1 * (j + n1 * c),
                                _ => a + n1 * (bb + n1 * j),
                            };
                            let dmat = match d {
                                0 => b.d(a, j),
                                1 => b.d(bb, j),
                                _ => b.d(c, j),
                            };
                            dv += dmat * loc[idx];
                        }
                        let w = b.weights[a] * b.weights[bb] * b.weights[c] * jac;
                        let node = space.cell_local_to_node(cell, a, bb, c);
                        out[node] += w * jd * dv;
                    }
                }
            }
        }
        out
    }

    /// `A_d^T lambda`: the exact transpose of [`Self::apply_deriv_mass`]
    /// (gather/scatter roles swapped, derivative matrix transposed).
    fn apply_deriv_mass_t(&self, d: usize, lambda: &[f64]) -> Vec<f64> {
        let space = self.space;
        let n1 = space.mesh.degree + 1;
        let nloc = n1 * n1 * n1;
        let b = &space.basis;
        let mut out = vec![0.0; space.nnodes()];
        let mut loc = vec![0.0; nloc];
        let mut contrib = vec![0.0; nloc];
        for cell in space.cells() {
            space.gather_cell_nodes(cell, lambda, [1.0; 3], &mut loc);
            let jd = 2.0 / cell.h[d];
            let jac = cell.h[0] * cell.h[1] * cell.h[2] / 8.0;
            contrib.fill(0.0);
            for c in 0..n1 {
                for bb in 0..n1 {
                    for a in 0..n1 {
                        let w = b.weights[a] * b.weights[bb] * b.weights[c] * jac;
                        let lam = loc[a + n1 * (bb + n1 * c)] * w * jd;
                        // transpose: scatter into the j-indexed positions
                        for j in 0..n1 {
                            let (idx, dmat) = match d {
                                0 => (j + n1 * (bb + n1 * c), b.d(a, j)),
                                1 => (a + n1 * (j + n1 * c), b.d(bb, j)),
                                _ => (a + n1 * (bb + n1 * j), b.d(c, j)),
                            };
                            contrib[idx] += dmat * lam;
                        }
                    }
                }
            }
            // scatter contributions to global nodes
            let mut idx = 0;
            for c in 0..n1 {
                for bb in 0..n1 {
                    for a in 0..n1 {
                        let node = space.cell_local_to_node(cell, a, bb, c);
                        out[node] += contrib[idx];
                        idx += 1;
                    }
                }
            }
        }
        out
    }
}

impl<'a> DivergenceOp for FeDivergence<'a> {
    fn divergence(&self, vx: &[f64], vy: &[f64], vz: &[f64]) -> Vec<f64> {
        let m = self.space.mass_diag();
        let mut out = self.apply_deriv_mass(0, vx);
        let oy = self.apply_deriv_mass(1, vy);
        let oz = self.apply_deriv_mass(2, vz);
        for i in 0..out.len() {
            out[i] = (out[i] + oy[i] + oz[i]) / m[i];
        }
        out
    }
    fn adjoint(&self, lambda: &[f64]) -> [Vec<f64>; 3] {
        let m = self.space.mass_diag();
        let lm: Vec<f64> = lambda.iter().zip(m.iter()).map(|(&l, &w)| l / w).collect();
        [
            self.apply_deriv_mass_t(0, &lm),
            self.apply_deriv_mass_t(1, &lm),
            self.apply_deriv_mass_t(2, &lm),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fem::mesh::Mesh3d;

    #[test]
    fn lda_exchange_only_limit() {
        // at rho where correlation is tiny vs exchange, e ~ cx rho^{4/3}
        let p = Lda.eval_point(1.0, 0.0);
        let cx = -(3.0 / 4.0) * (3.0 / std::f64::consts::PI).powf(1.0 / 3.0);
        assert!(p.e < cx * 0.9); // exchange plus negative correlation
        assert!(p.e > cx * 1.3);
        // v_x part: 4/3 cx rho^{1/3}
        assert!(p.de_drho < 0.0);
    }

    #[test]
    fn lda_potential_is_derivative_of_energy_density() {
        for &rho in &[0.05, 0.3, 1.0, 4.0] {
            let h = rho * 1e-6;
            let ep = Lda.eval_point(rho + h, 0.0).e;
            let em = Lda.eval_point(rho - h, 0.0).e;
            let fd = (ep - em) / (2.0 * h);
            let v = Lda.eval_point(rho, 0.0).de_drho;
            assert!((v - fd).abs() < 1e-5 * fd.abs(), "rho={rho}: {v} vs {fd}");
        }
    }

    #[test]
    fn pbe_reduces_to_lda_at_zero_gradient() {
        for &rho in &[0.1, 0.7, 2.0] {
            let lda = Lda.eval_point(rho, 0.0);
            let pbe = Pbe.eval_point(rho, 0.0);
            assert!(
                (lda.e - pbe.e).abs() < 2e-4 * lda.e.abs(),
                "rho={rho}: {} vs {}",
                lda.e,
                pbe.e
            );
        }
    }

    #[test]
    fn pbe_exchange_enhancement_lowers_energy_with_gradient() {
        let rho = 0.5;
        let e0 = Pbe.eval_point(rho, 0.0).e;
        let e1 = Pbe.eval_point(rho, 1.0).e;
        assert!(e1 < e0, "gradient should enhance (more negative) exchange");
    }

    #[test]
    fn truth_differs_from_pbe_and_lda() {
        let rho = 0.4;
        let g = 0.5;
        let t = SyntheticTruth.eval_point(rho, g).e;
        let p = Pbe.eval_point(rho, g).e;
        let l = Lda.eval_point(rho, g).e;
        assert!((t - p).abs() > 1e-4 * p.abs());
        assert!((t - l).abs() > 1e-3 * l.abs());
    }

    #[test]
    fn evaluate_xc_lda_on_constant_density() {
        let space = FeSpace::new(Mesh3d::cube(2, 4.0, 2));
        let rho = NodalField::from_fn(&space, |_| 0.8);
        let out = evaluate_xc(&space, &rho, &Lda);
        let point = Lda.eval_point(0.8, 0.0);
        assert!((out.energy - point.e * 64.0).abs() < 1e-8);
        for &v in &out.vxc {
            assert!((v - point.de_drho).abs() < 1e-10);
        }
    }

    #[test]
    fn evaluate_xc_gga_constant_density_has_no_divergence_term() {
        let space = FeSpace::new(Mesh3d::cube(2, 4.0, 3));
        let rho = NodalField::from_fn(&space, |_| 0.5);
        let out = evaluate_xc(&space, &rho, &Pbe);
        let point = Pbe.eval_point(0.5, 0.0);
        for &v in &out.vxc {
            assert!((v - point.de_drho).abs() < 1e-7);
        }
    }

    #[test]
    fn fe_divergence_of_linear_field_is_constant() {
        let space = FeSpace::new(Mesh3d::cube(2, 4.0, 3));
        let d = FeDivergence { space: &space };
        // v = (x, 2y, -z) -> div = 2
        let n = space.nnodes();
        let mut vx = vec![0.0; n];
        let mut vy = vec![0.0; n];
        let mut vz = vec![0.0; n];
        for i in 0..n {
            let c = space.node_coord(i);
            vx[i] = c[0];
            vy[i] = 2.0 * c[1];
            vz[i] = -c[2];
        }
        let div = d.divergence(&vx, &vy, &vz);
        for &v in &div {
            assert!((v - 2.0).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn fe_divergence_adjoint_identity() {
        let space = FeSpace::new(Mesh3d::cube(2, 3.0, 2));
        let d = FeDivergence { space: &space };
        let n = space.nnodes();
        let vx: Vec<f64> = (0..n).map(|i| ((i * 7) as f64 * 0.13).sin()).collect();
        let vy: Vec<f64> = (0..n).map(|i| ((i * 3) as f64 * 0.29).cos()).collect();
        let vz: Vec<f64> = (0..n).map(|i| ((i * 11) as f64 * 0.17).sin()).collect();
        let lam: Vec<f64> = (0..n).map(|i| ((i * 5) as f64 * 0.37).cos()).collect();
        let div = d.divergence(&vx, &vy, &vz);
        let lhs: f64 = lam.iter().zip(div.iter()).map(|(a, b)| a * b).sum();
        let adj = d.adjoint(&lam);
        let rhs: f64 = adj[0]
            .iter()
            .zip(vx.iter())
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + adj[1]
                .iter()
                .zip(vy.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>()
            + adj[2]
                .iter()
                .zip(vz.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>();
        assert!(
            (lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn mlxc_adapter_finite_everywhere() {
        let f = MlxcFunctional::new(MlxcModel::new(5));
        for &(r, g) in &[(0.0, 0.0), (1e-8, 1.0), (2.0, 5.0)] {
            let p = f.eval_point(r, g);
            assert!(p.e.is_finite() && p.de_drho.is_finite() && p.de_dgrad.is_finite());
        }
    }
}
