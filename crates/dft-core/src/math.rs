//! Special functions: `erf`/`erfc` (Rust's std has neither).
//!
//! Implementation: W. J. Cody-style rational Chebyshev approximation via the
//! Numerical Recipes `erfc` kernel, |relative error| < 1.2e-7 — ample for
//! the short-ranged ion-ion corrections and initial-guess densities it
//! serves (the nuclear *potentials* never use it: they come from FE Poisson
//! solves of Gaussian charges).

/// Complementary error function (|rel. err| < 1.2e-7).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The well-behaved ratio `erf(a r) / r`, finite at `r = 0` (limit
/// `2 a / sqrt(pi)`), which is the potential of a unit Gaussian charge.
/// For small `a r` the rational `erf` approximation loses relative
/// accuracy, so the Maclaurin series of `erf(x)/x` is used instead.
pub fn erf_over_r(a: f64, r: f64) -> f64 {
    let x = a * r;
    if x < 0.3 {
        // erf(x)/x = 2/sqrt(pi) (1 - x^2/3 + x^4/10 - x^6/42 + x^8/216)
        let x2 = x * x;
        let series =
            1.0 - x2 / 3.0 + x2 * x2 / 10.0 - x2 * x2 * x2 / 42.0 + x2 * x2 * x2 * x2 / 216.0;
        2.0 * a / std::f64::consts::PI.sqrt() * series
    } else {
        erf(x) / r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // reference values (Abramowitz & Stegun)
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.3, 0.0, 0.7, 1.9, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_over_r_limit_at_origin() {
        let a = 1.7;
        let exact = 2.0 * a / std::f64::consts::PI.sqrt();
        assert!((erf_over_r(a, 0.0) - exact).abs() < 1e-12);
        // continuity: small r approaches the limit
        assert!((erf_over_r(a, 1e-6) - exact).abs() < 1e-6);
    }

    #[test]
    fn erfc_decays_fast() {
        assert!(erfc(5.0) < 1e-11);
        assert!(erfc(10.0) < 1e-20 + 1e-30 || erfc(10.0) >= 0.0);
    }
}
