//! FIRE structural relaxation on Hellmann-Feynman forces.
//!
//! The paper's quasicrystal stability study requires relaxed nanoparticle
//! geometries; FIRE (fast inertial relaxation engine) is the standard
//! molecular-statics driver: velocity-Verlet steps with adaptive
//! time-step and a "power" criterion that kills uphill inertia.
//!
//! The integrator state lives in [`FireState`] so the distributed driver
//! in `dft-parallel` can run the *identical* update rule (bit-for-bit:
//! same accumulation order, same branches) on replicated forces and
//! checkpoint/restore it across preemptions.

use crate::forces::{compute_forces, max_force, ForceError};
use crate::scf::{scf, KPoint, ScfConfig, ScfResult};
use crate::system::AtomicSystem;
use crate::xc::XcFunctional;
use dft_fem::space::FeSpace;

/// FIRE parameters (standard values).
#[derive(Clone, Debug)]
pub struct RelaxConfig {
    /// Maximum relaxation steps.
    pub max_steps: usize,
    /// Converged when the largest force component falls below this
    /// (Ha/Bohr; the paper's discretization target is 1e-4).
    pub force_tol: f64,
    /// Initial time step.
    pub dt: f64,
    /// Maximum time step.
    pub dt_max: f64,
    /// Maximum displacement per step (trust radius, Bohr).
    pub max_disp: f64,
}

impl Default for RelaxConfig {
    fn default() -> Self {
        Self {
            max_steps: 20,
            force_tol: 5e-3,
            dt: 0.5,
            dt_max: 2.0,
            max_disp: 0.25,
        }
    }
}

/// Mutable FIRE integrator state: velocities plus the adaptive knobs.
/// One `step` call consumes the current forces and returns the
/// displacement to apply; the state is pure data so drivers can persist
/// it (the distributed relaxation checkpoints it alongside the SCF
/// snapshot) and replay deterministically.
#[derive(Clone, Debug)]
pub struct FireState {
    /// Per-atom velocities (unit masses).
    pub v: Vec<[f64; 3]>,
    /// Current adaptive time step.
    pub dt: f64,
    /// Current velocity-mixing parameter.
    pub alpha: f64,
    /// Consecutive downhill (P > 0) steps.
    pub n_pos: usize,
}

impl FireState {
    /// Fresh state for `n_atoms` atoms with the configured initial dt.
    pub fn new(n_atoms: usize, cfg: &RelaxConfig) -> Self {
        Self {
            v: vec![[0.0; 3]; n_atoms],
            dt: cfg.dt,
            alpha: 0.1,
            n_pos: 0,
        }
    }

    /// One FIRE update: mix velocities by the power criterion, integrate
    /// one velocity-Verlet step, and return the per-atom displacements.
    ///
    /// Trust radius: the step is clamped by the *norm* of the largest
    /// per-atom displacement (a uniform rescale of the whole step vector,
    /// preserving its direction), and the velocities are rescaled by the
    /// same factor so that `v == dx/dt` — the next power criterion
    /// `P = F.v` sees a velocity consistent with the move actually
    /// applied. (The old per-component clamp both bent the step direction
    /// and left `v` describing a move that never happened.)
    pub fn step(&mut self, f: &[[f64; 3]], cfg: &RelaxConfig) -> Vec<[f64; 3]> {
        let n = f.len();
        assert_eq!(self.v.len(), n);
        // FIRE: P = F . v
        let p: f64 = (0..n)
            .map(|i| (0..3).map(|k| f[i][k] * self.v[i][k]).sum::<f64>())
            .sum();
        let fnorm: f64 = (0..n)
            .map(|i| (0..3).map(|k| f[i][k] * f[i][k]).sum::<f64>())
            .sum::<f64>()
            .sqrt()
            .max(1e-300);
        let vnorm: f64 = (0..n)
            .map(|i| (0..3).map(|k| self.v[i][k] * self.v[i][k]).sum::<f64>())
            .sum::<f64>()
            .sqrt();
        if p > 0.0 {
            for i in 0..n {
                for k in 0..3 {
                    self.v[i][k] =
                        (1.0 - self.alpha) * self.v[i][k] + self.alpha * f[i][k] / fnorm * vnorm;
                }
            }
            self.n_pos += 1;
            if self.n_pos > 5 {
                self.dt = (self.dt * 1.1).min(cfg.dt_max);
                self.alpha *= 0.99;
            }
        } else {
            self.v = vec![[0.0; 3]; n];
            self.dt *= 0.5;
            self.alpha = 0.1;
            self.n_pos = 0;
        }
        // velocity Verlet (unit masses)
        let mut dx = vec![[0.0f64; 3]; n];
        let mut max_norm = 0.0f64;
        for i in 0..n {
            let mut d2 = 0.0;
            for k in 0..3 {
                self.v[i][k] += self.dt * f[i][k];
                dx[i][k] = self.dt * self.v[i][k];
                d2 += dx[i][k] * dx[i][k];
            }
            max_norm = max_norm.max(d2.sqrt());
        }
        // trust radius: uniform rescale of step AND velocity
        if max_norm > cfg.max_disp {
            let s = cfg.max_disp / max_norm;
            for i in 0..n {
                for k in 0..3 {
                    dx[i][k] *= s;
                    self.v[i][k] *= s;
                }
            }
        }
        dx
    }
}

/// Relaxation trajectory record.
pub struct RelaxResult {
    /// Relaxed system.
    pub system: AtomicSystem,
    /// Last SCF result.
    pub scf: ScfResult,
    /// (energy, max force) per accepted step, including the final
    /// post-move evaluation.
    pub trajectory: Vec<(f64, f64)>,
    /// Whether the force tolerance was reached.
    pub converged: bool,
}

/// Relax atomic positions with FIRE, running a full SCF at every step.
pub fn relax(
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &dyn XcFunctional,
    scf_cfg: &ScfConfig,
    cfg: &RelaxConfig,
) -> Result<RelaxResult, ForceError> {
    let mut sys = system.clone();
    let n = sys.atoms.len();
    let mut fire = FireState::new(n, cfg);
    let mut trajectory = Vec::new();

    let mut r = scf(space, &sys, xc, scf_cfg, &[KPoint::gamma()]);
    let mut f = compute_forces(space, &sys, &r.density.values)?;
    let mut converged = false;

    for _step in 0..cfg.max_steps {
        let fmax = max_force(&f);
        trajectory.push((r.energy.free_energy, fmax));
        if fmax < cfg.force_tol {
            converged = true;
            break;
        }
        let dx = fire.step(&f, cfg);
        for i in 0..n {
            for k in 0..3 {
                sys.atoms[i].pos[k] += dx[i][k];
            }
        }
        r = scf(space, &sys, xc, scf_cfg, &[KPoint::gamma()]);
        f = compute_forces(space, &sys, &r.density.values)?;
    }
    if !converged {
        // the loop exhausted max_steps: the SCF + forces computed after
        // the last accepted move still need their convergence verdict and
        // trajectory record (previously both were discarded)
        let fmax = max_force(&f);
        trajectory.push((r.energy.free_energy, fmax));
        converged = fmax < cfg.force_tol;
    }
    Ok(RelaxResult {
        system: sys,
        scf: r,
        trajectory,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Atom, AtomKind};
    use crate::xc::Lda;
    use dft_fem::mesh::{Axis, BoundaryCondition, Mesh3d};

    #[test]
    fn compressed_dimer_expands_and_lowers_energy() {
        let l = 12.0;
        let c = l / 2.0;
        // mesh graded over the whole bond region so atoms can move
        let ax = || {
            Axis::graded(
                0.0,
                l,
                0.7,
                2.5,
                &[c - 1.5, c, c + 1.5],
                2.5,
                BoundaryCondition::Dirichlet,
            )
        };
        let ay = || Axis::graded(0.0, l, 0.7, 2.5, &[c], 2.5, BoundaryCondition::Dirichlet);
        let space = FeSpace::new(Mesh3d::new([ax(), ay(), ay()], 3));
        let d0 = 1.0; // compressed
        let sys = AtomicSystem::new(vec![
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
                pos: [c - d0 / 2.0, c, c],
            },
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
                pos: [c + d0 / 2.0, c, c],
            },
        ]);
        let scf_cfg = ScfConfig {
            n_states: 5,
            kt: 0.02,
            tol: 1e-6,
            max_iter: 40,
            cheb_degree: 30,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        };
        let relax_cfg = RelaxConfig {
            max_steps: 8,
            force_tol: 2e-2,
            ..RelaxConfig::default()
        };
        let out = relax(&space, &sys, &Lda, &scf_cfg, &relax_cfg).expect("relax");
        // bond expanded
        let d_final = (out.system.atoms[1].pos[0] - out.system.atoms[0].pos[0]).abs();
        assert!(d_final > d0 + 0.05, "bond {d0} -> {d_final}");
        // energy decreased and forces shrank
        let (e0, f0) = out.trajectory[0];
        let (e1, f1) = *out.trajectory.last().unwrap();
        assert!(e1 < e0, "energy {e0} -> {e1}");
        assert!(f1 < f0, "max force {f0} -> {f1}");
    }

    /// Regression for the trust-radius bug: a steep force must produce a
    /// step clamped by *norm* (direction preserved) with the velocity
    /// rescaled to match the applied displacement exactly.
    #[test]
    fn trust_radius_clamps_by_norm_and_rescales_velocity() {
        let cfg = RelaxConfig::default();
        let mut fire = FireState::new(2, &cfg);
        // steep, direction-mixing force: the old per-component clamp
        // would saturate x and y at max_disp and bend the direction
        let f = [[40.0, 10.0, 0.0], [-40.0, -10.0, 0.0]];
        let dx = fire.step(&f, &cfg);
        for i in 0..2 {
            let norm = (0..3).map(|k| dx[i][k] * dx[i][k]).sum::<f64>().sqrt();
            assert!(
                norm <= cfg.max_disp * (1.0 + 1e-12),
                "atom {i} step norm {norm} exceeds trust radius"
            );
            // direction preserved: dx parallel to f (v started at zero)
            let cross = dx[i][0] * f[i][1] - dx[i][1] * f[i][0];
            assert!(cross.abs() < 1e-12, "clamp bent the step direction");
            // velocity consistent with the applied move: v == dx/dt
            for k in 0..3 {
                assert!(
                    (fire.v[i][k] * fire.dt - dx[i][k]).abs() < 1e-14,
                    "velocity inconsistent with applied displacement"
                );
            }
        }
        // and an unclamped gentle step is untouched (first step has
        // P = 0 so FIRE halves dt before integrating: dx = (dt/2)^2 f)
        let mut fire2 = FireState::new(1, &cfg);
        let g = [[0.1, 0.0, 0.0]];
        let dx2 = fire2.step(&g, &cfg);
        let dt_h = cfg.dt * 0.5;
        assert!((dx2[0][0] - dt_h * dt_h * 0.1).abs() < 1e-15);
    }

    /// Regression for the missing final-step convergence check: a run
    /// whose force drops below tolerance only after the last allowed move
    /// must still report converged, and the trajectory must include the
    /// final evaluation. `max_steps: 0` isolates the post-loop path.
    #[test]
    fn final_step_convergence_is_evaluated() {
        let l = 10.0;
        let s = FeSpace::new(Mesh3d::cube(4, l, 4));
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
            pos: [l / 2.0; 3],
        }]);
        let scf_cfg = ScfConfig {
            n_states: 4,
            kt: 0.02,
            tol: 1e-6,
            max_iter: 40,
            cheb_degree: 30,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        };
        let relax_cfg = RelaxConfig {
            max_steps: 0,
            force_tol: 5e-3, // symmetric atom: force ~ 0
            ..RelaxConfig::default()
        };
        let out = relax(&s, &sys, &Lda, &scf_cfg, &relax_cfg).expect("relax");
        assert_eq!(
            out.trajectory.len(),
            1,
            "final evaluation missing from trajectory"
        );
        assert!(
            out.converged,
            "convergence not evaluated after the last step (fmax {})",
            out.trajectory[0].1
        );
    }
}
