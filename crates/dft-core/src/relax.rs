//! FIRE structural relaxation on Hellmann-Feynman forces.
//!
//! The paper's quasicrystal stability study requires relaxed nanoparticle
//! geometries; FIRE (fast inertial relaxation engine) is the standard
//! molecular-statics driver: velocity-Verlet steps with adaptive
//! time-step and a "power" criterion that kills uphill inertia.

use crate::forces::{compute_forces, max_force};
use crate::scf::{scf, KPoint, ScfConfig, ScfResult};
use crate::system::AtomicSystem;
use crate::xc::XcFunctional;
use dft_fem::space::FeSpace;

/// FIRE parameters (standard values).
#[derive(Clone, Debug)]
pub struct RelaxConfig {
    /// Maximum relaxation steps.
    pub max_steps: usize,
    /// Converged when the largest force component falls below this
    /// (Ha/Bohr; the paper's discretization target is 1e-4).
    pub force_tol: f64,
    /// Initial time step.
    pub dt: f64,
    /// Maximum time step.
    pub dt_max: f64,
    /// Maximum displacement per step (trust radius, Bohr).
    pub max_disp: f64,
}

impl Default for RelaxConfig {
    fn default() -> Self {
        Self {
            max_steps: 20,
            force_tol: 5e-3,
            dt: 0.5,
            dt_max: 2.0,
            max_disp: 0.25,
        }
    }
}

/// Relaxation trajectory record.
pub struct RelaxResult {
    /// Relaxed system.
    pub system: AtomicSystem,
    /// Last SCF result.
    pub scf: ScfResult,
    /// (energy, max force) per accepted step.
    pub trajectory: Vec<(f64, f64)>,
    /// Whether the force tolerance was reached.
    pub converged: bool,
}

/// Relax atomic positions with FIRE, running a full SCF at every step.
pub fn relax(
    space: &FeSpace,
    system: &AtomicSystem,
    xc: &dyn XcFunctional,
    scf_cfg: &ScfConfig,
    cfg: &RelaxConfig,
) -> RelaxResult {
    let mut sys = system.clone();
    let n = sys.atoms.len();
    let mut v = vec![[0.0f64; 3]; n];
    let mut dt = cfg.dt;
    let mut n_pos = 0usize;
    let mut alpha = 0.1;
    let mut trajectory = Vec::new();

    let mut r = scf(space, &sys, xc, scf_cfg, &[KPoint::gamma()]);
    let mut f = compute_forces(space, &sys, &r.density.values);
    let mut converged = false;

    for _step in 0..cfg.max_steps {
        let fmax = max_force(&f);
        trajectory.push((r.energy.free_energy, fmax));
        if fmax < cfg.force_tol {
            converged = true;
            break;
        }
        // FIRE: P = F . v
        let p: f64 = (0..n)
            .map(|i| (0..3).map(|k| f[i][k] * v[i][k]).sum::<f64>())
            .sum();
        let fnorm: f64 = (0..n)
            .map(|i| (0..3).map(|k| f[i][k] * f[i][k]).sum::<f64>())
            .sum::<f64>()
            .sqrt()
            .max(1e-300);
        let vnorm: f64 = (0..n)
            .map(|i| (0..3).map(|k| v[i][k] * v[i][k]).sum::<f64>())
            .sum::<f64>()
            .sqrt();
        if p > 0.0 {
            for i in 0..n {
                for k in 0..3 {
                    v[i][k] = (1.0 - alpha) * v[i][k] + alpha * f[i][k] / fnorm * vnorm;
                }
            }
            n_pos += 1;
            if n_pos > 5 {
                dt = (dt * 1.1).min(cfg.dt_max);
                alpha *= 0.99;
            }
        } else {
            v = vec![[0.0; 3]; n];
            dt *= 0.5;
            alpha = 0.1;
            n_pos = 0;
        }
        // velocity Verlet (unit masses) with trust radius
        for i in 0..n {
            for k in 0..3 {
                v[i][k] += dt * f[i][k];
                let mut dx = dt * v[i][k];
                dx = dx.clamp(-cfg.max_disp, cfg.max_disp);
                sys.atoms[i].pos[k] += dx;
            }
        }
        r = scf(space, &sys, xc, scf_cfg, &[KPoint::gamma()]);
        f = compute_forces(space, &sys, &r.density.values);
    }
    RelaxResult {
        system: sys,
        scf: r,
        trajectory,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Atom, AtomKind};
    use crate::xc::Lda;
    use dft_fem::mesh::{Axis, BoundaryCondition, Mesh3d};

    #[test]
    fn compressed_dimer_expands_and_lowers_energy() {
        let l = 12.0;
        let c = l / 2.0;
        // mesh graded over the whole bond region so atoms can move
        let ax = || {
            Axis::graded(
                0.0,
                l,
                0.7,
                2.5,
                &[c - 1.5, c, c + 1.5],
                2.5,
                BoundaryCondition::Dirichlet,
            )
        };
        let ay = || Axis::graded(0.0, l, 0.7, 2.5, &[c], 2.5, BoundaryCondition::Dirichlet);
        let space = FeSpace::new(Mesh3d::new([ax(), ay(), ay()], 3));
        let d0 = 1.0; // compressed
        let sys = AtomicSystem::new(vec![
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
                pos: [c - d0 / 2.0, c, c],
            },
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
                pos: [c + d0 / 2.0, c, c],
            },
        ]);
        let scf_cfg = ScfConfig {
            n_states: 5,
            kt: 0.02,
            tol: 1e-6,
            max_iter: 40,
            cheb_degree: 30,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        };
        let relax_cfg = RelaxConfig {
            max_steps: 8,
            force_tol: 2e-2,
            ..RelaxConfig::default()
        };
        let out = relax(&space, &sys, &Lda, &scf_cfg, &relax_cfg);
        // bond expanded
        let d_final = (out.system.atoms[1].pos[0] - out.system.atoms[0].pos[0]).abs();
        assert!(d_final > d0 + 0.05, "bond {d0} -> {d_final}");
        // energy decreased and forces shrank
        let (e0, f0) = out.trajectory[0];
        let (e1, f1) = *out.trajectory.last().unwrap();
        assert!(e1 < e0, "energy {e0} -> {e1}");
        assert!(f1 < f0, "max force {f0} -> {f1}");
    }
}
