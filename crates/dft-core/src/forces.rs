//! Hellmann-Feynman forces on the (Gaussian-smeared) ions.
//!
//! The paper's science runs use structural relaxation ("accurate
//! ground-state calculations, with structural relaxation, on ~2,000
//! atoms"). With Gaussian nuclei the force on atom `a` splits into
//!
//! * the electrostatic Hellmann-Feynman term
//!   `F_a = - integral (d rho_a / d R_a) phi dV`
//!   where `phi` is the total electrostatic potential of
//!   `rho_ion - rho_e` (computed by one FE Poisson solve), and
//!   `d rho_a / d R_{a,k} = 2 alpha (r_k - R_{a,k}) rho_a(r)`;
//! * the short-ranged ion-ion correction force from
//!   `z_a z_b erfc(sqrt(alpha_ab) r) / r` pairs (including periodic
//!   images), with
//!   `d/dr [erfc(c r)/r] = -erfc(c r)/r^2 - (2c/sqrt(pi)) e^{-c^2 r^2}/r`.
//!
//! Valid at SCF convergence (Hellmann-Feynman); validated against finite
//! differences of the total energy in the tests.

use crate::math::erfc;
use crate::system::AtomicSystem;
use dft_fem::mesh::BoundaryCondition;
use dft_fem::poisson::{solve_poisson, PoissonBc};
use dft_fem::space::FeSpace;

/// Compute forces (Ha/Bohr) on every atom for a converged density
/// `rho_e` (full nodal vector).
pub fn compute_forces(space: &FeSpace, system: &AtomicSystem, rho_e: &[f64]) -> Vec<[f64; 3]> {
    assert_eq!(rho_e.len(), space.nnodes());
    let rho_ion = system.ion_density(space);
    let rho_charge: Vec<f64> = (0..space.nnodes()).map(|i| rho_ion[i] - rho_e[i]).collect();
    let all_periodic = space
        .mesh
        .axes
        .iter()
        .all(|a| a.bc() == BoundaryCondition::Periodic);
    let bc = if all_periodic {
        PoissonBc::Periodic
    } else {
        PoissonBc::Dirichlet(&|_| 0.0)
    };
    let (phi, st) = solve_poisson(space, &rho_charge, bc, 1e-10, 20000);
    assert!(st.converged, "force electrostatics failed");

    let lengths = [
        space.mesh.axes[0].length(),
        space.mesh.axes[1].length(),
        space.mesh.axes[2].length(),
    ];
    let periodic = [
        space.mesh.axes[0].bc() == BoundaryCondition::Periodic,
        space.mesh.axes[1].bc() == BoundaryCondition::Periodic,
        space.mesh.axes[2].bc() == BoundaryCondition::Periodic,
    ];

    let mut forces = vec![[0.0f64; 3]; system.atoms.len()];
    // electrostatic Hellmann-Feynman term (nodal quadrature)
    for (ai, atom) in system.atoms.iter().enumerate() {
        let alpha = atom.kind.alpha();
        let z = atom.kind.z();
        let norm = z * (alpha / std::f64::consts::PI).powf(1.5);
        let rcut2 = 20.0 / alpha;
        for n in 0..space.nnodes() {
            let c = space.node_coord(n);
            let mut d = [0.0f64; 3];
            let mut r2 = 0.0;
            for k in 0..3 {
                let mut dx = c[k] - atom.pos[k];
                if periodic[k] {
                    dx -= (dx / lengths[k]).round() * lengths[k];
                }
                d[k] = dx;
                r2 += dx * dx;
            }
            if r2 > rcut2 {
                continue;
            }
            let g = norm * (-alpha * r2).exp();
            let w = space.mass_diag()[n] * phi[n] * 2.0 * alpha * g;
            // F = - integral (d rho_a / d R) phi ; d rho_a / d R_k = 2 a d_k g
            // with d_k = (r - R)_k, so d rho/dR_k = +2 a d_k g?? Note
            // d/dR_k exp(-a|r-R|^2) = +2a (r_k - R_k) exp(...)
            for k in 0..3 {
                forces[ai][k] -= w * d[k];
            }
        }
    }

    // short-ranged ion-ion correction forces (pairs + images)
    let n_at = system.atoms.len();
    let img = |d: usize| -> i64 {
        if periodic[d] {
            let alpha_min = system
                .atoms
                .iter()
                .map(|a| a.kind.alpha())
                .fold(f64::INFINITY, f64::min);
            let rcut = 7.0 / (0.5 * alpha_min).sqrt();
            (rcut / lengths[d]).ceil() as i64
        } else {
            0
        }
    };
    let (ix, iy, iz) = (img(0), img(1), img(2));
    let sqrt_pi = std::f64::consts::PI.sqrt();
    for a in 0..n_at {
        for b in 0..n_at {
            let (za, zb) = (system.atoms[a].kind.z(), system.atoms[b].kind.z());
            let (aa, ab) = (system.atoms[a].kind.alpha(), system.atoms[b].kind.alpha());
            let cc = (aa * ab / (aa + ab)).sqrt();
            for gx in -ix..=ix {
                for gy in -iy..=iy {
                    for gz in -iz..=iz {
                        if a == b && gx == 0 && gy == 0 && gz == 0 {
                            continue;
                        }
                        let d = [
                            system.atoms[a].pos[0] - system.atoms[b].pos[0]
                                + gx as f64 * lengths[0],
                            system.atoms[a].pos[1] - system.atoms[b].pos[1]
                                + gy as f64 * lengths[1],
                            system.atoms[a].pos[2] - system.atoms[b].pos[2]
                                + gz as f64 * lengths[2],
                        ];
                        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                        if r < 1e-8 || cc * r > 8.0 {
                            continue;
                        }
                        // -d/dr [erfc(cr)/r] = erfc(cr)/r^2 + 2c e^{-c^2r^2}/(sqrt(pi) r)
                        let mag = za
                            * zb
                            * (erfc(cc * r) / (r * r)
                                + 2.0 * cc * (-cc * cc * r * r).exp() / (sqrt_pi * r));
                        for k in 0..3 {
                            forces[a][k] += mag * d[k] / r;
                        }
                    }
                }
            }
        }
    }
    forces
}

/// Largest force component magnitude (the relaxation convergence metric).
pub fn max_force(forces: &[[f64; 3]]) -> f64 {
    forces
        .iter()
        .flat_map(|f| f.iter())
        .map(|v| v.abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{scf, KPoint, ScfConfig};
    use crate::system::{Atom, AtomKind};
    use crate::xc::Lda;
    use dft_fem::mesh::{Axis, Mesh3d};

    fn space(l: f64, centers: &[f64]) -> FeSpace {
        let ax = |cs: &[f64]| Axis::graded(0.0, l, 0.6, 2.5, cs, 2.5, BoundaryCondition::Dirichlet);
        FeSpace::new(Mesh3d::new(
            [ax(centers), ax(&[l / 2.0]), ax(&[l / 2.0])],
            3,
        ))
    }

    fn cfg(n_el: f64) -> ScfConfig {
        ScfConfig {
            n_states: (n_el / 2.0).ceil() as usize + 3,
            kt: 0.02,
            tol: 1e-6,
            max_iter: 40,
            cheb_degree: 30,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        }
    }

    #[test]
    fn force_on_symmetric_atom_vanishes() {
        // a mirror-symmetric (uniform) mesh is needed here: the greedy
        // graded mesh is not symmetric about the atom and produces a
        // small systematic "egg-box" force, as in real real-space codes
        let l = 10.0;
        let s = FeSpace::new(Mesh3d::cube(4, l, 4));
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
            pos: [l / 2.0; 3],
        }]);
        let r = scf(&s, &sys, &Lda, &cfg(2.0), &[KPoint::gamma()]);
        assert!(r.converged);
        let f = compute_forces(&s, &sys, &r.density.values);
        assert!(max_force(&f) < 5e-3, "symmetric atom force {:?}", f[0]);
    }

    #[test]
    fn dimer_forces_match_energy_finite_difference() {
        // move one atom of a dimer along x and compare -dE/dx with F_x
        let l = 12.0;
        let c = l / 2.0;
        let d0 = 2.2;
        let run = |dx: f64| -> (f64, Vec<[f64; 3]>, AtomicSystem, FeSpace) {
            // fixed mesh graded at both nominal sites so the FD is smooth
            let s = space(l, &[c - d0 / 2.0, c + d0 / 2.0]);
            let sys = AtomicSystem::new(vec![
                Atom {
                    kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
                    pos: [c - d0 / 2.0, c, c],
                },
                Atom {
                    kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
                    pos: [c + d0 / 2.0 + dx, c, c],
                },
            ]);
            let r = scf(&s, &sys, &Lda, &cfg(2.0), &[KPoint::gamma()]);
            assert!(r.converged);
            let f = compute_forces(&s, &sys, &r.density.values);
            (r.energy.free_energy, f, sys, s)
        };
        let h = 0.05;
        let (_e0, f0, _, _) = run(0.0);
        let (ep, _, _, _) = run(h);
        let (em, _, _, _) = run(-h);
        let fd = -(ep - em) / (2.0 * h);
        let fx = f0[1][0];
        assert!(
            (fx - fd).abs() < 0.15 * fd.abs().max(0.02),
            "analytic {fx} vs FD {fd}"
        );
    }

    #[test]
    fn close_dimer_repels() {
        let l = 12.0;
        let c = l / 2.0;
        let s = space(l, &[c - 0.6, c + 0.6]);
        let sys = AtomicSystem::new(vec![
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
                pos: [c - 0.6, c, c],
            },
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
                pos: [c + 0.6, c, c],
            },
        ]);
        let r = scf(&s, &sys, &Lda, &cfg(4.0), &[KPoint::gamma()]);
        assert!(r.converged);
        let f = compute_forces(&s, &sys, &r.density.values);
        // atoms too close: atom 0 pushed -x, atom 1 pushed +x
        assert!(f[0][0] < 0.0 && f[1][0] > 0.0, "repulsion: {:?}", f);
        // Newton's third law along the axis
        assert!((f[0][0] + f[1][0]).abs() < 0.1 * f[1][0].abs());
    }
}
