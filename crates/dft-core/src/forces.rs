//! Hellmann-Feynman forces on the (Gaussian-smeared) ions.
//!
//! The paper's science runs use structural relaxation ("accurate
//! ground-state calculations, with structural relaxation, on ~2,000
//! atoms"). With Gaussian nuclei the force on atom `a` splits into
//!
//! * the electrostatic Hellmann-Feynman term
//!   `F_a = - integral (d rho_a / d R_a) phi dV`
//!   where `phi` is the total electrostatic potential of
//!   `rho_ion - rho_e` (computed by one FE Poisson solve), and
//!   `d rho_a / d R_{a,k} = 2 alpha (r_k - R_{a,k}) rho_a(r)`;
//! * the short-ranged ion-ion correction force from
//!   `z_a z_b erfc(sqrt(alpha_ab) r) / r` pairs (including periodic
//!   images), with
//!   `d/dr [erfc(c r)/r] = -erfc(c r)/r^2 - (2c/sqrt(pi)) e^{-c^2 r^2}/r`.
//!
//! Valid at SCF convergence (Hellmann-Feynman); validated against finite
//! differences of the total energy in the tests.
//!
//! Both physical terms are exposed as *partial* sums —
//! [`electrostatic_force_partial`] over a node subset and
//! [`ion_ion_force_partial`] over a round-robin atom shard — so the
//! distributed assembly in `dft-parallel` can give each rank its owned
//! share and reassemble the total with one deterministic reduction. The
//! serial [`compute_forces`] is exactly the two full partials glued to the
//! [`force_poisson`] solve.

use crate::math::erfc;
use crate::system::AtomicSystem;
use dft_fem::mesh::BoundaryCondition;
use dft_fem::poisson::{solve_poisson, PoissonBc};
use dft_fem::space::FeSpace;

/// Why a force evaluation failed. Forces ride one extra electrostatic
/// solve; if that solve diverges the Hellmann-Feynman term is garbage, and
/// callers (the relaxation drivers, the job server) must surface a typed
/// failure instead of unwinding through a panic.
#[derive(Clone, Debug, PartialEq)]
pub enum ForceError {
    /// The electrostatic Poisson solve for the force potential did not
    /// reach its tolerance within the iteration budget.
    PoissonDiverged {
        /// CG iterations performed before giving up.
        iterations: usize,
        /// Residual at the final iteration.
        residual: f64,
    },
}

impl std::fmt::Display for ForceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForceError::PoissonDiverged {
                iterations,
                residual,
            } => write!(
                f,
                "force electrostatics diverged: Poisson residual {residual:.3e} after {iterations} CG iterations"
            ),
        }
    }
}

impl std::error::Error for ForceError {}

/// Solve for the total electrostatic potential `phi` of `rho_ion - rho_e`
/// (the one extra Poisson solve behind every force evaluation). Pure
/// recomputation from replicated inputs — the distributed assembly calls
/// this identically on every rank.
pub fn force_poisson(
    space: &FeSpace,
    system: &AtomicSystem,
    rho_e: &[f64],
) -> Result<Vec<f64>, ForceError> {
    assert_eq!(rho_e.len(), space.nnodes());
    let rho_ion = system.ion_density(space);
    let rho_charge: Vec<f64> = (0..space.nnodes()).map(|i| rho_ion[i] - rho_e[i]).collect();
    let all_periodic = space
        .mesh
        .axes
        .iter()
        .all(|a| a.bc() == BoundaryCondition::Periodic);
    let bc = if all_periodic {
        PoissonBc::Periodic
    } else {
        PoissonBc::Dirichlet(&|_| 0.0)
    };
    let (phi, st) = solve_poisson(space, &rho_charge, bc, 1e-10, 20000);
    if !st.converged {
        return Err(ForceError::PoissonDiverged {
            iterations: st.iterations,
            residual: st.final_residuals.iter().copied().fold(0.0, f64::max),
        });
    }
    Ok(phi)
}

/// The electrostatic Hellmann-Feynman term accumulated over a node subset:
/// nodes where `node_mask` is `false` contribute nothing, so masked calls
/// on disjoint node sets sum (in any association) to the full-mask result.
/// `None` sums every node — the serial path. Nodal quadrature, fixed
/// ascending-node accumulation order.
pub fn electrostatic_force_partial(
    space: &FeSpace,
    system: &AtomicSystem,
    phi: &[f64],
    node_mask: Option<&[bool]>,
) -> Vec<[f64; 3]> {
    assert_eq!(phi.len(), space.nnodes());
    if let Some(m) = node_mask {
        assert_eq!(m.len(), space.nnodes());
    }
    let lengths = axis_lengths(space);
    let periodic = axis_periodic(space);
    let mass = space.mass_diag();

    let mut forces = vec![[0.0f64; 3]; system.atoms.len()];
    for (ai, atom) in system.atoms.iter().enumerate() {
        let alpha = atom.kind.alpha();
        let z = atom.kind.z();
        let norm = z * (alpha / std::f64::consts::PI).powf(1.5);
        let rcut2 = 20.0 / alpha;
        for n in 0..space.nnodes() {
            if let Some(m) = node_mask {
                if !m[n] {
                    continue;
                }
            }
            let c = space.node_coord(n);
            let mut d = [0.0f64; 3];
            let mut r2 = 0.0;
            for k in 0..3 {
                let mut dx = c[k] - atom.pos[k];
                if periodic[k] {
                    dx -= (dx / lengths[k]).round() * lengths[k];
                }
                d[k] = dx;
                r2 += dx * dx;
            }
            if r2 > rcut2 {
                continue;
            }
            let g = norm * (-alpha * r2).exp();
            // d rho_a / d R_k = 2 alpha (r - R)_k rho_a, F = -integral(...) phi
            let w = mass[n] * phi[n] * 2.0 * alpha * g;
            for k in 0..3 {
                forces[ai][k] -= w * d[k];
            }
        }
    }
    forces
}

/// The short-ranged ion-ion correction forces over a round-robin shard of
/// the first pair index: only atoms `a` with `a % nshards == shard`
/// contribute, so the shards partition the pair sum exactly and
/// `(0, 1)` is the full serial sum.
pub fn ion_ion_force_partial(
    space: &FeSpace,
    system: &AtomicSystem,
    shard: usize,
    nshards: usize,
) -> Vec<[f64; 3]> {
    assert!(nshards >= 1 && shard < nshards);
    let lengths = axis_lengths(space);
    let periodic = axis_periodic(space);
    let n_at = system.atoms.len();
    let mut forces = vec![[0.0f64; 3]; n_at];
    if n_at == 0 {
        return forces;
    }
    // image count per axis from the smallest Gaussian width (hoisted out of
    // the per-axis closure: it is a property of the atom set, not the axis)
    let alpha_min = system
        .atoms
        .iter()
        .map(|a| a.kind.alpha())
        .fold(f64::INFINITY, f64::min);
    let rcut = 7.0 / (0.5 * alpha_min).sqrt();
    let img = |d: usize| -> i64 {
        if periodic[d] {
            (rcut / lengths[d]).ceil() as i64
        } else {
            0
        }
    };
    let (ix, iy, iz) = (img(0), img(1), img(2));
    let sqrt_pi = std::f64::consts::PI.sqrt();
    for a in (shard..n_at).step_by(nshards) {
        for b in 0..n_at {
            let (za, zb) = (system.atoms[a].kind.z(), system.atoms[b].kind.z());
            let (aa, ab) = (system.atoms[a].kind.alpha(), system.atoms[b].kind.alpha());
            let cc = (aa * ab / (aa + ab)).sqrt();
            for gx in -ix..=ix {
                for gy in -iy..=iy {
                    for gz in -iz..=iz {
                        if a == b && gx == 0 && gy == 0 && gz == 0 {
                            continue;
                        }
                        let d = [
                            system.atoms[a].pos[0] - system.atoms[b].pos[0]
                                + gx as f64 * lengths[0],
                            system.atoms[a].pos[1] - system.atoms[b].pos[1]
                                + gy as f64 * lengths[1],
                            system.atoms[a].pos[2] - system.atoms[b].pos[2]
                                + gz as f64 * lengths[2],
                        ];
                        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                        if r < 1e-8 || cc * r > 8.0 {
                            continue;
                        }
                        // -d/dr [erfc(cr)/r] = erfc(cr)/r^2 + 2c e^{-c^2r^2}/(sqrt(pi) r)
                        let mag = za
                            * zb
                            * (erfc(cc * r) / (r * r)
                                + 2.0 * cc * (-cc * cc * r * r).exp() / (sqrt_pi * r));
                        for k in 0..3 {
                            forces[a][k] += mag * d[k] / r;
                        }
                    }
                }
            }
        }
    }
    forces
}

fn axis_lengths(space: &FeSpace) -> [f64; 3] {
    [
        space.mesh.axes[0].length(),
        space.mesh.axes[1].length(),
        space.mesh.axes[2].length(),
    ]
}

fn axis_periodic(space: &FeSpace) -> [bool; 3] {
    [
        space.mesh.axes[0].bc() == BoundaryCondition::Periodic,
        space.mesh.axes[1].bc() == BoundaryCondition::Periodic,
        space.mesh.axes[2].bc() == BoundaryCondition::Periodic,
    ]
}

/// Compute forces (Ha/Bohr) on every atom for a converged density
/// `rho_e` (full nodal vector). Errors — instead of panicking — when the
/// force Poisson solve diverges, so drivers can fail the surrounding job
/// with a reason.
pub fn compute_forces(
    space: &FeSpace,
    system: &AtomicSystem,
    rho_e: &[f64],
) -> Result<Vec<[f64; 3]>, ForceError> {
    let phi = force_poisson(space, system, rho_e)?;
    let mut forces = electrostatic_force_partial(space, system, &phi, None);
    let ion = ion_ion_force_partial(space, system, 0, 1);
    for (f, g) in forces.iter_mut().zip(ion.iter()) {
        for k in 0..3 {
            f[k] += g[k];
        }
    }
    Ok(forces)
}

/// Largest force component magnitude (the relaxation convergence metric).
pub fn max_force(forces: &[[f64; 3]]) -> f64 {
    forces
        .iter()
        .flat_map(|f| f.iter())
        .map(|v| v.abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{scf, KPoint, ScfConfig};
    use crate::system::{Atom, AtomKind};
    use crate::xc::Lda;
    use dft_fem::mesh::{Axis, Mesh3d};

    fn space(l: f64, centers: &[f64]) -> FeSpace {
        let ax = |cs: &[f64]| Axis::graded(0.0, l, 0.6, 2.5, cs, 2.5, BoundaryCondition::Dirichlet);
        FeSpace::new(Mesh3d::new(
            [ax(centers), ax(&[l / 2.0]), ax(&[l / 2.0])],
            3,
        ))
    }

    fn cfg(n_el: f64) -> ScfConfig {
        ScfConfig {
            n_states: (n_el / 2.0).ceil() as usize + 3,
            kt: 0.02,
            tol: 1e-6,
            max_iter: 40,
            cheb_degree: 30,
            first_iter_cf_passes: 5,
            ..ScfConfig::default()
        }
    }

    #[test]
    fn force_on_symmetric_atom_vanishes() {
        // a mirror-symmetric (uniform) mesh is needed here: the greedy
        // graded mesh is not symmetric about the atom and produces a
        // small systematic "egg-box" force, as in real real-space codes
        let l = 10.0;
        let s = FeSpace::new(Mesh3d::cube(4, l, 4));
        let sys = AtomicSystem::new(vec![Atom {
            kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
            pos: [l / 2.0; 3],
        }]);
        let r = scf(&s, &sys, &Lda, &cfg(2.0), &[KPoint::gamma()]);
        assert!(r.converged);
        let f = compute_forces(&s, &sys, &r.density.values).expect("forces");
        assert!(max_force(&f) < 5e-3, "symmetric atom force {:?}", f[0]);
    }

    #[test]
    fn dimer_forces_match_energy_finite_difference() {
        // move one atom of a dimer along x and compare -dE/dx with F_x
        let l = 12.0;
        let c = l / 2.0;
        let d0 = 2.2;
        let run = |dx: f64| -> (f64, Vec<[f64; 3]>, AtomicSystem, FeSpace) {
            // fixed mesh graded at both nominal sites so the FD is smooth
            let s = space(l, &[c - d0 / 2.0, c + d0 / 2.0]);
            let sys = AtomicSystem::new(vec![
                Atom {
                    kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
                    pos: [c - d0 / 2.0, c, c],
                },
                Atom {
                    kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
                    pos: [c + d0 / 2.0 + dx, c, c],
                },
            ]);
            let r = scf(&s, &sys, &Lda, &cfg(2.0), &[KPoint::gamma()]);
            assert!(r.converged);
            let f = compute_forces(&s, &sys, &r.density.values).expect("forces");
            (r.energy.free_energy, f, sys, s)
        };
        let h = 0.05;
        let (_e0, f0, _, _) = run(0.0);
        let (ep, _, _, _) = run(h);
        let (em, _, _, _) = run(-h);
        let fd = -(ep - em) / (2.0 * h);
        let fx = f0[1][0];
        assert!(
            (fx - fd).abs() < 0.15 * fd.abs().max(0.02),
            "analytic {fx} vs FD {fd}"
        );
    }

    #[test]
    fn close_dimer_repels() {
        let l = 12.0;
        let c = l / 2.0;
        let s = space(l, &[c - 0.6, c + 0.6]);
        let sys = AtomicSystem::new(vec![
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
                pos: [c - 0.6, c, c],
            },
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 0.6 },
                pos: [c + 0.6, c, c],
            },
        ]);
        let r = scf(&s, &sys, &Lda, &cfg(4.0), &[KPoint::gamma()]);
        assert!(r.converged);
        let f = compute_forces(&s, &sys, &r.density.values).expect("forces");
        // atoms too close: atom 0 pushed -x, atom 1 pushed +x
        assert!(f[0][0] < 0.0 && f[1][0] > 0.0, "repulsion: {:?}", f);
        // Newton's third law along the axis
        assert!((f[0][0] + f[1][0]).abs() < 0.1 * f[1][0].abs());
    }

    /// The partial sums must tile the full assembly exactly: masked node
    /// subsets and atom shards recombine to the serial result.
    #[test]
    fn partials_tile_the_full_assembly() {
        let l = 8.0;
        let s = FeSpace::new(Mesh3d::periodic_cube(2, l, 3));
        let sys = AtomicSystem::new(vec![
            Atom {
                kind: AtomKind::Pseudo { z: 2.0, r_c: 0.8 },
                pos: [2.5, 4.0, 4.0],
            },
            Atom {
                kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
                pos: [5.5, 4.0, 4.0],
            },
            Atom {
                kind: AtomKind::Pseudo { z: 1.0, r_c: 0.7 },
                pos: [4.0, 2.0, 6.0],
            },
        ]);
        let rho_e = sys.initial_density(&s);
        let phi = force_poisson(&s, &sys, &rho_e).expect("phi");
        let full_es = electrostatic_force_partial(&s, &sys, &phi, None);
        let full_ii = ion_ion_force_partial(&s, &sys, 0, 1);

        // two complementary node masks
        let mask_a: Vec<bool> = (0..s.nnodes()).map(|n| n % 3 == 0).collect();
        let mask_b: Vec<bool> = mask_a.iter().map(|&m| !m).collect();
        let es_a = electrostatic_force_partial(&s, &sys, &phi, Some(&mask_a));
        let es_b = electrostatic_force_partial(&s, &sys, &phi, Some(&mask_b));
        for ai in 0..3 {
            for k in 0..3 {
                let sum = es_a[ai][k] + es_b[ai][k];
                assert!(
                    (sum - full_es[ai][k]).abs() <= 1e-13 * (1.0 + full_es[ai][k].abs()),
                    "electrostatic partials do not tile: atom {ai} axis {k}"
                );
            }
        }
        // three atom shards of the ion-ion sum
        let mut ii_sum = [[0.0f64; 3]; 3];
        for shard in 0..3 {
            let part = ion_ion_force_partial(&s, &sys, shard, 3);
            for ai in 0..3 {
                for k in 0..3 {
                    ii_sum[ai][k] += part[ai][k];
                }
            }
        }
        for ai in 0..3 {
            for k in 0..3 {
                assert!(
                    (ii_sum[ai][k] - full_ii[ai][k]).abs() <= 1e-13 * (1.0 + full_ii[ai][k].abs()),
                    "ion-ion shards do not tile: atom {ai} axis {k}"
                );
            }
        }
    }
}
