//! ChFES — the Chebyshev Filtered Eigensolver (the paper's Algorithm 1).
//!
//! * **CF** — Chebyshev polynomial filtering of a wavefunction block: the
//!   scaled-and-shifted recurrence maps the unwanted spectrum into `[-1,1]`
//!   (where Chebyshev polynomials stay small) and the wanted low end to
//!   `(-inf,-1)` (where they grow fast). Applied in column blocks of size
//!   `B_f` through the matrix-free Hamiltonian.
//! * **CholGS** — overlap `S = Psi_f† Psi_f`, Cholesky inverse, and the
//!   orthonormalization GEMM. In mixed-precision mode the off-diagonal
//!   blocks of `S` are computed in FP32 and the diagonal blocks in FP64
//!   (paper Sec. 5.4.2).
//! * **RR** — Rayleigh-Ritz: projected Hamiltonian, dense Hermitian
//!   eigensolve, subspace rotation.
//!
//! Spectral bounds come from a few Lanczos steps ([`lanczos_bounds`]).

use crate::hamiltonian::HamOperator;
use dft_hpc::profile::{Phase, PhaseScope, Profile};
use dft_linalg::blas1;
use dft_linalg::eig::eigh;
use dft_linalg::gemm::{gemm, gemm_flops, gemm_mixed, matmul, Op};
use dft_linalg::iterative::LinearOperator;
use dft_linalg::lowdin::lowdin_orthonormalize;
use dft_linalg::matrix::Matrix;
use dft_linalg::scalar::{Real, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options of one ChFES cycle.
#[derive(Clone, Debug)]
pub struct ChfesOptions {
    /// Chebyshev polynomial degree `m`.
    pub cheb_degree: usize,
    /// Wavefunction block size `B_f` for the filter.
    pub block_size: usize,
    /// Use the paper's mixed-precision CholGS/RR variants.
    pub mixed_precision: bool,
}

impl Default for ChfesOptions {
    fn default() -> Self {
        Self {
            cheb_degree: 30,
            block_size: 64,
            mixed_precision: false,
        }
    }
}

/// Estimate spectral bounds of a Hermitian operator with `k` Lanczos steps:
/// returns `(theta_min, upper_bound)` where `upper_bound` is a safe upper
/// bound on the largest eigenvalue (largest Ritz value plus the residual).
pub fn lanczos_bounds<T: Scalar>(op: &dyn LinearOperator<T>, k: usize, seed: u64) -> (f64, f64) {
    let n = op.dim();
    let k = k.min(n).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = Matrix::<T>::zeros(n, 1);
    for x in v.col_mut(0) {
        *x = T::from_f64(rng.gen::<f64>() - 0.5);
    }
    let nrm = blas1::nrm2(v.col(0)).to_f64();
    for x in v.col_mut(0) {
        *x = x.scale(T::Re::from_f64(1.0 / nrm));
    }
    let mut v_prev = Matrix::<T>::zeros(n, 1);
    let mut alphas = Vec::with_capacity(k);
    let mut betas = Vec::with_capacity(k);
    let mut beta = 0.0f64;
    let mut w = Matrix::<T>::zeros(n, 1);
    for _ in 0..k {
        op.apply(&v, &mut w);
        let alpha = blas1::dot(v.col(0), w.col(0)).re().to_f64();
        alphas.push(alpha);
        // w = w - alpha v - beta v_prev
        let ar = T::Re::from_f64(alpha);
        let br = T::Re::from_f64(beta);
        {
            let vc = v.col(0);
            let pc = v_prev.col(0);
            for ((wv, &vv), &pv) in w.col_mut(0).iter_mut().zip(vc.iter()).zip(pc.iter()) {
                *wv = *wv - vv.scale(ar) - pv.scale(br);
            }
        }
        beta = blas1::nrm2(w.col(0)).to_f64();
        betas.push(beta);
        if beta < 1e-12 {
            break;
        }
        // Ping-pong buffer rotation instead of cloning: the old `v` becomes
        // `v_prev`, the residual `w` becomes the new `v` (normalized in
        // place), and the retired `v_prev` buffer is recycled as `w` for the
        // next apply, which overwrites it entirely.
        std::mem::swap(&mut v_prev, &mut v);
        std::mem::swap(&mut v, &mut w);
        let inv = T::Re::from_f64(1.0 / beta);
        for x in v.col_mut(0) {
            *x = x.scale(inv);
        }
    }
    // tridiagonal eigenvalues
    let m = alphas.len();
    let mut tri = Matrix::<f64>::zeros(m, m);
    for i in 0..m {
        tri[(i, i)] = alphas[i];
        if i + 1 < m {
            tri[(i, i + 1)] = betas[i];
            tri[(i + 1, i)] = betas[i];
        }
    }
    let e = eigh(&tri).expect("tridiagonal eigensolve");
    let theta_min = e.eigenvalues[0];
    let theta_max = e.eigenvalues[m - 1];
    (theta_min, theta_max + betas[m - 1].abs())
}

/// Reused scratch for [`chebyshev_filter_scratch`]: the two auxiliary
/// wavefunction blocks of the three-term recurrence, recycled across filter
/// calls (and across the column blocks of one ChFES cycle) so the hot loop
/// performs no allocation.
pub struct CfScratch<T: Scalar> {
    y: Matrix<T>,
    hy: Matrix<T>,
}

impl<T: Scalar> CfScratch<T> {
    /// Empty scratch; buffers are shaped on first use.
    pub fn new() -> Self {
        Self {
            y: Matrix::zeros(0, 0),
            hy: Matrix::zeros(0, 0),
        }
    }

    fn ensure(&mut self, n: usize, nc: usize) {
        if self.y.shape() != (n, nc) {
            self.y = Matrix::zeros(n, nc);
        }
        if self.hy.shape() != (n, nc) {
            self.hy = Matrix::zeros(n, nc);
        }
    }

    /// Shape and expose the two recurrence buffers (`Y`, `H Y`) — the hook
    /// a custom [`CfDriver`] uses to run the three-term recurrence itself
    /// with the same zero-allocation buffer rotation as
    /// [`chebyshev_filter_scratch`].
    pub fn buffers(&mut self, n: usize, nc: usize) -> (&mut Matrix<T>, &mut Matrix<T>) {
        self.ensure(n, nc);
        (&mut self.y, &mut self.hy)
    }
}

impl<T: Scalar> Default for CfScratch<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// CF: apply the degree-`m` Chebyshev filter to the block `x` in place.
/// Amplifies the spectrum below `a` (toward `a0`) and damps `[a, b]`.
///
/// Convenience wrapper over [`chebyshev_filter_scratch`] with one-shot
/// scratch.
// dftlint:hot
pub fn chebyshev_filter<T: Scalar>(
    op: &dyn LinearOperator<T>,
    x: &mut Matrix<T>,
    m: usize,
    a: f64,
    b: f64,
    a0: f64,
) {
    let mut scratch = CfScratch::new();
    chebyshev_filter_scratch(op, x, m, a, b, a0, &mut scratch);
}

/// [`chebyshev_filter`] with caller-provided scratch. The recurrence keeps
/// three live blocks (`X`, `Y`, `H Y`) and advances by pointer rotation
/// (`std::mem::swap`), so per degree step the only work is one Hamiltonian
/// apply and one fused element-wise update — no clones, no allocation.
// dftlint:hot
pub fn chebyshev_filter_scratch<T: Scalar>(
    op: &dyn LinearOperator<T>,
    x: &mut Matrix<T>,
    m: usize,
    a: f64,
    b: f64,
    a0: f64,
    scratch: &mut CfScratch<T>,
) {
    assert!(m >= 1 && b > a && a > a0);
    let n = x.nrows();
    let nc = x.ncols();
    let e = (b - a) / 2.0;
    let c = (b + a) / 2.0;
    let mut sigma = e / (a0 - c);
    let sigma1 = sigma;
    let gamma = 2.0 / sigma1;
    scratch.ensure(n, nc);
    let CfScratch { y, hy } = scratch;

    // Y = (H X - c X) * (sigma1 / e)
    op.apply(x, y);
    let ce = T::Re::from_f64(c);
    let s1e = T::Re::from_f64(sigma1 / e);
    for j in 0..nc {
        let xcol = x.col(j);
        for (yv, &xv) in y.col_mut(j).iter_mut().zip(xcol.iter()) {
            *yv = (*yv - xv.scale(ce)).scale(s1e);
        }
    }
    for _k in 2..=m {
        let sigma2 = 1.0 / (gamma - sigma);
        op.apply(y, hy);
        // Ynew = 2 (sigma2/e) (H Y - c Y) - (sigma * sigma2) X, written into
        // the HY buffer; then rotate X <- Y <- Ynew. The retired X buffer
        // becomes the next HY, fully overwritten by the next apply.
        let s2e = T::Re::from_f64(2.0 * sigma2 / e);
        let ss2 = T::Re::from_f64(sigma * sigma2);
        for j in 0..nc {
            let xcol = x.col(j);
            let ycol = y.col(j);
            for ((hv, &yv), &xv) in hy.col_mut(j).iter_mut().zip(ycol.iter()).zip(xcol.iter()) {
                *hv = (*hv - yv.scale(ce)).scale(s2e) - xv.scale(ss2);
            }
        }
        std::mem::swap(x, y);
        std::mem::swap(y, hy);
        sigma = sigma2;
    }
    std::mem::swap(x, y);
}

/// Analytic FLOP count of one [`chebyshev_filter`] call of degree `m` on
/// `ncols` columns of `h`: `m` Hamiltonian applies plus the three-term
/// recurrence update (per element and degree step, roughly three scalings
/// and two additions). For a distributed operator both terms count the
/// rank-local work (`h.dim()` = owned DoFs).
pub fn chebyshev_filter_flops<T: Scalar>(h: &dyn HamOperator<T>, ncols: usize, m: usize) -> u64 {
    let elems = (h.dim() * ncols) as u64;
    let recur = elems * (3 * T::MUL_FLOPS + 2 * T::ADD_FLOPS);
    m as u64 * (h.apply_flops(ncols) + recur)
}

/// The cross-rank reduction hook that makes ChFES distribution-agnostic:
/// every dense subspace quantity (overlap `S`, projected Hamiltonian,
/// squared column norms) is computed from the locally-owned wavefunction
/// rows and then handed to the reducer, which sums it across ranks. The
/// serial solver uses [`NoReduce`] and is arithmetically unchanged.
///
/// A reducer may additionally declare a *band split* ([`Self::band_cols`]):
/// this rank then computes only a contiguous column block of every
/// subspace quantity, [`Self::reduce_matrix`] receives a matrix whose
/// other columns are zero and must assemble the full sum (grid-row
/// reduction + grid-column allgather), and [`Self::assemble_cols`]
/// reassembles full wavefunction columns after a column-blocked update.
pub trait SubspaceReducer<T: Scalar> {
    /// Sum an `N x N` subspace matrix over all ranks, in place. Under a
    /// band split the input holds only this rank's [`Self::band_cols`]
    /// block (other columns zero) and the output is the fully assembled
    /// matrix. Must leave bit-identical results on every rank.
    fn reduce_matrix(&self, m: &mut Matrix<T>);
    /// Sum a small `f64` buffer over all ranks, in place.
    fn reduce_f64(&self, v: &mut [f64]);
    /// Whether wavefunction rows are actually sharded (`true` forbids the
    /// row-local Löwdin fallback, which is only valid on full columns).
    fn is_distributed(&self) -> bool {
        false
    }
    /// The contiguous column block `[j0, j1)` of an `n`-column subspace
    /// this rank computes. The default — the full range — keeps the serial
    /// and pure-domain paths on their original code route.
    fn band_cols(&self, n: usize) -> (usize, usize) {
        (0, n)
    }
    /// Reassemble full columns of the owned-row block `m` after this rank
    /// updated only its [`Self::band_cols`] block (allgather along the
    /// band axis). No-op by default.
    fn assemble_cols(&self, _m: &mut Matrix<T>) {}
    /// [`Self::reduce_matrix`] with any lossy wire encoding disabled —
    /// the orthonormality cleanup pass must sum in full precision.
    fn reduce_matrix_exact(&self, m: &mut Matrix<T>) {
        self.reduce_matrix(m);
    }
    /// Whether [`Self::reduce_matrix`] rounds on the wire (e.g. FP32
    /// off-diagonal blocks, Sec. 5.4.2). When set, [`chfes_reduced`] runs
    /// a full-precision orthonormality cleanup pass after CholGS even if
    /// the local compute is pure FP64.
    fn lossy_wire(&self) -> bool {
        false
    }
}

/// The identity reduction of the shared-memory solver.
pub struct NoReduce;

impl<T: Scalar> SubspaceReducer<T> for NoReduce {
    fn reduce_matrix(&self, _m: &mut Matrix<T>) {}
    fn reduce_f64(&self, _v: &mut [f64]) {}
}

/// The CF-stage hook of [`chfes_reduced`]: applies the degree-`m`
/// Chebyshev filter to one column block in place. A distributed driver can
/// substitute a pipelined recurrence that posts the next degree step's
/// ghost exchange while the current step's interior update is still
/// running (the paper's dual-stream cross-iteration overlap); the default
/// route is [`chebyshev_filter_scratch`] on a plain operator.
pub trait CfDriver<T: Scalar>: Sync {
    /// Filter the block `x` in place (same contract as
    /// [`chebyshev_filter_scratch`]).
    fn filter_block(
        &self,
        x: &mut Matrix<T>,
        m: usize,
        a: f64,
        b: f64,
        a0: f64,
        scratch: &mut CfScratch<T>,
    );
}

/// What [`chfes_reduced`] filters with during the CF phase.
#[derive(Clone, Copy)]
pub enum CfFilter<'a, T: Scalar> {
    /// Filter with the Rayleigh-Ritz Hamiltonian itself (the serial path).
    Hamiltonian,
    /// Substitute operator for the CF recurrence only — the distributed
    /// solver passes its FP32-wire Hamiltonian here while keeping the FP64
    /// one for Rayleigh-Ritz (the paper's "FP32 boundary wire, FP64 math"
    /// split, Sec. 5.4.2).
    Op(&'a dyn LinearOperator<T>),
    /// A fully custom filter driver (e.g. the cross-iteration-overlapped
    /// distributed filter).
    Driver(&'a dyn CfDriver<T>),
}

/// Hermitian product `C = A† B` with the paper's mixed-precision layout:
/// FP32 everywhere except the `block x block` diagonal blocks, which are
/// recomputed in FP64.
pub fn adjoint_product_mixed<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, block: usize) -> Matrix<T> {
    assert_eq!(a.ncols(), b.ncols(), "square Hermitian product expected");
    let n = a.ncols();
    let block = block.max(1);
    let mut s = Matrix::<T>::zeros(n, n);
    gemm_mixed(T::ONE, a, Op::ConjTrans, b, Op::None, T::ZERO, &mut s);
    // redo the diagonal blocks in FP64
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + block).min(n);
        let ab = a.cols_range(j0, j1);
        let bb = b.cols_range(j0, j1);
        let d = matmul(&ab, Op::ConjTrans, &bb, Op::None);
        for jj in 0..(j1 - j0) {
            for ii in 0..(j1 - j0) {
                s[(j0 + ii, j0 + jj)] = d[(ii, jj)];
            }
        }
        j0 = j1;
    }
    s
}

/// Band-split variant of [`adjoint_product_mixed`]: `C = A† B` where `B`
/// is the column block of the subspace starting at global column `col0`.
/// FP32 GEMM everywhere except the band-diagonal square
/// `C[col0 .. col0 + B.ncols(), :]`, which is recomputed in FP64 — the
/// band-block analogue of the paper's "FP64 diagonal blocks" layout.
pub fn adjoint_block_mixed<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, col0: usize) -> Matrix<T> {
    let bs = b.ncols();
    assert!(col0 + bs <= a.ncols(), "band block escapes the subspace");
    let mut c = Matrix::<T>::zeros(a.ncols(), bs);
    gemm_mixed(T::ONE, a, Op::ConjTrans, b, Op::None, T::ZERO, &mut c);
    let ab = a.cols_range(col0, col0 + bs);
    let d = matmul(&ab, Op::ConjTrans, b, Op::None);
    for j in 0..bs {
        for i in 0..bs {
            c[(col0 + i, j)] = d[(i, j)];
        }
    }
    c
}

/// One full ChFES cycle (Algorithm 1): filter, orthonormalize, Rayleigh-
/// Ritz. `psi` (`ndofs x N`, orthonormal-ish input) is replaced by the new
/// Ritz vectors; returns the Ritz values (ascending).
///
/// `bounds = (a0, a, b)`: wanted-spectrum lower estimate, filter edge
/// (above the wanted states), and a safe upper bound of the full spectrum.
pub fn chfes<T: Scalar>(
    h: &dyn HamOperator<T>,
    psi: &mut Matrix<T>,
    bounds: (f64, f64, f64),
    opts: &ChfesOptions,
) -> Vec<f64> {
    chfes_profiled(h, psi, bounds, opts, None)
}

/// [`chfes`] with per-phase profiling: each step of Algorithm 1 (CF,
/// CholGS-S/CI/O, RR-P/D/SR) runs inside its own [`PhaseScope`], tagged
/// with analytic FLOP and byte counts (CholGS-CI and RR-D are
/// wall-time-only, matching the paper's Sec. 6.3 accounting). With
/// `profile = None` this is exactly [`chfes`].
pub fn chfes_profiled<T: Scalar>(
    h: &dyn HamOperator<T>,
    psi: &mut Matrix<T>,
    bounds: (f64, f64, f64),
    opts: &ChfesOptions,
    profile: Option<&Profile>,
) -> Vec<f64> {
    chfes_reduced(
        h,
        CfFilter::Hamiltonian,
        psi,
        bounds,
        opts,
        profile,
        &NoReduce,
    )
}

/// The distribution-agnostic ChFES cycle: `psi` holds this rank's *owned*
/// wavefunction rows (all rows in the serial case), `reducer` sums subspace
/// quantities across ranks, and `filter` selects what the CF recurrence
/// runs through (see [`CfFilter`]). With [`CfFilter::Hamiltonian`] and
/// [`NoReduce`] this is arithmetically identical to [`chfes_profiled`].
///
/// When the reducer declares a band split, this rank filters, projects and
/// rotates only its own column block; overlap and projected-Hamiltonian
/// matrices are assembled by grid-row reductions plus grid-column
/// allgathers inside [`SubspaceReducer::reduce_matrix`], and wavefunction
/// columns are reassembled via [`SubspaceReducer::assemble_cols`]. A
/// reducer without a band split takes exactly the original code route.
pub fn chfes_reduced<T: Scalar>(
    h: &dyn HamOperator<T>,
    filter: CfFilter<'_, T>,
    psi: &mut Matrix<T>,
    bounds: (f64, f64, f64),
    opts: &ChfesOptions,
    profile: Option<&Profile>,
    reducer: &dyn SubspaceReducer<T>,
) -> Vec<f64> {
    let (a0, a, b) = bounds;
    let n_states = psi.ncols();
    let nd = psi.nrows();
    let tsize = std::mem::size_of::<T>() as u64;
    let block_bytes = (nd * n_states) as u64 * tsize;
    // this rank's band column block: the full range on the serial and
    // pure-domain paths, which then take the original code route
    let (j0b, j1b) = reducer.band_cols(n_states);
    let band_split = (j0b, j1b) != (0, n_states);

    // [CF] blockwise filtering of this rank's band columns (plus the
    // pre-CholGS column normalization). The filter scratch and the block
    // buffer persist across blocks.
    {
        let mut scope = PhaseScope::new(profile, Phase::Cf);
        let bf = opts.block_size.max(1);
        let mut cf_scratch = CfScratch::new();
        let mut block = Matrix::<T>::zeros(nd, bf.min(n_states));
        let mut j0 = j0b;
        while j0 < j1b {
            let j1 = (j0 + bf).min(j1b);
            if block.ncols() != j1 - j0 {
                block = Matrix::zeros(nd, j1 - j0);
            }
            block.copy_cols_from(psi, j0);
            match filter {
                CfFilter::Driver(d) => {
                    d.filter_block(&mut block, opts.cheb_degree, a, b, a0, &mut cf_scratch)
                }
                CfFilter::Op(op) => chebyshev_filter_scratch(
                    op,
                    &mut block,
                    opts.cheb_degree,
                    a,
                    b,
                    a0,
                    &mut cf_scratch,
                ),
                CfFilter::Hamiltonian => chebyshev_filter_scratch(
                    h,
                    &mut block,
                    opts.cheb_degree,
                    a,
                    b,
                    a0,
                    &mut cf_scratch,
                ),
            }
            psi.set_cols(j0, &block);
            scope.add_flops(chebyshev_filter_flops(h, j1 - j0, opts.cheb_degree));
            scope.add_bytes(2 * (nd * (j1 - j0)) as u64 * tsize * opts.cheb_degree as u64);
            j0 = j1;
        }
        if band_split {
            reducer.assemble_cols(psi);
        }

        // scale columns to unit norm to avoid overflow before CholGS: local
        // sum of squares, cross-rank reduce, then sqrt — the serial path
        // (identity reduce) accumulates in exactly the order of
        // `blas1::nrm2`, so results are bit-identical to the pre-hook code
        let mut sumsq = vec![0.0f64; n_states];
        for (j, sq) in sumsq.iter_mut().enumerate() {
            let mut acc = T::Re::ZERO;
            for v in psi.col(j) {
                acc += v.abs_sq();
            }
            *sq = acc.to_f64();
        }
        reducer.reduce_f64(&mut sumsq);
        for j in 0..n_states {
            let nrm = sumsq[j].sqrt().max(1e-300);
            let inv = T::Re::from_f64(1.0 / nrm);
            for v in psi.col_mut(j) {
                *v = v.scale(inv);
            }
        }
    }

    let bf = opts.block_size.max(1);
    // One reusable ndofs x N work block serves CholGS-O, RR-P and RR-SR
    // (results are swapped into `psi`, not copied). Band-split ranks work
    // on `nd x band_width` blocks instead.
    let mut work = Matrix::<T>::zeros(nd, if band_split { 0 } else { n_states });

    // [CholGS-S] overlap S = Psi_f† Psi_f (band ranks compute only their
    // column block of S; the reducer assembles the grid-row sums along the
    // band axis)
    let s = {
        let mut scope = PhaseScope::new(profile, Phase::CholGsS);
        scope.add_flops(gemm_flops::<T>(n_states, j1b - j0b, nd));
        scope.add_bytes(block_bytes + (n_states * n_states) as u64 * tsize);
        let mut s = if band_split {
            let psib = psi.cols_range(j0b, j1b);
            let sb = if opts.mixed_precision {
                adjoint_block_mixed(psi, &psib, j0b)
            } else {
                matmul(psi, Op::ConjTrans, &psib, Op::None)
            };
            let mut s = Matrix::<T>::zeros(n_states, n_states);
            s.set_cols(j0b, &sb);
            s
        } else if opts.mixed_precision {
            adjoint_product_mixed(psi, psi, bf)
        } else {
            matmul(psi, Op::ConjTrans, psi, Op::None)
        };
        reducer.reduce_matrix(&mut s);
        s.symmetrize_hermitian();
        s
    };

    // [CholGS-CI] factorization + triangular inverse (wall-time-only)
    let linv = {
        let mut scope = PhaseScope::new(profile, Phase::CholGsCi);
        scope.add_bytes((n_states * n_states) as u64 * tsize);
        dft_linalg::chol::cholesky_inverse(&s)
    };

    // [CholGS-O] orthonormalization GEMM (or the Löwdin fallback)
    {
        let mut scope = PhaseScope::new(profile, Phase::CholGsO);
        scope.add_flops(gemm_flops::<T>(nd, j1b - j0b, n_states));
        scope.add_bytes(2 * block_bytes);
        match linv {
            Ok(linv) => {
                if band_split {
                    // Psi_o[:, j0b..j1b] = Psi_f L^{-dagger}[:, j0b..j1b]
                    let lb =
                        Matrix::<T>::from_fn(n_states, j1b - j0b, |i, j| linv[(j0b + j, i)].conj());
                    let mut wb = Matrix::<T>::zeros(nd, j1b - j0b);
                    if opts.mixed_precision {
                        gemm_mixed(T::ONE, psi, Op::None, &lb, Op::None, T::ZERO, &mut wb);
                    } else {
                        gemm(T::ONE, psi, Op::None, &lb, Op::None, T::ZERO, &mut wb);
                    }
                    psi.set_cols(j0b, &wb);
                    reducer.assemble_cols(psi);
                } else {
                    // Psi_o = Psi_f L^{-dagger}
                    if opts.mixed_precision {
                        gemm_mixed(
                            T::ONE,
                            psi,
                            Op::None,
                            &linv,
                            Op::ConjTrans,
                            T::ZERO,
                            &mut work,
                        );
                    } else {
                        gemm(
                            T::ONE,
                            psi,
                            Op::None,
                            &linv,
                            Op::ConjTrans,
                            T::ZERO,
                            &mut work,
                        );
                    }
                    std::mem::swap(psi, &mut work);
                }
            }
            Err(_) => {
                // filter produced a (numerically) rank-deficient block: fall
                // back to Löwdin orthonormalization. Löwdin diagonalizes the
                // *local-row* Gram, so it is only valid on full columns —
                // the distributed solver must not reach this path.
                assert!(
                    !reducer.is_distributed(),
                    "rank-deficient filtered block in distributed CholGS \
                     (no row-local Löwdin fallback exists)"
                );
                lowdin_orthonormalize(psi).expect("Löwdin fallback failed");
            }
        }
        if opts.mixed_precision || reducer.lossy_wire() {
            // FP32 rounding (in the orthonormalization GEMM or on the
            // reduction wire) leaves O(1e-7) non-orthogonality; one cheap
            // full-precision cleanup pass keeps RR well-posed.
            if reducer.is_distributed() {
                // distributed cleanup: a second (FP64) CholGS pass on the
                // reduced overlap, which is valid on sharded rows
                let mut s2 = if band_split {
                    let psib = psi.cols_range(j0b, j1b);
                    let sb = matmul(psi, Op::ConjTrans, &psib, Op::None);
                    let mut s2 = Matrix::<T>::zeros(n_states, n_states);
                    s2.set_cols(j0b, &sb);
                    s2
                } else {
                    matmul(psi, Op::ConjTrans, psi, Op::None)
                };
                reducer.reduce_matrix_exact(&mut s2);
                s2.symmetrize_hermitian();
                let linv2 = dft_linalg::chol::cholesky_inverse(&s2)
                    .expect("distributed mixed-precision cleanup");
                if band_split {
                    let lb = Matrix::<T>::from_fn(n_states, j1b - j0b, |i, j| {
                        linv2[(j0b + j, i)].conj()
                    });
                    let mut wb = Matrix::<T>::zeros(nd, j1b - j0b);
                    gemm(T::ONE, psi, Op::None, &lb, Op::None, T::ZERO, &mut wb);
                    psi.set_cols(j0b, &wb);
                    reducer.assemble_cols(psi);
                } else {
                    gemm(
                        T::ONE,
                        psi,
                        Op::None,
                        &linv2,
                        Op::ConjTrans,
                        T::ZERO,
                        &mut work,
                    );
                    std::mem::swap(psi, &mut work);
                }
            } else {
                lowdin_orthonormalize(psi).expect("mixed-precision cleanup");
            }
        }
    }

    // [RR-P] projected Hamiltonian Hp = Psi† (H Psi) (band ranks apply H
    // to their own columns only, so the apply cost splits along the band
    // axis too)
    let hp = {
        let mut scope = PhaseScope::new(profile, Phase::RrP);
        scope.add_flops(h.apply_flops(j1b - j0b) + gemm_flops::<T>(n_states, j1b - j0b, nd));
        scope.add_bytes(2 * block_bytes);
        let mut hp = if band_split {
            let psib = psi.cols_range(j0b, j1b);
            let mut wb = Matrix::<T>::zeros(nd, j1b - j0b);
            h.apply(&psib, &mut wb);
            let hb = if opts.mixed_precision {
                adjoint_block_mixed(psi, &wb, j0b)
            } else {
                matmul(psi, Op::ConjTrans, &wb, Op::None)
            };
            let mut hp = Matrix::<T>::zeros(n_states, n_states);
            hp.set_cols(j0b, &hb);
            hp
        } else {
            h.apply(psi, &mut work);
            if opts.mixed_precision {
                adjoint_product_mixed(psi, &work, bf)
            } else {
                matmul(psi, Op::ConjTrans, &work, Op::None)
            }
        };
        reducer.reduce_matrix(&mut hp);
        hp.symmetrize_hermitian();
        hp
    };

    // [RR-D] dense diagonalization (wall-time-only)
    let e = {
        let mut scope = PhaseScope::new(profile, Phase::RrD);
        scope.add_bytes((n_states * n_states) as u64 * tsize);
        eigh(&hp).expect("RR diagonalization")
    };

    // [RR-SR] subspace rotation
    {
        let mut scope = PhaseScope::new(profile, Phase::RrSr);
        scope.add_flops(gemm_flops::<T>(nd, j1b - j0b, n_states));
        scope.add_bytes(2 * block_bytes);
        if band_split {
            let eb = e.eigenvectors.cols_range(j0b, j1b);
            let mut wb = Matrix::<T>::zeros(nd, j1b - j0b);
            gemm(T::ONE, psi, Op::None, &eb, Op::None, T::ZERO, &mut wb);
            psi.set_cols(j0b, &wb);
            reducer.assemble_cols(psi);
        } else {
            gemm(
                T::ONE,
                psi,
                Op::None,
                &e.eigenvectors,
                Op::None,
                T::ZERO,
                &mut work,
            );
            std::mem::swap(psi, &mut work);
        }
    }
    e.eigenvalues
}

/// Random orthonormal initial subspace.
pub fn random_subspace<T: Scalar>(ndofs: usize, n_states: usize, seed: u64) -> Matrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut psi = Matrix::<T>::from_fn(ndofs, n_states, |_, _| T::from_f64(rng.gen::<f64>() - 0.5));
    lowdin_orthonormalize(&mut psi).expect("random subspace orthonormalization");
    psi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::KsHamiltonian;
    use dft_fem::mesh::Mesh3d;
    use dft_fem::space::FeSpace;

    /// Harmonic oscillator: v = 1/2 |r - r0|^2; exact levels (in the
    /// continuum) are 1.5, 2.5 (x3), 3.5 (x6), ...
    fn ho_setup(p: usize, cells: usize) -> (FeSpace, Vec<f64>) {
        let l = 12.0;
        let space = FeSpace::new(Mesh3d::cube(cells, l, p));
        let v: Vec<f64> = (0..space.nnodes())
            .map(|n| {
                let c = space.node_coord(n);
                0.5 * ((c[0] - l / 2.0).powi(2)
                    + (c[1] - l / 2.0).powi(2)
                    + (c[2] - l / 2.0).powi(2))
            })
            .collect();
        (space, v)
    }

    fn solve_ho(mixed: bool) -> Vec<f64> {
        let (space, v) = ho_setup(5, 4);
        let h = KsHamiltonian::<f64>::new(&space, &v, [1.0; 3]);
        let n_states = 6;
        let mut psi = random_subspace::<f64>(h.dim(), n_states, 7);
        let (tmin, tmax) = lanczos_bounds(&h, 12, 3);
        let mut a = tmin + 0.15 * (tmax - tmin);
        let mut evals = vec![];
        for _cycle in 0..8 {
            let opts = ChfesOptions {
                cheb_degree: 25,
                block_size: 3,
                mixed_precision: mixed,
            };
            evals = chfes(&h, &mut psi, (tmin - 1.0, a, tmax), &opts);
            // tighten the filter window using the fresh Ritz values
            a = evals[n_states - 1] + 0.5;
        }
        evals
    }

    #[test]
    fn chfes_finds_harmonic_oscillator_levels() {
        let evals = solve_ho(false);
        assert!((evals[0] - 1.5).abs() < 0.02, "E0 = {}", evals[0]);
        for i in 1..4 {
            assert!((evals[i] - 2.5).abs() < 0.05, "E{i} = {}", evals[i]);
        }
    }

    #[test]
    fn chfes_mixed_precision_matches_fp64_within_tolerance() {
        let e64 = solve_ho(false);
        let emx = solve_ho(true);
        for i in 0..4 {
            assert!(
                (e64[i] - emx[i]).abs() < 5e-4,
                "state {i}: {} vs {}",
                e64[i],
                emx[i]
            );
        }
    }

    #[test]
    fn lanczos_upper_bound_is_safe() {
        let (space, v) = ho_setup(3, 2);
        let h = KsHamiltonian::<f64>::new(&space, &v, [1.0; 3]);
        let (_tmin, ub) = lanczos_bounds(&h, 10, 1);
        // probe with many random Rayleigh quotients
        let psi = random_subspace::<f64>(h.dim(), 8, 99);
        let mut hpsi = Matrix::zeros(h.dim(), 8);
        h.apply(&psi, &mut hpsi);
        for j in 0..8 {
            let rq = blas1::dot(psi.col(j), hpsi.col(j));
            assert!(rq < ub, "RQ {rq} exceeds upper bound {ub}");
        }
    }

    #[test]
    fn filter_amplifies_low_end() {
        // after filtering, a random vector should have much larger overlap
        // with the ground state than before
        let (space, v) = ho_setup(3, 2);
        let h = KsHamiltonian::<f64>::new(&space, &v, [1.0; 3]);
        let (tmin, tmax) = lanczos_bounds(&h, 12, 5);
        // converge a reference ground state first
        let mut psi_ref = random_subspace::<f64>(h.dim(), 4, 11);
        let mut a = tmin + 0.2 * (tmax - tmin);
        for _ in 0..10 {
            let ev = chfes(
                &h,
                &mut psi_ref,
                (tmin - 1.0, a, tmax),
                &ChfesOptions {
                    cheb_degree: 30,
                    block_size: 4,
                    mixed_precision: false,
                },
            );
            a = ev[3] + 0.5;
        }
        let gs: Vec<f64> = psi_ref.col(0).to_vec();
        let mut x = random_subspace::<f64>(h.dim(), 1, 17);
        let before = blas1::dot(&gs, x.col(0)).abs();
        chebyshev_filter(&h, &mut x, 20, a, tmax, tmin - 1.0);
        let nrm = blas1::nrm2(x.col(0));
        let after = blas1::dot(&gs, x.col(0)).abs() / nrm;
        // the filtered vector should be almost entirely in the wanted
        // subspace (overlap is bounded by 1, so test against 0.9)
        assert!(
            after > 0.9 && after > before,
            "before {before}, after {after}"
        );
    }

    #[test]
    fn chfes_eigenvalues_ascending_and_orthonormal_output() {
        let (space, v) = ho_setup(3, 2);
        let h = KsHamiltonian::<f64>::new(&space, &v, [1.0; 3]);
        let mut psi = random_subspace::<f64>(h.dim(), 5, 23);
        let (tmin, tmax) = lanczos_bounds(&h, 10, 2);
        let evals = chfes(
            &h,
            &mut psi,
            (tmin - 1.0, tmin + 0.2 * (tmax - tmin), tmax),
            &ChfesOptions::default(),
        );
        for w in evals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let g = matmul(&psi, Op::ConjTrans, &psi, Op::None);
        assert!(g.max_abs_diff(&Matrix::identity(5)) < 1e-9);
    }
}
