//! # dft-core
//!
//! The Kohn-Sham DFT solver of the DFT-FE-MLXC reproduction — the paper's
//! "DFT-FE-MLXC" module (Secs. 5.3-5.4) at miniature scale, numerically
//! real in every respect:
//!
//! * [`system`] — atoms with Gaussian-smeared local pseudopotentials (the
//!   ONCV substitution of DESIGN.md S3) or all-electron-style nuclei;
//! * [`math`] — special functions (erf/erfc) the electrostatics needs;
//! * [`xc`] — exchange-correlation: LDA (PW92), GGA (PBE), the
//!   **hidden-truth** functional that stands in for quantum many-body
//!   reference data (DESIGN.md S2), and the MLXC adapter wrapping
//!   [`dft_mlxc::MlxcModel`] with the FE divergence assembly;
//! * [`hamiltonian`] — the discrete KS Hamiltonian in the
//!   Löwdin-orthonormalized (diagonal-mass) spectral FE basis, applied
//!   matrix-free through cell-level kernels, generic over real (Γ-point)
//!   and complex (Bloch k-point) scalars;
//! * [`chebyshev`] — ChFES, Algorithm 1 verbatim: Chebyshev filtering (CF),
//!   Cholesky Gram-Schmidt (CholGS) and Rayleigh-Ritz (RR), with the
//!   paper's mixed-precision variants;
//! * [`occupation`] — Fermi-Dirac smearing with chemical-potential
//!   bisection and the smearing entropy;
//! * [`mixing`] — Anderson (Pulay) density mixing;
//! * [`scf`] — the self-consistent field driver and the total (free)
//!   energy assembly with Gaussian-nucleus electrostatics.

#![deny(unsafe_code)]
// indexed loops deliberately mirror the paper's subscript notation
#![allow(clippy::needless_range_loop)]

pub mod chebyshev;
pub mod forces;
pub mod hamiltonian;
pub mod math;
pub mod mixing;
pub mod occupation;
pub mod relax;
pub mod scf;
pub mod system;
pub mod xc;

pub use chebyshev::{
    adjoint_block_mixed, adjoint_product_mixed, chebyshev_filter, chebyshev_filter_flops, chfes,
    chfes_profiled, chfes_reduced, lanczos_bounds, CfDriver, CfFilter, CfScratch, ChfesOptions,
    NoReduce, SubspaceReducer,
};
pub use forces::{
    compute_forces, electrostatic_force_partial, force_poisson, ion_ion_force_partial, max_force,
    ForceError,
};
pub use hamiltonian::{HamOperator, KsHamiltonian};
pub use mixing::AndersonMixer;
pub use occupation::{fermi_occupations, OccupationResult};
pub use relax::{relax, FireState, RelaxConfig, RelaxResult};
pub use scf::{scf, KPoint, ScfConfig, ScfResult, TotalEnergy};
pub use system::{Atom, AtomKind, AtomicSystem};
pub use xc::{FeDivergence, Lda, MlxcFunctional, Pbe, SyntheticTruth, XcEvaluation, XcFunctional};
