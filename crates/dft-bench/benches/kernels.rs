//! Criterion microbenchmarks of the hot computational kernels — the real
//! CPU counterparts of the paper's GPU kernels (Sec. 5.4.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dft_core::chebyshev::{chebyshev_filter, lanczos_bounds, random_subspace};
use dft_core::hamiltonian::KsHamiltonian;
use dft_fem::mesh::Mesh3d;
use dft_fem::space::{CellDenseOperator, FeSpace};
use dft_linalg::batched::{batched_gemm, BatchLayout};
use dft_linalg::gemm::{gemm, Op};
use dft_linalg::iterative::LinearOperator;
use dft_linalg::matrix::Matrix;
use dft_mlxc::MlxcModel;
use std::time::Duration;

fn quick(c: &mut Criterion) -> &mut Criterion {
    c
}

/// The paper's headline kernel: strided-batched dense cell GEMM
/// (`xGEMMStridedBatched` analogue), `nloc x nloc` cell matrices times
/// `nloc x B_f` wavefunction blocks.
fn bench_batched_cell_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_cell_gemm");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    for (p, bf, cells) in [(4usize, 32usize, 64usize), (6, 32, 16), (6, 128, 16)] {
        let nloc = (p + 1).pow(3);
        let a: Vec<f64> = (0..nloc * nloc * cells)
            .map(|i| ((i * 13) as f64 * 0.1).sin())
            .collect();
        let b: Vec<f64> = (0..nloc * bf * cells)
            .map(|i| ((i * 7) as f64 * 0.2).cos())
            .collect();
        let mut out = vec![0.0; nloc * bf * cells];
        let layout = BatchLayout::packed(nloc, bf, nloc, cells);
        g.throughput(Throughput::Elements(layout.flops::<f64>()));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("p{p}_bf{bf}_cells{cells}")),
            &layout,
            |bch, &layout| {
                bch.iter(|| batched_gemm(layout, 1.0, &a, &b, 0.0, &mut out));
            },
        );
    }
    g.finish();
}

/// Matrix-free sum-factorized Hamiltonian apply vs the dense-cell batched
/// path (the paper's kernel choice trade-off).
fn bench_hamiltonian_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("hamiltonian_apply");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    let space = FeSpace::new(Mesh3d::cube(4, 10.0, 4));
    let v: Vec<f64> = (0..space.nnodes())
        .map(|i| (i as f64 * 0.01).sin())
        .collect();
    let h = KsHamiltonian::<f64>::new(&space, &v, [1.0; 3]);
    let x = Matrix::from_fn(h.dim(), 16, |i, j| ((i + 31 * j) as f64 * 0.23).sin());
    let mut y = Matrix::zeros(h.dim(), 16);
    g.bench_function("sumfac_p4_16cols", |b| {
        b.iter(|| h.apply(&x, &mut y));
    });
    let dense = CellDenseOperator::<f64>::stiffness(&space);
    g.bench_function("dense_cell_stiffness_p4_16cols", |b| {
        b.iter(|| dense.apply_block(&space, &x, &mut y, [1.0; 3]));
    });
    g.finish();
}

/// ChFES building blocks: CF filter sweep and the CholGS/RR dense algebra.
fn bench_chfes_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("chfes_steps");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    let space = FeSpace::new(Mesh3d::cube(3, 10.0, 4));
    let v: Vec<f64> = (0..space.nnodes())
        .map(|i| {
            let c = space.node_coord(i);
            0.5 * ((c[0] - 5.0).powi(2) + (c[1] - 5.0).powi(2) + (c[2] - 5.0).powi(2))
        })
        .collect();
    let h = KsHamiltonian::<f64>::new(&space, &v, [1.0; 3]);
    let (tmin, tmax) = lanczos_bounds(&h, 10, 1);
    let psi0 = random_subspace::<f64>(h.dim(), 8, 3);
    g.bench_function("cf_degree20_8states", |b| {
        b.iter(|| {
            let mut psi = psi0.clone();
            chebyshev_filter(
                &h,
                &mut psi,
                20,
                tmin + 0.2 * (tmax - tmin),
                tmax,
                tmin - 1.0,
            );
        });
    });
    // CholGS on a tall block
    let m = 4000;
    let n = 48;
    let psi = Matrix::from_fn(m, n, |i, j| ((i * 3 + j * 17 + i * j) as f64 * 0.13).sin());
    g.bench_function("cholgs_4000x48", |b| {
        b.iter(|| {
            let mut s = Matrix::zeros(n, n);
            gemm(1.0, &psi, Op::ConjTrans, &psi, Op::None, 0.0, &mut s);
            s.symmetrize_hermitian();
            let linv = dft_linalg::cholesky_inverse(&s).unwrap();
            let mut out = Matrix::zeros(m, n);
            gemm(1.0, &psi, Op::None, &linv, Op::ConjTrans, 0.0, &mut out);
            out
        });
    });
    g.bench_function("rr_diag_48", |b| {
        let hm = Matrix::from_fn(n, n, |i, j| ((i * j) as f64 * 0.21).sin());
        b.iter(|| {
            let mut a = hm.clone();
            a.symmetrize_hermitian();
            dft_linalg::eigh(&a).unwrap()
        });
    });
    g.finish();
}

/// MLXC inference: pointwise functional evaluation with input gradients.
fn bench_mlxc_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlxc");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    g.sample_size(10);
    let model = MlxcModel::new(1);
    let points: Vec<(f64, f64)> = (0..512)
        .map(|i| (0.1 + 0.01 * i as f64, 0.05 * i as f64))
        .collect();
    g.throughput(Throughput::Elements(points.len() as u64));
    g.bench_function("eval_point_paper_arch_512pts", |b| {
        b.iter(|| {
            points
                .iter()
                .map(|&(r, gn)| model.eval_point(r, 0.0, gn).e)
                .sum::<f64>()
        });
    });
    g.finish();
}

fn all(c: &mut Criterion) {
    bench_batched_cell_gemm(quick(c));
    bench_hamiltonian_apply(c);
    bench_chfes_steps(c);
    bench_mlxc_inference(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
